// Tests for the SQL front-end: lexer, parser, planner, optimizer, and the
// Session end-to-end (including the paper's query written in the actual
// query language).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "sql/optimizer.h"
#include "sql/parser.h"
#include "sql/planner.h"
#include "sql/session.h"
#include "sql/token.h"
#include "tests/test_util.h"
#include "worlds/enumerate.h"

namespace maybms {
namespace sql {
namespace {

TEST(TokenTest, BasicKinds) {
  auto tokens = Tokenize("select a.b, 'it''s' 1 2.5 <= <> -> {x: 0.4}");
  ASSERT_TRUE(tokens.ok()) << tokens.status().ToString();
  const auto& t = *tokens;
  EXPECT_TRUE(t[0].IsKeyword("SELECT"));
  EXPECT_EQ(t[1].text, "a.b");
  EXPECT_EQ(t[3].kind, TokenKind::kString);
  EXPECT_EQ(t[3].text, "it's");
  EXPECT_EQ(t[4].int_value, 1);
  EXPECT_DOUBLE_EQ(t[5].float_value, 2.5);
  EXPECT_TRUE(t[6].IsSymbol("<="));
  EXPECT_TRUE(t[7].IsSymbol("<>"));
  EXPECT_TRUE(t[8].IsSymbol("->"));
  EXPECT_TRUE(t.back().kind == TokenKind::kEnd);
}

TEST(TokenTest, CommentsAndErrors) {
  auto tokens = Tokenize("select -- comment\n 1");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].int_value, 1);
  EXPECT_EQ(Tokenize("select 'open").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(Tokenize("select @").status().code(), StatusCode::kParseError);
}

TEST(ParserTest, CreateInsertSelect) {
  auto create = ParseStatement(
      "CREATE TABLE r (a INT, b STRING, c DOUBLE, d BOOL)");
  ASSERT_TRUE(create.ok()) << create.status().ToString();
  EXPECT_EQ(create->kind, Statement::Kind::kCreateTable);
  EXPECT_EQ(create->create_table->schema.size(), 4u);

  auto insert = ParseStatement(
      "INSERT INTO r VALUES (1, {'x': 0.4, 'y': 0.6}), (2, 'z')");
  ASSERT_TRUE(insert.ok()) << insert.status().ToString();
  ASSERT_EQ(insert->insert->rows.size(), 2u);
  EXPECT_TRUE(insert->insert->rows[0][1].is_orset);
  EXPECT_EQ(insert->insert->rows[0][1].alternatives.size(), 2u);
  EXPECT_DOUBLE_EQ(insert->insert->rows[0][1].probs[1], 0.6);
  EXPECT_FALSE(insert->insert->rows[1][1].is_orset);

  auto select = ParseStatement(
      "SELECT a, prob() FROM r WHERE b = 'x' AND a >= 1 ORDER BY a DESC");
  ASSERT_TRUE(select.ok()) << select.status().ToString();
  const SelectStmt& s = *select->select;
  EXPECT_EQ(s.items.size(), 2u);
  EXPECT_EQ(s.items[1].kind, SelectItem::Kind::kProb);
  ASSERT_TRUE(s.where != nullptr);
  EXPECT_EQ(s.order_by.size(), 1u);
  EXPECT_TRUE(s.order_by[0].descending);
}

TEST(ParserTest, ModesAndCompound) {
  auto p = ParseStatement("POSSIBLE SELECT a FROM r");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->select->mode, SelectMode::kPossible);
  auto c = ParseStatement("CERTAIN SELECT a FROM r");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->select->mode, SelectMode::kCertain);
  auto u = ParseStatement("SELECT a FROM r UNION SELECT a FROM s");
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->select->compound, SelectStmt::Compound::kUnion);
  auto e = ParseStatement("SELECT a FROM r EXCEPT SELECT a FROM s");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->select->compound, SelectStmt::Compound::kExcept);
}

TEST(ParserTest, EnforceVariants) {
  auto check = ParseStatement("ENFORCE CHECK (age >= 0) ON census");
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  EXPECT_EQ(check->enforce->kind, EnforceStmt::Kind::kCheck);
  auto key = ParseStatement("ENFORCE KEY (id) ON census");
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(key->enforce->kind, EnforceStmt::Kind::kKey);
  auto fd = ParseStatement("ENFORCE FD city -> state ON census");
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(fd->enforce->kind, EnforceStmt::Kind::kFd);
  EXPECT_EQ(fd->enforce->lhs.size(), 1u);
  EXPECT_EQ(fd->enforce->rhs.size(), 1u);
}

TEST(ParserTest, Errors) {
  EXPECT_EQ(ParseStatement("SELECT FROM r").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseStatement("SELECT a").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseStatement("CREATE TABLE r (a BLOB)").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseStatement("INSERT INTO r VALUES (1").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseStatement("nonsense").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseStatement("SELECT a FROM r; SELECT").status().code(),
            StatusCode::kParseError);
}

TEST(ParserTest, ScriptSplitsStatements) {
  auto script = ParseScript(
      "CREATE TABLE r (a INT); INSERT INTO r VALUES (1); SELECT a FROM r;");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  EXPECT_EQ(script->size(), 3u);
}

TEST(OptimizerTest, ProductBecomesJoinWithPushdown) {
  WsdDb db;
  MAYBMS_ASSERT_OK(db.CreateRelation(
      "r", Schema({{"a", ValueType::kInt}, {"b", ValueType::kInt}})));
  MAYBMS_ASSERT_OK(db.CreateRelation(
      "s", Schema({{"a", ValueType::kInt}, {"c", ValueType::kInt}})));
  auto stmt = ParseStatement(
      "SELECT b FROM r, s WHERE r.a = s.a AND b > 1 AND c < 5");
  // Column names: left table keeps bare names (a, b); right side gets
  // prefixed on collision (s.a) and keeps c.
  ASSERT_TRUE(stmt.ok());
  // Fix the predicate names to the actual concat schema: a, b, s.a, c.
  auto stmt2 = ParseStatement(
      "SELECT b FROM r, s WHERE a = s.a AND b > 1 AND c < 5");
  ASSERT_TRUE(stmt2.ok());
  auto planned = PlanSelect(*stmt2->select, db);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  auto optimized = Optimize(planned->plan, db);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  std::string text = (*optimized)->ToString();
  EXPECT_NE(text.find("Join"), std::string::npos) << text;
  // Pushed selections sit below the join.
  size_t join_pos = text.find("Join");
  EXPECT_NE(text.find("Select", join_pos), std::string::npos) << text;
}

TEST(SessionTest, EndToEndMedicalScenario) {
  Session session;
  auto r1 = session.Execute(
      "CREATE TABLE R (Diagnosis STRING, Test STRING, Symptom STRING)");
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  // The or-set encoding of the medical example (fields independent here).
  auto r2 = session.Execute(
      "INSERT INTO R VALUES "
      "({'pregnancy': 0.4, 'hypothyroidism': 0.6}, "
      " {'ultrasound': 0.4, 'TSH': 0.6}, "
      " {'weight gain': 0.7, 'fatigue': 0.3}), "
      "('obesity', 'BMI', 'weight gain')");
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();

  auto prob = session.Execute(
      "SELECT Test, prob() FROM R WHERE Diagnosis = 'pregnancy'");
  ASSERT_TRUE(prob.ok()) << prob.status().ToString();
  ASSERT_EQ(prob->kind, StatementResult::Kind::kTable);
  // ultrasound recommended with prob 0.4*0.4 (independent encoding),
  // TSH with 0.4*0.6.
  ASSERT_EQ(prob->table.NumRows(), 2u);
  EXPECT_EQ(prob->table.schema().attr(1).name, "prob");
  double total = prob->table.row(0)[1].as_double() +
                 prob->table.row(1)[1].as_double();
  EXPECT_NEAR(total, 0.4, 1e-9);
}

TEST(SessionTest, PaperJointExampleViaApiThenSql) {
  // Build the exact paper WSD via the builder API, then query in SQL.
  Session session(testing_util::MedicalExample());
  auto prob = session.Execute(
      "SELECT Test, prob() FROM R WHERE Diagnosis = 'pregnancy'");
  ASSERT_TRUE(prob.ok()) << prob.status().ToString();
  ASSERT_EQ(prob->table.NumRows(), 1u);
  EXPECT_EQ(prob->table.row(0)[0], Value::String("ultrasound"));
  EXPECT_NEAR(prob->table.row(0)[1].as_double(), 0.4, 1e-12);

  auto ws = session.Execute(
      "SELECT Test FROM R WHERE Diagnosis = 'pregnancy'");
  ASSERT_TRUE(ws.ok());
  ASSERT_EQ(ws->kind, StatementResult::Kind::kWorldSet);
  auto worlds = EnumerateWorlds(ws->world_set);
  ASSERT_TRUE(worlds.ok());
  auto merged = MergeEqualWorlds(std::move(*worlds));
  EXPECT_EQ(merged.size(), 2u);  // {ultrasound} and {}
}

TEST(SessionTest, PossibleAndCertain) {
  Session session(testing_util::MedicalExample());
  auto possible = session.Execute("POSSIBLE SELECT Symptom FROM R");
  ASSERT_TRUE(possible.ok()) << possible.status().ToString();
  EXPECT_EQ(possible->table.NumRows(), 2u);  // weight gain, fatigue
  auto certain = session.Execute("CERTAIN SELECT Symptom FROM R");
  ASSERT_TRUE(certain.ok());
  ASSERT_EQ(certain->table.NumRows(), 1u);  // r2's weight gain is certain
  EXPECT_EQ(certain->table.row(0)[0], Value::String("weight gain"));
}

TEST(SessionTest, EcountAndDistinct) {
  Session session(testing_util::MedicalExample());
  auto ec = session.Execute(
      "SELECT ecount() FROM R WHERE Symptom = 'weight gain'");
  ASSERT_TRUE(ec.ok()) << ec.status().ToString();
  ASSERT_EQ(ec->table.NumRows(), 1u);
  EXPECT_NEAR(ec->table.row(0)[0].as_double(), 1.7, 1e-12);

  auto d = session.Execute("SELECT DISTINCT Symptom FROM R");
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->kind, StatementResult::Kind::kWorldSet);
}

TEST(SessionTest, EnforceStatement) {
  Session session;
  MAYBMS_ASSERT_OK(
      session.Execute("CREATE TABLE p (id INT, age INT)").status());
  MAYBMS_ASSERT_OK(session
                       .Execute("INSERT INTO p VALUES "
                                "(1, {30: 0.6, -5: 0.4}), (2, 12)")
                       .status());
  auto enforce = session.Execute("ENFORCE CHECK (age >= 0) ON p");
  ASSERT_TRUE(enforce.ok()) << enforce.status().ToString();
  EXPECT_NE(enforce->message.find("0.4"), std::string::npos)
      << enforce->message;
  // Now age is certain 30.
  auto certain = session.Execute("CERTAIN SELECT age FROM p WHERE id = 1");
  ASSERT_TRUE(certain.ok());
  ASSERT_EQ(certain->table.NumRows(), 1u);
  EXPECT_EQ(certain->table.row(0)[0], Value::Int(30));
}

TEST(SessionTest, ShowAndExplain) {
  Session session(testing_util::MedicalExample());
  auto tables = session.Execute("SHOW TABLES");
  ASSERT_TRUE(tables.ok());
  EXPECT_NE(tables->message.find("R"), std::string::npos);
  auto worlds = session.Execute("SHOW WORLDS");
  ASSERT_TRUE(worlds.ok());
  EXPECT_NE(worlds->message.find("4 distinct world"), std::string::npos)
      << worlds->message;
  auto explain = session.Execute(
      "EXPLAIN SELECT Test FROM R WHERE Diagnosis = 'pregnancy'");
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->message.find("Select"), std::string::npos);
  EXPECT_NE(explain->message.find("Scan R"), std::string::npos);
}

TEST(SessionTest, JoinAcrossTables) {
  Session session;
  MAYBMS_ASSERT_OK(
      session.Execute("CREATE TABLE person (name STRING, city STRING)")
          .status());
  MAYBMS_ASSERT_OK(
      session.Execute("CREATE TABLE geo (city STRING, country STRING)")
          .status());
  MAYBMS_ASSERT_OK(session
                       .Execute("INSERT INTO person VALUES "
                                "('ann', {'berlin': 0.8, 'paris': 0.2}), "
                                "('bob', 'paris')")
                       .status());
  MAYBMS_ASSERT_OK(session
                       .Execute("INSERT INTO geo VALUES "
                                "('berlin', 'de'), ('paris', 'fr')")
                       .status());
  auto prob = session.Execute(
      "SELECT name, country, prob() FROM person, geo "
      "WHERE city = geo.city");
  ASSERT_TRUE(prob.ok()) << prob.status().ToString();
  ASSERT_EQ(prob->table.NumRows(), 3u);
  // (bob, fr) certain; (ann, de) 0.8; (ann, fr) 0.2.
  double p_sum = 0;
  for (const auto& row : prob->table.rows()) p_sum += row[2].as_double();
  EXPECT_NEAR(p_sum, 2.0, 1e-9);
}

TEST(SessionTest, SelfJoinWithAliases) {
  Session session;
  MAYBMS_ASSERT_OK(
      session.Execute("CREATE TABLE r (id INT, v INT)").status());
  MAYBMS_ASSERT_OK(session
                       .Execute("INSERT INTO r VALUES "
                                "(1, {10: 0.5, 20: 0.5}), (2, 10)")
                       .status());
  // Pairs of distinct tuples with equal v: only in 50% of worlds.
  auto prob = session.Execute(
      "SELECT a.id, b.id, prob() FROM r a, r b "
      "WHERE a.v = b.v AND a.id < b.id");
  ASSERT_TRUE(prob.ok()) << prob.status().ToString();
  ASSERT_EQ(prob->table.NumRows(), 1u);
  EXPECT_NEAR(prob->table.row(0)[2].as_double(), 0.5, 1e-9);
}

TEST(SessionTest, ExceptStatement) {
  Session session;
  MAYBMS_ASSERT_OK(session.Execute("CREATE TABLE a (x INT)").status());
  MAYBMS_ASSERT_OK(session.Execute("CREATE TABLE b (x INT)").status());
  MAYBMS_ASSERT_OK(
      session.Execute("INSERT INTO a VALUES (1), (2)").status());
  MAYBMS_ASSERT_OK(
      session.Execute("INSERT INTO b VALUES ({1: 0.5, 3: 0.5})").status());
  auto prob =
      session.Execute("SELECT x FROM a EXCEPT SELECT x FROM b");
  ASSERT_TRUE(prob.ok()) << prob.status().ToString();
  auto conf = session.Execute(
      "POSSIBLE SELECT x FROM a EXCEPT SELECT x FROM b");
  ASSERT_TRUE(conf.ok()) << conf.status().ToString();
  // 1 survives in half the worlds, 2 always.
  ASSERT_EQ(conf->table.NumRows(), 2u);
}

TEST(SessionTest, ApproxConfStatement) {
  Session session(testing_util::MedicalExample());
  // Tiny clusters resolve exactly, so the estimate must match PROB().
  auto exact = session.Execute("SELECT Symptom, PROB() FROM R");
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  auto approx =
      session.Execute("SELECT Symptom, APPROX CONF(0.01, 0.05) FROM R");
  ASSERT_TRUE(approx.ok()) << approx.status().ToString();
  // Columns: Symptom, conf, conf_lo, conf_hi.
  ASSERT_EQ(approx->table.schema().size(), 4u);
  EXPECT_EQ(approx->table.schema().attr(1).name, "conf");
  EXPECT_EQ(approx->table.schema().attr(2).name, "conf_lo");
  EXPECT_EQ(approx->table.schema().attr(3).name, "conf_hi");
  ASSERT_EQ(approx->table.NumRows(), exact->table.NumRows());
  for (size_t i = 0; i < approx->table.NumRows(); ++i) {
    const Tuple& a = approx->table.row(i);
    const Tuple& e = exact->table.row(i);
    EXPECT_EQ(a[0], e[0]);
    EXPECT_NEAR(a[1].as_double(), e[1].as_double(), 1e-9);
    EXPECT_LE(a[2].as_double(), a[1].as_double() + 1e-12);
    EXPECT_GE(a[3].as_double(), a[1].as_double() - 1e-12);
  }
  EXPECT_NE(approx->message.find("approx conf"), std::string::npos)
      << approx->message;

  // AS alias renames the estimate and its bound columns together; the
  // δ argument is optional (defaults to 0.05).
  auto aliased =
      session.Execute("SELECT Symptom, APPROX CONF(0.02) AS p FROM R");
  ASSERT_TRUE(aliased.ok()) << aliased.status().ToString();
  ASSERT_EQ(aliased->table.schema().size(), 4u);
  EXPECT_EQ(aliased->table.schema().attr(1).name, "p");
  EXPECT_EQ(aliased->table.schema().attr(2).name, "p_lo");
  EXPECT_EQ(aliased->table.schema().attr(3).name, "p_hi");

  auto explain =
      session.Execute("EXPLAIN SELECT Symptom, APPROX CONF(0.01, 0.05) FROM R");
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  EXPECT_NE(explain->message.find("APPROX CONF"), std::string::npos)
      << explain->message;
}

TEST(SessionTest, ApproxConfErrors) {
  Session session(testing_util::MedicalExample());
  // ε and δ must lie in (0, 1).
  EXPECT_EQ(session.Execute("SELECT Symptom, APPROX CONF(0, 0.05) FROM R")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session.Execute("SELECT Symptom, APPROX CONF(0.01, 1.5) FROM R")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Malformed argument lists are parse errors.
  EXPECT_EQ(session.Execute("SELECT Symptom, APPROX CONF() FROM R")
                .status()
                .code(),
            StatusCode::kParseError);
  EXPECT_EQ(session.Execute("SELECT Symptom, APPROX CONF(0.01 FROM R")
                .status()
                .code(),
            StatusCode::kParseError);
  // PROB() and APPROX CONF() in one select list is rejected.
  EXPECT_EQ(
      session.Execute("SELECT Symptom, PROB(), APPROX CONF(0.01) FROM R")
          .status()
          .code(),
      StatusCode::kParseError);
}

TEST(SessionTest, ErrorsSurfaceCleanly) {
  Session session;
  EXPECT_EQ(session.Execute("SELECT x FROM nope").status().code(),
            StatusCode::kNotFound);
  MAYBMS_ASSERT_OK(session.Execute("CREATE TABLE t (x INT)").status());
  EXPECT_EQ(session.Execute("CREATE TABLE t (x INT)").status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(session.Execute("INSERT INTO t VALUES ('str')").status().code(),
            StatusCode::kTypeMismatch);
  EXPECT_EQ(
      session.Execute("INSERT INTO t VALUES ({1: 0.5, 2: 0.6})")
          .status()
          .code(),
      StatusCode::kInvalidArgument);  // probs sum to 1.1
}

TEST(SessionTest, ScriptExecution) {
  Session session;
  auto results = session.ExecuteScript(
      "CREATE TABLE t (x INT);"
      "INSERT INTO t VALUES ({1: 0.9, 2: 0.1});"
      "POSSIBLE SELECT x FROM t;");
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), 3u);
  EXPECT_EQ((*results)[2].table.NumRows(), 2u);
}

TEST(SessionTest, SaveLoadDatabaseRoundTrip) {
  std::string path =
      (std::filesystem::temp_directory_path() / "maybms_sql_save.wsd")
          .string();
  for (const char* format : {"", " FORMAT BINARY", " FORMAT TEXT"}) {
    Session session;
    MAYBMS_ASSERT_OK(session
                         .ExecuteScript(
                             "CREATE TABLE t (x INT, s STRING);"
                             "INSERT INTO t VALUES ({1: 0.25, 2: 0.75}, 'a');"
                             "INSERT INTO t VALUES (3, {'b': 0.5, 'c': 0.5});")
                         .status());
    auto saved = session.Execute("SAVE DATABASE '" + path + "'" + format);
    ASSERT_TRUE(saved.ok()) << saved.status().ToString();
    EXPECT_NE(saved->message.find("saved database"), std::string::npos);

    // Load into a *fresh* session: the catalog swap must reproduce the
    // answer distribution exactly.
    Session other;
    auto loaded = other.Execute("LOAD DATABASE '" + path + "'");
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    testing_util::ExpectDbsExactlyEqual(session.db(), other.db());
    auto conf = other.Execute("SELECT s, PROB() FROM t WHERE x = 1");
    ASSERT_TRUE(conf.ok()) << conf.status().ToString();
    ASSERT_EQ(conf->table.NumRows(), 1u);
    EXPECT_NEAR(conf->table.row(0)[1].as_double(), 0.25, 1e-9);
  }
  std::remove(path.c_str());
}

TEST(SessionTest, SaveLoadDatabaseErrors) {
  Session session;
  // Parse errors.
  EXPECT_EQ(session.Execute("SAVE DATABASE").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(session.Execute("SAVE DATABASE missing_quotes").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(
      session.Execute("SAVE DATABASE '/tmp/x' FORMAT XML").status().code(),
      StatusCode::kParseError);
  EXPECT_EQ(session.Execute("LOAD DATABASE ''").status().code(),
            StatusCode::kParseError);
  // A failed load leaves the session database untouched.
  MAYBMS_ASSERT_OK(session.Execute("CREATE TABLE keepme (x INT)").status());
  EXPECT_EQ(
      session.Execute("LOAD DATABASE '/nonexistent/nope.wsd'").status().code(),
      StatusCode::kNotFound);
  EXPECT_TRUE(session.db().HasRelation("keepme"));
}

TEST(SessionTest, SetAndShowSettingsRoundTrip) {
  Session session;
  // Every knob SET through SQL must read back through SHOW SETTINGS.
  MAYBMS_ASSERT_OK(session.Execute("SET conf.num_threads = 3").status());
  MAYBMS_ASSERT_OK(session.Execute("SET materialize_conf = false").status());
  MAYBMS_ASSERT_OK(session.Execute("SET conf.eps = 0.25").status());
  EXPECT_EQ(session.options().conf.num_threads, 3u);
  EXPECT_FALSE(session.options().materialize_conf);
  EXPECT_DOUBLE_EQ(session.options().conf.eps, 0.25);

  auto settings = session.Execute("SHOW SETTINGS");
  ASSERT_TRUE(settings.ok()) << settings.status().ToString();
  bool saw_threads = false, saw_materialize = false;
  for (size_t i = 0; i < settings->table.NumRows(); ++i) {
    const auto& row = settings->table.row(i);
    if (row[0].as_string() == "conf.num_threads") {
      EXPECT_EQ(row[1].as_string(), "3");
      saw_threads = true;
    } else if (row[0].as_string() == "materialize_conf") {
      EXPECT_EQ(row[1].as_string(), "false");
      saw_materialize = true;
    }
  }
  EXPECT_TRUE(saw_threads && saw_materialize);

  // SET acknowledges with the normalized name and rendered value.
  auto ack = session.Execute("SET approx.seed = 99");
  ASSERT_TRUE(ack.ok());
  EXPECT_NE(ack->message.find("approx.seed = 99"), std::string::npos);
}

TEST(SessionTest, SetErrorsAndFingerprint) {
  Session session;
  const uint64_t before = session.SettingsFingerprint();
  // Unknown knob and type mismatches reject without changing anything.
  EXPECT_EQ(session.Execute("SET no.such.knob = 1").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session.Execute("SET conf.num_threads = 'many'").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session.Execute("SET conf.num_threads = -2").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session.SettingsFingerprint(), before);
  // A successful SET moves the fingerprint (the server result cache keys
  // on it); restoring the value restores the fingerprint.
  MAYBMS_ASSERT_OK(session.Execute("SET exec.num_threads = 5").status());
  const uint64_t after = session.SettingsFingerprint();
  EXPECT_NE(after, before);
  MAYBMS_ASSERT_OK(
      session
          .Execute("SET exec.num_threads = " +
                   std::to_string(SessionOptions{}.exec.num_threads))
          .status());
  EXPECT_EQ(session.SettingsFingerprint(), before);
}

TEST(SessionTest, DeleteOldestRetiresWindowPrefix) {
  Session session;
  MAYBMS_ASSERT_OK(session.Execute("CREATE TABLE w (x INT)").status());
  MAYBMS_ASSERT_OK(
      session.Execute("INSERT INTO w VALUES (1), (2), (3), (4)").status());
  auto del = session.Execute("DELETE FROM w OLDEST 3");
  ASSERT_TRUE(del.ok()) << del.status().ToString();
  EXPECT_NE(del->message.find("evicted 3 tuple(s) from w"),
            std::string::npos);
  auto rest = session.Execute("CERTAIN SELECT x FROM w");
  ASSERT_TRUE(rest.ok());
  ASSERT_EQ(rest->table.NumRows(), 1u);
  EXPECT_EQ(rest->table.row(0)[0].as_int(), 4);
  // Over-asking clamps to what exists; a missing table is an error.
  auto drain = session.Execute("DELETE FROM w OLDEST 10");
  ASSERT_TRUE(drain.ok());
  EXPECT_NE(drain->message.find("evicted 1 tuple(s)"), std::string::npos);
  EXPECT_FALSE(session.Execute("DELETE FROM nope OLDEST 1").ok());
  EXPECT_EQ(session.Execute("DELETE FROM w OLDEST -1").status().code(),
            StatusCode::kParseError);
}

}  // namespace
}  // namespace sql
}  // namespace maybms
