// Edge cases of the lifted operators: empty inputs, shared slots, zero-
// column projections, resource budgets, unsupported plan nodes, and
// operator pipelines that stress normalization interplay.
#include <gtest/gtest.h>

#include "core/builder.h"
#include "core/confidence.h"
#include "core/lifted.h"
#include "core/lifted_executor.h"
#include "tests/test_util.h"
#include "worlds/enumerate.h"

namespace maybms {
namespace {

using testing_util::MedicalExample;

ExprPtr Col(const std::string& n) { return Expr::Column(n); }
ExprPtr Lit(Value v) { return Expr::Const(std::move(v)); }

WsdDb EmptyRelationDb() {
  WsdDb db;
  Status st = db.CreateRelation(
      "e", Schema({{"a", ValueType::kInt}, {"b", ValueType::kInt}}));
  EXPECT_TRUE(st.ok());
  return db;
}

TEST(LiftedEdge, OperatorsOnEmptyRelation) {
  {
    WsdDb db = EmptyRelationDb();
    MAYBMS_ASSERT_OK(LiftedSelect(
        &db, "e", Expr::Compare(CompareOp::kEq, Col("a"), Lit(Value::Int(1))),
        "out"));
    EXPECT_EQ(db.GetRelation("out").value()->NumTuples(), 0u);
  }
  {
    WsdDb db = EmptyRelationDb();
    MAYBMS_ASSERT_OK(LiftedProject(&db, "e", {{Col("a"), "a"}}, "out"));
    EXPECT_EQ(db.GetRelation("out").value()->NumTuples(), 0u);
    EXPECT_EQ(db.GetRelation("out").value()->schema().size(), 1u);
  }
  {
    WsdDb db = EmptyRelationDb();
    MAYBMS_ASSERT_OK(db.CreateRelation("f", db.GetRelation("e").value()
                                                ->schema()));
    MAYBMS_ASSERT_OK(LiftedProduct(&db, "e", "f", "out"));
    EXPECT_EQ(db.GetRelation("out").value()->NumTuples(), 0u);
  }
  {
    WsdDb db = EmptyRelationDb();
    MAYBMS_ASSERT_OK(db.CreateRelation("f", db.GetRelation("e").value()
                                                ->schema()));
    MAYBMS_ASSERT_OK(LiftedDifference(&db, "e", "f", "out"));
    EXPECT_EQ(db.GetRelation("out").value()->NumTuples(), 0u);
  }
  {
    WsdDb db = EmptyRelationDb();
    MAYBMS_ASSERT_OK(LiftedDistinct(&db, "e", "out"));
    EXPECT_EQ(db.GetRelation("out").value()->NumTuples(), 0u);
  }
}

TEST(LiftedEdge, ZeroColumnProjection) {
  WsdDb db = MedicalExample();
  auto plan = Plan::Project(
      Plan::Select(Plan::Scan("R"),
                   Expr::Compare(CompareOp::kEq, Col("Diagnosis"),
                                 Lit(Value::String("pregnancy")))),
      {});
  auto result = ExecuteLifted(plan, db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Confidence of the empty vector = P(answer non-empty) = 0.4.
  auto conf = ConfTable(*result, "result");
  ASSERT_TRUE(conf.ok());
  ASSERT_EQ(conf->NumRows(), 1u);
  EXPECT_NEAR(conf->row(0)[0].as_double(), 0.4, 1e-12);
}

TEST(LiftedEdge, ProjectionDuplicatingUncertainColumn) {
  WsdDb db = MedicalExample();
  // Both output columns reference the same slot: values co-vary.
  auto plan = Plan::Project(Plan::Scan("R"),
                            {{Col("Symptom"), "s1"}, {Col("Symptom"), "s2"}});
  auto result = ExecuteLifted(plan, db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto worlds = EnumerateWorlds(*result);
  ASSERT_TRUE(worlds.ok());
  for (const auto& w : *worlds) {
    for (const auto& row : w.catalog.Get("result").value()->rows()) {
      EXPECT_EQ(row[0], row[1]);
    }
  }
}

TEST(LiftedEdge, SelectOnComputedProjection) {
  // Pipeline: project a computed expression over an uncertain field,
  // then select on it. The computed slot lives in the original component.
  WsdDb db;
  MAYBMS_ASSERT_OK(db.CreateRelation("r", Schema({{"x", ValueType::kInt}})));
  ASSERT_TRUE(InsertTuple(&db, "r",
                          {CellSpec::OrSet({{Value::Int(1), 0.25},
                                            {Value::Int(2), 0.75}})})
                  .ok());
  auto plan = Plan::Select(
      Plan::Project(Plan::Scan("r"),
                    {{Expr::Arith(ArithOp::kMul, Col("x"),
                                  Lit(Value::Int(10))),
                      "x10"}}),
      Expr::Compare(CompareOp::kEq, Col("x10"), Lit(Value::Int(20))));
  auto result = ExecuteLifted(plan, db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto conf = ConfTable(*result, "result");
  ASSERT_TRUE(conf.ok());
  ASSERT_EQ(conf->NumRows(), 1u);
  EXPECT_EQ(conf->row(0)[0], Value::Int(20));
  EXPECT_NEAR(conf->row(0)[1].as_double(), 0.75, 1e-12);
}

TEST(LiftedEdge, MergeBudgetSurfacesCleanly) {
  WsdDb db;
  MAYBMS_ASSERT_OK(db.CreateRelation(
      "r", Schema({{"a", ValueType::kInt}, {"b", ValueType::kInt}})));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(InsertTuple(&db, "r",
                            {CellSpec::UniformOrSet({Value::Int(0),
                                                     Value::Int(1)}),
                             CellSpec::UniformOrSet({Value::Int(0),
                                                     Value::Int(1)})})
                    .ok());
  }
  db.mutable_options().max_component_rows = 2;  // any merge is too big
  auto pred = Expr::Compare(CompareOp::kEq, Col("a"), Col("b"));
  Status st = LiftedSelect(&db, "r", pred, "out");
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

TEST(LiftedEdge, RenameRelationErrors) {
  WsdDb db = EmptyRelationDb();
  EXPECT_EQ(RenameRelation(&db, "missing", "x").code(),
            StatusCode::kNotFound);
  MAYBMS_ASSERT_OK(db.CreateRelation("f", Schema({{"a", ValueType::kInt}})));
  EXPECT_EQ(RenameRelation(&db, "e", "f").code(),
            StatusCode::kAlreadyExists);
  MAYBMS_ASSERT_OK(RenameRelation(&db, "e", "E"));  // case-insensitive noop
}

TEST(LiftedEdge, UnsupportedPlanNodes) {
  WsdDb db = MedicalExample();
  EXPECT_EQ(ExecuteLifted(Plan::Limit(Plan::Scan("R"), 1), db)
                .status()
                .code(),
            StatusCode::kUnsupported);
  EXPECT_EQ(ExecuteLifted(
                Plan::Aggregate(Plan::Scan("R"), {},
                                {{AggFunc::kCount, nullptr, "n"}}),
                db)
                .status()
                .code(),
            StatusCode::kUnsupported);
}

TEST(LiftedEdge, SortOverUncertainColumnUnsupported) {
  WsdDb db = MedicalExample();
  EXPECT_EQ(
      ExecuteLifted(Plan::Sort(Plan::Scan("R"), {"Symptom"}, {false}), db)
          .status()
          .code(),
      StatusCode::kUnsupported);
  // Sorting by a certain-after-selection column works.
  auto plan = Plan::Sort(
      Plan::Select(Plan::Scan("R"),
                   Expr::Compare(CompareOp::kEq, Col("Diagnosis"),
                                 Lit(Value::String("obesity")))),
      {"Test"}, {false});
  auto result = ExecuteLifted(plan, db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

TEST(LiftedEdge, UnionTypeMismatch) {
  WsdDb db;
  MAYBMS_ASSERT_OK(db.CreateRelation("a", Schema({{"x", ValueType::kInt}})));
  MAYBMS_ASSERT_OK(
      db.CreateRelation("b", Schema({{"x", ValueType::kString}})));
  EXPECT_EQ(LiftedUnion(&db, "a", "b", "out").code(),
            StatusCode::kTypeMismatch);
}

TEST(LiftedEdge, DifferenceRemovesCertainDuplicateStatically) {
  WsdDb db;
  MAYBMS_ASSERT_OK(db.CreateRelation("l", Schema({{"x", ValueType::kInt}})));
  MAYBMS_ASSERT_OK(db.CreateRelation("r", Schema({{"x", ValueType::kInt}})));
  ASSERT_TRUE(InsertTuple(&db, "l", {CellSpec::Certain(Value::Int(1))}).ok());
  ASSERT_TRUE(InsertTuple(&db, "l", {CellSpec::Certain(Value::Int(2))}).ok());
  ASSERT_TRUE(InsertTuple(&db, "r", {CellSpec::Certain(Value::Int(1))}).ok());
  MAYBMS_ASSERT_OK(LiftedDifference(&db, "l", "r", "out"));
  const WsdRelation* out = db.GetRelation("out").value();
  ASSERT_EQ(out->NumTuples(), 1u);
  EXPECT_EQ(out->tuple(0).cells[0].value(), Value::Int(2));
  // No components were created for the static kill.
  EXPECT_EQ(db.NumLiveComponents(), 0u);
}

TEST(LiftedEdge, DistinctReordersButPreservesDistribution) {
  // Uncertain tuple first, certain duplicates later: the reorder pass
  // must not change the answer distribution.
  WsdDb db;
  MAYBMS_ASSERT_OK(db.CreateRelation("r", Schema({{"x", ValueType::kInt}})));
  ASSERT_TRUE(InsertTuple(&db, "r",
                          {CellSpec::OrSet({{Value::Int(1), 0.5},
                                            {Value::Int(2), 0.5}})})
                  .ok());
  ASSERT_TRUE(InsertTuple(&db, "r", {CellSpec::Certain(Value::Int(1))}).ok());
  auto expected = [&] {
    std::map<std::string, double> dist;
    auto worlds = EnumerateWorlds(db);
    EXPECT_TRUE(worlds.ok());
    for (const auto& w : *worlds) {
      Relation rel = *w.catalog.Get("r").value();
      // Per-world set semantics.
      rel.SortRows();
      std::string key;
      Value prev = Value::Bottom();
      for (const auto& row : rel.rows()) {
        if (!(row[0] == prev)) key += row[0].ToString() + ";";
        prev = row[0];
      }
      dist[key] += w.prob;
    }
    return dist;
  }();
  MAYBMS_ASSERT_OK(LiftedDistinct(&db, "r", "out"));
  MAYBMS_ASSERT_OK(db.CheckInvariants());
  std::map<std::string, double> actual;
  auto worlds = EnumerateWorlds(db);
  ASSERT_TRUE(worlds.ok());
  for (const auto& w : *worlds) {
    Relation rel = *w.catalog.Get("out").value();
    rel.SortRows();
    std::string key;
    for (const auto& row : rel.rows()) key += row[0].ToString() + ";";
    actual[key] += w.prob;
  }
  for (const auto& [key, p] : expected) {
    ASSERT_TRUE(actual.count(key)) << key;
    EXPECT_NEAR(actual[key], p, 1e-9) << key;
  }
}

TEST(LiftedEdge, SelfJoinPreservesCorrelation) {
  // R ⋈ R on the uncertain column: both sides resolve identically per
  // world, so every pair matches (the same tuple paired with itself).
  WsdDb db;
  MAYBMS_ASSERT_OK(db.CreateRelation("r", Schema({{"x", ValueType::kInt}})));
  ASSERT_TRUE(InsertTuple(&db, "r",
                          {CellSpec::OrSet({{Value::Int(1), 0.5},
                                            {Value::Int(2), 0.5}})})
                  .ok());
  auto pred = Expr::Compare(CompareOp::kEq, Expr::ColumnIdx(0, "x"),
                            Expr::ColumnIdx(1, "r.x"));
  auto plan = Plan::Join(Plan::Scan("r"), Plan::Scan("r"), pred);
  auto result = ExecuteLifted(plan, db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto ec = ExpectedCount(*result, "result");
  ASSERT_TRUE(ec.ok());
  // In every world the single tuple joins with itself exactly once.
  EXPECT_NEAR(*ec, 1.0, 1e-12);
}

}  // namespace
}  // namespace maybms
