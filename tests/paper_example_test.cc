// Step-by-step reproduction of the paper's Section 2 walk-through:
//
//   select Test from R where Diagnosis = 'pregnancy'
//
// on the medical WSD. The paper derives, after selection, normalization
// and projection, the WSD
//
//     r1.Test  p
//     ultrasound 0.4
//     ⊥          0.6
//
// i.e. "the ultrasound test is recommended in pregnancy diagnosis with
// probability 0.4". These tests assert exactly that pipeline, including
// the intermediate three-world stage and the final conf() result.
#include <gtest/gtest.h>

#include "core/confidence.h"
#include "core/lifted.h"
#include "core/lifted_executor.h"
#include "core/normalize.h"
#include "ra/plan.h"
#include "tests/test_util.h"
#include "worlds/enumerate.h"

namespace maybms {
namespace {

using testing_util::CanonicalBag;
using testing_util::MedicalExample;

ExprPtr PregnancyPredicate() {
  return Expr::Compare(CompareOp::kEq, Expr::Column("Diagnosis"),
                       Expr::Const(Value::String("pregnancy")));
}

TEST(PaperExample, SelectionYieldsThreeWorlds) {
  WsdDb db = MedicalExample();
  MAYBMS_ASSERT_OK(LiftedSelect(&db, "R", PregnancyPredicate(), "ans"));
  MAYBMS_ASSERT_OK(db.CheckInvariants());

  auto worlds = EnumerateWorlds(db);
  ASSERT_TRUE(worlds.ok()) << worlds.status().ToString();
  auto merged = MergeEqualWorlds(std::move(*worlds));
  // Paper: "This answer represents three worlds: {(pregnancy, ultrasound,
  // weight gain)}, {(pregnancy, ultrasound, fatigue)}, and the empty
  // world", with probabilities 0.28, 0.12, 0.6.
  ASSERT_EQ(merged.size(), 3u);
  double p_empty = 0, p_wg = 0, p_fat = 0;
  for (const auto& w : merged) {
    const Relation& r = *w.catalog.Get("ans").value();
    if (r.NumRows() == 0) {
      p_empty = w.prob;
    } else {
      ASSERT_EQ(r.NumRows(), 1u);
      EXPECT_EQ(r.row(0)[0], Value::String("pregnancy"));
      EXPECT_EQ(r.row(0)[1], Value::String("ultrasound"));
      if (r.row(0)[2] == Value::String("weight gain")) p_wg = w.prob;
      if (r.row(0)[2] == Value::String("fatigue")) p_fat = w.prob;
    }
  }
  EXPECT_NEAR(p_empty, 0.6, 1e-12);
  EXPECT_NEAR(p_wg, 0.28, 1e-12);
  EXPECT_NEAR(p_fat, 0.12, 1e-12);
}

TEST(PaperExample, NormalizationDropsR2Components) {
  WsdDb db = MedicalExample();
  MAYBMS_ASSERT_OK(LiftedSelect(&db, "R", PregnancyPredicate(), "ans"));
  // After normalization the certain r2 tuple is gone (it fails the
  // selection in every world) and only r1's components remain.
  const WsdRelation* rel = db.GetRelation("ans").value();
  EXPECT_EQ(rel->NumTuples(), 1u);
  EXPECT_LE(db.NumLiveComponents(), 2u);
}

TEST(PaperExample, ProjectionGivesPaperFinalWsd) {
  WsdDb db = MedicalExample();
  MAYBMS_ASSERT_OK(LiftedSelect(&db, "R", PregnancyPredicate(), "tmp"));
  MAYBMS_ASSERT_OK(
      LiftedProject(&db, "tmp", {{Expr::Column("Test"), "Test"}}, "ans"));
  MAYBMS_ASSERT_OK(db.CheckInvariants());

  // Exactly the paper's final WSD: one tuple, one component with two rows
  // (ultrasound 0.4 | ⊥ 0.6).
  const WsdRelation* rel = db.GetRelation("ans").value();
  ASSERT_EQ(rel->NumTuples(), 1u);
  ASSERT_EQ(db.NumLiveComponents(), 1u);
  const Component& c = db.component(db.LiveComponents()[0]);
  ASSERT_EQ(c.NumRows(), 2u);
  double p_ultra = 0, p_bottom = 0;
  for (size_t r = 0; r < c.NumRows(); ++r) {
    // The surviving tuple's Test slot:
    const Cell& cell = rel->tuple(0).cells[0];
    ASSERT_TRUE(cell.is_ref());
    Value v = c.ValueAt(r, cell.ref().slot);
    if (v == Value::String("ultrasound")) p_ultra = c.prob(r);
    if (v.is_bottom()) p_bottom = c.prob(r);
  }
  EXPECT_NEAR(p_ultra, 0.4, 1e-12);
  EXPECT_NEAR(p_bottom, 0.6, 1e-12);

  // World view: {ultrasound} with 0.4, {} with 0.6.
  auto worlds = EnumerateWorlds(db);
  ASSERT_TRUE(worlds.ok());
  auto merged = MergeEqualWorlds(std::move(*worlds));
  ASSERT_EQ(merged.size(), 2u);
}

TEST(PaperExample, ProbQueryReturnsPointFour) {
  WsdDb db = MedicalExample();
  auto plan = Plan::Project(
      Plan::Select(Plan::Scan("R"), PregnancyPredicate()),
      {{Expr::Column("Test"), "Test"}});
  auto result = ExecuteLifted(plan, db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // prob() construct: probability of ultrasound being recommended = 0.4.
  auto conf = ConfTable(*result, "result");
  ASSERT_TRUE(conf.ok()) << conf.status().ToString();
  ASSERT_EQ(conf->NumRows(), 1u);
  EXPECT_EQ(conf->row(0)[0], Value::String("ultrasound"));
  EXPECT_NEAR(conf->row(0)[1].as_double(), 0.4, 1e-12);
}

TEST(PaperExample, SelectionOnNonMatchingValueGivesEmptyWorldSet) {
  WsdDb db = MedicalExample();
  auto pred = Expr::Compare(CompareOp::kEq, Expr::Column("Diagnosis"),
                            Expr::Const(Value::String("flu")));
  MAYBMS_ASSERT_OK(LiftedSelect(&db, "R", pred, "ans"));
  const WsdRelation* rel = db.GetRelation("ans").value();
  EXPECT_EQ(rel->NumTuples(), 0u);
  EXPECT_EQ(db.NumLiveComponents(), 0u);
}

TEST(PaperExample, SelectionOnCertainTupleKeepsIt) {
  WsdDb db = MedicalExample();
  auto pred = Expr::Compare(CompareOp::kEq, Expr::Column("Diagnosis"),
                            Expr::Const(Value::String("obesity")));
  MAYBMS_ASSERT_OK(LiftedSelect(&db, "R", pred, "ans"));
  const WsdRelation* rel = db.GetRelation("ans").value();
  ASSERT_EQ(rel->NumTuples(), 1u);
  // r2 is certain: the answer has one world with exactly that tuple.
  EXPECT_EQ(db.NumLiveComponents(), 0u);
  EXPECT_TRUE(rel->tuple(0).cells[1].is_certain());
  EXPECT_EQ(rel->tuple(0).cells[1].value(), Value::String("BMI"));
}

TEST(PaperExample, SymptomQueryCombinesBothTuples) {
  // select Symptom from R where Symptom = 'weight gain': r1 contributes in
  // 70% of worlds, r2 always.
  WsdDb db = MedicalExample();
  auto pred = Expr::Compare(CompareOp::kEq, Expr::Column("Symptom"),
                            Expr::Const(Value::String("weight gain")));
  auto plan = Plan::Project(Plan::Select(Plan::Scan("R"), pred),
                            {{Expr::Column("Symptom"), "Symptom"}});
  auto result = ExecuteLifted(plan, db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto conf = ConfTable(*result, "result");
  ASSERT_TRUE(conf.ok());
  ASSERT_EQ(conf->NumRows(), 1u);
  EXPECT_EQ(conf->row(0)[0], Value::String("weight gain"));
  EXPECT_NEAR(conf->row(0)[1].as_double(), 1.0, 1e-12);  // r2 is certain

  // Expected cardinality: 1 (r2) + 0.7 (r1) = 1.7.
  auto ec = ExpectedCount(*result, "result");
  ASSERT_TRUE(ec.ok());
  EXPECT_NEAR(*ec, 1.7, 1e-12);
}

}  // namespace
}  // namespace maybms
