// Unit tests for the injectable I/O environment: the POSIX
// implementation's contracts (atomic replace, append mode, mapping) and
// the FaultInjectingEnv's durability semantics (sync vs dir-sync,
// crash/recover tearing, scheduled faults, stale handles).
#include "storage/io_env.h"

#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tests/test_util.h"

namespace maybms {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(ParentDirTest, Basics) {
  EXPECT_EQ(ParentDir("/a/b/c"), "/a/b");
  EXPECT_EQ(ParentDir("/a"), "/");
  EXPECT_EQ(ParentDir("plain"), ".");
  EXPECT_EQ(ParentDir("dir/file"), "dir");
}

TEST(PosixEnvTest, AtomicWriteAndReadBack) {
  Env* env = Env::Default();
  const std::string path = TempPath("maybms_io_env_atomic.bin");
  MAYBMS_ASSERT_OK(AtomicWriteFile(env, path, "hello world"));
  auto read = env->ReadFileToString(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, "hello world");
  // Replacement leaves only the new content (and no stray temp file).
  MAYBMS_ASSERT_OK(AtomicWriteFile(env, path, "second"));
  EXPECT_EQ(*env->ReadFileToString(path), "second");
  EXPECT_FALSE(env->FileExists(path + ".tmp"));
  auto size = env->FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 6u);
  MAYBMS_ASSERT_OK(env->RemoveFile(path));
  EXPECT_FALSE(env->FileExists(path));
}

TEST(PosixEnvTest, AppendModeAndMap) {
  Env* env = Env::Default();
  const std::string path = TempPath("maybms_io_env_append.bin");
  {
    auto f = env->NewWritableFile(path, /*truncate=*/true);
    ASSERT_TRUE(f.ok());
    MAYBMS_ASSERT_OK((*f)->Append("abc"));
    MAYBMS_ASSERT_OK((*f)->Sync());
    MAYBMS_ASSERT_OK((*f)->Close());
  }
  {
    auto f = env->NewWritableFile(path, /*truncate=*/false);
    ASSERT_TRUE(f.ok());
    MAYBMS_ASSERT_OK((*f)->Append("def"));
    MAYBMS_ASSERT_OK((*f)->Close());
  }
  auto img = env->MapFile(path);
  ASSERT_TRUE(img.ok()) << img.status().ToString();
  EXPECT_EQ((*img)->bytes(), "abcdef");
  EXPECT_EQ((*img)->path(), path);
  MAYBMS_ASSERT_OK(env->TruncateFile(path, 4));
  EXPECT_EQ(*env->ReadFileToString(path), "abcd");
  MAYBMS_ASSERT_OK(env->RemoveFile(path));
}

TEST(PosixEnvTest, ErrorsCarryErrnoContext) {
  Env* env = Env::Default();
  auto read = env->ReadFileToString("/nonexistent/maybms/nope");
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
  EXPECT_NE(read.status().ToString().find("errno"), std::string::npos);
}

TEST(FaultEnvTest, SyncedBytesSurviveCrashUnsyncedMayTear) {
  FaultInjectingEnv env;
  auto f = env.NewWritableFile("f", true);
  ASSERT_TRUE(f.ok());
  MAYBMS_ASSERT_OK((*f)->Append("durable"));
  MAYBMS_ASSERT_OK((*f)->Sync());
  MAYBMS_ASSERT_OK(env.SyncDir("."));  // make the name durable too
  MAYBMS_ASSERT_OK((*f)->Append("volatile"));
  env.Crash();
  // While "down", every operation fails.
  EXPECT_EQ(env.ReadFileToString("f").status().code(), StatusCode::kIOError);
  Rng rng(7);
  env.Recover(&rng);
  auto content = env.ReadFileToString("f");
  ASSERT_TRUE(content.ok()) << content.status().ToString();
  // The synced prefix always survives; the unsynced suffix tears to some
  // prefix of what was appended.
  ASSERT_GE(content->size(), 7u);
  EXPECT_EQ(content->substr(0, 7), "durable");
  EXPECT_EQ(std::string("durablevolatile").substr(0, content->size()),
            *content);
}

TEST(FaultEnvTest, UnsyncedDirectoryEntryMayVanish) {
  // A file fsynced but whose directory entry was never dir-synced can be
  // lost wholesale; a dir-synced one cannot. Run many recoveries to see
  // both outcomes for the volatile name.
  bool seen_present = false, seen_absent = false;
  for (uint64_t seed = 0; seed < 32 && !(seen_present && seen_absent);
       ++seed) {
    FaultInjectingEnv env;
    auto a = env.NewWritableFile("stable", true);
    MAYBMS_ASSERT_OK((*a)->Sync());
    MAYBMS_ASSERT_OK(env.SyncDir("."));
    auto b = env.NewWritableFile("volatile", true);
    MAYBMS_ASSERT_OK((*b)->Sync());  // data synced, name is not
    env.Crash();
    Rng rng(seed);
    env.Recover(&rng);
    EXPECT_TRUE(env.FileExists("stable")) << "seed " << seed;
    (env.FileExists("volatile") ? seen_present : seen_absent) = true;
  }
  EXPECT_TRUE(seen_present);
  EXPECT_TRUE(seen_absent);
}

TEST(FaultEnvTest, RenameIsAtomicAcrossCrash) {
  // However the crash lands, rename never loses both names' contents:
  // afterwards exactly one of {old-at-destination, new-at-destination,
  // new-at-source} describes the world — the destination may hold either
  // version and the source either survives or not, but some complete
  // file always remains.
  for (uint64_t seed = 0; seed < 16; ++seed) {
    FaultInjectingEnv env;
    MAYBMS_ASSERT_OK(AtomicWriteFile(&env, "t", "old"));
    auto f = env.NewWritableFile("t.new", true);
    MAYBMS_ASSERT_OK((*f)->Append("new"));
    MAYBMS_ASSERT_OK((*f)->Sync());
    MAYBMS_ASSERT_OK(env.RenameFile("t.new", "t"));
    env.Crash();  // before the directory fsync commits the rename
    Rng rng(seed);
    env.Recover(&rng);
    auto content = env.ReadFileToString("t");
    ASSERT_TRUE(content.ok()) << "seed " << seed << ": destination lost";
    EXPECT_TRUE(*content == "old" || *content == "new") << *content;
  }
}

TEST(FaultEnvTest, HardFaultFailsAtScheduledOp) {
  FaultInjectingEnv env;
  FaultPlan plan;
  plan.fail_at_op = 2;
  env.set_plan(plan);
  Status st;
  for (int i = 0; i < 4; ++i) {
    auto f = env.NewWritableFile("f", true);  // one op each
    if (!f.ok()) {
      st = f.status();
      EXPECT_EQ(i, 2);
    }
  }
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_EQ(env.op_count(), 4);
}

TEST(FaultEnvTest, TransientFaultIsRetriedByAtomicWrite) {
  FaultInjectingEnv env;
  FaultPlan plan;
  plan.fail_at_op = 1;  // the Append inside AtomicWriteFile
  plan.fail_transient = true;
  env.set_plan(plan);
  MAYBMS_ASSERT_OK(AtomicWriteFile(&env, "f", "payload"));
  EXPECT_GE(env.transient_retries_observed(), 1);
  EXPECT_EQ(*env.ReadFileToString("f"), "payload");
}

TEST(FaultEnvTest, StaleHandleFailsAfterRecover) {
  FaultInjectingEnv env;
  auto f = env.NewWritableFile("f", true);
  ASSERT_TRUE(f.ok());
  MAYBMS_ASSERT_OK((*f)->Sync());
  env.Crash();
  Rng rng(3);
  env.Recover(&rng);
  Status st = (*f)->Append("late write");
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_NE(st.ToString().find("stale file handle"), std::string::npos);
}

TEST(FaultEnvTest, MutateFileByteFlipsContent) {
  FaultInjectingEnv env;
  MAYBMS_ASSERT_OK(AtomicWriteFile(&env, "f", "abcd"));
  MAYBMS_ASSERT_OK(env.MutateFileByte("f", 2));
  auto content = env.ReadFileToString("f");
  ASSERT_TRUE(content.ok());
  EXPECT_NE(*content, "abcd");
  EXPECT_EQ(content->size(), 4u);
  EXPECT_EQ((*content)[2], static_cast<char>('c' ^ 0x5a));
}

}  // namespace
}  // namespace maybms
