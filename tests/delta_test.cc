// Unit tests for the unified mutation API (core/delta.h): fluent batch
// construction, WAL-payload serialization, delta application with its
// dirty/removed effect sets, eviction garbage collection, deterministic
// partial failure, and the session-level streaming entry point
// (WAL-as-kDelta logging + recovery replay).
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/confidence.h"
#include "core/delta.h"
#include "core/wsd.h"
#include "sql/session.h"
#include "storage/io_env.h"
#include "storage/wal.h"
#include "tests/test_util.h"

namespace maybms {
namespace {

using testing_util::DbsExactlyEqual;
using testing_util::MedicalExample;

WsdDb TwoColumnDb() {
  WsdDb db;
  Schema schema({{"k", ValueType::kInt}, {"v", ValueType::kString}});
  MAYBMS_EXPECT_OK(db.CreateRelation("t", schema));
  return db;
}

std::vector<CellSpec> UncertainRow(int64_t k) {
  return {CellSpec::Certain(Value::Int(k)),
          CellSpec::OrSet({{Value::String("a"), 0.5},
                           {Value::String("b"), 0.5}})};
}

TEST(DeltaBatchTest, FluentConstructionAndToString) {
  DeltaBatch batch;
  batch.Insert("t", UncertainRow(1))
      .EvictOldest("t", 2)
      .Reweight(3, {0.25, 0.75})
      .SetCell(3, 0, 0, Value::Int(9))
      .RepairKey("t", {"k"}, "w")
      .Enforce(Constraint::Key("t", {"k"}, "pk"));
  EXPECT_EQ(batch.size(), 6u);
  EXPECT_FALSE(batch.empty());
  const std::string text = batch.ToString();
  for (const char* line : {"insert t", "evict t oldest 2", "reweight c3",
                           "setcell c3[0,0] = 9", "repair key t", "enforce"}) {
    EXPECT_NE(text.find(line), std::string::npos) << line << "\n" << text;
  }
}

TEST(DeltaBatchTest, SerializeRoundTripIsLossless) {
  DeltaBatch batch;
  batch.Insert("t", {CellSpec::Certain(Value::Int(-7)),
                     CellSpec::OrSet({{Value::String("x\"y"), 0.125},
                                      {Value::Null(), 0.875}})})
      .EvictOldest("events", 1u << 20)
      .Reweight(42, {1.0})
      .SetCell(7, 3, 1, Value::Double(2.5))
      .RepairKey("t", {"k", "v"}, "w")
      .Enforce(Constraint::FunctionalDependency("t", {"k"}, {"v"}, "fd"))
      .Enforce(Constraint::Key("t", {"k"}, "pk"));

  auto payload = batch.Serialize();
  MAYBMS_ASSERT_OK(payload.status());
  auto parsed = DeltaBatch::Deserialize(*payload);
  MAYBMS_ASSERT_OK(parsed.status());
  EXPECT_EQ(parsed->size(), batch.size());
  // Lossless round-trip ⇔ re-serialization is byte-identical.
  auto again = parsed->Serialize();
  MAYBMS_ASSERT_OK(again.status());
  EXPECT_EQ(*again, *payload);
  EXPECT_EQ(parsed->ToString(), batch.ToString());
}

TEST(DeltaBatchTest, SerializeRejectsDomainConstraintsAndPendingCells) {
  DeltaBatch domain;
  domain.Enforce(Constraint::Domain(
      "t", Expr::Compare(CompareOp::kLt, Expr::Column("k"),
                         Expr::Const(Value::Int(3))),
      "small"));
  EXPECT_EQ(domain.Serialize().status().code(), StatusCode::kInvalidArgument);

  DeltaBatch pending;
  pending.Insert("t", {CellSpec::Pending(), CellSpec::Certain(Value::Int(1))});
  EXPECT_EQ(pending.Serialize().status().code(), StatusCode::kInvalidArgument);
  // ...and the unserializable insert is also unappliable.
  WsdDb db = TwoColumnDb();
  EXPECT_EQ(db.ApplyDelta(pending).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DeltaBatchTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(DeltaBatch::Deserialize("not a delta").ok());
  DeltaBatch batch;
  batch.EvictOldest("t", 1);
  auto payload = batch.Serialize();
  MAYBMS_ASSERT_OK(payload.status());
  EXPECT_FALSE(DeltaBatch::Deserialize(*payload + "x").ok());  // trailing
  EXPECT_FALSE(
      DeltaBatch::Deserialize(payload->substr(0, payload->size() - 2)).ok());
}

TEST(ApplyDeltaTest, InsertReportsEffectsAndBumpsEpoch) {
  WsdDb db = TwoColumnDb();
  const uint64_t epoch0 = db.mutation_epoch();

  DeltaBatch batch;
  for (int i = 0; i < 3; ++i) batch.Insert("t", UncertainRow(i));
  auto effects = db.ApplyDelta(batch);
  MAYBMS_ASSERT_OK(effects.status());
  EXPECT_EQ(effects->tuples_inserted, 3u);
  EXPECT_EQ(effects->tuples_evicted, 0u);
  // One fresh single-slot component per or-set cell.
  EXPECT_EQ(effects->dirty_components.size(), 3u);
  EXPECT_TRUE(effects->removed_components.empty());
  ASSERT_EQ(effects->dirty_relations, std::vector<std::string>{"t"});
  EXPECT_EQ(effects->epoch, epoch0 + 1);
  EXPECT_EQ(db.mutation_epoch(), epoch0 + 1);
  EXPECT_EQ((*db.GetRelation("t"))->NumTuples(), 3u);

  // An empty batch is a no-op: no effects, no epoch bump.
  auto empty = db.ApplyDelta(DeltaBatch());
  MAYBMS_ASSERT_OK(empty.status());
  EXPECT_EQ(db.mutation_epoch(), epoch0 + 1);
}

TEST(ApplyDeltaTest, EvictGarbageCollectsUnreferencedComponents) {
  WsdDb db = TwoColumnDb();
  DeltaBatch fill;
  for (int i = 0; i < 4; ++i) fill.Insert("t", UncertainRow(i));
  MAYBMS_ASSERT_OK(db.ApplyDelta(fill).status());
  const std::vector<ComponentId> live = db.LiveComponents();
  ASSERT_EQ(live.size(), 4u);

  DeltaBatch evict;
  evict.EvictOldest("t", 2);
  auto effects = db.ApplyDelta(evict);
  MAYBMS_ASSERT_OK(effects.status());
  EXPECT_EQ(effects->tuples_evicted, 2u);
  // The two oldest tuples' or-set components no longer gate anything.
  EXPECT_EQ(effects->removed_components,
            std::vector<ComponentId>({live[0], live[1]}));
  EXPECT_TRUE(effects->dirty_components.empty());
  EXPECT_EQ(db.LiveComponents(),
            std::vector<ComponentId>({live[2], live[3]}));
  EXPECT_EQ((*db.GetRelation("t"))->NumTuples(), 2u);

  // Evicting more than resident clamps; evicting from a missing relation
  // fails.
  DeltaBatch over;
  over.EvictOldest("t", 100);
  auto clamped = db.ApplyDelta(over);
  MAYBMS_ASSERT_OK(clamped.status());
  EXPECT_EQ(clamped->tuples_evicted, 2u);
  DeltaBatch missing;
  missing.EvictOldest("nope", 1);
  EXPECT_FALSE(db.ApplyDelta(missing).ok());
}

TEST(ApplyDeltaTest, EvictKeepsComponentsSharedWithSurvivors) {
  // The medical example's c1 covers r1 only, but both tuples live in R;
  // share a component across two tuples by gating instead: REPAIR KEY
  // introduces existence components spanning alternatives.
  WsdDb db = MedicalExample();
  const size_t live_before = db.LiveComponents().size();
  DeltaBatch evict;
  evict.EvictOldest("R", 1);  // drops r1: c1 and the symptom or-set die
  auto effects = db.ApplyDelta(evict);
  MAYBMS_ASSERT_OK(effects.status());
  EXPECT_EQ(effects->removed_components.size(), 2u);
  EXPECT_EQ(db.LiveComponents().size(), live_before - 2);
  // The surviving certain tuple is intact.
  EXPECT_EQ((*db.GetRelation("R"))->NumTuples(), 1u);
}

TEST(ApplyDeltaTest, ReweightValidatesAndMarksDirty) {
  WsdDb db = TwoColumnDb();
  DeltaBatch fill;
  fill.Insert("t", UncertainRow(1));
  auto filled = db.ApplyDelta(fill);
  MAYBMS_ASSERT_OK(filled.status());
  ASSERT_EQ(filled->dirty_components.size(), 1u);
  const ComponentId cid = filled->dirty_components[0];

  for (auto& bad : std::vector<std::vector<double>>{
           {0.5},              // arity mismatch (component has 2 rows)
           {0.7, 0.7},         // mass != 1
           {-0.5, 1.5},        // outside [0,1]
       }) {
    DeltaBatch b;
    b.Reweight(cid, bad);
    EXPECT_FALSE(db.ApplyDelta(b).ok());
  }
  DeltaBatch dead;
  dead.Reweight(cid + 1000, {1.0});
  EXPECT_FALSE(db.ApplyDelta(dead).ok());

  DeltaBatch good;
  good.Reweight(cid, {0.25, 0.75});
  auto effects = db.ApplyDelta(good);
  MAYBMS_ASSERT_OK(effects.status());
  EXPECT_EQ(effects->dirty_components, std::vector<ComponentId>({cid}));
  EXPECT_EQ(effects->dirty_relations, std::vector<std::string>{"t"});
  EXPECT_DOUBLE_EQ(db.component(cid).prob(0), 0.25);

  DeltaBatch cell;
  cell.SetCell(cid, 0, 0, Value::String("z"));
  auto set_effects = db.ApplyDelta(cell);
  MAYBMS_ASSERT_OK(set_effects.status());
  EXPECT_EQ(set_effects->dirty_components, std::vector<ComponentId>({cid}));
  DeltaBatch oob;
  oob.SetCell(cid, 5, 0, Value::String("z"));
  EXPECT_FALSE(db.ApplyDelta(oob).ok());
}

TEST(ApplyDeltaTest, RepairAndEnforceAggregateStats) {
  WsdDb db;
  Schema schema({{"k", ValueType::kInt}, {"v", ValueType::kInt}});
  MAYBMS_EXPECT_OK(db.CreateRelation("t", schema));
  DeltaBatch fill;
  for (int64_t v = 0; v < 3; ++v) {
    fill.Insert("t", {CellSpec::Certain(Value::Int(1)),
                      CellSpec::Certain(Value::Int(v))});
  }
  fill.Insert("t", {CellSpec::Certain(Value::Int(2)),
                    CellSpec::Certain(Value::Int(9))});
  MAYBMS_ASSERT_OK(db.ApplyDelta(fill).status());

  DeltaBatch repair;
  repair.RepairKey("t", {"k"});
  auto effects = db.ApplyDelta(repair);
  MAYBMS_ASSERT_OK(effects.status());
  EXPECT_EQ(effects->repair_groups, 2u);
  EXPECT_EQ(effects->repair_conflicting_groups, 1u);
  EXPECT_GT(effects->repair_log2_worlds_added, 0.0);

  // ENFORCE as a delta op: the FD k->v holds per world after the repair,
  // so enforcement removes nothing — the stats still flow through.
  DeltaBatch enforce;
  enforce.Enforce(Constraint::FunctionalDependency("t", {"k"}, {"v"}, "fd"));
  auto enforced = db.ApplyDelta(enforce);
  MAYBMS_ASSERT_OK(enforced.status());
  EXPECT_EQ(enforced->enforce_rows_removed, 0u);
  EXPECT_DOUBLE_EQ(enforced->enforce_removed_mass, 0.0);
}

TEST(ApplyDeltaTest, FailFastKeepsAppliedPrefixDeterministically) {
  WsdDb a = TwoColumnDb();
  DeltaBatch seed;
  seed.Insert("t", UncertainRow(0));
  MAYBMS_ASSERT_OK(a.ApplyDelta(seed).status());
  WsdDb b(a);  // COW copy: identical starting state

  DeltaBatch batch;
  batch.Insert("t", UncertainRow(1))
      .EvictOldest("missing", 1)  // fails here
      .Insert("t", UncertainRow(2));
  const uint64_t epoch_before = a.mutation_epoch();
  auto ra = a.ApplyDelta(batch);
  auto rb = b.ApplyDelta(batch);
  EXPECT_FALSE(ra.ok());
  EXPECT_EQ(ra.status().ToString(), rb.status().ToString());
  // Ops before the failing one stay applied — identically on both
  // replicas (the property WAL replay of a half-applied batch needs) —
  // and the failed batch still counts as a mutation epoch.
  EXPECT_EQ((*a.GetRelation("t"))->NumTuples(), 2u);
  EXPECT_TRUE(DbsExactlyEqual(a, b));
  EXPECT_EQ(a.mutation_epoch(), epoch_before + 1);
}

TEST(ApplyDeltaTest, DirtyTrackingFeedsConfidenceInvalidation) {
  // A delta to one relation must not dirty another; CONF answers track
  // the mutation.
  WsdDb db = TwoColumnDb();
  Schema other({{"x", ValueType::kInt}});
  MAYBMS_EXPECT_OK(db.CreateRelation("u", other));
  DeltaBatch fill;
  fill.Insert("t", UncertainRow(1));
  fill.Insert("u", {CellSpec::Certain(Value::Int(5))});
  MAYBMS_ASSERT_OK(db.ApplyDelta(fill).status());

  DeltaBatch only_t;
  only_t.Insert("t", UncertainRow(2));
  auto effects = db.ApplyDelta(only_t);
  MAYBMS_ASSERT_OK(effects.status());
  EXPECT_EQ(effects->dirty_relations, std::vector<std::string>{"t"});

  auto conf = ConfTable(db, "t");
  MAYBMS_ASSERT_OK(conf.status());
  EXPECT_EQ(conf->NumRows(), 4u);  // {1,2} x {a,b}
}

TEST(SessionDeltaTest, ApplyDeltaLogsOneWalRecordAndRecovers) {
  FaultInjectingEnv env;
  sql::Session s;
  s.set_env(&env);
  MAYBMS_ASSERT_OK(
      s.Execute("CREATE TABLE t (k INT, v STRING)").status());
  MAYBMS_ASSERT_OK(s.Execute("SAVE DATABASE 'db'").status());
  ASSERT_TRUE(s.has_durable_attachment());

  DeltaBatch batch;
  batch.Insert("t", UncertainRow(1)).Insert("t", UncertainRow(2));
  auto effects = s.ApplyDelta(batch);
  MAYBMS_ASSERT_OK(effects.status());
  EXPECT_EQ(effects->tuples_inserted, 2u);
  EXPECT_EQ(s.wal_record_count(), 1u);  // the whole batch is one record

  auto contents = wal::ReadWal(&env, "db.wal");
  MAYBMS_ASSERT_OK(contents.status());
  ASSERT_EQ(contents->records.size(), 1u);
  EXPECT_EQ(contents->records[0].type, wal::RecordType::kDelta);

  // Recovery: a fresh session replays the delta record onto the
  // snapshot and reproduces the identical database.
  sql::Session r;
  r.set_env(&env);
  auto loaded = r.Execute("LOAD DATABASE 'db'");
  MAYBMS_ASSERT_OK(loaded.status());
  EXPECT_NE(loaded->message.find("recovered 1 statement(s)"),
            std::string::npos)
      << loaded->message;
  testing_util::ExpectDbsExactlyEqual(s.db(), r.db());
}

TEST(SessionDeltaTest, UnserializableBatchFailsBeforeApplying) {
  // Under a durable attachment, a batch that cannot reach the WAL must
  // not mutate the database either (log-before-apply).
  FaultInjectingEnv env;
  sql::Session s;
  s.set_env(&env);
  MAYBMS_ASSERT_OK(s.Execute("CREATE TABLE t (k INT, v STRING)").status());
  MAYBMS_ASSERT_OK(s.Execute("SAVE DATABASE 'db'").status());

  DeltaBatch batch;
  batch.Insert("t", UncertainRow(1));
  batch.Enforce(Constraint::Domain(
      "t", Expr::Compare(CompareOp::kLt, Expr::Column("k"),
                         Expr::Const(Value::Int(3))),
      "small"));
  EXPECT_FALSE(s.ApplyDelta(batch).ok());
  EXPECT_EQ(s.wal_record_count(), 0u);
  EXPECT_EQ((*s.db().GetRelation("t"))->NumTuples(), 0u);
}

}  // namespace
}  // namespace maybms
