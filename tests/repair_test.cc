// Tests for REPAIR KEY (uncertainty introduction) and the ESUM expected
// aggregate.
#include <gtest/gtest.h>

#include <map>

#include "core/builder.h"
#include "core/confidence.h"
#include "core/repair.h"
#include "sql/session.h"
#include "tests/test_util.h"
#include "worlds/enumerate.h"

namespace maybms {
namespace {

WsdDb DirtyPersons() {
  WsdDb db;
  Status st = db.CreateRelation("p", Schema({{"id", ValueType::kInt},
                                             {"city", ValueType::kString},
                                             {"w", ValueType::kDouble}}));
  EXPECT_TRUE(st.ok());
  auto add = [&](int64_t id, const char* city, double w) {
    auto h = InsertTuple(&db, "p",
                         {CellSpec::Certain(Value::Int(id)),
                          CellSpec::Certain(Value::String(city)),
                          CellSpec::Certain(Value::Double(w))});
    EXPECT_TRUE(h.ok());
  };
  add(1, "berlin", 3.0);
  add(1, "paris", 1.0);
  add(2, "rome", 1.0);
  add(3, "oslo", 2.0);
  add(3, "bern", 1.0);
  add(3, "kiev", 1.0);
  return db;
}

TEST(RepairKeyTest, UniformRepairDistribution) {
  WsdDb db = DirtyPersons();
  auto stats = RepairKey(&db, "p", {"id"});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->groups, 3u);
  EXPECT_EQ(stats->conflicting_groups, 2u);
  MAYBMS_ASSERT_OK(db.CheckInvariants());
  // Worlds: 2 x 3 = 6 choice combinations, uniform 1/6 each; every world
  // has exactly one tuple per id.
  auto worlds = EnumerateWorlds(db);
  ASSERT_TRUE(worlds.ok());
  auto merged = MergeEqualWorlds(std::move(*worlds));
  ASSERT_EQ(merged.size(), 6u);
  for (const auto& w : merged) {
    EXPECT_NEAR(w.prob, 1.0 / 6, 1e-12);
    const Relation& r = *w.catalog.Get("p").value();
    ASSERT_EQ(r.NumRows(), 3u);
    std::map<int64_t, int> counts;
    for (const auto& row : r.rows()) counts[row[0].as_int()]++;
    for (const auto& [id, n] : counts) EXPECT_EQ(n, 1) << "id " << id;
  }
}

TEST(RepairKeyTest, WeightedRepair) {
  WsdDb db = DirtyPersons();
  auto stats = RepairKey(&db, "p", {"id"}, "w");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // P(id=1 chooses berlin) = 3/4; P(id=3 chooses oslo) = 2/4.
  auto conf = ConfTable(db, "p");
  ASSERT_TRUE(conf.ok());
  std::map<std::string, double> probs;
  for (const auto& row : conf->rows()) {
    probs[row[1].as_string()] = row.back().as_double();
  }
  EXPECT_NEAR(probs["berlin"], 0.75, 1e-12);
  EXPECT_NEAR(probs["paris"], 0.25, 1e-12);
  EXPECT_NEAR(probs["rome"], 1.0, 1e-12);
  EXPECT_NEAR(probs["oslo"], 0.5, 1e-12);
  EXPECT_NEAR(probs["bern"], 0.25, 1e-12);
}

TEST(RepairKeyTest, ZeroWeightTuplesAreImpossible) {
  WsdDb db;
  MAYBMS_ASSERT_OK(db.CreateRelation("p", Schema({{"id", ValueType::kInt},
                                                  {"w", ValueType::kInt}})));
  ASSERT_TRUE(InsertTuple(&db, "p", {CellSpec::Certain(Value::Int(1)),
                                     CellSpec::Certain(Value::Int(0))})
                  .ok());
  ASSERT_TRUE(InsertTuple(&db, "p", {CellSpec::Certain(Value::Int(1)),
                                     CellSpec::Certain(Value::Int(5))})
                  .ok());
  auto stats = RepairKey(&db, "p", {"id"}, "w");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // Only the weight-5 tuple survives, with certainty.
  const WsdRelation* rel = db.GetRelation("p").value();
  ASSERT_EQ(rel->NumTuples(), 1u);
  EXPECT_EQ(rel->tuple(0).cells[1].value(), Value::Int(5));
  EXPECT_EQ(db.NumLiveComponents(), 0u);
}

TEST(RepairKeyTest, ZeroTotalWeightIsInconsistent) {
  WsdDb db;
  MAYBMS_ASSERT_OK(db.CreateRelation("p", Schema({{"id", ValueType::kInt},
                                                  {"w", ValueType::kInt}})));
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(InsertTuple(&db, "p", {CellSpec::Certain(Value::Int(1)),
                                       CellSpec::Certain(Value::Int(0))})
                    .ok());
  }
  EXPECT_EQ(RepairKey(&db, "p", {"id"}, "w").status().code(),
            StatusCode::kInconsistent);
}

TEST(RepairKeyTest, InputValidation) {
  WsdDb db = DirtyPersons();
  EXPECT_EQ(RepairKey(&db, "p", {}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RepairKey(&db, "p", {"nope"}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(RepairKey(&db, "p", {"id"}, "city").status().code(),
            StatusCode::kTypeMismatch);
  // Uncertain key cells are unsupported.
  WsdDb db2;
  MAYBMS_ASSERT_OK(db2.CreateRelation("r", Schema({{"k", ValueType::kInt}})));
  ASSERT_TRUE(InsertTuple(&db2, "r",
                          {CellSpec::UniformOrSet({Value::Int(1),
                                                   Value::Int(2)})})
                  .ok());
  EXPECT_EQ(RepairKey(&db2, "r", {"k"}).status().code(),
            StatusCode::kUnsupported);
}

TEST(RepairKeyTest, UncertainNonKeyCellsArePreserved) {
  WsdDb db;
  MAYBMS_ASSERT_OK(db.CreateRelation("r", Schema({{"k", ValueType::kInt},
                                                  {"v", ValueType::kInt}})));
  ASSERT_TRUE(InsertTuple(&db, "r",
                          {CellSpec::Certain(Value::Int(1)),
                           CellSpec::OrSet({{Value::Int(10), 0.5},
                                            {Value::Int(20), 0.5}})})
                  .ok());
  ASSERT_TRUE(InsertTuple(&db, "r", {CellSpec::Certain(Value::Int(1)),
                                     CellSpec::Certain(Value::Int(30))})
                  .ok());
  auto stats = RepairKey(&db, "r", {"k"});
  ASSERT_TRUE(stats.ok());
  // Worlds: choice of tuple (1/2 each) x v or-set for the first tuple.
  auto conf = ConfTable(db, "r");
  ASSERT_TRUE(conf.ok());
  std::map<int64_t, double> probs;
  for (const auto& row : conf->rows()) {
    probs[row[1].as_int()] = row.back().as_double();
  }
  EXPECT_NEAR(probs[10], 0.25, 1e-12);
  EXPECT_NEAR(probs[20], 0.25, 1e-12);
  EXPECT_NEAR(probs[30], 0.5, 1e-12);
}

TEST(RepairKeyTest, SqlStatement) {
  sql::Session session;
  auto setup = session.ExecuteScript(R"sql(
    CREATE TABLE dirty (id INT, city STRING, w DOUBLE);
    INSERT INTO dirty VALUES
      (1, 'berlin', 3.0), (1, 'paris', 1.0), (2, 'rome', 1.0);
    REPAIR KEY (id) IN dirty WEIGHT BY w;
  )sql");
  ASSERT_TRUE(setup.ok()) << setup.status().ToString();
  EXPECT_NE(setup->back().message.find("1 conflicting"), std::string::npos)
      << setup->back().message;
  auto prob = session.Execute("SELECT city, PROB() FROM dirty");
  ASSERT_TRUE(prob.ok());
  std::map<std::string, double> probs;
  for (const auto& row : prob->table.rows()) {
    probs[row[0].as_string()] = row[1].as_double();
  }
  EXPECT_NEAR(probs["berlin"], 0.75, 1e-12);
  EXPECT_NEAR(probs["rome"], 1.0, 1e-12);
}

TEST(EsumTest, MatchesOracle) {
  WsdDb db;
  MAYBMS_ASSERT_OK(db.CreateRelation("r", Schema({{"v", ValueType::kInt}})));
  ASSERT_TRUE(InsertTuple(&db, "r",
                          {CellSpec::OrSet({{Value::Int(10), 0.5},
                                            {Value::Int(20), 0.5}})})
                  .ok());
  ASSERT_TRUE(InsertTuple(&db, "r", {CellSpec::Certain(Value::Int(5))}).ok());
  auto es = ExpectedSum(db, "r", "v");
  ASSERT_TRUE(es.ok()) << es.status().ToString();
  EXPECT_NEAR(*es, 15.0 + 5.0, 1e-12);

  // Oracle comparison on a random WSD (numeric columns only).
  Rng rng(23);
  testing_util::RandomWsdOptions opt;
  opt.allow_strings = false;
  opt.p_uncertain_cell = 0.5;
  WsdDb rdb = testing_util::RandomWsd(&rng, opt);
  auto expected = [&] {
    auto worlds = EnumerateWorlds(rdb, 1u << 16);
    EXPECT_TRUE(worlds.ok());
    double acc = 0;
    for (const auto& w : *worlds) {
      for (const auto& row : w.catalog.Get("R0").value()->rows()) {
        if (row[0].is_numeric()) acc += w.prob * row[0].NumericValue();
      }
    }
    return acc;
  }();
  auto actual = ExpectedSum(rdb, "R0", "a0");
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();
  EXPECT_NEAR(*actual, expected, 1e-9);
}

TEST(EsumTest, GatedTuplesCountConditionally) {
  // After repair, the value contributes only in worlds where its tuple
  // was chosen.
  WsdDb db = DirtyPersons();
  ASSERT_TRUE(RepairKey(&db, "p", {"id"}, "w").ok());
  auto es = ExpectedSum(db, "p", "w");
  ASSERT_TRUE(es.ok());
  // id1: 3*(3/4)+1*(1/4)=2.5; id2: 1; id3: 2*(1/2)+1*(1/4)+1*(1/4)=1.5.
  EXPECT_NEAR(*es, 2.5 + 1.0 + 1.5, 1e-12);
}

TEST(EsumTest, SqlSurface) {
  sql::Session session;
  auto setup = session.ExecuteScript(R"sql(
    CREATE TABLE t (v INT);
    INSERT INTO t VALUES ({10: 0.5, 20: 0.5}), (5);
  )sql");
  ASSERT_TRUE(setup.ok());
  auto es = session.Execute("SELECT ESUM(v) FROM t");
  ASSERT_TRUE(es.ok()) << es.status().ToString();
  EXPECT_NEAR(es->table.row(0)[0].as_double(), 20.0, 1e-12);
  auto filtered = session.Execute("SELECT ESUM(v) FROM t WHERE v > 5");
  ASSERT_TRUE(filtered.ok());
  EXPECT_NEAR(filtered->table.row(0)[0].as_double(), 15.0, 1e-12);
  EXPECT_EQ(session.Execute("SELECT ESUM(v), PROB() FROM t").status().code(),
            StatusCode::kParseError);
}

TEST(EsumTest, TypeErrors) {
  WsdDb db = DirtyPersons();
  EXPECT_EQ(ExpectedSum(db, "p", "city").status().code(),
            StatusCode::kTypeMismatch);
  EXPECT_EQ(ExpectedSum(db, "p", "nope").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace maybms
