// Tests for confidence computation (prob()/conf(), possible/certain
// answers, expected count) — validated against brute-force enumeration.
#include <gtest/gtest.h>

#include <map>

#include "core/builder.h"
#include "core/confidence.h"
#include "tests/test_util.h"
#include "worlds/enumerate.h"

namespace maybms {
namespace {

using testing_util::MedicalExample;
using testing_util::RandomWsd;
using testing_util::RandomWsdOptions;

// Brute-force conf: for each distinct value-vector, sum the probabilities
// of worlds containing it.
std::map<std::string, double> OracleConf(const WsdDb& db,
                                         const std::string& rel) {
  auto worlds = EnumerateWorlds(db, 1u << 18);
  EXPECT_TRUE(worlds.ok());
  std::map<std::string, double> conf;
  for (const auto& w : *worlds) {
    const Relation& r = *w.catalog.Get(rel).value();
    std::map<std::string, bool> present;
    for (const auto& row : r.rows()) {
      std::string key;
      for (const auto& v : row) key += v.ToString() + "|";
      present[key] = true;
    }
    for (const auto& [key, unused] : present) conf[key] += w.prob;
  }
  return conf;
}

std::map<std::string, double> TableConf(const Relation& table) {
  std::map<std::string, double> conf;
  for (const auto& row : table.rows()) {
    std::string key;
    for (size_t c = 0; c + 1 < row.size(); ++c) key += row[c].ToString() + "|";
    conf[key] = row.back().as_double();
  }
  return conf;
}

TEST(ConfidenceTest, MedicalExampleValues) {
  WsdDb db = MedicalExample();
  auto table = ConfTable(db, "R");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  // Possible tuples: 2 (r1 variants) * ... r1 has 2x2 value combinations,
  // r2 is one certain tuple -> 5 distinct vectors.
  EXPECT_EQ(table->NumRows(), 5u);
  auto oracle = OracleConf(db, "R");
  auto actual = TableConf(*table);
  ASSERT_EQ(oracle.size(), actual.size());
  for (const auto& [key, p] : oracle) {
    ASSERT_TRUE(actual.count(key)) << key;
    EXPECT_NEAR(actual[key], p, 1e-9) << key;
  }
}

TEST(ConfidenceTest, CertainTuples) {
  WsdDb db = MedicalExample();
  auto certain = CertainTuples(db, "R");
  ASSERT_TRUE(certain.ok());
  // Only r2 = (obesity, BMI, weight gain) is certain.
  ASSERT_EQ(certain->NumRows(), 1u);
  EXPECT_EQ(certain->row(0)[0], Value::String("obesity"));
  EXPECT_EQ(certain->schema().size(), 3u);  // conf column stripped
}

TEST(ConfidenceTest, ConfSortedDescending) {
  WsdDb db = MedicalExample();
  auto table = ConfTable(db, "R");
  ASSERT_TRUE(table.ok());
  for (size_t i = 1; i < table->NumRows(); ++i) {
    EXPECT_GE(table->row(i - 1).back().as_double(),
              table->row(i).back().as_double());
  }
}

TEST(ConfidenceTest, DuplicateValueTuplesDoNotDoubleCount) {
  // Two independent tuples that can both be (1): conf(1) = 1-(1-p)(1-q).
  WsdDb db;
  MAYBMS_ASSERT_OK(db.CreateRelation("r", Schema({{"x", ValueType::kInt}})));
  ASSERT_TRUE(InsertTuple(&db, "r",
                          {CellSpec::OrSet({{Value::Int(1), 0.5},
                                            {Value::Int(2), 0.5}})})
                  .ok());
  ASSERT_TRUE(InsertTuple(&db, "r",
                          {CellSpec::OrSet({{Value::Int(1), 0.25},
                                            {Value::Int(3), 0.75}})})
                  .ok());
  auto table = ConfTable(db, "r");
  ASSERT_TRUE(table.ok());
  std::map<std::string, double> conf = TableConf(*table);
  EXPECT_NEAR(conf["1|"], 1.0 - 0.5 * 0.75, 1e-12);
  EXPECT_NEAR(conf["2|"], 0.5, 1e-12);
  EXPECT_NEAR(conf["3|"], 0.75, 1e-12);
}

TEST(ConfidenceTest, CorrelatedTuplesUseJointEnumeration) {
  // Two tuples sharing one component: their values co-vary.
  WsdDb db;
  MAYBMS_ASSERT_OK(db.CreateRelation("r", Schema({{"x", ValueType::kInt}})));
  auto t1 = InsertTuple(&db, "r", {CellSpec::Pending()});
  auto t2 = InsertTuple(&db, "r", {CellSpec::Pending()});
  ASSERT_TRUE(t1.ok() && t2.ok());
  ASSERT_TRUE(AddJointComponent(
                  &db, {{*t1, "x"}, {*t2, "x"}},
                  {{{Value::Int(1), Value::Int(2)}, 0.3},
                   {{Value::Int(5), Value::Int(5)}, 0.7}})
                  .ok());
  auto table = ConfTable(db, "r");
  ASSERT_TRUE(table.ok());
  auto conf = TableConf(*table);
  EXPECT_NEAR(conf["1|"], 0.3, 1e-12);
  EXPECT_NEAR(conf["2|"], 0.3, 1e-12);
  // Both tuples take value 5 simultaneously: count once.
  EXPECT_NEAR(conf["5|"], 0.7, 1e-12);
}

TEST(ConfidenceTest, CrossTupleCertainty) {
  // Anti-correlated tuples: in every world exactly one carries 1 and the
  // other carries 2, so both values are CERTAIN answers although neither
  // tuple is individually fixed.
  WsdDb db;
  MAYBMS_ASSERT_OK(db.CreateRelation("r", Schema({{"x", ValueType::kInt}})));
  auto t1 = InsertTuple(&db, "r", {CellSpec::Pending()});
  auto t2 = InsertTuple(&db, "r", {CellSpec::Pending()});
  ASSERT_TRUE(t1.ok() && t2.ok());
  ASSERT_TRUE(AddJointComponent(&db, {{*t1, "x"}, {*t2, "x"}},
                                {{{Value::Int(1), Value::Int(2)}, 0.5},
                                 {{Value::Int(2), Value::Int(1)}, 0.5}})
                  .ok());
  auto certain = CertainTuples(db, "r");
  ASSERT_TRUE(certain.ok());
  EXPECT_EQ(certain->NumRows(), 2u);
  auto conf = TableConf(*ConfTable(db, "r"));
  EXPECT_NEAR(conf["1|"], 1.0, 1e-12);
  EXPECT_NEAR(conf["2|"], 1.0, 1e-12);
}

TEST(ConfidenceTest, ExpectedCount) {
  WsdDb db = MedicalExample();
  auto ec = ExpectedCount(db, "R");
  ASSERT_TRUE(ec.ok());
  EXPECT_NEAR(*ec, 2.0, 1e-12);  // both tuples exist in every world
}

TEST(ConfidenceTest, BudgetExceeded) {
  // A chain of tuples R(x, y) where each joint component covers the y of
  // one tuple and the x of the next: a single independence cluster with
  // 2^12 joint states.
  WsdDb db;
  MAYBMS_ASSERT_OK(db.CreateRelation("r", Schema({{"x", ValueType::kInt},
                                                  {"y", ValueType::kInt}})));
  auto prev = InsertTuple(&db, "r", {CellSpec::Certain(Value::Int(0)),
                                     CellSpec::Pending()});
  ASSERT_TRUE(prev.ok());
  TupleHandle chain = *prev;
  for (int i = 0; i < 12; ++i) {
    bool last = (i == 11);
    auto next = InsertTuple(
        &db, "r",
        {CellSpec::Pending(), last ? CellSpec::Certain(Value::Int(99))
                                   : CellSpec::Pending()});
    ASSERT_TRUE(next.ok());
    ASSERT_TRUE(AddJointComponent(
                    &db, {{chain, "y"}, {*next, "x"}},
                    {{{Value::Int(i), Value::Int(i + 1)}, 0.5},
                     {{Value::Int(i + 1), Value::Int(i)}, 0.5}})
                    .ok());
    chain = *next;
  }
  // One chain cluster with 2^12 states; a small budget must fail cleanly.
  ConfidenceOptions opt;
  opt.max_cluster_states = 64;
  EXPECT_EQ(ConfTable(db, "r", opt).status().code(),
            StatusCode::kResourceExhausted);
  // The default budget handles it and matches the oracle.
  auto table = ConfTable(db, "r");
  ASSERT_TRUE(table.ok());
  auto oracle = OracleConf(db, "r");
  auto actual = TableConf(*table);
  for (const auto& [key, p] : oracle) {
    EXPECT_NEAR(actual[key], p, 1e-9) << key;
  }
}

class ConfidenceRandom : public ::testing::TestWithParam<int> {};

TEST_P(ConfidenceRandom, MatchesOracle) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 48271 + 19);
  RandomWsdOptions opt;
  opt.p_uncertain_cell = 0.45;
  opt.p_joint = 0.4;
  opt.max_tuples = 4;
  WsdDb db = RandomWsd(&rng, opt);
  auto table = ConfTable(db, "R0");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  auto oracle = OracleConf(db, "R0");
  auto actual = TableConf(*table);
  ASSERT_EQ(oracle.size(), actual.size());
  for (const auto& [key, p] : oracle) {
    ASSERT_TRUE(actual.count(key)) << key;
    EXPECT_NEAR(actual[key], p, 1e-9) << key;
  }
  // Expected count also matches the oracle.
  auto worlds = EnumerateWorlds(db, 1u << 18);
  ASSERT_TRUE(worlds.ok());
  double oracle_ec = 0;
  for (const auto& w : *worlds) {
    oracle_ec +=
        w.prob *
        static_cast<double>(w.catalog.Get("R0").value()->NumRows());
  }
  auto ec = ExpectedCount(db, "R0");
  ASSERT_TRUE(ec.ok());
  EXPECT_NEAR(*ec, oracle_ec, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfidenceRandom, ::testing::Range(0, 25));

}  // namespace
}  // namespace maybms
