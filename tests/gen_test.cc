// Tests for the census generator, the or-set noise injector and the
// canonical workload definitions.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "chase/enforce.h"
#include "core/builder.h"
#include "gen/census.h"
#include "gen/noise.h"
#include "gen/workload.h"
#include "ra/executor.h"
#include "tests/test_util.h"

namespace maybms {
namespace {

TEST(CensusTest, SchemaHasFiftyIntAttributes) {
  Schema s = CensusSchema();
  EXPECT_EQ(s.size(), 50u);
  for (size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(s.attr(i).type, ValueType::kInt);
  }
  EXPECT_TRUE(s.IndexOf("AGE").has_value());
  EXPECT_TRUE(s.IndexOf("STATEFIP").has_value());
}

TEST(CensusTest, DeterministicFromSeed) {
  Relation a = GenerateCensus({100, 7});
  Relation b = GenerateCensus({100, 7});
  Relation c = GenerateCensus({100, 8});
  EXPECT_TRUE(a.BagEquals(b));
  EXPECT_FALSE(a.BagEquals(c));
}

TEST(CensusTest, PernumIsUniqueKey) {
  Relation r = GenerateCensus({500, 1});
  std::set<int64_t> ids;
  for (const auto& row : r.rows()) ids.insert(row[0].as_int());
  EXPECT_EQ(ids.size(), 500u);
}

TEST(CensusTest, CleanDataSatisfiesWorkloadConstraints) {
  Relation census = GenerateCensus({400, 3});
  Catalog cat;
  MAYBMS_ASSERT_OK(cat.Create(std::move(census)));
  WsdDb db = FromCatalog(cat);
  for (const auto& c : CensusConstraints()) {
    auto p = ViolationProbability(db, c);
    ASSERT_TRUE(p.ok()) << c.ToString() << ": " << p.status().ToString();
    EXPECT_EQ(*p, 0.0) << "clean data violates " << c.ToString();
  }
}

TEST(CensusTest, ValueRangesPlausible) {
  Relation r = GenerateCensus({1000, 5});
  const Schema& s = r.schema();
  size_t age = *s.IndexOf("AGE");
  size_t state = *s.IndexOf("STATEFIP");
  size_t inc = *s.IndexOf("INCTOT");
  for (const auto& row : r.rows()) {
    EXPECT_GE(row[age].as_int(), 0);
    EXPECT_LE(row[age].as_int(), 90);
    EXPECT_GE(row[state].as_int(), 0);
    EXPECT_LT(row[state].as_int(), 51);
    EXPECT_GE(row[inc].as_int(), 0);
  }
}

TEST(CensusTest, StatesCoverAllFips) {
  Relation s = GenerateStates();
  EXPECT_EQ(s.NumRows(), 51u);
  std::set<std::string> regions;
  for (const auto& row : s.rows()) regions.insert(row[2].as_string());
  EXPECT_EQ(regions.size(), 4u);
}

TEST(NoiseTest, HitsRequestedFraction) {
  Catalog cat;
  MAYBMS_ASSERT_OK(cat.Create(GenerateCensus({200, 11})));
  WsdDb db = FromCatalog(cat);
  NoiseOptions opt;
  opt.cell_fraction = 0.01;
  opt.seed = 23;
  auto stats = ApplyOrSetNoise(&db, "census", opt);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  size_t eligible = 200 * 49;  // key column excluded
  size_t target = static_cast<size_t>(eligible * 0.01 + 0.5);
  EXPECT_EQ(stats->cells_noised, target);
  EXPECT_EQ(db.NumLiveComponents(), stats->cells_noised);
  MAYBMS_ASSERT_OK(db.CheckInvariants());
  // Worlds: product of alternative counts; log2 > 0.
  EXPECT_GT(stats->log2_worlds, 0.0);
  EXPECT_NEAR(stats->log2_worlds, db.Log2WorldCount(), 1e-9);
}

TEST(NoiseTest, KeyColumnNeverNoised) {
  Catalog cat;
  MAYBMS_ASSERT_OK(cat.Create(GenerateCensus({100, 13})));
  WsdDb db = FromCatalog(cat);
  NoiseOptions opt;
  opt.cell_fraction = 0.2;
  auto stats = ApplyOrSetNoise(&db, "census", opt);
  ASSERT_TRUE(stats.ok());
  const WsdRelation* rel = db.GetRelation("census").value();
  for (const auto& t : rel->tuples()) {
    EXPECT_TRUE(t.cells[0].is_certain());
  }
}

TEST(NoiseTest, ColumnSubsetRespected) {
  Catalog cat;
  MAYBMS_ASSERT_OK(cat.Create(GenerateCensus({100, 19})));
  WsdDb db = FromCatalog(cat);
  NoiseOptions opt;
  opt.cell_fraction = 0.5;
  opt.columns = {1};  // AGE only
  auto stats = ApplyOrSetNoise(&db, "census", opt);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->cells_noised, 0u);
  const WsdRelation* rel = db.GetRelation("census").value();
  for (const auto& t : rel->tuples()) {
    for (size_t c = 0; c < t.cells.size(); ++c) {
      if (c != 1) {
        EXPECT_TRUE(t.cells[c].is_certain());
      }
    }
  }
}

TEST(NoiseTest, ProbabilitiesFavourOriginal) {
  Catalog cat;
  MAYBMS_ASSERT_OK(cat.Create(GenerateCensus({100, 29})));
  WsdDb db = FromCatalog(cat);
  NoiseOptions opt;
  opt.cell_fraction = 0.05;
  auto stats = ApplyOrSetNoise(&db, "census", opt);
  ASSERT_TRUE(stats.ok());
  // First alternative of each component (the original value) carries the
  // largest probability.
  for (ComponentId id : db.LiveComponents()) {
    const Component& c = db.component(id);
    double first = c.prob(0);
    for (double p : c.probs()) {
      EXPECT_GE(first + 1e-12, p);
    }
  }
}

TEST(NoiseTest, UniformProbs) {
  Catalog cat;
  MAYBMS_ASSERT_OK(cat.Create(GenerateCensus({50, 31})));
  WsdDb db = FromCatalog(cat);
  NoiseOptions opt;
  opt.cell_fraction = 0.05;
  opt.uniform_probs = true;
  auto stats = ApplyOrSetNoise(&db, "census", opt);
  ASSERT_TRUE(stats.ok());
  for (ComponentId id : db.LiveComponents()) {
    const Component& c = db.component(id);
    for (double p : c.probs()) {
      EXPECT_NEAR(p, 1.0 / c.NumRows(), 1e-12);
    }
  }
}

TEST(NoiseTest, InvalidOptions) {
  Catalog cat;
  MAYBMS_ASSERT_OK(cat.Create(GenerateCensus({10, 1})));
  WsdDb db = FromCatalog(cat);
  NoiseOptions opt;
  opt.cell_fraction = 2.0;
  EXPECT_EQ(ApplyOrSetNoise(&db, "census", opt).status().code(),
            StatusCode::kInvalidArgument);
  opt.cell_fraction = 0.1;
  opt.min_alternatives = 1;
  EXPECT_EQ(ApplyOrSetNoise(&db, "census", opt).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(WorkloadTest, QueriesRunOnCleanData) {
  Catalog cat;
  MAYBMS_ASSERT_OK(cat.Create(GenerateCensus({300, 37})));
  MAYBMS_ASSERT_OK(cat.Create(GenerateStates()));
  for (const auto& q : CensusQueries()) {
    auto r = Execute(q.plan, cat);
    ASSERT_TRUE(r.ok()) << q.id << ": " << r.status().ToString();
  }
}

TEST(WorkloadTest, QueriesHaveDistinctIds) {
  std::set<std::string> ids;
  for (const auto& q : CensusQueries()) ids.insert(q.id);
  EXPECT_EQ(ids.size(), 6u);
  EXPECT_EQ(CensusConstraints().size(), 5u);
}

TEST(WorkloadTest, NoiseCreatesConstraintViolations) {
  Catalog cat;
  MAYBMS_ASSERT_OK(cat.Create(GenerateCensus({300, 41})));
  WsdDb db = FromCatalog(cat);
  NoiseOptions opt;
  opt.cell_fraction = 0.02;
  opt.wild_fraction = 0.5;
  opt.seed = 43;
  ASSERT_TRUE(ApplyOrSetNoise(&db, "census", opt).ok());
  double total_violation = 0.0;
  for (const auto& c : CensusConstraints()) {
    auto p = ViolationProbability(db, c);
    ASSERT_TRUE(p.ok()) << c.ToString();
    total_violation += *p;
  }
  // At 2% noise with wild perturbations, some constraint must bite.
  EXPECT_GT(total_violation, 0.0);
}

}  // namespace
}  // namespace maybms
