// Differential tests for compiled vectorized expression evaluation
// (ra/expr_compile.h): random expression trees over random typed inputs
// (including NULL, ⊥, string-interning edge cases and mixed-type
// columns) must agree with Expr::Eval on every row, with rows the
// program cannot decide reported for interpreter fallback; plus
// fallback-path coverage for uncompilable trees and end-to-end
// compiled-vs-interpreted equivalence of the lifted operators.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "core/lifted.h"
#include "core/lifted_executor.h"
#include "ra/executor.h"
#include "ra/expr_compile.h"
#include "tests/test_util.h"
#include "worlds/enumerate.h"

namespace maybms {
namespace {

using testing_util::RandomWsd;
using testing_util::RandomWsdOptions;

// Distribution over canonical contents of `rel` across enumerated worlds.
std::map<std::string, double> WsdDistribution(const WsdDb& db,
                                              const std::string& rel) {
  auto worlds = EnumerateWorlds(db, 1u << 18);
  EXPECT_TRUE(worlds.ok()) << worlds.status().ToString();
  if (!worlds.ok()) return {};
  return testing_util::RelationDistribution(*worlds, rel);
}

ExprPtr Col(size_t idx) { return Expr::ColumnIdx(idx); }
ExprPtr Lit(Value v) { return Expr::Const(std::move(v)); }

// Strict agreement: same representation kind and equal content. (Plain
// Value equality would let Int 1 pass for Double 1.0.)
bool SameValue(const Value& a, const Value& b) {
  if (a.is_int() != b.is_int() || a.is_double() != b.is_double() ||
      a.is_string() != b.is_string() || a.is_bool() != b.is_bool() ||
      a.is_null() != b.is_null() || a.is_bottom() != b.is_bottom()) {
    return false;
  }
  return a == b;
}

// ---------------------------------------------------------------------------
// Random program generation.
// ---------------------------------------------------------------------------

Value RandomLeafValue(Rng* rng) {
  switch (rng->NextBelow(6)) {
    case 0:
      return Value::Int(rng->NextInt(-4, 4));
    case 1: {
      static const double kDoubles[] = {0.0,  -0.0, 1.5,  -2.25,
                                        3.0, 1e9,  -0.5, 2.0};
      return Value::Double(kDoubles[rng->NextBelow(std::size(kDoubles))]);
    }
    case 2: {
      static const char* kStrings[] = {"a", "b", "weight gain",
                                       "\xCF\x83-token", ""};
      return Value::String(kStrings[rng->NextBelow(std::size(kStrings))]);
    }
    case 3:
      return Value::Bool(rng->NextBelow(2) == 0);
    case 4:
      return Value::Null();
    default:
      return Value::Int(rng->NextInt(0, 2));
  }
}

ExprPtr RandomExpr(Rng* rng, size_t ncols, int depth) {
  if (depth <= 0 || rng->NextBernoulli(0.3)) {
    return rng->NextBernoulli(0.55) ? Col(rng->NextBelow(ncols))
                                    : Lit(RandomLeafValue(rng));
  }
  switch (rng->NextBelow(8)) {
    case 0:
      return Expr::Compare(
          static_cast<CompareOp>(rng->NextBelow(6)),
          RandomExpr(rng, ncols, depth - 1), RandomExpr(rng, ncols, depth - 1));
    case 1:
      return Expr::Arith(
          static_cast<ArithOp>(rng->NextBelow(4)),
          RandomExpr(rng, ncols, depth - 1), RandomExpr(rng, ncols, depth - 1));
    case 2:
      return Expr::And(RandomExpr(rng, ncols, depth - 1),
                       RandomExpr(rng, ncols, depth - 1));
    case 3:
      return Expr::Or(RandomExpr(rng, ncols, depth - 1),
                      RandomExpr(rng, ncols, depth - 1));
    case 4:
      return Expr::Not(RandomExpr(rng, ncols, depth - 1));
    case 5:
      return Expr::IsNull(RandomExpr(rng, ncols, depth - 1),
                          rng->NextBelow(2) == 0);
    case 6: {
      std::vector<Value> set;
      size_t n = rng->NextBelow(4);
      for (size_t i = 0; i < n; ++i) set.push_back(RandomLeafValue(rng));
      return Expr::In(RandomExpr(rng, ncols, depth - 1), std::move(set));
    }
    default:
      return Expr::Compare(CompareOp::kEq, Col(rng->NextBelow(ncols)),
                           Col(rng->NextBelow(ncols)));
  }
}

// Random input cell: any kind, independent of any declared column type —
// exactly the situation inside components, where or-sets can mix kinds.
// ⊥ included: lifted evaluation feeds ⊥ through predicates.
PackedValue RandomCell(Rng* rng, bool allow_bottom) {
  if (allow_bottom && rng->NextBernoulli(0.08)) return PackedValue::Bottom();
  return PackedValue::FromValue(RandomLeafValue(rng));
}

// Evaluates `expr` compiled over columnar inputs and checks every row
// against the interpreter. Returns the number of fallback rows.
size_t CheckAgainstInterpreter(const ExprPtr& expr,
                               const std::vector<std::vector<PackedValue>>& cols,
                               size_t nrows) {
  auto prog = CompiledExpr::Compile(*expr);
  EXPECT_TRUE(prog.has_value()) << expr->ToString();
  if (!prog) return 0;
  std::vector<ExprInput> inputs;
  inputs.reserve(prog->columns().size());
  for (size_t c : prog->columns()) {
    if (c >= cols.size()) {
      ADD_FAILURE() << "column out of range in " << expr->ToString();
      return 0;
    }
    inputs.push_back({cols[c].data(), false});
  }
  std::vector<PackedValue> out(nrows);
  std::vector<size_t> fallback;
  ExprBatchEvaluator eval(&*prog);
  eval.Eval(inputs.data(), 0, nrows, out.data(), &fallback);
  std::set<size_t> fb(fallback.begin(), fallback.end());

  Tuple row(cols.size(), Value::Null());
  for (size_t r = 0; r < nrows; ++r) {
    for (size_t c = 0; c < cols.size(); ++c) row[c] = cols[c][r].ToValue();
    Result<Value> interp = expr->Eval(row);
    if (!interp.ok()) {
      // Interpreter errors must be flagged for fallback.
      EXPECT_TRUE(fb.count(r))
          << expr->ToString() << " row " << r
          << ": interpreter error not flagged: " << interp.status().ToString();
      continue;
    }
    if (fb.count(r)) continue;  // flagged rows defer to the interpreter
    EXPECT_TRUE(SameValue(out[r].ToValue(), *interp))
        << expr->ToString() << " row " << r << ": compiled "
        << out[r].ToValue().ToString() << " vs interpreted "
        << interp->ToString();
  }
  return fallback.size();
}

TEST(ExprCompileDifferential, RandomTreesOverRandomTypedInputs) {
  Rng rng(20260730);
  const size_t kCols = 4;
  // 700 rows crosses chunk boundaries (kChunk = 256) twice.
  const size_t kRows = 700;
  size_t total_fallback = 0;
  for (int iter = 0; iter < 300; ++iter) {
    std::vector<std::vector<PackedValue>> cols(kCols);
    for (auto& col : cols) {
      col.reserve(kRows);
      for (size_t r = 0; r < kRows; ++r) {
        col.push_back(RandomCell(&rng, /*allow_bottom=*/true));
      }
    }
    ExprPtr expr = RandomExpr(&rng, kCols, 4);
    total_fallback += CheckAgainstInterpreter(expr, cols, kRows);
  }
  // Random mixed-kind inputs must trip type errors somewhere; otherwise
  // the fallback machinery is untested.
  EXPECT_GT(total_fallback, 0u);
}

TEST(ExprCompileDifferential, StringInterningEdgeCases) {
  // Equal content built from distinct Value instances (fresh heap
  // strings, never interned by the caller) must compare equal through
  // pool ids; distinct content must not.
  const size_t kRows = 600;
  std::vector<std::vector<PackedValue>> cols(2);
  for (size_t r = 0; r < kRows; ++r) {
    std::string fresh = "payload_" + std::to_string(r % 7);
    std::string other = "payload_" + std::to_string((r + (r % 3)) % 7);
    cols[0].push_back(PackedValue::FromValue(Value::String(fresh)));
    cols[1].push_back(PackedValue::FromValue(Value::String(other)));
  }
  CheckAgainstInterpreter(Expr::Compare(CompareOp::kEq, Col(0), Col(1)), cols,
                          kRows);
  CheckAgainstInterpreter(Expr::Compare(CompareOp::kLt, Col(0), Col(1)), cols,
                          kRows);
  CheckAgainstInterpreter(
      Expr::Compare(CompareOp::kEq, Col(0), Lit(Value::String("payload_3"))),
      cols, kRows);
  CheckAgainstInterpreter(
      Expr::In(Col(1), {Value::String("payload_1"), Value::Null(),
                        Value::String("nowhere")}),
      cols, kRows);
}

TEST(ExprCompileDifferential, MixedKindColumnFlagsOnlyErrorRows) {
  // A column that mixes ints and strings: `col < 3` errors exactly on
  // the string rows; numeric rows must be decided by the program.
  std::vector<std::vector<PackedValue>> cols(1);
  for (size_t r = 0; r < 500; ++r) {
    cols[0].push_back(r % 5 == 0 ? PackedValue::String("oops")
                                 : PackedValue::Int(static_cast<int64_t>(r)));
  }
  ExprPtr pred = Expr::Compare(CompareOp::kLt, Col(0), Lit(Value::Int(3)));
  auto prog = CompiledExpr::Compile(*pred);
  ASSERT_TRUE(prog.has_value());
  std::vector<ExprInput> inputs = {{cols[0].data(), false}};
  std::vector<PackedValue> out(500);
  std::vector<size_t> fallback;
  ExprBatchEvaluator eval(&*prog);
  eval.Eval(inputs.data(), 0, 500, out.data(), &fallback);
  ASSERT_EQ(fallback.size(), 100u);
  for (size_t r : fallback) EXPECT_EQ(r % 5, 0u);
  for (size_t r = 0; r < 500; ++r) {
    if (r % 5 == 0) continue;
    ASSERT_TRUE(out[r].is_bool());
    EXPECT_EQ(out[r].as_bool(), r < 3);
  }
}

TEST(ExprCompileDifferential, BottomAndNullPropagation) {
  std::vector<std::vector<PackedValue>> cols(2);
  const PackedValue kinds[] = {PackedValue::Bottom(), PackedValue::Null(),
                               PackedValue::Int(1), PackedValue::Bool(false),
                               PackedValue::Bool(true)};
  for (const PackedValue& a : kinds) {
    for (const PackedValue& b : kinds) {
      cols[0].push_back(a);
      cols[1].push_back(b);
    }
  }
  const size_t n = cols[0].size();
  CheckAgainstInterpreter(Expr::And(Col(0), Col(1)), cols, n);
  CheckAgainstInterpreter(Expr::Or(Col(0), Col(1)), cols, n);
  CheckAgainstInterpreter(Expr::Not(Col(0)), cols, n);
  CheckAgainstInterpreter(Expr::IsNull(Col(0), false), cols, n);
  CheckAgainstInterpreter(Expr::IsNull(Col(0), true), cols, n);
  CheckAgainstInterpreter(
      Expr::Compare(CompareOp::kLe, Col(0), Col(1)), cols, n);
  CheckAgainstInterpreter(Expr::Arith(ArithOp::kDiv, Col(0), Col(1)), cols, n);
  CheckAgainstInterpreter(Expr::In(Col(0), {Value::Int(1), Value::Null()}),
                          cols, n);
}

TEST(ExprCompileDifferential, IntegerDivisionEdgeCases) {
  std::vector<std::vector<PackedValue>> cols(2);
  const int64_t kInts[] = {0, 1, -1, 7, INT64_MIN, INT64_MAX};
  for (int64_t a : kInts) {
    for (int64_t b : kInts) {
      cols[0].push_back(PackedValue::Int(a));
      cols[1].push_back(PackedValue::Int(b));
    }
  }
  const size_t n = cols[0].size();
  // Division by zero and INT64_MIN / -1 both yield NULL in both modes;
  // +, -, * wrap in both modes.
  for (ArithOp op :
       {ArithOp::kDiv, ArithOp::kAdd, ArithOp::kSub, ArithOp::kMul}) {
    CheckAgainstInterpreter(Expr::Arith(op, Col(0), Col(1)), cols, n);
  }
}

TEST(ExprCompileFallback, UncompilableTreesFallBackEntirely) {
  // An unbound column reference cannot be lowered; Compile must refuse
  // so callers keep the interpreted path.
  ExprPtr unbound = Expr::Compare(CompareOp::kEq, Expr::Column("name"),
                                  Lit(Value::Int(1)));
  EXPECT_FALSE(CompiledExpr::Compile(*unbound).has_value());
  // Bound trees of every node kind compile.
  ExprPtr all_kinds = Expr::And(
      Expr::Or(Expr::Not(Expr::IsNull(Col(0), true)),
               Expr::In(Col(1), {Value::Int(1)})),
      Expr::Compare(CompareOp::kGe, Expr::Arith(ArithOp::kMul, Col(0), Col(1)),
                    Lit(Value::Int(0))));
  EXPECT_TRUE(CompiledExpr::Compile(*all_kinds).has_value());
}

TEST(ExprCompileParallel, ShardedBatchMatchesSerial) {
  Rng rng(99);
  const size_t kRows = 50000;
  std::vector<std::vector<PackedValue>> cols(3);
  for (auto& col : cols) {
    col.reserve(kRows);
    for (size_t r = 0; r < kRows; ++r) {
      col.push_back(RandomCell(&rng, /*allow_bottom=*/true));
    }
  }
  ExprPtr expr = Expr::And(
      Expr::Compare(CompareOp::kLe, Col(0), Col(1)),
      Expr::Or(Expr::IsNull(Col(2), false),
               Expr::Compare(CompareOp::kNe, Col(2), Lit(Value::Int(2)))));
  auto prog = CompiledExpr::Compile(*expr);
  ASSERT_TRUE(prog.has_value());
  std::vector<ExprInput> inputs;
  for (size_t c : prog->columns()) inputs.push_back({cols[c].data(), false});

  ExecOptions serial;
  serial.num_threads = 1;
  std::vector<PackedValue> out_serial(kRows);
  std::vector<size_t> fb_serial;
  EvalBatchAuto(*prog, inputs.data(), kRows, out_serial.data(), &fb_serial,
                serial);

  ExecOptions parallel;
  parallel.num_threads = 4;
  parallel.parallel_row_threshold = 1;
  std::vector<PackedValue> out_parallel(kRows);
  std::vector<size_t> fb_parallel;
  EvalBatchAuto(*prog, inputs.data(), kRows, out_parallel.data(),
                &fb_parallel, parallel);

  EXPECT_EQ(fb_serial, fb_parallel);
  for (size_t r = 0; r < kRows; ++r) {
    EXPECT_TRUE(SameValue(out_serial[r].ToValue(), out_parallel[r].ToValue()))
        << "row " << r;
  }
}

// ---------------------------------------------------------------------------
// End-to-end: lifted operators compiled vs interpreted.
// ---------------------------------------------------------------------------

// Runs a lifted selection; returns nullopt when it errored (a legal
// outcome for type-mismatched random predicates — both modes must then
// error identically).
std::optional<std::map<std::string, double>> SelectDistribution(
    const WsdDb& db, const ExprPtr& pred, const ExecOptions& opts,
    std::string* error) {
  WsdDb working = db;
  Status st = LiftedSelect(&working, "R0", pred, "out", opts);
  if (!st.ok()) {
    *error = st.ToString();
    return std::nullopt;
  }
  return WsdDistribution(working, "out");
}

TEST(LiftedCompiledVsInterpreted, RandomSelections) {
  Rng rng(1234);
  ExecOptions compiled;       // default: compile on
  ExecOptions interpreted;
  interpreted.compile_expressions = false;
  for (int iter = 0; iter < 40; ++iter) {
    RandomWsdOptions opt;
    opt.max_tuples = 6;
    WsdDb db = RandomWsd(&rng, opt);
    const WsdRelation* rel = db.GetRelation("R0").value();
    size_t ncols = rel->schema().size();
    // Predicates over the relation's schema; random trees plus a plain
    // int comparison so a good fraction evaluates without type errors.
    ExprPtr pred;
    if (rng.NextBernoulli(0.5)) {
      pred = Expr::Compare(static_cast<CompareOp>(rng.NextBelow(6)),
                           Col(rng.NextBelow(ncols)),
                           Lit(Value::Int(rng.NextInt(0, 3))));
    } else {
      pred = Expr::IsNull(Col(rng.NextBelow(ncols)), rng.NextBelow(2) == 0);
    }
    SCOPED_TRACE(pred->ToString());
    std::string err_a, err_b;
    auto a = SelectDistribution(db, pred, compiled, &err_a);
    auto b = SelectDistribution(db, pred, interpreted, &err_b);
    ASSERT_EQ(a.has_value(), b.has_value()) << err_a << " vs " << err_b;
    if (!a) {
      // Both modes errored; they must report the same error.
      EXPECT_EQ(err_a, err_b);
      continue;
    }
    testing_util::ExpectDistEq(*b, *a, 1e-9);
  }
}

TEST(LiftedCompiledVsInterpreted, ComputedProjections) {
  Rng rng(5678);
  ExecOptions compiled;
  ExecOptions interpreted;
  interpreted.compile_expressions = false;
  for (int iter = 0; iter < 30; ++iter) {
    RandomWsdOptions opt;
    opt.allow_strings = false;  // arithmetic projections need numbers
    opt.max_tuples = 5;
    WsdDb db = RandomWsd(&rng, opt);
    const WsdRelation* rel = db.GetRelation("R0").value();
    size_t ncols = rel->schema().size();
    std::vector<ProjectItem> items;
    items.push_back(
        {Expr::Arith(static_cast<ArithOp>(rng.NextBelow(4)),
                     Col(rng.NextBelow(ncols)), Col(rng.NextBelow(ncols))),
         "e"});
    items.push_back({Col(rng.NextBelow(ncols)), "c"});

    WsdDb a = db, b = db;
    Status sa = LiftedProject(&a, "R0", items, "out", compiled);
    Status sb = LiftedProject(&b, "R0", items, "out", interpreted);
    ASSERT_EQ(sa.ok(), sb.ok()) << sa.ToString() << " vs " << sb.ToString();
    if (!sa.ok()) continue;
    testing_util::ExpectDistEq(WsdDistribution(b, "out"),
                               WsdDistribution(a, "out"), 1e-9);
  }
}

TEST(ConventionalCompiledVsInterpreted, QueriesOverCatalog) {
  // The conventional executor's scan/filter/project/join paths, compiled
  // vs interpreted, over a small catalog with strings and numbers.
  Catalog cat;
  Schema s1({{"id", ValueType::kInt},
             {"name", ValueType::kString},
             {"score", ValueType::kDouble}});
  Relation r1("t", s1);
  Rng rng(31);
  for (int i = 0; i < 2500; ++i) {
    MAYBMS_EXPECT_OK(r1.Append({Value::Int(i % 97),
                                Value::String("n" + std::to_string(i % 13)),
                                Value::Double((i % 7) * 0.5)}));
  }
  MAYBMS_EXPECT_OK(cat.Create(std::move(r1)));
  Schema s2({{"id2", ValueType::kInt}, {"tag", ValueType::kString}});
  Relation r2("u", s2);
  for (int i = 0; i < 300; ++i) {
    MAYBMS_EXPECT_OK(r2.Append(
        {Value::Int(i % 97), Value::String("n" + std::to_string(i % 17))}));
  }
  MAYBMS_EXPECT_OK(cat.Create(std::move(r2)));

  ExprPtr pred = Expr::And(
      Expr::Compare(CompareOp::kLt, Expr::Column("score"),
                    Lit(Value::Double(2.5))),
      Expr::In(Expr::Column("name"),
               {Value::String("n1"), Value::String("n5")}));
  std::vector<PlanPtr> plans;
  plans.push_back(Plan::Select(Plan::Scan("t"), pred));
  plans.push_back(Plan::Project(
      Plan::Select(Plan::Scan("t"), pred),
      {{Expr::Arith(ArithOp::kAdd, Expr::Column("id"), Expr::Column("score")),
        "x"},
       {Expr::Column("name"), "name"},
       {Expr::Column("name"), "name"}}));  // duplicate output name probing
  plans.push_back(Plan::Join(
      Plan::Scan("t"), Plan::Scan("u"),
      Expr::And(Expr::Compare(CompareOp::kEq, Expr::Column("id"),
                              Expr::Column("id2")),
                Expr::Compare(CompareOp::kNe, Expr::Column("name"),
                              Expr::Column("tag")))));

  ExecOptions compiled;
  ExecOptions interpreted;
  interpreted.compile_expressions = false;
  for (const auto& plan : plans) {
    SCOPED_TRACE(plan->ToString());
    auto a = Execute(plan, cat, compiled);
    auto b = Execute(plan, cat, interpreted);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(a->schema().ToString(), b->schema().ToString());
    EXPECT_TRUE(a->BagEquals(*b));
  }
}

}  // namespace
}  // namespace maybms
