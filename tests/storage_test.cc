// Unit tests for src/storage: Value semantics (incl. ⊥), Schema, Relation,
// Catalog, CSV round-trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "storage/catalog.h"
#include "storage/csv.h"
#include "storage/relation.h"
#include "storage/schema.h"
#include "storage/value.h"
#include "tests/test_util.h"

namespace maybms {
namespace {

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(Value::Bottom().is_bottom());
  EXPECT_TRUE(Value::Bool(true).as_bool());
  EXPECT_EQ(Value::Int(-3).as_int(), -3);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).as_double(), 2.5);
  EXPECT_EQ(Value::String("hi").as_string(), "hi");
}

TEST(ValueTest, NumericEqualityAcrossIntDouble) {
  EXPECT_EQ(Value::Int(2), Value::Double(2.0));
  EXPECT_NE(Value::Int(2), Value::Double(2.5));
  EXPECT_EQ(Value::Int(2).Hash(), Value::Double(2.0).Hash());
}

TEST(ValueTest, TotalOrder) {
  // BOTTOM < NULL < bool < numeric < string
  EXPECT_LT(Value::Bottom(), Value::Null());
  EXPECT_LT(Value::Null(), Value::Bool(false));
  EXPECT_LT(Value::Bool(true), Value::Int(0));
  EXPECT_LT(Value::Int(3), Value::String(""));
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_LT(Value::Double(1.5), Value::Int(2));
  EXPECT_LT(Value::String("a"), Value::String("b"));
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
  EXPECT_EQ(Value::Bottom().Compare(Value::Bottom()), 0);
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Bottom().ToString(), "\xE2\x8A\xA5");
  EXPECT_EQ(Value::Int(7).ToString(), "7");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::String("o'brien").ToString(), "'o''brien'");
}

TEST(ValueTest, SerializedSizeModel) {
  EXPECT_EQ(Value::Null().SerializedSize(), 1u);
  EXPECT_EQ(Value::Bottom().SerializedSize(), 1u);
  EXPECT_EQ(Value::Bool(true).SerializedSize(), 2u);
  EXPECT_EQ(Value::Int(1).SerializedSize(), 9u);
  EXPECT_EQ(Value::Double(1).SerializedSize(), 9u);
  EXPECT_EQ(Value::String("abc").SerializedSize(), 1u + 4u + 3u);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::String("x").Hash(), Value::String("x").Hash());
  EXPECT_EQ(Value::Null().Hash(), Value::Null().Hash());
  EXPECT_NE(Value::Null().Hash(), Value::Bottom().Hash());
}

TEST(SchemaTest, LookupIsCaseInsensitive) {
  Schema s({{"Age", ValueType::kInt}, {"Name", ValueType::kString}});
  EXPECT_EQ(s.IndexOf("age").value(), 0u);
  EXPECT_EQ(s.IndexOf("NAME").value(), 1u);
  EXPECT_FALSE(s.IndexOf("missing").has_value());
  auto r = s.Resolve("nope");
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, AddRejectsDuplicates) {
  Schema s;
  MAYBMS_ASSERT_OK(s.Add({"a", ValueType::kInt}));
  EXPECT_EQ(s.Add({"A", ValueType::kString}).code(),
            StatusCode::kAlreadyExists);
}

TEST(SchemaTest, ConcatDisambiguates) {
  Schema l({{"id", ValueType::kInt}, {"v", ValueType::kString}});
  Schema r({{"id", ValueType::kInt}, {"w", ValueType::kString}});
  Schema c = Schema::Concat(l, r, "S");
  ASSERT_EQ(c.size(), 4u);
  EXPECT_EQ(c.attr(2).name, "S.id");
  EXPECT_EQ(c.attr(3).name, "w");
}

TEST(SchemaTest, ProjectKeepsOrderAndRenamesDups) {
  Schema s({{"a", ValueType::kInt},
            {"b", ValueType::kString},
            {"c", ValueType::kDouble}});
  Schema p = s.Project({2, 0, 0});
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p.attr(0).name, "c");
  EXPECT_EQ(p.attr(1).name, "a");
  EXPECT_EQ(p.attr(2).name, "a_2");
}

Relation SampleRelation() {
  Relation r("people", Schema({{"name", ValueType::kString},
                               {"age", ValueType::kInt}}));
  EXPECT_TRUE(r.Append({Value::String("ann"), Value::Int(34)}).ok());
  EXPECT_TRUE(r.Append({Value::String("bob"), Value::Int(25)}).ok());
  EXPECT_TRUE(r.Append({Value::String("ann"), Value::Int(34)}).ok());
  return r;
}

TEST(RelationTest, AppendValidatesArityAndTypes) {
  Relation r = SampleRelation();
  EXPECT_EQ(r.Append({Value::Int(1)}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.Append({Value::Int(1), Value::Int(2)}).code(),
            StatusCode::kTypeMismatch);
  // NULL fits any type; ⊥ never does.
  EXPECT_TRUE(r.Append({Value::Null(), Value::Null()}).ok());
  EXPECT_EQ(r.Append({Value::Bottom(), Value::Int(1)}).code(),
            StatusCode::kTypeMismatch);
}

TEST(RelationTest, BagEqualsIgnoresOrder) {
  Relation a = SampleRelation();
  Relation b("other", a.schema());
  b.AppendUnchecked({Value::String("ann"), Value::Int(34)});
  b.AppendUnchecked({Value::String("ann"), Value::Int(34)});
  b.AppendUnchecked({Value::String("bob"), Value::Int(25)});
  EXPECT_TRUE(a.BagEquals(b));
  b.AppendUnchecked({Value::String("zed"), Value::Int(1)});
  EXPECT_FALSE(a.BagEquals(b));
}

TEST(RelationTest, BagEqualsIsMultisetSensitive) {
  Relation a("a", Schema({{"x", ValueType::kInt}}));
  Relation b("b", a.schema());
  a.AppendUnchecked({Value::Int(1)});
  a.AppendUnchecked({Value::Int(1)});
  a.AppendUnchecked({Value::Int(2)});
  b.AppendUnchecked({Value::Int(1)});
  b.AppendUnchecked({Value::Int(2)});
  b.AppendUnchecked({Value::Int(2)});
  EXPECT_FALSE(a.BagEquals(b));
}

TEST(RelationTest, SerializedSizeCountsRows) {
  Relation r("t", Schema({{"x", ValueType::kInt}}));
  EXPECT_EQ(r.SerializedSize(), 0u);
  r.AppendUnchecked({Value::Int(1)});
  EXPECT_EQ(r.SerializedSize(), 4u + 9u);
  r.AppendUnchecked({Value::Null()});
  EXPECT_EQ(r.SerializedSize(), 4u + 9u + 4u + 1u);
}

TEST(RelationTest, ToStringShowsHeader) {
  Relation r = SampleRelation();
  std::string s = r.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("'ann'"), std::string::npos);
  EXPECT_NE(s.find("(3 rows)"), std::string::npos);
}

TEST(TupleTest, HashAndCompare) {
  Tuple a{Value::Int(1), Value::String("x")};
  Tuple b{Value::Int(1), Value::String("x")};
  Tuple c{Value::Int(1), Value::String("y")};
  EXPECT_EQ(TupleHash(a), TupleHash(b));
  EXPECT_EQ(TupleCompare(a, b), 0);
  EXPECT_LT(TupleCompare(a, c), 0);
  EXPECT_GT(TupleCompare(c, a), 0);
  Tuple shorter{Value::Int(1)};
  EXPECT_LT(TupleCompare(shorter, a), 0);
}

TEST(CatalogTest, CreateGetDrop) {
  Catalog cat;
  MAYBMS_ASSERT_OK(cat.Create(SampleRelation()));
  EXPECT_EQ(cat.Create(SampleRelation()).code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(cat.Contains("PEOPLE"));  // case-insensitive
  auto rel = cat.Get("people");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ((*rel)->NumRows(), 3u);
  MAYBMS_ASSERT_OK(cat.Drop("people"));
  EXPECT_EQ(cat.Get("people").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(cat.Drop("people").code(), StatusCode::kNotFound);
}

TEST(CatalogTest, EqualsComparesContent) {
  Catalog a, b;
  MAYBMS_ASSERT_OK(a.Create(SampleRelation()));
  MAYBMS_ASSERT_OK(b.Create(SampleRelation()));
  EXPECT_TRUE(a.Equals(b));
  Relation* r = *b.GetMutable("people");
  r->AppendUnchecked({Value::String("eve"), Value::Int(1)});
  EXPECT_FALSE(a.Equals(b));
}

TEST(CsvTest, RoundTrip) {
  Relation r("csv", Schema({{"s", ValueType::kString},
                            {"i", ValueType::kInt},
                            {"d", ValueType::kDouble},
                            {"b", ValueType::kBool}}));
  r.AppendUnchecked({Value::String("plain"), Value::Int(1),
                     Value::Double(1.5), Value::Bool(true)});
  r.AppendUnchecked({Value::String("has,comma \"q\""), Value::Int(-2),
                     Value::Double(0.25), Value::Bool(false)});
  r.AppendUnchecked({Value::Null(), Value::Null(), Value::Null(),
                     Value::Null()});
  std::string path =
      (std::filesystem::temp_directory_path() / "maybms_csv_test.csv")
          .string();
  MAYBMS_ASSERT_OK(WriteCsv(r, path));
  auto back = ReadCsv(path, "csv", r.schema());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(r.BagEquals(*back));
  std::remove(path.c_str());
}

TEST(CsvTest, ParseValueErrors) {
  EXPECT_EQ(ParseValueAs("abc", ValueType::kInt).status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseValueAs("1.2.3", ValueType::kDouble).status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseValueAs("yes", ValueType::kBool).status().code(),
            StatusCode::kParseError);
  auto v = ParseValueAs("", ValueType::kInt);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());
}

TEST(CsvTest, ParseCsvLineQuoting) {
  auto f = ParseCsvLine("a,\"b,c\",\"d\"\"e\"");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[1], "b,c");
  EXPECT_EQ(f[2], "d\"e");
}

TEST(CsvTest, ReadMissingFileFails) {
  auto r = ReadCsv("/nonexistent/file.csv", "x",
                   Schema({{"a", ValueType::kInt}}));
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace maybms
