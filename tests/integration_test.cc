// Integration tests: the full census pipeline at oracle-checkable scale,
// SQL-driven end-to-end flows, and cross-module consistency (lifted
// engine vs SQL session vs enumeration vs sampling).
#include <gtest/gtest.h>

#include <map>

#include "chase/enforce.h"
#include "core/builder.h"
#include "core/confidence.h"
#include "core/lifted_executor.h"
#include "gen/census.h"
#include "gen/noise.h"
#include "gen/workload.h"
#include "ra/executor.h"
#include "sql/session.h"
#include "tests/test_util.h"
#include "worlds/enumerate.h"
#include "worlds/sample.h"

namespace maybms {
namespace {

using testing_util::CanonicalBag;
using testing_util::ExpectDistEq;

// A miniature census (oracle-enumerable world count) running the entire
// paper pipeline: noise -> cleaning -> queries, everything checked
// against explicit enumeration.
class MiniCensusPipeline : public ::testing::Test {
 protected:
  void SetUp() override {
    Catalog cat;
    MAYBMS_ASSERT_OK(cat.Create(GenerateCensus({40, 97})));
    MAYBMS_ASSERT_OK(cat.Create(GenerateStates()));
    db_ = FromCatalog(cat);
    NoiseOptions opt;
    opt.cell_fraction = 0.005;  // 40*49*0.005 ≈ 10 or-set cells
    opt.max_alternatives = 2;
    opt.wild_fraction = 0.3;
    opt.seed = 99;
    auto stats = ApplyOrSetNoise(&db_, "census", opt);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    ASSERT_TRUE(db_.WorldCountIfSmall(1u << 16).has_value())
        << "mini census must stay enumerable";
  }

  WsdDb db_;
};

TEST_F(MiniCensusPipeline, CleaningMatchesOracleConditioning) {
  // Oracle: a world is consistent iff it satisfies all constraints.
  auto violates = [](const Catalog& cat) {
    const Relation& r = *cat.Get("census").value();
    const Schema& s = r.schema();
    size_t age = *s.IndexOf("AGE"), marst = *s.IndexOf("MARST");
    size_t inctot = *s.IndexOf("INCTOT");
    size_t city = *s.IndexOf("CITY"), state = *s.IndexOf("STATEFIP");
    size_t pernum = *s.IndexOf("PERNUM");
    std::map<int64_t, int64_t> city_state;
    std::map<int64_t, bool> ids;
    for (const auto& row : r.rows()) {
      int64_t a = row[age].as_int();
      if (a < 0 || a > 90) return true;
      if (row[marst].as_int() == 1 && a < 15) return true;
      if (row[inctot].as_int() < 0) return true;
      auto [it, inserted] = ids.emplace(row[pernum].as_int(), true);
      if (!inserted) return true;
      auto [cit, cinserted] =
          city_state.emplace(row[city].as_int(), row[state].as_int());
      if (!cinserted && cit->second != row[state].as_int()) return true;
    }
    return false;
  };
  auto worlds = EnumerateWorlds(db_, 1u << 16);
  ASSERT_TRUE(worlds.ok());
  std::map<std::string, double> expected;
  double kept = 0;
  for (const auto& w : *worlds) {
    if (violates(w.catalog)) continue;
    kept += w.prob;
    expected[CanonicalBag(*w.catalog.Get("census").value())] += w.prob;
  }
  ASSERT_GT(kept, 0.0);
  for (auto& [key, p] : expected) p /= kept;

  auto stats = EnforceAll(&db_, CensusConstraints());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NEAR(stats->removed_mass, 1.0 - kept, 1e-9);
  MAYBMS_ASSERT_OK(db_.CheckInvariants());

  auto after = EnumerateWorlds(db_, 1u << 16);
  ASSERT_TRUE(after.ok());
  ExpectDistEq(expected, testing_util::RelationDistribution(*after, "census"),
               1e-9);
}

TEST_F(MiniCensusPipeline, AllWorkloadQueriesMatchOracle) {
  auto stats = EnforceAll(&db_, CensusConstraints());
  ASSERT_TRUE(stats.ok());
  for (const auto& q : CensusQueries()) {
    SCOPED_TRACE(q.id);
    // Oracle answer distribution.
    auto worlds = EnumerateWorlds(db_, 1u << 16);
    ASSERT_TRUE(worlds.ok());
    std::map<std::string, double> expected;
    for (const auto& w : *worlds) {
      auto answer = Execute(q.plan, w.catalog);
      ASSERT_TRUE(answer.ok()) << answer.status().ToString();
      expected[CanonicalBag(*answer)] += w.prob;
    }
    // Lifted answer distribution.
    auto lifted = ExecuteLifted(q.plan, db_);
    ASSERT_TRUE(lifted.ok()) << lifted.status().ToString();
    MAYBMS_ASSERT_OK(lifted->CheckInvariants());
    auto lifted_worlds = EnumerateWorlds(*lifted, 1u << 16);
    ASSERT_TRUE(lifted_worlds.ok());
    std::map<std::string, double> actual;
    for (const auto& w : *lifted_worlds) {
      actual[CanonicalBag(*w.catalog.Get("result").value())] += w.prob;
    }
    ExpectDistEq(expected, actual, 1e-9);
  }
}

TEST_F(MiniCensusPipeline, ConfMatchesSampling) {
  auto q1 = CensusQueries()[0].plan;
  auto answer = ExecuteLifted(q1, db_);
  ASSERT_TRUE(answer.ok());
  auto exact = ConfTable(*answer, "result");
  ASSERT_TRUE(exact.ok());
  auto approx = ApproximateConfTable(*answer, "result", 4000, 7);
  ASSERT_TRUE(approx.ok());
  std::map<std::string, double> approx_map;
  for (const auto& row : approx->rows()) {
    std::string key;
    for (size_t c = 0; c + 1 < row.size(); ++c) key += row[c].ToString() + "|";
    approx_map[key] = row.back().as_double();
  }
  for (const auto& row : exact->rows()) {
    std::string key;
    for (size_t c = 0; c + 1 < row.size(); ++c) key += row[c].ToString() + "|";
    double p = row.back().as_double();
    if (p > 0.05) {
      ASSERT_TRUE(approx_map.count(key)) << key;
      EXPECT_NEAR(approx_map[key], p, 0.08) << key;
    }
  }
}

TEST(SqlIntegration, FullScenarioScript) {
  sql::Session session;
  auto results = session.ExecuteScript(R"sql(
    CREATE TABLE patients (name STRING, age INT, diagnosis STRING);
    INSERT INTO patients VALUES
      ('ann', 34, {'flu': 0.7, 'cold': 0.3}),
      ('bob', {25: 0.5, 52: 0.5}, 'flu'),
      ('cid', 41, 'cold');
    ENFORCE CHECK (age >= 18) ON patients;
    SELECT name, PROB() FROM patients WHERE diagnosis = 'flu';
  )sql");
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  const auto& prob = results->back();
  ASSERT_EQ(prob.kind, sql::StatementResult::Kind::kTable);
  // ann has flu with 0.7; bob always (his age is 25-or-52, both >= 18,
  // conditioning does not remove him).
  std::map<std::string, double> conf;
  for (const auto& row : prob.table.rows()) {
    conf[row[0].as_string()] = row[1].as_double();
  }
  EXPECT_NEAR(conf["ann"], 0.7, 1e-9);
  EXPECT_NEAR(conf["bob"], 1.0, 1e-9);
  EXPECT_EQ(conf.count("cid"), 0u);
}

TEST(SqlIntegration, ConditioningChangesProbabilities) {
  sql::Session session;
  auto setup = session.ExecuteScript(R"sql(
    CREATE TABLE t (id INT, v INT);
    INSERT INTO t VALUES (1, {10: 0.5, -1: 0.5});
  )sql");
  ASSERT_TRUE(setup.ok()) << setup.status().ToString();
  auto before = session.Execute("SELECT v, PROB() FROM t WHERE v = 10");
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->table.NumRows(), 1u);
  EXPECT_NEAR(before->table.row(0)[1].as_double(), 0.5, 1e-12);
  // Conditioning on v >= 0 makes v = 10 certain.
  MAYBMS_ASSERT_OK(session.Execute("ENFORCE CHECK (v >= 0) ON t").status());
  auto after = session.Execute("SELECT v, PROB() FROM t WHERE v = 10");
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->table.NumRows(), 1u);
  EXPECT_NEAR(after->table.row(0)[1].as_double(), 1.0, 1e-12);
}

TEST(SqlIntegration, CensusOverSqlSession) {
  Catalog cat;
  MAYBMS_ASSERT_OK(cat.Create(GenerateCensus({60, 3})));
  MAYBMS_ASSERT_OK(cat.Create(GenerateStates()));
  WsdDb db = FromCatalog(cat);
  NoiseOptions opt;
  opt.cell_fraction = 0.002;
  opt.seed = 5;
  ASSERT_TRUE(ApplyOrSetNoise(&db, "census", opt).ok());
  sql::Session session(std::move(db));

  auto ec = session.Execute("SELECT ECOUNT() FROM census WHERE AGE >= 65");
  ASSERT_TRUE(ec.ok()) << ec.status().ToString();
  double expected_count = ec->table.row(0)[0].as_double();
  EXPECT_GT(expected_count, 0.0);

  auto join = session.Execute(
      "POSSIBLE SELECT NAME FROM census, states "
      "WHERE STATEFIP = states.STATEFIP AND REGION = 'West'");
  ASSERT_TRUE(join.ok()) << join.status().ToString();
  EXPECT_GT(join->table.NumRows(), 0u);

  auto explain = session.Execute(
      "EXPLAIN SELECT NAME FROM census, states "
      "WHERE STATEFIP = states.STATEFIP AND REGION = 'West'");
  ASSERT_TRUE(explain.ok());
  // The optimizer must have turned the product into a join and pushed the
  // region selection to the states side.
  EXPECT_NE(explain->message.find("Join"), std::string::npos)
      << explain->message;
}

TEST(SqlIntegration, ShellStyleWorldInspection) {
  sql::Session session;
  MAYBMS_ASSERT_OK(session.Execute("CREATE TABLE d (x INT)").status());
  MAYBMS_ASSERT_OK(
      session.Execute("INSERT INTO d VALUES ({1: 0.9, 2: 0.1})").status());
  auto worlds = session.Execute("SHOW WORLDS");
  ASSERT_TRUE(worlds.ok());
  EXPECT_NE(worlds->message.find("2 distinct world"), std::string::npos)
      << worlds->message;
  EXPECT_NE(worlds->message.find("0.9"), std::string::npos);
}

}  // namespace
}  // namespace maybms
