// Crash-point sweep: run a mutating workload on the fault-injecting env,
// kill the "process" at EVERY I/O operation index in turn (including
// mid-SAVE, mid-CHECKPOINT, mid-auto-checkpoint, and mid-WAL-append,
// with randomized torn tails), recover, reload, and check the recovered
// database against an in-memory oracle.
//
// Admissibility: with log-before-apply, the failures form a prefix — if
// the first failed statement is number F, every earlier statement was
// acknowledged (hence durable) and every later mutation failed. The
// recovered database must therefore equal the oracle state after F
// statements, or after F+1 (statement F's log record may have survived
// the tear even though its ack never arrived). A missing snapshot is
// admissible only when the initial SAVE itself never acknowledged.
//
// Iteration count: MAYBMS_WAL_FUZZ_ITERS randomized workload rounds on
// top of the deterministic base sweep (default 2; the "fuzz"-labelled
// ctest entry raises it for the sanitizer matrix).
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/string_util.h"
#include "sql/session.h"
#include "storage/io_env.h"
#include "tests/test_util.h"

namespace maybms {
namespace sql {
namespace {

size_t FuzzRounds() {
  const char* env = std::getenv("MAYBMS_WAL_FUZZ_ITERS");
  return env ? static_cast<size_t>(std::atoll(env)) : 2;
}

// The deterministic base workload: SAVE first (attaching the WAL), then
// every logged statement kind plus an explicit CHECKPOINT in the middle.
std::vector<std::string> BaseWorkload() {
  return {
      "SAVE DATABASE 'db'",
      "CREATE TABLE t (x INT, w DOUBLE)",
      // Certain duplicate keys: REPAIR KEY (which needs certain key
      // values) then turns the conflict into fresh components, so its
      // replay exercises component-id allocation determinism.
      "INSERT INTO t VALUES (1, 1.5)",
      "INSERT INTO t VALUES (1, 2.0)",
      "INSERT INTO t VALUES (3, 2.0)",
      "REPAIR KEY (x) IN t WEIGHT BY w",
      "CHECKPOINT",
      "INSERT INTO t VALUES ({4: 0.5, 5: 0.5}, 1.0)",
      "ENFORCE CHECK (x >= 0) ON t",
      "INSERT INTO t VALUES (6, 0.5)",
  };
}

// A randomized variant: same shape, random values and statement mix.
std::vector<std::string> RandomWorkload(Rng* rng) {
  std::vector<std::string> w;
  w.push_back("SAVE DATABASE 'db'");
  w.push_back("CREATE TABLE t (x INT, w DOUBLE)");
  const size_t n = 4 + rng->NextBelow(5);
  // REPAIR KEY needs certain key values, so or-set inserts only appear
  // once the table has been repaired (after which no further repair).
  bool repaired = false;
  for (size_t i = 0; i < n; ++i) {
    switch (rng->NextBelow(5)) {
      case 0:
        if (!repaired) {
          w.push_back("REPAIR KEY (x) IN t WEIGHT BY w");
          repaired = true;
          break;
        }
        [[fallthrough]];
      case 1:
        w.push_back("CHECKPOINT");
        break;
      case 2:
        w.push_back("ENFORCE CHECK (x >= 0) ON t");
        break;
      default: {
        const int a = 1 + static_cast<int>(rng->NextBelow(8));
        const int b = a + 1 + static_cast<int>(rng->NextBelow(8));
        if (repaired) {
          w.push_back(StrFormat(
              "INSERT INTO t VALUES ({%d: 0.5, %d: 0.5}, %d.5)", a, b,
              1 + static_cast<int>(rng->NextBelow(4))));
        } else {
          // Small key range on purpose: duplicates make the eventual
          // repair actually introduce uncertainty.
          w.push_back(StrFormat("INSERT INTO t VALUES (%d, %d.5)", a,
                                1 + static_cast<int>(rng->NextBelow(4))));
        }
        break;
      }
    }
  }
  w.push_back("INSERT INTO t VALUES (99, 1.0)");
  return w;
}

Session MakeSession(Env* env, size_t auto_checkpoint) {
  Session s;
  s.set_env(env);
  s.mutable_durability_options().auto_checkpoint_records = auto_checkpoint;
  return s;
}

// Runs the workload fault-free to collect states[i] = the database after
// the first i statements, plus the total I/O op count to sweep.
struct Oracle {
  std::vector<WsdDb> states;
  uint64_t total_ops = 0;
};

Oracle RunOracle(const std::vector<std::string>& workload,
                 size_t auto_checkpoint) {
  FaultInjectingEnv env;
  Session s = MakeSession(&env, auto_checkpoint);
  Oracle o;
  o.states.push_back(s.db());
  for (const auto& stmt : workload) {
    auto r = s.Execute(stmt);
    EXPECT_TRUE(r.ok()) << "oracle statement failed: " << stmt << ": "
                        << r.status().ToString();
    o.states.push_back(s.db());
  }
  o.total_ops = env.op_count();
  return o;
}

void SweepCrashPoints(const std::vector<std::string>& workload,
                      size_t auto_checkpoint, uint64_t recover_salt) {
  const Oracle oracle = RunOracle(workload, auto_checkpoint);
  const size_t n = workload.size();
  ASSERT_GT(oracle.total_ops, 0u);

  for (uint64_t crash_op = 0; crash_op < oracle.total_ops; ++crash_op) {
    FaultInjectingEnv env;
    FaultPlan plan;
    plan.crash_at_op = crash_op;
    env.set_plan(plan);
    Session s = MakeSession(&env, auto_checkpoint);
    size_t first_fail = n;
    for (size_t i = 0; i < n; ++i) {
      if (!s.Execute(workload[i]).ok() && first_fail == n) first_fail = i;
    }
    if (!env.crashed()) env.Crash();
    env.set_plan(FaultPlan{});  // recovery itself runs fault-free
    Rng rng(recover_salt ^ (crash_op * 0x9e3779b97f4a7c15ull));
    env.Recover(&rng);

    Session rec = MakeSession(&env, auto_checkpoint);
    auto loaded = rec.Execute("LOAD DATABASE 'db'");
    if (!loaded.ok()) {
      // Only admissible when the initial SAVE never acked — then no
      // snapshot was ever promised.
      EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound)
          << "crash_op " << crash_op << ": " << loaded.status().ToString();
      EXPECT_EQ(first_fail, 0u)
          << "crash_op " << crash_op
          << ": snapshot lost after SAVE acknowledged";
      continue;
    }
    const bool at_k =
        testing_util::DbsExactlyEqual(rec.db(), oracle.states[first_fail]);
    const bool at_k1 =
        first_fail < n &&
        testing_util::DbsExactlyEqual(rec.db(), oracle.states[first_fail + 1]);
    EXPECT_TRUE(at_k || at_k1)
        << "crash_op " << crash_op << ": recovered state matches neither "
        << first_fail << " nor " << (first_fail + 1)
        << " acked statements (of " << n << ")";

    // The recovered session must be fully serviceable and durable.
    if (rec.db().HasRelation("t")) {
      auto post = rec.Execute("INSERT INTO t VALUES (123, 1.0)");
      ASSERT_TRUE(post.ok()) << "crash_op " << crash_op
                             << ": recovered session not serviceable: "
                             << post.status().ToString();
      EXPECT_TRUE(rec.has_durable_attachment());
    }
  }
}

TEST(WalCrashFuzz, BaseWorkloadSurvivesEveryCrashPoint) {
  SweepCrashPoints(BaseWorkload(), /*auto_checkpoint=*/0,
                   /*recover_salt=*/0xC0FFEE);
}

TEST(WalCrashFuzz, AutoCheckpointSurvivesEveryCrashPoint) {
  // A tiny threshold makes several statements trigger the automatic
  // checkpoint, so the sweep crosses its snapshot-rewrite + log-reset
  // window many times.
  SweepCrashPoints(BaseWorkload(), /*auto_checkpoint=*/2,
                   /*recover_salt=*/0xBEEF);
}

TEST(WalCrashFuzz, RandomWorkloadsSurviveEveryCrashPoint) {
  const size_t rounds = FuzzRounds();
  for (size_t round = 0; round < rounds; ++round) {
    Rng rng(0x5EED + round);
    const auto workload = RandomWorkload(&rng);
    const size_t auto_checkpoint = rng.NextBelow(2) ? 0 : 3;
    SweepCrashPoints(workload, auto_checkpoint,
                     /*recover_salt=*/rng.Next());
  }
}

}  // namespace
}  // namespace sql
}  // namespace maybms
