// Unit tests for the conventional engine: expression evaluation with
// three-valued logic, plan construction, and every executor operator.
#include <gtest/gtest.h>

#include "ra/executor.h"
#include "ra/expr.h"
#include "ra/plan.h"
#include "tests/test_util.h"

namespace maybms {
namespace {

ExprPtr Col(const std::string& n) { return Expr::Column(n); }
ExprPtr Lit(Value v) { return Expr::Const(std::move(v)); }
ExprPtr Eq(ExprPtr a, ExprPtr b) {
  return Expr::Compare(CompareOp::kEq, std::move(a), std::move(b));
}

Catalog MakeCatalog() {
  Catalog cat;
  Relation people("people", Schema({{"id", ValueType::kInt},
                                    {"name", ValueType::kString},
                                    {"age", ValueType::kInt},
                                    {"city", ValueType::kString}}));
  people.AppendUnchecked({Value::Int(1), Value::String("ann"), Value::Int(34),
                          Value::String("berlin")});
  people.AppendUnchecked({Value::Int(2), Value::String("bob"), Value::Int(25),
                          Value::String("paris")});
  people.AppendUnchecked({Value::Int(3), Value::String("cid"), Value::Int(41),
                          Value::String("berlin")});
  people.AppendUnchecked({Value::Int(4), Value::String("dee"), Value::Null(),
                          Value::String("rome")});
  EXPECT_TRUE(cat.Create(std::move(people)).ok());

  Relation cities("cities", Schema({{"city", ValueType::kString},
                                    {"country", ValueType::kString}}));
  cities.AppendUnchecked({Value::String("berlin"), Value::String("de")});
  cities.AppendUnchecked({Value::String("paris"), Value::String("fr")});
  EXPECT_TRUE(cat.Create(std::move(cities)).ok());
  return cat;
}

TEST(ExprTest, BindResolvesColumns) {
  Schema s({{"a", ValueType::kInt}, {"b", ValueType::kString}});
  auto e = Eq(Col("b"), Lit(Value::String("x")));
  auto bound = e->BindAgainst(s);
  ASSERT_TRUE(bound.ok());
  auto v = (*bound)->Eval({Value::Int(1), Value::String("x")});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Value::Bool(true));
  EXPECT_EQ(e->BindAgainst(Schema({{"z", ValueType::kInt}})).status().code(),
            StatusCode::kNotFound);
}

TEST(ExprTest, ComparisonOperators) {
  Schema s({{"a", ValueType::kInt}});
  Tuple t{Value::Int(5)};
  struct Case {
    CompareOp op;
    int64_t rhs;
    bool expected;
  } cases[] = {
      {CompareOp::kEq, 5, true},  {CompareOp::kEq, 4, false},
      {CompareOp::kNe, 4, true},  {CompareOp::kLt, 6, true},
      {CompareOp::kLt, 5, false}, {CompareOp::kLe, 5, true},
      {CompareOp::kGt, 4, true},  {CompareOp::kGe, 5, true},
      {CompareOp::kGe, 6, false},
  };
  for (const auto& c : cases) {
    auto e = Expr::Compare(c.op, Col("a"), Lit(Value::Int(c.rhs)));
    auto b = e->BindAgainst(s);
    ASSERT_TRUE(b.ok());
    auto v = (*b)->Eval(t);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v->as_bool(), c.expected)
        << e->ToString() << " on a=5";
  }
}

TEST(ExprTest, NullPropagatesThroughComparison) {
  Schema s({{"a", ValueType::kInt}});
  auto e = Eq(Col("a"), Lit(Value::Int(1)))->BindAgainst(s);
  ASSERT_TRUE(e.ok());
  auto v = (*e)->Eval({Value::Null()});
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());
}

TEST(ExprTest, KleeneAndOr) {
  Schema s({{"a", ValueType::kInt}});
  Tuple null_t{Value::Null()};
  // NULL AND false = false; NULL OR true = true; NULL AND true = NULL.
  auto null_cmp = Eq(Col("a"), Lit(Value::Int(1)));
  auto f = Lit(Value::Bool(false));
  auto t = Lit(Value::Bool(true));
  auto and_false = Expr::And(null_cmp, f)->BindAgainst(s);
  ASSERT_TRUE(and_false.ok());
  EXPECT_EQ(*(*and_false)->Eval(null_t), Value::Bool(false));
  auto or_true = Expr::Or(null_cmp, t)->BindAgainst(s);
  ASSERT_TRUE(or_true.ok());
  EXPECT_EQ(*(*or_true)->Eval(null_t), Value::Bool(true));
  auto and_true = Expr::And(null_cmp, t)->BindAgainst(s);
  ASSERT_TRUE(and_true.ok());
  EXPECT_TRUE((*and_true)->Eval(null_t)->is_null());
  auto not_null = Expr::Not(null_cmp)->BindAgainst(s);
  ASSERT_TRUE(not_null.ok());
  EXPECT_TRUE((*not_null)->Eval(null_t)->is_null());
}

TEST(ExprTest, ArithmeticTypesAndDivByZero) {
  Schema s({{"a", ValueType::kInt}, {"b", ValueType::kDouble}});
  Tuple t{Value::Int(7), Value::Double(2.0)};
  auto add = Expr::Arith(ArithOp::kAdd, Col("a"), Col("b"))->BindAgainst(s);
  ASSERT_TRUE(add.ok());
  EXPECT_EQ(*(*add)->Eval(t), Value::Double(9.0));
  auto idiv =
      Expr::Arith(ArithOp::kDiv, Col("a"), Lit(Value::Int(2)))->BindAgainst(s);
  ASSERT_TRUE(idiv.ok());
  EXPECT_EQ(*(*idiv)->Eval(t), Value::Int(3));  // integer division
  auto div0 =
      Expr::Arith(ArithOp::kDiv, Col("a"), Lit(Value::Int(0)))->BindAgainst(s);
  ASSERT_TRUE(div0.ok());
  EXPECT_TRUE((*div0)->Eval(t)->is_null());
}

TEST(ExprTest, IsNullAndIn) {
  Schema s({{"a", ValueType::kInt}});
  auto isnull = Expr::IsNull(Col("a"), false)->BindAgainst(s);
  auto isnotnull = Expr::IsNull(Col("a"), true)->BindAgainst(s);
  ASSERT_TRUE(isnull.ok());
  ASSERT_TRUE(isnotnull.ok());
  EXPECT_EQ(*(*isnull)->Eval({Value::Null()}), Value::Bool(true));
  EXPECT_EQ(*(*isnull)->Eval({Value::Int(1)}), Value::Bool(false));
  EXPECT_EQ(*(*isnotnull)->Eval({Value::Int(1)}), Value::Bool(true));
  auto in = Expr::In(Col("a"), {Value::Int(1), Value::Int(3)})->BindAgainst(s);
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(*(*in)->Eval({Value::Int(3)}), Value::Bool(true));
  EXPECT_EQ(*(*in)->Eval({Value::Int(2)}), Value::Bool(false));
  EXPECT_TRUE((*in)->Eval({Value::Null()})->is_null());
}

TEST(ExprTest, TypeMismatchIsError) {
  Schema s({{"a", ValueType::kInt}});
  auto e = Eq(Col("a"), Lit(Value::String("x")))->BindAgainst(s);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->Eval({Value::Int(1)}).status().code(),
            StatusCode::kTypeMismatch);
}

TEST(ExprTest, ToStringRoundtripsShape) {
  auto e = Expr::And(Eq(Col("a"), Lit(Value::Int(1))),
                     Expr::Not(Eq(Col("b"), Lit(Value::String("x")))));
  EXPECT_EQ(e->ToString(), "((a = 1) AND (NOT (b = 'x')))");
}

TEST(ExecutorTest, ScanReturnsAllRows) {
  Catalog cat = MakeCatalog();
  auto r = Execute(Plan::Scan("people"), cat);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->NumRows(), 4u);
  EXPECT_EQ(Execute(Plan::Scan("nope"), cat).status().code(),
            StatusCode::kNotFound);
}

TEST(ExecutorTest, SelectFilters) {
  Catalog cat = MakeCatalog();
  auto plan = Plan::Select(Plan::Scan("people"),
                           Eq(Col("city"), Lit(Value::String("berlin"))));
  auto r = Execute(plan, cat);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumRows(), 2u);
  // NULL age row is rejected by a predicate on age.
  auto plan2 = Plan::Select(
      Plan::Scan("people"),
      Expr::Compare(CompareOp::kGt, Col("age"), Lit(Value::Int(0))));
  auto r2 = Execute(plan2, cat);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->NumRows(), 3u);
}

TEST(ExecutorTest, ProjectComputesExpressions) {
  Catalog cat = MakeCatalog();
  auto plan = Plan::Project(
      Plan::Scan("people"),
      {{Col("name"), "name"},
       {Expr::Arith(ArithOp::kAdd, Col("age"), Lit(Value::Int(1))), "age1"}});
  auto r = Execute(plan, cat);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumRows(), 4u);
  EXPECT_EQ(r->schema().attr(1).name, "age1");
  EXPECT_EQ(r->row(0)[1], Value::Int(35));
  EXPECT_TRUE(r->row(3)[1].is_null());  // NULL + 1 = NULL
}

TEST(ExecutorTest, ProductPairsEverything) {
  Catalog cat = MakeCatalog();
  auto r = Execute(Plan::Product(Plan::Scan("people"), Plan::Scan("cities")),
                   cat);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumRows(), 8u);
  EXPECT_EQ(r->schema().size(), 6u);
}

TEST(ExecutorTest, EquiJoinUsesKeysCorrectly) {
  Catalog cat = MakeCatalog();
  auto pred = Eq(Col("city"), Col("cities.city"));
  // Bind against concatenated schema is done inside; names resolve left
  // first, so use the disambiguated right name.
  auto r = Execute(Plan::Join(Plan::Scan("people"), Plan::Scan("cities"),
                              pred),
                   cat);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->NumRows(), 3u);  // ann, bob, cid match; dee (rome) does not
}

TEST(ExecutorTest, JoinWithResidualPredicate) {
  Catalog cat = MakeCatalog();
  auto pred = Expr::And(
      Eq(Col("city"), Col("cities.city")),
      Expr::Compare(CompareOp::kGt, Col("age"), Lit(Value::Int(30))));
  auto r = Execute(Plan::Join(Plan::Scan("people"), Plan::Scan("cities"),
                              pred),
                   cat);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumRows(), 2u);  // ann 34 berlin, cid 41 berlin
}

TEST(ExecutorTest, NonEquiJoinFallsBackToNestedLoop) {
  Catalog cat = MakeCatalog();
  auto pred =
      Expr::Compare(CompareOp::kLt, Col("id"), Lit(Value::Int(3)));
  auto r = Execute(Plan::Join(Plan::Scan("people"), Plan::Scan("cities"),
                              pred),
                   cat);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumRows(), 4u);  // ids 1,2 × 2 cities
}

TEST(ExecutorTest, UnionConcatsBags) {
  Catalog cat = MakeCatalog();
  auto r = Execute(Plan::Union(Plan::Scan("cities"), Plan::Scan("cities")),
                   cat);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumRows(), 4u);
  auto bad = Execute(Plan::Union(Plan::Scan("cities"), Plan::Scan("people")),
                     cat);
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ExecutorTest, DifferenceIsAntiJoin) {
  Catalog cat;
  Relation a("a", Schema({{"x", ValueType::kInt}}));
  a.AppendUnchecked({Value::Int(1)});
  a.AppendUnchecked({Value::Int(1)});
  a.AppendUnchecked({Value::Int(2)});
  a.AppendUnchecked({Value::Int(2)});
  Relation b("b", Schema({{"x", ValueType::kInt}}));
  b.AppendUnchecked({Value::Int(1)});
  MAYBMS_ASSERT_OK(cat.Create(std::move(a)));
  MAYBMS_ASSERT_OK(cat.Create(std::move(b)));
  auto r = Execute(Plan::Difference(Plan::Scan("a"), Plan::Scan("b")), cat);
  ASSERT_TRUE(r.ok());
  // Anti-join (SQL EXCEPT) semantics: every equal occurrence is removed,
  // surviving rows keep their multiplicity.
  ASSERT_EQ(r->NumRows(), 2u);
  EXPECT_EQ(r->row(0)[0], Value::Int(2));
  EXPECT_EQ(r->row(1)[0], Value::Int(2));
}

TEST(ExecutorTest, DistinctRemovesDuplicates) {
  Catalog cat = MakeCatalog();
  auto plan = Plan::Distinct(
      Plan::Project(Plan::Scan("people"), {{Col("city"), "city"}}));
  auto r = Execute(plan, cat);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumRows(), 3u);
}

TEST(ExecutorTest, SortOrdersRows) {
  Catalog cat = MakeCatalog();
  auto r = Execute(Plan::Sort(Plan::Scan("people"), {"age"}, {true}), cat);
  ASSERT_TRUE(r.ok());
  // Descending: 41, 34, 25, NULL (NULL smallest → last in desc).
  EXPECT_EQ(r->row(0)[2], Value::Int(41));
  EXPECT_TRUE(r->row(3)[2].is_null());
}

TEST(ExecutorTest, LimitTruncates) {
  Catalog cat = MakeCatalog();
  auto r = Execute(Plan::Limit(Plan::Scan("people"), 2), cat);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumRows(), 2u);
  auto r0 = Execute(Plan::Limit(Plan::Scan("people"), 0), cat);
  ASSERT_TRUE(r0.ok());
  EXPECT_EQ(r0->NumRows(), 0u);
}

TEST(ExecutorTest, AggregateGroupBy) {
  Catalog cat = MakeCatalog();
  auto plan = Plan::Aggregate(
      Plan::Scan("people"), {"city"},
      {{AggFunc::kCount, nullptr, "n"}, {AggFunc::kAvg, Col("age"), "avg_age"}});
  auto r = Execute(plan, cat);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->NumRows(), 3u);
  // berlin group: count 2, avg 37.5
  bool found = false;
  for (const auto& row : r->rows()) {
    if (row[0] == Value::String("berlin")) {
      EXPECT_EQ(row[1], Value::Int(2));
      EXPECT_EQ(row[2], Value::Double(37.5));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ExecutorTest, AggregateGlobalOnEmptyInput) {
  Catalog cat = MakeCatalog();
  auto plan = Plan::Aggregate(
      Plan::Select(Plan::Scan("people"),
                   Eq(Col("city"), Lit(Value::String("nowhere")))),
      {}, {{AggFunc::kCount, nullptr, "n"}, {AggFunc::kSum, Col("age"), "s"}});
  auto r = Execute(plan, cat);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->NumRows(), 1u);
  EXPECT_EQ(r->row(0)[0], Value::Int(0));
  EXPECT_TRUE(r->row(0)[1].is_null());
}

TEST(ExecutorTest, AggregateMinMaxSumIgnoreNulls) {
  Catalog cat = MakeCatalog();
  auto plan = Plan::Aggregate(Plan::Scan("people"), {},
                              {{AggFunc::kMin, Col("age"), "lo"},
                               {AggFunc::kMax, Col("age"), "hi"},
                               {AggFunc::kSum, Col("age"), "total"},
                               {AggFunc::kCount, Col("age"), "n"}});
  auto r = Execute(plan, cat);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->NumRows(), 1u);
  EXPECT_EQ(r->row(0)[0], Value::Int(25));
  EXPECT_EQ(r->row(0)[1], Value::Int(41));
  EXPECT_EQ(r->row(0)[2], Value::Int(100));
  EXPECT_EQ(r->row(0)[3], Value::Int(3));  // NULL age not counted
}

TEST(ExecutorTest, OutputSchemaWithoutExecution) {
  Catalog cat = MakeCatalog();
  auto plan = Plan::Project(
      Plan::Join(Plan::Scan("people"), Plan::Scan("cities"),
                 Eq(Col("city"), Col("cities.city"))),
      {{Col("name"), "name"}, {Col("country"), "country"}});
  auto s = OutputSchema(plan, cat);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  ASSERT_EQ(s->size(), 2u);
  EXPECT_EQ(s->attr(0).name, "name");
  EXPECT_EQ(s->attr(1).name, "country");
}

TEST(PlanTest, ToStringRendersTree) {
  auto plan = Plan::Select(Plan::Scan("r"), Eq(Col("a"), Lit(Value::Int(1))));
  std::string s = plan->ToString();
  EXPECT_NE(s.find("Select"), std::string::npos);
  EXPECT_NE(s.find("Scan r"), std::string::npos);
}

}  // namespace
}  // namespace maybms
