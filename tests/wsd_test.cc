// Unit tests for the WSD core: components, builder, database invariants,
// world counting, sizes, existence probabilities, enumeration.
#include <gtest/gtest.h>

#include <cmath>

#include "core/builder.h"
#include "core/wsd.h"
#include "tests/test_util.h"
#include "worlds/enumerate.h"

namespace maybms {
namespace {

using testing_util::MedicalExample;

TEST(ComponentTest, AddSlotAndRows) {
  Component c;
  c.AddSlot({1, "x"}, Value::Null());
  MAYBMS_ASSERT_OK(c.AddRow({{Value::Int(1)}, 0.5}));
  MAYBMS_ASSERT_OK(c.AddRow({{Value::Int(2)}, 0.5}));
  EXPECT_EQ(c.NumSlots(), 1u);
  EXPECT_EQ(c.NumRows(), 2u);
  EXPECT_DOUBLE_EQ(c.TotalMass(), 1.0);
  EXPECT_EQ(c.AddRow({{Value::Int(1), Value::Int(2)}, 0.1}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(c.AddRow({{Value::Int(1)}, 1.5}).code(), StatusCode::kOutOfRange);
}

TEST(ComponentTest, DedupRowsSumsProbabilities) {
  Component c;
  c.AddSlot({1, "x"}, Value::Null());
  MAYBMS_ASSERT_OK(c.AddRow({{Value::Int(1)}, 0.3}));
  MAYBMS_ASSERT_OK(c.AddRow({{Value::Int(2)}, 0.5}));
  MAYBMS_ASSERT_OK(c.AddRow({{Value::Int(1)}, 0.2}));
  c.DedupRows();
  ASSERT_EQ(c.NumRows(), 2u);
  EXPECT_DOUBLE_EQ(c.prob(0), 0.5);
  EXPECT_DOUBLE_EQ(c.prob(1), 0.5);
  EXPECT_EQ(c.ValueAt(0, 0), Value::Int(1));  // first-occurrence order
}

TEST(ComponentTest, DropSlotsMarginalizes) {
  Component c;
  c.AddSlot({1, "x"}, Value::Null());
  c.AddSlot({2, "y"}, Value::Null());
  MAYBMS_ASSERT_OK(c.AddRow({{Value::Int(1), Value::Int(10)}, 0.25}));
  MAYBMS_ASSERT_OK(c.AddRow({{Value::Int(1), Value::Int(20)}, 0.25}));
  MAYBMS_ASSERT_OK(c.AddRow({{Value::Int(2), Value::Int(10)}, 0.5}));
  c.DropSlots({1});
  ASSERT_EQ(c.NumSlots(), 1u);
  ASSERT_EQ(c.NumRows(), 2u);  // (1) merged, (2) kept
  EXPECT_DOUBLE_EQ(c.prob(0), 0.5);
  EXPECT_DOUBLE_EQ(c.prob(1), 0.5);
}

TEST(ComponentTest, ProductMultipliesRowsAndProbs) {
  Component a, b;
  a.AddSlot({1, "x"}, Value::Null());
  b.AddSlot({2, "y"}, Value::Null());
  MAYBMS_ASSERT_OK(a.AddRow({{Value::Int(1)}, 0.4}));
  MAYBMS_ASSERT_OK(a.AddRow({{Value::Int(2)}, 0.6}));
  MAYBMS_ASSERT_OK(b.AddRow({{Value::String("u")}, 0.5}));
  MAYBMS_ASSERT_OK(b.AddRow({{Value::String("v")}, 0.5}));
  auto p = Component::Product(a, b, 100);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->NumRows(), 4u);
  EXPECT_EQ(p->NumSlots(), 2u);
  EXPECT_DOUBLE_EQ(p->prob(0), 0.2);
  EXPECT_DOUBLE_EQ(p->TotalMass(), 1.0);
  EXPECT_EQ(Component::Product(a, b, 3).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(ComponentTest, RenormalizeAfterConditioning) {
  Component c;
  c.AddSlot({1, "x"}, Value::Null());
  MAYBMS_ASSERT_OK(c.AddRow({{Value::Int(1)}, 0.4}));
  MAYBMS_ASSERT_OK(c.AddRow({{Value::Int(2)}, 0.4}));
  MAYBMS_ASSERT_OK(c.Renormalize());
  EXPECT_DOUBLE_EQ(c.prob(0), 0.5);
  Component empty;
  empty.AddSlot({1, "x"}, Value::Null());
  EXPECT_EQ(empty.Renormalize().code(), StatusCode::kInconsistent);
}

TEST(BuilderTest, FromCatalogIsSingleWorld) {
  Catalog cat;
  Relation r("r", Schema({{"x", ValueType::kInt}}));
  r.AppendUnchecked({Value::Int(1)});
  r.AppendUnchecked({Value::Int(2)});
  MAYBMS_ASSERT_OK(cat.Create(std::move(r)));
  WsdDb db = FromCatalog(cat);
  MAYBMS_ASSERT_OK(db.CheckInvariants());
  EXPECT_EQ(db.NumLiveComponents(), 0u);
  EXPECT_DOUBLE_EQ(db.Log2WorldCount(), 0.0);
  auto worlds = EnumerateWorlds(db);
  ASSERT_TRUE(worlds.ok());
  ASSERT_EQ(worlds->size(), 1u);
  EXPECT_DOUBLE_EQ((*worlds)[0].prob, 1.0);
  EXPECT_EQ((*worlds)[0].catalog.Get("r").value()->NumRows(), 2u);
}

TEST(BuilderTest, OrSetCellCreatesComponent) {
  WsdDb db;
  MAYBMS_ASSERT_OK(
      db.CreateRelation("r", Schema({{"x", ValueType::kInt}})));
  auto h = InsertTuple(&db, "r",
                       {CellSpec::OrSet({{Value::Int(1), 0.3},
                                         {Value::Int(2), 0.7}})});
  ASSERT_TRUE(h.ok());
  MAYBMS_ASSERT_OK(db.CheckInvariants());
  EXPECT_EQ(db.NumLiveComponents(), 1u);
  auto count = db.WorldCountIfSmall();
  ASSERT_TRUE(count.has_value());
  EXPECT_EQ(*count, 2u);
}

TEST(BuilderTest, OrSetValidation) {
  WsdDb db;
  MAYBMS_ASSERT_OK(db.CreateRelation("r", Schema({{"x", ValueType::kInt}})));
  EXPECT_EQ(InsertTuple(&db, "r", {CellSpec::OrSet({})}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(InsertTuple(&db, "r",
                        {CellSpec::OrSet({{Value::Int(1), 0.3},
                                          {Value::Int(2), 0.3}})})
                .status()
                .code(),
            StatusCode::kInvalidArgument);  // sums to 0.6
  EXPECT_EQ(InsertTuple(&db, "r",
                        {CellSpec::OrSet({{Value::String("x"), 1.0}})})
                .status()
                .code(),
            StatusCode::kTypeMismatch);
  EXPECT_EQ(
      InsertTuple(&db, "r", {CellSpec::Certain(Value::Int(1)),
                             CellSpec::Certain(Value::Int(2))})
          .status()
          .code(),
      StatusCode::kInvalidArgument);  // arity
}

TEST(BuilderTest, UniformOrSet) {
  WsdDb db;
  MAYBMS_ASSERT_OK(db.CreateRelation("r", Schema({{"x", ValueType::kInt}})));
  auto h = InsertTuple(
      &db, "r",
      {CellSpec::UniformOrSet({Value::Int(1), Value::Int(2), Value::Int(4)})});
  ASSERT_TRUE(h.ok());
  const Component& c = db.component(0);
  ASSERT_EQ(c.NumRows(), 3u);
  for (double p : c.probs()) EXPECT_NEAR(p, 1.0 / 3, 1e-12);
}

TEST(BuilderTest, MakeCellUncertain) {
  Catalog cat;
  Relation r("r", Schema({{"x", ValueType::kInt}, {"y", ValueType::kInt}}));
  r.AppendUnchecked({Value::Int(1), Value::Int(2)});
  MAYBMS_ASSERT_OK(cat.Create(std::move(r)));
  WsdDb db = FromCatalog(cat);
  auto cid = MakeCellUncertain(&db, "r", 0, 1,
                               {{Value::Int(2), 0.8}, {Value::Int(9), 0.2}});
  ASSERT_TRUE(cid.ok()) << cid.status().ToString();
  MAYBMS_ASSERT_OK(db.CheckInvariants());
  EXPECT_EQ(db.NumLiveComponents(), 1u);
  // Cell already uncertain -> error.
  EXPECT_EQ(MakeCellUncertain(&db, "r", 0, 1, {{Value::Int(1), 1.0}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MakeCellUncertain(&db, "r", 5, 0, {{Value::Int(1), 1.0}})
                .status()
                .code(),
            StatusCode::kOutOfRange);
}

TEST(WsdDbTest, MedicalExampleShape) {
  WsdDb db = MedicalExample();
  MAYBMS_ASSERT_OK(db.CheckInvariants());
  EXPECT_EQ(db.NumLiveComponents(), 2u);
  auto count = db.WorldCountIfSmall();
  ASSERT_TRUE(count.has_value());
  EXPECT_EQ(*count, 4u);
  EXPECT_NEAR(db.Log2WorldCount(), 2.0, 1e-12);
}

TEST(WsdDbTest, MedicalExampleWorlds) {
  WsdDb db = MedicalExample();
  auto worlds = EnumerateWorlds(db);
  ASSERT_TRUE(worlds.ok());
  ASSERT_EQ(worlds->size(), 4u);
  double total = 0;
  for (const auto& w : *worlds) {
    total += w.prob;
    EXPECT_EQ(w.catalog.Get("R").value()->NumRows(), 2u);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  // The paper's example world: hypothyroidism/TSH + weight gain = 0.42.
  bool found = false;
  for (const auto& w : *worlds) {
    const Relation& r = *w.catalog.Get("R").value();
    for (const auto& row : r.rows()) {
      if (row[0] == Value::String("hypothyroidism") &&
          row[2] == Value::String("weight gain")) {
        EXPECT_NEAR(w.prob, 0.42, 1e-12);
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(WsdDbTest, ExistenceProbability) {
  WsdDb db = MedicalExample();
  const WsdRelation* rel = db.GetRelation("R").value();
  EXPECT_NEAR(db.ExistenceProbability(rel->tuple(0)), 1.0, 1e-12);
  EXPECT_NEAR(db.ExistenceProbability(rel->tuple(1)), 1.0, 1e-12);
}

TEST(WsdDbTest, MergeComponentsRemapsCells) {
  WsdDb db = MedicalExample();
  auto live = db.LiveComponents();
  ASSERT_EQ(live.size(), 2u);
  auto merged = db.MergeComponents(live, 1000);
  ASSERT_TRUE(merged.ok());
  MAYBMS_ASSERT_OK(db.CheckInvariants());
  EXPECT_EQ(db.NumLiveComponents(), 1u);
  EXPECT_EQ(db.component(*merged).NumRows(), 4u);
  // Worlds unchanged.
  auto worlds = EnumerateWorlds(db);
  ASSERT_TRUE(worlds.ok());
  EXPECT_EQ(worlds->size(), 4u);
}

TEST(WsdDbTest, MergeComponentGroupsRemapsCellsPerGroup) {
  // Four or-set cells -> four components; merge {c0,c1} and {c2,c3} in one
  // batch and check every template cell lands on the right merged slot.
  WsdDb db;
  Schema schema({{"a", ValueType::kInt},
                 {"b", ValueType::kInt},
                 {"c", ValueType::kInt},
                 {"d", ValueType::kInt}});
  MAYBMS_ASSERT_OK(db.CreateRelation("r", schema));
  std::vector<CellSpec> cells;
  for (int i = 0; i < 4; ++i) {
    cells.push_back(CellSpec::OrSet({{Value::Int(10 * i), 0.5},
                                     {Value::Int(10 * i + 1), 0.5}}));
  }
  ASSERT_TRUE(InsertTuple(&db, "r", std::move(cells)).ok());
  auto live = db.LiveComponents();
  ASSERT_EQ(live.size(), 4u);
  // Record pre-merge possible values per column.
  auto worlds_before = EnumerateWorlds(db);
  ASSERT_TRUE(worlds_before.ok());

  auto merged = db.MergeComponentGroups(
      {{live[0], live[1]}, {live[2], live[3]}}, 1u << 10);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  ASSERT_EQ(merged->size(), 2u);
  EXPECT_EQ(db.NumLiveComponents(), 2u);
  MAYBMS_ASSERT_OK(db.CheckInvariants());

  const WsdRelation* rel = db.GetRelation("r").value();
  const WsdTuple& t = rel->tuple(0);
  // Columns 0,1 -> merged group 0 (slots 0,1); columns 2,3 -> group 1.
  for (int col = 0; col < 4; ++col) {
    ASSERT_TRUE(t.cells[col].is_ref());
    ComponentId expect_cid = (*merged)[col / 2];
    EXPECT_EQ(t.cells[col].ref().cid, expect_cid) << "column " << col;
    EXPECT_EQ(t.cells[col].ref().slot, static_cast<uint32_t>(col % 2));
    // The merged column must carry exactly the original alternatives.
    const Component& m = db.component(expect_cid);
    for (size_t r = 0; r < m.NumRows(); ++r) {
      int64_t v = m.ValueAt(r, t.cells[col].ref().slot).as_int();
      EXPECT_TRUE(v == 10 * col || v == 10 * col + 1);
    }
  }
  // The world-set distribution is unchanged by merging.
  auto worlds_after = EnumerateWorlds(db);
  ASSERT_TRUE(worlds_after.ok());
  testing_util::ExpectDistEq(
      testing_util::RelationDistribution(*worlds_before, "r"),
      testing_util::RelationDistribution(*worlds_after, "r"));
}

TEST(WsdDbTest, MergeComponentGroupsRejectsOverlap) {
  WsdDb db = MedicalExample();
  auto live = db.LiveComponents();
  ASSERT_EQ(live.size(), 2u);
  EXPECT_EQ(db.MergeComponentGroups({{live[0], live[1]}, {live[1]}}, 1000)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(WsdDbTest, InternedSizeTracksComponents) {
  WsdDb db = MedicalExample();
  uint64_t interned = db.InternedSize();
  EXPECT_GT(interned, 0u);
  // Adding an uncertain cell grows the interned footprint.
  auto live = db.LiveComponents();
  auto m = db.MergeComponents(live, 1000);
  ASSERT_TRUE(m.ok());
  EXPECT_GT(db.InternedSize(), interned);  // product has more cells
}

TEST(WsdDbTest, MergeBudget) {
  WsdDb db = MedicalExample();
  auto live = db.LiveComponents();
  EXPECT_EQ(db.MergeComponents(live, 3).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(WsdDbTest, SerializedSizeGrowsWithComponents) {
  Catalog cat;
  Relation r("r", Schema({{"x", ValueType::kInt}}));
  for (int i = 0; i < 10; ++i) r.AppendUnchecked({Value::Int(i)});
  uint64_t flat = r.SerializedSize();
  MAYBMS_ASSERT_OK(cat.Create(std::move(r)));
  WsdDb db = FromCatalog(cat);
  uint64_t base = db.SerializedSize();
  EXPECT_EQ(base, flat + 0u * 10);  // inline cells serialize like values
  auto cid = MakeCellUncertain(&db, "r", 0, 0,
                               {{Value::Int(0), 0.5}, {Value::Int(5), 0.5}});
  ASSERT_TRUE(cid.ok());
  EXPECT_GT(db.SerializedSize(), base);
}

TEST(WsdDbTest, WorldCountOverflowReturnsNullopt) {
  WsdDb db;
  MAYBMS_ASSERT_OK(db.CreateRelation("r", Schema({{"x", ValueType::kInt}})));
  for (int i = 0; i < 80; ++i) {
    std::vector<CellSpec> cells;
    cells.push_back(CellSpec::OrSet({{Value::Int(0), 0.5},
                                     {Value::Int(1), 0.5}}));
    ASSERT_TRUE(InsertTuple(&db, "r", std::move(cells)).ok());
  }
  EXPECT_FALSE(db.WorldCountIfSmall().has_value());
  EXPECT_NEAR(db.Log2WorldCount(), 80.0, 1e-9);
  EXPECT_EQ(EnumerateWorlds(db, 1024).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(WsdDbTest, CheckInvariantsCatchesBadMass) {
  WsdDb db;
  MAYBMS_ASSERT_OK(db.CreateRelation("r", Schema({{"x", ValueType::kInt}})));
  Component c;
  c.AddSlot({1, "x"}, Value::Null());
  MAYBMS_ASSERT_OK(c.AddRow({{Value::Int(1)}, 0.4}));
  db.AddComponent(std::move(c));
  EXPECT_EQ(db.CheckInvariants().code(), StatusCode::kInternal);
}

TEST(WsdDbTest, ToStringMentionsComponents) {
  WsdDb db = MedicalExample();
  std::string s = db.ToString();
  EXPECT_NE(s.find("components:"), std::string::npos);
  EXPECT_NE(s.find("pregnancy"), std::string::npos);
  EXPECT_NE(s.find("0.4"), std::string::npos);
}

TEST(EnumerateTest, MergeEqualWorlds) {
  WsdDb db;
  MAYBMS_ASSERT_OK(db.CreateRelation("r", Schema({{"x", ValueType::kInt}})));
  // Two alternatives with the same value: worlds merge to one.
  ASSERT_TRUE(InsertTuple(&db, "r",
                          {CellSpec::OrSet({{Value::Int(1), 0.5},
                                            {Value::Int(1), 0.5}})})
                  .ok());
  auto worlds = EnumerateWorlds(db);
  ASSERT_TRUE(worlds.ok());
  EXPECT_EQ(worlds->size(), 2u);
  auto merged = MergeEqualWorlds(std::move(*worlds));
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_NEAR(merged[0].prob, 1.0, 1e-12);
}

}  // namespace
}  // namespace maybms
