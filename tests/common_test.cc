// Unit tests for src/common: Status/Result, Rng, string utilities, hashing —
// plus the Value hash/equality/order consistency contract (mixed numerics,
// NaN, ±0.0) that dedup and grouping rely on.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "common/hash.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "storage/packed_value.h"
#include "storage/value.h"

namespace maybms {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("relation R");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.message(), "relation R");
  EXPECT_EQ(st.ToString(), "NotFound: relation R");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::TypeMismatch("x").code(), StatusCode::kTypeMismatch);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Inconsistent("x").code(), StatusCode::kInconsistent);
}

TEST(StatusTest, CopyKeepsContent) {
  Status a = Status::Internal("boom");
  Status b = a;
  EXPECT_EQ(b.code(), StatusCode::kInternal);
  EXPECT_EQ(b.message(), "boom");
}

Status FailingHelper() { return Status::OutOfRange("helper"); }

Status UsesReturnIfError() {
  MAYBMS_RETURN_IF_ERROR(FailingHelper());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(UsesReturnIfError().code(), StatusCode::kOutOfRange);
}

Result<int> GiveInt(bool ok) {
  if (!ok) return Status::InvalidArgument("nope");
  return 41;
}

Result<int> UsesAssignOrReturn() {
  MAYBMS_ASSIGN_OR_RETURN(int v, GiveInt(true));
  return v + 1;
}

Result<int> UsesAssignOrReturnFailing() {
  MAYBMS_ASSIGN_OR_RETURN(int v, GiveInt(false));
  return v + 1;
}

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> r = GiveInt(true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 41);
  Result<int> e = GiveInt(false);
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(e.value_or(7), 7);
  EXPECT_EQ(r.value_or(7), 41);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto ok = UsesAssignOrReturn();
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  auto bad = UsesAssignOrReturnFailing();
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 10; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 5);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(10), 10u);
  }
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBelow(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, SplitIsDeterministicAndStreamDependent) {
  Rng base(42);
  Rng a = base.Split(0), b = Rng(42).Split(0), c = base.Split(1);
  // Split does not advance the parent, so equal (state, stream) pairs
  // yield equal substreams.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  int differing = 0;
  Rng a2 = Rng(42).Split(0);
  for (int i = 0; i < 10; ++i) {
    if (a2.Next() != c.Next()) ++differing;
  }
  EXPECT_GT(differing, 5);
}

TEST(RngTest, SplitDoesNotAdvanceParent) {
  Rng a(7), b(7);
  (void)a.Split(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, SplitSubstreamsLookIndependent) {
  // Means of distinct substreams behave like independent uniforms.
  Rng base(1234);
  for (uint64_t s = 0; s < 8; ++s) {
    Rng sub = base.Split(s);
    double mean = 0.0;
    for (int i = 0; i < 4000; ++i) mean += sub.NextDouble();
    mean /= 4000.0;
    EXPECT_NEAR(mean, 0.5, 0.03);
  }
}

TEST(RngTest, JumpChangesStreamDeterministically) {
  Rng a(5), b(5), c(5);
  a.Jump();
  b.Jump();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  // The jumped stream is a different block of the sequence.
  Rng a2(5);
  a2.Jump();
  int differing = 0;
  for (int i = 0; i < 10; ++i) {
    if (a2.Next() != c.Next()) ++differing;
  }
  EXPECT_GT(differing, 5);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ProbabilitiesSumToOne) {
  Rng rng(13);
  for (int n : {1, 2, 5, 17}) {
    auto p = rng.NextProbabilities(n);
    ASSERT_EQ(p.size(), static_cast<size_t>(n));
    double sum = 0;
    for (double x : p) {
      EXPECT_GT(x, 0.0);
      sum += x;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(15);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
}

TEST(RngTest, ZipfSkewsTowardsLowRanks) {
  Rng rng(17);
  size_t low = 0, total = 5000;
  for (size_t i = 0; i < total; ++i) {
    if (rng.NextZipf(100, 1.2) < 10) ++low;
  }
  // With s=1.2, the first 10 ranks carry well over half the mass.
  EXPECT_GT(low, total / 2);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(&v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(StringUtilTest, SplitAndJoin) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join(parts, "|"), "a|b||c");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("AbC1"), "abc1");
  EXPECT_EQ(ToUpper("aBc1"), "ABC1");
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x \t\n"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

TEST(StringUtilTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2048), "2.0 KiB");
  EXPECT_EQ(FormatBytes(3u << 20), "3.0 MiB");
}

TEST(StringUtilTest, Padding) {
  EXPECT_EQ(PadRight("ab", 4), "ab  ");
  EXPECT_EQ(PadLeft("ab", 4), "  ab");
  EXPECT_EQ(PadRight("abcd", 2), "abcd");
}

TEST(HashTest, CombineChangesSeed) {
  size_t a = 0, b = 0;
  HashCombine(&a, 1);
  HashCombine(&b, 2);
  EXPECT_NE(a, b);
}

TEST(HashTest, BytesStable) {
  EXPECT_EQ(HashString("abc"), HashString("abc"));
  EXPECT_NE(HashString("abc"), HashString("abd"));
}

// --- Value consistency contract: a == b implies Hash(a) == Hash(b) and
// --- Compare(a, b) == 0, across mixed int/double numerics and the IEEE
// --- edge cases (NaN, ±0.0).

TEST(ValueConsistencyTest, MixedIntDoubleEquality) {
  Value i = Value::Int(1), d = Value::Double(1.0);
  EXPECT_TRUE(i == d);
  EXPECT_EQ(i.Hash(), d.Hash());
  EXPECT_EQ(i.Compare(d), 0);
  EXPECT_FALSE(Value::Int(1) == Value::Double(1.5));
  EXPECT_EQ(Value::Int(1).Compare(Value::Double(1.5)), -1);
}

TEST(ValueConsistencyTest, SignedZeroCollapses) {
  Value pz = Value::Double(0.0), nz = Value::Double(-0.0);
  EXPECT_TRUE(pz == nz);
  EXPECT_EQ(pz.Hash(), nz.Hash());
  EXPECT_EQ(pz.Compare(nz), 0);
  Value iz = Value::Int(0);
  EXPECT_TRUE(iz == nz);
  EXPECT_EQ(iz.Hash(), nz.Hash());
}

TEST(ValueConsistencyTest, NanIsOneEquivalenceClass) {
  double qnan = std::numeric_limits<double>::quiet_NaN();
  // A NaN with a different payload/sign still equals the canonical one.
  double other_nan = -qnan;
  ASSERT_TRUE(std::isnan(other_nan));
  Value a = Value::Double(qnan), b = Value::Double(other_nan);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_EQ(a.Compare(b), 0);
  // NaN never equals a number, and sorts after every number.
  Value inf = Value::Double(std::numeric_limits<double>::infinity());
  EXPECT_FALSE(a == inf);
  EXPECT_EQ(a.Compare(inf), 1);
  EXPECT_EQ(inf.Compare(a), -1);
  EXPECT_FALSE(a == Value::Int(0));
  EXPECT_EQ(Value::Int(0).Compare(a), -1);
}

TEST(ValueConsistencyTest, NanStillBelowStringsInTotalOrder) {
  Value nan = Value::Double(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(nan.Compare(Value::String("a")), -1);
  EXPECT_EQ(nan.Compare(Value::Null()), 1);
  EXPECT_EQ(nan.Compare(Value::Bottom()), 1);
}

TEST(PackedValueConsistencyTest, AgreesWithValueSemantics) {
  double qnan = std::numeric_limits<double>::quiet_NaN();
  const Value values[] = {
      Value::Null(),         Value::Bottom(),      Value::Bool(true),
      Value::Bool(false),    Value::Int(0),        Value::Int(1),
      Value::Int(-7),        Value::Double(0.0),   Value::Double(-0.0),
      Value::Double(1.0),    Value::Double(2.5),   Value::Double(qnan),
      Value::Double(-qnan),  Value::String(""),    Value::String("abc"),
      Value::String("abd"),
  };
  for (const Value& a : values) {
    for (const Value& b : values) {
      PackedValue pa = PackedValue::FromValue(a);
      PackedValue pb = PackedValue::FromValue(b);
      EXPECT_EQ(a == b, pa == pb) << a.ToString() << " vs " << b.ToString();
      EXPECT_EQ(a.Compare(b) == 0, pa.Compare(pb) == 0)
          << a.ToString() << " vs " << b.ToString();
      EXPECT_EQ((a.Compare(b) < 0), (pa.Compare(pb) < 0))
          << a.ToString() << " vs " << b.ToString();
      if (pa == pb) {
        EXPECT_EQ(pa.Hash(), pb.Hash())
            << a.ToString() << " vs " << b.ToString();
      }
      if (a == b) {
        EXPECT_EQ(a.Hash(), b.Hash())
            << a.ToString() << " vs " << b.ToString();
      }
    }
  }
}

TEST(PackedValueConsistencyTest, RoundTripsThroughValue) {
  double qnan = std::numeric_limits<double>::quiet_NaN();
  const Value values[] = {
      Value::Null(),     Value::Bottom(),       Value::Bool(true),
      Value::Int(42),    Value::Double(2.5),    Value::Double(qnan),
      Value::String(""), Value::String("abc"),
  };
  for (const Value& v : values) {
    Value back = PackedValue::FromValue(v).ToValue();
    EXPECT_TRUE(v == back) << v.ToString();
  }
}

TEST(ValuePoolTest, InternDeduplicates) {
  ValuePool& pool = ValuePool::Global();
  uint32_t a = pool.Intern("common_test_pool_key");
  uint32_t b = pool.Intern("common_test_pool_key");
  EXPECT_EQ(a, b);
  EXPECT_EQ(pool.Get(a), "common_test_pool_key");
  uint32_t c = pool.Intern("common_test_pool_key2");
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace maybms
