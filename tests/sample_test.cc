// Tests for world sampling, approximate confidence and the most probable
// world.
#include <gtest/gtest.h>

#include <map>

#include "core/confidence.h"
#include "tests/test_util.h"
#include "worlds/enumerate.h"
#include "worlds/sample.h"

namespace maybms {
namespace {

using testing_util::MedicalExample;

TEST(SampleTest, SampledWorldsAreValidWorlds) {
  WsdDb db = MedicalExample();
  auto worlds = EnumerateWorlds(db);
  ASSERT_TRUE(worlds.ok());
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    Catalog sampled = SampleWorld(db, &rng);
    bool found = false;
    for (const auto& w : *worlds) {
      if (w.catalog.Equals(sampled)) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "sampled a database that is not a world";
  }
}

TEST(SampleTest, FrequenciesApproachProbabilities) {
  WsdDb db = MedicalExample();
  Rng rng(7);
  // Track frequency of the pregnancy/ultrasound world (p = 0.4 overall
  // for the r1 diagnosis alternative).
  size_t n = 20000, hits = 0;
  Status st = SampleWorlds(db, n, &rng, [&](const Catalog& w) {
    const Relation& r = *w.Get("R").value();
    for (const auto& row : r.rows()) {
      if (row[0] == Value::String("pregnancy")) ++hits;
    }
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  EXPECT_NEAR(static_cast<double>(hits) / static_cast<double>(n), 0.4, 0.02);
}

TEST(SampleTest, ApproximateConfCloseToExact) {
  WsdDb db = MedicalExample();
  auto exact = ConfTable(db, "R");
  ASSERT_TRUE(exact.ok());
  auto approx = ApproximateConfTable(db, "R", 20000, /*seed=*/11);
  ASSERT_TRUE(approx.ok());
  // Compare per vector.
  std::map<std::string, double> exact_map, approx_map;
  for (const auto& row : exact->rows()) {
    std::string key;
    for (size_t c = 0; c + 1 < row.size(); ++c) key += row[c].ToString() + "|";
    exact_map[key] = row.back().as_double();
  }
  for (const auto& row : approx->rows()) {
    std::string key;
    for (size_t c = 0; c + 1 < row.size(); ++c) key += row[c].ToString() + "|";
    approx_map[key] = row.back().as_double();
  }
  for (const auto& [key, p] : exact_map) {
    ASSERT_TRUE(approx_map.count(key)) << key;
    EXPECT_NEAR(approx_map[key], p, 0.02) << key;
  }
}

// The streaming per-cluster sampler and the kept per-world oracle are
// independent estimators of the same confidences: both must land within
// sampling tolerance of the exact answer on the paper's running example.
TEST(SampleTest, StreamingSamplerAgreesWithWorldOracle) {
  WsdDb db = MedicalExample();
  auto exact = ConfTable(db, "R");
  ASSERT_TRUE(exact.ok());
  SampleConfOptions opts;
  opts.samples = 20000;
  opts.seed = 11;
  opts.exact_state_limit = 1;  // force the sampling path on every cluster
  auto streaming = EstimateConfidenceBySampling(db, "R", opts);
  ASSERT_TRUE(streaming.ok());
  auto oracle = ApproximateConfTableByWorlds(db, "R", 20000, /*seed=*/11);
  ASSERT_TRUE(oracle.ok());
  auto to_map = [](const Relation& r) {
    std::map<std::string, double> m;
    for (const auto& row : r.rows()) {
      std::string key;
      for (size_t c = 0; c + 1 < row.size(); ++c) {
        key += row[c].ToString() + "|";
      }
      m[key] = row.back().as_double();
    }
    return m;
  };
  auto exact_map = to_map(*exact);
  auto streaming_map = to_map(*streaming);
  auto oracle_map = to_map(*oracle);
  for (const auto& [key, p] : exact_map) {
    ASSERT_TRUE(streaming_map.count(key)) << "streaming missing " << key;
    ASSERT_TRUE(oracle_map.count(key)) << "oracle missing " << key;
    EXPECT_NEAR(streaming_map[key], p, 0.02) << key;
    EXPECT_NEAR(oracle_map[key], p, 0.02) << key;
  }
}

// Fixed seed → bit-identical confidences regardless of thread count.
TEST(SampleTest, StreamingSamplerDeterministicAcrossThreads) {
  Rng rng(23);
  testing_util::RandomWsdOptions opt;
  opt.p_uncertain_cell = 0.5;
  opt.max_tuples = 8;
  WsdDb db = testing_util::RandomWsd(&rng, opt);
  const std::string rel = db.RelationNames().front();
  SampleConfOptions o1;
  o1.samples = 5000;
  o1.seed = 99;
  o1.exact_state_limit = 1;
  o1.num_threads = 1;
  SampleConfOptions o4 = o1;
  o4.num_threads = 4;
  auto r1 = EstimateConfidenceBySampling(db, rel, o1);
  auto r4 = EstimateConfidenceBySampling(db, rel, o4);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r4.ok()) << r4.status().ToString();
  ASSERT_EQ(r1->rows().size(), r4->rows().size());
  for (size_t i = 0; i < r1->rows().size(); ++i) {
    const Tuple& a = r1->rows()[i];
    const Tuple& b = r4->rows()[i];
    ASSERT_EQ(a.size(), b.size());
    for (size_t c = 0; c < a.size(); ++c) {
      EXPECT_EQ(a[c], b[c]) << "row " << i << " col " << c;
    }
  }
}

TEST(SampleTest, ApproximateConfValidatesInput) {
  WsdDb db = MedicalExample();
  EXPECT_EQ(ApproximateConfTable(db, "R", 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ApproximateConfTable(db, "nope", 10).status().code(),
            StatusCode::kNotFound);
}

TEST(SampleTest, MostProbableWorld) {
  WsdDb db = MedicalExample();
  auto map = MostProbableWorld(db);
  ASSERT_TRUE(map.ok());
  // Components: (hypothyroidism 0.6) x (weight gain 0.7) = 0.42.
  EXPECT_NEAR(map->prob, 0.42, 1e-12);
  const Relation& r = *map->catalog.Get("R").value();
  bool has_hypo = false;
  for (const auto& row : r.rows()) {
    if (row[0] == Value::String("hypothyroidism")) {
      has_hypo = true;
      EXPECT_EQ(row[2], Value::String("weight gain"));
    }
  }
  EXPECT_TRUE(has_hypo);
}

TEST(SampleTest, MostProbableWorldIsAmongEnumerated) {
  Rng rng(17);
  testing_util::RandomWsdOptions opt;
  opt.p_uncertain_cell = 0.5;
  WsdDb db = testing_util::RandomWsd(&rng, opt);
  auto map = MostProbableWorld(db);
  ASSERT_TRUE(map.ok());
  auto worlds = EnumerateWorlds(db, 1u << 16);
  ASSERT_TRUE(worlds.ok());
  double best = 0;
  for (const auto& w : *worlds) best = std::max(best, w.prob);
  // The MAP world's probability equals the max choice-combination prob.
  EXPECT_NEAR(map->prob, best, 1e-12);
}

TEST(ForEachWorldTest, StreamsEveryWorldOnce) {
  WsdDb db = MedicalExample();
  size_t count = 0;
  double mass = 0;
  Status st = ForEachWorld(db, 1 << 10, [&](const Catalog& w, double p) {
    (void)w;
    ++count;
    mass += p;
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(count, 4u);
  EXPECT_NEAR(mass, 1.0, 1e-12);
}

TEST(ForEachWorldTest, CallbackErrorStopsEnumeration) {
  WsdDb db = MedicalExample();
  size_t count = 0;
  Status st = ForEachWorld(db, 1 << 10, [&](const Catalog&, double) {
    if (++count == 2) return Status::Internal("stop");
    return Status::OK();
  });
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_EQ(count, 2u);
}

}  // namespace
}  // namespace maybms
