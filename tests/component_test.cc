// Unit tests for the columnar component store: slot-major layout, packed
// row operations (Product, DedupRows, KeepRows), and DropSlots
// marginalization semantics.
#include <gtest/gtest.h>

#include <cmath>

#include "core/component.h"
#include "tests/test_util.h"

namespace maybms {
namespace {

Component TwoSlotComponent() {
  Component c;
  c.AddSlot({1, "x"}, Value::Null());
  c.AddSlot({2, "y"}, Value::Null());
  EXPECT_TRUE(c.AddRow({{Value::Int(1), Value::String("a")}, 0.25}).ok());
  EXPECT_TRUE(c.AddRow({{Value::Int(1), Value::String("b")}, 0.25}).ok());
  EXPECT_TRUE(c.AddRow({{Value::Int(2), Value::String("a")}, 0.5}).ok());
  return c;
}

TEST(ColumnarComponentTest, ColumnsAreSlotMajor) {
  Component c = TwoSlotComponent();
  ASSERT_EQ(c.NumSlots(), 2u);
  ASSERT_EQ(c.NumRows(), 3u);
  const auto& col0 = c.column(0);
  ASSERT_EQ(col0.size(), 3u);
  EXPECT_EQ(col0[0], PackedValue::Int(1));
  EXPECT_EQ(col0[2], PackedValue::Int(2));
  EXPECT_EQ(c.ValueAt(1, 1), Value::String("b"));
  EXPECT_DOUBLE_EQ(c.prob(2), 0.5);
  // Strings are interned: equal contents share a pool id.
  EXPECT_EQ(c.packed(0, 1).string_id(), c.packed(2, 1).string_id());
}

TEST(ColumnarComponentTest, GetRowMaterializesRowMajorView) {
  Component c = TwoSlotComponent();
  ComponentRow row = c.GetRow(1);
  ASSERT_EQ(row.values.size(), 2u);
  EXPECT_EQ(row.values[0], Value::Int(1));
  EXPECT_EQ(row.values[1], Value::String("b"));
  EXPECT_DOUBLE_EQ(row.prob, 0.25);
}

TEST(ColumnarComponentTest, SetPackedAndSetValueWriteThrough) {
  Component c = TwoSlotComponent();
  c.SetPacked(0, 0, PackedValue::Bottom());
  EXPECT_TRUE(c.IsBottomAt(0, 0));
  c.SetValue(0, 1, Value::String("zz"));
  EXPECT_EQ(c.ValueAt(0, 1), Value::String("zz"));
}

TEST(ColumnarComponentTest, AddSlotWithPackedColumn) {
  Component c = TwoSlotComponent();
  std::vector<PackedValue> col = {PackedValue::Bool(true),
                                  PackedValue::Bottom(),
                                  PackedValue::Bool(true)};
  uint32_t s = c.AddSlotWithPacked({7, "e"}, std::move(col));
  EXPECT_EQ(s, 2u);
  EXPECT_TRUE(c.IsBottomAt(1, 2));
  EXPECT_EQ(c.packed(0, 2), PackedExistsToken());
}

TEST(ColumnarComponentTest, DropSlotsMarginalizesAndMergesMass) {
  Component c = TwoSlotComponent();
  c.DropSlots({1});  // drop "y": rows (1,*) merge
  ASSERT_EQ(c.NumSlots(), 1u);
  ASSERT_EQ(c.NumRows(), 2u);
  EXPECT_EQ(c.ValueAt(0, 0), Value::Int(1));  // first-occurrence order
  EXPECT_DOUBLE_EQ(c.prob(0), 0.5);
  EXPECT_EQ(c.ValueAt(1, 0), Value::Int(2));
  EXPECT_DOUBLE_EQ(c.prob(1), 0.5);
  EXPECT_NEAR(c.TotalMass(), 1.0, 1e-12);  // marginalization keeps mass
}

TEST(ColumnarComponentTest, DropSlotsMiddleSlotKeepsAlignment) {
  Component c;
  c.AddSlot({1, "a"}, Value::Null());
  c.AddSlot({2, "b"}, Value::Null());
  c.AddSlot({3, "c"}, Value::Null());
  MAYBMS_ASSERT_OK(
      c.AddRow({{Value::Int(1), Value::Int(10), Value::Int(100)}, 0.5}));
  MAYBMS_ASSERT_OK(
      c.AddRow({{Value::Int(2), Value::Int(20), Value::Int(100)}, 0.5}));
  c.DropSlots({1});
  ASSERT_EQ(c.NumSlots(), 2u);
  EXPECT_EQ(c.slot(0).label, "a");
  EXPECT_EQ(c.slot(1).label, "c");
  ASSERT_EQ(c.NumRows(), 2u);
  EXPECT_EQ(c.ValueAt(0, 0), Value::Int(1));
  EXPECT_EQ(c.ValueAt(0, 1), Value::Int(100));
  EXPECT_EQ(c.ValueAt(1, 0), Value::Int(2));
}

TEST(ColumnarComponentTest, DropAllButOneWithBottomPattern) {
  // Marginalizing away data slots must preserve the ⊥ existence pattern
  // of the surviving slot.
  Component c;
  c.AddSlot({1, "data"}, Value::Null());
  c.AddSlot({2, "e"}, Value::Null());
  MAYBMS_ASSERT_OK(c.AddRow({{Value::Int(1), ExistsToken()}, 0.3}));
  MAYBMS_ASSERT_OK(c.AddRow({{Value::Int(2), ExistsToken()}, 0.3}));
  MAYBMS_ASSERT_OK(c.AddRow({{Value::Int(3), Value::Bottom()}, 0.4}));
  c.DropSlots({0});
  ASSERT_EQ(c.NumRows(), 2u);
  double alive = 0, dead = 0;
  for (size_t r = 0; r < c.NumRows(); ++r) {
    (c.IsBottomAt(r, 0) ? dead : alive) += c.prob(r);
  }
  EXPECT_NEAR(alive, 0.6, 1e-12);
  EXPECT_NEAR(dead, 0.4, 1e-12);
}

TEST(ColumnarComponentTest, DedupMergesMixedNumericRepresentations) {
  // Int(1) and Double(1.0) are the same logical value; dedup must merge
  // them (hash consistency across packed tags).
  Component c;
  c.AddSlot({1, "x"}, Value::Null());
  MAYBMS_ASSERT_OK(c.AddRow({{Value::Int(1)}, 0.5}));
  MAYBMS_ASSERT_OK(c.AddRow({{Value::Double(1.0)}, 0.5}));
  c.DedupRows();
  ASSERT_EQ(c.NumRows(), 1u);
  EXPECT_DOUBLE_EQ(c.prob(0), 1.0);
}

TEST(ColumnarComponentTest, DedupLargeNoAlternativesUntouched) {
  Component c;
  c.AddSlot({1, "x"}, Value::Null());
  for (int i = 0; i < 1000; ++i) {
    MAYBMS_ASSERT_OK(c.AddRow({{Value::Int(i)}, 0.001}));
  }
  c.DedupRows();
  EXPECT_EQ(c.NumRows(), 1000u);
  EXPECT_EQ(c.ValueAt(999, 0), Value::Int(999));
}

TEST(ColumnarComponentTest, KeepRowsFiltersInPlace) {
  Component c = TwoSlotComponent();
  c.KeepRows({0, 2});
  ASSERT_EQ(c.NumRows(), 2u);
  EXPECT_EQ(c.ValueAt(0, 0), Value::Int(1));
  EXPECT_EQ(c.ValueAt(1, 0), Value::Int(2));
  EXPECT_EQ(c.ValueAt(1, 1), Value::String("a"));
  EXPECT_DOUBLE_EQ(c.prob(0), 0.25);
  EXPECT_DOUBLE_EQ(c.prob(1), 0.5);
}

TEST(ColumnarComponentTest, DropZeroRowsUsesKeepRows) {
  Component c;
  c.AddSlot({1, "x"}, Value::Null());
  MAYBMS_ASSERT_OK(c.AddRow({{Value::Int(1)}, 0.0}));
  MAYBMS_ASSERT_OK(c.AddRow({{Value::Int(2)}, 1.0}));
  MAYBMS_ASSERT_OK(c.AddRow({{Value::Int(3)}, 0.0}));
  c.DropZeroRows();
  ASSERT_EQ(c.NumRows(), 1u);
  EXPECT_EQ(c.ValueAt(0, 0), Value::Int(2));
}

TEST(ColumnarComponentTest, ProductPairsRowsColumnMajor) {
  Component a, b;
  a.AddSlot({1, "x"}, Value::Null());
  b.AddSlot({2, "y"}, Value::Null());
  MAYBMS_ASSERT_OK(a.AddRow({{Value::Int(1)}, 0.4}));
  MAYBMS_ASSERT_OK(a.AddRow({{Value::Int(2)}, 0.6}));
  MAYBMS_ASSERT_OK(b.AddRow({{Value::String("u")}, 0.5}));
  MAYBMS_ASSERT_OK(b.AddRow({{Value::String("v")}, 0.5}));
  auto p = Component::Product(a, b, 100);
  ASSERT_TRUE(p.ok());
  ASSERT_EQ(p->NumRows(), 4u);
  ASSERT_EQ(p->NumSlots(), 2u);
  // Left-major pairing: (1,u), (1,v), (2,u), (2,v).
  EXPECT_EQ(p->ValueAt(0, 0), Value::Int(1));
  EXPECT_EQ(p->ValueAt(0, 1), Value::String("u"));
  EXPECT_EQ(p->ValueAt(1, 1), Value::String("v"));
  EXPECT_EQ(p->ValueAt(2, 0), Value::Int(2));
  EXPECT_DOUBLE_EQ(p->prob(0), 0.2);
  EXPECT_DOUBLE_EQ(p->prob(3), 0.3);
  EXPECT_NEAR(p->TotalMass(), 1.0, 1e-12);
}

TEST(ColumnarComponentTest, ProductThenMarginalizeRecoversFactor) {
  Component a, b;
  a.AddSlot({1, "x"}, Value::Null());
  b.AddSlot({2, "y"}, Value::Null());
  MAYBMS_ASSERT_OK(a.AddRow({{Value::Int(1)}, 0.4}));
  MAYBMS_ASSERT_OK(a.AddRow({{Value::Int(2)}, 0.6}));
  MAYBMS_ASSERT_OK(b.AddRow({{Value::Int(7)}, 0.5}));
  MAYBMS_ASSERT_OK(b.AddRow({{Value::Int(8)}, 0.5}));
  auto p = Component::Product(a, b, 100);
  ASSERT_TRUE(p.ok());
  Component m = *p;
  m.DropSlots({1});
  ASSERT_EQ(m.NumRows(), 2u);
  EXPECT_NEAR(m.prob(0), 0.4, 1e-12);
  EXPECT_NEAR(m.prob(1), 0.6, 1e-12);
}

TEST(ColumnarComponentTest, SerializedSizeMatchesFlatModel) {
  Component c = TwoSlotComponent();
  // 3 rows x (4 header + 8 prob) + 3 ints (9) + 3 one-char strings (1+4+1).
  EXPECT_EQ(c.SerializedSize(), 3u * 12 + 3u * 9 + 3u * 6);
  EXPECT_GT(c.InternedSize(), 0u);
}

TEST(ColumnarComponentTest, InternedSizeCountsColumnsNotStrings) {
  Component c;
  c.AddSlot({1, "s"}, Value::Null());
  std::string big(1000, 'q');
  MAYBMS_ASSERT_OK(c.AddRow({{Value::String(big)}, 0.5}));
  MAYBMS_ASSERT_OK(c.AddRow({{Value::String(big)}, 0.5}));
  // Flat model pays for the string twice; the interned store holds two
  // 16-byte ids (string bytes live once in the pool, attributed at the
  // database level).
  EXPECT_GT(c.SerializedSize(), 2000u);
  EXPECT_LT(c.InternedSize(), 200u);
  std::unordered_set<std::string_view> strings;
  c.CollectStrings(&strings);
  EXPECT_EQ(strings.size(), 1u);
}

}  // namespace
}  // namespace maybms
