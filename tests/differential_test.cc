// Differential (oracle) tests: for random world-set databases and a
// battery of query plans, lifted evaluation over the WSD must produce
// exactly the same distribution over answer relations as evaluating the
// plan conventionally in every enumerated world.
//
// This is the central correctness argument for the lifted algebra: the
// diagram  (WSD --lifted op--> WSD') == (worlds --per-world op--> worlds')
// commutes, probabilities included.
#include <gtest/gtest.h>

#include <map>

#include "core/lifted_executor.h"
#include "ra/executor.h"
#include "tests/test_util.h"
#include "worlds/enumerate.h"

namespace maybms {
namespace {

using testing_util::CanonicalBag;
using testing_util::ExpectDistEq;
using testing_util::RandomWsd;
using testing_util::RandomWsdOptions;

ExprPtr Col(const std::string& n) { return Expr::Column(n); }
ExprPtr Lit(Value v) { return Expr::Const(std::move(v)); }

// Evaluates `plan` in every world of `db` conventionally and returns the
// distribution over canonical answer bags.
std::map<std::string, double> OracleDistribution(const WsdDb& db,
                                                 const PlanPtr& plan) {
  auto worlds = EnumerateWorlds(db, 1u << 18);
  EXPECT_TRUE(worlds.ok()) << worlds.status().ToString();
  std::map<std::string, double> dist;
  for (const auto& w : *worlds) {
    auto answer = Execute(plan, w.catalog);
    EXPECT_TRUE(answer.ok()) << answer.status().ToString();
    dist[CanonicalBag(*answer)] += w.prob;
  }
  return dist;
}

// Evaluates `plan` lifted and returns the distribution over canonical
// answer bags of the result WSD.
std::map<std::string, double> LiftedDistribution(const WsdDb& db,
                                                 const PlanPtr& plan) {
  auto result = ExecuteLifted(plan, db);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (!result.ok()) return {};
  Status inv = result->CheckInvariants();
  EXPECT_TRUE(inv.ok()) << inv.ToString();
  auto worlds = EnumerateWorlds(*result, 1u << 18);
  EXPECT_TRUE(worlds.ok()) << worlds.status().ToString();
  std::map<std::string, double> dist;
  for (const auto& w : *worlds) {
    auto rel = w.catalog.Get("result");
    EXPECT_TRUE(rel.ok());
    dist[CanonicalBag(**rel)] += w.prob;
  }
  return dist;
}

void CheckPlan(const WsdDb& db, const PlanPtr& plan, double eps = 1e-9) {
  SCOPED_TRACE(plan->ToString());
  auto expected = OracleDistribution(db, plan);
  auto actual = LiftedDistribution(db, plan);
  ExpectDistEq(expected, actual, eps);
}

// ---------------------------------------------------------------------------
// Fixed-structure cases first: each exercises one operator on a WSD with
// known correlation structure.
// ---------------------------------------------------------------------------

WsdDb TwoTupleDb() {
  WsdDb db;
  Schema schema({{"a", ValueType::kInt}, {"b", ValueType::kString}});
  EXPECT_TRUE(db.CreateRelation("R", schema).ok());
  auto t1 = InsertTuple(
      &db, "R",
      {CellSpec::OrSet({{Value::Int(1), 0.5}, {Value::Int(2), 0.5}}),
       CellSpec::Certain(Value::String("x"))});
  EXPECT_TRUE(t1.ok());
  auto t2 = InsertTuple(
      &db, "R",
      {CellSpec::Certain(Value::Int(1)),
       CellSpec::OrSet({{Value::String("x"), 0.3},
                        {Value::String("y"), 0.7}})});
  EXPECT_TRUE(t2.ok());
  return db;
}

TEST(DifferentialFixed, SelectOnUncertainColumn) {
  WsdDb db = TwoTupleDb();
  CheckPlan(db, Plan::Select(Plan::Scan("R"),
                             Expr::Compare(CompareOp::kEq, Col("a"),
                                           Lit(Value::Int(1)))));
}

TEST(DifferentialFixed, SelectConjunctionAcrossComponents) {
  WsdDb db = TwoTupleDb();
  auto pred = Expr::And(
      Expr::Compare(CompareOp::kEq, Col("a"), Lit(Value::Int(1))),
      Expr::Compare(CompareOp::kEq, Col("b"), Lit(Value::String("x"))));
  CheckPlan(db, Plan::Select(Plan::Scan("R"), pred));
}

TEST(DifferentialFixed, ProjectDropsUncertainColumn) {
  WsdDb db = TwoTupleDb();
  CheckPlan(db, Plan::Project(Plan::Scan("R"), {{Col("b"), "b"}}));
}

TEST(DifferentialFixed, ProjectComputedExpression) {
  WsdDb db = TwoTupleDb();
  CheckPlan(db, Plan::Project(
                    Plan::Scan("R"),
                    {{Expr::Arith(ArithOp::kMul, Col("a"), Lit(Value::Int(10))),
                      "a10"}}));
}

TEST(DifferentialFixed, SelfProductSharesComponents) {
  WsdDb db = TwoTupleDb();
  CheckPlan(db, Plan::Product(Plan::Scan("R"), Plan::Scan("R")));
}

TEST(DifferentialFixed, SelectAfterSelfProduct) {
  WsdDb db = TwoTupleDb();
  auto pred = Expr::Compare(CompareOp::kLt, Expr::ColumnIdx(0, "a"),
                            Expr::ColumnIdx(2, "R.a"));
  CheckPlan(db, Plan::Select(Plan::Product(Plan::Scan("R"), Plan::Scan("R")),
                             pred));
}

TEST(DifferentialFixed, UnionWithSelf) {
  WsdDb db = TwoTupleDb();
  CheckPlan(db, Plan::Union(Plan::Scan("R"), Plan::Scan("R")));
}

TEST(DifferentialFixed, DistinctCollapsesPossiblyEqualTuples) {
  WsdDb db = TwoTupleDb();
  CheckPlan(db, Plan::Distinct(Plan::Scan("R")));
}

TEST(DifferentialFixed, DifferenceWithSelectedSelf) {
  WsdDb db = TwoTupleDb();
  auto right = Plan::Select(Plan::Scan("R"),
                            Expr::Compare(CompareOp::kEq, Col("b"),
                                          Lit(Value::String("y"))));
  CheckPlan(db, Plan::Difference(Plan::Scan("R"), right));
}

TEST(DifferentialFixed, JoinOnUncertainKeys) {
  WsdDb db = TwoTupleDb();
  auto pred = Expr::Compare(CompareOp::kEq, Expr::ColumnIdx(0, "a"),
                            Expr::ColumnIdx(2, "R.a"));
  CheckPlan(db, Plan::Join(Plan::Scan("R"), Plan::Scan("R"), pred));
}

TEST(DifferentialFixed, MedicalPipeline) {
  WsdDb db = testing_util::MedicalExample();
  auto plan = Plan::Project(
      Plan::Select(Plan::Scan("R"),
                   Expr::Compare(CompareOp::kEq, Col("Diagnosis"),
                                 Lit(Value::String("pregnancy")))),
      {{Col("Test"), "Test"}});
  CheckPlan(db, plan);
}

// ---------------------------------------------------------------------------
// Randomized sweeps: many seeds × a battery of plan shapes.
// ---------------------------------------------------------------------------

class DifferentialRandom : public ::testing::TestWithParam<int> {};

PlanPtr PlanForShape(int shape, const Schema& schema) {
  const std::string a0 = schema.attr(0).name;
  const std::string a1 = schema.attr(schema.size() > 1 ? 1 : 0).name;
  Value lit0 = schema.attr(0).type == ValueType::kString
                   ? Value::String("a")
                   : Value::Int(1);
  Value lit1 = schema.attr(schema.size() > 1 ? 1 : 0).type ==
                       ValueType::kString
                   ? Value::String("b")
                   : Value::Int(2);
  switch (shape % 8) {
    case 0:
      return Plan::Select(Plan::Scan("R0"),
                          Expr::Compare(CompareOp::kEq, Col(a0),
                                        Lit(lit0)));
    case 1:
      return Plan::Select(
          Plan::Scan("R0"),
          Expr::Or(Expr::Compare(CompareOp::kEq, Col(a0), Lit(lit0)),
                   Expr::Compare(CompareOp::kNe, Col(a1), Lit(lit1))));
    case 2:
      return Plan::Project(Plan::Scan("R0"), {{Col(a1), "v"}});
    case 3:
      return Plan::Distinct(Plan::Project(Plan::Scan("R0"), {{Col(a0), "v"}}));
    case 4:
      return Plan::Union(
          Plan::Select(Plan::Scan("R0"),
                       Expr::Compare(CompareOp::kEq, Col(a0), Lit(lit0))),
          Plan::Scan("R0"));
    case 5:
      return Plan::Difference(
          Plan::Scan("R0"),
          Plan::Select(Plan::Scan("R0"),
                       Expr::Compare(CompareOp::kEq, Col(a1), Lit(lit1))));
    case 6: {
      auto pred = Expr::Compare(CompareOp::kEq, Expr::ColumnIdx(0, a0),
                                Expr::ColumnIdx(schema.size(), "r." + a0));
      return Plan::Join(Plan::Scan("R0"), Plan::Scan("R0"), pred);
    }
    default:
      return Plan::Project(
          Plan::Select(Plan::Scan("R0"),
                       Expr::Compare(CompareOp::kNe, Col(a0), Lit(lit0))),
          {{Col(a0), "k"}, {Col(a1), "v"}});
  }
}

TEST_P(DifferentialRandom, LiftedMatchesOracle) {
  int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 7919 + 13);
  RandomWsdOptions opt;
  opt.max_tuples = 4;
  opt.p_uncertain_cell = 0.4;
  WsdDb db = RandomWsd(&rng, opt);
  Status inv = db.CheckInvariants();
  ASSERT_TRUE(inv.ok()) << inv.ToString();
  const Schema& schema = db.GetRelation("R0").value()->schema();
  for (int shape = 0; shape < 8; ++shape) {
    CheckPlan(db, PlanForShape(shape, schema));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialRandom, ::testing::Range(0, 30));

// Joint components (correlated fields) get their own sweep.
class DifferentialJoint : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialJoint, LiftedMatchesOracle) {
  int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 104729 + 7);
  RandomWsdOptions opt;
  opt.max_tuples = 3;
  opt.p_uncertain_cell = 0.25;
  opt.p_joint = 0.8;
  WsdDb db = RandomWsd(&rng, opt);
  const Schema& schema = db.GetRelation("R0").value()->schema();
  for (int shape = 0; shape < 8; ++shape) {
    CheckPlan(db, PlanForShape(shape, schema));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialJoint, ::testing::Range(0, 20));

// Multi-relation databases: joins, unions and differences across two
// independently generated relations sharing the same world-set.
class DifferentialMultiRelation : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialMultiRelation, LiftedMatchesOracle) {
  int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 15485863 + 101);
  RandomWsdOptions opt;
  opt.num_relations = 2;
  opt.max_tuples = 3;
  opt.min_cols = 2;
  opt.max_cols = 2;
  opt.p_uncertain_cell = 0.35;
  opt.allow_strings = false;  // comparable join keys
  WsdDb db = RandomWsd(&rng, opt);
  const Schema& s0 = db.GetRelation("R0").value()->schema();
  const std::string a0 = s0.attr(0).name;

  std::vector<PlanPtr> plans;
  // Cross-relation equi-join.
  plans.push_back(Plan::Join(
      Plan::Scan("R0"), Plan::Scan("R1"),
      Expr::Compare(CompareOp::kEq, Expr::ColumnIdx(0, "l"),
                    Expr::ColumnIdx(s0.size(), "r"))));
  // Product restricted by inequality.
  plans.push_back(Plan::Select(
      Plan::Product(Plan::Scan("R0"), Plan::Scan("R1")),
      Expr::Compare(CompareOp::kLt, Expr::ColumnIdx(0, "l"),
                    Expr::ColumnIdx(s0.size() + 1, "r"))));
  // Union and difference across relations (same arity/types by
  // construction).
  plans.push_back(Plan::Union(Plan::Scan("R0"), Plan::Scan("R1")));
  plans.push_back(Plan::Difference(Plan::Scan("R0"), Plan::Scan("R1")));
  // Join, then project, then select — a deeper pipeline.
  plans.push_back(Plan::Select(
      Plan::Project(
          Plan::Join(Plan::Scan("R0"), Plan::Scan("R1"),
                     Expr::Compare(CompareOp::kEq, Expr::ColumnIdx(0, "l"),
                                   Expr::ColumnIdx(s0.size(), "r"))),
          {{Expr::ColumnIdx(1, "v"), "v"}}),
      Expr::Compare(CompareOp::kGe, Col("v"), Lit(Value::Int(1)))));

  for (const auto& plan : plans) {
    CheckPlan(db, plan);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialMultiRelation,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace maybms
