// Tests for component factorization: independent slot groups split into
// separate components, dependent ones stay together, and the represented
// distribution never changes.
#include <gtest/gtest.h>

#include "core/builder.h"
#include "core/factorize.h"
#include "core/normalize.h"
#include "core/wsd.h"
#include "tests/test_util.h"
#include "worlds/enumerate.h"

namespace maybms {
namespace {

using testing_util::ExpectDistEq;
using testing_util::RandomWsd;
using testing_util::RandomWsdOptions;
using testing_util::RelationDistribution;

// Builds a database with one merged component covering fields of two
// tuples; `independent` controls whether the joint distribution is a
// product or genuinely correlated.
WsdDb MergedDb(bool independent) {
  WsdDb db;
  Status st = db.CreateRelation("r", Schema({{"x", ValueType::kInt},
                                             {"y", ValueType::kInt}}));
  EXPECT_TRUE(st.ok());
  auto t = InsertTuple(&db, "r", {CellSpec::Pending(), CellSpec::Pending()});
  EXPECT_TRUE(t.ok());
  auto u = InsertTuple(&db, "r", {CellSpec::Pending(),
                                  CellSpec::Certain(Value::Int(0))});
  EXPECT_TRUE(u.ok());
  std::vector<std::pair<std::vector<Value>, double>> rows;
  if (independent) {
    // (x,y of t) ⊥ (x of u): full product 2×2 with product probabilities.
    for (int a = 0; a < 2; ++a) {
      for (int b = 0; b < 2; ++b) {
        double pa = a == 0 ? 0.3 : 0.7;
        double pb = b == 0 ? 0.4 : 0.6;
        rows.push_back(
            {{Value::Int(a), Value::Int(a + 10), Value::Int(b)}, pa * pb});
      }
    }
  } else {
    // Correlated: only matching pairs.
    rows.push_back({{Value::Int(0), Value::Int(10), Value::Int(0)}, 0.5});
    rows.push_back({{Value::Int(1), Value::Int(11), Value::Int(1)}, 0.5});
  }
  auto cid = AddJointComponent(
      &db, {{*t, "x"}, {*t, "y"}, {*u, "x"}}, rows);
  EXPECT_TRUE(cid.ok()) << cid.status().ToString();
  return db;
}

TEST(FactorizeTest, SplitsIndependentGroups) {
  WsdDb db = MergedDb(/*independent=*/true);
  ASSERT_EQ(db.NumLiveComponents(), 1u);
  auto before = EnumerateWorlds(db, 1u << 12);
  ASSERT_TRUE(before.ok());
  auto before_dist = RelationDistribution(*before, "r");

  auto stats = Factorize(&db);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->components_split, 1u);
  EXPECT_EQ(stats->factors_produced, 2u);
  EXPECT_EQ(db.NumLiveComponents(), 2u);
  // 4 rows became 2 + 2.
  EXPECT_EQ(stats->rows_before, 4u);
  EXPECT_EQ(stats->rows_after, 4u);
  MAYBMS_ASSERT_OK(db.CheckInvariants());

  auto after = EnumerateWorlds(db, 1u << 12);
  ASSERT_TRUE(after.ok());
  ExpectDistEq(before_dist, RelationDistribution(*after, "r"));
}

TEST(FactorizeTest, KeepsCorrelatedGroupsTogether) {
  WsdDb db = MergedDb(/*independent=*/false);
  auto stats = Factorize(&db);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->components_split, 0u);
  EXPECT_EQ(db.NumLiveComponents(), 1u);
}

TEST(FactorizeTest, SameOwnerIndependentSlotsMaySplit) {
  // A tuple's two fields with a genuinely independent joint distribution
  // split into two components; the verification covers the ⊥ pattern, so
  // same-owner slots need no special casing.
  WsdDb db;
  MAYBMS_ASSERT_OK(db.CreateRelation("r", Schema({{"x", ValueType::kInt},
                                                  {"y", ValueType::kInt}})));
  auto t = InsertTuple(&db, "r", {CellSpec::Pending(), CellSpec::Pending()});
  ASSERT_TRUE(t.ok());
  std::vector<std::pair<std::vector<Value>, double>> rows;
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      rows.push_back({{Value::Int(a), Value::Int(b)}, 0.25});
    }
  }
  ASSERT_TRUE(AddJointComponent(&db, {{*t, "x"}, {*t, "y"}}, rows).ok());
  auto before = EnumerateWorlds(db, 1 << 12);
  ASSERT_TRUE(before.ok());
  auto stats = Factorize(&db);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->components_split, 1u);
  EXPECT_EQ(db.NumLiveComponents(), 2u);
  MAYBMS_ASSERT_OK(db.CheckInvariants());
  auto after = EnumerateWorlds(db, 1 << 12);
  ASSERT_TRUE(after.ok());
  ExpectDistEq(RelationDistribution(*before, "r"),
               RelationDistribution(*after, "r"));
}

TEST(FactorizeTest, XorPatternIsNotSplit) {
  // Three pairwise-independent bits with XOR dependency: c = a ^ b.
  // Pairwise tests pass, but the full verification must reject the split.
  WsdDb db;
  MAYBMS_ASSERT_OK(db.CreateRelation("r", Schema({{"a", ValueType::kInt},
                                                  {"b", ValueType::kInt},
                                                  {"c", ValueType::kInt}})));
  auto t1 = InsertTuple(&db, "r", {CellSpec::Pending(),
                                   CellSpec::Certain(Value::Int(0)),
                                   CellSpec::Certain(Value::Int(0))});
  auto t2 = InsertTuple(&db, "r", {CellSpec::Certain(Value::Int(0)),
                                   CellSpec::Pending(),
                                   CellSpec::Certain(Value::Int(0))});
  auto t3 = InsertTuple(&db, "r", {CellSpec::Certain(Value::Int(0)),
                                   CellSpec::Certain(Value::Int(0)),
                                   CellSpec::Pending()});
  ASSERT_TRUE(t1.ok() && t2.ok() && t3.ok());
  std::vector<std::pair<std::vector<Value>, double>> rows;
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      rows.push_back({{Value::Int(a), Value::Int(b), Value::Int(a ^ b)},
                      0.25});
    }
  }
  ASSERT_TRUE(
      AddJointComponent(&db, {{*t1, "a"}, {*t2, "b"}, {*t3, "c"}}, rows)
          .ok());
  auto before = EnumerateWorlds(db, 1 << 12);
  ASSERT_TRUE(before.ok());
  auto stats = Factorize(&db);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->components_split, 0u);
  auto after = EnumerateWorlds(db, 1 << 12);
  ASSERT_TRUE(after.ok());
  ExpectDistEq(RelationDistribution(*before, "r"),
               RelationDistribution(*after, "r"));
}

TEST(FactorizeTest, UndoesMergeRoundTrip) {
  // Merge the medical example's two independent components, factorize,
  // and expect two components again (the same distribution).
  WsdDb db = testing_util::MedicalExample();
  auto before = EnumerateWorlds(db, 1 << 12);
  ASSERT_TRUE(before.ok());
  auto merged = db.MergeComponents(db.LiveComponents(), 1u << 12);
  ASSERT_TRUE(merged.ok());
  ASSERT_EQ(db.NumLiveComponents(), 1u);
  auto stats = Factorize(&db);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->components_split, 1u);
  EXPECT_EQ(db.NumLiveComponents(), 2u);
  MAYBMS_ASSERT_OK(db.CheckInvariants());
  auto after = EnumerateWorlds(db, 1 << 12);
  ASSERT_TRUE(after.ok());
  ExpectDistEq(RelationDistribution(*before, "R"),
               RelationDistribution(*after, "R"));
}

TEST(FactorizeTest, RespectsMaxSlots) {
  WsdDb db = MergedDb(/*independent=*/true);
  FactorizeOptions opt;
  opt.max_slots = 2;  // our component has 3 slots -> skipped
  auto stats = Factorize(&db, opt);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->components_split, 0u);
}

class FactorizePreservesDistribution : public ::testing::TestWithParam<int> {};

TEST_P(FactorizePreservesDistribution, AfterRandomMerges) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 2654435761u + 3);
  RandomWsdOptions opt;
  opt.p_uncertain_cell = 0.5;
  opt.p_joint = 0.4;
  WsdDb db = RandomWsd(&rng, opt);
  // Merge a random subset of components to create factorization work.
  auto live = db.LiveComponents();
  if (live.size() >= 2) {
    std::vector<ComponentId> to_merge;
    for (ComponentId id : live) {
      if (rng.NextBernoulli(0.7)) to_merge.push_back(id);
    }
    if (to_merge.size() >= 2) {
      ASSERT_TRUE(db.MergeComponents(to_merge, 1u << 16).ok());
    }
  }
  auto before = EnumerateWorlds(db, 1u << 16);
  ASSERT_TRUE(before.ok());
  auto before_dist = RelationDistribution(*before, "R0");
  auto stats = Factorize(&db);
  ASSERT_TRUE(stats.ok());
  MAYBMS_ASSERT_OK(db.CheckInvariants());
  auto after = EnumerateWorlds(db, 1u << 16);
  ASSERT_TRUE(after.ok());
  ExpectDistEq(before_dist, RelationDistribution(*after, "R0"));
  // Factorization after a merge of independent or-set components must
  // recover a decomposition at least as fine as before the merge.
  auto inv = Normalize(&db);
  ASSERT_TRUE(inv.ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FactorizePreservesDistribution,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace maybms
