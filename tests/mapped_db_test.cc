// Tests for out-of-core mapped world-set databases: MappedWsdDb opens a
// v3 snapshot as a memory map, prunes relation shards against plan
// predicates via the SDIR directory, and materializes only the touched
// blocks under an LRU resident-byte budget. The core contract checked
// here is differential: a mapped session must answer every query exactly
// like the eagerly loaded database, whatever the cache budget.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>

#include "core/builder.h"
#include "core/mapped_db.h"
#include "core/lifted_executor.h"
#include "core/serialize.h"
#include "sql/session.h"
#include "tests/test_util.h"
#include "worlds/enumerate.h"

namespace maybms {
namespace {

using sql::Session;
using sql::StatementResult;

ExprPtr Col(const std::string& n) { return Expr::Column(n); }
ExprPtr IntLit(int64_t v) { return Expr::Const(Value::Int(v)); }
ExprPtr Cmp(CompareOp op, ExprPtr l, ExprPtr r) {
  return Expr::Compare(op, std::move(l), std::move(r));
}

// 64 people rows in id order (8 shards of 8) with or-set cells sprinkled
// in, plus a small certain cities relation for joins.
WsdDb BuildShardedDb() {
  WsdDb db;
  db.mutable_options().rows_per_shard = 8;
  EXPECT_TRUE(db.CreateRelation("people", Schema({{"id", ValueType::kInt},
                                                  {"city", ValueType::kString},
                                                  {"bonus", ValueType::kInt}}))
                  .ok());
  const char* cities[] = {"paris", "rome", "oslo", "lima"};
  for (int i = 0; i < 64; ++i) {
    CellSpec city =
        i % 7 == 0
            ? CellSpec::UniformOrSet(
                  {Value::String("paris"), Value::String("rome")})
            : CellSpec::Certain(Value::String(cities[i % 4]));
    CellSpec bonus =
        i % 5 == 0
            ? CellSpec::UniformOrSet({Value::Int(i), Value::Int(i + 100)})
            : CellSpec::Certain(Value::Int(i % 10));
    EXPECT_TRUE(InsertTuple(&db, "people",
                            {CellSpec::Certain(Value::Int(i)),
                             std::move(city), std::move(bonus)})
                    .ok());
  }
  EXPECT_TRUE(db.CreateRelation("cities", Schema({{"name", ValueType::kString},
                                                  {"pop", ValueType::kInt}}))
                  .ok());
  for (const char* c : cities) {
    EXPECT_TRUE(InsertTuple(&db, "cities",
                            {CellSpec::Certain(Value::String(c)),
                             CellSpec::Certain(Value::Int(100))})
                    .ok());
  }
  return db;
}

std::string SaveV3(const WsdDb& db, const std::string& name) {
  std::string path = ::testing::TempDir() + "/" + name;
  Status st = SaveWsdDb(db, path, SnapshotFormat::kBinary);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return path;
}

// The query corpus every differential test runs: world-set answers,
// confidence aggregates, possible/certain, and a join.
const char* kQueryCorpus[] = {
    "SELECT * FROM people WHERE id >= 56",
    "SELECT bonus FROM people WHERE id >= 40 AND id < 48",
    "SELECT city FROM people WHERE id = 14",
    "POSSIBLE SELECT city FROM people WHERE id < 8",
    "CERTAIN SELECT city FROM people WHERE id < 8",
    "SELECT city, PROB() FROM people WHERE id = 21",
    "SELECT ECOUNT() FROM people WHERE bonus > 50",
    "SELECT ESUM(bonus) FROM people WHERE id < 20",
    "SELECT id FROM people, cities WHERE city = name AND id < 16",
    "SELECT * FROM people WHERE id < 12",
    // Full scans (table-valued so the comparison stays tractable).
    "SELECT ECOUNT() FROM people",
    "POSSIBLE SELECT bonus FROM people",
};

// Asserts two statement results are the same answer: tables compare by
// canonical sorted bag, world-sets by full answer distribution.
void ExpectSameAnswer(const StatementResult& eager,
                      const StatementResult& mapped, const std::string& q) {
  ASSERT_EQ(static_cast<int>(eager.kind), static_cast<int>(mapped.kind)) << q;
  if (eager.kind == StatementResult::Kind::kTable) {
    EXPECT_EQ(testing_util::CanonicalBag(eager.table),
              testing_util::CanonicalBag(mapped.table))
        << q;
    return;
  }
  ASSERT_EQ(eager.kind, StatementResult::Kind::kWorldSet) << q;
  auto we = EnumerateWorlds(eager.world_set, 1u << 14);
  auto wm = EnumerateWorlds(mapped.world_set, 1u << 14);
  ASSERT_TRUE(we.ok() && wm.ok()) << q;
  testing_util::ExpectDistEq(testing_util::RelationDistribution(*we, "result"),
                             testing_util::RelationDistribution(*wm, "result"));
}

TEST(MappedDbTest, OpenRejectsOlderFormats) {
  WsdDb db = BuildShardedDb();
  std::string v2 = ::testing::TempDir() + "/mapped_reject_v2.wsd";
  MAYBMS_ASSERT_OK(SaveWsdDb(db, v2, SnapshotFormat::kBinaryV2));
  auto r = MappedWsdDb::Open(v2);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);

  EXPECT_EQ(MappedWsdDb::Open("/nonexistent/x.wsd").status().code(),
            StatusCode::kNotFound);
}

TEST(MappedDbTest, MaterializeAllEqualsEagerLoad) {
  WsdDb db = BuildShardedDb();
  std::string path = SaveV3(db, "mapped_all.wsd");
  auto mapped = MappedWsdDb::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  auto full = mapped->MaterializeAll();
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  testing_util::ExpectDbsExactlyEqual(db, *full);
  // Cache-bypassing: nothing stays resident.
  EXPECT_EQ(mapped->resident_bytes(), 0u);
}

TEST(MappedDbTest, SkeletonHasSchemasButNoData) {
  WsdDb db = BuildShardedDb();
  std::string path = SaveV3(db, "mapped_skel.wsd");
  auto mapped = MappedWsdDb::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  const WsdDb& skel = mapped->skeleton();
  auto rel = skel.GetRelation("people");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ((*rel)->schema().size(), 3u);
  EXPECT_EQ((*rel)->tuples().size(), 0u);
  EXPECT_EQ(skel.NumLiveComponents(), 0u);
  EXPECT_EQ(mapped->partitions().size(), 2u);  // people + cities
}

TEST(MappedDbTest, SelectivePlanPrunesShards) {
  WsdDb db = BuildShardedDb();
  std::string path = SaveV3(db, "mapped_prune.wsd");
  auto mapped = MappedWsdDb::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

  // id >= 56 touches only the last of the 8 people shards (and no
  // cities shard — the plan never scans cities).
  auto plan = Plan::Select(Plan::Scan("people"),
                           Cmp(CompareOp::kGe, Col("id"), IntLit(56)));
  auto scratch = mapped->MaterializeForPlan(*plan);
  ASSERT_TRUE(scratch.ok()) << scratch.status().ToString();
  const MaterializeStats& stats = mapped->last_stats();
  EXPECT_EQ(stats.shards_total, 9u);  // 8 people + 1 cities
  EXPECT_EQ(stats.shards_kept, 1u);
  EXPECT_GT(stats.bytes_decoded, 0u);
  EXPECT_LT(stats.bytes_decoded, mapped->snapshot_bytes());

  // The scratch database answers the plan exactly like the full one.
  auto full_ans = ExecuteLifted(plan, db);
  auto scratch_ans = ExecuteLifted(plan, *scratch);
  ASSERT_TRUE(full_ans.ok() && scratch_ans.ok());
  auto we = EnumerateWorlds(*full_ans, 1u << 14);
  auto wm = EnumerateWorlds(*scratch_ans, 1u << 14);
  ASSERT_TRUE(we.ok() && wm.ok());
  testing_util::ExpectDistEq(testing_util::RelationDistribution(*we, "result"),
                             testing_util::RelationDistribution(*wm, "result"));

  // A bare scan keeps all shards of the scanned relation.
  auto scan = Plan::Scan("people");
  ASSERT_TRUE(mapped->MaterializeForPlan(*scan).ok());
  EXPECT_EQ(mapped->last_stats().shards_kept, 8u);
}

TEST(MappedDbTest, ResidentCapBoundsCacheWithoutChangingAnswers) {
  WsdDb db = BuildShardedDb();
  std::string path = SaveV3(db, "mapped_cap.wsd");
  MappedDbOptions opts;
  opts.max_resident_bytes = 1024;  // far below the snapshot size
  auto mapped = MappedWsdDb::Open(path, opts);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_GT(mapped->snapshot_bytes(), 4 * opts.max_resident_bytes)
      << "test DB must be much larger than the cache cap";

  std::vector<PlanPtr> plans;
  // Selective plans over disjoint shard ranges, so cycling through them
  // keeps evicting and re-decoding blocks (answers stay enumerable).
  plans.push_back(Plan::Select(Plan::Scan("people"),
                               Cmp(CompareOp::kGe, Col("id"), IntLit(56))));
  plans.push_back(Plan::Select(Plan::Scan("people"),
                               Cmp(CompareOp::kLt, Col("id"), IntLit(8))));
  plans.push_back(Plan::Select(
      Plan::Select(Plan::Scan("people"),
                   Cmp(CompareOp::kGe, Col("id"), IntLit(24))),
      Cmp(CompareOp::kLt, Col("id"), IntLit(40))));
  plans.push_back(Plan::Scan("cities"));
  for (int round = 0; round < 3; ++round) {
    for (const auto& plan : plans) {
      auto scratch = mapped->MaterializeForPlan(*plan);
      ASSERT_TRUE(scratch.ok()) << scratch.status().ToString();
      EXPECT_LE(mapped->resident_bytes(), opts.max_resident_bytes);
      auto full_ans = ExecuteLifted(plan, db);
      auto scratch_ans = ExecuteLifted(plan, *scratch);
      ASSERT_TRUE(full_ans.ok() && scratch_ans.ok());
      auto we = EnumerateWorlds(*full_ans, 1u << 14);
      auto wm = EnumerateWorlds(*scratch_ans, 1u << 14);
      ASSERT_TRUE(we.ok() && wm.ok());
      testing_util::ExpectDistEq(
          testing_util::RelationDistribution(*we, "result"),
          testing_util::RelationDistribution(*wm, "result"));
    }
  }
  EXPECT_GE(mapped->peak_resident_bytes(), mapped->resident_bytes());
}

TEST(MappedDbTest, EnvironmentKnobSetsTheCap) {
  WsdDb db = BuildShardedDb();
  std::string path = SaveV3(db, "mapped_env.wsd");
  // Restore whatever the harness set afterwards (the mapped_small_ram
  // ctest entry runs this whole binary with the knob engaged).
  const char* prior = getenv("MAYBMS_MAX_RESIDENT_BYTES");
  std::string prior_value = prior ? prior : "";

  ASSERT_EQ(setenv("MAYBMS_MAX_RESIDENT_BYTES", "12345", 1), 0);
  auto mapped = MappedWsdDb::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(mapped->max_resident_bytes(), 12345u);
  // An explicit option wins over the environment.
  MappedDbOptions opts;
  opts.max_resident_bytes = 777;
  auto mapped2 = MappedWsdDb::Open(path, opts);
  ASSERT_TRUE(mapped2.ok());
  EXPECT_EQ(mapped2->max_resident_bytes(), 777u);

  if (prior) {
    ASSERT_EQ(setenv("MAYBMS_MAX_RESIDENT_BYTES", prior_value.c_str(), 1), 0);
  } else {
    unsetenv("MAYBMS_MAX_RESIDENT_BYTES");
  }
}

// The headline differential: a mapped SQL session answers the whole
// corpus exactly like an eager session over the same snapshot. The
// `mapped_small_ram` ctest entry reruns this binary with
// MAYBMS_MAX_RESIDENT_BYTES far below the snapshot size, so the same
// corpus is also exercised with constant eviction.
TEST(MappedSqlTest, MappedSessionMatchesEagerOnCorpus) {
  WsdDb db = BuildShardedDb();
  std::string path = SaveV3(db, "mapped_corpus.wsd");

  Session eager;
  auto le = eager.Execute("LOAD DATABASE '" + path + "'");
  ASSERT_TRUE(le.ok()) << le.status().ToString();
  Session mapped;
  auto lm = mapped.Execute("LOAD DATABASE '" + path + "' MAPPED");
  ASSERT_TRUE(lm.ok()) << lm.status().ToString();
  EXPECT_NE(lm->message.find("mapped database"), std::string::npos);
  ASSERT_TRUE(mapped.is_mapped());

  for (const char* q : kQueryCorpus) {
    auto re = eager.Execute(q);
    ASSERT_TRUE(re.ok()) << q << ": " << re.status().ToString();
    auto rm = mapped.Execute(q);
    ASSERT_TRUE(rm.ok()) << q << ": " << rm.status().ToString();
    ExpectSameAnswer(*re, *rm, q);
    EXPECT_TRUE(mapped.is_mapped()) << q << " should not force residency";
  }

  // Selective queries really did skip shards.
  auto sel = mapped.Execute("SELECT * FROM people WHERE id >= 56");
  ASSERT_TRUE(sel.ok());
  ASSERT_NE(mapped.mapped_db(), nullptr);
  EXPECT_EQ(mapped.mapped_db()->last_stats().shards_kept, 1u);
}

TEST(MappedSqlTest, CatalogStatementsWorkWhileMapped) {
  WsdDb db = BuildShardedDb();
  std::string path = SaveV3(db, "mapped_catalog.wsd");
  Session s;
  ASSERT_TRUE(s.Execute("LOAD DATABASE '" + path + "' MAPPED").ok());

  auto tables = s.Execute("SHOW TABLES");
  ASSERT_TRUE(tables.ok());
  EXPECT_TRUE(s.is_mapped()) << "SHOW TABLES must not force residency";

  auto explain = s.Execute("EXPLAIN SELECT * FROM people WHERE id >= 56");
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  EXPECT_TRUE(s.is_mapped()) << "EXPLAIN must not force residency";
}

TEST(MappedSqlTest, MutationForcesResidencyAndKeepsData) {
  WsdDb db = BuildShardedDb();
  std::string path = SaveV3(db, "mapped_mutate.wsd");
  Session s;
  ASSERT_TRUE(s.Execute("LOAD DATABASE '" + path + "' MAPPED").ok());
  ASSERT_TRUE(s.is_mapped());

  auto ins = s.Execute("INSERT INTO people VALUES (64, 'kyiv', 3)");
  ASSERT_TRUE(ins.ok()) << ins.status().ToString();
  EXPECT_FALSE(s.is_mapped()) << "INSERT must fall back to resident";

  // All 64 original tuples survived the fallback, plus the new one.
  auto count = s.Execute("SELECT ECOUNT() FROM people WHERE id >= 0");
  ASSERT_TRUE(count.ok());
  ASSERT_EQ(count->kind, StatementResult::Kind::kTable);
  ASSERT_EQ(count->table.rows().size(), 1u);
  EXPECT_NEAR(count->table.rows()[0][0].as_double(), 65.0, 1e-9);
}

TEST(MappedSqlTest, EagerLoadDropsMapping) {
  WsdDb db = BuildShardedDb();
  std::string path = SaveV3(db, "mapped_drop.wsd");
  Session s;
  ASSERT_TRUE(s.Execute("LOAD DATABASE '" + path + "' MAPPED").ok());
  ASSERT_TRUE(s.is_mapped());
  ASSERT_TRUE(s.Execute("LOAD DATABASE '" + path + "'").ok());
  EXPECT_FALSE(s.is_mapped());
  auto r = s.Execute("SELECT ECOUNT() FROM people WHERE id >= 0");
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->table.rows()[0][0].as_double(), 64.0, 1e-9);
}

}  // namespace
}  // namespace maybms
