// Integration tests for the TCP query server: connect/query/disconnect
// over the line protocol, server answers vs direct embedded execution,
// concurrent writer clients, per-client rate limiting, admission
// control, counters, and clean shutdown.
#include "server/server.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "server/client.h"
#include "server/shared_catalog.h"
#include "sql/session.h"
#include "tests/test_util.h"

namespace maybms {
namespace server {
namespace {

std::unique_ptr<Server> MustStart(SharedCatalog* catalog,
                                  ServerOptions options = {}) {
  auto server = Server::Start(catalog, options);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  return std::move(*server);
}

Client MustConnect(const Server& server) {
  auto client = Client::Connect(server.port());
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(*client);
}

Response MustExecute(Client* client, const std::string& stmt) {
  auto resp = client->Execute(stmt);
  EXPECT_TRUE(resp.ok()) << stmt << ": " << resp.status().ToString();
  return resp.ok() ? *resp : Response{};
}

TEST(ServerTest, PingAndQuit) {
  SharedCatalog catalog;
  auto server = MustStart(&catalog);
  Client client = MustConnect(*server);
  Response pong = MustExecute(&client, ".ping");
  ASSERT_TRUE(pong.ok) << pong.error;
  ASSERT_EQ(pong.lines.size(), 1u);
  EXPECT_EQ(pong.lines[0], "pong");
  Response bye = MustExecute(&client, ".quit");
  EXPECT_TRUE(bye.ok);
  // The server closed its side; the next request fails at transport
  // level rather than hanging.
  EXPECT_FALSE(client.Execute(".ping").ok());
}

TEST(ServerTest, QueryMatchesDirectExecution) {
  SharedCatalog catalog;
  auto server = MustStart(&catalog);
  Client client = MustConnect(*server);

  for (const char* stmt :
       {"CREATE TABLE md (name STRING, diag STRING)",
        "INSERT INTO md VALUES ('smith', {'flu': 0.7, 'cold': 0.3})",
        "INSERT INTO md VALUES ('jones', 'flu')"}) {
    Response r = MustExecute(&client, stmt);
    ASSERT_TRUE(r.ok) << stmt << ": " << r.error;
  }

  // The same statements through an embedded session.
  sql::Session direct;
  MAYBMS_ASSERT_OK(
      direct.Execute("CREATE TABLE md (name STRING, diag STRING)").status());
  MAYBMS_ASSERT_OK(direct
                       .Execute("INSERT INTO md VALUES "
                                "('smith', {'flu': 0.7, 'cold': 0.3})")
                       .status());
  MAYBMS_ASSERT_OK(
      direct.Execute("INSERT INTO md VALUES ('jones', 'flu')").status());

  for (const char* q :
       {"SELECT name, PROB() FROM md WHERE diag = 'flu'",
        "POSSIBLE SELECT diag FROM md", "CERTAIN SELECT name FROM md",
        "SELECT ECOUNT() FROM md WHERE diag = 'cold'", "SHOW TABLES"}) {
    Response got = MustExecute(&client, q);
    ASSERT_TRUE(got.ok) << q << ": " << got.error;
    auto want = direct.Execute(q);
    MAYBMS_ASSERT_OK(want.status());
    std::string joined;
    for (const std::string& l : got.lines) joined += l + "\n";
    std::string expect = want->ToDisplayString();
    if (!expect.empty() && expect.back() != '\n') expect += "\n";
    EXPECT_EQ(joined, expect) << q;
  }
}

TEST(ServerTest, SqlErrorsAreErrResponsesNotDisconnects) {
  SharedCatalog catalog;
  auto server = MustStart(&catalog);
  Client client = MustConnect(*server);
  Response bad = MustExecute(&client, "SELECT FROM nothing !!");
  EXPECT_FALSE(bad.ok);
  EXPECT_FALSE(bad.error.empty());
  Response missing = MustExecute(&client, "SELECT * FROM no_such_table");
  EXPECT_FALSE(missing.ok);
  // The connection survives errors.
  Response pong = MustExecute(&client, ".ping");
  EXPECT_TRUE(pong.ok);
  EXPECT_EQ(server->counters().sql_errors, 2u);
}

TEST(ServerTest, MappedLoadRejected) {
  SharedCatalog catalog;
  auto server = MustStart(&catalog);
  Client client = MustConnect(*server);
  Response r = MustExecute(&client,
                           "LOAD DATABASE 'whatever.wsd' MAPPED");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("MAPPED"), std::string::npos);
}

TEST(ServerTest, ConcurrentWritersSerialized) {
  SharedCatalog catalog;
  MAYBMS_ASSERT_OK(
      catalog.setup_session()->Execute("CREATE TABLE c (a INT)").status());
  catalog.Publish();
  // Enough admission headroom that shedding never kicks in (that policy
  // has its own test below); this test is about write serialization.
  ServerOptions options;
  options.workers = 4;
  options.max_in_flight = 64;
  auto server = MustStart(&catalog, options);

  constexpr int kClients = 8;
  constexpr int kRowsEach = 10;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = Client::Connect(server->port());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kRowsEach; ++i) {
        auto r = client->Execute("INSERT INTO c VALUES (" +
                                 std::to_string(c * 100 + i) + ")");
        if (!r.ok() || !r->ok) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);

  Client reader = MustConnect(*server);
  Response count = MustExecute(&reader, "SELECT ECOUNT() FROM c");
  ASSERT_TRUE(count.ok) << count.error;
  // All 80 inserts committed exactly once, in some serial order.
  std::string joined;
  for (const std::string& l : count.lines) joined += l + "\n";
  EXPECT_NE(joined.find(std::to_string(kClients * kRowsEach)),
            std::string::npos)
      << joined;
}

TEST(ServerTest, RateLimitRejectsBurst) {
  SharedCatalog catalog;
  ServerOptions options;
  options.rate_qps = 0.001;  // effectively: only the burst is spendable
  options.rate_burst = 3.0;
  auto server = MustStart(&catalog, options);
  Client client = MustConnect(*server);
  int ok = 0, limited = 0;
  for (int i = 0; i < 10; ++i) {
    Response r = MustExecute(&client, ".ping");
    if (r.ok) {
      ++ok;
    } else {
      EXPECT_NE(r.error.find("rate limit"), std::string::npos);
      ++limited;
    }
  }
  EXPECT_EQ(ok, 3);
  EXPECT_EQ(limited, 7);
  EXPECT_EQ(server->counters().rejected_rate_limit, 7u);

  // A fresh connection has its own bucket.
  Client second = MustConnect(*server);
  EXPECT_TRUE(MustExecute(&second, ".ping").ok);
}

TEST(ServerTest, AdmissionControlShedsOverload) {
  SharedCatalog catalog;
  ServerOptions options;
  options.workers = 2;
  options.max_in_flight = 2;
  auto server = MustStart(&catalog, options);

  // Two clients park in .sleep, filling the in-flight budget; a third
  // request is shed immediately instead of queueing.
  std::vector<std::thread> sleepers;
  std::atomic<int> sleep_failures{0};
  for (int i = 0; i < 2; ++i) {
    sleepers.emplace_back([&] {
      auto c = Client::Connect(server->port());
      if (!c.ok() || !c->Execute(".sleep 600").ok()) {
        sleep_failures.fetch_add(1);
      }
    });
  }
  // Give the sleepers time to occupy the workers.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  Client extra = MustConnect(*server);
  Response shed = MustExecute(&extra, ".ping");
  EXPECT_FALSE(shed.ok);
  EXPECT_NE(shed.error.find("overloaded"), std::string::npos);
  for (auto& t : sleepers) t.join();
  EXPECT_EQ(sleep_failures.load(), 0);
  EXPECT_GE(server->counters().rejected_overload, 1u);
  // Capacity freed: served again.
  EXPECT_TRUE(MustExecute(&extra, ".ping").ok);
}

TEST(ServerTest, StatsCommandAndCounters) {
  SharedCatalog catalog;
  auto server = MustStart(&catalog);
  Client client = MustConnect(*server);
  MustExecute(&client, ".ping");
  Response stats = MustExecute(&client, ".stats");
  ASSERT_TRUE(stats.ok);
  bool saw_served = false, saw_version = false;
  for (const std::string& l : stats.lines) {
    if (l.rfind("requests_served ", 0) == 0) saw_served = true;
    if (l.rfind("catalog_version ", 0) == 0) saw_version = true;
  }
  EXPECT_TRUE(saw_served);
  EXPECT_TRUE(saw_version);
  EXPECT_GE(server->counters().requests_served, 2u);
  EXPECT_EQ(server->counters().connections_accepted, 1u);
}

TEST(ServerTest, ResultCacheKeyedOnVersionSettingsAndText) {
  SharedCatalog catalog;
  auto server = MustStart(&catalog);
  Client client = MustConnect(*server);
  MustExecute(&client, "CREATE TABLE t (x INT)");
  MustExecute(&client, "INSERT INTO t VALUES ({1: 0.5, 2: 0.5})");

  // Same read re-issued: first populates, repeats hit.
  const std::string q = "SELECT x, PROB() FROM t";
  Response first = MustExecute(&client, q);
  ASSERT_TRUE(first.ok);
  EXPECT_TRUE(MustExecute(&client, q).ok);
  EXPECT_TRUE(MustExecute(&client, q).ok);
  EXPECT_GE(server->counters().result_cache_hits, 2u);
  const uint64_t hits_before = server->counters().result_cache_hits;
  const uint64_t misses_before = server->counters().result_cache_misses;

  // SET is session-local and changes this connection's settings
  // fingerprint — the same text must now miss, not serve the old entry.
  MustExecute(&client, "SET conf.num_threads = 2");
  EXPECT_TRUE(MustExecute(&client, q).ok);
  EXPECT_EQ(server->counters().result_cache_hits, hits_before);
  EXPECT_GT(server->counters().result_cache_misses, misses_before);

  // A committed write bumps the published version: stale entries stop
  // matching and the fresh answer reflects the write.
  MustExecute(&client, "INSERT INTO t VALUES (7)");
  Response after = MustExecute(&client, "CERTAIN SELECT x FROM t");
  ASSERT_TRUE(after.ok);
  bool saw_seven = false;
  for (const std::string& l : after.lines) {
    if (l.find('7') != std::string::npos) saw_seven = true;
  }
  EXPECT_TRUE(saw_seven);

  // Both counters surface through .stats for monitoring.
  Response stats = MustExecute(&client, ".stats");
  bool saw_hits = false, saw_misses = false;
  for (const std::string& l : stats.lines) {
    if (l.rfind("result_cache_hits ", 0) == 0) saw_hits = true;
    if (l.rfind("result_cache_misses ", 0) == 0) saw_misses = true;
  }
  EXPECT_TRUE(saw_hits && saw_misses);
}

TEST(ServerTest, AbruptDisconnectAndStop) {
  SharedCatalog catalog;
  auto server = MustStart(&catalog);
  {
    Client client = MustConnect(*server);
    MustExecute(&client, ".ping");
    // Destructor closes the socket without .quit — the server must reap
    // the connection without disturbing others.
  }
  Client survivor = MustConnect(*server);
  EXPECT_TRUE(MustExecute(&survivor, ".ping").ok);
  server->Stop();
  // Stop is idempotent and leaves clients with EOF, not hangs.
  server->Stop();
  EXPECT_FALSE(survivor.Execute(".ping").ok());
}

}  // namespace
}  // namespace server
}  // namespace maybms
