// Session-level durability tests: WAL attachment on SAVE/LOAD, the
// log-before-apply ordering, recovery replay (eager and mapped),
// CHECKPOINT and the auto-checkpoint threshold, stale-log discard, and
// clean failure of LOAD DATABASE ... MAPPED / EnsureResident under
// injected I/O faults. Everything runs on the FaultInjectingEnv, so no
// real files are touched.
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sql/session.h"
#include "storage/io_env.h"
#include "storage/wal.h"
#include "tests/test_util.h"

namespace maybms {
namespace sql {
namespace {

// A small uncertain database built through the query language.
void Populate(Session* s) {
  MAYBMS_ASSERT_OK(
      s->ExecuteScript("CREATE TABLE t (x INT, w DOUBLE);"
                       "INSERT INTO t VALUES ({1: 0.25, 2: 0.75}, 1.5);"
                       "INSERT INTO t VALUES (3, 2.0);")
          .status());
}

TEST(DurabilityTest, SaveAttachesWalAndLogsMutations) {
  FaultInjectingEnv env;
  Session s;
  s.set_env(&env);
  Populate(&s);
  EXPECT_FALSE(s.has_durable_attachment());

  auto saved = s.Execute("SAVE DATABASE 'db'");
  MAYBMS_ASSERT_OK(saved.status());
  EXPECT_NE(saved->message.find("logging to 'db.wal'"), std::string::npos);
  ASSERT_TRUE(s.has_durable_attachment());
  EXPECT_EQ(s.attached_path(), "db");
  EXPECT_EQ(s.wal_record_count(), 0u);
  EXPECT_TRUE(env.FileExists("db.wal"));

  MAYBMS_ASSERT_OK(
      s.Execute("INSERT INTO t VALUES (7, 1.0)").status());
  EXPECT_EQ(s.wal_record_count(), 1u);
  // SELECTs are not logged.
  MAYBMS_ASSERT_OK(s.Execute("SELECT x FROM t").status());
  EXPECT_EQ(s.wal_record_count(), 1u);

  auto contents = wal::ReadWal(&env, "db.wal");
  MAYBMS_ASSERT_OK(contents.status());
  ASSERT_EQ(contents->records.size(), 1u);
  EXPECT_EQ(contents->records[0].payload, "INSERT INTO t VALUES (7, 1.0)");
}

TEST(DurabilityTest, WalDisabledNeverAttaches) {
  FaultInjectingEnv env;
  Session s;
  s.set_env(&env);
  s.mutable_durability_options().wal_enabled = false;
  Populate(&s);
  MAYBMS_ASSERT_OK(s.Execute("SAVE DATABASE 'db'").status());
  EXPECT_FALSE(s.has_durable_attachment());
  EXPECT_FALSE(env.FileExists("db.wal"));
  // CHECKPOINT without an attachment is a clean user error.
  EXPECT_EQ(s.Execute("CHECKPOINT").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DurabilityTest, EagerLoadReplaysPendingLog) {
  FaultInjectingEnv env;
  Session a;
  a.set_env(&env);
  Populate(&a);
  MAYBMS_ASSERT_OK(a.Execute("SAVE DATABASE 'db'").status());
  MAYBMS_ASSERT_OK(
      a.Execute("INSERT INTO t VALUES ({4: 0.5, 5: 0.5}, 1.0)").status());
  // REPAIR KEY introduces fresh components on replay, so it exercises
  // the component-id allocation determinism (key columns must be
  // certain, hence the side table).
  MAYBMS_ASSERT_OK(
      a.ExecuteScript("CREATE TABLE d (x INT, w DOUBLE);"
                      "INSERT INTO d VALUES (1, 1.0), (1, 3.0);")
          .status());
  MAYBMS_ASSERT_OK(a.Execute("REPAIR KEY (x) IN d WEIGHT BY w").status());
  EXPECT_EQ(a.wal_record_count(), 4u);

  // The session dies here (simply dropped); a fresh one recovers from
  // snapshot + log and must land on the exact same database.
  Session b;
  b.set_env(&env);
  auto loaded = b.Execute("LOAD DATABASE 'db'");
  MAYBMS_ASSERT_OK(loaded.status());
  EXPECT_NE(loaded->message.find("recovered 4 statement(s)"),
            std::string::npos);
  testing_util::ExpectDbsExactlyEqual(a.db(), b.db());
  // The recovered session continues the same log.
  ASSERT_TRUE(b.has_durable_attachment());
  EXPECT_EQ(b.wal_record_count(), 4u);
  MAYBMS_ASSERT_OK(b.Execute("INSERT INTO t VALUES (9, 1.0)").status());
  EXPECT_EQ(b.wal_record_count(), 5u);
}

TEST(DurabilityTest, MappedLoadRecoversThenRemapsClean) {
  FaultInjectingEnv env;
  Session a;
  a.set_env(&env);
  Populate(&a);
  MAYBMS_ASSERT_OK(a.Execute("SAVE DATABASE 'db'").status());
  MAYBMS_ASSERT_OK(a.Execute("INSERT INTO t VALUES (8, 0.5)").status());
  const WsdDb expected = a.db();

  Session b;
  b.set_env(&env);
  auto loaded = b.Execute("LOAD DATABASE 'db' MAPPED");
  MAYBMS_ASSERT_OK(loaded.status());
  EXPECT_NE(loaded->message.find("recovered 1 statement(s)"),
            std::string::npos);
  EXPECT_TRUE(b.is_mapped());
  // Recovery folded the log into a fresh snapshot before remapping.
  EXPECT_EQ(b.wal_record_count(), 0u);
  auto prob_b = b.Execute("SELECT x, PROB() FROM t WHERE x = 1");
  MAYBMS_ASSERT_OK(prob_b.status());
  ASSERT_EQ(prob_b->table.NumRows(), 1u);
  EXPECT_NEAR(prob_b->table.row(0)[1].as_double(), 0.25, 1e-9);

  // An eager load of the rewritten snapshot sees the recovered state
  // directly, with nothing left to replay.
  Session c;
  c.set_env(&env);
  auto again = c.Execute("LOAD DATABASE 'db'");
  MAYBMS_ASSERT_OK(again.status());
  EXPECT_EQ(again->message.find("recovered"), std::string::npos);
  testing_util::ExpectDbsExactlyEqual(expected, c.db());
}

TEST(DurabilityTest, CheckpointFoldsLogIntoSnapshot) {
  FaultInjectingEnv env;
  Session s;
  s.set_env(&env);
  Populate(&s);
  MAYBMS_ASSERT_OK(s.Execute("SAVE DATABASE 'db'").status());
  MAYBMS_ASSERT_OK(s.Execute("INSERT INTO t VALUES (7, 1.0)").status());
  EXPECT_EQ(s.wal_record_count(), 1u);
  auto cp = s.Execute("CHECKPOINT");
  MAYBMS_ASSERT_OK(cp.status());
  EXPECT_NE(cp->message.find("checkpointed"), std::string::npos);
  EXPECT_EQ(s.wal_record_count(), 0u);

  Session b;
  b.set_env(&env);
  auto loaded = b.Execute("LOAD DATABASE 'db'");
  MAYBMS_ASSERT_OK(loaded.status());
  EXPECT_EQ(loaded->message.find("recovered"), std::string::npos);
  testing_util::ExpectDbsExactlyEqual(s.db(), b.db());
}

TEST(DurabilityTest, AutoCheckpointKeepsTheLogShort) {
  FaultInjectingEnv env;
  Session s;
  s.set_env(&env);
  s.mutable_durability_options().auto_checkpoint_records = 2;
  Populate(&s);
  MAYBMS_ASSERT_OK(s.Execute("SAVE DATABASE 'db'").status());
  MAYBMS_ASSERT_OK(s.Execute("INSERT INTO t VALUES (7, 1.0)").status());
  EXPECT_EQ(s.wal_record_count(), 1u);
  MAYBMS_ASSERT_OK(s.Execute("INSERT INTO t VALUES (8, 1.0)").status());
  EXPECT_EQ(s.wal_record_count(), 0u);  // threshold hit, log folded

  Session b;
  b.set_env(&env);
  MAYBMS_ASSERT_OK(b.Execute("LOAD DATABASE 'db'").status());
  testing_util::ExpectDbsExactlyEqual(s.db(), b.db());
}

TEST(DurabilityTest, StaleLogFromOlderSnapshotIsDiscarded) {
  FaultInjectingEnv env;
  Session a;
  a.set_env(&env);
  Populate(&a);
  MAYBMS_ASSERT_OK(a.Execute("SAVE DATABASE 'db'").status());
  MAYBMS_ASSERT_OK(a.Execute("INSERT INTO t VALUES (7, 1.0)").status());

  // Behind the session's back, a different database replaces the
  // snapshot: the leftover log belongs to the old generation and its
  // fingerprint no longer matches.
  Session other;
  other.set_env(&env);
  MAYBMS_ASSERT_OK(
      other.Execute("CREATE TABLE u (y STRING)").status());
  other.mutable_durability_options().wal_enabled = false;
  MAYBMS_ASSERT_OK(other.Execute("SAVE DATABASE 'db'").status());

  Session b;
  b.set_env(&env);
  auto loaded = b.Execute("LOAD DATABASE 'db'");
  MAYBMS_ASSERT_OK(loaded.status());
  EXPECT_EQ(loaded->message.find("recovered"), std::string::npos);
  testing_util::ExpectDbsExactlyEqual(other.db(), b.db());
  EXPECT_FALSE(b.db().HasRelation("t"));
}

TEST(DurabilityTest, LogBeforeApplyFailedAppendLeavesMemoryUntouched) {
  FaultInjectingEnv env;
  Session s;
  s.set_env(&env);
  Populate(&s);
  MAYBMS_ASSERT_OK(s.Execute("SAVE DATABASE 'db'").status());
  const WsdDb before = s.db();
  env.Crash();
  // The WAL append fails, so the statement must fail *without* applying:
  // an acked-but-unlogged mutation would be lost on recovery.
  auto r = s.Execute("INSERT INTO t VALUES (7, 1.0)");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(testing_util::DbsExactlyEqual(before, s.db()));
  Rng rng(1);
  env.Recover(&rng);
}

TEST(DurabilityTest, ExecuteParsedWithoutSourceTextIsRejectedWhenAttached) {
  FaultInjectingEnv env;
  Session s;
  s.set_env(&env);
  Populate(&s);
  MAYBMS_ASSERT_OK(s.Execute("SAVE DATABASE 'db'").status());
  // A hand-built statement has no SQL text to log; accepting it would
  // create an un-replayable hole in the WAL.
  Statement stmt;
  stmt.kind = Statement::Kind::kDropTable;
  stmt.drop_table = DropTableStmt{};
  stmt.drop_table->name = "t";
  auto r = s.ExecuteParsed(stmt);
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(s.db().HasRelation("t"));
}

// Satellite: LOAD DATABASE ... MAPPED under injected I/O failures must
// fail cleanly and leave the session's catalog untouched.
TEST(DurabilityTest, MappedLoadFailureLeavesCatalogUnchanged) {
  FaultInjectingEnv env;
  {
    Session writer;
    writer.set_env(&env);
    Populate(&writer);
    MAYBMS_ASSERT_OK(writer.Execute("SAVE DATABASE 'db'").status());
  }
  Session s;
  s.set_env(&env);
  MAYBMS_ASSERT_OK(s.Execute("CREATE TABLE keepme (x INT)").status());

  // Missing file.
  EXPECT_EQ(s.Execute("LOAD DATABASE 'absent' MAPPED").status().code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(s.db().HasRelation("keepme"));
  EXPECT_FALSE(s.is_mapped());

  // Hard I/O fault on the very next operation (the map itself).
  FaultPlan plan;
  plan.fail_at_op = env.op_count();
  env.set_plan(plan);
  auto r = s.Execute("LOAD DATABASE 'db' MAPPED");
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  EXPECT_TRUE(s.db().HasRelation("keepme"));
  EXPECT_FALSE(s.is_mapped());

  // With the fault cleared the same load succeeds.
  env.set_plan(FaultPlan{});
  MAYBMS_ASSERT_OK(s.Execute("LOAD DATABASE 'db' MAPPED").status());
  EXPECT_TRUE(s.is_mapped());
}

// Satellite: EnsureResident hitting a lazily-verified corrupt shard must
// fail the statement cleanly, keeping the mapped skeleton serviceable.
TEST(DurabilityTest, EnsureResidentSurfacesCorruptShardCleanly) {
  FaultInjectingEnv env;
  {
    Session writer;
    writer.set_env(&env);
    writer.mutable_durability_options().wal_enabled = false;
    Populate(&writer);
    MAYBMS_ASSERT_OK(writer.Execute("SAVE DATABASE 'db'").status());
  }
  // Flip a byte inside the relation payload (the section just before the
  // 20-byte END trailer): the mapped open verifies only the eager head,
  // so the damage surfaces at materialization time.
  auto size = env.FileSize("db");
  MAYBMS_ASSERT_OK(size.status());
  MAYBMS_ASSERT_OK(env.MutateFileByte("db", *size - 21));

  Session s;
  s.set_env(&env);
  s.mutable_durability_options().wal_enabled = false;
  MAYBMS_ASSERT_OK(s.Execute("LOAD DATABASE 'db' MAPPED").status());
  ASSERT_TRUE(s.is_mapped());
  // The INSERT forces residency; materialization hits the bad checksum.
  auto r = s.Execute("INSERT INTO t VALUES (7, 1.0)");
  EXPECT_FALSE(r.ok());
  // Clean failure: still mapped, catalog skeleton intact.
  EXPECT_TRUE(s.is_mapped());
  EXPECT_TRUE(s.db().HasRelation("t"));
}

}  // namespace
}  // namespace sql
}  // namespace maybms
