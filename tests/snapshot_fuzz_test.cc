// Snapshot round-trip fuzz: random world-set databases pushed through
// text → binary → text must come back *exactly* — same templates, same
// packed cells, bit-identical probabilities, same options — and the two
// text renderings must be byte-identical. A second pass hammers the
// binary reader with truncations and random byte flips: every corrupted
// input must produce a Status error, never a crash or a hang.
//
// Iteration count: MAYBMS_SNAPSHOT_FUZZ_ITERS (default 60). The
// `snapshot_fuzz_long` CTest entry (label "fuzz") raises it for the CI
// sanitizer matrix.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/rng.h"
#include "core/mapped_db.h"
#include "core/serialize.h"
#include "tests/test_util.h"

namespace maybms {
namespace {

size_t FuzzIters() {
  const char* env = std::getenv("MAYBMS_SNAPSHOT_FUZZ_ITERS");
  if (!env) return 60;
  long v = std::strtol(env, nullptr, 10);
  return v > 0 ? static_cast<size_t>(v) : 60;
}

WsdDb RandomDb(Rng* rng, uint64_t iter) {
  testing_util::RandomWsdOptions opt;
  opt.num_relations = 1 + rng->NextBelow(3);
  opt.max_tuples = 2 + rng->NextBelow(7);
  opt.p_uncertain_cell = 0.2 + 0.6 * rng->NextDouble();
  opt.p_joint = 0.5 * rng->NextDouble();
  opt.allow_strings = (iter % 4) != 3;  // every 4th db is string-free
  WsdDb db = testing_util::RandomWsd(rng, opt);
  // Exercise non-default options and id gaps occasionally.
  if (rng->NextBernoulli(0.3)) {
    db.mutable_options().max_component_rows = 1u << (10 + rng->NextBelow(6));
  }
  if (rng->NextBernoulli(0.3) && db.NumLiveComponents() >= 2) {
    auto live = db.LiveComponents();
    auto merged = db.MergeComponents({live[0], live[1]}, 1u << 16);
    EXPECT_TRUE(merged.ok()) << merged.status().ToString();
  }
  return db;
}

TEST(SnapshotFuzzTest, TextBinaryTextRoundTripIsExact) {
  const size_t iters = FuzzIters();
  for (size_t i = 0; i < iters; ++i) {
    Rng rng(i * 9176 + 1031);
    WsdDb db = RandomDb(&rng, i);

    std::stringstream text1;
    MAYBMS_ASSERT_OK(WriteWsdDb(db, text1));
    auto from_text = ReadWsdDb(text1);
    ASSERT_TRUE(from_text.ok()) << "iter " << i << ": "
                                << from_text.status().ToString();

    std::stringstream binary;
    MAYBMS_ASSERT_OK(WriteWsdDbBinary(*from_text, binary));
    auto from_binary = ReadWsdDb(binary);
    ASSERT_TRUE(from_binary.ok()) << "iter " << i << ": "
                                  << from_binary.status().ToString();
    MAYBMS_ASSERT_OK(from_binary->CheckInvariants());

    testing_util::ExpectDbsExactlyEqual(db, *from_binary);

    std::stringstream text2;
    MAYBMS_ASSERT_OK(WriteWsdDb(*from_binary, text2));
    ASSERT_EQ(text1.str(), text2.str())
        << "iter " << i << ": text rendering drifted across the binary hop";
  }
}

TEST(SnapshotFuzzTest, CorruptedBinaryInputsNeverCrash) {
  const size_t iters = FuzzIters();
  for (size_t i = 0; i < iters; ++i) {
    Rng rng(i * 5147 + 97);
    WsdDb db = RandomDb(&rng, i);
    std::stringstream ss;
    MAYBMS_ASSERT_OK(WriteWsdDbBinary(db, ss));
    const std::string full = ss.str();
    ASSERT_FALSE(full.empty());

    for (int mutation = 0; mutation < 24; ++mutation) {
      std::string bad = full;
      switch (rng.NextBelow(3)) {
        case 0:  // truncate at a random point
          bad.resize(rng.NextBelow(bad.size()));
          break;
        case 1: {  // flip one random byte
          size_t pos = rng.NextBelow(bad.size());
          bad[pos] = static_cast<char>(
              bad[pos] ^ static_cast<char>(1 + rng.NextBelow(255)));
          break;
        }
        default: {  // overwrite a random 8-byte window (length fields)
          size_t pos = rng.NextBelow(bad.size());
          for (size_t k = pos; k < bad.size() && k < pos + 8; ++k) {
            bad[k] = static_cast<char>(rng.NextBelow(256));
          }
          break;
        }
      }
      if (bad == full) continue;
      std::stringstream in(bad);
      auto r = ReadWsdDb(in);
      // Reaching here without crashing is the point; a mutated snapshot
      // that still parses must at least hold the structural invariants.
      if (r.ok()) {
        MAYBMS_EXPECT_OK(r->CheckInvariants());
      }
    }
  }
}

// The same corruption hammer against the v3 sharded format, through
// both readers: the eager stream reader and MappedWsdDb::Open (which
// trusts block checksums lazily, so corruption it does not catch at
// open time must surface as an error — or an invariant-clean database —
// when the blocks are materialized). The mutation windows are biased
// toward the file head, where the shard directory and its offset
// tables live.
TEST(SnapshotFuzzTest, CorruptedV3InputsNeverCrashEitherReader) {
  const size_t iters = FuzzIters();
  char tmpl[] = "/tmp/maybms_v3_fuzz_XXXXXX";
  int fd = mkstemp(tmpl);
  ASSERT_GE(fd, 0);
  close(fd);
  const std::string path = tmpl;

  for (size_t i = 0; i < iters; ++i) {
    Rng rng(i * 7829 + 271);
    WsdDb db = RandomDb(&rng, i);
    // Small shards so SDIR carries several offset-table entries.
    db.mutable_options().rows_per_shard = 1 + rng.NextBelow(4);
    std::stringstream ss;
    MAYBMS_ASSERT_OK(WriteWsdDbBinaryV3(db, ss));
    const std::string full = ss.str();
    ASSERT_FALSE(full.empty());

    for (int mutation = 0; mutation < 24; ++mutation) {
      std::string bad = full;
      // Half the mutations target the first quarter of the file — the
      // headers, string table and shard directory.
      size_t window =
          mutation % 2 == 0 ? std::max<size_t>(1, bad.size() / 4) : bad.size();
      switch (rng.NextBelow(3)) {
        case 0:
          bad.resize(rng.NextBelow(bad.size()));
          break;
        case 1: {
          size_t pos = rng.NextBelow(window);
          bad[pos] = static_cast<char>(
              bad[pos] ^ static_cast<char>(1 + rng.NextBelow(255)));
          break;
        }
        default: {
          size_t pos = rng.NextBelow(window);
          for (size_t k = pos; k < bad.size() && k < pos + 8; ++k) {
            bad[k] = static_cast<char>(rng.NextBelow(256));
          }
          break;
        }
      }
      if (bad == full) continue;

      std::stringstream in(bad);
      auto r = ReadWsdDb(in);
      if (r.ok()) {
        MAYBMS_EXPECT_OK(r->CheckInvariants());
      }

      {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bad.data(), static_cast<std::streamsize>(bad.size()));
      }
      auto mapped = MappedWsdDb::Open(path);
      if (mapped.ok()) {
        auto all = mapped->MaterializeAll();
        if (all.ok()) {
          MAYBMS_EXPECT_OK(all->CheckInvariants());
        }
      }
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace maybms
