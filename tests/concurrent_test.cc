// Concurrency tests for the caches that used to carry single-threaded
// carve-outs (Component/Relation stats, shard partitions, the mapped
// database's block cache) and for the server's SharedCatalog: snapshot-
// isolated readers racing serialized writers, differentially checked
// against single-threaded execution. Run under ThreadSanitizer in CI —
// the assertions here are the semantic half, TSan is the data-race half.
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/builder.h"
#include "core/mapped_db.h"
#include "core/serialize.h"
#include "core/shard.h"
#include "server/shared_catalog.h"
#include "sql/parser.h"
#include "sql/session.h"
#include "storage/relation.h"
#include "tests/test_util.h"

namespace maybms {
namespace {

using server::SharedCatalog;
using sql::Session;
using sql::StatementResult;

WsdDb SmallDb(size_t rows_per_shard = 4) {
  WsdDb db;
  db.mutable_options().rows_per_shard = rows_per_shard;
  EXPECT_TRUE(db.CreateRelation("r", Schema({{"a", ValueType::kInt},
                                             {"b", ValueType::kString}}))
                  .ok());
  for (int i = 0; i < 32; ++i) {
    CellSpec b = i % 3 == 0
                     ? CellSpec::UniformOrSet(
                           {Value::String("x"), Value::String("y")})
                     : CellSpec::Certain(Value::String("z"));
    EXPECT_TRUE(
        InsertTuple(&db, "r", {CellSpec::Certain(Value::Int(i)), std::move(b)})
            .ok());
  }
  return db;
}

// --- stat caches -----------------------------------------------------------

TEST(ConcurrentCaches, ComponentGetStatsRaceFree) {
  WsdDb db = SmallDb();
  const std::vector<ComponentId> live = db.LiveComponents();
  ASSERT_FALSE(live.empty());
  const Component& c = db.component(live[0]);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        const ComponentStats& s = c.GetStats();
        if (s.rows != c.NumRows() || s.distinct.size() != c.NumSlots()) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_TRUE(c.HasCachedStats());
}

TEST(ConcurrentCaches, RelationGetStatsRaceFree) {
  Relation rel("t", Schema({{"a", ValueType::kInt}}));
  for (int i = 0; i < 100; ++i) {
    MAYBMS_ASSERT_OK(rel.Append({Value::Int(i % 7)}));
  }
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        const RelationStats& s = rel.GetStats();
        if (s.rows != 100 || s.distinct[0] != 7) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_TRUE(rel.HasCachedStats());
}

TEST(ConcurrentCaches, StatsCacheSurvivesConcurrentCopies) {
  // Copying a relation snapshots the stats cache atomically even while
  // other threads are CAS-installing it on the source.
  Relation rel("t", Schema({{"a", ValueType::kInt}}));
  for (int i = 0; i < 50; ++i) {
    MAYBMS_ASSERT_OK(rel.Append({Value::Int(i)}));
  }
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 100; ++i) {
        if (t % 2 == 0) {
          if (rel.GetStats().rows != 50) bad.fetch_add(1);
        } else {
          Relation copy(rel);
          if (copy.GetStats().rows != 50) bad.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(bad.load(), 0);
}

// --- shard partition cache -------------------------------------------------

TEST(ConcurrentCaches, ShardPartitionConcurrentReaders) {
  const WsdDb db = SmallDb(/*rows_per_shard=*/4);
  const WsdRelation* rel = *db.GetRelation("r");
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        const ShardPartition& p = GetShardPartition(db, *rel);
        if (p.shards.size() != 8 || p.rows_per_shard != 4) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  // Every thread converged on one installed partition.
  ASSERT_NE(rel->cached_shards(), nullptr);
  EXPECT_EQ(rel->cached_shards().get(), &GetShardPartition(db, *rel));
}

TEST(ShardCacheInvalidation, ComponentMutationInvalidates) {
  WsdDb db = SmallDb();
  const WsdRelation* rel = *db.GetRelation("r");
  GetShardPartition(db, *rel);
  ASSERT_NE(rel->cached_shards(), nullptr);

  // The staleness hole: partitions persist per-shard possible-value
  // ranges, so editing a component must drop them.
  const std::vector<ComponentId> live = db.LiveComponents();
  ASSERT_FALSE(live.empty());
  db.mutable_component(live[0]);
  EXPECT_EQ(rel->cached_shards(), nullptr);

  GetShardPartition(db, *rel);
  ASSERT_NE(rel->cached_shards(), nullptr);
  db.RemoveComponent(live[0]);
  EXPECT_EQ(rel->cached_shards(), nullptr);
}

TEST(ShardCacheInvalidation, TupleMutationInvalidates) {
  WsdDb db = SmallDb();
  WsdRelation* rel = *db.GetMutableRelation("r");
  GetShardPartition(db, *rel);
  ASSERT_NE(rel->cached_shards(), nullptr);
  rel->mutable_tuples();
  EXPECT_EQ(rel->cached_shards(), nullptr);
}

// --- copy-on-write sharing -------------------------------------------------

TEST(CowDb, CopiesShareUntilMutation) {
  WsdDb a = SmallDb();
  WsdDb b = a;  // cheap: shares tuple vectors and components
  const std::vector<ComponentId> live = a.LiveComponents();
  ASSERT_FALSE(live.empty());
  EXPECT_EQ(&a.component(live[0]), &b.component(live[0]));
  EXPECT_EQ(&(*a.GetRelation("r"))->tuple(0), &(*b.GetRelation("r"))->tuple(0));

  // Mutating b's component detaches it; a's stays untouched.
  const double before = a.component(live[0]).prob(0);
  Component& mut = b.mutable_component(live[0]);
  EXPECT_NE(&mut, &a.component(live[0]));
  mut.set_prob(0, before / 2);
  EXPECT_EQ(a.component(live[0]).prob(0), before);

  // Same for tuples.
  b.GetMutableRelation("r").value()->mutable_tuple(0);
  EXPECT_NE(&(*a.GetRelation("r"))->tuple(0),
            &(*b.GetRelation("r"))->tuple(0));
}

// --- mapped database -------------------------------------------------------

TEST(ConcurrentMapped, ParallelMaterializeMatchesSingleThreaded) {
  WsdDb db = SmallDb(/*rows_per_shard=*/4);
  const std::string path = ::testing::TempDir() + "/concurrent_mapped.wsd";
  MAYBMS_ASSERT_OK(SaveWsdDb(db, path, SnapshotFormat::kBinary));

  // A tight budget forces evictions while 8 threads materialize — the
  // old LRU accounting raced exactly here.
  MappedDbOptions opts;
  opts.max_resident_bytes = 512;
  auto mapped = MappedWsdDb::Open(path, opts);
  MAYBMS_ASSERT_OK(mapped.status());

  WsdDb oracle_db = db;
  Session oracle(std::move(oracle_db));
  auto expect = oracle.Execute("POSSIBLE SELECT b FROM r WHERE a < 8");
  MAYBMS_ASSERT_OK(expect.status());
  const std::string want = testing_util::CanonicalBag(expect->table);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20; ++i) {
        auto scratch = mapped->MaterializeAll();
        if (!scratch.ok()) {
          failures.fetch_add(1);
          continue;
        }
        Session s(std::move(*scratch));
        auto got = s.Execute("POSSIBLE SELECT b FROM r WHERE a < 8");
        if (!got.ok() ||
            testing_util::CanonicalBag(got->table) != want) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(mapped->peak_resident_bytes(), 0u);
}

// --- SharedCatalog stress --------------------------------------------------

TEST(SharedCatalogTest, SnapshotIsolationAndEpochReclamation) {
  SharedCatalog catalog;
  MAYBMS_ASSERT_OK(
      catalog.setup_session()->Execute("CREATE TABLE t (a INT)").status());
  catalog.Publish();

  // A snapshot taken now must not see writes committed later.
  WsdDb snap = catalog.SnapshotCopy();
  auto stmt = sql::ParseStatement("INSERT INTO t VALUES (1)");
  MAYBMS_ASSERT_OK(stmt.status());
  for (int i = 0; i < 5; ++i) {
    MAYBMS_ASSERT_OK(catalog.ExecuteWrite(*stmt).status());
  }
  EXPECT_EQ((*snap.GetRelation("t"))->NumTuples(), 0u);
  EXPECT_EQ((*catalog.SnapshotCopy().GetRelation("t"))->NumTuples(), 5u);
}

// Concurrent readers + per-relation writers over one catalog; every
// reader observation must be a prefix of its relation's write sequence
// (snapshot isolation + monotone versions), and the final state must
// equal single-threaded execution of the same statements.
TEST(SharedCatalogTest, DifferentialStress) {
  constexpr int kWriters = 3;
  constexpr int kReaders = 5;
  constexpr int kRowsPerWriter = 40;

  SharedCatalog catalog;
  std::vector<std::string> setup;
  for (int w = 0; w < kWriters; ++w) {
    const std::string ddl =
        "CREATE TABLE t" + std::to_string(w) + " (a INT, b STRING)";
    setup.push_back(ddl);
    MAYBMS_ASSERT_OK(catalog.setup_session()->Execute(ddl).status());
  }
  catalog.Publish();

  std::atomic<int> failures{0};
  std::atomic<bool> done{false};
  std::vector<std::string> write_log[kWriters];

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kRowsPerWriter; ++i) {
        // Every third row is an or-set, so writes create components too.
        std::string values =
            i % 3 == 0
                ? "(" + std::to_string(i) + ", {'x': 0.5, 'y': 0.5})"
                : "(" + std::to_string(i) + ", 'z')";
        const std::string stmt_text =
            "INSERT INTO t" + std::to_string(w) + " VALUES " + values;
        write_log[w].push_back(stmt_text);
        auto stmt = sql::ParseStatement(stmt_text);
        if (!stmt.ok() || !catalog.ExecuteWrite(*stmt).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Session session;
      uint64_t last_rows = 0;
      const std::string rel = "t" + std::to_string(r % kWriters);
      while (!done.load(std::memory_order_acquire)) {
        session.db() = catalog.SnapshotCopy();
        auto res = session.Execute("SELECT ECOUNT() FROM " + rel);
        if (!res.ok() || res->table.NumRows() != 1) {
          failures.fetch_add(1);
          continue;
        }
        // ECOUNT of certain existence = the row count at snapshot time:
        // an integer, within the write sequence, never going backwards
        // across this reader's successive snapshots.
        const double v = res->table.row(0)[0].as_double();
        const uint64_t rows = static_cast<uint64_t>(v + 0.5);
        if (v < -1e-9 || rows > kRowsPerWriter || rows < last_rows) {
          failures.fetch_add(1);
        }
        last_rows = rows;
        // Exercise the optimizer's stat/shard caches on the snapshot.
        auto conf = session.Execute("SELECT b, PROB() FROM " + rel +
                                    " WHERE a < 5");
        if (!conf.ok()) failures.fetch_add(1);
      }
    });
  }

  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  ASSERT_EQ(failures.load(), 0);

  // Differential: a single-threaded session executing the same per-
  // relation sequences must agree on every final answer.
  Session oracle;
  for (const std::string& s : setup) {
    MAYBMS_ASSERT_OK(oracle.Execute(s).status());
  }
  for (int w = 0; w < kWriters; ++w) {
    for (const std::string& s : write_log[w]) {
      MAYBMS_ASSERT_OK(oracle.Execute(s).status());
    }
  }
  Session final_session(catalog.SnapshotCopy());
  for (int w = 0; w < kWriters; ++w) {
    const std::string rel = "t" + std::to_string(w);
    for (const std::string& q :
         {"POSSIBLE SELECT a, b FROM " + rel,
          "SELECT b, PROB() FROM " + rel + " WHERE a < 9",
          "SELECT ECOUNT() FROM " + rel}) {
      auto got = final_session.Execute(q);
      auto want = oracle.Execute(q);
      MAYBMS_ASSERT_OK(got.status());
      MAYBMS_ASSERT_OK(want.status());
      EXPECT_EQ(testing_util::CanonicalBag(got->table),
                testing_util::CanonicalBag(want->table))
          << q;
    }
  }
}

}  // namespace
}  // namespace maybms
