// Tests for the shared cluster-decomposition subsystem (core/cluster.h):
// index structure, local factorization, the multi-cluster combine
// formula, enumeration budgets, parallel evaluation, and differential
// checks of factorized vs naive enumeration.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "common/parallel.h"
#include "core/builder.h"
#include "core/cluster.h"
#include "core/confidence.h"
#include "tests/test_util.h"
#include "worlds/enumerate.h"

namespace maybms {
namespace {

using testing_util::MedicalExample;
using testing_util::RandomWsd;
using testing_util::RandomWsdOptions;

std::map<std::string, double> TableConf(const Relation& table) {
  std::map<std::string, double> conf;
  for (const auto& row : table.rows()) {
    std::string key;
    for (size_t c = 0; c + 1 < row.size(); ++c) key += row[c].ToString() + "|";
    conf[key] = row.back().as_double();
  }
  return conf;
}

// E[SUM(col)] by brute-force world enumeration.
double OracleExpectedSum(const WsdDb& db, const std::string& rel,
                         size_t col) {
  auto worlds = EnumerateWorlds(db, 1u << 18);
  EXPECT_TRUE(worlds.ok());
  double total = 0.0;
  for (const auto& w : *worlds) {
    const Relation& r = *w.catalog.Get(rel).value();
    for (const auto& row : r.rows()) {
      if (!row[col].is_null()) total += w.prob * row[col].NumericValue();
    }
  }
  return total;
}

// Inserts `n` tuples with one binary or-set each and returns the db.
WsdDb IndependentOrSets(size_t n, double p_first = 0.5) {
  WsdDb db;
  Status st = db.CreateRelation("r", Schema({{"x", ValueType::kInt}}));
  EXPECT_TRUE(st.ok());
  for (size_t i = 0; i < n; ++i) {
    auto h = InsertTuple(
        &db, "r",
        {CellSpec::OrSet(
            {{Value::Int(1), p_first},
             {Value::Int(static_cast<int64_t>(i + 10)), 1.0 - p_first}})});
    EXPECT_TRUE(h.ok());
  }
  return db;
}

// Merges all live components of `db` into a single product component.
void MergeAllComponents(WsdDb* db) {
  std::vector<ComponentId> live = db->LiveComponents();
  ASSERT_GE(live.size(), 2u);
  auto merged = db->MergeComponents(live, 1u << 20);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
}

TEST(ClusterIndexTest, MedicalExampleStructure) {
  WsdDb db = MedicalExample();
  const WsdRelation* rel = db.GetRelation("R").value();
  ClusterIndex index(db, *rel);
  // r1 touches c1 (Diagnosis+Test, correlated — unsplittable) and c2
  // (Symptom); r2 is certain.
  EXPECT_EQ(index.certain_tuples().size(), 1u);
  ASSERT_EQ(index.clusters().size(), 1u);
  EXPECT_EQ(index.clusters()[0].tuple_idxs.size(), 1u);
  EXPECT_EQ(index.clusters()[0].factors.size(), 2u);
  // The joint (Diagnosis, Test) component must not be split: its two
  // slots are perfectly correlated.
  for (FactorId f : index.clusters()[0].factors) {
    EXPECT_TRUE(index.factor(f).whole());
  }
}

TEST(ClusterIndexTest, FactorizesMergedComponent) {
  // Three independent binary or-sets merged into one 8-row component:
  // local factorization must split it back into three 2-row factors and
  // the tuples must land in three separate clusters.
  WsdDb db = IndependentOrSets(3);
  MergeAllComponents(&db);
  EXPECT_EQ(db.NumLiveComponents(), 1u);
  EXPECT_EQ(db.component(db.LiveComponents()[0]).NumRows(), 8u);

  const WsdRelation* rel = db.GetRelation("r").value();
  ClusterIndex factorized(db, *rel);
  EXPECT_EQ(factorized.NumFactors(), 3u);
  EXPECT_EQ(factorized.clusters().size(), 3u);
  for (const Cluster& cl : factorized.clusters()) {
    EXPECT_EQ(cl.factors.size(), 1u);
    EXPECT_EQ(factorized.factor(cl.factors[0]).comp->NumRows(), 2u);
  }

  ClusterIndexOptions naive_opt;
  naive_opt.factorize = false;
  ClusterIndex naive(db, *rel, naive_opt);
  EXPECT_EQ(naive.NumFactors(), 1u);
  EXPECT_EQ(naive.clusters().size(), 1u);
}

TEST(ClusterIndexTest, TouchedRespectsColumnFilter) {
  // Tuple with two or-set cells: restricted to one column, only that
  // column's factor (plus dep-gated factors) is touched.
  WsdDb db;
  MAYBMS_ASSERT_OK(db.CreateRelation(
      "r", Schema({{"a", ValueType::kInt}, {"b", ValueType::kInt}})));
  auto h = InsertTuple(
      &db, "r",
      {CellSpec::OrSet({{Value::Int(1), 0.5}, {Value::Int(2), 0.5}}),
       CellSpec::Certain(Value::Int(7))});
  ASSERT_TRUE(h.ok());
  const WsdRelation* rel = db.GetRelation("r").value();
  ClusterIndex index(db, *rel);
  EXPECT_FALSE(index.Touched(rel->tuple(0)).empty());
  // Column b is certain and the tuple has no deps beyond its or-set
  // owner; the or-set component still gates existence only if the owner
  // appears in deps — it does, so the factor remains touched.
  std::vector<FactorId> col_b = index.Touched(rel->tuple(0), 1);
  std::vector<FactorId> col_a = index.Touched(rel->tuple(0), 0);
  EXPECT_EQ(col_a.size(), col_b.size());
}

TEST(ClusterEnumeratorTest, StatesAndBudget) {
  WsdDb db = IndependentOrSets(4);
  MergeAllComponents(&db);
  const WsdRelation* rel = db.GetRelation("r").value();

  ClusterIndexOptions naive_opt;
  naive_opt.factorize = false;
  ClusterIndex naive(db, *rel, naive_opt);
  ASSERT_EQ(naive.clusters().size(), 1u);
  ClusterEnumerator en(naive, naive.clusters()[0].factors);
  auto states = en.CheckBudget(1u << 20, "test");
  ASSERT_TRUE(states.ok());
  EXPECT_EQ(*states, 16u);
  EXPECT_EQ(en.CheckBudget(8, "test").status().code(),
            StatusCode::kResourceExhausted);

  // Factorized: per-cluster state spaces are 2, not 16.
  ClusterIndex factorized(db, *rel);
  ASSERT_EQ(factorized.clusters().size(), 4u);
  for (const Cluster& cl : factorized.clusters()) {
    ClusterEnumerator fen(factorized, cl.factors);
    auto s = fen.CheckBudget(8, "test");
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(*s, 2u);
  }
}

TEST(ClusterConfTest, MultiClusterCombineFormula) {
  // Independent tuples that can each be 1: conf(1) = 1 - Π(1 - p_i).
  WsdDb db;
  MAYBMS_ASSERT_OK(db.CreateRelation("r", Schema({{"x", ValueType::kInt}})));
  std::vector<double> ps = {0.5, 0.25, 0.125};
  for (size_t i = 0; i < ps.size(); ++i) {
    ASSERT_TRUE(
        InsertTuple(&db, "r",
                    {CellSpec::OrSet(
                        {{Value::Int(1), ps[i]},
                         {Value::Int(static_cast<int64_t>(i + 10)),
                          1.0 - ps[i]}})})
            .ok());
  }
  auto table = ConfTable(db, "r");
  ASSERT_TRUE(table.ok());
  auto conf = TableConf(*table);
  double absent = 1.0;
  for (double p : ps) absent *= (1.0 - p);
  EXPECT_NEAR(conf["1|"], 1.0 - absent, 1e-12);
  for (size_t i = 0; i < ps.size(); ++i) {
    EXPECT_NEAR(conf[std::to_string(i + 10) + "|"], 1.0 - ps[i], 1e-12);
  }
}

TEST(ClusterConfTest, FactorizedCompletesWhereNaiveExhaustsBudget) {
  // The acceptance case: a merged-but-factorizable component whose naive
  // cluster state space (2^10) blows a small budget that the factorized
  // decomposition (10 clusters × 2 states) sails through.
  WsdDb db = IndependentOrSets(10);
  MergeAllComponents(&db);

  ConfidenceOptions naive;
  naive.max_cluster_states = 256;
  naive.factorize_clusters = false;
  EXPECT_EQ(ConfTable(db, "r", naive).status().code(),
            StatusCode::kResourceExhausted);

  ConfidenceOptions factorized;
  factorized.max_cluster_states = 256;
  auto table = ConfTable(db, "r", factorized);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  auto conf = TableConf(*table);
  EXPECT_NEAR(conf["1|"], 1.0 - std::pow(0.5, 10), 1e-12);

  // Same for ESUM: the per-tuple term only needs its own factor.
  ConfidenceOptions esum_naive = naive;
  EXPECT_EQ(ExpectedSum(db, "r", "x", esum_naive).status().code(),
            StatusCode::kResourceExhausted);
  auto es = ExpectedSum(db, "r", "x", factorized);
  ASSERT_TRUE(es.ok()) << es.status().ToString();
  EXPECT_NEAR(*es, OracleExpectedSum(db, "r", 0), 1e-9);
}

TEST(ClusterConfTest, BudgetErrorIsResourceExhausted) {
  // Correlated chain forming one unfactorizable cluster: both the conf
  // and the ESUM budget paths must fail with kResourceExhausted.
  WsdDb db;
  MAYBMS_ASSERT_OK(db.CreateRelation("r", Schema({{"x", ValueType::kInt},
                                                  {"y", ValueType::kInt}})));
  auto prev = InsertTuple(&db, "r", {CellSpec::Certain(Value::Int(0)),
                                     CellSpec::Pending()});
  ASSERT_TRUE(prev.ok());
  TupleHandle chain = *prev;
  for (int i = 0; i < 10; ++i) {
    bool last = (i == 9);
    auto next = InsertTuple(
        &db, "r",
        {CellSpec::Pending(), last ? CellSpec::Certain(Value::Int(99))
                                   : CellSpec::Pending()});
    ASSERT_TRUE(next.ok());
    ASSERT_TRUE(AddJointComponent(
                    &db, {{chain, "y"}, {*next, "x"}},
                    {{{Value::Int(i), Value::Int(i + 1)}, 0.5},
                     {{Value::Int(i + 1), Value::Int(i)}, 0.5}})
                    .ok());
    chain = *next;
  }
  // Each ESUM term only touches the ≤2 components gating its own tuple
  // (4 joint states), so the tightest budget is needed to trip it; the
  // conf cluster spans the whole chain and trips any budget below 2^10.
  ConfidenceOptions opt;
  opt.max_cluster_states = 2;
  EXPECT_EQ(ConfTable(db, "r", opt).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(ExpectedSum(db, "r", "y", opt).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(ClusterEsumTest, NullBottomAndNonNumeric) {
  // NULL contributes 0 — certain and or-set alike; ⊥ alternatives mean
  // the tuple is absent in those worlds and contribute 0.
  WsdDb db;
  MAYBMS_ASSERT_OK(db.CreateRelation("r", Schema({{"v", ValueType::kInt}})));
  // certain NULL
  ASSERT_TRUE(InsertTuple(&db, "r", {CellSpec::Certain(Value::Null())}).ok());
  // or-set {10 w.p. 0.5, NULL w.p. 0.5}: contributes 5
  ASSERT_TRUE(InsertTuple(&db, "r",
                          {CellSpec::OrSet({{Value::Int(10), 0.5},
                                            {Value::Null(), 0.5}})})
                  .ok());
  // maybe-tuple via a joint component with a ⊥ row (or-sets reject ⊥;
  // lifted selection produces exactly this shape): {20 w.p. 0.25,
  // ⊥ w.p. 0.75} contributes 5.
  auto t3 = InsertTuple(&db, "r", {CellSpec::Pending()});
  ASSERT_TRUE(t3.ok());
  ASSERT_TRUE(AddJointComponent(&db, {{*t3, "v"}},
                                {{{Value::Int(20)}, 0.25},
                                 {{Value::Bottom()}, 0.75}})
                  .ok());
  auto es = ExpectedSum(db, "r", "v");
  ASSERT_TRUE(es.ok()) << es.status().ToString();
  EXPECT_NEAR(*es, 10.0, 1e-12);
  EXPECT_NEAR(*es, OracleExpectedSum(db, "r", 0), 1e-12);

  // Non-numeric values are a type error — both on the certain fast path
  // and inside enumeration.
  WsdDb certain_str;
  MAYBMS_ASSERT_OK(
      certain_str.CreateRelation("s", Schema({{"v", ValueType::kString}})));
  ASSERT_TRUE(
      InsertTuple(&certain_str, "s", {CellSpec::Certain(Value::String("x"))})
          .ok());
  EXPECT_EQ(ExpectedSum(certain_str, "s", "v").status().code(),
            StatusCode::kTypeMismatch);

  WsdDb orset_str;
  MAYBMS_ASSERT_OK(
      orset_str.CreateRelation("s", Schema({{"v", ValueType::kString}})));
  ASSERT_TRUE(InsertTuple(&orset_str, "s",
                          {CellSpec::OrSet({{Value::String("x"), 0.5},
                                            {Value::String("y"), 0.5}})})
                  .ok());
  EXPECT_EQ(ExpectedSum(orset_str, "s", "v").status().code(),
            StatusCode::kTypeMismatch);
}

TEST(ClusterEsumTest, SharedComponentTermsStayLinear) {
  // Two tuples whose values co-vary through one component: linearity of
  // expectation still sums per-tuple terms correctly.
  WsdDb db;
  MAYBMS_ASSERT_OK(db.CreateRelation("r", Schema({{"x", ValueType::kInt}})));
  auto t1 = InsertTuple(&db, "r", {CellSpec::Pending()});
  auto t2 = InsertTuple(&db, "r", {CellSpec::Pending()});
  ASSERT_TRUE(t1.ok() && t2.ok());
  ASSERT_TRUE(AddJointComponent(
                  &db, {{*t1, "x"}, {*t2, "x"}},
                  {{{Value::Int(1), Value::Int(2)}, 0.3},
                   {{Value::Int(5), Value::Int(5)}, 0.7}})
                  .ok());
  auto es = ExpectedSum(db, "r", "x");
  ASSERT_TRUE(es.ok());
  EXPECT_NEAR(*es, OracleExpectedSum(db, "r", 0), 1e-12);
}

TEST(ClusterConfTest, PossibleTuplesDropsZeroConfidence) {
  // A vector whose presence probability underflows the combine step
  // (1 - (1 - p) == 0 for p < 2^-53) appears in ConfTable with conf 0;
  // PossibleTuples must drop it.
  WsdDb db;
  MAYBMS_ASSERT_OK(db.CreateRelation("r", Schema({{"x", ValueType::kInt}})));
  ASSERT_TRUE(InsertTuple(&db, "r",
                          {CellSpec::OrSet({{Value::Int(1), 1e-20},
                                            {Value::Int(2), 1.0 - 1e-20}})})
                  .ok());
  auto table = ConfTable(db, "r");
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->NumRows(), 2u);
  EXPECT_EQ(table->row(1).back().as_double(), 0.0);
  auto possible = PossibleTuples(db, "r");
  ASSERT_TRUE(possible.ok());
  ASSERT_EQ(possible->NumRows(), 1u);
  EXPECT_EQ(possible->row(0)[0], Value::Int(2));
  // The conf column is kept for possible answers.
  EXPECT_EQ(possible->schema().size(), 2u);
}

TEST(ClusterParallelTest, ParallelMatchesSerial) {
  // Many independent clusters; 4 threads must produce bit-identical
  // cluster marginals and the same (deterministically combined) table.
  WsdDb db = IndependentOrSets(40, 0.3);
  ConfidenceOptions serial;
  serial.num_threads = 1;
  ConfidenceOptions parallel;
  parallel.num_threads = 4;
  auto a = ConfTable(db, "r", serial);
  auto b = ConfTable(db, "r", parallel);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->NumRows(), b->NumRows());
  for (size_t i = 0; i < a->NumRows(); ++i) {
    EXPECT_EQ(TupleCompare(a->row(i), b->row(i)), 0) << "row " << i;
  }
  auto ec_a = ExpectedCount(db, "r", serial);
  auto ec_b = ExpectedCount(db, "r", parallel);
  ASSERT_TRUE(ec_a.ok() && ec_b.ok());
  EXPECT_EQ(*ec_a, *ec_b);
  auto es_a = ExpectedSum(db, "r", "x", serial);
  auto es_b = ExpectedSum(db, "r", "x", parallel);
  ASSERT_TRUE(es_a.ok() && es_b.ok());
  EXPECT_EQ(*es_a, *es_b);
}

TEST(ClusterParallelTest, ParallelForCoversAllIndices) {
  std::vector<int> hits(1000, 0);
  ParallelFor(4, hits.size(), [&](size_t i) { hits[i]++; });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], 1) << i;
  // Nested calls run inline instead of deadlocking.
  std::vector<int> nested(64, 0);
  ParallelFor(4, 8, [&](size_t outer) {
    ParallelFor(4, 8, [&](size_t inner) { nested[outer * 8 + inner]++; });
  });
  for (size_t i = 0; i < nested.size(); ++i) EXPECT_EQ(nested[i], 1) << i;
}

TEST(ClusterParallelTest, ExplicitPoolRunsEveryIndexExactlyOnce) {
  // A pool with real workers (the shared pool may have none on a 1-core
  // machine): repeated back-to-back loops stress the generation
  // handshake — a stale worker crossing loop boundaries would double- or
  // zero-count indices.
  ThreadPool pool(3);
  std::vector<int> hits(5000, 0);
  for (int round = 1; round <= 5; ++round) {
    pool.ParallelFor(hits.size(), 4, [&](size_t i) { hits[i]++; });
    for (size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i], round) << "index " << i << " round " << round;
    }
  }
  // Tiny loops (fewer indices than workers) complete too.
  std::vector<int> tiny(2, 0);
  pool.ParallelFor(tiny.size(), 4, [&](size_t i) { tiny[i]++; });
  EXPECT_EQ(tiny[0], 1);
  EXPECT_EQ(tiny[1], 1);
}

class ClusterDifferential : public ::testing::TestWithParam<int> {};

TEST_P(ClusterDifferential, FactorizedMatchesNaiveOnRandomWsd) {
  // Random WSDs with random component merges sprinkled in (merged
  // products are exactly what local factorization undoes): the
  // factorized and naive enumerations must agree row-for-row, and ESUM
  // must match too.
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 5);
  RandomWsdOptions opt;
  opt.p_uncertain_cell = 0.5;
  opt.p_joint = 0.3;
  opt.max_tuples = 5;
  opt.allow_strings = false;
  WsdDb db = RandomWsd(&rng, opt);
  std::vector<ComponentId> live = db.LiveComponents();
  if (live.size() >= 2 && rng.NextBernoulli(0.8)) {
    // Merge a random subset of components into one product component.
    std::vector<ComponentId> group;
    for (ComponentId id : live) {
      if (rng.NextBernoulli(0.6)) group.push_back(id);
    }
    if (group.size() >= 2) {
      auto merged = db.MergeComponents(group, 1u << 20);
      ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    }
  }

  ConfidenceOptions factorized;
  ConfidenceOptions naive;
  naive.factorize_clusters = false;
  auto a = ConfTable(db, "R0", factorized);
  auto b = ConfTable(db, "R0", naive);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  auto ca = TableConf(*a);
  auto cb = TableConf(*b);
  ASSERT_EQ(ca.size(), cb.size());
  for (const auto& [key, p] : ca) {
    ASSERT_TRUE(cb.count(key)) << key;
    EXPECT_NEAR(p, cb[key], 1e-9) << key;
  }

  auto es_a = ExpectedSum(db, "R0", "a0", factorized);
  auto es_b = ExpectedSum(db, "R0", "a0", naive);
  ASSERT_TRUE(es_a.ok() && es_b.ok());
  EXPECT_NEAR(*es_a, *es_b, 1e-9);
  EXPECT_NEAR(*es_a, OracleExpectedSum(db, "R0", 0), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterDifferential, ::testing::Range(0, 20));

}  // namespace
}  // namespace maybms
