// Differential fuzzer for incremental confidence maintenance: random
// DeltaBatch sequences interleaved with confidence queries, asserting
// after every batch that
//
//   - the incremental path (session's MaterializedConf cache, which
//     only re-scans delta-dirtied clusters) is BIT-IDENTICAL to a
//     scratch recompute with no cache — for CONF, APPROX CONF (exact
//     phase), ECOUNT and ESUM;
//   - serialize → deserialize → apply reproduces the exact same
//     database state as applying the original batch (the WAL-replay
//     contract), including after mid-batch failures.
//
// MAYBMS_DELTA_FUZZ_ITERS raises the iteration budget for the long
// `ctest -L fuzz` entry.
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/approx_conf.h"
#include "core/confidence.h"
#include "core/delta.h"
#include "core/materialized_conf.h"
#include "sql/session.h"
#include "tests/test_util.h"

namespace maybms {
namespace {

using testing_util::DbsExactlyEqual;
using testing_util::RandomWsd;
using testing_util::RandomWsdOptions;

size_t IterationBudget(const char* env_var, size_t default_iters) {
  const char* env = getenv(env_var);
  if (!env) return default_iters;
  long v = strtol(env, nullptr, 10);
  return v > 0 ? static_cast<size_t>(v) : default_iters;
}

/// One random delta op against the session's current state. Ops may be
/// invalid (evicting a missing relation, reweighting with bad mass) —
/// deliberately: failed batches must fail identically on both replicas
/// and leave identical states behind.
void AddRandomOp(Rng* rng, const WsdDb& db, DeltaBatch* batch) {
  const std::vector<std::string> rels = db.RelationNames();
  const std::string rel = rels[rng->NextBelow(rels.size())];
  const WsdRelation* r = db.GetRelation(rel).value();
  const uint64_t kind = rng->NextBelow(10);
  if (kind < 5) {  // insert a fresh row, ~half its cells or-sets
    std::vector<CellSpec> cells;
    for (size_t c = 0; c < r->schema().size(); ++c) {
      const bool is_str = r->schema().attr(c).type == ValueType::kString;
      auto value = [&] {
        int v = static_cast<int>(rng->NextBelow(4));
        return is_str ? Value::String(std::string(1, char('a' + v)))
                      : Value::Int(v);
      };
      if (rng->NextBernoulli(0.5)) {
        size_t k = 2 + rng->NextBelow(2);
        std::vector<double> probs = rng->NextProbabilities(static_cast<int>(k));
        std::vector<Alternative> alts;
        for (size_t a = 0; a < k; ++a) alts.push_back({value(), probs[a]});
        cells.push_back(CellSpec::OrSet(std::move(alts)));
      } else {
        cells.push_back(CellSpec::Certain(value()));
      }
    }
    batch->Insert(rel, std::move(cells));
  } else if (kind < 7) {  // retire the oldest row(s)
    batch->EvictOldest(rel, 1 + rng->NextBelow(2));
  } else if (kind < 9) {  // reweight a live component
    const std::vector<ComponentId> live = db.LiveComponents();
    if (live.empty()) {
      batch->EvictOldest(rel, 1);
      return;
    }
    const ComponentId cid = live[rng->NextBelow(live.size())];
    const size_t rows = db.component(cid).NumRows();
    batch->Reweight(cid, rng->NextProbabilities(static_cast<int>(rows)));
  } else {  // repair on the first column (fails when it is uncertain)
    batch->RepairKey(rel, {r->schema().attr(0).name});
  }
}

TEST(DeltaFuzz, IncrementalEqualsScratchBitForBit) {
  const size_t iters = IterationBudget("MAYBMS_DELTA_FUZZ_ITERS", 25);
  Rng rng(20260808);
  uint64_t cache_activity = 0;
  for (size_t iter = 0; iter < iters; ++iter) {
    RandomWsdOptions opt;
    opt.num_relations = 1 + rng.NextBelow(2);
    opt.max_tuples = 4;
    sql::Session session(RandomWsd(&rng, opt));
    ASSERT_TRUE(session.options().materialize_conf);
    MaterializedConf* cache = session.conf_cache();
    ASSERT_NE(cache, nullptr);

    // The shadow replica sees every batch through its WAL encoding.
    WsdDb shadow(session.db());

    const size_t batches = 3 + rng.NextBelow(4);
    for (size_t b = 0; b < batches; ++b) {
      DeltaBatch batch;
      const size_t ops = 1 + rng.NextBelow(3);
      for (size_t o = 0; o < ops; ++o) {
        AddRandomOp(&rng, session.db(), &batch);
      }

      auto direct = session.ApplyDelta(batch);
      auto payload = batch.Serialize();
      MAYBMS_ASSERT_OK(payload.status());
      auto decoded = DeltaBatch::Deserialize(*payload);
      MAYBMS_ASSERT_OK(decoded.status());
      auto replayed = shadow.ApplyDelta(*decoded);

      // Identical outcome — success or failure — and identical state,
      // including the half-applied prefix of a failed batch.
      ASSERT_EQ(direct.ok(), replayed.ok())
          << "iter " << iter << " batch " << b << ":\n"
          << batch.ToString() << direct.status().ToString() << " vs "
          << replayed.status().ToString();
      ASSERT_TRUE(DbsExactlyEqual(session.db(), shadow))
          << "iter " << iter << " batch " << b << " diverged:\n"
          << batch.ToString();
      if (direct.ok()) {
        ASSERT_EQ(direct->tuples_inserted, replayed->tuples_inserted);
        ASSERT_EQ(direct->dirty_components, replayed->dirty_components);
        ASSERT_EQ(direct->removed_components, replayed->removed_components);
      }

      // Incremental vs scratch, bit for bit, on every relation.
      for (const std::string& rel : session.db().RelationNames()) {
        ConfidenceOptions incr;
        incr.cache = cache;
        ConfidenceOptions scratch;  // cache = nullptr

        auto conf_incr = ConfTable(session.db(), rel, incr);
        auto conf_scratch = ConfTable(session.db(), rel, scratch);
        ASSERT_EQ(conf_incr.ok(), conf_scratch.ok());
        if (conf_incr.ok()) {
          ASSERT_EQ(conf_incr->ToString(), conf_scratch->ToString())
              << "CONF diverged on " << rel << " at iter " << iter;
        }

        auto ecount_incr = ExpectedCount(session.db(), rel, incr);
        auto ecount_scratch = ExpectedCount(session.db(), rel, scratch);
        ASSERT_EQ(ecount_incr.ok(), ecount_scratch.ok());
        if (ecount_incr.ok()) {
          ASSERT_EQ(*ecount_incr, *ecount_scratch)
              << "ECOUNT diverged on " << rel << " at iter " << iter;
        }

        const WsdRelation* wr = session.db().GetRelation(rel).value();
        for (size_t c = 0; c < wr->schema().size(); ++c) {
          if (wr->schema().attr(c).type != ValueType::kInt) continue;
          const std::string& col = wr->schema().attr(c).name;
          auto esum_incr = ExpectedSum(session.db(), rel, col, incr);
          auto esum_scratch = ExpectedSum(session.db(), rel, col, scratch);
          ASSERT_EQ(esum_incr.ok(), esum_scratch.ok());
          if (esum_incr.ok()) {
            ASSERT_EQ(*esum_incr, *esum_scratch)
                << "ESUM(" << col << ") diverged on " << rel;
          }
          break;
        }

        ApproxOptions approx_incr;
        approx_incr.seed = 7;
        approx_incr.cache = cache;
        ApproxOptions approx_scratch;
        approx_scratch.seed = 7;
        auto ap_incr = ApproxConfTable(session.db(), rel, approx_incr);
        auto ap_scratch = ApproxConfTable(session.db(), rel, approx_scratch);
        ASSERT_EQ(ap_incr.ok(), ap_scratch.ok());
        if (ap_incr.ok()) {
          ASSERT_EQ(ap_incr->ToString(), ap_scratch->ToString())
              << "APPROX CONF diverged on " << rel << " at iter " << iter;
        }
      }
    }
    // Not every generated db admits a successful confidence query
    // (some random states make every query error), so the exercised-ness
    // check is aggregate, not per-iteration.
    cache_activity += cache->GetStats().hits + cache->GetStats().misses;
  }
  // The cache must actually be exercised for the comparison to mean
  // anything; re-issued queries over unchanged relations hit.
  EXPECT_GT(cache_activity, 0u);
}

}  // namespace
}  // namespace maybms
