// Tests for the statistics layer of the columnar store: row counts and
// per-column/per-slot distinct counts cached on Relation and Component,
// exposed through the catalog, invalidated on mutation — the inputs of
// the plan optimizer's cost model.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/component.h"
#include "storage/catalog.h"
#include "storage/csv.h"
#include "storage/relation.h"
#include "tests/test_util.h"

namespace maybms {
namespace {

Relation SampleRelation() {
  Relation rel("t", Schema({{"a", ValueType::kInt},
                            {"b", ValueType::kString},
                            {"c", ValueType::kDouble}}));
  rel.AppendUnchecked({Value::Int(1), Value::String("x"), Value::Double(0.5)});
  rel.AppendUnchecked({Value::Int(1), Value::String("y"), Value::Double(1.0)});
  rel.AppendUnchecked({Value::Int(2), Value::String("x"), Value::Null()});
  rel.AppendUnchecked({Value::Int(3), Value::String("x"), Value::Double(0.5)});
  return rel;
}

TEST(RelationStatsTest, RowAndDistinctCounts) {
  Relation rel = SampleRelation();
  EXPECT_FALSE(rel.HasCachedStats());
  const RelationStats& s = rel.GetStats();
  EXPECT_EQ(s.rows, 4u);
  ASSERT_EQ(s.distinct.size(), 3u);
  EXPECT_EQ(s.distinct[0], 3u);  // 1, 2, 3
  EXPECT_EQ(s.distinct[1], 2u);  // x, y
  EXPECT_EQ(s.distinct[2], 3u);  // 0.5, 1.0, NULL
  EXPECT_TRUE(rel.HasCachedStats());
}

TEST(RelationStatsTest, MixedNumericsCollapse) {
  Relation rel("t", Schema({{"a", ValueType::kDouble}}));
  rel.AppendUnchecked({Value::Int(1)});
  rel.AppendUnchecked({Value::Double(1.0)});  // == Int(1) on the real line
  rel.AppendUnchecked({Value::Double(-0.0)});
  rel.AppendUnchecked({Value::Double(0.0)});  // ±0 collapse
  EXPECT_EQ(rel.GetStats().distinct[0], 2u);
}

TEST(RelationStatsTest, MutationInvalidates) {
  Relation rel = SampleRelation();
  (void)rel.GetStats();
  ASSERT_TRUE(rel.HasCachedStats());
  rel.AppendUnchecked({Value::Int(9), Value::String("z"), Value::Double(2.0)});
  EXPECT_FALSE(rel.HasCachedStats());
  EXPECT_EQ(rel.GetStats().rows, 5u);
  EXPECT_EQ(rel.GetStats().distinct[0], 4u);

  (void)rel.GetStats();
  MAYBMS_ASSERT_OK(
      rel.Append({Value::Int(9), Value::String("w"), Value::Double(2.0)}));
  EXPECT_FALSE(rel.HasCachedStats());
  EXPECT_EQ(rel.GetStats().rows, 6u);

  // In-place row mutation invalidates too.
  rel.mutable_row(0)[0] = Value::Int(100);
  EXPECT_FALSE(rel.HasCachedStats());
  EXPECT_EQ(rel.GetStats().distinct[0], 5u);  // 100, 1, 2, 3, 9

  rel.Clear();
  EXPECT_FALSE(rel.HasCachedStats());
  EXPECT_EQ(rel.GetStats().rows, 0u);
  EXPECT_EQ(rel.GetStats().distinct[0], 0u);
}

TEST(RelationStatsTest, SortKeepsStatsValid) {
  Relation rel = SampleRelation();
  const RelationStats& before = rel.GetStats();
  uint64_t d0 = before.distinct[0];
  rel.SortRows();  // a permutation: stats unchanged
  EXPECT_EQ(rel.GetStats().rows, 4u);
  EXPECT_EQ(rel.GetStats().distinct[0], d0);
}

TEST(RelationStatsTest, CorrectAfterCsvLoad) {
  Relation rel = SampleRelation();
  std::string path = ::testing::TempDir() + "/maybms_stats_test.csv";
  MAYBMS_ASSERT_OK(WriteCsv(rel, path));
  auto loaded = ReadCsv(path, "t", rel.schema());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::remove(path.c_str());
  const RelationStats& s = loaded->GetStats();
  EXPECT_EQ(s.rows, 4u);
  EXPECT_EQ(s.distinct[0], 3u);
  EXPECT_EQ(s.distinct[1], 2u);
  EXPECT_EQ(s.distinct[2], 3u);  // NULL round-trips as empty field
}

TEST(RelationStatsTest, ExposedThroughCatalog) {
  Catalog catalog;
  MAYBMS_ASSERT_OK(catalog.Create(SampleRelation()));
  auto stats = catalog.GetStats("t");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ((*stats)->rows, 4u);
  EXPECT_EQ((*stats)->distinct[1], 2u);
  EXPECT_FALSE(catalog.GetStats("missing").ok());
}

// --- Component statistics --------------------------------------------------

Component SampleComponent() {
  Component c;
  c.AddSlot({1, "f1"}, Value::Null());
  c.AddSlot({1, "f2"}, Value::Null());
  EXPECT_TRUE(c.AddRow({{Value::Int(1), Value::String("x")}, 0.25}).ok());
  EXPECT_TRUE(c.AddRow({{Value::Int(1), Value::String("y")}, 0.25}).ok());
  EXPECT_TRUE(c.AddRow({{Value::Int(2), Value::String("x")}, 0.5}).ok());
  return c;
}

TEST(ComponentStatsTest, RowAndDistinctCounts) {
  Component c = SampleComponent();
  EXPECT_FALSE(c.HasCachedStats());
  const ComponentStats& s = c.GetStats();
  EXPECT_EQ(s.rows, 3u);
  ASSERT_EQ(s.distinct.size(), 2u);
  EXPECT_EQ(s.distinct[0], 2u);  // 1, 2
  EXPECT_EQ(s.distinct[1], 2u);  // x, y
  EXPECT_TRUE(c.HasCachedStats());
}

TEST(ComponentStatsTest, CorrectAfterProduct) {
  Component a = SampleComponent();
  Component b;
  b.AddSlot({2, "g"}, Value::Null());
  EXPECT_TRUE(b.AddRow({{Value::Int(7)}, 0.5}).ok());
  EXPECT_TRUE(b.AddRow({{Value::Int(8)}, 0.5}).ok());
  auto prod = Component::Product(a, b, 1u << 20);
  ASSERT_TRUE(prod.ok()) << prod.status().ToString();
  const ComponentStats& s = prod->GetStats();
  EXPECT_EQ(s.rows, 6u);
  ASSERT_EQ(s.distinct.size(), 3u);
  EXPECT_EQ(s.distinct[0], 2u);
  EXPECT_EQ(s.distinct[1], 2u);
  EXPECT_EQ(s.distinct[2], 2u);
}

TEST(ComponentStatsTest, CorrectAfterDedupRows) {
  Component c = SampleComponent();
  // Add an exact duplicate of row 0; dedup must merge it and stats must
  // reflect the post-dedup state.
  EXPECT_TRUE(c.AddRow({{Value::Int(1), Value::String("x")}, 0.0}).ok());
  (void)c.GetStats();
  ASSERT_TRUE(c.HasCachedStats());
  c.DedupRows();
  EXPECT_FALSE(c.HasCachedStats());
  const ComponentStats& s = c.GetStats();
  EXPECT_EQ(s.rows, 3u);
  EXPECT_EQ(s.distinct[0], 2u);
  EXPECT_EQ(s.distinct[1], 2u);
}

TEST(ComponentStatsTest, CorrectAfterKeepRows) {
  Component c = SampleComponent();
  (void)c.GetStats();
  c.KeepRows({0u, 1u});  // drop the Int(2) row
  EXPECT_FALSE(c.HasCachedStats());
  const ComponentStats& s = c.GetStats();
  EXPECT_EQ(s.rows, 2u);
  EXPECT_EQ(s.distinct[0], 1u);  // only Int(1) left
  EXPECT_EQ(s.distinct[1], 2u);
}

TEST(ComponentStatsTest, CorrectAfterDropSlots) {
  Component c = SampleComponent();
  (void)c.GetStats();
  c.DropSlots({1u});  // marginalize the string slot; rows dedup to 2
  EXPECT_FALSE(c.HasCachedStats());
  const ComponentStats& s = c.GetStats();
  EXPECT_EQ(s.rows, 2u);
  ASSERT_EQ(s.distinct.size(), 1u);
  EXPECT_EQ(s.distinct[0], 2u);
}

TEST(ComponentStatsTest, CellMutationInvalidates) {
  Component c = SampleComponent();
  (void)c.GetStats();
  c.SetValue(0, 0, Value::Int(3));
  EXPECT_FALSE(c.HasCachedStats());
  EXPECT_EQ(c.GetStats().distinct[0], 3u);  // 3, 1, 2
  c.SetPacked(1, 0, PackedValue::Int(3));
  EXPECT_FALSE(c.HasCachedStats());
  EXPECT_EQ(c.GetStats().distinct[0], 2u);  // 3, 2
}

TEST(ComponentStatsTest, ProbabilityOnlyUpdatesKeepCache) {
  Component c = SampleComponent();
  (void)c.GetStats();
  c.set_prob(0, 0.3);
  c.set_prob(1, 0.2);
  EXPECT_TRUE(c.HasCachedStats());  // value stats unaffected
  MAYBMS_ASSERT_OK(c.Renormalize());
  EXPECT_TRUE(c.HasCachedStats());
}

}  // namespace
}  // namespace maybms
