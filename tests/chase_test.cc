// Tests for constraint enforcement (cleaning by conditioning): domain
// constraints, conditional domains, FDs, keys — checked against Bayes
// conditioning on the enumeration oracle.
#include <gtest/gtest.h>

#include <map>

#include "chase/enforce.h"
#include "core/builder.h"
#include "ra/executor.h"
#include "tests/test_util.h"
#include "worlds/enumerate.h"

namespace maybms {
namespace {

using testing_util::ExpectDistEq;
using testing_util::RandomWsd;
using testing_util::RandomWsdOptions;
using testing_util::RelationDistribution;

ExprPtr Col(const std::string& n) { return Expr::Column(n); }
ExprPtr IntLit(int64_t v) { return Expr::Const(Value::Int(v)); }

// Oracle: condition the enumerated world distribution on the constraint.
// `violates(catalog)` decides per world.
std::map<std::string, double> OracleConditioned(
    const WsdDb& db, const std::string& rel,
    const std::function<bool(const Catalog&)>& violates) {
  auto worlds = EnumerateWorlds(db, 1u << 16);
  EXPECT_TRUE(worlds.ok());
  std::map<std::string, double> dist;
  double kept = 0;
  for (const auto& w : *worlds) {
    if (violates(w.catalog)) continue;
    kept += w.prob;
    dist[testing_util::CanonicalBag(*w.catalog.Get(rel).value())] += w.prob;
  }
  EXPECT_GT(kept, 0.0);
  for (auto& [key, p] : dist) p /= kept;
  return dist;
}

WsdDb AgeDb() {
  WsdDb db;
  Status st = db.CreateRelation("p", Schema({{"id", ValueType::kInt},
                                             {"age", ValueType::kInt},
                                             {"marst", ValueType::kInt}}));
  EXPECT_TRUE(st.ok());
  // Tuple 1: age uncertain {30: .6, -5: .4} — negative age is invalid.
  EXPECT_TRUE(InsertTuple(&db, "p",
                          {CellSpec::Certain(Value::Int(1)),
                           CellSpec::OrSet({{Value::Int(30), 0.6},
                                            {Value::Int(-5), 0.4}}),
                           CellSpec::Certain(Value::Int(0))})
                  .ok());
  // Tuple 2: marst uncertain {married(1): .5, single(0): .5}, age 12.
  EXPECT_TRUE(InsertTuple(&db, "p",
                          {CellSpec::Certain(Value::Int(2)),
                           CellSpec::Certain(Value::Int(12)),
                           CellSpec::OrSet({{Value::Int(1), 0.5},
                                            {Value::Int(0), 0.5}})})
                  .ok());
  return db;
}

TEST(ChaseTest, DomainConstraintConditions) {
  WsdDb db = AgeDb();
  Constraint c = Constraint::Domain(
      "p", Expr::Compare(CompareOp::kGe, Col("age"), IntLit(0)));
  auto expected = OracleConditioned(db, "p", [](const Catalog& cat) {
    for (const auto& row : cat.Get("p").value()->rows()) {
      if (row[1].as_int() < 0) return true;
    }
    return false;
  });
  auto stats = Enforce(&db, c);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NEAR(stats->removed_mass, 0.4, 1e-12);
  MAYBMS_ASSERT_OK(db.CheckInvariants());
  auto worlds = EnumerateWorlds(db, 1u << 16);
  ASSERT_TRUE(worlds.ok());
  ExpectDistEq(expected, RelationDistribution(*worlds, "p"));
  // Age 30 is now certain; normalization inlined it.
  EXPECT_TRUE(
      db.GetRelation("p").value()->tuple(0).cells[1].is_certain());
}

TEST(ChaseTest, ConditionalDomainConstraint) {
  WsdDb db = AgeDb();
  // married => age >= 15; tuple 2 is 12 years old with married in 50% of
  // worlds, so half the mass goes away.
  Constraint c = Constraint::Domain(
      "p",
      Expr::Or(Expr::Not(Expr::Compare(CompareOp::kEq, Col("marst"),
                                       IntLit(1))),
               Expr::Compare(CompareOp::kGe, Col("age"), IntLit(15))),
      "married-adult");
  auto expected = OracleConditioned(db, "p", [](const Catalog& cat) {
    for (const auto& row : cat.Get("p").value()->rows()) {
      if (row[2].as_int() == 1 && row[1].as_int() < 15) return true;
    }
    return false;
  });
  auto stats = Enforce(&db, c);
  ASSERT_TRUE(stats.ok());
  EXPECT_NEAR(stats->removed_mass, 0.5, 1e-12);
  auto worlds = EnumerateWorlds(db, 1u << 16);
  ASSERT_TRUE(worlds.ok());
  ExpectDistEq(expected, RelationDistribution(*worlds, "p"));
}

TEST(ChaseTest, CertainViolationIsInconsistent) {
  WsdDb db = AgeDb();
  Constraint c = Constraint::Domain(
      "p", Expr::Compare(CompareOp::kGe, Col("age"), IntLit(100)));
  EXPECT_EQ(Enforce(&db, c).status().code(), StatusCode::kInconsistent);
}

TEST(ChaseTest, FdEnforcement) {
  WsdDb db;
  MAYBMS_ASSERT_OK(db.CreateRelation("r", Schema({{"city", ValueType::kInt},
                                                  {"state", ValueType::kInt}})));
  // t1: city 7, state uncertain {1: .5, 2: .5}; t2: city 7, state 1.
  ASSERT_TRUE(InsertTuple(&db, "r",
                          {CellSpec::Certain(Value::Int(7)),
                           CellSpec::OrSet({{Value::Int(1), 0.5},
                                            {Value::Int(2), 0.5}})})
                  .ok());
  ASSERT_TRUE(InsertTuple(&db, "r",
                          {CellSpec::Certain(Value::Int(7)),
                           CellSpec::Certain(Value::Int(1))})
                  .ok());
  Constraint c = Constraint::FunctionalDependency("r", {"city"}, {"state"});
  auto expected = OracleConditioned(db, "r", [](const Catalog& cat) {
    const Relation& r = *cat.Get("r").value();
    for (size_t i = 0; i < r.NumRows(); ++i) {
      for (size_t j = i + 1; j < r.NumRows(); ++j) {
        if (r.row(i)[0] == r.row(j)[0] && !(r.row(i)[1] == r.row(j)[1])) {
          return true;
        }
      }
    }
    return false;
  });
  auto stats = Enforce(&db, c);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NEAR(stats->removed_mass, 0.5, 1e-12);
  EXPECT_EQ(stats->pairs_checked, 1u);
  auto worlds = EnumerateWorlds(db, 1u << 16);
  ASSERT_TRUE(worlds.ok());
  ExpectDistEq(expected, RelationDistribution(*worlds, "r"));
}

TEST(ChaseTest, KeyEnforcement) {
  WsdDb db;
  MAYBMS_ASSERT_OK(db.CreateRelation("r", Schema({{"id", ValueType::kInt},
                                                  {"v", ValueType::kInt}})));
  // Key violation possible when t2.id resolves to 1.
  ASSERT_TRUE(InsertTuple(&db, "r",
                          {CellSpec::Certain(Value::Int(1)),
                           CellSpec::Certain(Value::Int(10))})
                  .ok());
  ASSERT_TRUE(InsertTuple(&db, "r",
                          {CellSpec::OrSet({{Value::Int(1), 0.3},
                                            {Value::Int(2), 0.7}}),
                           CellSpec::Certain(Value::Int(20))})
                  .ok());
  Constraint c = Constraint::Key("r", {"id"});
  auto stats = Enforce(&db, c);
  ASSERT_TRUE(stats.ok());
  EXPECT_NEAR(stats->removed_mass, 0.3, 1e-12);
  // After conditioning, t2.id = 2 with certainty.
  const WsdRelation* rel = db.GetRelation("r").value();
  ASSERT_TRUE(rel->tuple(1).cells[0].is_certain());
  EXPECT_EQ(rel->tuple(1).cells[0].value(), Value::Int(2));
}

TEST(ChaseTest, CertainKeyViolationInconsistent) {
  WsdDb db;
  MAYBMS_ASSERT_OK(db.CreateRelation("r", Schema({{"id", ValueType::kInt}})));
  ASSERT_TRUE(
      InsertTuple(&db, "r", {CellSpec::Certain(Value::Int(1))}).ok());
  ASSERT_TRUE(
      InsertTuple(&db, "r", {CellSpec::Certain(Value::Int(1))}).ok());
  EXPECT_EQ(Enforce(&db, Constraint::Key("r", {"id"})).status().code(),
            StatusCode::kInconsistent);
}

TEST(ChaseTest, ViolationProbabilityDoesNotMutate) {
  WsdDb db = AgeDb();
  Constraint c = Constraint::Domain(
      "p", Expr::Compare(CompareOp::kGe, Col("age"), IntLit(0)));
  auto p = ViolationProbability(db, c);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 0.4, 1e-12);
  // db unchanged: age alternative -5 still present.
  auto count = db.WorldCountIfSmall();
  ASSERT_TRUE(count.has_value());
  EXPECT_EQ(*count, 4u);
}

TEST(ChaseTest, EnforceAllAccumulates) {
  WsdDb db = AgeDb();
  std::vector<Constraint> cs = {
      Constraint::Domain("p",
                         Expr::Compare(CompareOp::kGe, Col("age"), IntLit(0))),
      Constraint::Domain(
          "p",
          Expr::Or(Expr::Not(Expr::Compare(CompareOp::kEq, Col("marst"),
                                           IntLit(1))),
                   Expr::Compare(CompareOp::kGe, Col("age"), IntLit(15)))),
  };
  auto stats = EnforceAll(&db, cs);
  ASSERT_TRUE(stats.ok());
  // Independent violations: removed = 1 - 0.6*0.5 = 0.7.
  EXPECT_NEAR(stats->removed_mass, 0.7, 1e-12);
  MAYBMS_ASSERT_OK(db.CheckInvariants());
}

TEST(ChaseTest, FdOnCorrelatedComponentsMergesExactly) {
  // lhs equality depends on a joint component spanning both tuples.
  WsdDb db;
  MAYBMS_ASSERT_OK(db.CreateRelation("r", Schema({{"a", ValueType::kInt},
                                                  {"b", ValueType::kInt}})));
  auto t1 = InsertTuple(&db, "r", {CellSpec::Pending(),
                                   CellSpec::Certain(Value::Int(1))});
  auto t2 = InsertTuple(&db, "r", {CellSpec::Pending(),
                                   CellSpec::Certain(Value::Int(2))});
  ASSERT_TRUE(t1.ok() && t2.ok());
  // a-values correlated: equal in 40% of worlds.
  ASSERT_TRUE(AddJointComponent(&db, {{*t1, "a"}, {*t2, "a"}},
                                {{{Value::Int(5), Value::Int(5)}, 0.4},
                                 {{Value::Int(5), Value::Int(6)}, 0.6}})
                  .ok());
  Constraint c = Constraint::FunctionalDependency("r", {"a"}, {"b"});
  auto expected = OracleConditioned(db, "r", [](const Catalog& cat) {
    const Relation& r = *cat.Get("r").value();
    for (size_t i = 0; i < r.NumRows(); ++i) {
      for (size_t j = i + 1; j < r.NumRows(); ++j) {
        if (r.row(i)[0] == r.row(j)[0] && !(r.row(i)[1] == r.row(j)[1])) {
          return true;
        }
      }
    }
    return false;
  });
  auto stats = Enforce(&db, c);
  ASSERT_TRUE(stats.ok());
  EXPECT_NEAR(stats->removed_mass, 0.4, 1e-12);
  auto worlds = EnumerateWorlds(db, 1u << 16);
  ASSERT_TRUE(worlds.ok());
  ExpectDistEq(expected, RelationDistribution(*worlds, "r"));
}

class ChaseRandom : public ::testing::TestWithParam<int> {};

TEST_P(ChaseRandom, DomainConditioningMatchesOracle) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 1299709 + 31);
  RandomWsdOptions opt;
  opt.min_cols = 2;
  opt.max_cols = 3;
  opt.allow_strings = false;  // numeric constraint target
  opt.p_uncertain_cell = 0.5;
  WsdDb db = RandomWsd(&rng, opt);
  Constraint c = Constraint::Domain(
      "R0", Expr::Compare(CompareOp::kLe, Col("a0"), IntLit(2)));
  auto violation = ViolationProbability(db, c);
  ASSERT_TRUE(violation.ok());
  if (*violation >= 1.0 - 1e-12) {
    EXPECT_EQ(Enforce(&db, c).status().code(), StatusCode::kInconsistent);
    return;
  }
  auto expected = OracleConditioned(db, "R0", [](const Catalog& cat) {
    for (const auto& row : cat.Get("R0").value()->rows()) {
      if (row[0].as_int() > 2) return true;
    }
    return false;
  });
  auto stats = Enforce(&db, c);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  auto worlds = EnumerateWorlds(db, 1u << 16);
  ASSERT_TRUE(worlds.ok());
  ExpectDistEq(expected, RelationDistribution(*worlds, "R0"));
}

TEST_P(ChaseRandom, FdConditioningMatchesOracle) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7907 + 5);
  RandomWsdOptions opt;
  opt.min_cols = 2;
  opt.max_cols = 2;
  opt.allow_strings = false;
  opt.p_uncertain_cell = 0.45;
  opt.max_tuples = 4;
  opt.value_domain = 3;  // small domain: collisions are common
  WsdDb db = RandomWsd(&rng, opt);
  Constraint c = Constraint::FunctionalDependency("R0", {"a0"}, {"a1"});
  auto violation = ViolationProbability(db, c);
  ASSERT_TRUE(violation.ok()) << violation.status().ToString();
  if (*violation >= 1.0 - 1e-12) {
    EXPECT_EQ(Enforce(&db, c).status().code(), StatusCode::kInconsistent);
    return;
  }
  auto expected = OracleConditioned(db, "R0", [](const Catalog& cat) {
    const Relation& r = *cat.Get("R0").value();
    for (size_t i = 0; i < r.NumRows(); ++i) {
      for (size_t j = i + 1; j < r.NumRows(); ++j) {
        if (r.row(i)[0] == r.row(j)[0] && !(r.row(i)[1] == r.row(j)[1])) {
          return true;
        }
      }
    }
    return false;
  });
  auto stats = Enforce(&db, c);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  MAYBMS_ASSERT_OK(db.CheckInvariants());
  auto worlds = EnumerateWorlds(db, 1u << 16);
  ASSERT_TRUE(worlds.ok());
  ExpectDistEq(expected, RelationDistribution(*worlds, "R0"));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaseRandom, ::testing::Range(0, 25));

}  // namespace
}  // namespace maybms
