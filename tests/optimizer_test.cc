// Tests for the plan optimizer: predicate pushdown, product-to-join
// conversion, select merging, schema inference — and the property that
// optimization never changes the answer distribution.
#include <gtest/gtest.h>

#include "core/lifted_executor.h"
#include "sql/optimizer.h"
#include "tests/test_util.h"
#include "worlds/enumerate.h"

namespace maybms {
namespace sql {
namespace {

using testing_util::CanonicalBag;
using testing_util::ExpectDistEq;

ExprPtr Col(const std::string& n) { return Expr::Column(n); }
ExprPtr IntLit(int64_t v) { return Expr::Const(Value::Int(v)); }
ExprPtr Cmp(CompareOp op, ExprPtr l, ExprPtr r) {
  return Expr::Compare(op, std::move(l), std::move(r));
}

WsdDb TwoTableDb() {
  WsdDb db;
  Status st = db.CreateRelation(
      "r", Schema({{"a", ValueType::kInt}, {"b", ValueType::kInt}}));
  EXPECT_TRUE(st.ok());
  st = db.CreateRelation(
      "s", Schema({{"a", ValueType::kInt}, {"c", ValueType::kInt}}));
  EXPECT_TRUE(st.ok());
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(InsertTuple(&db, "r",
                            {CellSpec::Certain(Value::Int(i % 3)),
                             i == 0 ? CellSpec::UniformOrSet({Value::Int(1),
                                                              Value::Int(5)})
                                    : CellSpec::Certain(Value::Int(i))})
                    .ok());
    EXPECT_TRUE(InsertTuple(&db, "s",
                            {CellSpec::Certain(Value::Int(i % 3)),
                             CellSpec::Certain(Value::Int(10 - i))})
                    .ok());
  }
  return db;
}

TEST(OptimizerTest, CrossConjunctBecomesJoinOthersPushDown) {
  WsdDb db = TwoTableDb();
  auto pred = Expr::And(
      Expr::And(Cmp(CompareOp::kEq, Col("a"), Col("s.a")),
                Cmp(CompareOp::kGt, Col("b"), IntLit(0))),
      Cmp(CompareOp::kLt, Col("c"), IntLit(10)));
  auto plan = Plan::Select(Plan::Product(Plan::Scan("r"), Plan::Scan("s")),
                           pred);
  auto optimized = Optimize(plan, db);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  // Root is a Join whose two children are Selects over Scans.
  ASSERT_EQ((*optimized)->kind(), PlanKind::kJoin);
  EXPECT_EQ((*optimized)->left()->kind(), PlanKind::kSelect);
  EXPECT_EQ((*optimized)->right()->kind(), PlanKind::kSelect);
  EXPECT_EQ((*optimized)->left()->input()->kind(), PlanKind::kScan);
}

TEST(OptimizerTest, LeftOnlyPredicateLeavesNoJoinPredicate) {
  WsdDb db = TwoTableDb();
  auto plan = Plan::Select(Plan::Product(Plan::Scan("r"), Plan::Scan("s")),
                           Cmp(CompareOp::kGt, Col("b"), IntLit(1)));
  auto optimized = Optimize(plan, db);
  ASSERT_TRUE(optimized.ok());
  ASSERT_EQ((*optimized)->kind(), PlanKind::kProduct);
  EXPECT_EQ((*optimized)->left()->kind(), PlanKind::kSelect);
  EXPECT_EQ((*optimized)->right()->kind(), PlanKind::kScan);
}

TEST(OptimizerTest, AdjacentSelectsMerge) {
  WsdDb db = TwoTableDb();
  auto plan = Plan::Select(
      Plan::Select(Plan::Scan("r"), Cmp(CompareOp::kGt, Col("b"), IntLit(0))),
      Cmp(CompareOp::kLt, Col("a"), IntLit(2)));
  auto optimized = Optimize(plan, db);
  ASSERT_TRUE(optimized.ok());
  ASSERT_EQ((*optimized)->kind(), PlanKind::kSelect);
  EXPECT_EQ((*optimized)->input()->kind(), PlanKind::kScan);
}

TEST(OptimizerTest, PushThroughUnion) {
  WsdDb db = TwoTableDb();
  auto plan = Plan::Select(Plan::Union(Plan::Scan("r"), Plan::Scan("r")),
                           Cmp(CompareOp::kGt, Col("b"), IntLit(1)));
  auto optimized = Optimize(plan, db);
  ASSERT_TRUE(optimized.ok());
  ASSERT_EQ((*optimized)->kind(), PlanKind::kUnion);
  EXPECT_EQ((*optimized)->left()->kind(), PlanKind::kSelect);
  EXPECT_EQ((*optimized)->right()->kind(), PlanKind::kSelect);
}

TEST(OptimizerTest, PlanSchemaMatchesExecution) {
  WsdDb db = TwoTableDb();
  auto plan = Plan::Project(
      Plan::Select(Plan::Product(Plan::Scan("r"), Plan::Scan("s")),
                   Cmp(CompareOp::kEq, Col("a"), Col("s.a"))),
      {{Col("b"), "b"}, {Col("c"), "c"}});
  auto schema = PlanSchema(plan, db);
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  ASSERT_EQ(schema->size(), 2u);
  EXPECT_EQ(schema->attr(0).name, "b");
  EXPECT_EQ(schema->attr(1).name, "c");
  auto result = ExecuteLifted(plan, db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->GetRelation("result").value()->schema().size(), 2u);
}

// Property: optimization preserves the answer distribution exactly.
class OptimizerEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(OptimizerEquivalence, OptimizedPlanSameDistribution) {
  WsdDb db = TwoTableDb();
  std::vector<PlanPtr> plans;
  plans.push_back(Plan::Select(
      Plan::Product(Plan::Scan("r"), Plan::Scan("s")),
      Expr::And(Cmp(CompareOp::kEq, Col("a"), Col("s.a")),
                Cmp(CompareOp::kGt, Col("b"), IntLit(0)))));
  plans.push_back(Plan::Select(
      Plan::Product(Plan::Scan("r"), Plan::Scan("s")),
      Expr::Or(Cmp(CompareOp::kGt, Col("b"), IntLit(2)),
               Cmp(CompareOp::kLt, Col("c"), IntLit(8)))));
  plans.push_back(Plan::Project(
      Plan::Select(Plan::Select(Plan::Scan("r"),
                                Cmp(CompareOp::kGe, Col("a"), IntLit(0))),
                   Cmp(CompareOp::kGt, Col("b"), IntLit(0))),
      {{Col("b"), "b"}}));
  const PlanPtr& plan = plans[static_cast<size_t>(GetParam()) % plans.size()];

  auto raw = ExecuteLifted(plan, db);
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  auto optimized_plan = Optimize(plan, db);
  ASSERT_TRUE(optimized_plan.ok());
  auto opt = ExecuteLifted(*optimized_plan, db);
  ASSERT_TRUE(opt.ok()) << opt.status().ToString();

  auto wa = EnumerateWorlds(*raw, 1u << 14);
  auto wb = EnumerateWorlds(*opt, 1u << 14);
  ASSERT_TRUE(wa.ok() && wb.ok());
  ExpectDistEq(testing_util::RelationDistribution(*wa, "result"),
               testing_util::RelationDistribution(*wb, "result"));
}

INSTANTIATE_TEST_SUITE_P(Plans, OptimizerEquivalence, ::testing::Range(0, 3));

}  // namespace
}  // namespace sql
}  // namespace maybms
