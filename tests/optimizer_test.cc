// Tests for the plan optimizer: predicate pushdown, product-to-join
// conversion, select merging, schema inference — and the property that
// optimization never changes the answer distribution.
#include <gtest/gtest.h>

#include "core/lifted_executor.h"
#include "sql/optimizer.h"
#include "tests/test_util.h"
#include "worlds/enumerate.h"

namespace maybms {
namespace sql {
namespace {

using testing_util::CanonicalBag;
using testing_util::ExpectDistEq;

ExprPtr Col(const std::string& n) { return Expr::Column(n); }
ExprPtr IntLit(int64_t v) { return Expr::Const(Value::Int(v)); }
ExprPtr Cmp(CompareOp op, ExprPtr l, ExprPtr r) {
  return Expr::Compare(op, std::move(l), std::move(r));
}

WsdDb TwoTableDb() {
  WsdDb db;
  Status st = db.CreateRelation(
      "r", Schema({{"a", ValueType::kInt}, {"b", ValueType::kInt}}));
  EXPECT_TRUE(st.ok());
  st = db.CreateRelation(
      "s", Schema({{"a", ValueType::kInt}, {"c", ValueType::kInt}}));
  EXPECT_TRUE(st.ok());
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(InsertTuple(&db, "r",
                            {CellSpec::Certain(Value::Int(i % 3)),
                             i == 0 ? CellSpec::UniformOrSet({Value::Int(1),
                                                              Value::Int(5)})
                                    : CellSpec::Certain(Value::Int(i))})
                    .ok());
    EXPECT_TRUE(InsertTuple(&db, "s",
                            {CellSpec::Certain(Value::Int(i % 3)),
                             CellSpec::Certain(Value::Int(10 - i))})
                    .ok());
  }
  return db;
}

TEST(OptimizerTest, CrossConjunctBecomesJoinOthersPushDown) {
  WsdDb db = TwoTableDb();
  auto pred = Expr::And(
      Expr::And(Cmp(CompareOp::kEq, Col("a"), Col("s.a")),
                Cmp(CompareOp::kGt, Col("b"), IntLit(0))),
      Cmp(CompareOp::kLt, Col("c"), IntLit(10)));
  auto plan = Plan::Select(Plan::Product(Plan::Scan("r"), Plan::Scan("s")),
                           pred);
  auto optimized = Optimize(plan, db);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  // Root is a Join whose two children are Selects over Scans.
  ASSERT_EQ((*optimized)->kind(), PlanKind::kJoin);
  EXPECT_EQ((*optimized)->left()->kind(), PlanKind::kSelect);
  EXPECT_EQ((*optimized)->right()->kind(), PlanKind::kSelect);
  EXPECT_EQ((*optimized)->left()->input()->kind(), PlanKind::kScan);
}

TEST(OptimizerTest, LeftOnlyPredicateLeavesNoJoinPredicate) {
  WsdDb db = TwoTableDb();
  auto plan = Plan::Select(Plan::Product(Plan::Scan("r"), Plan::Scan("s")),
                           Cmp(CompareOp::kGt, Col("b"), IntLit(1)));
  auto optimized = Optimize(plan, db);
  ASSERT_TRUE(optimized.ok());
  ASSERT_EQ((*optimized)->kind(), PlanKind::kProduct);
  EXPECT_EQ((*optimized)->left()->kind(), PlanKind::kSelect);
  EXPECT_EQ((*optimized)->right()->kind(), PlanKind::kScan);
}

TEST(OptimizerTest, AdjacentSelectsMerge) {
  WsdDb db = TwoTableDb();
  auto plan = Plan::Select(
      Plan::Select(Plan::Scan("r"), Cmp(CompareOp::kGt, Col("b"), IntLit(0))),
      Cmp(CompareOp::kLt, Col("a"), IntLit(2)));
  auto optimized = Optimize(plan, db);
  ASSERT_TRUE(optimized.ok());
  ASSERT_EQ((*optimized)->kind(), PlanKind::kSelect);
  EXPECT_EQ((*optimized)->input()->kind(), PlanKind::kScan);
}

TEST(OptimizerTest, PushThroughUnion) {
  WsdDb db = TwoTableDb();
  auto plan = Plan::Select(Plan::Union(Plan::Scan("r"), Plan::Scan("r")),
                           Cmp(CompareOp::kGt, Col("b"), IntLit(1)));
  auto optimized = Optimize(plan, db);
  ASSERT_TRUE(optimized.ok());
  ASSERT_EQ((*optimized)->kind(), PlanKind::kUnion);
  EXPECT_EQ((*optimized)->left()->kind(), PlanKind::kSelect);
  EXPECT_EQ((*optimized)->right()->kind(), PlanKind::kSelect);
}

TEST(OptimizerTest, PlanSchemaMatchesExecution) {
  WsdDb db = TwoTableDb();
  auto plan = Plan::Project(
      Plan::Select(Plan::Product(Plan::Scan("r"), Plan::Scan("s")),
                   Cmp(CompareOp::kEq, Col("a"), Col("s.a"))),
      {{Col("b"), "b"}, {Col("c"), "c"}});
  auto schema = PlanSchema(plan, db);
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  ASSERT_EQ(schema->size(), 2u);
  EXPECT_EQ(schema->attr(0).name, "b");
  EXPECT_EQ(schema->attr(1).name, "c");
  auto result = ExecuteLifted(plan, db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->GetRelation("result").value()->schema().size(), 2u);
}

// ---------------------------------------------------------------------------
// Golden plan-text tests: one fixture per rewrite rule, each run with
// only that rule enabled so the assertion pins exactly what the rule
// does — plus negative cases where the rule must NOT fire.
// ---------------------------------------------------------------------------

OptimizerOptions Only(bool OptimizerOptions::*rule) {
  OptimizerOptions opts;
  opts.fold_constants = false;
  opts.push_predicates = false;
  opts.reorder_joins = false;
  opts.prune_projections = false;
  opts.*rule = true;
  return opts;
}

std::string OptimizedText(const PlanPtr& plan, const WsdDb& db,
                          const OptimizerOptions& opts) {
  auto optimized = Optimize(plan, db, opts);
  EXPECT_TRUE(optimized.ok()) << optimized.status().ToString();
  if (!optimized.ok()) return "";
  return (*optimized)->ToString();
}

// Three tables with distinct cardinalities for the reorder fixtures:
// big (6 rows), mid (3 rows), small (1 row).
WsdDb SizedTablesDb() {
  WsdDb db;
  EXPECT_TRUE(db.CreateRelation(
                    "big", Schema({{"g", ValueType::kInt},
                                   {"x", ValueType::kInt}}))
                  .ok());
  EXPECT_TRUE(db.CreateRelation(
                    "mid", Schema({{"g", ValueType::kInt},
                                   {"y", ValueType::kInt}}))
                  .ok());
  EXPECT_TRUE(db.CreateRelation(
                    "small", Schema({{"g", ValueType::kInt},
                                     {"z", ValueType::kInt}}))
                  .ok());
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(InsertTuple(&db, "big",
                            {CellSpec::Certain(Value::Int(i % 3)),
                             CellSpec::Certain(Value::Int(i))})
                    .ok());
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(InsertTuple(&db, "mid",
                            {CellSpec::Certain(Value::Int(i)),
                             CellSpec::Certain(Value::Int(10 + i))})
                    .ok());
  }
  EXPECT_TRUE(InsertTuple(&db, "small",
                          {CellSpec::Certain(Value::Int(1)),
                           CellSpec::Certain(Value::Int(42))})
                  .ok());
  return db;
}

TEST(OptimizerGolden, PushdownThroughJoin) {
  WsdDb db = TwoTableDb();
  auto plan = Plan::Select(
      Plan::Join(Plan::Scan("r"), Plan::Scan("s"),
                 Cmp(CompareOp::kEq, Expr::ColumnIdx(0, "a"),
                     Expr::ColumnIdx(2, "s.a"))),
      Expr::And(Cmp(CompareOp::kGt, Col("b"), IntLit(0)),
                Cmp(CompareOp::kLt, Col("c"), IntLit(10))));
  EXPECT_EQ(OptimizedText(plan, db, Only(&OptimizerOptions::push_predicates)),
            "Join (a = s.a)\n"
            "  Select (b > 0)\n"
            "    Scan r\n"
            "  Select (c < 10)\n"
            "    Scan s");
}

TEST(OptimizerGolden, ConjunctSplitOverProduct) {
  WsdDb db = TwoTableDb();
  auto plan = Plan::Select(
      Plan::Product(Plan::Scan("r"), Plan::Scan("s")),
      Expr::And(Expr::And(Cmp(CompareOp::kGt, Col("b"), IntLit(1)),
                          Cmp(CompareOp::kEq, Col("a"), Col("s.a"))),
                Cmp(CompareOp::kLt, Col("c"), IntLit(9))));
  EXPECT_EQ(OptimizedText(plan, db, Only(&OptimizerOptions::push_predicates)),
            "Join (a = s.a)\n"
            "  Select (b > 1)\n"
            "    Scan r\n"
            "  Select (c < 9)\n"
            "    Scan s");
}

TEST(OptimizerGolden, ProjectionPrune) {
  WsdDb db = TwoTableDb();
  auto plan = Plan::Project(
      Plan::Join(Plan::Scan("r"), Plan::Scan("s"),
                 Cmp(CompareOp::kEq, Expr::ColumnIdx(0, "a"),
                     Expr::ColumnIdx(2, "s.a"))),
      {{Col("b"), "b"}});
  // r needs both its columns (a joins, b projects) — no projection is
  // inserted there; s is narrowed to its join key, dropping c.
  EXPECT_EQ(
      OptimizedText(plan, db, Only(&OptimizerOptions::prune_projections)),
      "Project b AS b\n"
      "  Join (a = r.a)\n"
      "    Scan r\n"
      "    Project a AS a\n"
      "      Scan s");
}

TEST(OptimizerGolden, JoinReorderBySize) {
  WsdDb db = SizedTablesDb();
  // big ⋈ mid ⋈ small, written largest-first: the reorderer must start
  // from the cheapest pair (small ⋈ mid, with mid as probe and small as
  // build side), join big last, and restore the column order on top.
  auto plan = Plan::Join(
      Plan::Join(Plan::Scan("big"), Plan::Scan("mid"),
                 Cmp(CompareOp::kEq, Expr::ColumnIdx(0, "g"),
                     Expr::ColumnIdx(2, "mid.g"))),
      Plan::Scan("small"),
      Cmp(CompareOp::kEq, Expr::ColumnIdx(2, "mid.g"),
          Expr::ColumnIdx(4, "small.g")));
  EXPECT_EQ(OptimizedText(plan, db, Only(&OptimizerOptions::reorder_joins)),
            "Project big.g AS g, x AS x, g AS mid.g, y AS y, small.g AS "
            "small.g, z AS z\n"
            "  Join (big.g = g)\n"
            "    Join (g = small.g)\n"
            "      Scan mid\n"
            "      Scan small\n"
            "    Scan big");
}

TEST(OptimizerGolden, ConstantFold) {
  WsdDb db = TwoTableDb();
  auto plan = Plan::Select(
      Plan::Scan("r"),
      Expr::And(Cmp(CompareOp::kEq,
                    Expr::Arith(ArithOp::kAdd, IntLit(1), IntLit(2)),
                    IntLit(3)),
                Cmp(CompareOp::kGt, Col("b"), IntLit(0))));
  EXPECT_EQ(OptimizedText(plan, db, Only(&OptimizerOptions::fold_constants)),
            "Select (b > 0)\n"
            "  Scan r");
}

TEST(OptimizerGolden, FullPipeline) {
  WsdDb db = SizedTablesDb();
  // The SQL-planner shape: one big WHERE above a product chain, wide
  // output narrowed by the projection. All rules compose.
  auto plan = Plan::Project(
      Plan::Select(
          Plan::Product(Plan::Product(Plan::Scan("big"), Plan::Scan("mid")),
                        Plan::Scan("small")),
          Expr::And(
              Expr::And(Cmp(CompareOp::kEq, Expr::ColumnIdx(0, "g"),
                            Expr::ColumnIdx(2, "mid.g")),
                        Cmp(CompareOp::kEq, Expr::ColumnIdx(2, "mid.g"),
                            Expr::ColumnIdx(4, "small.g"))),
              Expr::And(Cmp(CompareOp::kGt, Expr::ColumnIdx(1, "x"),
                            Expr::Arith(ArithOp::kSub, IntLit(1), IntLit(1))),
                        Cmp(CompareOp::kLt, Expr::ColumnIdx(3, "y"),
                            IntLit(100))))),
      {{Expr::ColumnIdx(1, "x"), "x"}});
  EXPECT_EQ(OptimizedText(plan, db, OptimizerOptions{}),
            "Project x AS x\n"
            "  Join (big.g = g)\n"
            "    Project g AS g\n"
            "      Join (g = r.g)\n"
            "        Project g AS g\n"
            "          Select (y < 100)\n"
            "            Scan mid\n"
            "        Project g AS g\n"
            "          Scan small\n"
            "    Select (x > 0)\n"
            "      Scan big");
}

TEST(OptimizerGolden, NegativeCrossPredicateStaysAtJoin) {
  WsdDb db = TwoTableDb();
  // References both sides: must not move below the join.
  auto plan = Plan::Select(Plan::Product(Plan::Scan("r"), Plan::Scan("s")),
                           Cmp(CompareOp::kLt, Col("b"), Col("c")));
  EXPECT_EQ(OptimizedText(plan, db, Only(&OptimizerOptions::push_predicates)),
            "Join (b < c)\n"
            "  Scan r\n"
            "  Scan s");
}

TEST(OptimizerGolden, NegativeErroringExprDoesNotFold) {
  WsdDb db = TwoTableDb();
  // 'x' = 1 errors at run time (type mismatch) — folding it would turn a
  // query error into a silent constant. It must stay in the plan.
  auto plan = Plan::Select(
      Plan::Scan("r"),
      Expr::And(Cmp(CompareOp::kEq, Expr::Const(Value::String("x")),
                    IntLit(1)),
                Cmp(CompareOp::kGt, Col("b"), IntLit(0))));
  EXPECT_EQ(OptimizedText(plan, db, Only(&OptimizerOptions::fold_constants)),
            "Select (('x' = 1) AND (b > 0))\n"
            "  Scan r");
}

TEST(OptimizerGolden, NegativePushdownThroughComputedProjection) {
  WsdDb db = TwoTableDb();
  // The select references a computed item — substituting it would change
  // which rows the computation runs on, so the rule must not fire.
  auto plan = Plan::Select(
      Plan::Project(Plan::Scan("r"),
                    {{Expr::Arith(ArithOp::kMul, Col("a"), IntLit(2)),
                      "a2"}}),
      Cmp(CompareOp::kGt, Col("a2"), IntLit(1)));
  EXPECT_EQ(OptimizedText(plan, db, Only(&OptimizerOptions::push_predicates)),
            "Select (a2 > 1)\n"
            "  Project (a * 2) AS a2\n"
            "    Scan r");
}

TEST(OptimizerGolden, PushdownThroughRenamingProjection) {
  WsdDb db = TwoTableDb();
  // Pure-column projection (the planner's alias renames): pushdown fires.
  auto plan = Plan::Select(
      Plan::Project(Plan::Scan("r"), {{Col("a"), "x.a"}, {Col("b"), "x.b"}}),
      Cmp(CompareOp::kGt, Col("x.b"), IntLit(1)));
  EXPECT_EQ(OptimizedText(plan, db, Only(&OptimizerOptions::push_predicates)),
            "Project a AS x.a, b AS x.b\n"
            "  Select (b > 1)\n"
            "    Scan r");
}

TEST(OptimizerGolden, MasterSwitchDisablesEverything) {
  WsdDb db = TwoTableDb();
  auto plan = Plan::Select(Plan::Product(Plan::Scan("r"), Plan::Scan("s")),
                           Cmp(CompareOp::kGt, Col("b"), IntLit(1)));
  OptimizerOptions off;
  off.enable = false;
  EXPECT_EQ(OptimizedText(plan, db, off), plan->ToString());
}

TEST(OptimizerGolden, ExplainCarriesCardinalities) {
  WsdDb db = SizedTablesDb();
  auto plan = Plan::Select(Plan::Scan("big"),
                           Cmp(CompareOp::kEq, Col("g"), IntLit(1)));
  auto text = ExplainPlan(plan, db);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_EQ(*text,
            "Select (g = 1)  [~2 rows]\n"
            "  Scan big  [~6 rows]  [shards 1/1]");
  auto rows = EstimateRows(plan, db);
  ASSERT_TRUE(rows.ok());
  EXPECT_NEAR(*rows, 2.0, 1e-9);  // 6 rows / 3 distinct g values
}

TEST(OptimizerGolden, ExplainReportsShardPruning) {
  WsdDb db;
  db.mutable_options().rows_per_shard = 2;
  MAYBMS_EXPECT_OK(db.CreateRelation(
      "t", Schema({{"a", ValueType::kInt}, {"b", ValueType::kInt}})));
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(InsertTuple(&db, "t",
                            {CellSpec::Certain(Value::Int(i)),
                             CellSpec::Certain(Value::Int(-i))})
                    .ok());
  }
  // a is 0..7 in insertion order: shard ranges are [0,1],[2,3],[4,5],[6,7].
  auto plan = Plan::Select(Plan::Scan("t"),
                           Cmp(CompareOp::kGe, Col("a"), IntLit(6)));
  auto text = ExplainPlan(plan, db);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("[shards 1/4]"), std::string::npos) << *text;
  // The estimate is capped by the surviving shards' row count.
  auto rows = EstimateRows(plan, db);
  ASSERT_TRUE(rows.ok());
  EXPECT_LE(*rows, 2.0 + 1e-9);

  // A bare scan keeps everything.
  auto scan_text = ExplainPlan(Plan::Scan("t"), db);
  ASSERT_TRUE(scan_text.ok());
  EXPECT_NE(scan_text->find("[shards 4/4]"), std::string::npos) << *scan_text;
}

// Property: optimization preserves the answer distribution exactly.
class OptimizerEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(OptimizerEquivalence, OptimizedPlanSameDistribution) {
  WsdDb db = TwoTableDb();
  std::vector<PlanPtr> plans;
  plans.push_back(Plan::Select(
      Plan::Product(Plan::Scan("r"), Plan::Scan("s")),
      Expr::And(Cmp(CompareOp::kEq, Col("a"), Col("s.a")),
                Cmp(CompareOp::kGt, Col("b"), IntLit(0)))));
  plans.push_back(Plan::Select(
      Plan::Product(Plan::Scan("r"), Plan::Scan("s")),
      Expr::Or(Cmp(CompareOp::kGt, Col("b"), IntLit(2)),
               Cmp(CompareOp::kLt, Col("c"), IntLit(8)))));
  plans.push_back(Plan::Project(
      Plan::Select(Plan::Select(Plan::Scan("r"),
                                Cmp(CompareOp::kGe, Col("a"), IntLit(0))),
                   Cmp(CompareOp::kGt, Col("b"), IntLit(0))),
      {{Col("b"), "b"}}));
  const PlanPtr& plan = plans[static_cast<size_t>(GetParam()) % plans.size()];

  auto raw = ExecuteLifted(plan, db);
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  auto optimized_plan = Optimize(plan, db);
  ASSERT_TRUE(optimized_plan.ok());
  auto opt = ExecuteLifted(*optimized_plan, db);
  ASSERT_TRUE(opt.ok()) << opt.status().ToString();

  auto wa = EnumerateWorlds(*raw, 1u << 14);
  auto wb = EnumerateWorlds(*opt, 1u << 14);
  ASSERT_TRUE(wa.ok() && wb.ok());
  ExpectDistEq(testing_util::RelationDistribution(*wa, "result"),
               testing_util::RelationDistribution(*wb, "result"));
}

INSTANTIATE_TEST_SUITE_P(Plans, OptimizerEquivalence, ::testing::Range(0, 3));

}  // namespace
}  // namespace sql
}  // namespace maybms
