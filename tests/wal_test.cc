// Unit tests for the write-ahead log: framing round-trips, torn-tail
// detection and repair, corruption cut-off, fingerprint binding, and the
// poisoned-writer contract. The FaultInjectingEnv doubles as a cheap
// in-memory filesystem here.
#include "storage/wal.h"

#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/io_env.h"
#include "tests/test_util.h"

namespace maybms {
namespace wal {
namespace {

TEST(WalTest, CreateAppendReadRoundTrip) {
  FaultInjectingEnv env;
  auto w = WalWriter::Create(&env, "db.wal", /*snapshot_fingerprint=*/42,
                             /*base_lsn=*/1);
  MAYBMS_ASSERT_OK(w.status());
  auto l1 = w->Append(RecordType::kStatement, "insert into r ...");
  auto l2 = w->Append(RecordType::kStatement, "repair key ...");
  auto l3 = w->Append(RecordType::kStatement, "");
  MAYBMS_ASSERT_OK(l1.status());
  EXPECT_EQ(*l1, 1u);
  EXPECT_EQ(*l2, 2u);
  EXPECT_EQ(*l3, 3u);
  EXPECT_EQ(w->record_count(), 3u);
  EXPECT_EQ(w->next_lsn(), 4u);

  auto contents = ReadWal(&env, "db.wal");
  MAYBMS_ASSERT_OK(contents.status());
  EXPECT_TRUE(contents->usable);
  EXPECT_FALSE(contents->torn_tail);
  EXPECT_EQ(contents->snapshot_fingerprint, 42u);
  EXPECT_EQ(contents->base_lsn, 1u);
  ASSERT_EQ(contents->records.size(), 3u);
  EXPECT_EQ(contents->records[0].lsn, 1u);
  EXPECT_EQ(contents->records[0].payload, "insert into r ...");
  EXPECT_EQ(contents->records[2].payload, "");
}

TEST(WalTest, ReadMissingFileIsNotFound) {
  FaultInjectingEnv env;
  auto contents = ReadWal(&env, "absent.wal");
  EXPECT_EQ(contents.status().code(), StatusCode::kNotFound);
}

TEST(WalTest, CreateReplacesExistingLog) {
  FaultInjectingEnv env;
  {
    auto w = WalWriter::Create(&env, "db.wal", 1, 1);
    MAYBMS_ASSERT_OK(w.status());
    MAYBMS_ASSERT_OK(w->Append(RecordType::kStatement, "old").status());
  }
  auto w = WalWriter::Create(&env, "db.wal", 2, 5);
  MAYBMS_ASSERT_OK(w.status());
  auto contents = ReadWal(&env, "db.wal");
  MAYBMS_ASSERT_OK(contents.status());
  EXPECT_TRUE(contents->usable);
  EXPECT_EQ(contents->snapshot_fingerprint, 2u);
  EXPECT_EQ(contents->base_lsn, 5u);
  EXPECT_TRUE(contents->records.empty());
}

TEST(WalTest, OpenForAppendContinuesLsns) {
  FaultInjectingEnv env;
  {
    auto w = WalWriter::Create(&env, "db.wal", 7, 1);
    MAYBMS_ASSERT_OK(w.status());
    MAYBMS_ASSERT_OK(w->Append(RecordType::kStatement, "a").status());
    MAYBMS_ASSERT_OK(w->Append(RecordType::kStatement, "b").status());
  }
  auto contents = ReadWal(&env, "db.wal");
  MAYBMS_ASSERT_OK(contents.status());
  auto w = WalWriter::OpenForAppend(&env, "db.wal", *contents);
  MAYBMS_ASSERT_OK(w.status());
  EXPECT_EQ(w->record_count(), 2u);
  auto lsn = w->Append(RecordType::kStatement, "c");
  MAYBMS_ASSERT_OK(lsn.status());
  EXPECT_EQ(*lsn, 3u);
  auto again = ReadWal(&env, "db.wal");
  MAYBMS_ASSERT_OK(again.status());
  ASSERT_EQ(again->records.size(), 3u);
  EXPECT_EQ(again->records[2].payload, "c");
}

TEST(WalTest, TornTailIsDetectedAndRepaired) {
  FaultInjectingEnv env;
  {
    auto w = WalWriter::Create(&env, "db.wal", 7, 1);
    MAYBMS_ASSERT_OK(w.status());
    MAYBMS_ASSERT_OK(w->Append(RecordType::kStatement, "keep me").status());
  }
  // Simulate a torn final write: garbage bytes past the last full record.
  {
    auto f = env.NewWritableFile("db.wal", /*truncate=*/false);
    MAYBMS_ASSERT_OK(f.status());
    MAYBMS_ASSERT_OK((*f)->Append("\x01\x02partial rec"));
    MAYBMS_ASSERT_OK((*f)->Sync());
  }
  auto contents = ReadWal(&env, "db.wal");
  MAYBMS_ASSERT_OK(contents.status());
  EXPECT_TRUE(contents->usable);
  EXPECT_TRUE(contents->torn_tail);
  ASSERT_EQ(contents->records.size(), 1u);
  EXPECT_EQ(contents->records[0].payload, "keep me");

  // OpenForAppend truncates the junk; appending then re-reading yields a
  // clean log with the old prefix plus the new record.
  auto w = WalWriter::OpenForAppend(&env, "db.wal", *contents);
  MAYBMS_ASSERT_OK(w.status());
  MAYBMS_ASSERT_OK(w->Append(RecordType::kStatement, "after repair").status());
  auto again = ReadWal(&env, "db.wal");
  MAYBMS_ASSERT_OK(again.status());
  EXPECT_FALSE(again->torn_tail);
  ASSERT_EQ(again->records.size(), 2u);
  EXPECT_EQ(again->records[0].payload, "keep me");
  EXPECT_EQ(again->records[1].payload, "after repair");
  EXPECT_EQ(again->records[1].lsn, 2u);
}

TEST(WalTest, CorruptRecordCutsTheLogAtLongestValidPrefix) {
  FaultInjectingEnv env;
  auto w = WalWriter::Create(&env, "db.wal", 7, 1);
  MAYBMS_ASSERT_OK(w.status());
  MAYBMS_ASSERT_OK(w->Append(RecordType::kStatement, "first").status());
  auto after_one = ReadWal(&env, "db.wal");
  MAYBMS_ASSERT_OK(after_one.status());
  MAYBMS_ASSERT_OK(w->Append(RecordType::kStatement, "second").status());
  MAYBMS_ASSERT_OK(w->Append(RecordType::kStatement, "third").status());
  // Flip a byte inside the second record's frame: the scan must stop
  // after the first record even though the third is intact.
  MAYBMS_ASSERT_OK(env.MutateFileByte("db.wal", after_one->valid_bytes + 10));
  auto contents = ReadWal(&env, "db.wal");
  MAYBMS_ASSERT_OK(contents.status());
  EXPECT_TRUE(contents->usable);
  EXPECT_TRUE(contents->torn_tail);
  ASSERT_EQ(contents->records.size(), 1u);
  EXPECT_EQ(contents->records[0].payload, "first");
  EXPECT_EQ(contents->valid_bytes, after_one->valid_bytes);
}

TEST(WalTest, CorruptHeaderMakesLogUnusable) {
  FaultInjectingEnv env;
  {
    auto w = WalWriter::Create(&env, "db.wal", 7, 1);
    MAYBMS_ASSERT_OK(w.status());
    MAYBMS_ASSERT_OK(w->Append(RecordType::kStatement, "x").status());
  }
  MAYBMS_ASSERT_OK(env.MutateFileByte("db.wal", 2));  // inside the magic
  auto contents = ReadWal(&env, "db.wal");
  MAYBMS_ASSERT_OK(contents.status());
  EXPECT_FALSE(contents->usable);
  EXPECT_TRUE(contents->records.empty());
}

TEST(WalTest, AppendFailurePoisonsTheWriter) {
  FaultInjectingEnv env;
  auto w = WalWriter::Create(&env, "db.wal", 7, 1);
  MAYBMS_ASSERT_OK(w.status());
  MAYBMS_ASSERT_OK(w->Append(RecordType::kStatement, "fine").status());
  FaultPlan plan;
  plan.fail_at_op = env.op_count();  // the very next op: the frame write
  env.set_plan(plan);
  auto bad = w->Append(RecordType::kStatement, "doomed");
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(w->poisoned());
  // The env is healthy again, but the writer must refuse: its on-disk
  // tail is suspect until the next checkpoint recreates the log.
  auto refused = w->Append(RecordType::kStatement, "too late");
  EXPECT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kIOError);
}

TEST(WalTest, TransientSyncFailureIsRetried) {
  FaultInjectingEnv env;
  auto w = WalWriter::Create(&env, "db.wal", 7, 1);
  MAYBMS_ASSERT_OK(w.status());
  FaultPlan plan;
  plan.fail_at_op = env.op_count() + 1;  // frame write, then this Sync
  plan.fail_transient = true;
  env.set_plan(plan);
  auto lsn = w->Append(RecordType::kStatement, "persists anyway");
  MAYBMS_ASSERT_OK(lsn.status());
  EXPECT_FALSE(w->poisoned());
  EXPECT_GE(env.transient_retries_observed(), 1);
  auto contents = ReadWal(&env, "db.wal");
  MAYBMS_ASSERT_OK(contents.status());
  ASSERT_EQ(contents->records.size(), 1u);
  EXPECT_EQ(contents->records[0].payload, "persists anyway");
}

TEST(WalTest, SnapshotFingerprintSeparatesContents) {
  EXPECT_EQ(SnapshotFingerprint("abc"), SnapshotFingerprint("abc"));
  EXPECT_NE(SnapshotFingerprint("abc"), SnapshotFingerprint("abd"));
  EXPECT_NE(SnapshotFingerprint("abc"), SnapshotFingerprint("abcd"));
  EXPECT_NE(SnapshotFingerprint(""), SnapshotFingerprint(std::string(1, 0)));
  // Large inputs are stripe-sampled; size and first-stripe changes must
  // still register.
  std::string big(2u << 20, 'x');
  const uint64_t base = SnapshotFingerprint(big);
  EXPECT_EQ(base, SnapshotFingerprint(big));
  std::string bigger = big + "y";
  EXPECT_NE(base, SnapshotFingerprint(bigger));
  std::string flipped = big;
  flipped[0] ^= 1;
  EXPECT_NE(base, SnapshotFingerprint(flipped));
}

}  // namespace
}  // namespace wal
}  // namespace maybms
