// Tests for the anytime approximate confidence engine: bracket
// soundness at every anytime step, statistical unbiasedness of the
// sampling estimator, interval coverage against the exact path, and
// thread-count-independent determinism.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "common/logging.h"
#include "core/approx_conf.h"
#include "core/cluster.h"
#include "core/confidence.h"
#include "tests/test_util.h"

namespace maybms {
namespace {

using testing_util::MedicalExample;
using testing_util::RandomWsd;
using testing_util::RandomWsdOptions;

// One independence cluster shared by many tuples: `slots` binary or-sets
// merged into one component (2^slots joint states) referenced
// round-robin by `tuples` tuples. Small sibling of the bench generator.
WsdDb SharedGroup(size_t slots, size_t tuples) {
  WsdDb db;
  Status st = db.CreateRelation(
      "r", Schema({{"id", ValueType::kInt}, {"v", ValueType::kInt}}));
  MAYBMS_CHECK(st.ok());
  WsdRelation* rel = db.GetMutableRelation("r").value();
  std::vector<ComponentId> comps;
  for (size_t s = 0; s < slots; ++s) {
    auto h = InsertTuple(
        &db, "r",
        {CellSpec::Certain(Value::Int(static_cast<int64_t>(s))),
         CellSpec::OrSet({{Value::Int(2 * static_cast<int64_t>(s)), 0.5},
                          {Value::Int(2 * static_cast<int64_t>(s) + 1),
                           0.5}})});
    MAYBMS_CHECK(h.ok());
    comps.push_back(rel->tuple(h->index).cells[1].ref().cid);
  }
  auto merged = db.MergeComponents(comps, 1u << 20);
  MAYBMS_CHECK(merged.ok()) << merged.status().ToString();
  for (size_t m = slots; m < tuples; ++m) {
    WsdTuple t;
    t.cells.push_back(Cell::Certain(Value::Int(static_cast<int64_t>(m))));
    t.cells.push_back(
        Cell::Ref({*merged, static_cast<uint32_t>(m % slots)}));
    rel->Add(std::move(t));
  }
  return db;
}

std::string Key(const Tuple& row, size_t ncols) {
  std::string key;
  for (size_t c = 0; c < ncols; ++c) key += row[c].ToString() + "|";
  return key;
}

// conf / (conf, lo, hi) tables keyed by value vector.
std::map<std::string, double> ConfMap(const Relation& table) {
  std::map<std::string, double> out;
  for (const auto& row : table.rows()) {
    out[Key(row, row.size() - 1)] = row.back().as_double();
  }
  return out;
}
struct IntervalRow {
  double conf, lo, hi;
};
std::map<std::string, IntervalRow> IntervalMap(const Relation& table) {
  std::map<std::string, IntervalRow> out;
  for (const auto& row : table.rows()) {
    size_t n = row.size();
    out[Key(row, n - 3)] = {row[n - 3].as_double(), row[n - 2].as_double(),
                            row[n - 1].as_double()};
  }
  return out;
}

TEST(ApproxConfTest, ValidatesEpsilonDelta) {
  WsdDb db = MedicalExample();
  ApproxOptions bad;
  bad.epsilon = 0.0;
  EXPECT_FALSE(ApproxConfTable(db, "R", bad).ok());
  bad.epsilon = 1.5;
  EXPECT_FALSE(ApproxConfTable(db, "R", bad).ok());
  bad.epsilon = 0.01;
  bad.delta = 0.0;
  EXPECT_FALSE(ApproxConfTable(db, "R", bad).ok());
  bad.delta = 1.0;
  EXPECT_FALSE(ApproxConfTable(db, "R", bad).ok());
}

TEST(ApproxConfTest, ExactOnSmallClusters) {
  // Every cluster of the medical example fits the exact-state limit, so
  // the approximate table degenerates to the exact one with collapsed
  // intervals.
  WsdDb db = MedicalExample();
  auto exact = ConfTable(db, "R");
  ASSERT_TRUE(exact.ok());
  ApproxConfStats stats;
  auto approx = ApproxConfTable(db, "R", ApproxOptions{}, &stats);
  ASSERT_TRUE(approx.ok());
  auto em = ConfMap(*exact);
  auto am = IntervalMap(*approx);
  ASSERT_EQ(em.size(), am.size());
  for (const auto& [key, p] : em) {
    ASSERT_TRUE(am.count(key)) << key;
    EXPECT_DOUBLE_EQ(am[key].conf, p);
    EXPECT_DOUBLE_EQ(am[key].lo, p);
    EXPECT_DOUBLE_EQ(am[key].hi, p);
  }
  EXPECT_EQ(stats.exact_clusters, stats.clusters);
  EXPECT_EQ(stats.total_samples, 0u);
  EXPECT_EQ(stats.max_half_width, 0.0);
}

TEST(ApproxConfTest, MemberMarginalsFastPathIsExact) {
  // Each tuple of the shared group references one slot of the merged
  // component and no two tuples can produce the same vector, so the
  // member-marginal fast path resolves the 2^16-state cluster exactly —
  // no enumeration, no sampling, collapsed intervals.
  WsdDb db = SharedGroup(16, 32);
  auto exact = ConfTable(db, "r");  // factorized exact path
  ASSERT_TRUE(exact.ok());
  ApproxConfStats stats;
  auto approx = ApproxConfTable(db, "r", ApproxOptions{}, &stats);
  ASSERT_TRUE(approx.ok());
  EXPECT_EQ(stats.exact_clusters, stats.clusters);
  EXPECT_EQ(stats.total_samples, 0u);
  EXPECT_EQ(stats.total_states, 0u);
  EXPECT_EQ(stats.max_half_width, 0.0);
  auto em = ConfMap(*exact);
  auto am = IntervalMap(*approx);
  ASSERT_EQ(em.size(), am.size());
  for (const auto& [key, p] : em) {
    ASSERT_TRUE(am.count(key)) << key;
    EXPECT_NEAR(am[key].conf, p, 1e-9) << key;
    EXPECT_NEAR(am[key].lo, am[key].hi, 1e-15) << key;
  }
}

TEST(ApproxConfTest, CollidingMembersFallBackToAnytime) {
  // Two identical tuples reference the same slot, so the same vector is
  // producible by two members: the fast path must refuse (the marginal
  // sum would double-count) and the anytime machinery must still return
  // a sound interval.
  WsdDb db = SharedGroup(13, 26);
  WsdRelation* rel = db.GetMutableRelation("r").value();
  ComponentId merged = rel->tuple(0).cells[1].ref().cid;
  for (int copy = 0; copy < 2; ++copy) {
    WsdTuple t;
    t.cells.push_back(Cell::Certain(Value::Int(999)));
    t.cells.push_back(Cell::Ref({merged, 0}));
    rel->Add(std::move(t));
  }
  auto exact = ConfTable(db, "r");
  ASSERT_TRUE(exact.ok());
  ApproxOptions opt;
  opt.epsilon = 0.02;
  ApproxConfStats stats;
  auto approx = ApproxConfTable(db, "r", opt, &stats);
  ASSERT_TRUE(approx.ok());
  EXPECT_GT(stats.total_samples + stats.total_states, 0u)
      << "collision did not fall back to the anytime path";
  auto em = ConfMap(*exact);
  auto am = IntervalMap(*approx);
  for (const auto& [key, p] : em) {
    if (p <= 0.0) continue;
    ASSERT_TRUE(am.count(key)) << key;
    EXPECT_LE(am[key].lo, p + 1e-9) << key;
    EXPECT_GE(am[key].hi, p - 1e-9) << key;
  }
}

TEST(ApproxConfTest, IntervalContainsExactOnSharedGroup) {
  // 2^14 joint states blow the exact-state limit, forcing the anytime
  // path (fast path disabled); the reported interval must contain the
  // exact confidence and honor the requested half-width (fixed seed: no
  // flakes).
  WsdDb db = SharedGroup(14, 28);
  auto exact = ConfTable(db, "r");  // factorized exact path
  ASSERT_TRUE(exact.ok());
  ApproxOptions opt;
  opt.member_marginals = false;
  opt.epsilon = 0.01;
  opt.delta = 0.05;
  ApproxConfStats stats;
  auto approx = ApproxConfTable(db, "r", opt, &stats);
  ASSERT_TRUE(approx.ok());
  auto em = ConfMap(*exact);
  auto am = IntervalMap(*approx);
  for (const auto& [key, p] : em) {
    if (p <= 0.0) continue;  // zero-mass vectors may be absent
    ASSERT_TRUE(am.count(key)) << key;
    const IntervalRow& iv = am[key];
    EXPECT_LE(iv.lo, p + 1e-9) << key;
    EXPECT_GE(iv.hi, p - 1e-9) << key;
    EXPECT_LE(iv.lo, iv.conf);
    EXPECT_GE(iv.hi, iv.conf);
    EXPECT_NEAR(iv.conf, p, opt.epsilon + 1e-9) << key;
  }
  EXPECT_LE(stats.max_half_width, opt.epsilon + 1e-12);
  EXPECT_GT(stats.total_samples + stats.total_states, 0u);
}

TEST(ApproxConfTest, BracketSoundnessAtEveryStep) {
  // Property test of the deterministic bounds: at every prefix of the
  // odometer scan, every vector's exact in-cluster mass lies inside
  // [visited mass(v), visited mass(v) + unvisited mass].
  Rng rng(2024);
  for (int iter = 0; iter < 25; ++iter) {
    RandomWsdOptions opt;
    opt.max_tuples = 6;
    WsdDb db = RandomWsd(&rng, opt);
    const WsdRelation* rel = db.GetRelation("R0").value();
    ClusterIndex index(db, *rel);
    for (const Cluster& cluster : index.clusters()) {
      // Reference: scan to completion.
      ClusterMassScan full(index, cluster);
      if (!full.Run(size_t{1} << 16)) continue;  // cap pathological sizes
      // Re-scan in steps of 3 states, checking the bracket invariant
      // after every step.
      ClusterMassScan part(index, cluster);
      while (!part.done()) {
        part.Run(3);
        const double slack = 1e-9;
        const double unvisited = part.unvisited_mass();
        for (const auto& [v, p] : full.mass()) {
          auto it = part.mass().find(v);
          const double seen = it == part.mass().end() ? 0.0 : it->second;
          EXPECT_LE(seen, p + slack);
          EXPECT_GE(seen + unvisited, p - slack);
        }
        EXPECT_LE(part.visited_mass(), part.total_mass() + 1e-9);
      }
      // Exhausted scan reproduces the reference masses exactly.
      ASSERT_EQ(part.mass().size(), full.mass().size());
      for (const auto& [v, p] : full.mass()) {
        EXPECT_NEAR(part.mass().at(v), p, 1e-12);
      }
    }
  }
}

TEST(ApproxConfTest, SamplingEstimatorIsUnbiased) {
  // Two independent binary clusters produce the same vector, so
  // conf(v) = 1 − (1 − p)(1 − p) exercises the cross-cluster product
  // combine. In sampling-only mode the estimator is the raw per-cluster
  // frequency, whose product combine is exactly unbiased; the mean over
  // many fixed seeds must approach the exact confidence within the
  // predicted standard error (fixed seeds: fully deterministic).
  WsdDb db;
  ASSERT_TRUE(db.CreateRelation(
                    "r", Schema({{"a", ValueType::kInt},
                                 {"b", ValueType::kInt}}))
                  .ok());
  for (int t = 0; t < 2; ++t) {
    auto h = InsertTuple(&db, "r",
                         {CellSpec::Certain(Value::Int(1)),
                          CellSpec::OrSet({{Value::Int(7), 0.6},
                                           {Value::Int(8), 0.4}})});
    ASSERT_TRUE(h.ok());
  }
  auto exact = ConfTable(db, "r");
  ASSERT_TRUE(exact.ok());
  auto em = ConfMap(*exact);
  const std::string key = "1|7|";
  ASSERT_TRUE(em.count(key));
  const double truth = em[key];  // 1 − 0.4² = 0.84

  ApproxOptions opt;
  opt.sampling_only = true;
  opt.fixed_samples = 400;
  opt.exact_state_limit = 1;  // force sampling of both clusters
  const int runs = 200;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < runs; ++i) {
    opt.seed = 1000 + static_cast<uint64_t>(i);
    auto approx = ApproxConfTable(db, "r", opt);
    ASSERT_TRUE(approx.ok());
    auto am = IntervalMap(*approx);
    ASSERT_TRUE(am.count(key));
    sum += am[key].conf;
    sum_sq += am[key].conf * am[key].conf;
  }
  const double mean = sum / runs;
  const double var = sum_sq / runs - mean * mean;
  // Flake-free tolerance: 4 standard errors of the run mean (and never
  // tighter than a small floor against var underestimation).
  const double se = std::sqrt(std::max(var, 1e-12) / runs);
  EXPECT_NEAR(mean, truth, std::max(4.0 * se, 1e-3));
}

TEST(ApproxConfTest, DeterministicAcrossThreadCounts) {
  WsdDb db = SharedGroup(13, 26);
  ApproxOptions t1;
  t1.member_marginals = false;  // exercise the sampler, not the fast path
  t1.num_threads = 1;
  ApproxOptions t4 = t1;
  t4.num_threads = 4;
  auto r1 = ApproxConfTable(db, "r", t1);
  auto r4 = ApproxConfTable(db, "r", t4);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r4.ok());
  ASSERT_EQ(r1->NumRows(), r4->NumRows());
  for (size_t i = 0; i < r1->NumRows(); ++i) {
    const Tuple& a = r1->rows()[i];
    const Tuple& b = r4->rows()[i];
    ASSERT_EQ(a.size(), b.size());
    for (size_t c = 0; c < a.size(); ++c) {
      EXPECT_TRUE(a[c] == b[c])
          << "row " << i << " col " << c << ": " << a[c].ToString()
          << " vs " << b[c].ToString();
    }
  }

  // Random world-sets, same contract.
  Rng rng(77);
  for (int iter = 0; iter < 5; ++iter) {
    WsdDb rdb = RandomWsd(&rng);
    ApproxOptions o1;
    o1.member_marginals = false;
    o1.num_threads = 1;
    o1.exact_state_limit = 2;  // push clusters onto the anytime path
    o1.sample_chunk = 512;
    ApproxOptions o4 = o1;
    o4.num_threads = 4;
    auto a = ApproxConfTable(rdb, "R0", o1);
    auto b = ApproxConfTable(rdb, "R0", o4);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->NumRows(), b->NumRows());
    for (size_t i = 0; i < a->NumRows(); ++i) {
      for (size_t c = 0; c < a->rows()[i].size(); ++c) {
        EXPECT_TRUE(a->rows()[i][c] == b->rows()[i][c]);
      }
    }
  }
}

TEST(ApproxConfTest, PathTelemetry) {
  WsdDb db = SharedGroup(13, 26);
  // Enumeration disabled: the single big cluster must resolve by
  // sampling.
  ApproxOptions opt;
  opt.member_marginals = false;
  opt.max_enum_states = 0;
  ApproxConfStats stats;
  ASSERT_TRUE(ApproxConfTable(db, "r", opt, &stats).ok());
  EXPECT_EQ(stats.clusters, 1u);
  EXPECT_EQ(stats.sampled_clusters, 1u);
  EXPECT_EQ(stats.total_states, 0u);
  EXPECT_GT(stats.total_samples, 0u);

  // Sampling disabled (tiny per-cluster budget relative to ε): the
  // bracket path must carry it.
  ApproxOptions brk;
  brk.member_marginals = false;
  brk.max_samples = 0;
  brk.epsilon = 0.4;
  ApproxConfStats bstats;
  ASSERT_TRUE(ApproxConfTable(db, "r", brk, &bstats).ok());
  EXPECT_EQ(bstats.total_samples, 0u);
  EXPECT_GT(bstats.total_states, 0u);
  EXPECT_EQ(bstats.sampled_clusters, 0u);
}

TEST(ApproxConfTest, RescuesExactBudgetFailure) {
  // The budget-rescue regime: naive exact enumeration blows a
  // 4096-state budget, the approximate engine answers within ε without
  // factorization.
  WsdDb db = SharedGroup(16, 32);
  ConfidenceOptions naive;
  naive.factorize_clusters = false;
  naive.max_cluster_states = 4096;
  EXPECT_FALSE(ConfTable(db, "r", naive).ok());

  auto exact = ConfTable(db, "r");  // factorized: feasible oracle
  ASSERT_TRUE(exact.ok());
  ApproxOptions opt;
  opt.epsilon = 0.01;
  ApproxConfStats stats;
  auto approx = ApproxConfTable(db, "r", opt, &stats);
  ASSERT_TRUE(approx.ok());
  auto em = ConfMap(*exact);
  auto am = IntervalMap(*approx);
  for (const auto& [key, p] : em) {
    if (p <= 0.0) continue;
    ASSERT_TRUE(am.count(key)) << key;
    EXPECT_LE(am[key].lo, p + 1e-9);
    EXPECT_GE(am[key].hi, p - 1e-9);
  }
  EXPECT_LE(stats.max_half_width, opt.epsilon + 1e-12);
}

}  // namespace
}  // namespace maybms
