// Shared helpers for the MayBMS test suite: the paper's running example,
// random world-set generators, and distribution-comparison utilities used
// by the differential (oracle) tests.
#ifndef MAYBMS_TESTS_TEST_UTIL_H_
#define MAYBMS_TESTS_TEST_UTIL_H_

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/builder.h"
#include "core/wsd.h"
#include "ra/executor.h"
#include "worlds/enumerate.h"

namespace maybms {
namespace testing_util {

/// Fails the current test when a Status is not OK.
#define MAYBMS_ASSERT_OK(expr)                                       \
  do {                                                               \
    ::maybms::Status _st = (expr);                                   \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                         \
  } while (0)

#define MAYBMS_EXPECT_OK(expr)                                       \
  do {                                                               \
    ::maybms::Status _st = (expr);                                   \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                         \
  } while (0)

/// Builds the paper's Section 2 medical example:
///
///   R(Diagnosis, Test, Symptom) with tuples r1, r2 where
///   c1 = {(pregnancy, ultrasound) 0.4, (hypothyroidism, TSH) 0.6}
///        covering r1.Diagnosis, r1.Test
///   c2 = {weight gain 0.7, fatigue 0.3} covering r1.Symptom
///   r2 = (obesity, BMI, weight gain), certain.
///
/// Represents 4 worlds.
inline WsdDb MedicalExample() {
  WsdDb db;
  Schema schema({{"Diagnosis", ValueType::kString},
                 {"Test", ValueType::kString},
                 {"Symptom", ValueType::kString}});
  Status st = db.CreateRelation("R", schema);
  EXPECT_TRUE(st.ok()) << st.ToString();
  auto r1 = InsertTuple(
      &db, "R",
      {CellSpec::Pending(), CellSpec::Pending(),
       CellSpec::OrSet({{Value::String("weight gain"), 0.7},
                        {Value::String("fatigue"), 0.3}})});
  EXPECT_TRUE(r1.ok()) << r1.status().ToString();
  auto c1 = AddJointComponent(
      &db, {{*r1, "Diagnosis"}, {*r1, "Test"}},
      {{{Value::String("pregnancy"), Value::String("ultrasound")}, 0.4},
       {{Value::String("hypothyroidism"), Value::String("TSH")}, 0.6}});
  EXPECT_TRUE(c1.ok()) << c1.status().ToString();
  auto r2 = InsertTuple(&db, "R",
                        {CellSpec::Certain(Value::String("obesity")),
                         CellSpec::Certain(Value::String("BMI")),
                         CellSpec::Certain(Value::String("weight gain"))});
  EXPECT_TRUE(r2.ok()) << r2.status().ToString();
  return db;
}

/// Canonical text form of a relation's bag of rows (sorted), used to key
/// world-distribution maps.
inline std::string CanonicalBag(const Relation& rel) {
  Relation copy = rel;
  copy.SortRows();
  std::string out;
  for (const auto& row : copy.rows()) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) out += ",";
      out += row[c].ToString();
    }
    out += ";";
  }
  return out;
}

/// Distribution over canonical relation contents for one relation name.
inline std::map<std::string, double> RelationDistribution(
    const std::vector<World>& worlds, const std::string& rel_name) {
  std::map<std::string, double> dist;
  for (const auto& w : worlds) {
    auto rel = w.catalog.Get(rel_name);
    EXPECT_TRUE(rel.ok()) << rel.status().ToString();
    dist[CanonicalBag(**rel)] += w.prob;
  }
  return dist;
}

/// Asserts that two distributions match within eps.
inline void ExpectDistEq(const std::map<std::string, double>& expected,
                         const std::map<std::string, double>& actual,
                         double eps = 1e-9) {
  for (const auto& [key, p] : expected) {
    auto it = actual.find(key);
    ASSERT_TRUE(it != actual.end()) << "missing world content: [" << key
                                    << "] expected p=" << p;
    EXPECT_NEAR(p, it->second, eps) << "for world content: [" << key << "]";
  }
  for (const auto& [key, p] : actual) {
    EXPECT_TRUE(expected.count(key) > 0 || p < eps)
        << "unexpected world content: [" << key << "] p=" << p;
  }
}

/// Asserts exact structural equality of two world-set databases:
/// options, relation names/schemas, template tuples (deps and cells,
/// with certain values compared by Value equality and refs by id), and
/// components (same live ids, slots, bit-exact probabilities, packed
/// cells). Used by the snapshot round-trip tests, where lossless
/// persistence — not just distribution equality — is the contract.
inline void ExpectDbsExactlyEqual(const WsdDb& a, const WsdDb& b) {
  EXPECT_EQ(a.options().max_component_rows, b.options().max_component_rows);

  ASSERT_EQ(a.LiveComponents(), b.LiveComponents());
  for (ComponentId id : a.LiveComponents()) {
    const Component& ca = a.component(id);
    const Component& cb = b.component(id);
    ASSERT_EQ(ca.NumSlots(), cb.NumSlots()) << "component " << id;
    ASSERT_EQ(ca.NumRows(), cb.NumRows()) << "component " << id;
    for (size_t s = 0; s < ca.NumSlots(); ++s) {
      EXPECT_EQ(ca.slot(s).owner, cb.slot(s).owner);
      EXPECT_EQ(ca.slot(s).label, cb.slot(s).label);
    }
    for (size_t r = 0; r < ca.NumRows(); ++r) {
      // Bit-exact probabilities: memcmp, so -0.0 vs 0.0 or NaN payload
      // changes would be caught.
      double pa = ca.prob(r), pb = cb.prob(r);
      EXPECT_EQ(0, std::memcmp(&pa, &pb, sizeof(double)))
          << "component " << id << " row " << r << ": " << pa << " vs " << pb;
      for (size_t s = 0; s < ca.NumSlots(); ++s) {
        const PackedValue& va = ca.packed(r, s);
        const PackedValue& vb = cb.packed(r, s);
        EXPECT_TRUE(va == vb && va.tag() == vb.tag())
            << "component " << id << " cell (" << r << "," << s << "): "
            << va.ToValue().ToString() << " vs " << vb.ToValue().ToString();
      }
    }
  }

  ASSERT_EQ(a.RelationNames(), b.RelationNames());
  for (const std::string& name : a.RelationNames()) {
    const WsdRelation* ra = a.GetRelation(name).value();
    const WsdRelation* rb = b.GetRelation(name).value();
    EXPECT_EQ(ra->display_name(), rb->display_name());
    ASSERT_TRUE(ra->schema() == rb->schema()) << name;
    ASSERT_EQ(ra->NumTuples(), rb->NumTuples()) << name;
    for (size_t i = 0; i < ra->NumTuples(); ++i) {
      const WsdTuple& ta = ra->tuple(i);
      const WsdTuple& tb = rb->tuple(i);
      EXPECT_EQ(ta.deps, tb.deps) << name << " tuple " << i;
      ASSERT_EQ(ta.cells.size(), tb.cells.size());
      for (size_t c = 0; c < ta.cells.size(); ++c) {
        ASSERT_EQ(ta.cells[c].is_certain(), tb.cells[c].is_certain())
            << name << " tuple " << i << " cell " << c;
        if (ta.cells[c].is_certain()) {
          EXPECT_TRUE(ta.cells[c].value() == tb.cells[c].value())
              << name << " tuple " << i << " cell " << c;
        } else {
          EXPECT_TRUE(ta.cells[c].ref() == tb.cells[c].ref())
              << name << " tuple " << i << " cell " << c;
        }
      }
    }
  }
}

/// Bool-returning variant of ExpectDbsExactlyEqual for callers that need
/// to *test* equality (e.g. "is the recovered state one of the two
/// admissible oracle states?") rather than assert it.
inline bool DbsExactlyEqual(const WsdDb& a, const WsdDb& b) {
  if (a.options().max_component_rows != b.options().max_component_rows) {
    return false;
  }
  if (a.LiveComponents() != b.LiveComponents()) return false;
  for (ComponentId id : a.LiveComponents()) {
    const Component& ca = a.component(id);
    const Component& cb = b.component(id);
    if (ca.NumSlots() != cb.NumSlots() || ca.NumRows() != cb.NumRows()) {
      return false;
    }
    for (size_t s = 0; s < ca.NumSlots(); ++s) {
      if (ca.slot(s).owner != cb.slot(s).owner ||
          ca.slot(s).label != cb.slot(s).label) {
        return false;
      }
    }
    for (size_t r = 0; r < ca.NumRows(); ++r) {
      double pa = ca.prob(r), pb = cb.prob(r);
      if (std::memcmp(&pa, &pb, sizeof(double)) != 0) return false;
      for (size_t s = 0; s < ca.NumSlots(); ++s) {
        const PackedValue& va = ca.packed(r, s);
        const PackedValue& vb = cb.packed(r, s);
        if (!(va == vb) || va.tag() != vb.tag()) return false;
      }
    }
  }
  if (a.RelationNames() != b.RelationNames()) return false;
  for (const std::string& name : a.RelationNames()) {
    const WsdRelation* ra = a.GetRelation(name).value();
    const WsdRelation* rb = b.GetRelation(name).value();
    if (ra->display_name() != rb->display_name()) return false;
    if (!(ra->schema() == rb->schema())) return false;
    if (ra->NumTuples() != rb->NumTuples()) return false;
    for (size_t i = 0; i < ra->NumTuples(); ++i) {
      const WsdTuple& ta = ra->tuple(i);
      const WsdTuple& tb = rb->tuple(i);
      if (ta.deps != tb.deps || ta.cells.size() != tb.cells.size()) {
        return false;
      }
      for (size_t c = 0; c < ta.cells.size(); ++c) {
        if (ta.cells[c].is_certain() != tb.cells[c].is_certain()) {
          return false;
        }
        if (ta.cells[c].is_certain()) {
          if (!(ta.cells[c].value() == tb.cells[c].value())) return false;
        } else if (!(ta.cells[c].ref() == tb.cells[c].ref())) {
          return false;
        }
      }
    }
  }
  return true;
}

/// Options for RandomWsd.
struct RandomWsdOptions {
  size_t num_relations = 1;
  size_t min_tuples = 1;
  size_t max_tuples = 5;
  size_t min_cols = 2;
  size_t max_cols = 4;
  double p_uncertain_cell = 0.35;  ///< chance a cell becomes an or-set
  size_t max_alternatives = 3;
  double p_joint = 0.25;     ///< chance of a joint 2-field component per tuple
  int value_domain = 4;      ///< values drawn from small int/string domain
  bool allow_strings = true;
};

/// Generates a random world-set database with a mix of certain cells,
/// or-set cells and joint components; the total world count stays small
/// enough for enumeration.
inline WsdDb RandomWsd(Rng* rng, const RandomWsdOptions& opt = {}) {
  WsdDb db;
  for (size_t r = 0; r < opt.num_relations; ++r) {
    std::string name = "R" + std::to_string(r);
    size_t cols =
        opt.min_cols + rng->NextBelow(opt.max_cols - opt.min_cols + 1);
    Schema schema;
    std::vector<ValueType> types;
    for (size_t c = 0; c < cols; ++c) {
      ValueType t = (opt.allow_strings && rng->NextBernoulli(0.5))
                        ? ValueType::kString
                        : ValueType::kInt;
      types.push_back(t);
      Status st = schema.Add({"a" + std::to_string(c), t});
      EXPECT_TRUE(st.ok());
    }
    Status st = db.CreateRelation(name, schema);
    EXPECT_TRUE(st.ok());
    size_t tuples =
        opt.min_tuples + rng->NextBelow(opt.max_tuples - opt.min_tuples + 1);
    auto random_value = [&](ValueType t) {
      int v = static_cast<int>(rng->NextBelow(opt.value_domain));
      if (t == ValueType::kString) {
        return Value::String(std::string(1, static_cast<char>('a' + v)));
      }
      return Value::Int(v);
    };
    for (size_t i = 0; i < tuples; ++i) {
      std::vector<CellSpec> cells;
      for (size_t c = 0; c < cols; ++c) {
        if (rng->NextBernoulli(opt.p_uncertain_cell)) {
          size_t k = 2 + rng->NextBelow(opt.max_alternatives - 1);
          std::vector<double> probs = rng->NextProbabilities(static_cast<int>(k));
          std::vector<Alternative> alts;
          for (size_t a = 0; a < k; ++a) {
            alts.push_back({random_value(types[c]), probs[a]});
          }
          cells.push_back(CellSpec::OrSet(std::move(alts)));
        } else {
          cells.push_back(CellSpec::Certain(random_value(types[c])));
        }
      }
      // Occasionally share one joint component across two certain cells.
      bool joint = cols >= 2 && rng->NextBernoulli(opt.p_joint);
      size_t j1 = 0, j2 = 1;
      if (joint) {
        j1 = rng->NextBelow(cols);
        do {
          j2 = rng->NextBelow(cols);
        } while (j2 == j1);
        cells[j1] = CellSpec::Pending();
        cells[j2] = CellSpec::Pending();
      }
      auto handle = InsertTuple(&db, name, std::move(cells));
      EXPECT_TRUE(handle.ok()) << handle.status().ToString();
      if (joint) {
        size_t k = 2 + rng->NextBelow(2);
        std::vector<double> probs = rng->NextProbabilities(static_cast<int>(k));
        std::vector<std::pair<std::vector<Value>, double>> rows;
        for (size_t a = 0; a < k; ++a) {
          rows.push_back(
              {{random_value(types[j1]), random_value(types[j2])}, probs[a]});
        }
        auto cid = AddJointComponent(
            &db,
            {{*handle, "a" + std::to_string(j1)},
             {*handle, "a" + std::to_string(j2)}},
            rows);
        EXPECT_TRUE(cid.ok()) << cid.status().ToString();
      }
    }
  }
  return db;
}

}  // namespace testing_util
}  // namespace maybms

#endif  // MAYBMS_TESTS_TEST_UTIL_H_
