// Tests for WSD persistence: exact round-trips, distribution
// preservation, tricky values, and corrupted-input handling.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "core/builder.h"
#include "core/lifted.h"
#include "core/serialize.h"
#include "tests/test_util.h"
#include "worlds/enumerate.h"

namespace maybms {
namespace {

using testing_util::ExpectDistEq;
using testing_util::MedicalExample;
using testing_util::RelationDistribution;

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(SerializeTest, MedicalExampleRoundTrip) {
  WsdDb db = MedicalExample();
  std::stringstream ss;
  MAYBMS_ASSERT_OK(WriteWsdDb(db, ss));
  auto back = ReadWsdDb(ss);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  MAYBMS_ASSERT_OK(back->CheckInvariants());
  EXPECT_EQ(back->NumLiveComponents(), db.NumLiveComponents());
  auto a = EnumerateWorlds(db);
  auto b = EnumerateWorlds(*back);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectDistEq(RelationDistribution(*a, "R"), RelationDistribution(*b, "R"));
}

TEST(SerializeTest, FileRoundTrip) {
  WsdDb db = MedicalExample();
  std::string path = TempPath("maybms_roundtrip.wsd");
  MAYBMS_ASSERT_OK(SaveWsdDb(db, path));
  auto back = LoadWsdDb(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->GetRelation("R").value()->NumTuples(), 2u);
  std::remove(path.c_str());
}

TEST(SerializeTest, TrickyValuesSurvive) {
  WsdDb db;
  MAYBMS_ASSERT_OK(db.CreateRelation(
      "t", Schema({{"s", ValueType::kString},
                   {"d", ValueType::kDouble},
                   {"b", ValueType::kBool},
                   {"i", ValueType::kInt}})));
  ASSERT_TRUE(
      InsertTuple(&db, "t",
                  {CellSpec::OrSet({{Value::String("with space\nand\n"
                                                   "newlines: s5:x"),
                                     0.5},
                                    {Value::String(""), 0.5}}),
                   CellSpec::Certain(Value::Double(-0.1)),
                   CellSpec::Certain(Value::Bool(false)),
                   CellSpec::Certain(Value::Int(-9223372036854775807LL))})
          .ok());
  ASSERT_TRUE(InsertTuple(&db, "t",
                          {CellSpec::Certain(Value::Null()),
                           CellSpec::Certain(Value::Double(1e-300)),
                           CellSpec::Certain(Value::Null()),
                           CellSpec::Certain(Value::Null())})
                  .ok());
  std::stringstream ss;
  MAYBMS_ASSERT_OK(WriteWsdDb(db, ss));
  auto back = ReadWsdDb(ss);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  auto a = EnumerateWorlds(db);
  auto b = EnumerateWorlds(*back);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectDistEq(RelationDistribution(*a, "t"), RelationDistribution(*b, "t"));
}

TEST(SerializeTest, GapsInComponentIdsSurvive) {
  // Removing a component leaves a dead id; the writer/reader must keep
  // the remaining ids stable because cells reference them.
  WsdDb db = MedicalExample();
  // Force a gap: merge the two components (kills both ids, creates a new
  // higher one), so the live set is {2} with dead 0 and 1.
  auto merged = db.MergeComponents(db.LiveComponents(), 1u << 12);
  ASSERT_TRUE(merged.ok());
  std::stringstream ss;
  MAYBMS_ASSERT_OK(WriteWsdDb(db, ss));
  auto back = ReadWsdDb(ss);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  MAYBMS_ASSERT_OK(back->CheckInvariants());
  auto a = EnumerateWorlds(db);
  auto b = EnumerateWorlds(*back);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectDistEq(RelationDistribution(*a, "R"), RelationDistribution(*b, "R"));
}

TEST(SerializeTest, LoadedDbSupportsFurtherOperations) {
  WsdDb db = MedicalExample();
  std::stringstream ss;
  MAYBMS_ASSERT_OK(WriteWsdDb(db, ss));
  auto back = ReadWsdDb(ss);
  ASSERT_TRUE(back.ok());
  // Owner counter was restored: new inserts must not collide with loaded
  // owners.
  auto h = InsertTuple(&*back, "R",
                       {CellSpec::UniformOrSet({Value::String("x"),
                                                Value::String("y")}),
                        CellSpec::Certain(Value::String("t")),
                        CellSpec::Certain(Value::String("s"))});
  ASSERT_TRUE(h.ok());
  MAYBMS_ASSERT_OK(back->CheckInvariants());
  auto pred = Expr::Compare(CompareOp::kEq, Expr::Column("Diagnosis"),
                            Expr::Const(Value::String("pregnancy")));
  MAYBMS_ASSERT_OK(LiftedSelect(&*back, "R", pred, "ans"));
  MAYBMS_ASSERT_OK(back->CheckInvariants());
}

class SerializeRandom : public ::testing::TestWithParam<int> {};

TEST_P(SerializeRandom, RoundTripPreservesDistribution) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 6121 + 41);
  testing_util::RandomWsdOptions opt;
  opt.p_uncertain_cell = 0.5;
  opt.p_joint = 0.4;
  WsdDb db = testing_util::RandomWsd(&rng, opt);
  std::stringstream ss;
  MAYBMS_ASSERT_OK(WriteWsdDb(db, ss));
  auto back = ReadWsdDb(ss);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  MAYBMS_ASSERT_OK(back->CheckInvariants());
  auto a = EnumerateWorlds(db, 1u << 16);
  auto b = EnumerateWorlds(*back, 1u << 16);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectDistEq(RelationDistribution(*a, "R0"),
               RelationDistribution(*b, "R0"));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeRandom, ::testing::Range(0, 15));

TEST(SerializeTest, CorruptedInputsFailCleanly) {
  auto parse = [](const std::string& text) {
    std::stringstream ss(text);
    return ReadWsdDb(ss).status().code();
  };
  EXPECT_EQ(parse(""), StatusCode::kParseError);
  EXPECT_EQ(parse("NOT-A-WSD 1"), StatusCode::kParseError);
  EXPECT_EQ(parse("MAYBMS-WSD 99"), StatusCode::kUnsupported);
  EXPECT_EQ(parse("MAYBMS-WSD 1\nOPTIONS x"), StatusCode::kParseError);
  // Truncated mid-component.
  WsdDb db = MedicalExample();
  std::stringstream ss;
  MAYBMS_ASSERT_OK(WriteWsdDb(db, ss));
  std::string full = ss.str();
  EXPECT_EQ(parse(full.substr(0, full.size() / 2)), StatusCode::kParseError);
  EXPECT_EQ(LoadWsdDb("/nonexistent/x.wsd").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace maybms
