// Tests for WSD persistence: exact round-trips, distribution
// preservation, tricky values, and corrupted-input handling.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/builder.h"
#include "core/lifted.h"
#include "core/serialize.h"
#include "storage/snapshot_io.h"
#include "tests/test_util.h"
#include "worlds/enumerate.h"

namespace maybms {
namespace {

using testing_util::ExpectDistEq;
using testing_util::MedicalExample;
using testing_util::RelationDistribution;

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(SerializeTest, MedicalExampleRoundTrip) {
  WsdDb db = MedicalExample();
  std::stringstream ss;
  MAYBMS_ASSERT_OK(WriteWsdDb(db, ss));
  auto back = ReadWsdDb(ss);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  MAYBMS_ASSERT_OK(back->CheckInvariants());
  EXPECT_EQ(back->NumLiveComponents(), db.NumLiveComponents());
  auto a = EnumerateWorlds(db);
  auto b = EnumerateWorlds(*back);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectDistEq(RelationDistribution(*a, "R"), RelationDistribution(*b, "R"));
}

TEST(SerializeTest, FileRoundTrip) {
  WsdDb db = MedicalExample();
  std::string path = TempPath("maybms_roundtrip.wsd");
  MAYBMS_ASSERT_OK(SaveWsdDb(db, path));
  auto back = LoadWsdDb(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->GetRelation("R").value()->NumTuples(), 2u);
  std::remove(path.c_str());
}

TEST(SerializeTest, TrickyValuesSurvive) {
  WsdDb db;
  MAYBMS_ASSERT_OK(db.CreateRelation(
      "t", Schema({{"s", ValueType::kString},
                   {"d", ValueType::kDouble},
                   {"b", ValueType::kBool},
                   {"i", ValueType::kInt}})));
  ASSERT_TRUE(
      InsertTuple(&db, "t",
                  {CellSpec::OrSet({{Value::String("with space\nand\n"
                                                   "newlines: s5:x"),
                                     0.5},
                                    {Value::String(""), 0.5}}),
                   CellSpec::Certain(Value::Double(-0.1)),
                   CellSpec::Certain(Value::Bool(false)),
                   CellSpec::Certain(Value::Int(-9223372036854775807LL))})
          .ok());
  ASSERT_TRUE(InsertTuple(&db, "t",
                          {CellSpec::Certain(Value::Null()),
                           CellSpec::Certain(Value::Double(1e-300)),
                           CellSpec::Certain(Value::Null()),
                           CellSpec::Certain(Value::Null())})
                  .ok());
  std::stringstream ss;
  MAYBMS_ASSERT_OK(WriteWsdDb(db, ss));
  auto back = ReadWsdDb(ss);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  auto a = EnumerateWorlds(db);
  auto b = EnumerateWorlds(*back);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectDistEq(RelationDistribution(*a, "t"), RelationDistribution(*b, "t"));
}

TEST(SerializeTest, GapsInComponentIdsSurvive) {
  // Removing a component leaves a dead id; the writer/reader must keep
  // the remaining ids stable because cells reference them.
  WsdDb db = MedicalExample();
  // Force a gap: merge the two components (kills both ids, creates a new
  // higher one), so the live set is {2} with dead 0 and 1.
  auto merged = db.MergeComponents(db.LiveComponents(), 1u << 12);
  ASSERT_TRUE(merged.ok());
  std::stringstream ss;
  MAYBMS_ASSERT_OK(WriteWsdDb(db, ss));
  auto back = ReadWsdDb(ss);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  MAYBMS_ASSERT_OK(back->CheckInvariants());
  auto a = EnumerateWorlds(db);
  auto b = EnumerateWorlds(*back);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectDistEq(RelationDistribution(*a, "R"), RelationDistribution(*b, "R"));
}

TEST(SerializeTest, LoadedDbSupportsFurtherOperations) {
  WsdDb db = MedicalExample();
  std::stringstream ss;
  MAYBMS_ASSERT_OK(WriteWsdDb(db, ss));
  auto back = ReadWsdDb(ss);
  ASSERT_TRUE(back.ok());
  // Owner counter was restored: new inserts must not collide with loaded
  // owners.
  auto h = InsertTuple(&*back, "R",
                       {CellSpec::UniformOrSet({Value::String("x"),
                                                Value::String("y")}),
                        CellSpec::Certain(Value::String("t")),
                        CellSpec::Certain(Value::String("s"))});
  ASSERT_TRUE(h.ok());
  MAYBMS_ASSERT_OK(back->CheckInvariants());
  auto pred = Expr::Compare(CompareOp::kEq, Expr::Column("Diagnosis"),
                            Expr::Const(Value::String("pregnancy")));
  MAYBMS_ASSERT_OK(LiftedSelect(&*back, "R", pred, "ans"));
  MAYBMS_ASSERT_OK(back->CheckInvariants());
}

class SerializeRandom : public ::testing::TestWithParam<int> {};

TEST_P(SerializeRandom, RoundTripPreservesDistribution) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 6121 + 41);
  testing_util::RandomWsdOptions opt;
  opt.p_uncertain_cell = 0.5;
  opt.p_joint = 0.4;
  WsdDb db = testing_util::RandomWsd(&rng, opt);
  std::stringstream ss;
  MAYBMS_ASSERT_OK(WriteWsdDb(db, ss));
  auto back = ReadWsdDb(ss);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  MAYBMS_ASSERT_OK(back->CheckInvariants());
  auto a = EnumerateWorlds(db, 1u << 16);
  auto b = EnumerateWorlds(*back, 1u << 16);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectDistEq(RelationDistribution(*a, "R0"),
               RelationDistribution(*b, "R0"));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeRandom, ::testing::Range(0, 15));

// --- binary columnar snapshot format ("MAYBMS-WSD 2") ----------------------

TEST(SerializeBinaryTest, MedicalExampleExactRoundTrip) {
  WsdDb db = MedicalExample();
  std::stringstream ss;
  MAYBMS_ASSERT_OK(WriteWsdDbBinary(db, ss));
  auto back = ReadWsdDb(ss);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  MAYBMS_ASSERT_OK(back->CheckInvariants());
  testing_util::ExpectDbsExactlyEqual(db, *back);
  auto a = EnumerateWorlds(db);
  auto b = EnumerateWorlds(*back);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectDistEq(RelationDistribution(*a, "R"), RelationDistribution(*b, "R"));
}

TEST(SerializeBinaryTest, FileRoundTripWithFormatNegotiation) {
  WsdDb db = MedicalExample();
  std::string bin_path = TempPath("maybms_roundtrip_v2.wsd");
  std::string text_path = TempPath("maybms_roundtrip_v1.wsd");
  MAYBMS_ASSERT_OK(SaveWsdDb(db, bin_path, SnapshotFormat::kBinary));
  MAYBMS_ASSERT_OK(SaveWsdDb(db, text_path, SnapshotFormat::kText));
  // LoadWsdDb negotiates the format from the header line of each file.
  auto from_bin = LoadWsdDb(bin_path);
  auto from_text = LoadWsdDb(text_path);
  ASSERT_TRUE(from_bin.ok()) << from_bin.status().ToString();
  ASSERT_TRUE(from_text.ok()) << from_text.status().ToString();
  testing_util::ExpectDbsExactlyEqual(*from_text, *from_bin);
  std::remove(bin_path.c_str());
  std::remove(text_path.c_str());
}

TEST(SerializeBinaryTest, TrickyValuesSurvive) {
  WsdDb db;
  MAYBMS_ASSERT_OK(db.CreateRelation(
      "t", Schema({{"s", ValueType::kString},
                   {"d", ValueType::kDouble},
                   {"b", ValueType::kBool},
                   {"i", ValueType::kInt}})));
  std::string with_nul = "nul";
  with_nul += '\0';
  with_nul += "inside";
  ASSERT_TRUE(
      InsertTuple(&db, "t",
                  {CellSpec::OrSet({{Value::String("with space\nand\n"
                                                   "newlines: s5:x"),
                                     0.5},
                                    {Value::String(with_nul), 0.25},
                                    {Value::String(""), 0.25}}),
                   CellSpec::Certain(Value::Double(-0.0)),
                   CellSpec::Certain(Value::Bool(false)),
                   CellSpec::Certain(Value::Int(-9223372036854775807LL))})
          .ok());
  ASSERT_TRUE(InsertTuple(&db, "t",
                          {CellSpec::Certain(Value::Null()),
                           CellSpec::Certain(Value::Double(1e-300)),
                           CellSpec::Certain(Value::Null()),
                           CellSpec::Certain(Value::Null())})
                  .ok());
  std::stringstream ss;
  MAYBMS_ASSERT_OK(WriteWsdDbBinary(db, ss));
  auto back = ReadWsdDb(ss);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  testing_util::ExpectDbsExactlyEqual(db, *back);
}

TEST(SerializeBinaryTest, EmptyAndDegenerateDbsRoundTrip) {
  // Fully empty database.
  {
    WsdDb db;
    std::stringstream ss;
    MAYBMS_ASSERT_OK(WriteWsdDbBinary(db, ss));
    auto back = ReadWsdDb(ss);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    testing_util::ExpectDbsExactlyEqual(db, *back);
  }
  // A relation with no tuples, next to a populated one.
  {
    WsdDb db = MedicalExample();
    MAYBMS_ASSERT_OK(
        db.CreateRelation("empty", Schema({{"x", ValueType::kInt}})));
    std::stringstream ss;
    MAYBMS_ASSERT_OK(WriteWsdDbBinary(db, ss));
    auto back = ReadWsdDb(ss);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    testing_util::ExpectDbsExactlyEqual(db, *back);
  }
}

TEST(SerializeBinaryTest, GapsInComponentIdsSurvive) {
  WsdDb db = MedicalExample();
  auto merged = db.MergeComponents(db.LiveComponents(), 1u << 12);
  ASSERT_TRUE(merged.ok());
  std::stringstream ss;
  MAYBMS_ASSERT_OK(WriteWsdDbBinary(db, ss));
  auto back = ReadWsdDb(ss);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  MAYBMS_ASSERT_OK(back->CheckInvariants());
  testing_util::ExpectDbsExactlyEqual(db, *back);
}

TEST(SerializeBinaryTest, LoadedDbSupportsFurtherOperations) {
  WsdDb db = MedicalExample();
  std::stringstream ss;
  MAYBMS_ASSERT_OK(WriteWsdDbBinary(db, ss));
  auto back = ReadWsdDb(ss);
  ASSERT_TRUE(back.ok());
  // The owner counter was persisted: new inserts must not collide with
  // loaded owners.
  auto h = InsertTuple(&*back, "R",
                       {CellSpec::UniformOrSet({Value::String("x"),
                                                Value::String("y")}),
                        CellSpec::Certain(Value::String("t")),
                        CellSpec::Certain(Value::String("s"))});
  ASSERT_TRUE(h.ok());
  MAYBMS_ASSERT_OK(back->CheckInvariants());
  auto pred = Expr::Compare(CompareOp::kEq, Expr::Column("Diagnosis"),
                            Expr::Const(Value::String("pregnancy")));
  MAYBMS_ASSERT_OK(LiftedSelect(&*back, "R", pred, "ans"));
  MAYBMS_ASSERT_OK(back->CheckInvariants());
}

TEST(SerializeBinaryTest, EveryTruncationFailsCleanly) {
  WsdDb db = MedicalExample();
  std::stringstream ss;
  MAYBMS_ASSERT_OK(WriteWsdDbBinary(db, ss));
  std::string full = ss.str();
  for (size_t len = 0; len < full.size(); ++len) {
    std::stringstream cut(full.substr(0, len));
    auto r = ReadWsdDb(cut);
    EXPECT_FALSE(r.ok()) << "prefix of length " << len << " parsed";
  }
}

TEST(SerializeBinaryTest, EveryByteFlipFailsCleanly) {
  WsdDb db = MedicalExample();
  std::stringstream ss;
  MAYBMS_ASSERT_OK(WriteWsdDbBinary(db, ss));
  std::string full = ss.str();
  // Flipping any single byte must yield a clean Status — the section
  // checksums catch payload damage, the framing catches the rest. (A
  // flip inside the header line may instead select the text reader or
  // an unsupported version; those also fail cleanly.)
  for (size_t i = 0; i < full.size(); ++i) {
    std::string bad = full;
    bad[i] = static_cast<char>(bad[i] ^ 0x20);
    std::stringstream in(bad);
    auto r = ReadWsdDb(in);
    EXPECT_FALSE(r.ok()) << "byte flip at offset " << i << " parsed";
  }
}

TEST(SerializeBinaryTest, ChecksumMismatchIsReported) {
  WsdDb db = MedicalExample();
  std::stringstream ss;
  MAYBMS_ASSERT_OK(WriteWsdDbBinary(db, ss));
  std::string full = ss.str();
  // Corrupt one byte inside the last section payload (RELS), ahead of
  // the empty END section's 20-byte framing.
  size_t off = full.size() - 30;
  full[off] = static_cast<char>(full[off] ^ 0xff);
  std::stringstream in(full);
  auto r = ReadWsdDb(in);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(SerializeBinaryTest, HugeComponentIdIsRejectedNotAllocated) {
  // A checksummed-but-hostile snapshot demanding a component id with
  // ~2^28 dead-id gaps must fail fast instead of materializing them.
  std::stringstream out;
  out << "MAYBMS-WSD 2\n";
  std::string meta;
  PutPod(&meta, static_cast<uint32_t>(0x32445357));  // endian mark
  PutPod(&meta, static_cast<uint64_t>(1u << 20));    // max_component_rows
  PutPod(&meta, static_cast<uint64_t>(1));           // owner counter
  MAYBMS_ASSERT_OK(WriteSnapshotSection(
      out, SnapshotFourCC('M', 'E', 'T', 'A'), meta));
  std::string strs;
  PutPod(&strs, static_cast<uint32_t>(0));  // no strings
  PutPod(&strs, static_cast<uint64_t>(0));  // blob length
  PutPod(&strs, static_cast<uint64_t>(0));  // sentinel offset
  MAYBMS_ASSERT_OK(WriteSnapshotSection(
      out, SnapshotFourCC('S', 'T', 'R', 'S'), strs));
  std::string comp;
  PutPod(&comp, static_cast<uint32_t>(1));           // one component...
  PutPod(&comp, static_cast<uint32_t>(0x0fffffff));  // ...at a huge id
  PutPod(&comp, static_cast<uint32_t>(1));           // n_slots
  PutPod(&comp, static_cast<uint64_t>(1));           // n_rows
  PutPod(&comp, static_cast<uint64_t>(1));           // slot owner
  PutLenString(&comp, "x");                          // slot label
  PutPod(&comp, 1.0);                                // prob column
  PutPod(&comp, static_cast<uint8_t>(2));            // tag: bool
  PutPod(&comp, static_cast<uint64_t>(1));           // payload
  MAYBMS_ASSERT_OK(WriteSnapshotSection(
      out, SnapshotFourCC('C', 'O', 'M', 'P'), comp));
  auto r = ReadWsdDb(out);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("dead-id gaps"), std::string::npos)
      << r.status().ToString();
}

TEST(SerializeBinaryTest, HugeSlotCountIsRejectedNotAllocated) {
  // A checksummed COMP section declaring 2^32-1 slots in a tiny payload
  // must fail on the count bound, not attempt a ~100GB reserve.
  std::stringstream out;
  out << "MAYBMS-WSD 2\n";
  std::string meta;
  PutPod(&meta, static_cast<uint32_t>(0x32445357));
  PutPod(&meta, static_cast<uint64_t>(1u << 20));
  PutPod(&meta, static_cast<uint64_t>(1));
  MAYBMS_ASSERT_OK(WriteSnapshotSection(
      out, SnapshotFourCC('M', 'E', 'T', 'A'), meta));
  std::string strs;
  PutPod(&strs, static_cast<uint32_t>(0));
  PutPod(&strs, static_cast<uint64_t>(0));
  PutPod(&strs, static_cast<uint64_t>(0));
  MAYBMS_ASSERT_OK(WriteSnapshotSection(
      out, SnapshotFourCC('S', 'T', 'R', 'S'), strs));
  std::string comp;
  PutPod(&comp, static_cast<uint32_t>(1));           // one component
  PutPod(&comp, static_cast<uint32_t>(0));           // id 0
  PutPod(&comp, static_cast<uint32_t>(0xffffffff));  // hostile n_slots
  PutPod(&comp, static_cast<uint64_t>(1));           // n_rows
  MAYBMS_ASSERT_OK(WriteSnapshotSection(
      out, SnapshotFourCC('C', 'O', 'M', 'P'), comp));
  auto r = ReadWsdDb(out);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("slot count"), std::string::npos)
      << r.status().ToString();
}

TEST(SerializeTest, HugeComponentIdIsRejectedNotAllocated) {
  std::stringstream in(
      "MAYBMS-WSD 1\nOPTIONS 16\nCOMPONENTS 1\n"
      "COMPONENT 999999999 1 1\nSLOT 1 s1:x\nROW 1 T\nRELATIONS 0\nEND\n");
  auto r = ReadWsdDb(in);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("dead-id gaps"), std::string::npos)
      << r.status().ToString();
}

class SerializeBinaryRandom : public ::testing::TestWithParam<int> {};

TEST_P(SerializeBinaryRandom, ExactRoundTrip) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7121 + 13);
  testing_util::RandomWsdOptions opt;
  opt.p_uncertain_cell = 0.5;
  opt.p_joint = 0.4;
  WsdDb db = testing_util::RandomWsd(&rng, opt);
  std::stringstream ss;
  MAYBMS_ASSERT_OK(WriteWsdDbBinary(db, ss));
  auto back = ReadWsdDb(ss);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  MAYBMS_ASSERT_OK(back->CheckInvariants());
  testing_util::ExpectDbsExactlyEqual(db, *back);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeBinaryRandom,
                         ::testing::Range(0, 15));

// --- v1 compatibility pin ---------------------------------------------------
//
// tests/data/medical_v1.wsd is a checked-in text snapshot of the
// paper's medical example, written by the v1 writer when the binary
// format landed. v1 files must stay readable forever, and the v1
// writer must keep producing byte-identical output for the same
// database — both are asserted against the fixture.

TEST(SerializeCompatTest, V1FixtureLoadsAndRewritesBitIdentically) {
  std::string path = std::string(MAYBMS_TEST_DATA_DIR) + "/medical_v1.wsd";
  std::ifstream fixture(path, std::ios::binary);
  ASSERT_TRUE(fixture.good()) << "missing fixture " << path;
  std::stringstream raw;
  raw << fixture.rdbuf();

  auto loaded = LoadWsdDb(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  MAYBMS_ASSERT_OK(loaded->CheckInvariants());
  testing_util::ExpectDbsExactlyEqual(MedicalExample(), *loaded);

  std::stringstream rewritten;
  MAYBMS_ASSERT_OK(WriteWsdDb(*loaded, rewritten));
  EXPECT_EQ(raw.str(), rewritten.str())
      << "v1 writer output drifted from the checked-in fixture";
}

// --- v2 compatibility pin ---------------------------------------------------
//
// tests/data/medical_v2.wsd is the same database written by the v2
// binary writer when v3 (sharded, mmap-able) became the default. Like
// v1, old v2 snapshots must stay readable, and WriteWsdDbBinary must
// keep producing byte-identical v2 output.

TEST(SerializeCompatTest, V2FixtureLoadsAndRewritesBitIdentically) {
  std::string path = std::string(MAYBMS_TEST_DATA_DIR) + "/medical_v2.wsd";
  std::ifstream fixture(path, std::ios::binary);
  ASSERT_TRUE(fixture.good()) << "missing fixture " << path;
  std::stringstream raw;
  raw << fixture.rdbuf();

  auto loaded = LoadWsdDb(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  MAYBMS_ASSERT_OK(loaded->CheckInvariants());
  testing_util::ExpectDbsExactlyEqual(MedicalExample(), *loaded);

  std::stringstream rewritten;
  MAYBMS_ASSERT_OK(WriteWsdDbBinary(*loaded, rewritten));
  EXPECT_EQ(raw.str(), rewritten.str())
      << "v2 writer output drifted from the checked-in fixture";
}

// --- v3 (sharded) round trips -----------------------------------------------

TEST(SerializeV3Test, MedicalRoundTrip) {
  WsdDb db = MedicalExample();
  std::stringstream ss;
  MAYBMS_ASSERT_OK(WriteWsdDbBinaryV3(db, ss));
  auto back = ReadWsdDb(ss);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  MAYBMS_ASSERT_OK(back->CheckInvariants());
  testing_util::ExpectDbsExactlyEqual(db, *back);
}

TEST(SerializeV3Test, MultiShardRoundTripPreservesTupleOrder) {
  Rng rng(991);
  testing_util::RandomWsdOptions opt;
  opt.p_uncertain_cell = 0.5;
  opt.p_joint = 0.4;
  WsdDb db = testing_util::RandomWsd(&rng, opt);
  // Tiny shards: every relation splits into many blocks.
  db.mutable_options().rows_per_shard = 3;
  std::stringstream ss;
  MAYBMS_ASSERT_OK(WriteWsdDbBinaryV3(db, ss));
  auto back = ReadWsdDb(ss);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  MAYBMS_ASSERT_OK(back->CheckInvariants());
  testing_util::ExpectDbsExactlyEqual(db, *back);
}

class SerializeV3Random : public ::testing::TestWithParam<int> {};

TEST_P(SerializeV3Random, ExactRoundTrip) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 40127 + 7);
  testing_util::RandomWsdOptions opt;
  opt.p_uncertain_cell = 0.5;
  opt.p_joint = 0.4;
  WsdDb db = testing_util::RandomWsd(&rng, opt);
  db.mutable_options().rows_per_shard = 1 + GetParam() % 5;
  std::stringstream ss;
  MAYBMS_ASSERT_OK(WriteWsdDbBinaryV3(db, ss));
  auto back = ReadWsdDb(ss);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  MAYBMS_ASSERT_OK(back->CheckInvariants());
  testing_util::ExpectDbsExactlyEqual(db, *back);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeV3Random, ::testing::Range(0, 15));

TEST(SerializeV3Test, SaveDefaultsToV3AndKeepsV2Selectable) {
  WsdDb db = MedicalExample();
  std::string dir = ::testing::TempDir();
  std::string v3_path = dir + "/medical_default.wsd";
  std::string v2_path = dir + "/medical_v2_explicit.wsd";
  MAYBMS_ASSERT_OK(SaveWsdDb(db, v3_path, SnapshotFormat::kBinary));
  MAYBMS_ASSERT_OK(SaveWsdDb(db, v2_path, SnapshotFormat::kBinaryV2));

  auto header = [](const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    std::string line;
    std::getline(in, line);
    return line;
  };
  EXPECT_EQ(header(v3_path), "MAYBMS-WSD 3");
  EXPECT_EQ(header(v2_path), "MAYBMS-WSD 2");
  for (const auto& p : {v3_path, v2_path}) {
    auto back = LoadWsdDb(p);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    testing_util::ExpectDbsExactlyEqual(db, *back);
  }
}

TEST(SerializeTest, CorruptedInputsFailCleanly) {
  auto parse = [](const std::string& text) {
    std::stringstream ss(text);
    return ReadWsdDb(ss).status().code();
  };
  EXPECT_EQ(parse(""), StatusCode::kParseError);
  EXPECT_EQ(parse("NOT-A-WSD 1"), StatusCode::kParseError);
  EXPECT_EQ(parse("MAYBMS-WSD 99"), StatusCode::kUnsupported);
  EXPECT_EQ(parse("MAYBMS-WSD 1\nOPTIONS x"), StatusCode::kParseError);
  // Truncated mid-component.
  WsdDb db = MedicalExample();
  std::stringstream ss;
  MAYBMS_ASSERT_OK(WriteWsdDb(db, ss));
  std::string full = ss.str();
  EXPECT_EQ(parse(full.substr(0, full.size() / 2)), StatusCode::kParseError);
  EXPECT_EQ(LoadWsdDb("/nonexistent/x.wsd").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace maybms
