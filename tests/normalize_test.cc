// Tests for normalization: each step individually, fixpoint behaviour,
// and the property that normalization preserves the represented
// world-set distribution exactly.
#include <gtest/gtest.h>

#include "core/builder.h"
#include "core/normalize.h"
#include "tests/test_util.h"
#include "worlds/enumerate.h"

namespace maybms {
namespace {

using testing_util::ExpectDistEq;
using testing_util::MedicalExample;
using testing_util::RandomWsd;
using testing_util::RandomWsdOptions;
using testing_util::RelationDistribution;

// Sets a component value to ⊥ directly, for crafting denormalized inputs.
void SetBottom(WsdDb* db, ComponentId cid, size_t row, uint32_t slot) {
  db->mutable_component(cid).SetPacked(row, slot, PackedValue::Bottom());
}

TEST(NormalizeTest, IdempotentOnNormalForm) {
  WsdDb db = MedicalExample();
  auto stats = Normalize(&db);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->tuples_removed, 0u);
  EXPECT_EQ(stats->slots_dropped, 0u);
  EXPECT_EQ(stats->cells_inlined, 0u);
  EXPECT_EQ(db.NumLiveComponents(), 2u);
}

TEST(NormalizeTest, BottomPropagationWithinRow) {
  WsdDb db = MedicalExample();
  // Make Diagnosis of the first c1 row ⊥ (as the paper's selection does);
  // propagation must extend ⊥ to the Test field in the same row.
  const WsdRelation* rel = db.GetRelation("R").value();
  const Cell& diag = rel->tuple(0).cells[0];
  ASSERT_TRUE(diag.is_ref());
  ComponentId c1 = diag.ref().cid;
  SetBottom(&db, c1, 0, diag.ref().slot);
  auto stats = Normalize(&db);
  ASSERT_TRUE(stats.ok());
  // In the surviving component row, both fields are ⊥ — and with one row
  // now fully dead, r1 survives only via the 'hypothyroidism' row.
  auto worlds = EnumerateWorlds(db);
  ASSERT_TRUE(worlds.ok());
  for (const auto& w : *worlds) {
    const Relation& r = *w.catalog.Get("R").value();
    for (const auto& row : r.rows()) {
      EXPECT_NE(row[0], Value::String("pregnancy"));
    }
  }
}

TEST(NormalizeTest, DeadTupleRemoval) {
  WsdDb db = MedicalExample();
  const WsdRelation* rel = db.GetRelation("R").value();
  const Cell& diag = rel->tuple(0).cells[0];
  ComponentId c1 = diag.ref().cid;
  // Kill r1 in every world: ⊥ in both rows of its Diagnosis slot.
  SetBottom(&db, c1, 0, diag.ref().slot);
  SetBottom(&db, c1, 1, diag.ref().slot);
  auto stats = Normalize(&db);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->tuples_removed, 1u);
  EXPECT_EQ(db.GetRelation("R").value()->NumTuples(), 1u);
  // r1's components are garbage-collected entirely.
  EXPECT_EQ(db.NumLiveComponents(), 0u);
}

TEST(NormalizeTest, CertainSlotInlining) {
  WsdDb db;
  MAYBMS_ASSERT_OK(db.CreateRelation("r", Schema({{"x", ValueType::kInt},
                                                  {"y", ValueType::kInt}})));
  auto h = InsertTuple(&db, "r",
                       {CellSpec::Pending(), CellSpec::Pending()});
  ASSERT_TRUE(h.ok());
  // Joint component where x is constant but y varies.
  auto cid = AddJointComponent(
      &db, {{*h, "x"}, {*h, "y"}},
      {{{Value::Int(7), Value::Int(1)}, 0.5},
       {{Value::Int(7), Value::Int(2)}, 0.5}});
  ASSERT_TRUE(cid.ok());
  auto stats = Normalize(&db);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->cells_inlined, 1u);
  const WsdRelation* rel = db.GetRelation("r").value();
  EXPECT_TRUE(rel->tuple(0).cells[0].is_certain());
  EXPECT_EQ(rel->tuple(0).cells[0].value(), Value::Int(7));
  EXPECT_TRUE(rel->tuple(0).cells[1].is_ref());
}

TEST(NormalizeTest, SingleRowComponentFullyInlines) {
  WsdDb db;
  MAYBMS_ASSERT_OK(db.CreateRelation("r", Schema({{"x", ValueType::kInt}})));
  auto h = InsertTuple(&db, "r",
                       {CellSpec::OrSet({{Value::Int(3), 1.0}})});
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(db.NumLiveComponents(), 1u);
  auto stats = Normalize(&db);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(db.NumLiveComponents(), 0u);
  EXPECT_TRUE(db.GetRelation("r").value()->tuple(0).cells[0].is_certain());
}

TEST(NormalizeTest, RowDedupMergesProbabilities) {
  WsdDb db;
  MAYBMS_ASSERT_OK(db.CreateRelation("r", Schema({{"x", ValueType::kInt}})));
  auto h = InsertTuple(&db, "r",
                       {CellSpec::OrSet({{Value::Int(1), 0.25},
                                         {Value::Int(1), 0.25},
                                         {Value::Int(2), 0.5}})});
  ASSERT_TRUE(h.ok());
  auto stats = Normalize(&db);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows_merged, 1u);
  const Component& c = db.component(db.LiveComponents()[0]);
  ASSERT_EQ(c.NumRows(), 2u);
  EXPECT_NEAR(c.prob(0), 0.5, 1e-12);
}

TEST(NormalizeTest, UnreferencedSlotWithBottomBecomesExistenceSlot) {
  WsdDb db = MedicalExample();
  const WsdRelation* rel = db.GetRelation("R").value();
  const Cell& sym = rel->tuple(0).cells[2];
  ASSERT_TRUE(sym.is_ref());
  ComponentId c2 = sym.ref().cid;
  // ⊥ one symptom row (r1 dead in 30% of worlds), then project Symptom
  // away by clearing the reference.
  SetBottom(&db, c2, 1, sym.ref().slot);
  WsdRelation* mrel = db.GetMutableRelation("R").value();
  // Rebuild relation without the Symptom column.
  Schema s2({{"Diagnosis", ValueType::kString}, {"Test", ValueType::kString}});
  for (auto& t : mrel->mutable_tuples()) t.cells.resize(2);
  mrel->set_schema(s2);
  auto stats = Normalize(&db);
  ASSERT_TRUE(stats.ok());
  MAYBMS_ASSERT_OK(db.CheckInvariants());
  // r1 must still be absent in 30% of worlds: the ⊥ pattern survived as an
  // existence slot even though Symptom was projected away.
  EXPECT_NEAR(db.ExistenceProbability(db.GetRelation("R").value()->tuple(0)),
              0.7, 1e-9);
}

TEST(NormalizeTest, StatsCountIterations) {
  WsdDb db = MedicalExample();
  auto stats = Normalize(&db);
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->iterations, 1u);
}

class NormalizePreservesDistribution : public ::testing::TestWithParam<int> {};

TEST_P(NormalizePreservesDistribution, RandomWsds) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31337 + 11);
  RandomWsdOptions opt;
  opt.p_uncertain_cell = 0.5;
  opt.p_joint = 0.5;
  WsdDb db = RandomWsd(&rng, opt);
  // Inject some ⊥ to denormalize.
  for (ComponentId id : db.LiveComponents()) {
    Component& c = db.mutable_component(id);
    for (size_t r = 0; r < c.NumRows(); ++r) {
      if (rng.NextBernoulli(0.2)) {
        c.SetPacked(r, rng.NextBelow(c.NumSlots()), PackedValue::Bottom());
      }
    }
  }
  auto before = EnumerateWorlds(db, 1u << 16);
  ASSERT_TRUE(before.ok());
  auto before_dist = RelationDistribution(*before, "R0");

  WsdDb copy = db;
  auto stats = Normalize(&copy);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  MAYBMS_ASSERT_OK(copy.CheckInvariants());
  auto after = EnumerateWorlds(copy, 1u << 16);
  ASSERT_TRUE(after.ok());
  auto after_dist = RelationDistribution(*after, "R0");
  ExpectDistEq(before_dist, after_dist);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormalizePreservesDistribution,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace maybms
