// Differential plan-equivalence fuzzing: random type-correct queries
// (gen/workload's RandomQueryPlan) over random small world-set databases
// must produce the SAME answer three ways —
//
//   1. the unoptimized plan, evaluated lifted over the WSD,
//   2. the cost-based-optimized plan (random rule subsets, so every rule
//      combination including the off switch is exercised), lifted,
//   3. the per-world enumeration oracle: the conventional executor run
//      in every possible world.
//
// Agreement is checked on the full distribution over answer bags (which
// covers row multiplicities world by world) and on per-tuple confidence
// values (ConfTable vs the oracle's marginals).
//
// The default iteration count keeps CI bounded; MAYBMS_PLAN_FUZZ_ITERS
// raises it for long runs (the "fuzz"-labeled ctest entry does this).
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>

#include "core/approx_conf.h"
#include "core/confidence.h"
#include "core/lifted_executor.h"
#include "gen/workload.h"
#include "ra/executor.h"
#include "sql/optimizer.h"
#include "tests/test_util.h"
#include "worlds/enumerate.h"

namespace maybms {
namespace {

using testing_util::CanonicalBag;
using testing_util::ExpectDistEq;
using testing_util::RandomWsd;
using testing_util::RandomWsdOptions;

size_t FuzzIterations() {
  const char* env = std::getenv("MAYBMS_PLAN_FUZZ_ITERS");
  if (env != nullptr) {
    size_t n = std::strtoul(env, nullptr, 10);
    if (n > 0) return n;
  }
  return 600;  // bounded CI default (acceptance floor is 500)
}

std::string RowKey(const Tuple& row) {
  std::string out;
  for (size_t c = 0; c < row.size(); ++c) {
    if (c) out += ",";
    out += row[c].ToString();
  }
  return out;
}

// The oracle's view of one query: distribution over canonical answer
// bags plus the marginal P(vector appears) per distinct value vector.
struct OracleResult {
  std::map<std::string, double> dist;
  std::map<std::string, double> marginals;
};

OracleResult Oracle(const std::vector<World>& worlds, const PlanPtr& plan,
                    bool* failed) {
  OracleResult out;
  for (const auto& w : worlds) {
    auto answer = Execute(plan, w.catalog);
    if (!answer.ok()) {
      ADD_FAILURE() << "oracle execution failed: "
                    << answer.status().ToString();
      *failed = true;
      return out;
    }
    out.dist[CanonicalBag(*answer)] += w.prob;
    std::map<std::string, bool> present;
    for (const auto& row : answer->rows()) present[RowKey(row)] = true;
    for (const auto& [key, _] : present) out.marginals[key] += w.prob;
  }
  return out;
}

// Lifted evaluation → (distribution, ConfTable marginals); nullopt-style
// skip (returns false) when world enumeration of the answer exceeds the
// budget.
bool LiftedView(const WsdDb& db, const PlanPtr& plan,
                std::map<std::string, double>* dist,
                std::map<std::string, double>* marginals, bool* failed) {
  auto result = ExecuteLifted(plan, db);
  if (!result.ok()) {
    if (result.status().code() == StatusCode::kResourceExhausted) {
      return false;
    }
    ADD_FAILURE() << "lifted execution failed: "
                  << result.status().ToString();
    *failed = true;
    return false;
  }
  Status inv = result->CheckInvariants();
  if (!inv.ok()) {
    ADD_FAILURE() << "invariant violation: " << inv.ToString();
    *failed = true;
    return false;
  }
  auto worlds = EnumerateWorlds(*result, 1u << 18);
  if (!worlds.ok()) return false;  // answer too wide to enumerate — skip
  for (const auto& w : *worlds) {
    auto rel = w.catalog.Get("result");
    if (!rel.ok()) {
      ADD_FAILURE() << rel.status().ToString();
      *failed = true;
      return false;
    }
    (*dist)[CanonicalBag(**rel)] += w.prob;
  }
  ConfidenceOptions copts;
  auto conf = ConfTable(*result, "result", copts);
  if (!conf.ok()) {
    ADD_FAILURE() << "ConfTable failed: " << conf.status().ToString();
    *failed = true;
    return false;
  }
  for (const auto& row : conf->rows()) {
    Tuple vals(row.begin(), row.end() - 1);  // trailing conf column
    double p = row.back().is_double() ? row.back().as_double() : 0.0;
    if (p > 1e-9) (*marginals)[RowKey(vals)] += p;
  }
  return true;
}

void ExpectMarginalsEq(const std::map<std::string, double>& expected,
                       const std::map<std::string, double>& actual,
                       const char* label) {
  constexpr double kEps = 1e-6;
  for (const auto& [key, p] : expected) {
    if (p <= kEps) continue;
    auto it = actual.find(key);
    ASSERT_TRUE(it != actual.end())
        << label << ": missing tuple [" << key << "] with conf " << p;
    EXPECT_NEAR(p, it->second, kEps) << label << ": tuple [" << key << "]";
  }
  for (const auto& [key, p] : actual) {
    EXPECT_TRUE(expected.count(key) > 0 || p < kEps)
        << label << ": unexpected tuple [" << key << "] conf " << p;
  }
}

sql::OptimizerOptions RandomOptimizerOptions(Rng* rng) {
  sql::OptimizerOptions opts;
  // Defaults half the time (the production configuration), random rule
  // subsets otherwise — including enable=false, which must be a no-op.
  if (rng->NextBernoulli(0.5)) return opts;
  opts.enable = rng->NextBernoulli(0.9);
  opts.fold_constants = rng->NextBernoulli(0.5);
  opts.push_predicates = rng->NextBernoulli(0.7);
  opts.reorder_joins = rng->NextBernoulli(0.7);
  opts.prune_projections = rng->NextBernoulli(0.7);
  return opts;
}

TEST(PlanFuzz, ThreeWayAgreement) {
  const size_t iters = FuzzIterations();
  constexpr size_t kQueriesPerDb = 8;
  size_t executed = 0, skipped = 0;
  uint64_t db_seed = 0;
  while (executed + skipped < iters) {
    ++db_seed;
    Rng rng(db_seed * 2654435761u + 17);
    RandomWsdOptions wopt;
    wopt.num_relations = 1 + rng.NextBelow(2);
    wopt.min_tuples = 1;
    wopt.max_tuples = 3;
    wopt.min_cols = 2;
    wopt.max_cols = 3;
    wopt.p_uncertain_cell = 0.3;
    wopt.p_joint = 0.25;
    WsdDb db = RandomWsd(&rng, wopt);
    Status inv = db.CheckInvariants();
    ASSERT_TRUE(inv.ok()) << inv.ToString();

    auto worlds = EnumerateWorlds(db, 1u << 16);
    if (!worlds.ok()) {  // unlucky seed: too many worlds — skip this db
      skipped += kQueriesPerDb;
      continue;
    }

    std::vector<GenTable> tables;
    for (const auto& name : db.RelationNames()) {
      tables.push_back({name, db.GetRelation(name).value()->schema()});
    }

    for (size_t q = 0; q < kQueriesPerDb && executed + skipped < iters; ++q) {
      PlanPtr plan = RandomQueryPlan(&rng, tables);
      SCOPED_TRACE("db_seed=" + std::to_string(db_seed) + " query=" +
                   std::to_string(q) + "\n" + plan->ToString());

      bool failed = false;
      OracleResult oracle = Oracle(*worlds, plan, &failed);
      ASSERT_FALSE(failed);

      std::map<std::string, double> raw_dist, raw_marg;
      if (!LiftedView(db, plan, &raw_dist, &raw_marg, &failed)) {
        ASSERT_FALSE(failed);
        ++skipped;
        continue;
      }

      auto optimized = sql::Optimize(plan, db, RandomOptimizerOptions(&rng));
      ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
      SCOPED_TRACE("optimized:\n" + (*optimized)->ToString());
      std::map<std::string, double> opt_dist, opt_marg;
      if (!LiftedView(db, *optimized, &opt_dist, &opt_marg, &failed)) {
        ASSERT_FALSE(failed);
        ++skipped;
        continue;
      }

      // Distributions over answer bags (covers row multiplicities).
      ExpectDistEq(oracle.dist, raw_dist);
      ExpectDistEq(oracle.dist, opt_dist);
      // Per-tuple confidences.
      ExpectMarginalsEq(oracle.marginals, raw_marg, "unoptimized conf");
      ExpectMarginalsEq(oracle.marginals, opt_marg, "optimized conf");
      if (::testing::Test::HasFailure()) {
        FAIL() << "three-way mismatch (see traces above)";
      }
      ++executed;
    }
  }
  // Skips (enumeration budget) must stay the rare exception.
  EXPECT_GE(executed * 10, iters * 8)
      << executed << " executed vs " << skipped << " skipped";
  SUCCEED() << executed << " queries fuzzed, " << skipped << " skipped";
}

size_t ApproxFuzzIterations() {
  const char* env = std::getenv("MAYBMS_APPROX_FUZZ_ITERS");
  if (env != nullptr) {
    size_t n = std::strtoul(env, nullptr, 10);
    if (n > 0) return n;
  }
  return 300;  // bounded CI default
}

struct ApproxRow {
  double conf = 0, lo = 0, hi = 0;
};

// APPROX CONF's view of a lifted answer: value vector → (estimate,
// interval), read off the trailing conf/conf_lo/conf_hi columns.
bool ApproxView(const WsdDb& db, const ApproxOptions& opts,
                std::map<std::string, ApproxRow>* out, bool* failed) {
  auto table = ApproxConfTable(db, "result", opts);
  if (!table.ok()) {
    if (table.status().code() == StatusCode::kResourceExhausted) return false;
    ADD_FAILURE() << "ApproxConfTable failed: " << table.status().ToString();
    *failed = true;
    return false;
  }
  for (const auto& row : table->rows()) {
    if (row.size() < 3) {
      ADD_FAILURE() << "approx table too narrow: " << row.size() << " cols";
      *failed = true;
      return false;
    }
    Tuple vals(row.begin(), row.end() - 3);
    ApproxRow a;
    a.conf = row[row.size() - 3].as_double();
    a.lo = row[row.size() - 2].as_double();
    a.hi = row[row.size() - 1].as_double();
    (*out)[RowKey(vals)] = a;
  }
  return true;
}

// Differential APPROX CONF vs exact CONF over the same random-plan
// corpus: for every lifted answer the exact per-vector confidence must
// lie inside the reported [conf_lo, conf_hi] interval, and any vector
// the approx pass did not surface must have exact confidence below the
// engine's unseen bound (≤ 2ε after the per-cluster ε/K split). Three
// configurations are exercised: production defaults (exact path
// dominates on these tiny clusters), a forced anytime path
// (exact_state_limit=2, so bracket + sampling carry the answer), and a
// pure-sampling path (enumeration disabled, Hoeffding CI only).
TEST(PlanFuzz, ApproxConfIntervalsCoverExact) {
  const size_t iters = ApproxFuzzIterations();
  constexpr size_t kQueriesPerDb = 8;
  constexpr double kSlack = 1e-9;
  size_t executed = 0, skipped = 0;
  uint64_t db_seed = 1u << 20;  // disjoint seed stream from ThreeWayAgreement
  while (executed + skipped < iters) {
    ++db_seed;
    Rng rng(db_seed * 2654435761u + 29);
    RandomWsdOptions wopt;
    wopt.num_relations = 1 + rng.NextBelow(2);
    wopt.min_tuples = 1;
    wopt.max_tuples = 3;
    wopt.min_cols = 2;
    wopt.max_cols = 3;
    wopt.p_uncertain_cell = 0.3;
    wopt.p_joint = 0.25;
    WsdDb db = RandomWsd(&rng, wopt);
    Status inv = db.CheckInvariants();
    ASSERT_TRUE(inv.ok()) << inv.ToString();

    std::vector<GenTable> tables;
    for (const auto& name : db.RelationNames()) {
      tables.push_back({name, db.GetRelation(name).value()->schema()});
    }

    for (size_t q = 0; q < kQueriesPerDb && executed + skipped < iters; ++q) {
      PlanPtr plan = RandomQueryPlan(&rng, tables);
      SCOPED_TRACE("db_seed=" + std::to_string(db_seed) + " query=" +
                   std::to_string(q) + "\n" + plan->ToString());

      auto result = ExecuteLifted(plan, db);
      if (!result.ok()) {
        ASSERT_EQ(result.status().code(), StatusCode::kResourceExhausted)
            << result.status().ToString();
        ++skipped;
        continue;
      }
      auto exact = ConfTable(*result, "result");
      if (!exact.ok()) {
        ASSERT_EQ(exact.status().code(), StatusCode::kResourceExhausted)
            << exact.status().ToString();
        ++skipped;
        continue;
      }
      std::map<std::string, double> exact_marg;
      for (const auto& row : exact->rows()) {
        Tuple vals(row.begin(), row.end() - 1);
        exact_marg[RowKey(vals)] = row.back().as_double();
      }

      ApproxOptions defaults;
      ApproxOptions forced;
      forced.member_marginals = false;
      forced.epsilon = 0.05;
      forced.delta = 0.01;
      forced.exact_state_limit = 2;
      forced.enum_chunk = 4;
      forced.sample_chunk = 512;
      ApproxOptions pure;
      pure.member_marginals = false;
      pure.epsilon = 0.05;
      pure.delta = 0.01;
      pure.exact_state_limit = 2;
      pure.max_enum_states = 0;
      pure.sample_chunk = 1024;
      struct NamedConfig {
        const char* label;
        ApproxOptions opts;
      };
      NamedConfig configs[] = {
          {"defaults", defaults}, {"forced-anytime", forced},
          {"pure-sampling", pure}};
      for (auto& cfg : configs) {
        cfg.opts.seed = db_seed * 977 + q;
        SCOPED_TRACE(cfg.label);
        bool failed = false;
        std::map<std::string, ApproxRow> approx;
        if (!ApproxView(*result, cfg.opts, &approx, &failed)) {
          ASSERT_FALSE(failed);
          continue;  // budget skip: other configs still checked
        }
        for (const auto& [key, p] : exact_marg) {
          auto it = approx.find(key);
          if (it == approx.end()) {
            // Unreported vectors are covered by the unseen bound.
            EXPECT_LE(p, 2 * cfg.opts.epsilon + 1e-6)
                << "missing tuple [" << key << "] with exact conf " << p;
            continue;
          }
          EXPECT_LE(it->second.lo, p + kSlack)
              << "tuple [" << key << "]: exact below interval";
          EXPECT_GE(it->second.hi, p - kSlack)
              << "tuple [" << key << "]: exact above interval";
          EXPECT_LE(it->second.lo, it->second.conf + kSlack)
              << "tuple [" << key << "]: estimate below its own interval";
          EXPECT_GE(it->second.hi, it->second.conf - kSlack)
              << "tuple [" << key << "]: estimate above its own interval";
        }
        for (const auto& [key, a] : approx) {
          if (exact_marg.count(key) == 0) {
            // Phantom vectors must admit confidence zero.
            EXPECT_LE(a.lo, kSlack)
                << "tuple [" << key << "] reported with lower bound " << a.lo
                << " but exact confidence 0";
          }
        }
      }
      if (::testing::Test::HasFailure()) {
        FAIL() << "approx/exact mismatch (see traces above)";
      }
      ++executed;
    }
  }
  EXPECT_GE(executed * 10, iters * 8)
      << executed << " executed vs " << skipped << " skipped";
  SUCCEED() << executed << " queries fuzzed, " << skipped << " skipped";
}

}  // namespace
}  // namespace maybms
