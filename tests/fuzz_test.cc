// Deterministic fuzzing of the SQL front-end and the session: random
// token soups and mutated valid statements must produce clean Status
// errors (or valid results), never crashes or invariant violations.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "sql/parser.h"
#include "sql/session.h"
#include "tests/test_util.h"

namespace maybms {
namespace {

const char* kFragments[] = {
    "SELECT", "FROM",   "WHERE",  "INSERT", "INTO",    "VALUES", "CREATE",
    "TABLE",  "DROP",   "(",      ")",      ",",       ";",      "*",
    "=",      "<",      ">=",     "<>",     "AND",     "OR",     "NOT",
    "NULL",   "IN",     "IS",     "{",      "}",       ":",      "PROB",
    "ECOUNT", "ESUM",   "POSSIBLE", "CERTAIN", "DISTINCT", "ORDER", "BY",
    "UNION",  "EXCEPT", "ENFORCE", "CHECK", "KEY",     "FD",     "->",
    "ON",     "REPAIR", "IN",     "WEIGHT", "SHOW",    "WORLDS", "TABLES",
    "EXPLAIN", "r",     "t",      "x",      "y",       "a.b",    "42",
    "-7",     "0.5",    "'str'",  "''",     "1e9",     "AS",
};

std::string RandomStatement(Rng* rng, size_t max_tokens) {
  std::string out;
  size_t n = 1 + rng->NextBelow(max_tokens);
  for (size_t i = 0; i < n; ++i) {
    out += kFragments[rng->NextBelow(std::size(kFragments))];
    out += " ";
  }
  return out;
}

TEST(FuzzParser, RandomTokenSoupsNeverCrash) {
  Rng rng(4242);
  size_t parsed_ok = 0;
  for (int i = 0; i < 5000; ++i) {
    std::string stmt = RandomStatement(&rng, 24);
    auto result = sql::ParseStatement(stmt);
    if (result.ok()) ++parsed_ok;
    // Either way: no crash, and errors carry the ParseError code.
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kParseError) << stmt;
    }
  }
  // A few soups happen to be valid statements; the point is survival.
  SUCCEED() << parsed_ok << " of 5000 soups parsed";
}

TEST(FuzzParser, RandomBytesNeverCrash) {
  Rng rng(77);
  for (int i = 0; i < 2000; ++i) {
    std::string stmt;
    size_t n = rng.NextBelow(64);
    for (size_t k = 0; k < n; ++k) {
      stmt += static_cast<char>(rng.NextBelow(96) + 32);
    }
    auto result = sql::ParseStatement(stmt);
    (void)result;  // survival is the assertion
  }
  SUCCEED();
}

TEST(FuzzSession, RandomStatementsAgainstLiveDatabase) {
  sql::Session session(testing_util::MedicalExample());
  MAYBMS_ASSERT_OK(
      session.Execute("CREATE TABLE t (x INT, y STRING)").status());
  MAYBMS_ASSERT_OK(
      session
          .Execute("INSERT INTO t VALUES (1, {'a': 0.5, 'b': 0.5}), (2, 'c')")
          .status());
  Rng rng(31337);
  size_t executed_ok = 0;
  for (int i = 0; i < 1500; ++i) {
    std::string stmt = RandomStatement(&rng, 16);
    auto result = session.Execute(stmt);
    if (result.ok()) ++executed_ok;
    // The database must stay structurally sound whatever happened.
    if (i % 100 == 0) {
      Status inv = session.db().CheckInvariants();
      ASSERT_TRUE(inv.ok()) << "after: " << stmt << " — " << inv.ToString();
    }
  }
  Status inv = session.db().CheckInvariants();
  EXPECT_TRUE(inv.ok()) << inv.ToString();
  SUCCEED() << executed_ok << " statements executed";
}

TEST(FuzzSession, MutatedValidStatements) {
  // Take valid statements and flip random characters; the session must
  // survive every mutation.
  const char* valid[] = {
      "SELECT Test, PROB() FROM R WHERE Diagnosis = 'pregnancy'",
      "POSSIBLE SELECT Symptom FROM R",
      "INSERT INTO t (1, {2: 0.5, 3: 0.5})",
      "ENFORCE CHECK (x >= 0) ON t",
      "REPAIR KEY (x) IN t WEIGHT BY y",
      "SELECT ESUM(x) FROM t WHERE x > 0",
  };
  Rng rng(911);
  sql::Session session(testing_util::MedicalExample());
  MAYBMS_ASSERT_OK(
      session.Execute("CREATE TABLE t (x INT, y DOUBLE)").status());
  for (int i = 0; i < 2000; ++i) {
    std::string stmt = valid[rng.NextBelow(std::size(valid))];
    size_t flips = 1 + rng.NextBelow(4);
    for (size_t f = 0; f < flips && !stmt.empty(); ++f) {
      stmt[rng.NextBelow(stmt.size())] =
          static_cast<char>(rng.NextBelow(96) + 32);
    }
    auto result = session.Execute(stmt);
    (void)result;
  }
  Status inv = session.db().CheckInvariants();
  EXPECT_TRUE(inv.ok()) << inv.ToString();
}

}  // namespace
}  // namespace maybms
