// Sensor fusion: managing conflicting sensor readings as a probabilistic
// world-set — a data-integration flavour of the paper's motivation
// ("managing incomplete information is important in many real world
// applications").
//
// Three weather stations report the condition and temperature of the same
// sites; readings disagree. Each conflicting field becomes an or-set whose
// probabilities reflect sensor reliability; cross-field correlations
// (condition vs. temperature plausibility) are captured by joint
// components and by integrity constraints ("snow implies temperature
// below 3°C"). Queries then ask for probabilistic answers.
//
// The second half goes continuous: stations keep reporting, and the
// readings stream into a sliding window through the unified delta API
// (sql::Session::ApplyDelta) — one DeltaBatch per tick retires the
// oldest readings and ingests the fresh ones. The windowed confidence
// query re-issued after every tick recomputes only the clusters that
// tick dirtied; the session's materialized-confidence cache replays
// everything else.
//
// Run:  ./sensor_fusion
#include <cmath>
#include <cstdio>
#include <random>

#include "common/logging.h"

#include "chase/enforce.h"
#include "core/builder.h"
#include "core/confidence.h"
#include "core/delta.h"
#include "core/lifted_executor.h"
#include "core/materialized_conf.h"
#include "ra/plan.h"
#include "sql/session.h"

using namespace maybms;

int main() {
  printf("sensor fusion example\n=====================\n");
  WsdDb db;
  Schema schema({{"site", ValueType::kString},
                 {"condition", ValueType::kString},
                 {"temp", ValueType::kInt}});
  Status st = db.CreateRelation("weather", schema);
  MAYBMS_CHECK(st.ok());

  // Site A: sensors disagree on the condition (rain 60% / snow 40%), and
  // the temperature reading is correlated with the condition.
  auto a = InsertTuple(&db, "weather",
                       {CellSpec::Certain(Value::String("alpine_ridge")),
                        CellSpec::Pending(), CellSpec::Pending()});
  MAYBMS_CHECK(a.ok());
  auto ca = AddJointComponent(
      &db, {{*a, "condition"}, {*a, "temp"}},
      {{{Value::String("rain"), Value::Int(5)}, 0.45},
       {{Value::String("rain"), Value::Int(2)}, 0.15},
       {{Value::String("snow"), Value::Int(2)}, 0.25},
       {{Value::String("snow"), Value::Int(6)}, 0.15}});
  MAYBMS_CHECK(ca.ok()) << ca.status().ToString();

  // Site B: condition certain, temperature an or-set from two sensors.
  auto b = InsertTuple(
      &db, "weather",
      {CellSpec::Certain(Value::String("valley")),
       CellSpec::Certain(Value::String("clear")),
       CellSpec::OrSet({{Value::Int(12), 0.7}, {Value::Int(14), 0.3}})});
  MAYBMS_CHECK(b.ok());

  // Site C: both fields independent or-sets.
  auto c = InsertTuple(
      &db, "weather",
      {CellSpec::Certain(Value::String("coast")),
       CellSpec::OrSet({{Value::String("rain"), 0.5},
                        {Value::String("clear"), 0.5}}),
       CellSpec::OrSet({{Value::Int(9), 0.5}, {Value::Int(11), 0.5}})});
  MAYBMS_CHECK(c.ok());

  printf("\nfused world-set (2^%.2f worlds):\n%s", db.Log2WorldCount(),
         db.ToString().c_str());

  // Physical-consistency cleaning: snow implies temp < 3.
  Constraint snow_cold = Constraint::Domain(
      "weather",
      Expr::Or(Expr::Not(Expr::Compare(CompareOp::kEq,
                                       Expr::Column("condition"),
                                       Expr::Const(Value::String("snow")))),
               Expr::Compare(CompareOp::kLt, Expr::Column("temp"),
                             Expr::Const(Value::Int(3)))),
      "snow-implies-cold");
  auto stats = Enforce(&db, snow_cold);
  MAYBMS_CHECK(stats.ok()) << stats.status().ToString();
  printf("\nenforced %s\n  removed mass %.4g (impossible sensor "
         "combinations), probabilities renormalized\n",
         snow_cold.ToString().c_str(), stats->removed_mass);

  // Probabilistic query 1: where is it snowing?
  auto plan = Plan::Project(
      Plan::Select(Plan::Scan("weather"),
                   Expr::Compare(CompareOp::kEq, Expr::Column("condition"),
                                 Expr::Const(Value::String("snow")))),
      {{Expr::Column("site"), "site"}});
  auto result = ExecuteLifted(plan, db);
  MAYBMS_CHECK(result.ok());
  auto conf = ConfTable(*result, "result");
  MAYBMS_CHECK(conf.ok());
  printf("\nprob() of snow per site after fusion + cleaning:\n%s",
         conf->ToString().c_str());

  // Probabilistic query 2 via the SQL surface.
  sql::Session session(std::move(db));
  auto freezing = session.Execute(
      "SELECT site, prob() FROM weather WHERE temp < 6");
  MAYBMS_CHECK(freezing.ok()) << freezing.status().ToString();
  printf("\nSELECT site, prob() FROM weather WHERE temp < 6:\n%s",
         freezing->table.ToString().c_str());

  auto certain = session.Execute("CERTAIN SELECT site FROM weather");
  MAYBMS_CHECK(certain.ok());
  printf("\nsites present in every world:\n%s",
         certain->table.ToString().c_str());

  // --- Continuous ingestion -------------------------------------------
  // Stations report every few minutes; keep the last `window` readings
  // and ask, after every tick, which sites are probably freezing right
  // now. Each tick is one DeltaBatch through the session — logged as a
  // single WAL record under a durable attachment, and invalidating only
  // what it touched.
  const size_t window = 24, per_tick = 8;
  printf("\nstreaming: %zu readings/tick, window %zu\n", per_tick, window);
  Status created =
      session.Execute("CREATE TABLE stream (site TEXT, temp INT)").status();
  MAYBMS_CHECK(created.ok()) << created.ToString();
  // Knobs are plain SQL now; pin the cache the maintenance relies on.
  MAYBMS_CHECK(session.Execute("SET materialize_conf = true").ok());

  const char* const sites[] = {"alpine_ridge", "valley", "coast"};
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<int> base(-4, 12);
  size_t resident = 0;
  for (int tick = 0; tick < 4; ++tick) {
    DeltaBatch batch;
    if (resident + per_tick > window) {
      batch.EvictOldest("stream", resident + per_tick - window);
    }
    for (size_t i = 0; i < per_tick; ++i) {
      const int t = base(rng);
      // Two sensors vote on the temperature: an or-set cell.
      batch.Insert("stream",
                   {CellSpec::Certain(Value::String(sites[(tick + i) % 3])),
                    CellSpec::OrSet({{Value::Int(t), 0.8},
                                     {Value::Int(t + 1), 0.2}})});
    }
    auto effects = session.ApplyDelta(batch);
    MAYBMS_CHECK(effects.ok()) << effects.status().ToString();
    resident += effects->tuples_inserted - effects->tuples_evicted;

    auto freezing_now = session.Execute(
        "SELECT site, prob() FROM stream WHERE temp < -2");
    MAYBMS_CHECK(freezing_now.ok()) << freezing_now.status().ToString();
    printf("tick %d: +%zu/-%zu readings, %zu dirty components; "
           "prob(hard-freeze) per site:\n%s",
           tick, effects->tuples_inserted, effects->tuples_evicted,
           effects->dirty_components.size(),
           freezing_now->table.ToString().c_str());
  }
  const MaterializedConf::Stats cache = session.conf_cache()->GetStats();
  printf("confidence cache across ticks: %llu hits, %llu misses\n",
         (unsigned long long)cache.hits, (unsigned long long)cache.misses);
  return 0;
}
