// Data integration: merging person records from two conflicting sources.
//
// Classic MayBMS motivation: two databases disagree about the same
// entities. The merged table violates its key; REPAIR KEY turns the
// conflicts into a probabilistic world-set (weighted by source
// trustworthiness), integrity constraints prune impossible repairs, and
// probabilistic queries quantify what is (un)certain after integration.
//
// Run:  ./data_integration
#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "sql/session.h"

using namespace maybms;

namespace {
void Show(sql::Session* session, const char* sql) {
  printf("\nmaybms> %s\n", sql);
  auto result = session->Execute(sql);
  if (!result.ok()) {
    printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  printf("%s", result->ToDisplayString().c_str());
}
}  // namespace

int main() {
  printf("data integration example — conflicting sources, weighted "
         "repairs\n");
  printf("==============================================================\n");
  sql::Session session;

  // The merged staging table: same person ids from two sources, with the
  // source's trust score as the repair weight. Source A (trust 2.0) and
  // source B (trust 1.0) disagree on ages and cities.
  auto setup = session.ExecuteScript(R"sql(
    CREATE TABLE persons (id INT, name STRING, age INT, city STRING,
                          trust DOUBLE);
    INSERT INTO persons VALUES
      (1, 'ann',  34, 'berlin', 2.0),
      (1, 'ann',  43, 'berlin', 1.0),
      (2, 'bob',  25, 'paris',  2.0),
      (2, 'bob',  25, 'lyon',   1.0),
      (3, 'cid',  12, 'rome',   2.0),
      (3, 'cid',  21, 'rome',   1.0),
      (4, 'dee',  58, 'oslo',   2.0);
  )sql");
  MAYBMS_CHECK(setup.ok()) << setup.status().ToString();
  printf("\nstaging table loaded: 7 records for 4 persons (key id is "
         "violated)\n");

  // Integration step: one record per person survives per world, weighted
  // by source trust.
  Show(&session, "REPAIR KEY (id) IN persons WEIGHT BY trust");

  // What do we believe about each person now?
  Show(&session, "SELECT name, age, PROB() FROM persons");

  // Domain knowledge prunes repairs: cid is known to be an adult
  // (conditioning renormalizes the source weights).
  Show(&session, "ENFORCE CHECK (age >= 18) ON persons");
  Show(&session, "SELECT name, age, PROB() FROM persons WHERE name = 'cid'");

  // Certain answers after integration.
  Show(&session, "CERTAIN SELECT name, city FROM persons");

  // Expected statistics across all integration outcomes.
  Show(&session, "SELECT ECOUNT() FROM persons WHERE age >= 30");
  Show(&session, "SELECT ESUM(age) FROM persons");

  // The decomposition itself, as the paper would draw it.
  Show(&session, "SHOW RELATION persons");
  return 0;
}
