// maybms_server: the concurrent multi-session query server as a
// standalone binary.
//
//   maybms_server [--port N] [--workers N] [--load path.wsd]
//                 [--rate-qps Q] [--max-in-flight N]
//
// Serves the MayBMS SQL dialect over a newline-framed TCP protocol on
// 127.0.0.1 — try it with `nc 127.0.0.1 <port>`:
//
//   CREATE TABLE md (name STRING, diag STRING)
//   INSERT INTO md VALUES ('smith', {'flu': 0.7, 'cold': 0.3})
//   SELECT name, PROB() FROM md WHERE diag = 'flu'
//   .stats
//
// Responses are "OK <n>" followed by n lines, or "ERR <message>".
// Reads run snapshot-isolated against the latest published catalog
// version; writes serialize through the shared write-ahead-log path.
// With --load the database (and, for WAL-enabled snapshots, its log)
// is loaded before serving, so inserts are durable across restarts.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "server/server.h"
#include "server/shared_catalog.h"

using namespace maybms;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  server::ServerOptions options;
  std::string load_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--port") {
      const char* v = next();
      if (v) options.port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--workers") {
      const char* v = next();
      if (v) options.workers = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--rate-qps") {
      const char* v = next();
      if (v) options.rate_qps = std::atof(v);
    } else if (arg == "--max-in-flight") {
      const char* v = next();
      if (v) options.max_in_flight = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--load") {
      const char* v = next();
      if (v) load_path = v;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port N] [--workers N] [--load path.wsd] "
                   "[--rate-qps Q] [--max-in-flight N]\n",
                   argv[0]);
      return 2;
    }
  }

  server::SharedCatalog catalog;
  if (!load_path.empty()) {
    auto loaded = catalog.setup_session()->Execute("LOAD DATABASE '" +
                                                   load_path + "'");
    if (!loaded.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", loaded->message.c_str());
    catalog.Publish();
  }

  auto started = server::Server::Start(&catalog, options);
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n",
                 started.status().ToString().c_str());
    return 1;
  }
  std::printf("maybms_server listening on 127.0.0.1:%u (%zu workers)\n",
              (*started)->port(), options.workers);
  std::printf("connect with: nc 127.0.0.1 %u\n", (*started)->port());

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  sigset_t mask;
  sigemptyset(&mask);
  while (!g_stop) sigsuspend(&mask);

  std::printf("shutting down\n");
  (*started)->Stop();
  return 0;
}
