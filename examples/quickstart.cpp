// Quickstart: the paper's Section 2 medical example, end to end.
//
// Builds the probabilistic world-set decomposition of the running example
// (diagnoses/tests/symptoms), walks through the query
//
//     select Test from R where Diagnosis = 'pregnancy'
//
// exactly as the paper does — selection with ⊥ marking, normalization,
// projection — and finishes with the prob() construct.
//
// Run:  ./quickstart
#include <cmath>
#include <cstdio>

#include "common/logging.h"

#include "core/builder.h"
#include "core/confidence.h"
#include "core/lifted.h"
#include "core/lifted_executor.h"
#include "core/wsd.h"
#include "ra/plan.h"
#include "worlds/enumerate.h"

using namespace maybms;

namespace {

WsdDb BuildMedicalExample() {
  WsdDb db;
  Schema schema({{"Diagnosis", ValueType::kString},
                 {"Test", ValueType::kString},
                 {"Symptom", ValueType::kString}});
  Status st = db.CreateRelation("R", schema);
  MAYBMS_CHECK(st.ok()) << st.ToString();

  // r1: Diagnosis and Test are correlated (one component), Symptom is
  // independent (its own component).
  auto r1 = InsertTuple(
      &db, "R",
      {CellSpec::Pending(), CellSpec::Pending(),
       CellSpec::OrSet({{Value::String("weight gain"), 0.7},
                        {Value::String("fatigue"), 0.3}})});
  MAYBMS_CHECK(r1.ok()) << r1.status().ToString();
  auto c1 = AddJointComponent(
      &db, {{*r1, "Diagnosis"}, {*r1, "Test"}},
      {{{Value::String("pregnancy"), Value::String("ultrasound")}, 0.4},
       {{Value::String("hypothyroidism"), Value::String("TSH")}, 0.6}});
  MAYBMS_CHECK(c1.ok()) << c1.status().ToString();

  // r2: a certain tuple.
  auto r2 = InsertTuple(&db, "R",
                        {CellSpec::Certain(Value::String("obesity")),
                         CellSpec::Certain(Value::String("BMI")),
                         CellSpec::Certain(Value::String("weight gain"))});
  MAYBMS_CHECK(r2.ok()) << r2.status().ToString();
  return db;
}

void PrintWorlds(const WsdDb& db, const char* title) {
  printf("\n%s — possible worlds:\n", title);
  auto worlds = EnumerateWorlds(db);
  MAYBMS_CHECK(worlds.ok()) << worlds.status().ToString();
  auto merged = MergeEqualWorlds(std::move(*worlds));
  for (size_t i = 0; i < merged.size(); ++i) {
    printf("world %zu (p = %.4g):\n", i + 1, merged[i].prob);
    for (const auto& name : merged[i].catalog.Names()) {
      printf("%s", merged[i].catalog.Get(name).value()->ToString().c_str());
    }
  }
}

}  // namespace

int main() {
  printf("MayBMS quickstart — the paper's medical scenario\n");
  printf("================================================\n");

  WsdDb db = BuildMedicalExample();
  printf("\nThe probabilistic WSD (template + components):\n%s",
         db.ToString().c_str());
  printf("This decomposition represents %g worlds in %llu bytes.\n",
         std::pow(2.0, db.Log2WorldCount()),
         static_cast<unsigned long long>(db.SerializedSize()));
  PrintWorlds(db, "initial database");

  // --- the paper's query, step by step -----------------------------------
  printf("\n>> select Test from R where Diagnosis = 'pregnancy'\n");
  ExprPtr pred = Expr::Compare(CompareOp::kEq, Expr::Column("Diagnosis"),
                               Expr::Const(Value::String("pregnancy")));

  WsdDb step = db;
  Status st = LiftedSelect(&step, "R", pred, "Selected");
  MAYBMS_CHECK(st.ok()) << st.ToString();
  printf("\nafter selection + normalization:\n%s", step.ToString().c_str());

  st = LiftedProject(&step, "Selected", {{Expr::Column("Test"), "Test"}},
                     "Answer");
  MAYBMS_CHECK(st.ok()) << st.ToString();
  printf("\nafter projection (the paper's final WSD — ultrasound 0.4, "
         "\xE2\x8A\xA5 0.6):\n%s",
         step.ToString().c_str());
  PrintWorlds(step, "answer");

  // --- the prob() construct ----------------------------------------------
  printf("\n>> select Test, prob() from R where Diagnosis = 'pregnancy'\n");
  auto plan = Plan::Project(Plan::Select(Plan::Scan("R"), pred),
                            {{Expr::Column("Test"), "Test"}});
  auto result = ExecuteLifted(plan, db);
  MAYBMS_CHECK(result.ok()) << result.status().ToString();
  auto conf = ConfTable(*result, "result");
  MAYBMS_CHECK(conf.ok()) << conf.status().ToString();
  printf("%s", conf->ToString().c_str());
  printf("\nThe ultrasound test is recommended in pregnancy diagnosis with "
         "probability %.2f — matching the paper.\n",
         conf->row(0).back().as_double());
  return 0;
}
