// maybms_shell: an interactive console over the MayBMS query language —
// the scriptable equivalent of the demo paper's GUI. Reads ';'-terminated
// statements from stdin and prints world-set answers, probabilistic
// tables, optimized plans (EXPLAIN) and enumerated worlds (SHOW WORLDS).
//
// Run:  ./maybms_shell            (interactive)
//       ./maybms_shell < script.sql
//       ./maybms_shell --demo     (pre-loads the paper's medical example)
#include <cstdio>
#include <cstring>
#include <unistd.h>

#include "common/logging.h"
#include "common/string_util.h"
#include <iostream>
#include <string>

#include "core/builder.h"
#include "core/serialize.h"
#include "sql/session.h"

using namespace maybms;

namespace {

WsdDb DemoDatabase() {
  WsdDb db;
  Schema schema({{"Diagnosis", ValueType::kString},
                 {"Test", ValueType::kString},
                 {"Symptom", ValueType::kString}});
  Status st = db.CreateRelation("R", schema);
  MAYBMS_CHECK(st.ok());
  auto r1 = InsertTuple(
      &db, "R",
      {CellSpec::Pending(), CellSpec::Pending(),
       CellSpec::OrSet({{Value::String("weight gain"), 0.7},
                        {Value::String("fatigue"), 0.3}})});
  MAYBMS_CHECK(r1.ok());
  auto c1 = AddJointComponent(
      &db, {{*r1, "Diagnosis"}, {*r1, "Test"}},
      {{{Value::String("pregnancy"), Value::String("ultrasound")}, 0.4},
       {{Value::String("hypothyroidism"), Value::String("TSH")}, 0.6}});
  MAYBMS_CHECK(c1.ok());
  auto r2 = InsertTuple(&db, "R",
                        {CellSpec::Certain(Value::String("obesity")),
                         CellSpec::Certain(Value::String("BMI")),
                         CellSpec::Certain(Value::String("weight gain"))});
  MAYBMS_CHECK(r2.ok());
  return db;
}

constexpr const char* kHelp = R"(statements:
  CREATE TABLE r (a INT, b STRING, ...);
  INSERT INTO r VALUES (1, {'x': 0.4, 'y': 0.6});   -- or-set cell
  SELECT b FROM r WHERE a = 1;                      -- world-set answer
  SELECT b, PROB() FROM r WHERE a = 1;              -- probabilities
  SELECT b, APPROX CONF(0.01, 0.05) FROM r;         -- anytime approximation
    -- per-vector estimate plus [conf_lo, conf_hi]: half-width ≤ ε with
    -- probability ≥ 1 − δ (δ defaults to 0.05); same seed → same result
  POSSIBLE SELECT b FROM r;   CERTAIN SELECT b FROM r;
  SELECT ECOUNT() FROM r WHERE a = 1;               -- expected count
  SELECT ESUM(a) FROM r;                            -- expected sum
  SELECT a FROM r UNION SELECT a FROM s;            -- also EXCEPT
  REPAIR KEY (a) IN r WEIGHT BY w;                  -- introduce uncertainty
  ENFORCE CHECK (a >= 0) ON r;                      -- clean by conditioning
  ENFORCE KEY (a) ON r;   ENFORCE FD a -> b ON r;
  EXPLAIN SELECT ...;   SHOW TABLES;   SHOW WORLDS;  SHOW RELATION r;
    -- EXPLAIN prints the plan before and after the cost-based rewrite
    -- (pushdown, join reorder, pruning, folding), each node annotated
    -- with its estimated cardinality [~N rows]
  SAVE DATABASE 'file.wsd' [FORMAT TEXT|BINARY];
    -- snapshots the whole world-set database; BINARY (the default) is
    -- the columnar fast-load format, TEXT is human-inspectable; also
    -- attaches a write-ahead log ('file.wsd.wal') so later mutating
    -- statements are durable before they are acknowledged
  LOAD DATABASE 'file.wsd' [MAPPED];
    -- replaces the session database (format auto-detected from header),
    -- replaying any pending log records; MAPPED keeps the snapshot on
    -- disk and materializes only what queries touch
  CHECKPOINT;
    -- folds the write-ahead log into a fresh snapshot (also happens
    -- automatically every auto_checkpoint_records logged statements)
  DELETE FROM r OLDEST 10;
    -- retires the 10 oldest tuples (sliding-window streaming); unused
    -- components are garbage-collected with them
  SET conf.num_threads = 4;   SET materialize_conf = true;
    -- session-local knobs over every engine tunable (confidence,
    -- approximation, optimizer, durability, exec); values read back via
  SHOW SETTINGS;
  DROP TABLE r;
meta: \h (help)  \q (quit)  \save <file> [text|binary]  \load <file>
multi-client access: this shell is single-session; run maybms_server to
serve the same dialect over TCP to concurrent clients (see `nc`-able
line protocol in examples/maybms_server.cpp)
)";

}  // namespace

int main(int argc, char** argv) {
  bool demo = argc > 1 && strcmp(argv[1], "--demo") == 0;
  sql::Session session(demo ? DemoDatabase() : WsdDb{});
  bool tty = isatty(fileno(stdin));
  if (tty) {
    printf("MayBMS shell — managing incomplete information with "
           "probabilistic world-set decompositions\n");
    if (demo) {
      printf("(demo database loaded: try  SELECT Test, PROB() FROM R WHERE "
             "Diagnosis = 'pregnancy';)\n");
    }
    printf("type \\h for help, \\q to quit\n");
  }

  std::string buffer;
  std::string line;
  while (true) {
    if (tty) {
      printf(buffer.empty() ? "maybms> " : "   ...> ");
      fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    std::string trimmed(Trim(line));
    if (buffer.empty() && (trimmed == "\\q" || trimmed == "quit" ||
                           trimmed == "exit")) {
      break;
    }
    if (buffer.empty() && trimmed == "\\h") {
      printf("%s", kHelp);
      continue;
    }
    if (buffer.empty() && StartsWith(trimmed, "\\save ")) {
      std::string args(Trim(trimmed.substr(6)));
      SnapshotFormat format = SnapshotFormat::kBinary;
      size_t space = args.find_last_of(" \t");
      if (space != std::string::npos) {
        std::string_view fmt = Trim(args.substr(space + 1));
        if (EqualsIgnoreCase(fmt, "text")) {
          format = SnapshotFormat::kText;
          args = std::string(Trim(args.substr(0, space)));
        } else if (EqualsIgnoreCase(fmt, "binary")) {
          args = std::string(Trim(args.substr(0, space)));
        }
      }
      Status st = SaveWsdDb(session.db(), args, format);
      printf("%s\n", st.ok() ? "saved" : st.ToString().c_str());
      continue;
    }
    if (buffer.empty() && StartsWith(trimmed, "\\load ")) {
      auto loaded = LoadWsdDb(std::string(Trim(trimmed.substr(6))));
      if (loaded.ok()) {
        session = sql::Session(std::move(*loaded));
        printf("loaded\n");
      } else {
        printf("%s\n", loaded.status().ToString().c_str());
      }
      continue;
    }
    buffer += line;
    buffer += "\n";
    // Execute once the statement is ';'-terminated.
    std::string_view t = Trim(buffer);
    if (t.empty()) {
      buffer.clear();
      continue;
    }
    if (t.back() != ';') continue;
    auto results = session.ExecuteScript(buffer);
    buffer.clear();
    if (!results.ok()) {
      printf("error: %s\n", results.status().ToString().c_str());
      continue;
    }
    for (const auto& r : *results) {
      printf("%s\n", r.ToDisplayString().c_str());
    }
  }
  if (tty) printf("\nbye\n");
  return 0;
}
