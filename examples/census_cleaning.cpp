// Census cleaning: the paper's evaluation scenario at example scale.
//
// 1. Generate a synthetic census extract (50 attributes).
// 2. Introduce incompleteness by replacing random cells with or-sets.
// 3. Clean the world-set by enforcing integrity constraints
//    (conditioning: inconsistent worlds are removed, probabilities are
//    renormalized).
// 4. Run queries on the cleaned world-set and compare with conventional
//    single-world processing; compute probabilistic answers.
//
// Run:  ./census_cleaning [num_records] [noise_fraction]
#include <chrono>
#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include <cstdlib>

#include "chase/enforce.h"
#include "core/builder.h"
#include "core/confidence.h"
#include "core/lifted_executor.h"
#include "gen/census.h"
#include "gen/noise.h"
#include "gen/workload.h"
#include "ra/executor.h"

using namespace maybms;

namespace {
double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}
}  // namespace

int main(int argc, char** argv) {
  size_t records = argc > 1 ? strtoul(argv[1], nullptr, 10) : 20000;
  double noise = argc > 2 ? strtod(argv[2], nullptr) : 0.001;

  printf("census cleaning example: %zu records, %.3g%% noisy cells\n",
         records, noise * 100);

  // 1. Clean data.
  Catalog cat;
  Status st = cat.Create(GenerateCensus({records, 42}));
  MAYBMS_CHECK(st.ok());
  st = cat.Create(GenerateStates());
  MAYBMS_CHECK(st.ok());
  uint64_t flat_bytes = cat.Get("census").value()->SerializedSize();
  WsdDb db = FromCatalog(cat);

  // 2. Noise.
  NoiseOptions nopt;
  nopt.cell_fraction = noise;
  nopt.wild_fraction = 0.15;
  nopt.seed = 7;
  auto nstats = ApplyOrSetNoise(&db, "census", nopt);
  MAYBMS_CHECK(nstats.ok()) << nstats.status().ToString();
  printf("\nnoise: %zu cells became or-sets -> 2^%.0f worlds\n",
         nstats->cells_noised, nstats->log2_worlds);
  printf("flat size %llu bytes, WSD size %llu bytes (overhead %.2f%%)\n",
         static_cast<unsigned long long>(flat_bytes),
         static_cast<unsigned long long>(db.SerializedSize()),
         100.0 * (static_cast<double>(db.SerializedSize()) /
                      static_cast<double>(flat_bytes) -
                  1.0));

  // 3. Cleaning by constraint enforcement.
  printf("\ncleaning constraints:\n");
  for (const auto& c : CensusConstraints()) {
    auto t0 = std::chrono::steady_clock::now();
    auto stats = Enforce(&db, c);
    if (!stats.ok()) {
      printf("  %-45s -> %s\n", c.ToString().c_str(),
             stats.status().ToString().c_str());
      continue;
    }
    printf(
        "  %-45s removed mass %.4g, %5zu rows deleted, log2(worlds) "
        "%.0f -> %.0f  (%.3fs)\n",
        c.ToString().c_str(), stats->removed_mass, stats->rows_removed,
        stats->log2_worlds_before, stats->log2_worlds_after, Seconds(t0));
  }

  // 4. Queries: lifted on the cleaned world-set vs conventional on the
  // clean single world.
  printf("\nqueries (WSD = all worlds at once; single = conventional):\n");
  for (const auto& q : CensusQueries()) {
    auto t0 = std::chrono::steady_clock::now();
    auto conventional = Execute(q.plan, cat);
    double t_single = Seconds(t0);
    MAYBMS_CHECK(conventional.ok()) << conventional.status().ToString();

    t0 = std::chrono::steady_clock::now();
    auto lifted = ExecuteLifted(q.plan, db);
    double t_wsd = Seconds(t0);
    MAYBMS_CHECK(lifted.ok()) << q.id << ": " << lifted.status().ToString();
    size_t templates = lifted->GetRelation("result").value()->NumTuples();
    printf("  %-3s %-55s single %7.3fs (%6zu rows)   WSD %7.3fs (%6zu "
           "templates, ratio %.2fx)\n",
           q.id.c_str(), q.description.c_str(), t_single,
           conventional->NumRows(), t_wsd, templates,
           t_single > 0 ? t_wsd / t_single : 0.0);
  }

  // Probabilistic answer: expected number of seniors per the noisy data.
  auto seniors = ExecuteLifted(CensusQueries()[0].plan, db);
  MAYBMS_CHECK(seniors.ok());
  auto ec = ExpectedCount(*seniors, "result");
  MAYBMS_CHECK(ec.ok());
  printf("\nexpected number of AGE>=65 records across all worlds: %.2f\n",
         *ec);
  return 0;
}
