// Experiment E4 (paper: scalability of the census scenario).
//
// The paper's dataset was a 12.5M-record extract; the experiments
// emphasise that representation and querying scale linearly in the data
// size. This bench sweeps the record count at fixed noise degree and
// reports build/noise/cleaning/query times plus storage.
#include "bench/bench_util.h"
#include "chase/enforce.h"
#include "core/lifted_executor.h"
#include "gen/workload.h"
#include "ra/executor.h"

using namespace maybms;
using namespace maybms::bench;

int main() {
  double noise = 0.001;
  printf("E4 scalability: record-count sweep at %.2f%% noise\n\n",
         noise * 100);
  Table table({"records", "build(s)", "noise(s)", "clean(s)", "Q1 single(s)",
               "Q1 wsd(s)", "ratio", "wsd bytes", "log2 worlds"});
  auto q1 = CensusQueries()[0].plan;
  auto constraints = CensusConstraints();
  for (size_t base : {size_t(5000), size_t(10000), size_t(20000),
                      size_t(40000), size_t(80000)}) {
    size_t records = Scaled(base);
    Timer t;
    Catalog clean;
    Status st = clean.Create(GenerateCensus({records, 4}));
    MAYBMS_CHECK(st.ok());
    st = clean.Create(GenerateStates());
    MAYBMS_CHECK(st.ok());
    WsdDb db = FromCatalog(clean);
    double t_build = t.Seconds();

    t.Reset();
    NoiseOptions nopt;
    nopt.cell_fraction = noise;
    nopt.wild_fraction = 0.15;
    nopt.seed = 5;
    auto nstats = ApplyOrSetNoise(&db, "census", nopt);
    MAYBMS_CHECK(nstats.ok());
    double t_noise = t.Seconds();

    t.Reset();
    // Domain + key constraints scale linearly; the CITY->STATEFIP FD's
    // exact conditioning can exceed the correlation budget when the
    // absolute number of interacting noisy cells grows (bench_cleaning
    // shows the breakdown point), so the scalability sweep uses C1..C4.
    for (size_t ci = 0; ci + 1 < constraints.size(); ++ci) {
      auto stats = Enforce(&db, constraints[ci]);
      MAYBMS_CHECK(stats.ok()) << stats.status().ToString();
    }
    double t_clean = t.Seconds();

    t.Reset();
    auto conventional = Execute(q1, clean);
    double t_single = t.Seconds();
    MAYBMS_CHECK(conventional.ok());

    t.Reset();
    auto lifted = ExecuteLifted(q1, db);
    double t_wsd = t.Seconds();
    MAYBMS_CHECK(lifted.ok()) << lifted.status().ToString();

    table.AddRow({StrFormat("%zu", records), StrFormat("%.3f", t_build),
                  StrFormat("%.3f", t_noise), StrFormat("%.3f", t_clean),
                  StrFormat("%.4f", t_single), StrFormat("%.4f", t_wsd),
                  StrFormat("%.2fx", t_single > 0 ? t_wsd / t_single : 0.0),
                  StrFormat("%llu",
                            static_cast<unsigned long long>(
                                db.SerializedSize())),
                  StrFormat("%.0f", db.Log2WorldCount())});
  }
  table.Print();
  printf("\nshape check vs paper: every column grows linearly with the\n"
         "record count; the single-world/world-set ratio stays flat.\n");
  return 0;
}
