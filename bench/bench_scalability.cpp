// Experiment E4 (paper: scalability of the census scenario).
//
// The paper's dataset was a 12.5M-record extract; the experiments
// emphasise that representation and querying scale linearly in the data
// size. This bench sweeps the record count at fixed noise degree and
// reports build/noise/cleaning/query times plus storage.
#include <filesystem>

#include "bench/bench_util.h"
#include "chase/enforce.h"
#include "core/lifted_executor.h"
#include "core/mapped_db.h"
#include "core/serialize.h"
#include "gen/workload.h"
#include "ra/executor.h"

using namespace maybms;
using namespace maybms::bench;

namespace {

// E4b: out-of-core cold starts — latency of (open + prune + materialize
// + execute) on a mapped snapshot as the query touches a growing
// fraction of the shards. Eager load cost is the horizontal asymptote:
// at fraction 1 the mapped path decodes the same bytes plus the
// directory overhead.
void OutOfCoreSweep() {
  size_t records = Scaled(40000);
  if (records < 512) records = 512;
  const size_t kShards = 16;
  WsdDb db = BuildNoisyCensus(records, /*noise_fraction=*/0.001, /*seed=*/11);
  db.mutable_options().rows_per_shard = (records + kShards - 1) / kShards;
  const std::string dir =
      (std::filesystem::temp_directory_path() / "maybms_bench_scal_oocore")
          .string();
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/census.v3.wsd";
  Status st = SaveWsdDb(db, path, SnapshotFormat::kBinary);
  MAYBMS_CHECK(st.ok()) << st.ToString();

  Timer t;
  double eager_s = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    t.Reset();
    auto loaded = LoadWsdDb(path);
    MAYBMS_CHECK(loaded.ok());
    double s = t.Seconds();
    if (s < eager_s) eager_s = s;
  }

  printf("\nE4b out-of-core cold start vs fraction of shards touched\n");
  printf("(census %zu records, %zu shards, snapshot %s; eager load %.2f ms)\n",
         records, kShards,
         FormatBytes(std::filesystem::file_size(path)).c_str(),
         eager_s * 1e3);
  Table table({"shards touched", "cold ms", "vs eager load", "resident peak"});
  for (size_t k : {size_t(1), size_t(2), size_t(4), size_t(8), kShards}) {
    auto plan = Plan::Select(
        Plan::Scan("census"),
        Expr::Compare(CompareOp::kGe, Expr::Column("PERNUM"),
                      Expr::Const(Value::Int(static_cast<int64_t>(
                          records - k * db.options().rows_per_shard)))));
    double cold_s = 1e300;
    size_t kept = 0, peak = 0;
    for (int rep = 0; rep < 3; ++rep) {
      t.Reset();
      auto mapped = MappedWsdDb::Open(path);
      MAYBMS_CHECK(mapped.ok()) << mapped.status().ToString();
      auto scratch = mapped->MaterializeForPlan(*plan);
      MAYBMS_CHECK(scratch.ok()) << scratch.status().ToString();
      auto ans = ExecuteLifted(plan, *scratch);
      MAYBMS_CHECK(ans.ok()) << ans.status().ToString();
      double s = t.Seconds();
      if (s < cold_s) cold_s = s;
      kept = mapped->last_stats().shards_kept;
      peak = mapped->peak_resident_bytes();
    }
    table.AddRow({StrFormat("%zu/%zu", kept, kShards + 1),
                  StrFormat("%.2f", cold_s * 1e3),
                  StrFormat("%.2fx", eager_s / cold_s), FormatBytes(peak)});
  }
  table.Print();
  std::filesystem::remove_all(dir);
}

// E4c: morsel-driven parallel selection. One large compiled Select runs
// with 1, 2 and 4 threads; morsels (2048 rows) are handed to the pool
// dynamically, so the speedup is bounded by the core count — on a
// single-core host all three are ~1.0x, which is the honest expectation
// there.
void MorselSweep() {
  size_t records = Scaled(80000);
  if (records < 1024) records = 1024;
  WsdDb db = BuildNoisyCensus(records, /*noise_fraction=*/0.001, /*seed=*/13);
  auto plan = Plan::Select(
      Plan::Scan("census"),
      Expr::Compare(CompareOp::kGt, Expr::Column("INCTOT"),
                    Expr::Const(Value::Int(20000))));
  printf("\nE4c morsel-driven parallel scan (census %zu records)\n", records);
  Table table({"threads", "select ms", "speedup vs t1"});
  double t1_s = 0;
  for (size_t threads : {size_t(1), size_t(2), size_t(4)}) {
    LiftedExecOptions opts;
    opts.eval.compile_expressions = true;
    opts.eval.num_threads = threads;
    opts.eval.parallel_row_threshold = 1;  // force the morsel path
    Timer t;
    double best = 1e300;
    for (int rep = 0; rep < 5; ++rep) {
      t.Reset();
      auto ans = ExecuteLifted(plan, db, opts);
      MAYBMS_CHECK(ans.ok()) << ans.status().ToString();
      double s = t.Seconds();
      if (s < best) best = s;
    }
    if (threads == 1) t1_s = best;
    table.AddRow({StrFormat("%zu", threads), StrFormat("%.2f", best * 1e3),
                  StrFormat("%.2fx", t1_s / best)});
  }
  table.Print();
}

}  // namespace

int main() {
  double noise = 0.001;
  printf("E4 scalability: record-count sweep at %.2f%% noise\n\n",
         noise * 100);
  Table table({"records", "build(s)", "noise(s)", "clean(s)", "Q1 single(s)",
               "Q1 wsd(s)", "ratio", "wsd bytes", "log2 worlds"});
  auto q1 = CensusQueries()[0].plan;
  auto constraints = CensusConstraints();
  for (size_t base : {size_t(5000), size_t(10000), size_t(20000),
                      size_t(40000), size_t(80000)}) {
    size_t records = Scaled(base);
    Timer t;
    Catalog clean;
    Status st = clean.Create(GenerateCensus({records, 4}));
    MAYBMS_CHECK(st.ok());
    st = clean.Create(GenerateStates());
    MAYBMS_CHECK(st.ok());
    WsdDb db = FromCatalog(clean);
    double t_build = t.Seconds();

    t.Reset();
    NoiseOptions nopt;
    nopt.cell_fraction = noise;
    nopt.wild_fraction = 0.15;
    nopt.seed = 5;
    auto nstats = ApplyOrSetNoise(&db, "census", nopt);
    MAYBMS_CHECK(nstats.ok());
    double t_noise = t.Seconds();

    t.Reset();
    // Domain + key constraints scale linearly; the CITY->STATEFIP FD's
    // exact conditioning can exceed the correlation budget when the
    // absolute number of interacting noisy cells grows (bench_cleaning
    // shows the breakdown point), so the scalability sweep uses C1..C4.
    for (size_t ci = 0; ci + 1 < constraints.size(); ++ci) {
      auto stats = Enforce(&db, constraints[ci]);
      MAYBMS_CHECK(stats.ok()) << stats.status().ToString();
    }
    double t_clean = t.Seconds();

    t.Reset();
    auto conventional = Execute(q1, clean);
    double t_single = t.Seconds();
    MAYBMS_CHECK(conventional.ok());

    t.Reset();
    auto lifted = ExecuteLifted(q1, db);
    double t_wsd = t.Seconds();
    MAYBMS_CHECK(lifted.ok()) << lifted.status().ToString();

    table.AddRow({StrFormat("%zu", records), StrFormat("%.3f", t_build),
                  StrFormat("%.3f", t_noise), StrFormat("%.3f", t_clean),
                  StrFormat("%.4f", t_single), StrFormat("%.4f", t_wsd),
                  StrFormat("%.2fx", t_single > 0 ? t_wsd / t_single : 0.0),
                  StrFormat("%llu",
                            static_cast<unsigned long long>(
                                db.SerializedSize())),
                  StrFormat("%.0f", db.Log2WorldCount())});
  }
  table.Print();
  printf("\nshape check vs paper: every column grows linearly with the\n"
         "record count; the single-world/world-set ratio stays flat.\n");
  OutOfCoreSweep();
  MorselSweep();
  return 0;
}
