// Server experiment: sustained throughput and tail latency of the
// concurrent multi-session query server under a mixed read/write
// workload.
//
// Setup: a noisy census WSD published through a SharedCatalog and
// served over TCP. 8 concurrent clients each run a closed loop for a
// fixed wall-time window: 90% reads (rotating over confidence,
// possible/certain and world-set queries on the census relation) and
// 10% writes (INSERTs into a side relation, WAL-ordering path without a
// durable attachment). Results must be correct, not just fast: every
// response is checked for protocol-level success, and a final ECOUNT is
// differentially verified against the number of acknowledged writes.
//
// Emits BENCH_server.json: sustained queries/second (as ns_per_op) and
// p99 latency per statement class, gated by scripts/bench_compare.py.
#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "server/client.h"
#include "server/server.h"
#include "server/shared_catalog.h"

using namespace maybms;
using namespace maybms::bench;

namespace {

struct ClientStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t errors = 0;
  std::vector<double> read_s;   ///< per-request wall seconds
  std::vector<double> write_s;
};

double Percentile(std::vector<double>* xs, double p) {
  if (xs->empty()) return 0.0;
  std::sort(xs->begin(), xs->end());
  const size_t idx = static_cast<size_t>(p * (xs->size() - 1) + 0.5);
  return (*xs)[idx];
}

}  // namespace

int main() {
  const size_t records = std::max<size_t>(Scaled(2000), 64);
  const double window_s = std::max(0.25, 2.0 * BenchScale());
  constexpr int kClients = 8;

  printf("MayBMS server benchmark: %d clients, %zu census records, "
         "%.2fs window\n\n",
         kClients, records, window_s);

  WsdDb db = BuildNoisyCensus(records, /*noise_fraction=*/0.001, /*seed=*/7);
  server::SharedCatalog catalog(std::move(db));
  Status setup = catalog.setup_session()
                     ->Execute("CREATE TABLE audit (who INT, what INT)")
                     .status();
  MAYBMS_CHECK(setup.ok()) << setup.ToString();
  catalog.Publish();

  server::ServerOptions options;
  options.workers = kClients;
  auto started = server::Server::Start(&catalog, options);
  MAYBMS_CHECK(started.ok()) << started.status().ToString();
  server::Server& srv = **started;

  const std::string read_queries[] = {
      "SELECT ECOUNT() FROM census WHERE AGE > 50",
      "POSSIBLE SELECT MARST FROM census WHERE PERNUM < 40",
      "CERTAIN SELECT SEX FROM census WHERE PERNUM < 40",
      "SELECT MARST, PROB() FROM census WHERE PERNUM = 17",
      "SELECT ECOUNT() FROM audit",
  };

  std::vector<ClientStats> stats(kClients);
  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = server::Client::Connect(srv.port());
      if (!client.ok()) {
        stats[c].errors++;
        return;
      }
      uint64_t seq = 0;
      Timer t;
      while (!stop.load(std::memory_order_acquire)) {
        const bool is_write = seq % 10 == 9;  // 90/10 read/write mix
        std::string stmt =
            is_write ? "INSERT INTO audit VALUES (" + std::to_string(c) +
                           ", " + std::to_string(seq) + ")"
                     : std::string(read_queries[(seq + c) % 5]);
        Timer req;
        auto resp = client->Execute(stmt);
        const double s = req.Seconds();
        ++seq;
        if (!resp.ok() || !resp->ok) {
          stats[c].errors++;
          continue;
        }
        if (is_write) {
          stats[c].writes++;
          stats[c].write_s.push_back(s);
        } else {
          stats[c].reads++;
          stats[c].read_s.push_back(s);
        }
      }
    });
  }

  Timer window;
  while (window.Seconds() < window_s) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const double elapsed = window.Seconds();
  stop.store(true, std::memory_order_release);
  for (auto& t : clients) t.join();

  uint64_t reads = 0, writes = 0, errors = 0;
  std::vector<double> read_s, write_s;
  for (const ClientStats& s : stats) {
    reads += s.reads;
    writes += s.writes;
    errors += s.errors;
    read_s.insert(read_s.end(), s.read_s.begin(), s.read_s.end());
    write_s.insert(write_s.end(), s.write_s.begin(), s.write_s.end());
  }
  MAYBMS_CHECK(errors == 0) << errors << " client-visible errors";
  MAYBMS_CHECK(reads + writes > 0) << "no requests completed";

  // Differential check: the catalog must have exactly the acknowledged
  // writes — concurrency may reorder them but never lose or duplicate.
  {
    auto verify = server::Client::Connect(srv.port());
    MAYBMS_CHECK(verify.ok()) << verify.status().ToString();
    auto count = verify->Execute("SELECT ECOUNT() FROM audit");
    MAYBMS_CHECK(count.ok() && count->ok);
    std::string joined;
    for (const std::string& l : count->lines) joined += l + "\n";
    MAYBMS_CHECK(joined.find(std::to_string(writes)) != std::string::npos)
        << "acknowledged " << writes << " writes but catalog says: " << joined;
  }

  const double qps = static_cast<double>(reads + writes) / elapsed;
  const double read_p99_s = Percentile(&read_s, 0.99);
  const double write_p99_s = Percentile(&write_s, 0.99);

  Table table({"metric", "value"});
  table.AddRow({"clients", std::to_string(kClients)});
  table.AddRow({"requests", std::to_string(reads + writes)});
  table.AddRow({"  reads", std::to_string(reads)});
  table.AddRow({"  writes", std::to_string(writes)});
  table.AddRow({"sustained QPS", StrFormat("%.0f", qps)});
  table.AddRow({"read p99", StrFormat("%.2f ms", read_p99_s * 1e3)});
  table.AddRow({"write p99", StrFormat("%.2f ms", write_p99_s * 1e3)});
  table.AddRow({"catalog versions", std::to_string(catalog.version())});
  const server::ServerCounters counters = srv.counters();
  table.AddRow({"served", std::to_string(counters.requests_served)});
  table.Print();

  srv.Stop();

  BenchJson json("server");
  // QPS expressed as mean ns per statement so the bench_compare gate's
  // "lower is better" convention applies unchanged.
  json.Add("server_mixed_ns_per_stmt", 1e9 / std::max(qps, 1e-9));
  json.Add("server_read_p99_ns", read_p99_s * 1e9);
  json.Add("server_write_p99_ns", write_p99_s * 1e9);
  return 0;
}
