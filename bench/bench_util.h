// Shared helpers for the experiment harness: timers, table printing, and
// standard workload construction. Each bench binary regenerates one
// experiment of the paper's evaluation (see DESIGN.md §3 and
// EXPERIMENTS.md for the mapping).
#ifndef MAYBMS_BENCH_BENCH_UTIL_H_
#define MAYBMS_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/builder.h"
#include "core/wsd.h"
#include "gen/census.h"
#include "gen/noise.h"

namespace maybms {
namespace bench {

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Plain-text table writer for paper-style result tables.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    std::string sep = "  ";
    std::string line;
    for (size_t c = 0; c < headers_.size(); ++c) {
      line += PadRight(headers_[c], width[c]) + sep;
    }
    printf("%s\n", line.c_str());
    printf("%s\n", std::string(line.size(), '-').c_str());
    for (const auto& row : rows_) {
      std::string out;
      for (size_t c = 0; c < row.size(); ++c) {
        out += PadRight(row[c], width[c]) + sep;
      }
      printf("%s\n", out.c_str());
    }
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Collects benchmark results and writes a machine-readable
/// BENCH_<name>.json next to the binary's working directory:
///
///   [{"name": "...", "ns_per_op": 123.4, "speedup": 2.5}, ...]
///
/// `speedup` is relative to whatever baseline the bench chose (1.0 for
/// the baseline itself, null when no baseline applies), so the perf
/// trajectory is trackable across PRs by diffing the files.
class BenchJson {
 public:
  explicit BenchJson(std::string bench_name) : name_(std::move(bench_name)) {}
  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;
  ~BenchJson() { Write(); }

  /// speedup <= 0 means "no baseline"; emitted as null.
  void Add(const std::string& name, double ns_per_op, double speedup = 0.0) {
    entries_.push_back({name, ns_per_op, speedup});
  }

  void Write() {
    if (written_) return;
    written_ = true;
    std::string path = "BENCH_" + name_ + ".json";
    FILE* f = fopen(path.c_str(), "w");
    if (!f) return;
    fprintf(f, "[\n");
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      std::string escaped;
      for (char c : e.name) {
        if (c == '"' || c == '\\') escaped += '\\';
        escaped += c;
      }
      fprintf(f, "  {\"name\": \"%s\", \"ns_per_op\": %.1f, \"speedup\": ",
              escaped.c_str(), e.ns_per_op);
      if (e.speedup > 0.0) {
        fprintf(f, "%.3f}", e.speedup);
      } else {
        fprintf(f, "null}");
      }
      fprintf(f, "%s\n", i + 1 < entries_.size() ? "," : "");
    }
    fprintf(f, "]\n");
    fclose(f);
    printf("wrote %s (%zu entries)\n", path.c_str(), entries_.size());
  }

 private:
  struct Entry {
    std::string name;
    double ns_per_op;
    double speedup;
  };
  std::string name_;
  std::vector<Entry> entries_;
  bool written_ = false;
};

/// Scale factor from the environment (MAYBMS_BENCH_SCALE, default 1.0):
/// benches multiply their record counts by it.
inline double BenchScale() {
  const char* env = getenv("MAYBMS_BENCH_SCALE");
  if (!env) return 1.0;
  double v = strtod(env, nullptr);
  return v > 0 ? v : 1.0;
}

inline size_t Scaled(size_t base) {
  return static_cast<size_t>(static_cast<double>(base) * BenchScale());
}

/// Builds the standard bench database: census + states as a WSD with the
/// given or-set noise fraction. Returns the flat (certain) byte size via
/// `flat_bytes`.
inline WsdDb BuildNoisyCensus(size_t records, double noise_fraction,
                              uint64_t seed, uint64_t* flat_bytes = nullptr,
                              NoiseStats* stats_out = nullptr,
                              size_t alternatives_max = 4,
                              double wild_fraction = 0.15) {
  Catalog cat;
  Status st = cat.Create(GenerateCensus({records, seed}));
  MAYBMS_CHECK(st.ok()) << st.ToString();
  st = cat.Create(GenerateStates());
  MAYBMS_CHECK(st.ok()) << st.ToString();
  if (flat_bytes) *flat_bytes = cat.Get("census").value()->SerializedSize();
  WsdDb db = FromCatalog(cat);
  if (noise_fraction > 0) {
    NoiseOptions opt;
    opt.cell_fraction = noise_fraction;
    opt.max_alternatives = alternatives_max;
    opt.wild_fraction = wild_fraction;
    opt.seed = seed + 1;
    auto stats = ApplyOrSetNoise(&db, "census", opt);
    MAYBMS_CHECK(stats.ok()) << stats.status().ToString();
    if (stats_out) *stats_out = *stats;
  }
  return db;
}

}  // namespace bench
}  // namespace maybms

#endif  // MAYBMS_BENCH_BENCH_UTIL_H_
