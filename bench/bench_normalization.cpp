// Experiment E7 (ablation): what each normalization step contributes.
//
// The paper's Section 2 walks through normalization after a selection
// (⊥ propagation, dropping components of deleted tuples, inlining fields
// that became certain). This ablation quantifies each step: starting from
// the same denormalized state (a selection's raw ⊥ markings plus merged
// components), it toggles the steps individually and reports the size of
// the resulting representation and the time spent.
#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/factorize.h"
#include "core/lifted_internal.h"
#include "core/normalize.h"
#include "ra/expr.h"

using namespace maybms;
using namespace maybms::bench;

namespace {

// Builds the denormalized input: census with heavy or-set noise focused
// on AGE and INCTOT, pairwise component merges (as a conjunctive
// selection produces), and the raw ⊥ markings of a selection over both
// attributes — the state right after the paper's selection step, before
// normalization.
WsdDb DenormalizedInput(size_t records) {
  Catalog cat;
  Status st = cat.Create(GenerateCensus({records, 11}));
  MAYBMS_CHECK(st.ok());
  WsdDb db = FromCatalog(cat);
  NoiseOptions opt;
  opt.cell_fraction = 0.10;   // of the two targeted columns
  opt.columns = {1, 17};      // AGE, INCTOT
  opt.seed = 12;
  auto ns = ApplyOrSetNoise(&db, "census", opt);
  MAYBMS_CHECK(ns.ok()) << ns.status().ToString();
  // Merge component pairs (multi-attribute selections do this).
  auto live = db.LiveComponents();
  std::vector<std::vector<ComponentId>> groups;
  for (size_t i = 0; i + 1 < live.size(); i += 2) {
    groups.push_back({live[i], live[i + 1]});
  }
  auto merged = db.MergeComponentGroups(groups, 1u << 20);
  MAYBMS_CHECK(merged.ok());
  // Raw selection over both noisy attributes: marks ⊥, no normalization.
  auto pred = Expr::And(
      Expr::Compare(CompareOp::kLt, Expr::Column("AGE"),
                    Expr::Const(Value::Int(65))),
      Expr::Compare(CompareOp::kLt, Expr::Column("INCTOT"),
                    Expr::Const(Value::Int(50000))));
  auto bound = pred->BindAgainst(
      db.GetRelation("census").value()->schema());
  MAYBMS_CHECK(bound.ok());
  st = lifted_internal::FilterRelationInPlace(&db, "census", *bound);
  MAYBMS_CHECK(st.ok()) << st.ToString();
  // Simulate conditioning (as cleaning does): in every third component,
  // keep only the rows agreeing with row 0 on slot 0 and renormalize.
  // That slot becomes certain — the state that inlining reclaims.
  size_t k = 0;
  for (ComponentId id : db.LiveComponents()) {
    if (++k % 3 != 0) continue;
    Component& c = db.mutable_component(id);
    if (c.NumRows() < 2 || c.NumSlots() == 0) continue;
    PackedValue keep = c.packed(0, 0);
    if (keep.is_bottom()) continue;
    std::vector<uint32_t> keep_rows;
    for (size_t r = 0; r < c.NumRows(); ++r) {
      if (c.packed(r, 0) == keep) {
        keep_rows.push_back(static_cast<uint32_t>(r));
      }
    }
    if (keep_rows.empty() || keep_rows.size() == c.NumRows()) continue;
    Component rebuilt = c;
    rebuilt.KeepRows(keep_rows);
    Status rn = rebuilt.Renormalize();
    if (!rn.ok()) continue;
    c = std::move(rebuilt);
  }
  return db;
}

struct Variant {
  const char* name;
  NormalizeOptions options;
};

}  // namespace

int main() {
  size_t records = Scaled(20000);
  printf("E7 normalization ablation (census %zu records, raw σ markings "
         "+ pairwise merges)\n\n",
         records);

  NormalizeOptions all;
  NormalizeOptions none;
  none.propagate_bottom = none.remove_dead_tuples = none.gc_slots =
      none.dedup_rows = none.inline_certain = false;

  std::vector<Variant> variants;
  variants.push_back({"all steps", all});
  {
    NormalizeOptions o = all;
    o.propagate_bottom = false;
    variants.push_back({"- bottom propagation", o});
  }
  {
    NormalizeOptions o = all;
    o.remove_dead_tuples = false;
    variants.push_back({"- dead tuple removal", o});
  }
  {
    NormalizeOptions o = all;
    o.gc_slots = false;
    variants.push_back({"- slot GC", o});
  }
  {
    NormalizeOptions o = all;
    o.dedup_rows = false;
    variants.push_back({"- row dedup", o});
  }
  {
    NormalizeOptions o = all;
    o.inline_certain = false;
    variants.push_back({"- certain inlining", o});
  }

  WsdDb base = DenormalizedInput(records);
  uint64_t before_bytes = base.SerializedSize();
  printf("denormalized input: %llu bytes, %zu components, %zu tuple "
         "templates\n\n",
         static_cast<unsigned long long>(before_bytes),
         base.NumLiveComponents(),
         base.GetRelation("census").value()->NumTuples());

  Table table({"variant", "time(s)", "bytes after", "Δbytes%", "components",
               "templates", "tuples removed", "cells inlined"});
  for (const auto& v : variants) {
    WsdDb db = base;
    Timer t;
    auto stats = Normalize(&db, v.options);
    double secs = t.Seconds();
    MAYBMS_CHECK(stats.ok()) << stats.status().ToString();
    uint64_t after = db.SerializedSize();
    table.AddRow(
        {v.name, StrFormat("%.3f", secs),
         StrFormat("%llu", static_cast<unsigned long long>(after)),
         StrFormat("%+.1f", 100.0 * (static_cast<double>(after) /
                                         static_cast<double>(before_bytes) -
                                     1.0)),
         StrFormat("%zu", db.NumLiveComponents()),
         StrFormat("%zu", db.GetRelation("census").value()->NumTuples()),
         StrFormat("%zu", stats->tuples_removed),
         StrFormat("%zu", stats->cells_inlined)});
  }
  table.Print();

  // Factorization as the final ablation: can it re-split the merges?
  {
    WsdDb db = base;
    auto n = Normalize(&db);
    MAYBMS_CHECK(n.ok());
    size_t comps_before = db.NumLiveComponents();
    Timer t;
    auto stats = Factorize(&db);
    double secs = t.Seconds();
    MAYBMS_CHECK(stats.ok());
    printf("\nfactorization after normalize: %zu -> %zu components "
           "(%zu split, %zu factors, %.3fs)\n",
           comps_before, db.NumLiveComponents(), stats->components_split,
           stats->factors_produced, secs);
  }
  printf("\nshape check vs paper: dead-tuple removal + slot GC reclaim the\n"
         "space of deleted tuples, inlining shrinks components that became\n"
         "certain, and factorization recovers independence after merges —\n"
         "together they restore the compact normal form of Section 2.\n");
  return 0;
}
