// Streaming-ingest experiment: incremental confidence maintenance
// through the unified delta API vs full recomputation.
//
// Setup: a sliding window of noisy sensor readings over 64 sites. Each
// reading's condition and temperature are or-sets (several sensors
// voting on a small discrete domain), so every tuple is its own
// confidence cluster with a joint state space much larger than its
// distinct-answer set. Per tick, one DeltaBatch retires the oldest
// readings and ingests the same number of fresh ones through
// sql::Session::ApplyDelta — the streaming entry point — touching
// ~1/16 of the window. The windowed confidence query (CONF over the
// window) then runs twice against the identical database state:
//
//   incremental  — with the session's MaterializedConf cache: only
//                  clusters whose components the delta dirtied re-scan
//                  (their content key changed); the rest replay the
//                  cached mass maps.
//   full         — cache = nullptr: every cluster re-enumerates.
//
// Both answers must be bit-identical (MAYBMS_CHECK on the rendered
// tables; ESUM is compared as exact doubles), and at window >= 512 the
// incremental path must be at least 5x faster — the gate this PR's
// maintenance machinery exists to pass. Emits BENCH_streaming.json:
// sustained ingest ns/event and per-query latency of both paths,
// regression-gated by scripts/bench_compare.py.
#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/confidence.h"
#include "core/delta.h"
#include "sql/session.h"

using namespace maybms;
using namespace maybms::bench;

namespace {

constexpr size_t kSites = 64;
constexpr size_t kSensors = 16;  ///< or-set rows per uncertain cell

const char* const kConditions[] = {"clear", "rain", "snow"};
constexpr int kTemps[] = {-2, 4, 11, 19};

/// One reading: certain site, condition and temperature each an or-set
/// of kSensors votes over a small discrete domain (duplicate values with
/// independent weights — many joint states, few distinct answers).
std::vector<CellSpec> MakeReading(std::mt19937_64* rng) {
  std::uniform_int_distribution<size_t> site(0, kSites - 1);
  std::uniform_int_distribution<int> weight(1, 8);
  auto or_set = [&](auto value_at, size_t domain) {
    std::vector<Alternative> alts;
    alts.reserve(kSensors);
    double total = 0.0;
    std::vector<int> w(kSensors);
    for (size_t i = 0; i < kSensors; ++i) total += w[i] = weight(*rng);
    std::uniform_int_distribution<size_t> pick(0, domain - 1);
    for (size_t i = 0; i < kSensors; ++i) {
      alts.push_back({value_at(pick(*rng)), static_cast<double>(w[i]) / total});
    }
    return CellSpec::OrSet(std::move(alts));
  };
  return {CellSpec::Certain(Value::Int(static_cast<int64_t>(site(*rng)))),
          or_set([](size_t i) { return Value::String(kConditions[i]); }, 3),
          or_set([](size_t i) { return Value::Int(kTemps[i]); }, 4)};
}

}  // namespace

int main() {
  const size_t window = std::max<size_t>(Scaled(1024), 48);
  const size_t batch = std::max<size_t>(window / 16, 4);
  const int ticks = 8;

  printf("MayBMS streaming benchmark: window %zu, %zu events/tick, "
         "%d ticks\n\n",
         window, batch, ticks);

  sql::Session session;
  Status create =
      session.Execute("CREATE TABLE readings (site INT, cond TEXT, temp INT)")
          .status();
  MAYBMS_CHECK(create.ok()) << create.ToString();

  std::mt19937_64 rng(42);
  {
    DeltaBatch fill;
    for (size_t i = 0; i < window; ++i) {
      fill.Insert("readings", MakeReading(&rng));
    }
    auto filled = session.ApplyDelta(fill);
    MAYBMS_CHECK(filled.ok()) << filled.status().ToString();
  }

  ConfidenceOptions incr = session.options().conf;
  incr.cache = session.conf_cache();
  MAYBMS_CHECK(incr.cache != nullptr);
  ConfidenceOptions full = session.options().conf;
  full.cache = nullptr;

  // Warm tick: populate the cache so measured ticks see the steady
  // state (per tick, only the delta-dirtied clusters miss).
  {
    auto warm = ConfTable(session.db(), "readings", incr);
    MAYBMS_CHECK(warm.ok()) << warm.status().ToString();
  }

  double ingest_s = 0.0, incr_s = 0.0, full_s = 0.0;
  double esum_incr_s = 0.0, esum_full_s = 0.0;
  size_t events = 0;
  for (int tick = 0; tick < ticks; ++tick) {
    DeltaBatch delta;
    delta.EvictOldest("readings", batch);
    for (size_t i = 0; i < batch; ++i) {
      delta.Insert("readings", MakeReading(&rng));
    }
    Timer ingest;
    auto effects = session.ApplyDelta(delta);
    ingest_s += ingest.Seconds();
    MAYBMS_CHECK(effects.ok()) << effects.status().ToString();
    MAYBMS_CHECK(effects->tuples_inserted == batch &&
                 effects->tuples_evicted == batch);
    events += batch;

    Timer t_incr;
    auto inc = ConfTable(session.db(), "readings", incr);
    incr_s += t_incr.Seconds();
    MAYBMS_CHECK(inc.ok()) << inc.status().ToString();

    Timer t_full;
    auto ful = ConfTable(session.db(), "readings", full);
    full_s += t_full.Seconds();
    MAYBMS_CHECK(ful.ok()) << ful.status().ToString();

    // The gate is exactness, not closeness: cached combines replay the
    // identical float-op sequence a fresh scan runs.
    MAYBMS_CHECK(inc->ToString() == ful->ToString())
        << "incremental CONF diverged from full recompute at tick " << tick;

    Timer t_esi;
    auto esum_inc = ExpectedSum(session.db(), "readings", "temp", incr);
    esum_incr_s += t_esi.Seconds();
    Timer t_esf;
    auto esum_ful = ExpectedSum(session.db(), "readings", "temp", full);
    esum_full_s += t_esf.Seconds();
    MAYBMS_CHECK(esum_inc.ok() && esum_ful.ok());
    MAYBMS_CHECK(*esum_inc == *esum_ful)
        << "incremental ESUM diverged at tick " << tick;
  }

  const MaterializedConf::Stats cache = session.conf_cache()->GetStats();
  MAYBMS_CHECK(cache.hits > 0) << "cache never hit: keys unstable?";

  const double conf_speedup = full_s / std::max(incr_s, 1e-12);
  const double esum_speedup = esum_full_s / std::max(esum_incr_s, 1e-12);
  // Below ~512 tuples fixed per-query costs (cluster-index build, final
  // merge) dominate and the ratio is noise — the smoke run only checks
  // that the bench executes and stays exact.
  if (window >= 512) {
    MAYBMS_CHECK(conf_speedup >= 5.0)
        << "incremental CONF only " << conf_speedup
        << "x faster than full recompute (need >= 5x)";
  }

  const double per_query = 1.0 / static_cast<double>(ticks);
  Table table({"metric", "value"});
  table.AddRow({"window", std::to_string(window)});
  table.AddRow({"events ingested", std::to_string(events)});
  table.AddRow(
      {"ingest rate", StrFormat("%.0f events/s", events / ingest_s)});
  table.AddRow({"CONF incremental", StrFormat("%.2f ms", incr_s * per_query * 1e3)});
  table.AddRow({"CONF full recompute", StrFormat("%.2f ms", full_s * per_query * 1e3)});
  table.AddRow({"CONF speedup", StrFormat("%.1fx", conf_speedup)});
  table.AddRow({"ESUM incremental", StrFormat("%.3f ms", esum_incr_s * per_query * 1e3)});
  table.AddRow({"ESUM full recompute", StrFormat("%.3f ms", esum_full_s * per_query * 1e3)});
  table.AddRow({"ESUM speedup", StrFormat("%.1fx", esum_speedup)});
  table.AddRow({"cache hits/misses", std::to_string(cache.hits) + "/" +
                                         std::to_string(cache.misses)});
  table.Print();

  BenchJson json("streaming");
  json.Add("streaming_ingest_ns_per_event", ingest_s * 1e9 / events);
  json.Add("streaming_conf_incremental_ns", incr_s * per_query * 1e9,
           conf_speedup);
  json.Add("streaming_conf_full_ns", full_s * per_query * 1e9);
  json.Add("streaming_esum_incremental_ns", esum_incr_s * per_query * 1e9,
           esum_speedup);
  return 0;
}
