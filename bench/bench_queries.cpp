// Experiment E3 (paper: query evaluation on world-sets vs conventional
// processing).
//
// "The performance of query evaluation on incomplete data was compared to
//  that of conventional query processing (that is, of processing a single
//  world using standard database techniques). Our results showed that the
//  processing time on large world-sets is very close to that on a single
//  world."
//
// Runs the six census workload queries conventionally on the clean single
// world and lifted on the noisy (cleaned) world-set, reporting both times
// and their ratio. The world-set here has far too many worlds to
// enumerate — the ratio being a small constant is the reproduction of the
// paper's claim.
#include "bench/bench_util.h"
#include "chase/enforce.h"
#include "core/lifted.h"
#include "core/lifted_executor.h"
#include "gen/workload.h"
#include "ra/executor.h"

using namespace maybms;
using namespace maybms::bench;

namespace {

// A world-set built for predicate pressure: every tuple carries a joint
// component of `alts` rows over two fields, so one lifted selection
// evaluates its predicate tuples × alts times — the per-world loop the
// compiled evaluator accelerates.
WsdDb BuildPredHeavy(size_t tuples, size_t alts) {
  WsdDb db;
  Schema schema({{"grp", ValueType::kInt},
                 {"name", ValueType::kString},
                 {"v", ValueType::kInt},
                 {"w", ValueType::kDouble}});
  Status st = db.CreateRelation("l", schema);
  MAYBMS_CHECK(st.ok()) << st.ToString();
  double p = 1.0 / static_cast<double>(alts);
  for (size_t i = 0; i < tuples; ++i) {
    auto h = InsertTuple(
        &db, "l",
        {CellSpec::Certain(Value::Int(static_cast<int64_t>(i % 50))),
         CellSpec::Pending(), CellSpec::Pending(),
         CellSpec::Certain(Value::Double((i % 9) * 0.5))});
    MAYBMS_CHECK(h.ok()) << h.status().ToString();
    std::vector<std::pair<std::vector<Value>, double>> rows;
    rows.reserve(alts);
    for (size_t j = 0; j < alts; ++j) {
      rows.push_back(
          {{Value::String("name_" + std::to_string((i + 3 * j) % 17)),
            Value::Int(static_cast<int64_t>((i + 7 * j) % 100))},
           p});
    }
    auto cid = AddJointComponent(&db, {{*h, "name"}, {*h, "v"}}, rows);
    MAYBMS_CHECK(cid.ok()) << cid.status().ToString();
  }
  return db;
}

// The right side of the join bench: one certain tuple per group with a
// numeric bound for the residual conjunct.
void AddJoinRight(WsdDb* db) {
  Schema schema({{"grp2", ValueType::kInt}, {"bound", ValueType::kInt}});
  Status st = db->CreateRelation("r", schema);
  MAYBMS_CHECK(st.ok()) << st.ToString();
  for (int64_t g = 0; g < 50; ++g) {
    auto h = InsertTuple(db, "r",
                         {CellSpec::Certain(Value::Int(g)),
                          CellSpec::Certain(Value::Int(30 + g % 40))});
    MAYBMS_CHECK(h.ok()) << h.status().ToString();
  }
}

// A predicate with string equalities (interning fast path), numeric
// comparisons and arithmetic — heavy enough that evaluation dominates
// the operator.
ExprPtr PredHeavySelect() {
  ExprPtr name_hit = Expr::Or(
      Expr::Compare(CompareOp::kEq, Expr::Column("name"),
                    Expr::Const(Value::String("name_3"))),
      Expr::Or(Expr::In(Expr::Column("name"),
                        {Value::String("name_7"), Value::String("name_12"),
                         Value::String("no_such"), Value::String("name_16")}),
               Expr::Compare(CompareOp::kEq, Expr::Column("name"),
                             Expr::Const(Value::String("name_11")))));
  ExprPtr v_window = Expr::And(
      Expr::Compare(CompareOp::kGe,
                    Expr::Arith(ArithOp::kAdd, Expr::Column("v"),
                                Expr::Column("grp")),
                    Expr::Const(Value::Int(20))),
      Expr::Compare(CompareOp::kLt,
                    Expr::Arith(ArithOp::kMul, Expr::Column("v"),
                                Expr::Const(Value::Int(3))),
                    Expr::Const(Value::Int(240))));
  ExprPtr v_mod = Expr::Or(
      Expr::Compare(CompareOp::kNe,
                    Expr::Arith(ArithOp::kDiv, Expr::Column("v"),
                                Expr::Const(Value::Int(7))),
                    Expr::Const(Value::Int(3))),
      Expr::Compare(CompareOp::kGt,
                    Expr::Arith(ArithOp::kSub, Expr::Column("v"),
                                Expr::Column("grp")),
                    Expr::Const(Value::Int(-20))));
  return Expr::And(
      Expr::And(Expr::Or(name_hit, v_window), v_mod),
      Expr::Compare(CompareOp::kGe, Expr::Column("w"),
                    Expr::Const(Value::Double(1.0))));
}

double TimeSelect(const WsdDb& db, const ExprPtr& pred,
                  const ExecOptions& opts) {
  WsdDb working = db;  // copy outside the timer
  Timer t;
  Status st = LiftedSelect(&working, "l", pred, "out", opts);
  double sec = t.Seconds();
  MAYBMS_CHECK(st.ok()) << st.ToString();
  return sec;
}

double TimeJoin(const WsdDb& db, const ExprPtr& pred,
                const ExecOptions& opts) {
  WsdDb working = db;
  Timer t;
  Status st = LiftedJoin(&working, "l", "r", pred, "out", opts);
  double sec = t.Seconds();
  MAYBMS_CHECK(st.ok()) << st.ToString();
  return sec;
}

double Best(double a, double b) { return a < b ? a : b; }

}  // namespace

int main() {
  size_t records = Scaled(20000);
  double noise = 0.001;
  printf("E3 queries: lifted evaluation on the world-set vs conventional "
         "single-world processing\n(census %zu records, %.2f%% noise)\n\n",
         records, noise * 100);

  Catalog clean;
  Status st = clean.Create(GenerateCensus({records, 3}));
  MAYBMS_CHECK(st.ok());
  st = clean.Create(GenerateStates());
  MAYBMS_CHECK(st.ok());

  WsdDb db = BuildNoisyCensus(records, noise, /*seed=*/3);
  // Clean the world-set first (experiment 3 ran on cleaned data).
  for (const auto& c : CensusConstraints()) {
    auto stats = Enforce(&db, c);
    MAYBMS_CHECK(stats.ok()) << c.ToString() << ": "
                             << stats.status().ToString();
  }
  printf("world-set after cleaning: 2^%.0f worlds\n\n", db.Log2WorldCount());

  Table table({"query", "description", "single(s)", "wsd(s)", "ratio",
               "single rows", "wsd templates"});
  double total_single = 0, total_wsd = 0;
  for (const auto& q : CensusQueries()) {
    Timer t;
    auto conventional = Execute(q.plan, clean);
    double t_single = t.Seconds();
    MAYBMS_CHECK(conventional.ok()) << conventional.status().ToString();
    t.Reset();
    auto lifted = ExecuteLifted(q.plan, db);
    double t_wsd = t.Seconds();
    MAYBMS_CHECK(lifted.ok()) << q.id << ": " << lifted.status().ToString();
    total_single += t_single;
    total_wsd += t_wsd;
    table.AddRow({q.id, q.description, StrFormat("%.4f", t_single),
                  StrFormat("%.4f", t_wsd),
                  StrFormat("%.2fx", t_single > 0 ? t_wsd / t_single : 0.0),
                  StrFormat("%zu", conventional->NumRows()),
                  StrFormat("%zu",
                            lifted->GetRelation("result").value()
                                ->NumTuples())});
  }
  table.Print();
  printf("\ntotal: single %.3fs, world-set %.3fs (ratio %.2fx over 2^%.0f "
         "worlds)\n",
         total_single, total_wsd, total_wsd / total_single,
         db.Log2WorldCount());

  // Second series: the ratio as a function of the degree of
  // incompleteness (the paper's experiments sweep the noise degree) — Q1.
  printf("\nQ1 ratio vs noise degree (world count grows exponentially, the "
         "ratio stays flat):\n");
  Table sweep({"noise%", "log2 worlds", "single(s)", "wsd(s)", "ratio"});
  auto q1 = CensusQueries()[0].plan;
  for (double n : {0.0, 0.0001, 0.001, 0.005, 0.01}) {
    WsdDb noisy = BuildNoisyCensus(records, n, /*seed=*/33);
    Timer t;
    auto conventional = Execute(q1, clean);
    double t_single = t.Seconds();
    MAYBMS_CHECK(conventional.ok());
    t.Reset();
    auto lifted = ExecuteLifted(q1, noisy);
    double t_wsd = t.Seconds();
    MAYBMS_CHECK(lifted.ok());
    sweep.AddRow({StrFormat("%.2f", n * 100),
                  StrFormat("%.0f", noisy.Log2WorldCount()),
                  StrFormat("%.4f", t_single), StrFormat("%.4f", t_wsd),
                  StrFormat("%.2fx", t_single > 0 ? t_wsd / t_single : 0.0)});
  }
  sweep.Print();
  printf("\nshape check vs paper: evaluating a query over the entire\n"
         "world-set costs a small constant factor over one conventional\n"
         "single-world execution, independent of the number of worlds.\n");

  // Third series: compiled vectorized expression evaluation vs the
  // row-at-a-time interpreter on predicate-heavy lifted operators. The
  // per-(tuple, component-row) evaluation loop is the kernel; the
  // compiled mode runs it directly on packed columns.
  BenchJson json("queries");
  json.Add("E3_single_world_total", total_single * 1e9);
  json.Add("E3_world_set_total", total_wsd * 1e9);

  size_t tuples = Scaled(600);
  size_t alts = 256;
  double world_rows = static_cast<double>(tuples * alts);
  printf("\ncompiled vs interpreted evaluation (predicate-heavy lifted "
         "operators,\n%zu tuples x %zu world-rows each):\n\n",
         tuples, alts);
  ExecOptions interp;
  interp.compile_expressions = false;
  ExecOptions compiled;  // defaults: compiled, serial below threshold
  ExecOptions compiled_mt = compiled;
  compiled_mt.parallel_row_threshold = 4096;

  Table ct({"section", "interpreted(s)", "compiled(s)", "speedup"});
  {
    WsdDb db = BuildPredHeavy(tuples, alts);
    ExprPtr pred = PredHeavySelect();
    double t_i = 1e300, t_c = 1e300;
    for (int rep = 0; rep < 5; ++rep) {
      t_i = Best(t_i, TimeSelect(db, pred, interp));
      t_c = Best(t_c, TimeSelect(db, pred, compiled));
    }
    ct.AddRow({"lifted select σ", StrFormat("%.4f", t_i),
               StrFormat("%.4f", t_c), StrFormat("%.2fx", t_i / t_c)});
    json.Add("lifted_select_predheavy_interpreted",
             t_i / world_rows * 1e9, 1.0);
    json.Add("lifted_select_predheavy_compiled", t_c / world_rows * 1e9,
             t_i / t_c);
  }
  {
    WsdDb db = BuildPredHeavy(tuples, alts);
    AddJoinRight(&db);
    // Certain equi key (hash path) plus uncertain residual conjuncts:
    // the join applies the full predicate per world through the filter.
    ExprPtr residual = Expr::And(
        Expr::Or(
            Expr::In(Expr::Column("name"),
                     {Value::String("name_5"), Value::String("name_9"),
                      Value::String("absent")}),
            Expr::And(
                Expr::Compare(CompareOp::kLt,
                              Expr::Arith(ArithOp::kMul, Expr::Column("v"),
                                          Expr::Const(Value::Int(3))),
                              Expr::Arith(ArithOp::kAdd,
                                          Expr::Column("bound"),
                                          Expr::Const(Value::Int(100)))),
                Expr::Compare(CompareOp::kNe, Expr::Column("name"),
                              Expr::Const(Value::String("name_2"))))),
        Expr::Or(
            Expr::Compare(CompareOp::kNe,
                          Expr::Arith(ArithOp::kDiv, Expr::Column("v"),
                                      Expr::Const(Value::Int(11))),
                          Expr::Const(Value::Int(4))),
            Expr::Compare(CompareOp::kEq, Expr::Column("name"),
                          Expr::Const(Value::String("name_13")))));
    ExprPtr pred = Expr::And(Expr::Compare(CompareOp::kEq,
                                           Expr::Column("grp"),
                                           Expr::Column("grp2")),
                             Expr::And(PredHeavySelect(), residual));
    double t_i = 1e300, t_c = 1e300;
    for (int rep = 0; rep < 5; ++rep) {
      t_i = Best(t_i, TimeJoin(db, pred, interp));
      t_c = Best(t_c, TimeJoin(db, pred, compiled));
    }
    ct.AddRow({"lifted join ⋈ (residual)", StrFormat("%.4f", t_i),
               StrFormat("%.4f", t_c), StrFormat("%.2fx", t_i / t_c)});
    json.Add("lifted_join_residual_interpreted", t_i / world_rows * 1e9,
             1.0);
    json.Add("lifted_join_residual_compiled", t_c / world_rows * 1e9,
             t_i / t_c);
  }
  {
    // Wide components (few tuples, many world-rows each): the batch
    // crosses the parallel threshold, so the compiled pass also shards
    // over the thread pool.
    size_t wide_tuples = 16;
    size_t wide_alts = Scaled(8192);
    double wide_rows = static_cast<double>(wide_tuples * wide_alts);
    WsdDb db = BuildPredHeavy(wide_tuples, wide_alts);
    ExprPtr pred = PredHeavySelect();
    double t_i = 1e300, t_c = 1e300, t_m = 1e300;
    for (int rep = 0; rep < 5; ++rep) {
      t_i = Best(t_i, TimeSelect(db, pred, interp));
      t_c = Best(t_c, TimeSelect(db, pred, compiled));
      t_m = Best(t_m, TimeSelect(db, pred, compiled_mt));
    }
    ct.AddRow({"lifted select σ (wide)", StrFormat("%.4f", t_i),
               StrFormat("%.4f", t_c), StrFormat("%.2fx", t_i / t_c)});
    ct.AddRow({"lifted select σ (wide, mt)", StrFormat("%.4f", t_i),
               StrFormat("%.4f", t_m), StrFormat("%.2fx", t_i / t_m)});
    json.Add("lifted_select_wide_interpreted", t_i / wide_rows * 1e9, 1.0);
    json.Add("lifted_select_wide_compiled", t_c / wide_rows * 1e9,
             t_i / t_c);
    json.Add("lifted_select_wide_compiled_mt", t_m / wide_rows * 1e9,
             t_i / t_m);
  }
  ct.Print();
  printf("\n(the compiled mode lowers each predicate once and evaluates "
         "whole\npacked component columns per pass; interpreted mode "
         "re-walks the Expr\ntree per world-row through heap Values)\n");
  return 0;
}
