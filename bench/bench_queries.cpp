// Experiment E3 (paper: query evaluation on world-sets vs conventional
// processing).
//
// "The performance of query evaluation on incomplete data was compared to
//  that of conventional query processing (that is, of processing a single
//  world using standard database techniques). Our results showed that the
//  processing time on large world-sets is very close to that on a single
//  world."
//
// Runs the six census workload queries conventionally on the clean single
// world and lifted on the noisy (cleaned) world-set, reporting both times
// and their ratio. The world-set here has far too many worlds to
// enumerate — the ratio being a small constant is the reproduction of the
// paper's claim.
#include "bench/bench_util.h"
#include "chase/enforce.h"
#include "core/lifted.h"
#include "core/lifted_executor.h"
#include "gen/workload.h"
#include "ra/executor.h"
#include "sql/optimizer.h"

using namespace maybms;
using namespace maybms::bench;

namespace {

// A world-set built for predicate pressure: every tuple carries a joint
// component of `alts` rows over two fields, so one lifted selection
// evaluates its predicate tuples × alts times — the per-world loop the
// compiled evaluator accelerates.
WsdDb BuildPredHeavy(size_t tuples, size_t alts) {
  WsdDb db;
  Schema schema({{"grp", ValueType::kInt},
                 {"name", ValueType::kString},
                 {"v", ValueType::kInt},
                 {"w", ValueType::kDouble}});
  Status st = db.CreateRelation("l", schema);
  MAYBMS_CHECK(st.ok()) << st.ToString();
  double p = 1.0 / static_cast<double>(alts);
  for (size_t i = 0; i < tuples; ++i) {
    auto h = InsertTuple(
        &db, "l",
        {CellSpec::Certain(Value::Int(static_cast<int64_t>(i % 50))),
         CellSpec::Pending(), CellSpec::Pending(),
         CellSpec::Certain(Value::Double((i % 9) * 0.5))});
    MAYBMS_CHECK(h.ok()) << h.status().ToString();
    std::vector<std::pair<std::vector<Value>, double>> rows;
    rows.reserve(alts);
    for (size_t j = 0; j < alts; ++j) {
      rows.push_back(
          {{Value::String("name_" + std::to_string((i + 3 * j) % 17)),
            Value::Int(static_cast<int64_t>((i + 7 * j) % 100))},
           p});
    }
    auto cid = AddJointComponent(&db, {{*h, "name"}, {*h, "v"}}, rows);
    MAYBMS_CHECK(cid.ok()) << cid.status().ToString();
  }
  return db;
}

// The right side of the join bench: one certain tuple per group with a
// numeric bound for the residual conjunct.
void AddJoinRight(WsdDb* db) {
  Schema schema({{"grp2", ValueType::kInt}, {"bound", ValueType::kInt}});
  Status st = db->CreateRelation("r", schema);
  MAYBMS_CHECK(st.ok()) << st.ToString();
  for (int64_t g = 0; g < 50; ++g) {
    auto h = InsertTuple(db, "r",
                         {CellSpec::Certain(Value::Int(g)),
                          CellSpec::Certain(Value::Int(30 + g % 40))});
    MAYBMS_CHECK(h.ok()) << h.status().ToString();
  }
}

// A predicate with string equalities (interning fast path), numeric
// comparisons and arithmetic — heavy enough that evaluation dominates
// the operator.
ExprPtr PredHeavySelect() {
  ExprPtr name_hit = Expr::Or(
      Expr::Compare(CompareOp::kEq, Expr::Column("name"),
                    Expr::Const(Value::String("name_3"))),
      Expr::Or(Expr::In(Expr::Column("name"),
                        {Value::String("name_7"), Value::String("name_12"),
                         Value::String("no_such"), Value::String("name_16")}),
               Expr::Compare(CompareOp::kEq, Expr::Column("name"),
                             Expr::Const(Value::String("name_11")))));
  ExprPtr v_window = Expr::And(
      Expr::Compare(CompareOp::kGe,
                    Expr::Arith(ArithOp::kAdd, Expr::Column("v"),
                                Expr::Column("grp")),
                    Expr::Const(Value::Int(20))),
      Expr::Compare(CompareOp::kLt,
                    Expr::Arith(ArithOp::kMul, Expr::Column("v"),
                                Expr::Const(Value::Int(3))),
                    Expr::Const(Value::Int(240))));
  ExprPtr v_mod = Expr::Or(
      Expr::Compare(CompareOp::kNe,
                    Expr::Arith(ArithOp::kDiv, Expr::Column("v"),
                                Expr::Const(Value::Int(7))),
                    Expr::Const(Value::Int(3))),
      Expr::Compare(CompareOp::kGt,
                    Expr::Arith(ArithOp::kSub, Expr::Column("v"),
                                Expr::Column("grp")),
                    Expr::Const(Value::Int(-20))));
  return Expr::And(
      Expr::And(Expr::Or(name_hit, v_window), v_mod),
      Expr::Compare(CompareOp::kGe, Expr::Column("w"),
                    Expr::Const(Value::Double(1.0))));
}

double TimeSelect(const WsdDb& db, const ExprPtr& pred,
                  const ExecOptions& opts) {
  WsdDb working = db;  // copy outside the timer
  Timer t;
  Status st = LiftedSelect(&working, "l", pred, "out", opts);
  double sec = t.Seconds();
  MAYBMS_CHECK(st.ok()) << st.ToString();
  return sec;
}

double TimeJoin(const WsdDb& db, const ExprPtr& pred,
                const ExecOptions& opts) {
  WsdDb working = db;
  Timer t;
  Status st = LiftedJoin(&working, "l", "r", pred, "out", opts);
  double sec = t.Seconds();
  MAYBMS_CHECK(st.ok()) << st.ToString();
  return sec;
}

double Best(double a, double b) { return a < b ? a : b; }

}  // namespace

int main() {
  size_t records = Scaled(20000);
  double noise = 0.001;
  printf("E3 queries: lifted evaluation on the world-set vs conventional "
         "single-world processing\n(census %zu records, %.2f%% noise)\n\n",
         records, noise * 100);

  Catalog clean;
  Status st = clean.Create(GenerateCensus({records, 3}));
  MAYBMS_CHECK(st.ok());
  st = clean.Create(GenerateStates());
  MAYBMS_CHECK(st.ok());

  WsdDb db = BuildNoisyCensus(records, noise, /*seed=*/3);
  // Clean the world-set first (experiment 3 ran on cleaned data).
  for (const auto& c : CensusConstraints()) {
    auto stats = Enforce(&db, c);
    MAYBMS_CHECK(stats.ok()) << c.ToString() << ": "
                             << stats.status().ToString();
  }
  printf("world-set after cleaning: 2^%.0f worlds\n\n", db.Log2WorldCount());

  Table table({"query", "description", "single(s)", "wsd(s)", "ratio",
               "single rows", "wsd templates"});
  double total_single = 0, total_wsd = 0;
  for (const auto& q : CensusQueries()) {
    Timer t;
    auto conventional = Execute(q.plan, clean);
    double t_single = t.Seconds();
    MAYBMS_CHECK(conventional.ok()) << conventional.status().ToString();
    t.Reset();
    auto lifted = ExecuteLifted(q.plan, db);
    double t_wsd = t.Seconds();
    MAYBMS_CHECK(lifted.ok()) << q.id << ": " << lifted.status().ToString();
    total_single += t_single;
    total_wsd += t_wsd;
    table.AddRow({q.id, q.description, StrFormat("%.4f", t_single),
                  StrFormat("%.4f", t_wsd),
                  StrFormat("%.2fx", t_single > 0 ? t_wsd / t_single : 0.0),
                  StrFormat("%zu", conventional->NumRows()),
                  StrFormat("%zu",
                            lifted->GetRelation("result").value()
                                ->NumTuples())});
  }
  table.Print();
  printf("\ntotal: single %.3fs, world-set %.3fs (ratio %.2fx over 2^%.0f "
         "worlds)\n",
         total_single, total_wsd, total_wsd / total_single,
         db.Log2WorldCount());

  // Second series: the ratio as a function of the degree of
  // incompleteness (the paper's experiments sweep the noise degree) — Q1.
  printf("\nQ1 ratio vs noise degree (world count grows exponentially, the "
         "ratio stays flat):\n");
  Table sweep({"noise%", "log2 worlds", "single(s)", "wsd(s)", "ratio"});
  auto q1 = CensusQueries()[0].plan;
  for (double n : {0.0, 0.0001, 0.001, 0.005, 0.01}) {
    WsdDb noisy = BuildNoisyCensus(records, n, /*seed=*/33);
    Timer t;
    auto conventional = Execute(q1, clean);
    double t_single = t.Seconds();
    MAYBMS_CHECK(conventional.ok());
    t.Reset();
    auto lifted = ExecuteLifted(q1, noisy);
    double t_wsd = t.Seconds();
    MAYBMS_CHECK(lifted.ok());
    sweep.AddRow({StrFormat("%.2f", n * 100),
                  StrFormat("%.0f", noisy.Log2WorldCount()),
                  StrFormat("%.4f", t_single), StrFormat("%.4f", t_wsd),
                  StrFormat("%.2fx", t_single > 0 ? t_wsd / t_single : 0.0)});
  }
  sweep.Print();
  printf("\nshape check vs paper: evaluating a query over the entire\n"
         "world-set costs a small constant factor over one conventional\n"
         "single-world execution, independent of the number of worlds.\n");

  // Third series: compiled vectorized expression evaluation vs the
  // row-at-a-time interpreter on predicate-heavy lifted operators. The
  // per-(tuple, component-row) evaluation loop is the kernel; the
  // compiled mode runs it directly on packed columns.
  BenchJson json("queries");
  json.Add("E3_single_world_total", total_single * 1e9);
  json.Add("E3_world_set_total", total_wsd * 1e9);

  size_t tuples = Scaled(600);
  size_t alts = 256;
  double world_rows = static_cast<double>(tuples * alts);
  printf("\ncompiled vs interpreted evaluation (predicate-heavy lifted "
         "operators,\n%zu tuples x %zu world-rows each):\n\n",
         tuples, alts);
  ExecOptions interp;
  interp.compile_expressions = false;
  ExecOptions compiled;  // defaults: compiled, serial below threshold
  ExecOptions compiled_mt = compiled;
  compiled_mt.parallel_row_threshold = 4096;

  Table ct({"section", "interpreted(s)", "compiled(s)", "speedup"});
  {
    WsdDb db = BuildPredHeavy(tuples, alts);
    ExprPtr pred = PredHeavySelect();
    double t_i = 1e300, t_c = 1e300;
    for (int rep = 0; rep < 5; ++rep) {
      t_i = Best(t_i, TimeSelect(db, pred, interp));
      t_c = Best(t_c, TimeSelect(db, pred, compiled));
    }
    ct.AddRow({"lifted select σ", StrFormat("%.4f", t_i),
               StrFormat("%.4f", t_c), StrFormat("%.2fx", t_i / t_c)});
    json.Add("lifted_select_predheavy_interpreted",
             t_i / world_rows * 1e9, 1.0);
    json.Add("lifted_select_predheavy_compiled", t_c / world_rows * 1e9,
             t_i / t_c);
  }
  {
    WsdDb db = BuildPredHeavy(tuples, alts);
    AddJoinRight(&db);
    // Certain equi key (hash path) plus uncertain residual conjuncts:
    // the join applies the full predicate per world through the filter.
    ExprPtr residual = Expr::And(
        Expr::Or(
            Expr::In(Expr::Column("name"),
                     {Value::String("name_5"), Value::String("name_9"),
                      Value::String("absent")}),
            Expr::And(
                Expr::Compare(CompareOp::kLt,
                              Expr::Arith(ArithOp::kMul, Expr::Column("v"),
                                          Expr::Const(Value::Int(3))),
                              Expr::Arith(ArithOp::kAdd,
                                          Expr::Column("bound"),
                                          Expr::Const(Value::Int(100)))),
                Expr::Compare(CompareOp::kNe, Expr::Column("name"),
                              Expr::Const(Value::String("name_2"))))),
        Expr::Or(
            Expr::Compare(CompareOp::kNe,
                          Expr::Arith(ArithOp::kDiv, Expr::Column("v"),
                                      Expr::Const(Value::Int(11))),
                          Expr::Const(Value::Int(4))),
            Expr::Compare(CompareOp::kEq, Expr::Column("name"),
                          Expr::Const(Value::String("name_13")))));
    ExprPtr pred = Expr::And(Expr::Compare(CompareOp::kEq,
                                           Expr::Column("grp"),
                                           Expr::Column("grp2")),
                             Expr::And(PredHeavySelect(), residual));
    double t_i = 1e300, t_c = 1e300;
    for (int rep = 0; rep < 5; ++rep) {
      t_i = Best(t_i, TimeJoin(db, pred, interp));
      t_c = Best(t_c, TimeJoin(db, pred, compiled));
    }
    ct.AddRow({"lifted join ⋈ (residual)", StrFormat("%.4f", t_i),
               StrFormat("%.4f", t_c), StrFormat("%.2fx", t_i / t_c)});
    json.Add("lifted_join_residual_interpreted", t_i / world_rows * 1e9,
             1.0);
    json.Add("lifted_join_residual_compiled", t_c / world_rows * 1e9,
             t_i / t_c);
  }
  {
    // Wide components (few tuples, many world-rows each): the batch
    // crosses the parallel threshold, so the compiled pass also shards
    // over the thread pool.
    size_t wide_tuples = 16;
    size_t wide_alts = Scaled(8192);
    double wide_rows = static_cast<double>(wide_tuples * wide_alts);
    WsdDb db = BuildPredHeavy(wide_tuples, wide_alts);
    ExprPtr pred = PredHeavySelect();
    double t_i = 1e300, t_c = 1e300, t_m = 1e300;
    for (int rep = 0; rep < 5; ++rep) {
      t_i = Best(t_i, TimeSelect(db, pred, interp));
      t_c = Best(t_c, TimeSelect(db, pred, compiled));
      t_m = Best(t_m, TimeSelect(db, pred, compiled_mt));
    }
    ct.AddRow({"lifted select σ (wide)", StrFormat("%.4f", t_i),
               StrFormat("%.4f", t_c), StrFormat("%.2fx", t_i / t_c)});
    ct.AddRow({"lifted select σ (wide, mt)", StrFormat("%.4f", t_i),
               StrFormat("%.4f", t_m), StrFormat("%.2fx", t_i / t_m)});
    json.Add("lifted_select_wide_interpreted", t_i / wide_rows * 1e9, 1.0);
    json.Add("lifted_select_wide_compiled", t_c / wide_rows * 1e9,
             t_i / t_c);
    json.Add("lifted_select_wide_compiled_mt", t_m / wide_rows * 1e9,
             t_i / t_m);
  }
  ct.Print();
  printf("\n(the compiled mode lowers each predicate once and evaluates "
         "whole\npacked component columns per pass; interpreted mode "
         "re-walks the Expr\ntree per world-row through heap Values)\n");

  // Fourth series: the cost-based plan optimizer on vs off. Both runs
  // execute the SAME logical query lifted over the SAME world-set; only
  // the plan differs (raw planner shape: one big WHERE above a product
  // chain, wide outputs narrowed at the top).
  printf("\ncost-based plan optimization on vs off (lifted evaluation):\n\n");
  sql::OptimizerOptions opt_on;  // defaults: every rule enabled
  sql::OptimizerOptions opt_off;
  opt_off.enable = false;
  auto time_plan = [](const WsdDb& db, const PlanPtr& plan,
                      const sql::OptimizerOptions& o, size_t* out_rows) {
    Timer t;
    auto optimized = sql::Optimize(plan, db, o);
    MAYBMS_CHECK(optimized.ok()) << optimized.status().ToString();
    auto result = ExecuteLifted(*optimized, db);
    double sec = t.Seconds();
    MAYBMS_CHECK(result.ok()) << result.status().ToString();
    *out_rows = result->GetRelation("result").value()->NumTuples();
    return sec;
  };

  Table ot({"section", "unoptimized(s)", "optimized(s)", "speedup",
            "answer templates"});
  {
    // (a) Selective filter above a 3-way join, written the way the SQL
    // planner emits it: products first, one conjunctive WHERE on top.
    // Pushdown + join reordering shrink the inputs before any pairing;
    // unoptimized, the full 3-way product materializes first.
    WsdDb db;
    Status st = db.CreateRelation("f", Schema({{"k", ValueType::kInt},
                                               {"v", ValueType::kInt},
                                               {"w", ValueType::kInt}}));
    MAYBMS_CHECK(st.ok());
    size_t fact_rows = Scaled(1200);
    for (size_t i = 0; i < fact_rows; ++i) {
      std::vector<CellSpec> cells = {
          CellSpec::Certain(Value::Int(static_cast<int64_t>(i % 40))),
          CellSpec::Certain(Value::Int(static_cast<int64_t>(i % 50))),
          CellSpec::Certain(Value::Int(static_cast<int64_t>(i % 7)))};
      if (i % 10 == 0) {  // 10% uncertain cells keep the WSD machinery hot
        cells[1] = CellSpec::UniformOrSet(
            {Value::Int(static_cast<int64_t>(i % 50)),
             Value::Int(static_cast<int64_t>((i + 1) % 50))});
      }
      MAYBMS_CHECK(InsertTuple(&db, "f", std::move(cells)).ok());
    }
    st = db.CreateRelation("d1", Schema({{"k1", ValueType::kInt},
                                         {"a", ValueType::kInt}}));
    MAYBMS_CHECK(st.ok());
    st = db.CreateRelation("d2", Schema({{"k2", ValueType::kInt},
                                         {"b", ValueType::kInt}}));
    MAYBMS_CHECK(st.ok());
    for (int64_t g = 0; g < 40; ++g) {
      MAYBMS_CHECK(InsertTuple(&db, "d1",
                               {CellSpec::Certain(Value::Int(g)),
                                CellSpec::Certain(Value::Int(g * 2))})
                       .ok());
      MAYBMS_CHECK(InsertTuple(&db, "d2",
                               {CellSpec::Certain(Value::Int(g)),
                                CellSpec::Certain(Value::Int(g * 3))})
                       .ok());
    }
    ExprPtr where = Expr::And(
        Expr::And(Expr::Compare(CompareOp::kEq, Expr::Column("k"),
                                Expr::Column("k1")),
                  Expr::Compare(CompareOp::kEq, Expr::Column("k1"),
                                Expr::Column("k2"))),
        Expr::And(Expr::Compare(CompareOp::kEq, Expr::Column("v"),
                                Expr::Const(Value::Int(7))),
                  Expr::Compare(CompareOp::kGe, Expr::Column("w"),
                                Expr::Const(Value::Int(0)))));
    PlanPtr plan = Plan::Select(
        Plan::Product(Plan::Product(Plan::Scan("f"), Plan::Scan("d1")),
                      Plan::Scan("d2")),
        where);
    size_t rows_off = 0, rows_on = 0;
    double t_off = 1e300, t_on = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      t_off = Best(t_off, time_plan(db, plan, opt_off, &rows_off));
      t_on = Best(t_on, time_plan(db, plan, opt_on, &rows_on));
    }
    MAYBMS_CHECK(rows_off == rows_on)
        << rows_off << " vs " << rows_on << " answer templates";
    ot.AddRow({"selective σ over 3-way ⋈", StrFormat("%.4f", t_off),
               StrFormat("%.4f", t_on), StrFormat("%.2fx", t_off / t_on),
               StrFormat("%zu", rows_on)});
    json.Add("opt_pushdown_3way_join_off", t_off * 1e9, 1.0);
    json.Add("opt_pushdown_3way_join_on", t_on * 1e9, t_off / t_on);
  }
  {
    // (b) Wide projection over a narrow answer: 10-column fact table
    // (several uncertain), joined and then projected onto 2 columns.
    // Projection pruning narrows both join inputs first, so the lifted
    // join pairs narrow tuples and marginalizes unused slots early.
    WsdDb db;
    Schema wide_schema({{"k", ValueType::kInt},
                        {"c1", ValueType::kInt},
                        {"c2", ValueType::kString},
                        {"c3", ValueType::kInt},
                        {"c4", ValueType::kString},
                        {"c5", ValueType::kInt},
                        {"c6", ValueType::kInt},
                        {"c7", ValueType::kString},
                        {"c8", ValueType::kInt},
                        {"c9", ValueType::kInt}});
    Status st = db.CreateRelation("wide", wide_schema);
    MAYBMS_CHECK(st.ok());
    size_t wide_rows = Scaled(4000);
    for (size_t i = 0; i < wide_rows; ++i) {
      std::vector<CellSpec> cells;
      cells.push_back(
          CellSpec::Certain(Value::Int(static_cast<int64_t>(i % 50))));
      for (int c = 1; c <= 9; ++c) {
        bool is_str = c == 2 || c == 4 || c == 7;
        Value v = is_str ? Value::String("s" + std::to_string((i + c) % 20))
                         : Value::Int(static_cast<int64_t>((i * c) % 100));
        if (c >= 8 && i % 5 == 0) {
          cells.push_back(CellSpec::UniformOrSet(
              {v, Value::Int(static_cast<int64_t>((i * c + 1) % 100))}));
        } else {
          cells.push_back(CellSpec::Certain(v));
        }
      }
      MAYBMS_CHECK(InsertTuple(&db, "wide", std::move(cells)).ok());
    }
    st = db.CreateRelation("dim", Schema({{"dk", ValueType::kInt},
                                          {"label", ValueType::kString}}));
    MAYBMS_CHECK(st.ok());
    for (int64_t g = 0; g < 50; ++g) {
      MAYBMS_CHECK(InsertTuple(&db, "dim",
                               {CellSpec::Certain(Value::Int(g)),
                                CellSpec::Certain(Value::String(
                                    "label_" + std::to_string(g)))})
                       .ok());
    }
    PlanPtr plan = Plan::Project(
        Plan::Select(Plan::Product(Plan::Scan("wide"), Plan::Scan("dim")),
                     Expr::And(Expr::Compare(CompareOp::kEq, Expr::Column("k"),
                                             Expr::Column("dk")),
                               Expr::Compare(CompareOp::kLt, Expr::Column("c1"),
                                             Expr::Const(Value::Int(30))))),
        {{Expr::Column("c1"), "c1"}, {Expr::Column("label"), "label"}});
    size_t rows_off = 0, rows_on = 0;
    double t_off = 1e300, t_on = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      t_off = Best(t_off, time_plan(db, plan, opt_off, &rows_off));
      t_on = Best(t_on, time_plan(db, plan, opt_on, &rows_on));
    }
    MAYBMS_CHECK(rows_off == rows_on)
        << rows_off << " vs " << rows_on << " answer templates";
    ot.AddRow({"wide π over narrow ⋈", StrFormat("%.4f", t_off),
               StrFormat("%.4f", t_on), StrFormat("%.2fx", t_off / t_on),
               StrFormat("%zu", rows_on)});
    json.Add("opt_prune_wide_projection_off", t_off * 1e9, 1.0);
    json.Add("opt_prune_wide_projection_on", t_on * 1e9, t_off / t_on);
  }
  ot.Print();
  printf("\n(unoptimized: the planner's raw shape — full products, one\n"
         "WHERE on top, wide outputs; optimized: conjuncts split and\n"
         "pushed into the inputs, join order chosen by estimated\n"
         "cardinality with the smaller side as hash build side, join\n"
         "inputs pruned to referenced columns)\n");
  return 0;
}
