// Experiment E3 (paper: query evaluation on world-sets vs conventional
// processing).
//
// "The performance of query evaluation on incomplete data was compared to
//  that of conventional query processing (that is, of processing a single
//  world using standard database techniques). Our results showed that the
//  processing time on large world-sets is very close to that on a single
//  world."
//
// Runs the six census workload queries conventionally on the clean single
// world and lifted on the noisy (cleaned) world-set, reporting both times
// and their ratio. The world-set here has far too many worlds to
// enumerate — the ratio being a small constant is the reproduction of the
// paper's claim.
#include "bench/bench_util.h"
#include "chase/enforce.h"
#include "core/lifted_executor.h"
#include "gen/workload.h"
#include "ra/executor.h"

using namespace maybms;
using namespace maybms::bench;

int main() {
  size_t records = Scaled(20000);
  double noise = 0.001;
  printf("E3 queries: lifted evaluation on the world-set vs conventional "
         "single-world processing\n(census %zu records, %.2f%% noise)\n\n",
         records, noise * 100);

  Catalog clean;
  Status st = clean.Create(GenerateCensus({records, 3}));
  MAYBMS_CHECK(st.ok());
  st = clean.Create(GenerateStates());
  MAYBMS_CHECK(st.ok());

  WsdDb db = BuildNoisyCensus(records, noise, /*seed=*/3);
  // Clean the world-set first (experiment 3 ran on cleaned data).
  for (const auto& c : CensusConstraints()) {
    auto stats = Enforce(&db, c);
    MAYBMS_CHECK(stats.ok()) << c.ToString() << ": "
                             << stats.status().ToString();
  }
  printf("world-set after cleaning: 2^%.0f worlds\n\n", db.Log2WorldCount());

  Table table({"query", "description", "single(s)", "wsd(s)", "ratio",
               "single rows", "wsd templates"});
  double total_single = 0, total_wsd = 0;
  for (const auto& q : CensusQueries()) {
    Timer t;
    auto conventional = Execute(q.plan, clean);
    double t_single = t.Seconds();
    MAYBMS_CHECK(conventional.ok()) << conventional.status().ToString();
    t.Reset();
    auto lifted = ExecuteLifted(q.plan, db);
    double t_wsd = t.Seconds();
    MAYBMS_CHECK(lifted.ok()) << q.id << ": " << lifted.status().ToString();
    total_single += t_single;
    total_wsd += t_wsd;
    table.AddRow({q.id, q.description, StrFormat("%.4f", t_single),
                  StrFormat("%.4f", t_wsd),
                  StrFormat("%.2fx", t_single > 0 ? t_wsd / t_single : 0.0),
                  StrFormat("%zu", conventional->NumRows()),
                  StrFormat("%zu",
                            lifted->GetRelation("result").value()
                                ->NumTuples())});
  }
  table.Print();
  printf("\ntotal: single %.3fs, world-set %.3fs (ratio %.2fx over 2^%.0f "
         "worlds)\n",
         total_single, total_wsd, total_wsd / total_single,
         db.Log2WorldCount());

  // Second series: the ratio as a function of the degree of
  // incompleteness (the paper's experiments sweep the noise degree) — Q1.
  printf("\nQ1 ratio vs noise degree (world count grows exponentially, the "
         "ratio stays flat):\n");
  Table sweep({"noise%", "log2 worlds", "single(s)", "wsd(s)", "ratio"});
  auto q1 = CensusQueries()[0].plan;
  for (double n : {0.0, 0.0001, 0.001, 0.005, 0.01}) {
    WsdDb noisy = BuildNoisyCensus(records, n, /*seed=*/33);
    Timer t;
    auto conventional = Execute(q1, clean);
    double t_single = t.Seconds();
    MAYBMS_CHECK(conventional.ok());
    t.Reset();
    auto lifted = ExecuteLifted(q1, noisy);
    double t_wsd = t.Seconds();
    MAYBMS_CHECK(lifted.ok());
    sweep.AddRow({StrFormat("%.2f", n * 100),
                  StrFormat("%.0f", noisy.Log2WorldCount()),
                  StrFormat("%.4f", t_single), StrFormat("%.4f", t_wsd),
                  StrFormat("%.2fx", t_single > 0 ? t_wsd / t_single : 0.0)});
  }
  sweep.Print();
  printf("\nshape check vs paper: evaluating a query over the entire\n"
         "world-set costs a small constant factor over one conventional\n"
         "single-world execution, independent of the number of worlds.\n");
  return 0;
}
