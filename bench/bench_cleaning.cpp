// Experiment E2 (paper: data cleaning by integrity-constraint
// enforcement).
//
// "The second part of the experiments showed how data cleaning procedures
//  can be used in MayBMS. We cleaned the world-set from inconsistencies
//  by enforcing real-life integrity constraints."
//
// For each constraint class (domain, conditional domain, key, functional
// dependency) and noise degree, reports enforcement time, the probability
// mass of removed (inconsistent) worlds, deleted component rows, and the
// world count before/after.
#include "bench/bench_util.h"
#include "chase/enforce.h"
#include "gen/workload.h"

using namespace maybms;
using namespace maybms::bench;

int main() {
  size_t records = Scaled(20000);
  printf("E2 cleaning: constraint enforcement on the noisy census "
         "(%zu records)\n\n",
         records);

  // 0.5% (5x the paper's densest degree) is included deliberately: exact
  // FD conditioning hits the correlation budget there — an honest
  // breakdown point of the representation (see EXPERIMENTS.md).
  for (double noise : {0.0005, 0.001, 0.002, 0.005}) {
    WsdDb db = BuildNoisyCensus(records, noise, /*seed=*/2);
    printf("noise degree %.2f%% (2^%.0f worlds before cleaning)\n",
           noise * 100, db.Log2WorldCount());
    Table table({"constraint", "time(s)", "removed mass", "rows deleted",
                 "pairs checked", "log2 worlds after"});
    for (const auto& c : CensusConstraints()) {
      Timer t;
      auto stats = Enforce(&db, c);
      double secs = t.Seconds();
      if (!stats.ok()) {
        table.AddRow({c.ToString(), StrFormat("%.3f", secs),
                      stats.status().ToString(), "-", "-", "-"});
        continue;
      }
      table.AddRow({c.ToString(), StrFormat("%.3f", secs),
                    StrFormat("%.4g", stats->removed_mass),
                    StrFormat("%zu", stats->rows_removed),
                    StrFormat("%zu", stats->pairs_checked),
                    StrFormat("%.0f", stats->log2_worlds_after)});
    }
    table.Print();
    printf("\n");
  }
  printf("shape check vs paper: cleaning time is dominated by a single\n"
         "scan per constraint (plus candidate-pair hashing for keys/FDs);\n"
         "conditioning removes inconsistent worlds and renormalizes the\n"
         "distribution without materializing any world.\n");
  return 0;
}
