// Experiment E8: operator micro-benchmarks (google-benchmark).
//
// Measures the primitive operations behind the experiment numbers: value
// comparison/hashing, expression evaluation, component product and dedup,
// lifted vs conventional selection per tuple, existence probability, and
// confidence computation on the paper's running example.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/confidence.h"
#include "core/lifted_executor.h"
#include "core/normalize.h"
#include "ra/executor.h"
#include "worlds/enumerate.h"

using namespace maybms;
using namespace maybms::bench;

namespace {

WsdDb MedicalExample() {
  WsdDb db;
  Schema schema({{"Diagnosis", ValueType::kString},
                 {"Test", ValueType::kString},
                 {"Symptom", ValueType::kString}});
  Status st = db.CreateRelation("R", schema);
  MAYBMS_CHECK(st.ok());
  auto r1 = InsertTuple(
      &db, "R",
      {CellSpec::Pending(), CellSpec::Pending(),
       CellSpec::OrSet({{Value::String("weight gain"), 0.7},
                        {Value::String("fatigue"), 0.3}})});
  MAYBMS_CHECK(r1.ok());
  auto c1 = AddJointComponent(
      &db, {{*r1, "Diagnosis"}, {*r1, "Test"}},
      {{{Value::String("pregnancy"), Value::String("ultrasound")}, 0.4},
       {{Value::String("hypothyroidism"), Value::String("TSH")}, 0.6}});
  MAYBMS_CHECK(c1.ok());
  auto r2 = InsertTuple(&db, "R",
                        {CellSpec::Certain(Value::String("obesity")),
                         CellSpec::Certain(Value::String("BMI")),
                         CellSpec::Certain(Value::String("weight gain"))});
  MAYBMS_CHECK(r2.ok());
  return db;
}

void BM_ValueCompareInt(benchmark::State& state) {
  Value a = Value::Int(42), b = Value::Int(43);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Compare(b));
  }
}
BENCHMARK(BM_ValueCompareInt);

void BM_ValueHashString(benchmark::State& state) {
  Value v = Value::String("hypothyroidism");
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.Hash());
  }
}
BENCHMARK(BM_ValueHashString);

void BM_ExprEvalConjunction(benchmark::State& state) {
  Schema s({{"a", ValueType::kInt}, {"b", ValueType::kInt}});
  auto pred = Expr::And(
      Expr::Compare(CompareOp::kGe, Expr::Column("a"),
                    Expr::Const(Value::Int(10))),
      Expr::Compare(CompareOp::kLt, Expr::Column("b"),
                    Expr::Const(Value::Int(100))));
  auto bound = pred->BindAgainst(s);
  MAYBMS_CHECK(bound.ok());
  Tuple t{Value::Int(50), Value::Int(50)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalPredicate(**bound, t));
  }
}
BENCHMARK(BM_ExprEvalConjunction);

void BM_ComponentProduct(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  Component a, b;
  a.AddSlot({1, "x"}, Value::Null());
  b.AddSlot({2, "y"}, Value::Null());
  for (size_t i = 0; i < rows; ++i) {
    Status st = a.AddRow({{Value::Int(static_cast<int64_t>(i))},
                          1.0 / static_cast<double>(rows)});
    MAYBMS_CHECK(st.ok());
    st = b.AddRow({{Value::Int(static_cast<int64_t>(i))},
                   1.0 / static_cast<double>(rows)});
    MAYBMS_CHECK(st.ok());
  }
  for (auto _ : state) {
    auto p = Component::Product(a, b, 1u << 22);
    MAYBMS_CHECK(p.ok());
    benchmark::DoNotOptimize(p->NumRows());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows * rows));
}
BENCHMARK(BM_ComponentProduct)->Arg(8)->Arg(64)->Arg(256);

void BM_LiftedSelectPerTuple(benchmark::State& state) {
  size_t records = 2000;
  double noise = static_cast<double>(state.range(0)) / 10000.0;
  WsdDb base = BuildNoisyCensus(records, noise, /*seed=*/21);
  auto plan = Plan::Select(Plan::Scan("census"),
                           Expr::Compare(CompareOp::kGe, Expr::Column("AGE"),
                                         Expr::Const(Value::Int(65))));
  for (auto _ : state) {
    auto result = ExecuteLifted(plan, base);
    MAYBMS_CHECK(result.ok());
    benchmark::DoNotOptimize(result->NumLiveComponents());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(records));
}
BENCHMARK(BM_LiftedSelectPerTuple)->Arg(0)->Arg(10)->Arg(100);

void BM_ConventionalSelectPerTuple(benchmark::State& state) {
  size_t records = 2000;
  Catalog cat;
  Status st = cat.Create(GenerateCensus({records, 21}));
  MAYBMS_CHECK(st.ok());
  auto plan = Plan::Select(Plan::Scan("census"),
                           Expr::Compare(CompareOp::kGe, Expr::Column("AGE"),
                                         Expr::Const(Value::Int(65))));
  for (auto _ : state) {
    auto result = Execute(plan, cat);
    MAYBMS_CHECK(result.ok());
    benchmark::DoNotOptimize(result->NumRows());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(records));
}
BENCHMARK(BM_ConventionalSelectPerTuple);

void BM_Normalize(benchmark::State& state) {
  WsdDb base = BuildNoisyCensus(5000, 0.001, /*seed=*/22);
  for (auto _ : state) {
    WsdDb db = base;
    auto stats = Normalize(&db);
    MAYBMS_CHECK(stats.ok());
    benchmark::DoNotOptimize(stats->iterations);
  }
}
BENCHMARK(BM_Normalize);

void BM_ExistenceProbability(benchmark::State& state) {
  WsdDb db = MedicalExample();
  const WsdRelation* rel = db.GetRelation("R").value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.ExistenceProbability(rel->tuple(0)));
  }
}
BENCHMARK(BM_ExistenceProbability);

void BM_ConfMedicalExample(benchmark::State& state) {
  WsdDb db = MedicalExample();
  for (auto _ : state) {
    auto conf = ConfTable(db, "R");
    MAYBMS_CHECK(conf.ok());
    benchmark::DoNotOptimize(conf->NumRows());
  }
}
BENCHMARK(BM_ConfMedicalExample);

void BM_EnumerateWorlds(benchmark::State& state) {
  // World count = 2^range or-sets.
  size_t cells = static_cast<size_t>(state.range(0));
  WsdDb db;
  Status st = db.CreateRelation("r", Schema({{"x", ValueType::kInt}}));
  MAYBMS_CHECK(st.ok());
  for (size_t i = 0; i < cells; ++i) {
    auto h = InsertTuple(
        &db, "r",
        {CellSpec::OrSet({{Value::Int(0), 0.5}, {Value::Int(1), 0.5}})});
    MAYBMS_CHECK(h.ok());
  }
  for (auto _ : state) {
    auto worlds = EnumerateWorlds(db, 1u << 20);
    MAYBMS_CHECK(worlds.ok());
    benchmark::DoNotOptimize(worlds->size());
  }
}
BENCHMARK(BM_EnumerateWorlds)->Arg(4)->Arg(8)->Arg(12);

}  // namespace

BENCHMARK_MAIN();
