// Experiment E8: operator micro-benchmarks (google-benchmark).
//
// Measures the primitive operations behind the experiment numbers: value
// comparison/hashing, expression evaluation, component product and dedup,
// lifted vs conventional selection per tuple, existence probability, and
// confidence computation on the paper's running example.
#include <benchmark/benchmark.h>

#include <string>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"
#include "core/confidence.h"
#include "core/lifted_executor.h"
#include "core/normalize.h"
#include "ra/executor.h"
#include "worlds/enumerate.h"

using namespace maybms;
using namespace maybms::bench;

namespace {

WsdDb MedicalExample() {
  WsdDb db;
  Schema schema({{"Diagnosis", ValueType::kString},
                 {"Test", ValueType::kString},
                 {"Symptom", ValueType::kString}});
  Status st = db.CreateRelation("R", schema);
  MAYBMS_CHECK(st.ok());
  auto r1 = InsertTuple(
      &db, "R",
      {CellSpec::Pending(), CellSpec::Pending(),
       CellSpec::OrSet({{Value::String("weight gain"), 0.7},
                        {Value::String("fatigue"), 0.3}})});
  MAYBMS_CHECK(r1.ok());
  auto c1 = AddJointComponent(
      &db, {{*r1, "Diagnosis"}, {*r1, "Test"}},
      {{{Value::String("pregnancy"), Value::String("ultrasound")}, 0.4},
       {{Value::String("hypothyroidism"), Value::String("TSH")}, 0.6}});
  MAYBMS_CHECK(c1.ok());
  auto r2 = InsertTuple(&db, "R",
                        {CellSpec::Certain(Value::String("obesity")),
                         CellSpec::Certain(Value::String("BMI")),
                         CellSpec::Certain(Value::String("weight gain"))});
  MAYBMS_CHECK(r2.ok());
  return db;
}

void BM_ValueCompareInt(benchmark::State& state) {
  Value a = Value::Int(42), b = Value::Int(43);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Compare(b));
  }
}
BENCHMARK(BM_ValueCompareInt);

void BM_ValueHashString(benchmark::State& state) {
  Value v = Value::String("hypothyroidism");
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.Hash());
  }
}
BENCHMARK(BM_ValueHashString);

void BM_ExprEvalConjunction(benchmark::State& state) {
  Schema s({{"a", ValueType::kInt}, {"b", ValueType::kInt}});
  auto pred = Expr::And(
      Expr::Compare(CompareOp::kGe, Expr::Column("a"),
                    Expr::Const(Value::Int(10))),
      Expr::Compare(CompareOp::kLt, Expr::Column("b"),
                    Expr::Const(Value::Int(100))));
  auto bound = pred->BindAgainst(s);
  MAYBMS_CHECK(bound.ok());
  Tuple t{Value::Int(50), Value::Int(50)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalPredicate(**bound, t));
  }
}
BENCHMARK(BM_ExprEvalConjunction);

void BM_ComponentProduct(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  Component a, b;
  a.AddSlot({1, "x"}, Value::Null());
  b.AddSlot({2, "y"}, Value::Null());
  for (size_t i = 0; i < rows; ++i) {
    Status st = a.AddRow({{Value::Int(static_cast<int64_t>(i))},
                          1.0 / static_cast<double>(rows)});
    MAYBMS_CHECK(st.ok());
    st = b.AddRow({{Value::Int(static_cast<int64_t>(i))},
                   1.0 / static_cast<double>(rows)});
    MAYBMS_CHECK(st.ok());
  }
  for (auto _ : state) {
    auto p = Component::Product(a, b, 1u << 22);
    MAYBMS_CHECK(p.ok());
    benchmark::DoNotOptimize(p->NumRows());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows * rows));
}
BENCHMARK(BM_ComponentProduct)->Arg(8)->Arg(64)->Arg(256);

// --- Row-oriented (AoS) baseline -------------------------------------------
//
// The pre-columnar component layout: one std::vector<Value> of tagged
// variants per row. Product and dedup below are verbatim ports of the old
// Component implementation, kept here so bench_micro reports the columnar
// speedup against a faithful baseline.

struct BaselineRow {
  std::vector<Value> values;
  double prob = 1.0;
};

struct BaselineComponent {
  std::vector<BaselineRow> rows;

  static BaselineComponent Product(const BaselineComponent& a,
                                   const BaselineComponent& b) {
    BaselineComponent out;
    out.rows.reserve(a.rows.size() * b.rows.size());
    for (const auto& ra : a.rows) {
      for (const auto& rb : b.rows) {
        BaselineRow row;
        row.values.reserve(ra.values.size() + rb.values.size());
        row.values.insert(row.values.end(), ra.values.begin(),
                          ra.values.end());
        row.values.insert(row.values.end(), rb.values.begin(),
                          rb.values.end());
        row.prob = ra.prob * rb.prob;
        out.rows.push_back(std::move(row));
      }
    }
    return out;
  }

  void Dedup() {
    std::unordered_map<size_t, std::vector<size_t>> seen;
    std::vector<BaselineRow> kept;
    kept.reserve(rows.size());
    for (auto& row : rows) {
      size_t h = row.values.size();
      for (const auto& v : row.values) HashCombine(&h, v.Hash());
      auto& bucket = seen[h];
      bool merged = false;
      for (size_t idx : bucket) {
        if (kept[idx].values.size() == row.values.size()) {
          bool eq = true;
          for (size_t i = 0; i < row.values.size(); ++i) {
            if (!(kept[idx].values[i] == row.values[i])) {
              eq = false;
              break;
            }
          }
          if (eq) {
            kept[idx].prob += row.prob;
            merged = true;
            break;
          }
        }
      }
      if (!merged) {
        bucket.push_back(kept.size());
        kept.push_back(std::move(row));
      }
    }
    rows = std::move(kept);
  }
};

Value BenchValue(size_t i, bool strings) {
  if (strings && i % 2 == 0) {
    return Value::String("alt-" + std::to_string(i % 8));
  }
  return Value::Int(static_cast<int64_t>(i));
}

void BM_ComponentProductRowBaseline(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  BaselineComponent a, b;
  for (size_t i = 0; i < rows; ++i) {
    a.rows.push_back({{Value::Int(static_cast<int64_t>(i))},
                      1.0 / static_cast<double>(rows)});
    b.rows.push_back({{Value::Int(static_cast<int64_t>(i))},
                      1.0 / static_cast<double>(rows)});
  }
  for (auto _ : state) {
    BaselineComponent p = BaselineComponent::Product(a, b);
    benchmark::DoNotOptimize(p.rows.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows * rows));
}
BENCHMARK(BM_ComponentProductRowBaseline)->Arg(8)->Arg(64)->Arg(256);

// Dedup over `rows` rows of 4 slots where each row appears twice; the
// string variant exercises interning (columnar) vs per-Value string
// hashing and comparison (baseline). range(0)=rows, range(1)=strings?
void BM_DedupRowsColumnar(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  bool strings = state.range(1) != 0;
  Component base;
  for (int s = 0; s < 4; ++s) {
    base.AddSlot({static_cast<OwnerId>(s + 1), "s"}, Value::Null());
  }
  for (size_t i = 0; i < rows; ++i) {
    size_t key = i % (rows / 2);
    Status st = base.AddRow({{BenchValue(key, strings),
                              BenchValue(key + 1, strings),
                              BenchValue(key + 2, strings),
                              BenchValue(key + 3, strings)},
                             1.0 / static_cast<double>(rows)});
    MAYBMS_CHECK(st.ok());
  }
  for (auto _ : state) {
    Component c = base;
    c.DedupRows();
    benchmark::DoNotOptimize(c.NumRows());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows));
}
BENCHMARK(BM_DedupRowsColumnar)
    ->Args({1024, 0})
    ->Args({16384, 0})
    ->Args({1024, 1})
    ->Args({16384, 1});

void BM_DedupRowsRowBaseline(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  bool strings = state.range(1) != 0;
  BaselineComponent base;
  for (size_t i = 0; i < rows; ++i) {
    size_t key = i % (rows / 2);
    base.rows.push_back({{BenchValue(key, strings),
                          BenchValue(key + 1, strings),
                          BenchValue(key + 2, strings),
                          BenchValue(key + 3, strings)},
                         1.0 / static_cast<double>(rows)});
  }
  for (auto _ : state) {
    BaselineComponent c = base;
    c.Dedup();
    benchmark::DoNotOptimize(c.rows.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows));
}
BENCHMARK(BM_DedupRowsRowBaseline)
    ->Args({1024, 0})
    ->Args({16384, 0})
    ->Args({1024, 1})
    ->Args({16384, 1});

// Marginalization: drop half the slots of a wide component. Columnar
// DropSlots discards whole columns; the baseline rebuilds every row.
void BM_DropSlotsColumnar(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  Component base;
  for (int s = 0; s < 8; ++s) {
    base.AddSlot({static_cast<OwnerId>(s + 1), "s"}, Value::Null());
  }
  for (size_t i = 0; i < rows; ++i) {
    ComponentRow row;
    for (int s = 0; s < 8; ++s) {
      row.values.push_back(Value::Int(static_cast<int64_t>(i * 8 + s)));
    }
    row.prob = 1.0 / static_cast<double>(rows);
    Status st = base.AddRow(std::move(row));
    MAYBMS_CHECK(st.ok());
  }
  for (auto _ : state) {
    Component c = base;
    c.DropSlots({1, 3, 5, 7});
    benchmark::DoNotOptimize(c.NumRows());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows));
}
BENCHMARK(BM_DropSlotsColumnar)->Arg(1024)->Arg(16384);

void BM_LiftedSelectPerTuple(benchmark::State& state) {
  size_t records = 2000;
  double noise = static_cast<double>(state.range(0)) / 10000.0;
  WsdDb base = BuildNoisyCensus(records, noise, /*seed=*/21);
  auto plan = Plan::Select(Plan::Scan("census"),
                           Expr::Compare(CompareOp::kGe, Expr::Column("AGE"),
                                         Expr::Const(Value::Int(65))));
  for (auto _ : state) {
    auto result = ExecuteLifted(plan, base);
    MAYBMS_CHECK(result.ok());
    benchmark::DoNotOptimize(result->NumLiveComponents());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(records));
}
BENCHMARK(BM_LiftedSelectPerTuple)->Arg(0)->Arg(10)->Arg(100);

void BM_ConventionalSelectPerTuple(benchmark::State& state) {
  size_t records = 2000;
  Catalog cat;
  Status st = cat.Create(GenerateCensus({records, 21}));
  MAYBMS_CHECK(st.ok());
  auto plan = Plan::Select(Plan::Scan("census"),
                           Expr::Compare(CompareOp::kGe, Expr::Column("AGE"),
                                         Expr::Const(Value::Int(65))));
  for (auto _ : state) {
    auto result = Execute(plan, cat);
    MAYBMS_CHECK(result.ok());
    benchmark::DoNotOptimize(result->NumRows());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(records));
}
BENCHMARK(BM_ConventionalSelectPerTuple);

void BM_Normalize(benchmark::State& state) {
  WsdDb base = BuildNoisyCensus(5000, 0.001, /*seed=*/22);
  for (auto _ : state) {
    WsdDb db = base;
    auto stats = Normalize(&db);
    MAYBMS_CHECK(stats.ok());
    benchmark::DoNotOptimize(stats->iterations);
  }
}
BENCHMARK(BM_Normalize);

void BM_ExistenceProbability(benchmark::State& state) {
  WsdDb db = MedicalExample();
  const WsdRelation* rel = db.GetRelation("R").value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.ExistenceProbability(rel->tuple(0)));
  }
}
BENCHMARK(BM_ExistenceProbability);

void BM_ConfMedicalExample(benchmark::State& state) {
  WsdDb db = MedicalExample();
  for (auto _ : state) {
    auto conf = ConfTable(db, "R");
    MAYBMS_CHECK(conf.ok());
    benchmark::DoNotOptimize(conf->NumRows());
  }
}
BENCHMARK(BM_ConfMedicalExample);

void BM_EnumerateWorlds(benchmark::State& state) {
  // World count = 2^range or-sets.
  size_t cells = static_cast<size_t>(state.range(0));
  WsdDb db;
  Status st = db.CreateRelation("r", Schema({{"x", ValueType::kInt}}));
  MAYBMS_CHECK(st.ok());
  for (size_t i = 0; i < cells; ++i) {
    auto h = InsertTuple(
        &db, "r",
        {CellSpec::OrSet({{Value::Int(0), 0.5}, {Value::Int(1), 0.5}})});
    MAYBMS_CHECK(h.ok());
  }
  for (auto _ : state) {
    auto worlds = EnumerateWorlds(db, 1u << 20);
    MAYBMS_CHECK(worlds.ok());
    benchmark::DoNotOptimize(worlds->size());
  }
}
BENCHMARK(BM_EnumerateWorlds)->Arg(4)->Arg(8)->Arg(12);

void BM_ConfMultiCluster(benchmark::State& state) {
  // 8 independence clusters built from merged (factorizable) components;
  // range(0) = threads evaluating clusters concurrently.
  static WsdDb* db = [] {
    auto* d = new WsdDb;
    Status st = d->CreateRelation(
        "r", Schema({{"id", ValueType::kInt}, {"v", ValueType::kInt}}));
    MAYBMS_CHECK(st.ok());
    WsdRelation* rel = d->GetMutableRelation("r").value();
    int64_t id = 0;
    for (int g = 0; g < 8; ++g) {
      std::vector<ComponentId> comps;
      for (int s = 0; s < 8; ++s) {
        auto h = InsertTuple(
            d, "r",
            {CellSpec::Certain(Value::Int(id++)),
             CellSpec::OrSet({{Value::Int(g * 100 + 2 * s), 0.5},
                              {Value::Int(g * 100 + 2 * s + 1), 0.5}})});
        MAYBMS_CHECK(h.ok());
        comps.push_back(rel->tuple(h->index).cells[1].ref().cid);
      }
      auto merged = d->MergeComponents(comps, 1u << 20);
      MAYBMS_CHECK(merged.ok());
      for (uint32_t m = 8; m < 48; ++m) {
        WsdTuple t;
        t.cells.push_back(Cell::Certain(Value::Int(id++)));
        t.cells.push_back(Cell::Ref({*merged, m % 8}));
        rel->Add(std::move(t));
      }
    }
    return d;
  }();
  ConfidenceOptions opt;
  opt.num_threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto conf = ConfTable(*db, "r", opt);
    MAYBMS_CHECK(conf.ok());
    benchmark::DoNotOptimize(conf->NumRows());
  }
}
BENCHMARK(BM_ConfMultiCluster)->Arg(1)->Arg(4);

// Console output plus machine-readable BENCH_micro.json: every result's
// ns/op, with speedup computed against its BM_*RowBaseline counterpart
// where one exists, so the columnar-vs-row trajectory is tracked across
// PRs. With --benchmark_repetitions=N the minimum across repetitions is
// kept per benchmark — the regression gate wants the code's best
// achievable time, not scheduler noise.
class JsonTrackReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& r : runs) {
      if (r.run_type == Run::RT_Iteration) {
        std::string name = r.benchmark_name();
        double ns = r.GetAdjustedRealTime();
        auto [it, inserted] = index_.try_emplace(name, results_.size());
        if (inserted) {
          results_.emplace_back(std::move(name), ns);
        } else if (ns < results_[it->second].second) {
          results_[it->second].second = ns;
        }
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

  void WriteJson() {
    maybms::bench::BenchJson json("micro");
    std::unordered_map<std::string, double> by_name(results_.begin(),
                                                    results_.end());
    for (const auto& [name, ns] : results_) {
      double speedup = 0.0;
      if (name.find("RowBaseline") != std::string::npos) {
        speedup = 1.0;  // the baseline itself, per the BenchJson contract
      } else if (ns > 0.0) {
        size_t slash = name.find('/');
        std::string base =
            slash == std::string::npos ? name : name.substr(0, slash);
        std::string args = slash == std::string::npos ? "" : name.substr(slash);
        // BM_Foo/args pairs with BM_FooRowBaseline/args; a "Columnar"
        // variant suffix is replaced, not appended (BM_DedupRowsColumnar
        // pairs with BM_DedupRowsRowBaseline).
        for (std::string candidate_base : {base, [&] {
               constexpr const char kVariant[] = "Columnar";
               size_t len = sizeof(kVariant) - 1;
               return base.size() > len &&
                              base.compare(base.size() - len, len, kVariant) ==
                                  0
                          ? base.substr(0, base.size() - len)
                          : base;
             }()}) {
          auto it = by_name.find(candidate_base + "RowBaseline" + args);
          if (it != by_name.end()) {
            speedup = it->second / ns;
            break;
          }
        }
      }
      json.Add(name, ns, speedup);
    }
    json.Write();
  }

 private:
  std::vector<std::pair<std::string, double>> results_;
  std::unordered_map<std::string, size_t> index_;  ///< name -> results_ slot
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonTrackReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  reporter.WriteJson();
  benchmark::Shutdown();
  return 0;
}
