// Experiment E1 (paper: storage efficiency of WSDs).
//
// Paper claim: a world-set of more than 2^624449 worlds over the census
// data was represented "with a space overhead of only 2% over the
// original relation". The paper's noise degree sweep replaced randomly
// picked values with or-sets.
//
// This bench sweeps the degree of incompleteness and reports the number
// of worlds (log2), the flat size of the original relation, the size of
// the decomposition, and the overhead — plus, for contrast, the utterly
// infeasible size a materialized world-set would need.
#include <cmath>

#include "bench/bench_util.h"

using namespace maybms;
using namespace maybms::bench;

int main() {
  size_t records = Scaled(50000);
  constexpr uint64_t kSeed = 1;
  printf("E1 storage: WSD space overhead vs noise degree "
         "(census %zu records x 50 attributes)\n",
         records);
  // Interned size of the certain baseline relation; depends only on
  // (records, seed), so compute it once for every configuration below.
  uint64_t interned_flat = 0;
  {
    Catalog cat;
    Status st = cat.Create(GenerateCensus({records, kSeed}));
    MAYBMS_CHECK(st.ok());
    interned_flat = cat.Get("census").value()->InternedSize();
  }
  printf("paper reference point: >2^624449 worlds at ~2%% overhead; the\n"
         "paper's degrees correspond to roughly 0.005%%..0.1%% of cells.\n\n");

  // Binary or-sets (as in the paper's world-count arithmetic) and the
  // default 2..4-alternative mix.
  for (size_t max_alts : {size_t(2), size_t(4)}) {
    printf("or-set size: %zu alternatives%s\n", max_alts,
           max_alts == 2 ? " (binary, as in the paper's world count)" : "");
    // Two size models per configuration: the paper's logical flat
    // serialization, and the interned columnar footprint the engine
    // actually holds in memory (packed 16-byte cells + each distinct
    // string stored once in the value pool).
    Table table({"noise%", "or-set cells", "log2(worlds)", "flat bytes",
                 "wsd bytes", "overhead%", "interned flat", "interned wsd",
                 "int-ovh%", "naive worlds x flat"});
    for (double noise : {0.00005, 0.0001, 0.0005, 0.001, 0.005, 0.01}) {
      uint64_t flat = 0;
      NoiseStats stats;
      Timer t;
      WsdDb db = BuildNoisyCensus(records, noise, kSeed, &flat, &stats,
                                  /*alternatives_max=*/max_alts,
                                  /*wild_fraction=*/0.0);
      (void)t;
      uint64_t wsd = db.SerializedSize();
      uint64_t interned_wsd = db.InternedSize();
      double overhead =
          100.0 * (static_cast<double>(wsd) / static_cast<double>(flat) - 1.0);
      double interned_overhead =
          100.0 * (static_cast<double>(interned_wsd) /
                       static_cast<double>(interned_flat) -
                   1.0);
      // A materialized world-set would need |worlds| x flat bytes.
      double naive_log10 =
          stats.log2_worlds * std::log10(2.0) +
          std::log10(static_cast<double>(flat));
      table.AddRow(
          {StrFormat("%.3f", noise * 100),
           StrFormat("%zu", stats.cells_noised),
           StrFormat("%.0f", stats.log2_worlds),
           StrFormat("%llu", static_cast<unsigned long long>(flat)),
           StrFormat("%llu", static_cast<unsigned long long>(wsd)),
           StrFormat("%.2f", overhead),
           StrFormat("%llu", static_cast<unsigned long long>(interned_flat)),
           StrFormat("%llu", static_cast<unsigned long long>(interned_wsd)),
           StrFormat("%.2f", interned_overhead),
           StrFormat("~10^%.0f bytes", naive_log10)});
    }
    table.Print();
    printf("\n");
  }
  printf("shape check vs paper: overhead grows linearly with the noise\n"
         "degree and stays in the low percent range at the paper's\n"
         "degrees, while the represented world-set grows exponentially.\n"
         "The interned columns show the engine's actual in-memory\n"
         "footprint (fixed 16-byte packed cells; every distinct string\n"
         "stored once) — the overhead ratio stays in the same low-percent\n"
         "band, so compactness survives the columnar representation.\n");
  return 0;
}
