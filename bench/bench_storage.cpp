// Experiment E1 (paper: storage efficiency of WSDs).
//
// Paper claim: a world-set of more than 2^624449 worlds over the census
// data was represented "with a space overhead of only 2% over the
// original relation". The paper's noise degree sweep replaced randomly
// picked values with or-sets.
//
// This bench sweeps the degree of incompleteness and reports the number
// of worlds (log2), the flat size of the original relation, the size of
// the decomposition, and the overhead — plus, for contrast, the utterly
// infeasible size a materialized world-set would need.
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/lifted_executor.h"
#include "core/mapped_db.h"
#include "core/serialize.h"
#include "sql/session.h"

using namespace maybms;
using namespace maybms::bench;

namespace {

// A world-set database in the *decomposition-heavy* regime: most cells
// live in joint components (the state WSDs take after or-set insertion
// on correlated fields, REPAIR KEY, and lifted operations — the
// paper's 10^(10^6)-worlds shape), with only a small template on top.
// `tuples` tuples of 4 fields each are covered by one `rows_per_comp`-row
// joint component apiece.
WsdDb BuildJointDb(size_t tuples, size_t rows_per_comp) {
  WsdDb db;
  Schema schema({{"site", ValueType::kString},
                 {"sensor", ValueType::kInt},
                 {"reading", ValueType::kDouble},
                 {"status", ValueType::kString}});
  Status st = db.CreateRelation("readings", schema);
  MAYBMS_CHECK(st.ok()) << st.ToString();
  Rng rng(271828);
  const char* kStatus[] = {"ok", "drift", "noisy", "dead"};
  const double uniform = 1.0 / static_cast<double>(rows_per_comp);
  for (size_t i = 0; i < tuples; ++i) {
    auto h = InsertTuple(&db, "readings",
                         {CellSpec::Pending(), CellSpec::Pending(),
                          CellSpec::Pending(), CellSpec::Pending()});
    MAYBMS_CHECK(h.ok()) << h.status().ToString();
    std::vector<std::pair<std::vector<Value>, double>> rows;
    rows.reserve(rows_per_comp);
    for (size_t r = 0; r < rows_per_comp; ++r) {
      rows.push_back(
          {{Value::String(StrFormat("site-%llu",
                                    static_cast<unsigned long long>(
                                        rng.NextBelow(64)))),
            Value::Int(static_cast<int64_t>(rng.NextBelow(1000))),
            Value::Double(static_cast<double>(rng.NextBelow(1u << 20)) / 7.0),
            Value::String(kStatus[rng.NextBelow(4)])},
           uniform});
    }
    auto cid = AddJointComponent(&db,
                                 {{*h, "site"},
                                  {*h, "sensor"},
                                  {*h, "reading"},
                                  {*h, "status"}},
                                 rows);
    MAYBMS_CHECK(cid.ok()) << cid.status().ToString();
  }
  return db;
}

struct SnapshotCase {
  std::string label;
  WsdDb db;
  std::string check_relation;
  size_t check_tuples;
};

// E1b: snapshot persistence — text ("MAYBMS-WSD 1") vs the binary
// columnar format ("MAYBMS-WSD 2"). Two regimes, several scales each:
//
//   census/N  — template-heavy: N census records, or-set noise 0.001.
//               Load cost is dominated by materializing the certain
//               template cells, which both formats must do; binary wins
//               by skipping tokenization (~3-4x).
//   joint/TxR — decomposition-heavy: T joint components of R rows × 4
//               slots over a small template. Component columns load as
//               raw slot-major arrays, so binary approaches memcpy
//               speed while text still parses every cell (>10x).
//
// JSON entries feed the CI benchmark regression gate.
void SnapshotBench(BenchJson* json) {
  printf("E1b snapshot persistence: text vs binary save/load\n");
  Table table({"world-set", "format", "bytes", "save ms", "load ms",
               "load speedup"});
  const std::string dir =
      (std::filesystem::temp_directory_path() / "maybms_bench_snapshot")
          .string();
  std::filesystem::create_directories(dir);
  std::vector<SnapshotCase> cases;
  for (size_t base : {size_t(2000), size_t(10000)}) {
    size_t records = Scaled(base);
    if (records == 0) continue;
    cases.push_back({StrFormat("census/%zu", records),
                     BuildNoisyCensus(records, /*noise_fraction=*/0.001,
                                      /*seed=*/7),
                     "census", records});
  }
  for (size_t base : {size_t(500), size_t(2500)}) {
    size_t tuples = Scaled(base);
    if (tuples == 0) continue;
    // 256 rows x 4 slots per component: the largest configuration holds
    // ~2.5M packed component cells — the biggest world-set in this bench.
    cases.push_back({StrFormat("joint/%zux256", tuples),
                     BuildJointDb(tuples, 256), "readings", tuples});
  }
  for (SnapshotCase& c : cases) {
    double save_s[2], load_s[2];
    uint64_t bytes[2];
    for (int fmt = 0; fmt < 2; ++fmt) {
      SnapshotFormat format =
          fmt == 0 ? SnapshotFormat::kText : SnapshotFormat::kBinary;
      std::string path =
          dir + (fmt == 0 ? "/snap.v1.wsd" : "/snap.v2.wsd");
      // Best of 5 for both directions: first-touch page faults for the
      // freshly allocated database are paid once per process region,
      // scheduler noise hits single shots, and the regression gate
      // wants the steady-state cost of the format, not the allocator's.
      Timer t;
      save_s[fmt] = 1e300;
      for (int rep = 0; rep < 5; ++rep) {
        t.Reset();
        // sync=false: these keys gate the serialization cost; durability
        // (fsync + rename) is measured separately in E1d.
        Status st = SaveWsdDb(c.db, path, format,
                              SaveFileOptions{nullptr, /*sync=*/false});
        double s = t.Seconds();
        MAYBMS_CHECK(st.ok()) << st.ToString();
        if (s < save_s[fmt]) save_s[fmt] = s;
      }
      bytes[fmt] = std::filesystem::file_size(path);
      load_s[fmt] = 1e300;
      for (int rep = 0; rep < 5; ++rep) {
        t.Reset();
        auto loaded = LoadWsdDb(path);
        double s = t.Seconds();
        MAYBMS_CHECK(loaded.ok()) << loaded.status().ToString();
        MAYBMS_CHECK(loaded->GetRelation(c.check_relation)
                         .value()
                         ->NumTuples() == c.check_tuples);
        if (s < load_s[fmt]) load_s[fmt] = s;
      }
      std::filesystem::remove(path);
    }
    for (int fmt = 0; fmt < 2; ++fmt) {
      const char* name = fmt == 0 ? "text" : "binary";
      table.AddRow({c.label, name,
                    StrFormat("%llu", static_cast<unsigned long long>(
                                          bytes[fmt])),
                    StrFormat("%.1f", save_s[fmt] * 1e3),
                    StrFormat("%.1f", load_s[fmt] * 1e3),
                    fmt == 0 ? std::string("1.00")
                             : StrFormat("%.2f", load_s[0] / load_s[1])});
      json->Add(StrFormat("snapshot_save_%s_%s", name, c.label.c_str()),
                save_s[fmt] * 1e9,
                fmt == 0 ? 1.0 : save_s[0] / save_s[1]);
      json->Add(StrFormat("snapshot_load_%s_%s", name, c.label.c_str()),
                load_s[fmt] * 1e9,
                fmt == 0 ? 1.0 : load_s[0] / load_s[1]);
    }
  }
  std::filesystem::remove_all(dir);
  table.Print();
  printf("binary load reads sections as raw slot-major arrays: no\n"
         "per-cell parsing, one re-intern per distinct string (see\n"
         "docs/SNAPSHOT_FORMAT.md). The joint regime is where the\n"
         "decomposition itself carries the data and the columnar format\n"
         "pays off most.\n\n");
}

// E1c: out-of-core access — a mapped v3 snapshot vs an eager load. The
// workload is the cold-start cost of answering one selective query
// (PERNUM in the last shard) over the census WSD:
//
//   eager      — LoadWsdDb decodes the whole file, then executes.
//   mapped     — MappedWsdDb::Open verifies the few-KB head, prunes
//                shards against the predicate, and decodes one shard.
//
// The mapped database runs with the resident-cache cap at 1/4 of the
// snapshot size, so the configuration is genuinely out-of-core: the
// whole file never fits the budget. Correctness is differential — the
// scratch database must produce the same answer as the eager one.
void OutOfCoreBench(BenchJson* json) {
  printf("E1c out-of-core: mapped snapshot vs eager load (census)\n");
  size_t records = Scaled(20000);
  if (records < 256) records = 256;
  const size_t kShards = 16;
  WsdDb db = BuildNoisyCensus(records, /*noise_fraction=*/0.001, /*seed=*/7);
  db.mutable_options().rows_per_shard = (records + kShards - 1) / kShards;

  const std::string dir =
      (std::filesystem::temp_directory_path() / "maybms_bench_oocore")
          .string();
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/census.v3.wsd";
  Status st = SaveWsdDb(db, path, SnapshotFormat::kBinary);
  MAYBMS_CHECK(st.ok()) << st.ToString();
  const uint64_t snap_bytes = std::filesystem::file_size(path);
  MappedDbOptions opts;
  opts.max_resident_bytes = static_cast<size_t>(snap_bytes / 4);

  // One-shard-selective plan: the last PERNUM range.
  auto plan = Plan::Select(
      Plan::Scan("census"),
      Expr::Compare(CompareOp::kGe, Expr::Column("PERNUM"),
                    Expr::Const(Value::Int(static_cast<int64_t>(
                        records - db.options().rows_per_shard)))));

  Timer t;
  // Eager cold start: full decode + execute, best of 3.
  double eager_s = 1e300;
  std::string eager_answer;
  for (int rep = 0; rep < 3; ++rep) {
    t.Reset();
    auto loaded = LoadWsdDb(path);
    MAYBMS_CHECK(loaded.ok()) << loaded.status().ToString();
    auto ans = ExecuteLifted(plan, *loaded);
    MAYBMS_CHECK(ans.ok()) << ans.status().ToString();
    double s = t.Seconds();
    if (s < eager_s) eager_s = s;
    eager_answer = ans->ToString();
  }

  // Mapped cold start: open + prune + decode one shard + execute,
  // best of 3 with a fresh map each time.
  double cold_s = 1e300;
  size_t shards_kept = 0, shards_total = 0, peak_resident = 0;
  std::string mapped_answer;
  for (int rep = 0; rep < 3; ++rep) {
    t.Reset();
    auto mapped = MappedWsdDb::Open(path, opts);
    MAYBMS_CHECK(mapped.ok()) << mapped.status().ToString();
    auto scratch = mapped->MaterializeForPlan(*plan);
    MAYBMS_CHECK(scratch.ok()) << scratch.status().ToString();
    auto ans = ExecuteLifted(plan, *scratch);
    MAYBMS_CHECK(ans.ok()) << ans.status().ToString();
    double s = t.Seconds();
    if (s < cold_s) cold_s = s;
    shards_kept = mapped->last_stats().shards_kept;
    shards_total = mapped->last_stats().shards_total;
    peak_resident = mapped->peak_resident_bytes();
    mapped_answer = ans->ToString();
  }
  MAYBMS_CHECK(mapped_answer == eager_answer)
      << "mapped answer diverged from the eager answer";

  // Warm repeats on one long-lived map (decoded shard cached).
  auto mapped = MappedWsdDb::Open(path, opts);
  MAYBMS_CHECK(mapped.ok()) << mapped.status().ToString();
  double warm_s = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    t.Reset();
    auto scratch = mapped->MaterializeForPlan(*plan);
    MAYBMS_CHECK(scratch.ok());
    auto ans = ExecuteLifted(plan, *scratch);
    MAYBMS_CHECK(ans.ok());
    double s = t.Seconds();
    if (s < warm_s) warm_s = s;
  }

  Table table({"mode", "ms", "vs eager", "shards", "resident peak"});
  table.AddRow({"eager load+query", StrFormat("%.2f", eager_s * 1e3), "1.00",
                StrFormat("%zu/%zu", shards_total, shards_total),
                FormatBytes(snap_bytes)});
  table.AddRow({"mapped cold", StrFormat("%.2f", cold_s * 1e3),
                StrFormat("%.2f", eager_s / cold_s),
                StrFormat("%zu/%zu", shards_kept, shards_total),
                FormatBytes(peak_resident)});
  table.AddRow({"mapped warm", StrFormat("%.2f", warm_s * 1e3),
                StrFormat("%.2f", eager_s / warm_s),
                StrFormat("%zu/%zu", shards_kept, shards_total),
                FormatBytes(mapped->peak_resident_bytes())});
  table.Print();
  printf("snapshot %s, resident cap %s (db is %.1fx the cap)\n\n",
         FormatBytes(snap_bytes).c_str(),
         FormatBytes(opts.max_resident_bytes).c_str(),
         static_cast<double>(snap_bytes) /
             static_cast<double>(opts.max_resident_bytes));

  json->Add("oocore_eager_cold_query", eager_s * 1e9, 1.0);
  json->Add("oocore_mapped_cold_query", cold_s * 1e9, eager_s / cold_s);
  json->Add("oocore_mapped_warm_query", warm_s * 1e9, eager_s / warm_s);
  std::filesystem::remove_all(dir);
}

// E1d: durability — what crash safety costs. Three numbers:
//
//   wal_append_statement       — per-statement latency of a logged
//                                INSERT (WAL frame + fsync before apply).
//   durability_recover_replay  — LOAD DATABASE replaying a K-statement
//                                log over the last snapshot.
//   durability_recover_clean   — LOAD DATABASE of the checkpointed
//                                snapshot (empty log), same final state.
//
// The replay/clean pair brackets the recovery-time trade the checkpoint
// threshold tunes: a longer log amortizes snapshot writes but pays at
// recovery.
void DurabilityBench(BenchJson* json) {
  printf("E1d durability: WAL append latency and recovery replay\n");
  const std::string dir =
      (std::filesystem::temp_directory_path() / "maybms_bench_wal").string();
  std::filesystem::create_directories(dir);
  const std::string db_path = dir + "/bench.wsd";
  size_t k = Scaled(200);
  if (k < 16) k = 16;

  sql::Session s;
  // No auto-checkpoint: the log must hold all K statements below.
  s.mutable_durability_options().auto_checkpoint_records = 0;
  MAYBMS_CHECK(s.Execute("CREATE TABLE t (x INT, w DOUBLE)").ok());
  auto saved = s.Execute("SAVE DATABASE '" + db_path + "'");
  MAYBMS_CHECK(saved.ok()) << saved.status().ToString();

  Timer t;
  for (size_t i = 0; i < k; ++i) {
    auto r = s.Execute(
        StrFormat("INSERT INTO t VALUES (%zu, 1.5)", i));
    MAYBMS_CHECK(r.ok()) << r.status().ToString();
  }
  const double append_s = t.Seconds();

  // Recovery with a K-statement log to replay, best of 3 (LOAD leaves
  // the snapshot + log untouched, so repeats see the same work).
  double replay_s = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    sql::Session r;
    t.Reset();
    auto loaded = r.Execute("LOAD DATABASE '" + db_path + "'");
    double sec = t.Seconds();
    MAYBMS_CHECK(loaded.ok()) << loaded.status().ToString();
    MAYBMS_CHECK(r.wal_record_count() == k);
    if (sec < replay_s) replay_s = sec;
  }

  // Checkpoint folds the log; recovery is now a pure snapshot load.
  MAYBMS_CHECK(s.Execute("CHECKPOINT").ok());
  double clean_s = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    sql::Session r;
    t.Reset();
    auto loaded = r.Execute("LOAD DATABASE '" + db_path + "'");
    double sec = t.Seconds();
    MAYBMS_CHECK(loaded.ok()) << loaded.status().ToString();
    MAYBMS_CHECK(r.wal_record_count() == 0);
    if (sec < clean_s) clean_s = sec;
  }

  Table table({"metric", "value"});
  table.AddRow({"logged INSERT (frame+fsync+apply)",
                StrFormat("%.1f us/stmt", append_s / k * 1e6)});
  table.AddRow({StrFormat("recover: replay %zu-stmt log", k),
                StrFormat("%.2f ms", replay_s * 1e3)});
  table.AddRow({"recover: checkpointed snapshot",
                StrFormat("%.2f ms", clean_s * 1e3)});
  table.Print();
  printf("every logged statement is fsynced before it applies; CHECKPOINT\n"
         "trades one snapshot rewrite for replay-free recovery.\n\n");

  json->Add("wal_append_statement", append_s / k * 1e9, 1.0);
  json->Add("durability_recover_replay", replay_s * 1e9, 1.0);
  json->Add("durability_recover_clean", clean_s * 1e9,
            replay_s / clean_s);
  std::filesystem::remove_all(dir);
}

}  // namespace

int main() {
  BenchJson json("storage");
  size_t records = Scaled(50000);
  constexpr uint64_t kSeed = 1;
  printf("E1 storage: WSD space overhead vs noise degree "
         "(census %zu records x 50 attributes)\n",
         records);
  // Interned size of the certain baseline relation; depends only on
  // (records, seed), so compute it once for every configuration below.
  uint64_t interned_flat = 0;
  {
    Catalog cat;
    Status st = cat.Create(GenerateCensus({records, kSeed}));
    MAYBMS_CHECK(st.ok());
    interned_flat = cat.Get("census").value()->InternedSize();
  }
  printf("paper reference point: >2^624449 worlds at ~2%% overhead; the\n"
         "paper's degrees correspond to roughly 0.005%%..0.1%% of cells.\n\n");

  // Binary or-sets (as in the paper's world-count arithmetic) and the
  // default 2..4-alternative mix.
  for (size_t max_alts : {size_t(2), size_t(4)}) {
    printf("or-set size: %zu alternatives%s\n", max_alts,
           max_alts == 2 ? " (binary, as in the paper's world count)" : "");
    // Two size models per configuration: the paper's logical flat
    // serialization, and the interned columnar footprint the engine
    // actually holds in memory (packed 16-byte cells + each distinct
    // string stored once in the value pool).
    Table table({"noise%", "or-set cells", "log2(worlds)", "flat bytes",
                 "wsd bytes", "overhead%", "interned flat", "interned wsd",
                 "int-ovh%", "naive worlds x flat"});
    for (double noise : {0.00005, 0.0001, 0.0005, 0.001, 0.005, 0.01}) {
      uint64_t flat = 0;
      NoiseStats stats;
      Timer t;
      WsdDb db = BuildNoisyCensus(records, noise, kSeed, &flat, &stats,
                                  /*alternatives_max=*/max_alts,
                                  /*wild_fraction=*/0.0);
      (void)t;
      uint64_t wsd = db.SerializedSize();
      uint64_t interned_wsd = db.InternedSize();
      double overhead =
          100.0 * (static_cast<double>(wsd) / static_cast<double>(flat) - 1.0);
      double interned_overhead =
          100.0 * (static_cast<double>(interned_wsd) /
                       static_cast<double>(interned_flat) -
                   1.0);
      // A materialized world-set would need |worlds| x flat bytes.
      double naive_log10 =
          stats.log2_worlds * std::log10(2.0) +
          std::log10(static_cast<double>(flat));
      table.AddRow(
          {StrFormat("%.3f", noise * 100),
           StrFormat("%zu", stats.cells_noised),
           StrFormat("%.0f", stats.log2_worlds),
           StrFormat("%llu", static_cast<unsigned long long>(flat)),
           StrFormat("%llu", static_cast<unsigned long long>(wsd)),
           StrFormat("%.2f", overhead),
           StrFormat("%llu", static_cast<unsigned long long>(interned_flat)),
           StrFormat("%llu", static_cast<unsigned long long>(interned_wsd)),
           StrFormat("%.2f", interned_overhead),
           StrFormat("~10^%.0f bytes", naive_log10)});
    }
    table.Print();
    printf("\n");
  }
  printf("shape check vs paper: overhead grows linearly with the noise\n"
         "degree and stays in the low percent range at the paper's\n"
         "degrees, while the represented world-set grows exponentially.\n"
         "The interned columns show the engine's actual in-memory\n"
         "footprint (fixed 16-byte packed cells; every distinct string\n"
         "stored once) — the overhead ratio stays in the same low-percent\n"
         "band, so compactness survives the columnar representation.\n\n");
  SnapshotBench(&json);
  OutOfCoreBench(&json);
  DurabilityBench(&json);
  return 0;
}
