// Experiment E6 (paper: succinctness of the decomposition).
//
// "WSDs can be exponentially more succinct than the sets of worlds they
//  represent." This bench makes the exponential separation measurable:
// the same selection query is evaluated (a) lifted on the WSD and (b) by
// materializing every world and running the query in each, as the number
// of or-set cells grows. Enumeration size and time double per cell; the
// lifted evaluation stays flat.
#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/lifted_executor.h"
#include "ra/executor.h"
#include "worlds/enumerate.h"

using namespace maybms;
using namespace maybms::bench;

int main() {
  printf("E6 succinctness: lifted evaluation vs explicit world "
         "enumeration\n\n");
  Table table({"or-set cells", "worlds", "wsd bytes", "worlds bytes",
               "wsd query(s)", "enum query(s)", "blowup"});

  auto pred = Expr::Compare(CompareOp::kGe, Expr::Column("AGE"),
                            Expr::Const(Value::Int(65)));
  auto plan = Plan::Select(Plan::Scan("census"), pred);

  for (size_t cells : {size_t(2), size_t(6), size_t(10), size_t(14),
                       size_t(16)}) {
    // A small census so that enumeration stays possible at all.
    size_t records = 100;
    Catalog cat;
    Status st = cat.Create(GenerateCensus({records, 8}));
    MAYBMS_CHECK(st.ok());
    WsdDb db = FromCatalog(cat);
    // Exactly `cells` binary or-sets on AGE cells.
    Rng rng(9);
    size_t placed = 0;
    size_t age_col = 1;
    while (placed < cells) {
      size_t row = rng.NextBelow(records);
      const WsdRelation* rel = db.GetRelation("census").value();
      if (!rel->tuple(row).cells[age_col].is_certain()) continue;
      int64_t original =
          rel->tuple(row).cells[age_col].value().as_int();
      auto cid = MakeCellUncertain(
          &db, "census", row, age_col,
          {{Value::Int(original), 0.5},
           {Value::Int((original + 30) % 91), 0.5}});
      MAYBMS_CHECK(cid.ok());
      ++placed;
    }

    Timer t;
    auto lifted = ExecuteLifted(plan, db);
    double t_wsd = t.Seconds();
    MAYBMS_CHECK(lifted.ok());

    t.Reset();
    uint64_t world_bytes = 0;
    Status st_enum = ForEachWorld(
        db, 1u << 20, [&](const Catalog& world, double p) -> Status {
          (void)p;
          world_bytes += world.SerializedSize();
          MAYBMS_ASSIGN_OR_RETURN(Relation answer, Execute(plan, world));
          (void)answer;
          return Status::OK();
        });
    MAYBMS_CHECK(st_enum.ok()) << st_enum.ToString();
    double t_enum = t.Seconds();

    table.AddRow(
        {StrFormat("%zu", cells),
         StrFormat("%llu",
                   static_cast<unsigned long long>(*db.WorldCountIfSmall())),
         StrFormat("%llu",
                   static_cast<unsigned long long>(db.SerializedSize())),
         StrFormat("%llu", static_cast<unsigned long long>(world_bytes)),
         StrFormat("%.4f", t_wsd), StrFormat("%.4f", t_enum),
         StrFormat("%.0fx", t_enum / std::max(t_wsd, 1e-9))});
  }
  table.Print();
  printf("\nshape check vs paper: per added or-set cell the enumeration\n"
         "side doubles in size and time while the WSD side is unchanged —\n"
         "the exponential succinctness gap of the decomposition.\n");
  return 0;
}
