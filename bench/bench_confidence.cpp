// Experiment E5 (paper: the prob() construct).
//
// "MayBMS also allows SQL-like queries with probability constructs in the
//  select and where clauses. ... the answer to our query would be
//  computed by summing up the probabilities of this event over all such
//  worlds."
//
// Measures exact confidence computation (conf()/prob()) on query answers
// as a function of (a) the number of or-set cells in the answer relation
// and (b) the or-set fan-out, and verifies against brute-force world
// enumeration where that is feasible.
#include <map>
#include <optional>

#include "bench/bench_util.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/approx_conf.h"
#include "core/confidence.h"
#include "core/lifted_executor.h"
#include "gen/workload.h"
#include "worlds/enumerate.h"

using namespace maybms;
using namespace maybms::bench;

namespace {

// Multi-cluster workload with shared merged components: `groups`
// independence clusters, each holding one component merged from
// `slots_per_group` binary or-sets plus `tuples_per_group` tuples that
// reference its slots round-robin. Naive enumeration pays
// 2^slots_per_group states per cluster; the merged component factorizes
// exactly back into its or-sets, so the factorized path pays
// slots_per_group clusters of 2 states each.
WsdDb BuildSharedSlotGroups(size_t groups, size_t slots_per_group,
                            size_t tuples_per_group) {
  WsdDb db;
  Status st = db.CreateRelation(
      "r", Schema({{"id", ValueType::kInt}, {"v", ValueType::kInt}}));
  MAYBMS_CHECK(st.ok());
  WsdRelation* rel = db.GetMutableRelation("r").value();
  int64_t id = 0;
  for (size_t g = 0; g < groups; ++g) {
    int64_t base = static_cast<int64_t>(g) * 1000;
    std::vector<ComponentId> comps;
    for (size_t s = 0; s < slots_per_group; ++s) {
      auto h = InsertTuple(
          &db, "r",
          {CellSpec::Certain(Value::Int(id++)),
           CellSpec::OrSet(
               {{Value::Int(base + 2 * static_cast<int64_t>(s)), 0.5},
                {Value::Int(base + 2 * static_cast<int64_t>(s) + 1), 0.5}})});
      MAYBMS_CHECK(h.ok());
      comps.push_back(rel->tuple(h->index).cells[1].ref().cid);
    }
    auto merged = db.MergeComponents(comps, 1u << 20);
    MAYBMS_CHECK(merged.ok()) << merged.status().ToString();
    for (size_t m = slots_per_group; m < tuples_per_group; ++m) {
      WsdTuple t;
      t.cells.push_back(Cell::Certain(Value::Int(id++)));
      t.cells.push_back(
          Cell::Ref({*merged, static_cast<uint32_t>(m % slots_per_group)}));
      rel->Add(std::move(t));
    }
  }
  return db;
}

// Chains of pairwise-correlated tuples: `chains` unfactorizable clusters
// of 2^len states each — isolates thread scaling from factorization.
WsdDb BuildChains(size_t chains, size_t len) {
  WsdDb db;
  Status st = db.CreateRelation(
      "r", Schema({{"x", ValueType::kInt}, {"y", ValueType::kInt}}));
  MAYBMS_CHECK(st.ok());
  for (size_t c = 0; c < chains; ++c) {
    int64_t base = static_cast<int64_t>(c) * 1000;
    auto prev = InsertTuple(&db, "r", {CellSpec::Certain(Value::Int(base)),
                                       CellSpec::Pending()});
    MAYBMS_CHECK(prev.ok());
    TupleHandle chain = *prev;
    for (size_t i = 0; i < len; ++i) {
      bool last = (i + 1 == len);
      auto next = InsertTuple(&db, "r",
                              {CellSpec::Pending(),
                               last ? CellSpec::Certain(Value::Int(base + 99))
                                    : CellSpec::Pending()});
      MAYBMS_CHECK(next.ok());
      auto cid = AddJointComponent(
          &db, {{chain, "y"}, {*next, "x"}},
          {{{Value::Int(base + static_cast<int64_t>(i)),
             Value::Int(base + static_cast<int64_t>(i) + 1)},
            0.5},
           {{Value::Int(base + static_cast<int64_t>(i) + 1),
             Value::Int(base + static_cast<int64_t>(i))},
            0.5}});
      MAYBMS_CHECK(cid.ok());
      chain = *next;
    }
  }
  return db;
}

// Best of 3: the thread-scaling rows feed the regression gate, and a
// single shot is at the mercy of one bad scheduling decision.
double TimeConf(const WsdDb& db, const ConfidenceOptions& opt) {
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    Timer t;
    auto conf = ConfTable(db, "r", opt);
    MAYBMS_CHECK(conf.ok()) << conf.status().ToString();
    double s = t.Seconds();
    if (s < best) best = s;
  }
  return best;
}

}  // namespace

int main() {
  printf("E5 confidence: exact prob() computation on query answers\n\n");
  BenchJson json("confidence");

  // (a) census-scale conf() on Q3's answer at varying noise.
  {
    size_t records = Scaled(10000);
    printf("(a) conf() over the Q3 answer (census %zu records)\n", records);
    Table table({"noise%", "log2 worlds", "answer templates",
                 "distinct vectors", "conf time(s)"});
    for (double noise : {0.0001, 0.0005, 0.001, 0.005}) {
      WsdDb db = BuildNoisyCensus(records, noise, /*seed=*/6);
      auto answer = ExecuteLifted(CensusQueries()[2].plan, db);
      MAYBMS_CHECK(answer.ok()) << answer.status().ToString();
      Timer t;
      auto conf = ConfTable(*answer, "result");
      double secs = t.Seconds();
      MAYBMS_CHECK(conf.ok()) << conf.status().ToString();
      table.AddRow({StrFormat("%.2f", noise * 100),
                    StrFormat("%.0f", db.Log2WorldCount()),
                    StrFormat("%zu", answer->GetRelation("result").value()
                                          ->NumTuples()),
                    StrFormat("%zu", conf->NumRows()),
                    StrFormat("%.4f", secs)});
    }
    table.Print();
    printf("\n");
  }

  // (b) exactness + cost vs enumeration on small world-sets.
  {
    printf("(b) conf() vs brute-force enumeration (correctness + cost)\n");
    Table table({"or-set cells", "worlds", "conf time(s)", "enum time(s)",
                 "max |Δp|"});
    for (size_t cells : {size_t(4), size_t(8), size_t(12), size_t(16)}) {
      // Small relation with `cells` binary or-sets.
      WsdDb db;
      Status st = db.CreateRelation(
          "r", Schema({{"k", ValueType::kInt}, {"v", ValueType::kInt}}));
      MAYBMS_CHECK(st.ok());
      Rng rng(cells);
      for (size_t i = 0; i < cells; ++i) {
        double p = 0.2 + 0.6 * rng.NextDouble();
        auto h = InsertTuple(
            &db, "r",
            {CellSpec::Certain(Value::Int(static_cast<int64_t>(i % 5))),
             CellSpec::OrSet({{Value::Int(static_cast<int64_t>(i % 3)), p},
                              {Value::Int(static_cast<int64_t>(i % 3 + 1)),
                               1.0 - p}})});
        MAYBMS_CHECK(h.ok());
      }
      Timer t;
      auto conf = ConfTable(db, "r");
      double t_conf = t.Seconds();
      MAYBMS_CHECK(conf.ok());

      t.Reset();
      auto worlds = EnumerateWorlds(db, 1u << 20);
      MAYBMS_CHECK(worlds.ok());
      std::map<std::string, double> oracle;
      for (const auto& w : *worlds) {
        const Relation& rel = *w.catalog.Get("r").value();
        std::map<std::string, bool> present;
        for (const auto& row : rel.rows()) {
          std::string key;
          for (const auto& v : row) key += v.ToString() + "|";
          present[key] = true;
        }
        for (const auto& [key, unused] : present) oracle[key] += w.prob;
      }
      double t_enum = t.Seconds();

      double max_delta = 0;
      for (const auto& row : conf->rows()) {
        std::string key;
        for (size_t c = 0; c + 1 < row.size(); ++c) {
          key += row[c].ToString() + "|";
        }
        max_delta = std::max(
            max_delta, std::abs(row.back().as_double() - oracle[key]));
      }
      table.AddRow({StrFormat("%zu", cells),
                    StrFormat("%llu", static_cast<unsigned long long>(
                                          *db.WorldCountIfSmall())),
                    StrFormat("%.5f", t_conf), StrFormat("%.5f", t_enum),
                    StrFormat("%.2e", max_delta)});
    }
    table.Print();
    printf("\n");
  }

  // (c) cluster decomposition: factorized + parallel vs the naive
  // single-threaded whole-component enumeration (the pre-cluster-subsystem
  // algorithm) on a multi-cluster workload.
  {
    size_t groups = Scaled(24);
    printf("(c) multi-cluster workload: %zu clusters, merged 12-slot "
           "components, 96 tuples each\n", groups);
    WsdDb db = BuildSharedSlotGroups(groups, 12, 96);
    Table table({"mode", "threads", "time(s)", "speedup vs naive/1t"});
    double t_naive1 = 0;
    struct Config {
      const char* mode;
      bool factorize;
      size_t threads;
    };
    for (const Config& cfg : std::initializer_list<Config>{
             {"naive", false, 1},
             {"naive", false, 4},
             {"factorized", true, 1},
             {"factorized", true, 4}}) {
      ConfidenceOptions opt;
      opt.factorize_clusters = cfg.factorize;
      opt.num_threads = cfg.threads;
      double secs = TimeConf(db, opt);
      if (cfg.factorize == false && cfg.threads == 1) t_naive1 = secs;
      double speedup = t_naive1 / secs;
      table.AddRow({cfg.mode, StrFormat("%zu", cfg.threads),
                    StrFormat("%.4f", secs), StrFormat("%.2fx", speedup)});
      json.Add(StrFormat("conf/multicluster/%s/t%zu", cfg.mode, cfg.threads),
               secs * 1e9, speedup);
    }
    table.Print();
    printf("(hardware threads available: %zu)\n\n", DefaultNumThreads());
  }

  // (d) thread scaling on unfactorizable chain clusters (factorization
  // cannot shrink these; any win is pure parallelism).
  {
    size_t chains = Scaled(32);
    // Below ~2 clusters per worker there is nothing to schedule and the
    // sweep only measures pool spawn overhead; keep the smoke scales
    // meaningful.
    if (chains < 8) chains = 8;
    printf("(d) chain workload: %zu unfactorizable clusters of 2^10 "
           "states\n", chains);
    WsdDb db = BuildChains(chains, 10);
    Table table({"threads", "time(s)", "speedup"});
    double t1 = 0;
    for (size_t threads : {size_t(1), size_t(2), size_t(4)}) {
      ConfidenceOptions opt;
      opt.num_threads = threads;
      double secs = TimeConf(db, opt);
      if (threads == 1) t1 = secs;
      table.AddRow({StrFormat("%zu", threads), StrFormat("%.4f", secs),
                    StrFormat("%.2fx", t1 / secs)});
      json.Add(StrFormat("conf/chains/t%zu", threads), secs * 1e9, t1 / secs);
    }
    table.Print();
    printf("\n");
  }

  // (e) enumeration-budget rescue: a factorizable cluster whose naive
  // state space (2^16) blows a 4096-state budget completes after local
  // factorization (16 clusters × 2 states).
  {
    printf("(e) budget rescue on a merged 16-slot component "
           "(2^16 naive states, budget 4096)\n");
    WsdDb db = BuildSharedSlotGroups(1, 16, 32);
    ConfidenceOptions naive;
    naive.factorize_clusters = false;
    naive.max_cluster_states = 4096;
    auto fail = ConfTable(db, "r", naive);
    MAYBMS_CHECK(!fail.ok());
    printf("naive:      %s\n", fail.status().ToString().c_str());
    ConfidenceOptions factorized;
    factorized.max_cluster_states = 4096;
    Timer t;
    auto conf = ConfTable(db, "r", factorized);
    double secs = t.Seconds();
    MAYBMS_CHECK(conf.ok()) << conf.status().ToString();
    printf("factorized: %zu vectors in %.4fs\n", conf->NumRows(), secs);
    json.Add("conf/budget-rescue/factorized", secs * 1e9, 0.0);
  }

  // (f) anytime approximation on the same budget-rescue workload:
  // APPROX CONF(ε, δ) sidesteps both the blown naive budget and the
  // factorization pass — deterministic per-cluster mass brackets plus
  // Monte-Carlo sampling with Hoeffding bounds stop once the half-width
  // drops under ε, so cost tracks 1/ε², not the cluster state space.
  {
    printf("(f) approx confidence on the budget-rescue workload: "
           "APPROX CONF(eps, 0.05) vs exact factorized\n");
    WsdDb db = BuildSharedSlotGroups(1, 16, 32);
    ConfidenceOptions factorized;
    factorized.max_cluster_states = 4096;
    double t_exact = TimeConf(db, factorized);
    auto exact = ConfTable(db, "r", factorized);
    MAYBMS_CHECK(exact.ok()) << exact.status().ToString();
    std::map<std::string, double> exact_map;
    for (const auto& row : exact->rows()) {
      std::string key;
      for (size_t c = 0; c + 1 < row.size(); ++c) {
        key += row[c].ToString() + "|";
      }
      exact_map[key] = row.back().as_double();
    }
    Table table({"epsilon", "time(s)", "speedup vs exact", "samples",
                 "max |est-exact|", "exact in [lo,hi]"});
    for (double eps : {0.05, 0.01, 0.001}) {
      ApproxOptions opt;
      opt.epsilon = eps;
      double best = 1e300;
      ApproxConfStats stats;
      std::optional<Relation> out;
      for (int rep = 0; rep < 3; ++rep) {
        Timer t;
        auto r = ApproxConfTable(db, "r", opt, &stats);
        MAYBMS_CHECK(r.ok()) << r.status().ToString();
        double s = t.Seconds();
        if (s < best) {
          best = s;
          out = std::move(*r);
        }
      }
      double max_delta = 0;
      bool covered = true;
      for (const auto& row : out->rows()) {
        std::string key;
        for (size_t c = 0; c + 3 < row.size(); ++c) {
          key += row[c].ToString() + "|";
        }
        double p = exact_map.count(key) ? exact_map[key] : 0.0;
        double est = row[row.size() - 3].as_double();
        double lo = row[row.size() - 2].as_double();
        double hi = row[row.size() - 1].as_double();
        max_delta = std::max(max_delta, std::abs(est - p));
        if (p < lo - 1e-9 || p > hi + 1e-9) covered = false;
      }
      MAYBMS_CHECK(covered) << "exact escaped the reported interval";
      table.AddRow({StrFormat("%g", eps), StrFormat("%.4f", best),
                    StrFormat("%.1fx", t_exact / best),
                    StrFormat("%zu", stats.total_samples),
                    StrFormat("%.2e", max_delta), "yes"});
      json.Add(StrFormat("conf/budget-rescue/approx-eps%g", eps), best * 1e9,
               t_exact / best);
    }
    table.Print();

    // Sampler-throughput micro: the streaming per-cluster sampler alone
    // (fixed sample budget; stopping rules and enumeration disabled).
    ApproxOptions raw;
    raw.sampling_only = true;
    raw.fixed_samples = size_t(1) << 19;
    raw.exact_state_limit = 1;
    double best = 1e300;
    ApproxConfStats stats;
    for (int rep = 0; rep < 3; ++rep) {
      Timer t;
      auto r = ApproxConfTable(db, "r", raw, &stats);
      MAYBMS_CHECK(r.ok()) << r.status().ToString();
      best = std::min(best, t.Seconds());
    }
    double ns_per_sample =
        best * 1e9 / static_cast<double>(stats.total_samples);
    printf("sampler throughput: %zu samples in %.4fs (%.0f ns/sample, "
           "%.1fM samples/s)\n\n",
           stats.total_samples, best, ns_per_sample,
           static_cast<double>(stats.total_samples) / best / 1e6);
    json.Add("conf/sampler/ns-per-sample", ns_per_sample, 0.0);
  }

  printf("\nshape check vs paper: prob() stays exact (Δp ~ 1e-16) while\n"
         "enumeration time doubles per or-set cell; on the census answers\n"
         "conf() scales with the answer size, not with the world count;\n"
         "cluster factorization turns product state spaces into sums and\n"
         "independent clusters parallelize across the thread pool.\n");
  return 0;
}
