// Experiment E5 (paper: the prob() construct).
//
// "MayBMS also allows SQL-like queries with probability constructs in the
//  select and where clauses. ... the answer to our query would be
//  computed by summing up the probabilities of this event over all such
//  worlds."
//
// Measures exact confidence computation (conf()/prob()) on query answers
// as a function of (a) the number of or-set cells in the answer relation
// and (b) the or-set fan-out, and verifies against brute-force world
// enumeration where that is feasible.
#include <map>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/confidence.h"
#include "core/lifted_executor.h"
#include "gen/workload.h"
#include "worlds/enumerate.h"

using namespace maybms;
using namespace maybms::bench;

int main() {
  printf("E5 confidence: exact prob() computation on query answers\n\n");

  // (a) census-scale conf() on Q3's answer at varying noise.
  {
    size_t records = Scaled(10000);
    printf("(a) conf() over the Q3 answer (census %zu records)\n", records);
    Table table({"noise%", "log2 worlds", "answer templates",
                 "distinct vectors", "conf time(s)"});
    for (double noise : {0.0001, 0.0005, 0.001, 0.005}) {
      WsdDb db = BuildNoisyCensus(records, noise, /*seed=*/6);
      auto answer = ExecuteLifted(CensusQueries()[2].plan, db);
      MAYBMS_CHECK(answer.ok()) << answer.status().ToString();
      Timer t;
      auto conf = ConfTable(*answer, "result");
      double secs = t.Seconds();
      MAYBMS_CHECK(conf.ok()) << conf.status().ToString();
      table.AddRow({StrFormat("%.2f", noise * 100),
                    StrFormat("%.0f", db.Log2WorldCount()),
                    StrFormat("%zu", answer->GetRelation("result").value()
                                          ->NumTuples()),
                    StrFormat("%zu", conf->NumRows()),
                    StrFormat("%.4f", secs)});
    }
    table.Print();
    printf("\n");
  }

  // (b) exactness + cost vs enumeration on small world-sets.
  {
    printf("(b) conf() vs brute-force enumeration (correctness + cost)\n");
    Table table({"or-set cells", "worlds", "conf time(s)", "enum time(s)",
                 "max |Δp|"});
    for (size_t cells : {size_t(4), size_t(8), size_t(12), size_t(16)}) {
      // Small relation with `cells` binary or-sets.
      WsdDb db;
      Status st = db.CreateRelation(
          "r", Schema({{"k", ValueType::kInt}, {"v", ValueType::kInt}}));
      MAYBMS_CHECK(st.ok());
      Rng rng(cells);
      for (size_t i = 0; i < cells; ++i) {
        double p = 0.2 + 0.6 * rng.NextDouble();
        auto h = InsertTuple(
            &db, "r",
            {CellSpec::Certain(Value::Int(static_cast<int64_t>(i % 5))),
             CellSpec::OrSet({{Value::Int(static_cast<int64_t>(i % 3)), p},
                              {Value::Int(static_cast<int64_t>(i % 3 + 1)),
                               1.0 - p}})});
        MAYBMS_CHECK(h.ok());
      }
      Timer t;
      auto conf = ConfTable(db, "r");
      double t_conf = t.Seconds();
      MAYBMS_CHECK(conf.ok());

      t.Reset();
      auto worlds = EnumerateWorlds(db, 1u << 20);
      MAYBMS_CHECK(worlds.ok());
      std::map<std::string, double> oracle;
      for (const auto& w : *worlds) {
        const Relation& rel = *w.catalog.Get("r").value();
        std::map<std::string, bool> present;
        for (const auto& row : rel.rows()) {
          std::string key;
          for (const auto& v : row) key += v.ToString() + "|";
          present[key] = true;
        }
        for (const auto& [key, unused] : present) oracle[key] += w.prob;
      }
      double t_enum = t.Seconds();

      double max_delta = 0;
      for (const auto& row : conf->rows()) {
        std::string key;
        for (size_t c = 0; c + 1 < row.size(); ++c) {
          key += row[c].ToString() + "|";
        }
        max_delta = std::max(
            max_delta, std::abs(row.back().as_double() - oracle[key]));
      }
      table.AddRow({StrFormat("%zu", cells),
                    StrFormat("%llu", static_cast<unsigned long long>(
                                          *db.WorldCountIfSmall())),
                    StrFormat("%.5f", t_conf), StrFormat("%.5f", t_enum),
                    StrFormat("%.2e", max_delta)});
    }
    table.Print();
  }
  printf("\nshape check vs paper: prob() stays exact (Δp ~ 1e-16) while\n"
         "enumeration time doubles per or-set cell; on the census answers\n"
         "conf() scales with the answer size, not with the world count.\n");
  return 0;
}
