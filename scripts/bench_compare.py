#!/usr/bin/env python3
"""Benchmark regression gate: diff fresh BENCH_*.json against baselines.

Four PRs of performance work (value interning, cluster factorization,
compiled expressions, the plan optimizer, binary snapshots) emit
machine-readable BENCH_<name>.json files. This script compares a fresh
set against the committed baselines in bench/baselines/ and fails when
any keyed entry slowed down by more than --max-slowdown (default 1.25,
i.e. >25%), so a PR cannot silently give a speedup back.

Semantics per baseline file BENCH_x.json:
  - missing fresh counterpart          -> FAIL (the bench stopped running)
  - entry missing from fresh output    -> FAIL (a keyed entry was dropped)
  - fresh ns_per_op >  max_slowdown*b  -> FAIL (regression)
  - fresh ns_per_op <= max_slowdown*b  -> ok (improvements are reported,
                                         not enforced; refresh baselines
                                         to lock them in)
Entries only present in the fresh output are new and pass (commit an
updated baseline to start gating them).

Baselines are wall-clock numbers from a specific machine class; refresh
them (copy the fresh files over bench/baselines/ and commit) whenever
the CI runner hardware or the bench scales change.

--fresh-dir may be given multiple times; entries are merged by taking
the per-entry minimum across runs. Two full bench passes separated by
minutes absorb bursty scheduler/clock-throttle noise far better than
back-to-back repetitions inside one pass, so CI runs the suite twice.

Usage:
  scripts/bench_compare.py [--baseline-dir bench/baselines]
                           [--fresh-dir build/bench]...
                           [--max-slowdown 1.25]
"""

import argparse
import json
import os
import sys


def load_entries(path):
    """Returns {name: ns_per_op} for one BENCH_*.json file."""
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    entries = {}
    for item in data:
        entries[item["name"]] = float(item["ns_per_op"])
    return entries


def fmt_ns(ns):
    if ns >= 1e9:
        return "%.2f s" % (ns / 1e9)
    if ns >= 1e6:
        return "%.2f ms" % (ns / 1e6)
    if ns >= 1e3:
        return "%.2f us" % (ns / 1e3)
    return "%.0f ns" % ns


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", default="bench/baselines")
    parser.add_argument("--fresh-dir", action="append", default=None,
                        help="directory with fresh BENCH_*.json; repeatable "
                             "(entries merged by per-entry minimum)")
    parser.add_argument("--max-slowdown", type=float, default=1.25,
                        help="fail when fresh > baseline * this factor")
    args = parser.parse_args()
    fresh_dirs = args.fresh_dir or ["build/bench"]

    baselines = sorted(
        f for f in os.listdir(args.baseline_dir)
        if f.startswith("BENCH_") and f.endswith(".json"))
    if not baselines:
        print("no baselines in %s — nothing to gate" % args.baseline_dir)
        return 1

    failures = []
    rows = []
    for fname in baselines:
        base = load_entries(os.path.join(args.baseline_dir, fname))
        fresh = {}
        for d in fresh_dirs:
            path = os.path.join(d, fname)
            if not os.path.exists(path):
                continue
            for name, ns in load_entries(path).items():
                if name not in fresh or ns < fresh[name]:
                    fresh[name] = ns
        if not fresh:
            failures.append("%s: no fresh results (bench did not run?)"
                            % fname)
            continue
        for name, base_ns in base.items():
            if name not in fresh:
                failures.append("%s: keyed entry '%s' missing from fresh "
                                "output" % (fname, name))
                continue
            fresh_ns = fresh[name]
            ratio = fresh_ns / base_ns if base_ns > 0 else float("inf")
            status = "ok"
            if ratio > args.max_slowdown:
                status = "REGRESSION"
                failures.append(
                    "%s: '%s' slowed down %.2fx (%s -> %s, limit %.2fx)"
                    % (fname, name, ratio, fmt_ns(base_ns),
                       fmt_ns(fresh_ns), args.max_slowdown))
            elif ratio < 0.8:
                status = "improved"
            rows.append((fname.replace("BENCH_", "").replace(".json", ""),
                         name, fmt_ns(base_ns), fmt_ns(fresh_ns),
                         "%+.1f%%" % ((ratio - 1.0) * 100.0), status))
        for name in fresh:
            if name not in base:
                rows.append((fname.replace("BENCH_", "").replace(".json", ""),
                             name, "-", fmt_ns(fresh[name]), "-", "new"))

    if rows:
        headers = ("bench", "entry", "baseline", "fresh", "delta", "status")
        widths = [max(len(str(r[i])) for r in rows + [headers])
                  for i in range(len(headers))]
        line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
        print(line)
        print("-" * len(line))
        for r in rows:
            print("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))

    if failures:
        print("\nbenchmark regression gate FAILED (>%.0f%% slowdown):"
              % ((args.max_slowdown - 1.0) * 100.0))
        for f in failures:
            print("  " + f)
        return 1
    print("\nbenchmark regression gate passed (%d entries checked)"
          % len(rows))
    return 0


if __name__ == "__main__":
    sys.exit(main())
