// The canonical evaluation workload: the queries and integrity
// constraints used by the experiment harness (bench/) and the integration
// tests, mirroring the census scenario of the paper's evaluation.
#ifndef MAYBMS_GEN_WORKLOAD_H_
#define MAYBMS_GEN_WORKLOAD_H_

#include <string>
#include <vector>

#include "chase/constraint.h"
#include "ra/plan.h"

namespace maybms {

/// A named query of the evaluation suite.
struct WorkloadQuery {
  std::string id;           ///< "Q1".."Q6"
  std::string description;  ///< what the query exercises
  PlanPtr plan;
};

/// The six evaluation queries over census(+states):
///   Q1  selection on one (possibly noisy) attribute
///   Q2  conjunctive selection across two attributes (component merging)
///   Q3  selection + projection (π with column drop)
///   Q4  equi-join census ⋈ states + selection on the joined side
///   Q5  distinct projection (per-world duplicate elimination)
///   Q6  union of two selections
std::vector<WorkloadQuery> CensusQueries();

/// The cleaning constraints of experiment 2:
///   C1  domain: AGE between 0 and 90
///   C2  conditional domain: MARST = 1 (married) implies AGE >= 15
///   C3  domain: INCTOT >= 0
///   C4  key: PERNUM unique
///   C5  FD: CITY determines STATEFIP
std::vector<Constraint> CensusConstraints();

}  // namespace maybms

#endif  // MAYBMS_GEN_WORKLOAD_H_
