// The canonical evaluation workload: the queries and integrity
// constraints used by the experiment harness (bench/) and the integration
// tests, mirroring the census scenario of the paper's evaluation.
#ifndef MAYBMS_GEN_WORKLOAD_H_
#define MAYBMS_GEN_WORKLOAD_H_

#include <string>
#include <vector>

#include "chase/constraint.h"
#include "common/rng.h"
#include "ra/plan.h"

namespace maybms {

/// A named query of the evaluation suite.
struct WorkloadQuery {
  std::string id;           ///< "Q1".."Q6"
  std::string description;  ///< what the query exercises
  PlanPtr plan;
};

/// The six evaluation queries over census(+states):
///   Q1  selection on one (possibly noisy) attribute
///   Q2  conjunctive selection across two attributes (component merging)
///   Q3  selection + projection (π with column drop)
///   Q4  equi-join census ⋈ states + selection on the joined side
///   Q5  distinct projection (per-world duplicate elimination)
///   Q6  union of two selections
std::vector<WorkloadQuery> CensusQueries();

/// The cleaning constraints of experiment 2:
///   C1  domain: AGE between 0 and 90
///   C2  conditional domain: MARST = 1 (married) implies AGE >= 15
///   C3  domain: INCTOT >= 0
///   C4  key: PERNUM unique
///   C5  FD: CITY determines STATEFIP
std::vector<Constraint> CensusConstraints();

/// A table visible to the random query generator.
struct GenTable {
  std::string name;
  Schema schema;
};

/// Tuning knobs of RandomQueryPlan.
struct RandomQueryOptions {
  size_t max_from = 3;       ///< tables in the FROM chain (with repeats)
  size_t max_conjuncts = 3;  ///< WHERE conjuncts
  double p_project = 0.6;    ///< chance of a projection
  double p_computed = 0.25;  ///< chance a projected int column is computed
  double p_distinct = 0.2;   ///< chance of DISTINCT
  double p_compound = 0.15;  ///< chance of UNION/EXCEPT with a twin query
  int int_domain = 4;        ///< int literals drawn from [0, int_domain)
  int str_domain = 4;        ///< string literals 'a'..'a'+str_domain-1
};

/// Generates a random, *type-correct* query plan over `tables`: a FROM
/// chain of products (tables drawn with replacement, so self-joins
/// appear), a WHERE conjunction of comparisons / IN / IS NULL / NOT / OR
/// shapes over matching column types, an optional projection (column
/// permutations, duplicates, computed int expressions), DISTINCT, and
/// UNION/EXCEPT against a structurally identical twin — the same shapes
/// the SQL planner emits. Every generated expression is total (no type
/// errors at runtime), so the optimized plan, the unoptimized plan and
/// the per-world enumeration oracle must agree exactly; the differential
/// plan fuzzer (tests/plan_fuzz_test.cc) relies on this.
PlanPtr RandomQueryPlan(Rng* rng, const std::vector<GenTable>& tables,
                        const RandomQueryOptions& options = {});

}  // namespace maybms

#endif  // MAYBMS_GEN_WORKLOAD_H_
