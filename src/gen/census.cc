#include "gen/census.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace maybms {

namespace {

// One coded attribute: name, domain size (codes 0..domain-1), Zipf skew.
// Domains follow IPUMS-style code books (sex: 2, marital status: 6,
// state FIPS: 51, occupation: 500, ...). Incomes are drawn separately.
struct CodedAttr {
  const char* name;
  int64_t domain;
  double skew;
};

// 50 attributes. PERNUM is a unique person number (generated serially);
// income-like attributes are sampled from a skewed continuous-ish range.
constexpr CodedAttr kAttrs[] = {
    {"PERNUM", 0, 0.0},      // 0: unique id
    {"AGE", 91, 0.3},        // 1: 0..90
    {"SEX", 2, 0.0},         // 2
    {"MARST", 6, 0.5},       // 3: 1=married ... coded 0..5
    {"RACE", 9, 1.1},        // 4
    {"BPL", 150, 1.2},       // 5: birthplace
    {"CITIZEN", 5, 1.5},     // 6
    {"YRSUSA", 70, 1.0},     // 7
    {"LANGUAGE", 90, 1.6},   // 8
    {"SPEAKENG", 6, 1.4},    // 9
    {"EDUC", 18, 0.6},       // 10
    {"EMPSTAT", 4, 0.7},     // 11
    {"OCC", 500, 1.1},       // 12
    {"IND", 250, 1.1},       // 13
    {"CLASSWKR", 8, 1.0},    // 14
    {"WKSWORK", 53, 0.4},    // 15
    {"HRSWORK", 100, 0.5},   // 16
    {"INCTOT", 0, 0.0},      // 17: income, special
    {"INCWAGE", 0, 0.0},     // 18
    {"INCBUS", 0, 0.0},      // 19
    {"INCSS", 0, 0.0},       // 20
    {"INCWELFR", 0, 0.0},    // 21
    {"INCINVST", 0, 0.0},    // 22
    {"INCRETIR", 0, 0.0},    // 23
    {"INCOTHER", 0, 0.0},    // 24
    {"POVERTY", 501, 0.4},   // 25
    {"MIGRATE5", 5, 0.8},    // 26
    {"MIGPLAC5", 150, 1.3},  // 27
    {"VETSTAT", 3, 1.0},     // 28
    {"TRANTIME", 120, 0.6},  // 29
    {"TRANWORK", 40, 1.4},   // 30
    {"RENT", 0, 0.0},        // 31: money-ish
    {"VALUEH", 0, 0.0},      // 32
    {"MORTGAGE", 4, 0.8},    // 33
    {"ROOMS", 10, 0.4},      // 34
    {"BUILTYR", 10, 0.5},    // 35
    {"UNITSSTR", 11, 0.9},   // 36
    {"FUEL", 9, 1.2},        // 37
    {"WATER", 4, 1.0},       // 38
    {"SEWAGE", 3, 1.0},      // 39
    {"AUTOS", 8, 0.6},       // 40
    {"STATEFIP", 51, 0.8},   // 41
    {"COUNTY", 300, 1.0},    // 42
    {"CITY", 1000, 1.3},     // 43
    {"URBAN", 3, 0.5},       // 44
    {"FARM", 2, 2.0},        // 45
    {"OWNERSHP", 3, 0.4},    // 46
    {"GQ", 5, 2.0},          // 47: group quarters
    {"FAMSIZE", 15, 0.8},    // 48
    {"NCHILD", 10, 1.0},     // 49
};
constexpr size_t kNumAttrs = sizeof(kAttrs) / sizeof(kAttrs[0]);
static_assert(kNumAttrs == 50, "the census schema has 50 attributes");

bool IsIncomeAttr(size_t col) {
  return (col >= 17 && col <= 24) || col == 31 || col == 32;
}

int64_t SampleIncome(Rng* rng) {
  // Mixture: many zeros, then a heavy-tailed positive part.
  if (rng->NextBernoulli(0.35)) return 0;
  double u = rng->NextDouble();
  // Log-uniform between ~500 and ~250k, rounded to dollars.
  double v = 500.0 * std::pow(500.0, u);
  return static_cast<int64_t>(v);
}

}  // namespace

Schema CensusSchema() {
  Schema s;
  for (size_t i = 0; i < kNumAttrs; ++i) {
    Status st = s.Add({kAttrs[i].name, ValueType::kInt});
    MAYBMS_CHECK(st.ok()) << st.ToString();
  }
  return s;
}

int64_t CensusDomainSize(size_t col) {
  MAYBMS_CHECK(col < kNumAttrs);
  if (col == 0) return 0;                 // key: never noised
  if (IsIncomeAttr(col)) return 250000;   // money range
  return kAttrs[col].domain;
}

Relation GenerateCensus(const CensusOptions& options) {
  Rng rng(options.seed);
  Relation rel("census", CensusSchema());
  rel.Reserve(options.num_records);
  for (size_t i = 0; i < options.num_records; ++i) {
    Tuple t;
    t.reserve(kNumAttrs);
    for (size_t c = 0; c < kNumAttrs; ++c) {
      if (c == 0) {
        t.push_back(Value::Int(static_cast<int64_t>(i) + 1));
      } else if (IsIncomeAttr(c)) {
        t.push_back(Value::Int(SampleIncome(&rng)));
      } else {
        t.push_back(Value::Int(static_cast<int64_t>(
            rng.NextZipf(static_cast<uint64_t>(kAttrs[c].domain),
                         kAttrs[c].skew))));
      }
    }
    // Consistency of the clean data (the cleaning experiment removes
    // *noise-induced* violations; the clean extract satisfies the
    // workload constraints):
    //  - children are never married (married-implies-adult),
    //  - COUNTY and CITY codes embed the state so that CITY -> STATEFIP
    //    (and COUNTY -> STATEFIP) hold as functional dependencies.
    constexpr size_t kAge = 1, kMarst = 3, kStatefip = 41, kCounty = 42,
                     kCity = 43;
    if (t[kAge].as_int() < 15) {
      t[kMarst] = Value::Int(0);  // 0 = n/a, never married
    }
    int64_t state = t[kStatefip].as_int();
    t[kCounty] = Value::Int(state * 6 + t[kCounty].as_int() % 6);
    t[kCity] = Value::Int(state * 20 + t[kCity].as_int() % 20);
    rel.AppendUnchecked(std::move(t));
  }
  return rel;
}

Relation GenerateStates() {
  static const char* kNames[] = {
      "Alabama", "Alaska", "Arizona", "Arkansas", "California", "Colorado",
      "Connecticut", "Delaware", "DC", "Florida", "Georgia", "Hawaii",
      "Idaho", "Illinois", "Indiana", "Iowa", "Kansas", "Kentucky",
      "Louisiana", "Maine", "Maryland", "Massachusetts", "Michigan",
      "Minnesota", "Mississippi", "Missouri", "Montana", "Nebraska",
      "Nevada", "NewHampshire", "NewJersey", "NewMexico", "NewYork",
      "NorthCarolina", "NorthDakota", "Ohio", "Oklahoma", "Oregon",
      "Pennsylvania", "RhodeIsland", "SouthCarolina", "SouthDakota",
      "Tennessee", "Texas", "Utah", "Vermont", "Virginia", "Washington",
      "WestVirginia", "Wisconsin", "Wyoming"};
  static const char* kRegions[] = {"South", "West", "West", "South", "West",
                                   "West", "Northeast", "South", "South",
                                   "South", "South", "West", "West",
                                   "Midwest", "Midwest", "Midwest",
                                   "Midwest", "South", "South", "Northeast",
                                   "South", "Northeast", "Midwest",
                                   "Midwest", "South", "Midwest", "West",
                                   "Midwest", "West", "Northeast",
                                   "Northeast", "West", "Northeast",
                                   "South", "Midwest", "Midwest", "South",
                                   "West", "Northeast", "Northeast",
                                   "South", "Midwest", "South", "South",
                                   "West", "Northeast", "South", "West",
                                   "South", "Midwest", "West"};
  Relation rel("states", Schema({{"STATEFIP", ValueType::kInt},
                                 {"NAME", ValueType::kString},
                                 {"REGION", ValueType::kString}}));
  for (int64_t i = 0; i < 51; ++i) {
    rel.AppendUnchecked({Value::Int(i), Value::String(kNames[i]),
                         Value::String(kRegions[i])});
  }
  return rel;
}

}  // namespace maybms
