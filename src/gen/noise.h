// Or-set noise injection — the paper's incompleteness process:
// "We introduced noise with different degree of incompleteness to the
//  data by replacing randomly picked values with or-sets."
//
// Each noised cell becomes an or-set of alternatives (the original value
// plus plausible others from the attribute's domain), i.e. one fresh
// single-slot component; k alternatives multiply the world count by k.
#ifndef MAYBMS_GEN_NOISE_H_
#define MAYBMS_GEN_NOISE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "core/wsd.h"

namespace maybms {

struct NoiseOptions {
  /// Fraction of eligible cells replaced by or-sets (the paper's "degree
  /// of incompleteness").
  double cell_fraction = 0.001;
  size_t min_alternatives = 2;
  size_t max_alternatives = 4;
  /// Uniform alternative probabilities instead of random ones.
  bool uniform_probs = false;
  /// Fraction of alternatives drawn as wild perturbations of the original
  /// value (original ± random offset) instead of same-column samples;
  /// wild values can leave the attribute's domain, which is what the
  /// domain-constraint cleaning experiment detects.
  double wild_fraction = 0.0;
  /// Columns eligible for noise; empty = all columns except `key_column`.
  std::vector<size_t> columns;
  /// Column never noised (unique id). Ignored when `columns` is set.
  size_t key_column = 0;
  uint64_t seed = 17;
};

struct NoiseStats {
  size_t cells_noised = 0;
  size_t alternatives_added = 0;  ///< extra values beyond the originals
  double log2_worlds = 0.0;       ///< of the database after injection
};

/// Draws an alternative value for column `col`, distinct from `original`
/// where possible. Default implementation samples a random other row's
/// value in that column (keeps alternatives domain-plausible).
using AlternativeSampler =
    std::function<Value(size_t col, const Value& original)>;

/// Replaces a random `cell_fraction` of `relation`'s eligible certain
/// cells with or-sets. `sampler` may be null — then alternatives are
/// sampled from the same column of random rows.
Result<NoiseStats> ApplyOrSetNoise(WsdDb* db, const std::string& relation,
                                   const NoiseOptions& options,
                                   AlternativeSampler sampler = nullptr);

}  // namespace maybms

#endif  // MAYBMS_GEN_NOISE_H_
