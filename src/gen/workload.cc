#include "gen/workload.h"

namespace maybms {

namespace {
ExprPtr Col(const std::string& n) { return Expr::Column(n); }
ExprPtr IntLit(int64_t v) { return Expr::Const(Value::Int(v)); }
ExprPtr StrLit(const char* s) { return Expr::Const(Value::String(s)); }
ExprPtr Cmp(CompareOp op, ExprPtr l, ExprPtr r) {
  return Expr::Compare(op, std::move(l), std::move(r));
}
}  // namespace

std::vector<WorkloadQuery> CensusQueries() {
  std::vector<WorkloadQuery> out;

  out.push_back(
      {"Q1", "selection on one possibly-noisy attribute (AGE >= 65)",
       Plan::Select(Plan::Scan("census"),
                    Cmp(CompareOp::kGe, Col("AGE"), IntLit(65)))});

  out.push_back(
      {"Q2",
       "conjunctive selection across two attributes (SEX = 1 AND AGE < 30)",
       Plan::Select(Plan::Scan("census"),
                    Expr::And(Cmp(CompareOp::kEq, Col("SEX"), IntLit(1)),
                              Cmp(CompareOp::kLt, Col("AGE"), IntLit(30))))});

  out.push_back(
      {"Q3", "selection + projection (high earners per state)",
       Plan::Project(
           Plan::Select(Plan::Scan("census"),
                        Cmp(CompareOp::kGt, Col("INCTOT"), IntLit(50000))),
           {{Col("STATEFIP"), "STATEFIP"}, {Col("INCTOT"), "INCTOT"}})});

  out.push_back(
      {"Q4", "equi-join with states + selection on region",
       Plan::Project(
           Plan::Select(
               Plan::Join(Plan::Scan("census"), Plan::Scan("states"),
                          Cmp(CompareOp::kEq, Col("STATEFIP"),
                              Col("states.STATEFIP"))),
               Cmp(CompareOp::kEq, Col("REGION"), StrLit("West"))),
           {{Col("PERNUM"), "PERNUM"}, {Col("NAME"), "STATE"}})});

  out.push_back(
      {"Q5", "distinct projection (which states have welfare recipients)",
       Plan::Distinct(Plan::Project(
           Plan::Select(Plan::Scan("census"),
                        Cmp(CompareOp::kGt, Col("INCWELFR"), IntLit(0))),
           {{Col("STATEFIP"), "STATEFIP"}}))});

  out.push_back(
      {"Q6", "union of two selections (veterans or farmers)",
       Plan::Union(
           Plan::Select(Plan::Scan("census"),
                        Cmp(CompareOp::kEq, Col("VETSTAT"), IntLit(1))),
           Plan::Select(Plan::Scan("census"),
                        Cmp(CompareOp::kEq, Col("FARM"), IntLit(1))))});

  return out;
}

namespace {

/// Mutable state of one random query derivation. The structural choices
/// (FROM chain, projection shape, DISTINCT) live in QuerySpec so a
/// compound twin can share them — UNION/EXCEPT operands must agree on
/// arity and types — while predicates are drawn fresh per operand.
struct QuerySpec {
  std::vector<size_t> from;        ///< indexes into the table list
  bool project = false;
  std::vector<size_t> proj_cols;   ///< flat concat columns (dups allowed)
  std::vector<bool> proj_computed; ///< wrap the int column in arithmetic
  bool distinct = false;
};

class QueryGen {
 public:
  QueryGen(Rng* rng, const std::vector<GenTable>& tables,
           const RandomQueryOptions& opt)
      : rng_(rng), tables_(tables), opt_(opt) {}

  QuerySpec RandomSpec() {
    QuerySpec spec;
    size_t nfrom = 1 + rng_->NextBelow(opt_.max_from);
    for (size_t i = 0; i < nfrom; ++i) {
      spec.from.push_back(rng_->NextBelow(tables_.size()));
    }
    std::vector<ValueType> types = ConcatTypes(spec);
    spec.project = rng_->NextBernoulli(opt_.p_project);
    if (spec.project) {
      size_t keep = 1 + rng_->NextBelow(types.size());
      for (size_t i = 0; i < keep; ++i) {
        size_t c = rng_->NextBelow(types.size());
        spec.proj_cols.push_back(c);
        spec.proj_computed.push_back(types[c] == ValueType::kInt &&
                                     rng_->NextBernoulli(opt_.p_computed));
      }
    }
    spec.distinct = rng_->NextBernoulli(opt_.p_distinct);
    return spec;
  }

  PlanPtr Build(const QuerySpec& spec) {
    std::vector<ValueType> types = ConcatTypes(spec);
    PlanPtr plan = Plan::Scan(tables_[spec.from[0]].name);
    for (size_t i = 1; i < spec.from.size(); ++i) {
      plan = Plan::Product(plan, Plan::Scan(tables_[spec.from[i]].name));
    }
    ExprPtr pred = RandomPredicate(types);
    if (pred) plan = Plan::Select(plan, pred);
    if (spec.project) {
      std::vector<ProjectItem> items;
      for (size_t i = 0; i < spec.proj_cols.size(); ++i) {
        size_t c = spec.proj_cols[i];
        ExprPtr e = spec.proj_computed[i] ? IntArith(c) : ColIdx(c);
        items.push_back({std::move(e), "p" + std::to_string(i)});
      }
      plan = Plan::Project(plan, std::move(items));
    }
    if (spec.distinct) plan = Plan::Distinct(plan);
    return plan;
  }

 private:
  std::vector<ValueType> ConcatTypes(const QuerySpec& spec) const {
    std::vector<ValueType> types;
    for (size_t t : spec.from) {
      for (const auto& attr : tables_[t].schema.attrs()) {
        types.push_back(attr.type);
      }
    }
    return types;
  }

  static ExprPtr ColIdx(size_t i) { return Expr::ColumnIdx(i, ""); }

  ExprPtr RandomLit(ValueType t) {
    switch (t) {
      case ValueType::kString:
        return Expr::Const(Value::String(std::string(
            1, static_cast<char>(
                   'a' + rng_->NextBelow(
                             static_cast<uint64_t>(opt_.str_domain))))));
      case ValueType::kBool:
        return Expr::Const(Value::Bool(rng_->NextBernoulli(0.5)));
      case ValueType::kDouble:
        return Expr::Const(Value::Double(static_cast<double>(
            rng_->NextBelow(static_cast<uint64_t>(opt_.int_domain)))));
      case ValueType::kInt:
        break;
    }
    return Expr::Const(Value::Int(static_cast<int64_t>(
        rng_->NextBelow(static_cast<uint64_t>(opt_.int_domain)))));
  }

  CompareOp RandomCmpOp() {
    static constexpr CompareOp kOps[] = {CompareOp::kEq, CompareOp::kNe,
                                         CompareOp::kLt, CompareOp::kLe,
                                         CompareOp::kGt, CompareOp::kGe};
    return kOps[rng_->NextBelow(6)];
  }

  /// Arithmetic over an int column: total by construction (int ops wrap,
  /// division by zero yields NULL — never an error).
  ExprPtr IntArith(size_t col) {
    int64_t lit = 1 + static_cast<int64_t>(rng_->NextBelow(3));
    switch (rng_->NextBelow(4)) {
      case 0:
        return Expr::Arith(ArithOp::kAdd, ColIdx(col),
                           Expr::Const(Value::Int(lit)));
      case 1:
        return Expr::Arith(ArithOp::kSub, ColIdx(col),
                           Expr::Const(Value::Int(lit)));
      case 2:
        return Expr::Arith(ArithOp::kMul, ColIdx(col),
                           Expr::Const(Value::Int(lit)));
      default:
        return Expr::Arith(ArithOp::kDiv, ColIdx(col),
                           Expr::Const(Value::Int(lit)));
    }
  }

  ExprPtr SimpleConjunct(const std::vector<ValueType>& types) {
    size_t i = rng_->NextBelow(types.size());
    switch (rng_->NextBelow(6)) {
      case 0:
        return Expr::Compare(RandomCmpOp(), ColIdx(i), RandomLit(types[i]));
      case 1: {  // column-column comparison, types matched
        std::vector<size_t> same;
        for (size_t j = 0; j < types.size(); ++j) {
          if (j != i && types[j] == types[i]) same.push_back(j);
        }
        if (same.empty()) {
          return Expr::Compare(RandomCmpOp(), ColIdx(i), RandomLit(types[i]));
        }
        size_t j = same[rng_->NextBelow(same.size())];
        // Bias toward equality: that is the shape pushdown turns into
        // hash joins.
        CompareOp op = rng_->NextBernoulli(0.6) ? CompareOp::kEq
                                                : RandomCmpOp();
        return Expr::Compare(op, ColIdx(i), ColIdx(j));
      }
      case 2: {  // IN list
        size_t k = 1 + rng_->NextBelow(3);
        std::vector<Value> set;
        for (size_t a = 0; a < k; ++a) {
          set.push_back(RandomLit(types[i])->const_value());
        }
        return Expr::In(ColIdx(i), std::move(set));
      }
      case 3:
        return Expr::IsNull(ColIdx(i), rng_->NextBernoulli(0.5));
      case 4:
        return Expr::Not(
            Expr::Compare(RandomCmpOp(), ColIdx(i), RandomLit(types[i])));
      default: {  // arithmetic comparison (ints only)
        if (types[i] != ValueType::kInt) {
          return Expr::Compare(RandomCmpOp(), ColIdx(i), RandomLit(types[i]));
        }
        return Expr::Compare(RandomCmpOp(), IntArith(i),
                             Expr::Const(Value::Int(static_cast<int64_t>(
                                 rng_->NextBelow(static_cast<uint64_t>(
                                     opt_.int_domain * 3))))));
      }
    }
  }

  ExprPtr RandomPredicate(const std::vector<ValueType>& types) {
    size_t n = rng_->NextBelow(opt_.max_conjuncts + 1);
    ExprPtr pred;
    for (size_t c = 0; c < n; ++c) {
      ExprPtr conj = SimpleConjunct(types);
      if (rng_->NextBernoulli(0.25)) {
        conj = Expr::Or(conj, SimpleConjunct(types));
      }
      pred = pred ? Expr::And(pred, conj) : conj;
    }
    return pred;
  }

  Rng* rng_;
  const std::vector<GenTable>& tables_;
  const RandomQueryOptions& opt_;
};

}  // namespace

PlanPtr RandomQueryPlan(Rng* rng, const std::vector<GenTable>& tables,
                        const RandomQueryOptions& options) {
  QueryGen gen(rng, tables, options);
  QuerySpec spec = gen.RandomSpec();
  PlanPtr plan = gen.Build(spec);
  if (rng->NextBernoulli(options.p_compound)) {
    // The twin shares the structural spec (same arity and types) but
    // draws fresh predicates.
    PlanPtr twin = gen.Build(spec);
    plan = rng->NextBernoulli(0.5) ? Plan::Union(plan, twin)
                                   : Plan::Difference(plan, twin);
  }
  return plan;
}

std::vector<Constraint> CensusConstraints() {
  std::vector<Constraint> out;
  out.push_back(Constraint::Domain(
      "census",
      Expr::And(Cmp(CompareOp::kGe, Col("AGE"), IntLit(0)),
                Cmp(CompareOp::kLe, Col("AGE"), IntLit(90))),
      "age-range"));
  out.push_back(Constraint::Domain(
      "census",
      Expr::Or(Expr::Not(Cmp(CompareOp::kEq, Col("MARST"), IntLit(1))),
               Cmp(CompareOp::kGe, Col("AGE"), IntLit(15))),
      "married-implies-adult"));
  out.push_back(Constraint::Domain(
      "census", Cmp(CompareOp::kGe, Col("INCTOT"), IntLit(0)),
      "income-nonnegative"));
  out.push_back(Constraint::Key("census", {"PERNUM"}, "pernum-unique"));
  out.push_back(Constraint::FunctionalDependency("census", {"CITY"},
                                                 {"STATEFIP"},
                                                 "city-determines-state"));
  return out;
}

}  // namespace maybms
