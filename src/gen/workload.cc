#include "gen/workload.h"

namespace maybms {

namespace {
ExprPtr Col(const std::string& n) { return Expr::Column(n); }
ExprPtr IntLit(int64_t v) { return Expr::Const(Value::Int(v)); }
ExprPtr StrLit(const char* s) { return Expr::Const(Value::String(s)); }
ExprPtr Cmp(CompareOp op, ExprPtr l, ExprPtr r) {
  return Expr::Compare(op, std::move(l), std::move(r));
}
}  // namespace

std::vector<WorkloadQuery> CensusQueries() {
  std::vector<WorkloadQuery> out;

  out.push_back(
      {"Q1", "selection on one possibly-noisy attribute (AGE >= 65)",
       Plan::Select(Plan::Scan("census"),
                    Cmp(CompareOp::kGe, Col("AGE"), IntLit(65)))});

  out.push_back(
      {"Q2",
       "conjunctive selection across two attributes (SEX = 1 AND AGE < 30)",
       Plan::Select(Plan::Scan("census"),
                    Expr::And(Cmp(CompareOp::kEq, Col("SEX"), IntLit(1)),
                              Cmp(CompareOp::kLt, Col("AGE"), IntLit(30))))});

  out.push_back(
      {"Q3", "selection + projection (high earners per state)",
       Plan::Project(
           Plan::Select(Plan::Scan("census"),
                        Cmp(CompareOp::kGt, Col("INCTOT"), IntLit(50000))),
           {{Col("STATEFIP"), "STATEFIP"}, {Col("INCTOT"), "INCTOT"}})});

  out.push_back(
      {"Q4", "equi-join with states + selection on region",
       Plan::Project(
           Plan::Select(
               Plan::Join(Plan::Scan("census"), Plan::Scan("states"),
                          Cmp(CompareOp::kEq, Col("STATEFIP"),
                              Col("states.STATEFIP"))),
               Cmp(CompareOp::kEq, Col("REGION"), StrLit("West"))),
           {{Col("PERNUM"), "PERNUM"}, {Col("NAME"), "STATE"}})});

  out.push_back(
      {"Q5", "distinct projection (which states have welfare recipients)",
       Plan::Distinct(Plan::Project(
           Plan::Select(Plan::Scan("census"),
                        Cmp(CompareOp::kGt, Col("INCWELFR"), IntLit(0))),
           {{Col("STATEFIP"), "STATEFIP"}}))});

  out.push_back(
      {"Q6", "union of two selections (veterans or farmers)",
       Plan::Union(
           Plan::Select(Plan::Scan("census"),
                        Cmp(CompareOp::kEq, Col("VETSTAT"), IntLit(1))),
           Plan::Select(Plan::Scan("census"),
                        Cmp(CompareOp::kEq, Col("FARM"), IntLit(1))))});

  return out;
}

std::vector<Constraint> CensusConstraints() {
  std::vector<Constraint> out;
  out.push_back(Constraint::Domain(
      "census",
      Expr::And(Cmp(CompareOp::kGe, Col("AGE"), IntLit(0)),
                Cmp(CompareOp::kLe, Col("AGE"), IntLit(90))),
      "age-range"));
  out.push_back(Constraint::Domain(
      "census",
      Expr::Or(Expr::Not(Cmp(CompareOp::kEq, Col("MARST"), IntLit(1))),
               Cmp(CompareOp::kGe, Col("AGE"), IntLit(15))),
      "married-implies-adult"));
  out.push_back(Constraint::Domain(
      "census", Cmp(CompareOp::kGe, Col("INCTOT"), IntLit(0)),
      "income-nonnegative"));
  out.push_back(Constraint::Key("census", {"PERNUM"}, "pernum-unique"));
  out.push_back(Constraint::FunctionalDependency("census", {"CITY"},
                                                 {"STATEFIP"},
                                                 "city-determines-state"));
  return out;
}

}  // namespace maybms
