#include "gen/noise.h"

#include <algorithm>
#include <unordered_set>

#include "common/rng.h"
#include "common/string_util.h"
#include "core/builder.h"

namespace maybms {

Result<NoiseStats> ApplyOrSetNoise(WsdDb* db, const std::string& relation,
                                   const NoiseOptions& options,
                                   AlternativeSampler sampler) {
  MAYBMS_ASSIGN_OR_RETURN(WsdRelation * rel, db->GetMutableRelation(relation));
  if (options.cell_fraction < 0.0 || options.cell_fraction > 1.0) {
    return Status::InvalidArgument(
        StrFormat("cell_fraction %g outside [0,1]", options.cell_fraction));
  }
  if (options.min_alternatives < 2 ||
      options.max_alternatives < options.min_alternatives) {
    return Status::InvalidArgument("need 2 <= min_alternatives <= max");
  }
  Rng rng(options.seed);

  std::vector<size_t> cols = options.columns;
  if (cols.empty()) {
    for (size_t c = 0; c < rel->schema().size(); ++c) {
      if (c != options.key_column) cols.push_back(c);
    }
  }
  for (size_t c : cols) {
    if (c >= rel->schema().size()) {
      return Status::OutOfRange(StrFormat("noise column %zu out of range", c));
    }
  }
  size_t rows = rel->NumTuples();
  size_t eligible = rows * cols.size();
  size_t target = static_cast<size_t>(
      static_cast<double>(eligible) * options.cell_fraction + 0.5);

  // Sample distinct (row, col-position) pairs.
  std::unordered_set<uint64_t> picked;
  picked.reserve(target * 2);
  NoiseStats stats;
  size_t attempts = 0;
  // Default sampler: value of a random other row in the same column; this
  // keeps alternatives inside the attribute's observed domain.
  AlternativeSampler sample = sampler;
  if (!sample) {
    double wild = options.wild_fraction;
    sample = [db, relation, &rng, wild](size_t col, const Value& original) {
      if (original.is_int() && rng.NextBernoulli(wild)) {
        // Wild perturbation: may leave the attribute domain (e.g. a
        // negative age) — the raw material of the cleaning experiment.
        int64_t offset = rng.NextInt(1, 40);
        return Value::Int(rng.NextBernoulli(0.5) ? original.as_int() + offset
                                                 : original.as_int() - offset);
      }
      const WsdRelation* r = db->GetRelation(relation).value();
      for (int tries = 0; tries < 8; ++tries) {
        const WsdTuple& t = r->tuple(rng.NextBelow(r->NumTuples()));
        const Cell& cell = t.cells[col];
        if (cell.is_certain() && !(cell.value() == original)) {
          return cell.value();
        }
      }
      // Fall back to a perturbed value for low-cardinality columns.
      if (original.is_int()) return Value::Int(original.as_int() + 1);
      return Value::String(original.ToString() + "_alt");
    };
  }

  while (stats.cells_noised < target && attempts < target * 64 + 64) {
    ++attempts;
    size_t row = rng.NextBelow(rows);
    size_t col = cols[rng.NextBelow(cols.size())];
    uint64_t key = static_cast<uint64_t>(row) * rel->schema().size() + col;
    if (!picked.insert(key).second) continue;
    const Cell& cell = rel->tuple(row).cells[col];
    if (!cell.is_certain()) continue;
    Value original = cell.value();
    if (original.is_null()) continue;

    size_t k = options.min_alternatives +
               rng.NextBelow(options.max_alternatives -
                             options.min_alternatives + 1);
    std::vector<Value> values{original};
    for (size_t a = 1; a < k && values.size() < k; ++a) {
      Value v = sample(col, original);
      bool dup = false;
      for (const auto& u : values) {
        if (u == v) {
          dup = true;
          break;
        }
      }
      if (!dup) values.push_back(std::move(v));
    }
    if (values.size() < 2) continue;  // could not find an alternative
    std::vector<double> probs;
    if (options.uniform_probs) {
      probs.assign(values.size(), 1.0 / static_cast<double>(values.size()));
    } else {
      probs = rng.NextProbabilities(static_cast<int>(values.size()));
      // Give the original value the largest share so the noisy database
      // stays centred on the clean one (as in repair-style scenarios).
      auto max_it = std::max_element(probs.begin(), probs.end());
      std::swap(*probs.begin(), *max_it);
    }
    std::vector<Alternative> alts;
    alts.reserve(values.size());
    for (size_t a = 0; a < values.size(); ++a) {
      alts.push_back({std::move(values[a]), probs[a]});
    }
    MAYBMS_ASSIGN_OR_RETURN(ComponentId cid,
                            MakeCellUncertain(db, relation, row, col,
                                              std::move(alts)));
    (void)cid;
    stats.cells_noised++;
    stats.alternatives_added += values.size() - 1;
  }
  stats.log2_worlds = db->Log2WorldCount();
  return stats;
}

}  // namespace maybms
