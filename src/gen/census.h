// Synthetic census data generator.
//
// The paper's experiments used a 5% extract of the 1990 US census (IPUMS,
// ~12.5M records × 50 columns, ~3GB). That dataset is not redistributable,
// so this module generates a synthetic extract with the same shape: a
// 50-attribute person-record schema with realistic domains, cardinalities
// and Zipf-skewed value distributions, scalable to any record count, fully
// deterministic from a seed. The experiments depend only on these
// statistics — arity, value domains, and the noise process — not on the
// actual census values (see DESIGN.md §4).
#ifndef MAYBMS_GEN_CENSUS_H_
#define MAYBMS_GEN_CENSUS_H_

#include <cstdint>

#include "storage/relation.h"

namespace maybms {

struct CensusOptions {
  size_t num_records = 1000;
  uint64_t seed = 42;
};

/// The 50-attribute person schema (IPUMS-style coded attributes).
Schema CensusSchema();

/// Generates a census extract relation named "census".
Relation GenerateCensus(const CensusOptions& options);

/// Reference relation "states": STATEFIP code, name, region — used by the
/// join queries of the evaluation.
Relation GenerateStates();

/// Number of distinct codes attribute `col` draws from (the noise
/// injector samples alternatives from the same domain).
int64_t CensusDomainSize(size_t col);

}  // namespace maybms

#endif  // MAYBMS_GEN_CENSUS_H_
