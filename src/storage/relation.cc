#include "storage/relation.h"

#include <algorithm>
#include <string_view>
#include <unordered_set>

#include "common/string_util.h"

namespace maybms {

size_t TupleHash(const Tuple& t) {
  size_t seed = t.size();
  for (const auto& v : t) HashCombine(&seed, v.Hash());
  return seed;
}

int TupleCompare(const Tuple& a, const Tuple& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

bool ValueFitsType(const Value& v, ValueType t) {
  if (v.is_bottom()) return false;
  if (v.is_null()) return true;
  switch (t) {
    case ValueType::kBool:
      return v.is_bool();
    case ValueType::kInt:
      return v.is_int();
    case ValueType::kDouble:
      return v.is_numeric();
    case ValueType::kString:
      return v.is_string();
  }
  return false;
}

Status Relation::Append(Tuple t) {
  if (t.size() != schema_.size()) {
    return Status::InvalidArgument(
        StrFormat("arity mismatch: tuple has %zu values, schema %s has %zu",
                  t.size(), name_.c_str(), schema_.size()));
  }
  for (size_t i = 0; i < t.size(); ++i) {
    if (!ValueFitsType(t[i], schema_.attr(i).type)) {
      return Status::TypeMismatch(
          StrFormat("value %s does not fit attribute %s %s",
                    t[i].ToString().c_str(), schema_.attr(i).name.c_str(),
                    std::string(ValueTypeToString(schema_.attr(i).type))
                        .c_str()));
    }
  }
  InvalidateStats();
  rows_.push_back(std::move(t));
  return Status::OK();
}

const RelationStats& Relation::GetStats() const {
  std::shared_ptr<const RelationStats> cached = std::atomic_load(&stats_);
  if (cached != nullptr) return *cached;
  auto s = std::make_shared<RelationStats>();
  s->rows = rows_.size();
  s->distinct.assign(schema_.size(), 0);
  // Sort column pointers in the Value total order and count runs; the
  // order is consistent with Value equality (NaN class, ±0 collapse), so
  // the count is exact, not a sketch.
  std::vector<const Value*> col(rows_.size());
  for (size_t c = 0; c < schema_.size(); ++c) {
    for (size_t r = 0; r < rows_.size(); ++r) col[r] = &rows_[r][c];
    std::sort(col.begin(), col.end(), [](const Value* a, const Value* b) {
      return a->Compare(*b) < 0;
    });
    uint64_t distinct = 0;
    for (size_t r = 0; r < col.size(); ++r) {
      if (r == 0 || col[r]->Compare(*col[r - 1]) != 0) ++distinct;
    }
    s->distinct[c] = distinct;
  }
  // Install-if-absent; see Component::GetStats for the race argument.
  std::shared_ptr<const RelationStats> expected;
  std::shared_ptr<const RelationStats> fresh = std::move(s);
  if (std::atomic_compare_exchange_strong(&stats_, &expected, fresh)) {
    return *fresh;
  }
  return *expected;
}

void Relation::SortRows() {
  std::sort(rows_.begin(), rows_.end(),
            [](const Tuple& a, const Tuple& b) { return TupleCompare(a, b) < 0; });
}

bool Relation::BagEquals(const Relation& other) const {
  if (schema_.size() != other.schema_.size()) return false;
  if (rows_.size() != other.rows_.size()) return false;
  std::vector<Tuple> a = rows_, b = other.rows_;
  auto less = [](const Tuple& x, const Tuple& y) {
    return TupleCompare(x, y) < 0;
  };
  std::sort(a.begin(), a.end(), less);
  std::sort(b.begin(), b.end(), less);
  for (size_t i = 0; i < a.size(); ++i) {
    if (TupleCompare(a[i], b[i]) != 0) return false;
  }
  return true;
}

uint64_t Relation::SerializedSize() const {
  uint64_t total = 0;
  for (const auto& row : rows_) {
    total += 4;  // row header
    for (const auto& v : row) total += v.SerializedSize();
  }
  return total;
}

uint64_t Relation::InternedSize() const {
  uint64_t total = 0;
  std::unordered_set<std::string_view> strings;
  for (const auto& row : rows_) {
    total += 4;                 // row header
    total += row.size() * 16;   // one packed (tag + 8-byte payload) cell
    for (const auto& v : row) {
      if (v.is_string()) strings.insert(v.as_string());
    }
  }
  constexpr uint64_t kPoolEntryOverhead = 24;
  for (std::string_view s : strings) total += s.size() + kPoolEntryOverhead;
  return total;
}

std::string Relation::ToString(size_t max_rows) const {
  // Compute column widths.
  std::vector<size_t> width(schema_.size());
  for (size_t c = 0; c < schema_.size(); ++c) {
    width[c] = schema_.attr(c).name.size();
  }
  size_t shown = std::min(max_rows, rows_.size());
  std::vector<std::vector<std::string>> cells(shown);
  for (size_t r = 0; r < shown; ++r) {
    cells[r].resize(schema_.size());
    for (size_t c = 0; c < schema_.size(); ++c) {
      cells[r][c] = rows_[r][c].ToString();
      width[c] = std::max(width[c], cells[r][c].size());
    }
  }
  std::string out;
  if (!name_.empty()) out += name_ + "\n";
  std::string sep = "+";
  for (size_t c = 0; c < schema_.size(); ++c) {
    sep += std::string(width[c] + 2, '-') + "+";
  }
  out += sep + "\n|";
  for (size_t c = 0; c < schema_.size(); ++c) {
    out += " " + PadRight(schema_.attr(c).name, width[c]) + " |";
  }
  out += "\n" + sep + "\n";
  for (size_t r = 0; r < shown; ++r) {
    out += "|";
    for (size_t c = 0; c < schema_.size(); ++c) {
      out += " " + PadRight(cells[r][c], width[c]) + " |";
    }
    out += "\n";
  }
  out += sep + "\n";
  if (shown < rows_.size()) {
    out += StrFormat("(%zu of %zu rows shown)\n", shown, rows_.size());
  } else {
    out += StrFormat("(%zu rows)\n", rows_.size());
  }
  return out;
}

}  // namespace maybms
