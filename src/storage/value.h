// Value: the typed cell content of tuples and component rows.
//
// Besides the usual SQL scalar types and NULL, values include the special
// marker BOTTOM (⊥ in the paper): a field value meaning "the tuple owning
// this field does not exist in this world". BOTTOM never appears in
// conventional (certain) relations; it lives inside WSD components and is
// produced by lifted selection.
#ifndef MAYBMS_STORAGE_VALUE_H_
#define MAYBMS_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/hash.h"

namespace maybms {

/// SQL-level attribute types (NULL and BOTTOM are value states, not types).
enum class ValueType : uint8_t { kBool, kInt, kDouble, kString };

std::string_view ValueTypeToString(ValueType t);

/// A dynamically typed scalar.
///
/// Total order: BOTTOM < NULL < booleans < numbers < strings, with numeric
/// values (int/double) compared on the real line so that mixed-type data
/// sorts deterministically.
class Value {
 public:
  /// Constructs NULL.
  Value() : rep_(NullTag{}) {}

  static Value Null() { return Value(); }
  /// Constructs ⊥ ("tuple absent in this world").
  static Value Bottom() {
    Value v;
    v.rep_ = BottomTag{};
    return v;
  }
  static Value Bool(bool b) {
    Value v;
    v.rep_ = b;
    return v;
  }
  static Value Int(int64_t i) {
    Value v;
    v.rep_ = i;
    return v;
  }
  static Value Double(double d) {
    Value v;
    v.rep_ = d;
    return v;
  }
  static Value String(std::string s) {
    Value v;
    v.rep_ = std::move(s);
    return v;
  }

  bool is_null() const { return std::holds_alternative<NullTag>(rep_); }
  bool is_bottom() const { return std::holds_alternative<BottomTag>(rep_); }
  bool is_bool() const { return std::holds_alternative<bool>(rep_); }
  bool is_int() const { return std::holds_alternative<int64_t>(rep_); }
  bool is_double() const { return std::holds_alternative<double>(rep_); }
  bool is_string() const { return std::holds_alternative<std::string>(rep_); }
  bool is_numeric() const { return is_int() || is_double(); }

  bool as_bool() const { return std::get<bool>(rep_); }
  int64_t as_int() const { return std::get<int64_t>(rep_); }
  double as_double() const { return std::get<double>(rep_); }
  const std::string& as_string() const { return std::get<std::string>(rep_); }

  /// Numeric view: int promoted to double. Pre: is_numeric().
  double NumericValue() const {
    return is_int() ? static_cast<double>(as_int()) : as_double();
  }

  /// Strict equality (kind-aware; int 1 == double 1.0 holds because both
  /// are numeric and equal on the real line). NULL == NULL and ⊥ == ⊥ are
  /// true here — this is structural equality of the representation, not
  /// SQL three-valued logic (which the expression layer implements).
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Total order used by sorting, grouping, and map keys.
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// -1 / 0 / +1 three-way comparison in the total order.
  int Compare(const Value& other) const;

  /// Stable hash, consistent with operator== (numeric values hash by
  /// their double image).
  size_t Hash() const;

  /// SQL-ish rendering: NULL, ⊥, 'str', 1, 2.5, true.
  std::string ToString() const;

  /// Bytes this value occupies in the flat serialized model used for the
  /// storage experiment (1 tag byte + payload; strings add a 4-byte
  /// length prefix).
  uint64_t SerializedSize() const;

 private:
  struct NullTag {
    bool operator==(const NullTag&) const { return true; }
  };
  struct BottomTag {
    bool operator==(const BottomTag&) const { return true; }
  };
  std::variant<NullTag, BottomTag, bool, int64_t, double, std::string> rep_;
};

/// std::hash adapter so Value can key unordered containers.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace maybms

#endif  // MAYBMS_STORAGE_VALUE_H_
