// Schema: ordered list of named, typed attributes.
#ifndef MAYBMS_STORAGE_SCHEMA_H_
#define MAYBMS_STORAGE_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/value.h"

namespace maybms {

/// One attribute of a relation schema.
struct Attribute {
  std::string name;
  ValueType type = ValueType::kString;

  bool operator==(const Attribute& other) const {
    return name == other.name && type == other.type;
  }
};

/// An ordered attribute list with name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attrs) : attrs_(std::move(attrs)) {}

  size_t size() const { return attrs_.size(); }
  bool empty() const { return attrs_.empty(); }
  const Attribute& attr(size_t i) const { return attrs_[i]; }
  const std::vector<Attribute>& attrs() const { return attrs_; }

  /// Index of the attribute with the given name (case-insensitive);
  /// nullopt when absent.
  std::optional<size_t> IndexOf(std::string_view name) const;

  /// Like IndexOf but returns a Status when the attribute is missing.
  Result<size_t> Resolve(std::string_view name) const;

  /// Appends an attribute; fails on duplicate name.
  Status Add(Attribute attr);

  /// Schema of the concatenation R × S; duplicate names from the right
  /// side are prefixed with `right_prefix` ("S." style disambiguation).
  static Schema Concat(const Schema& left, const Schema& right,
                       const std::string& right_prefix);

  /// Sub-schema with the given attribute indexes, in order.
  Schema Project(const std::vector<size_t>& idxs) const;

  bool operator==(const Schema& other) const { return attrs_ == other.attrs_; }

  /// "(name TYPE, ...)" rendering for error messages and EXPLAIN.
  std::string ToString() const;

 private:
  std::vector<Attribute> attrs_;
};

}  // namespace maybms

#endif  // MAYBMS_STORAGE_SCHEMA_H_
