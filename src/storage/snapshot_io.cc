#include "storage/snapshot_io.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <istream>
#include <ostream>

#include "common/hash.h"
#include "common/string_util.h"
#include "storage/value_pool.h"

namespace maybms {

namespace {

constexpr uint32_t kUnsetLocalId = UINT32_MAX;

/// A short read is either honest truncation (EOF: a torn file — a parse
/// error) or an operating-system read failure (badbit: surface errno so
/// the operator sees the disk problem, not a "corrupt snapshot").
Status ShortReadStatus(const std::istream& in, const std::string& what) {
  if (in.bad()) {
    const int err = errno;
    return Status::IOError(StrFormat("read failure in %s: %s (errno %d)",
                                     what.c_str(), std::strerror(err), err));
  }
  return Status::ParseError("truncated " + what);
}

}  // namespace

std::string SnapshotTagName(uint32_t tag) {
  std::string out;
  for (int i = 0; i < 4; ++i) {
    char c = static_cast<char>((tag >> (8 * i)) & 0xff);
    out += (c >= 0x20 && c < 0x7f) ? c : '?';
  }
  return out;
}

void PutLenString(std::string* out, std::string_view s) {
  PutPod(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

Status WriteSnapshotSection(std::ostream& out, uint32_t tag,
                            std::string_view payload) {
  std::string header;
  header.reserve(4 + 8 + 8);
  PutPod(&header, tag);
  PutPod(&header, static_cast<uint64_t>(payload.size()));
  PutPod(&header, HashBytes(payload.data(), payload.size()));
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!out.good()) return Status::Internal("stream write failure");
  return Status::OK();
}

Result<std::string_view> SnapshotCursor::ReadBytes(size_t len) {
  if (len > remaining()) {
    return Status::ParseError("snapshot payload truncated");
  }
  std::string_view v = p_.substr(pos_, len);
  pos_ += len;
  return v;
}

Result<std::string> SnapshotCursor::ReadLenString() {
  MAYBMS_ASSIGN_OR_RETURN(uint32_t len, Read<uint32_t>());
  MAYBMS_ASSIGN_OR_RETURN(std::string_view bytes, ReadBytes(len));
  return std::string(bytes);
}

uint32_t SnapshotStringTable::IdForContent(std::string_view s) {
  auto [it, inserted] =
      by_content_.try_emplace(s, static_cast<uint32_t>(entries_.size()));
  if (inserted) entries_.push_back(s);
  return it->second;
}

uint32_t SnapshotStringTable::IdForGlobal(uint32_t global_id) {
  if (global_id < by_global_.size() &&
      by_global_[global_id] != kUnsetLocalId) {
    return by_global_[global_id];
  }
  uint32_t local = IdForContent(ValuePool::Global().Get(global_id));
  if (global_id >= by_global_.size()) {
    by_global_.resize(global_id + 1, kUnsetLocalId);
  }
  by_global_[global_id] = local;
  return local;
}

std::string SnapshotStringTable::Serialize() const {
  std::string out;
  PutPod(&out, static_cast<uint32_t>(entries_.size()));
  uint64_t blob_len = 0;
  for (std::string_view s : entries_) blob_len += s.size();
  PutPod(&out, blob_len);
  uint64_t off = 0;
  for (std::string_view s : entries_) {
    PutPod(&out, off);
    off += s.size();
  }
  PutPod(&out, off);  // final sentinel offset == blob_len
  for (std::string_view s : entries_) out.append(s.data(), s.size());
  return out;
}

Result<std::vector<uint32_t>> SnapshotStringTable::Restore(
    std::string_view payload) {
  SnapshotCursor cur(payload);
  MAYBMS_ASSIGN_OR_RETURN(uint32_t count, cur.Read<uint32_t>());
  MAYBMS_ASSIGN_OR_RETURN(uint64_t blob_len, cur.Read<uint64_t>());
  std::vector<uint64_t> offsets;
  MAYBMS_RETURN_IF_ERROR(cur.ReadArray(static_cast<size_t>(count) + 1,
                                       &offsets));
  MAYBMS_ASSIGN_OR_RETURN(std::string_view blob,
                          cur.ReadBytes(static_cast<size_t>(blob_len)));
  if (!cur.AtEnd()) {
    return Status::ParseError("trailing bytes after snapshot string table");
  }
  if (offsets.back() != blob_len) {
    return Status::ParseError("snapshot string table offsets inconsistent");
  }
  std::vector<uint32_t> local_to_global(count);
  ValuePool& pool = ValuePool::Global();
  for (uint32_t i = 0; i < count; ++i) {
    if (offsets[i] > offsets[i + 1]) {
      return Status::ParseError("snapshot string table offsets not sorted");
    }
    local_to_global[i] = pool.Intern(blob.substr(
        static_cast<size_t>(offsets[i]),
        static_cast<size_t>(offsets[i + 1] - offsets[i])));
  }
  return local_to_global;
}

Result<SnapshotSection> ReadSnapshotSection(std::istream& in) {
  char header[4 + 8 + 8];
  in.read(header, sizeof(header));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(header))) {
    return ShortReadStatus(in, "snapshot section header");
  }
  SnapshotSection section;
  uint64_t len = 0, checksum = 0;
  std::memcpy(&section.tag, header, 4);
  std::memcpy(&len, header + 4, 8);
  std::memcpy(&checksum, header + 12, 8);
  // Chunked read: allocation tracks the bytes actually present, so a
  // corrupted length cannot request terabytes up front.
  constexpr uint64_t kChunk = 1 << 20;
  uint64_t got = 0;
  std::string& payload = section.payload;
  while (got < len) {
    size_t want = static_cast<size_t>(std::min(kChunk, len - got));
    size_t old = payload.size();
    payload.resize(old + want);
    in.read(payload.data() + old, static_cast<std::streamsize>(want));
    size_t n = static_cast<size_t>(in.gcount());
    if (n < want) {
      return ShortReadStatus(
          in, StrFormat("snapshot section %s: expected %llu payload bytes",
                        SnapshotTagName(section.tag).c_str(),
                        static_cast<unsigned long long>(len)));
    }
    got += n;
  }
  if (HashBytes(payload.data(), payload.size()) != checksum) {
    return Status::ParseError(
        StrFormat("snapshot section %s failed checksum verification",
                  SnapshotTagName(section.tag).c_str()));
  }
  return section;
}

}  // namespace maybms
