// PackedValue: the trivially-copyable cell representation of the columnar
// component store. One tag byte plus an 8-byte payload:
//
//   kNull/kBottom  payload unused
//   kBool          payload 0/1
//   kInt           int64 payload
//   kDouble        double payload (bit-copied)
//   kString        32-bit ValuePool id
//
// Equality, ordering and hashing agree exactly with Value (mixed int /
// double numerics compare on the real line; NaN is a single equivalence
// class ordered after all numbers; +0.0 == -0.0). Strings compare and
// hash by pool id, which the interning invariant makes equivalent to
// content comparison — and O(1).
#ifndef MAYBMS_STORAGE_PACKED_VALUE_H_
#define MAYBMS_STORAGE_PACKED_VALUE_H_

#include <cmath>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "common/hash.h"
#include "storage/value.h"
#include "storage/value_pool.h"

namespace maybms {

enum class PackedTag : uint8_t {
  kNull = 0,
  kBottom = 1,
  kBool = 2,
  kInt = 3,
  kDouble = 4,
  kString = 5,
};

class PackedValue {
 public:
  constexpr PackedValue() : payload_(0), tag_(PackedTag::kNull) {}

  static constexpr PackedValue Null() { return PackedValue(); }
  static constexpr PackedValue Bottom() {
    return PackedValue(PackedTag::kBottom, 0);
  }
  static constexpr PackedValue Bool(bool b) {
    return PackedValue(PackedTag::kBool, b ? 1 : 0);
  }
  static constexpr PackedValue Int(int64_t i) {
    return PackedValue(PackedTag::kInt, static_cast<uint64_t>(i));
  }
  static PackedValue Double(double d) {
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(d));
    return PackedValue(PackedTag::kDouble, bits);
  }
  /// Interns `s` in the global ValuePool.
  static PackedValue String(std::string_view s) {
    return PackedValue(PackedTag::kString, ValuePool::Global().Intern(s));
  }
  static constexpr PackedValue StringId(uint32_t id) {
    return PackedValue(PackedTag::kString, id);
  }

  /// Packs a Value (interning strings).
  static PackedValue FromValue(const Value& v);

  /// Unpacks to a Value (materializes string content from the pool).
  Value ToValue() const;

  PackedTag tag() const { return tag_; }
  bool is_null() const { return tag_ == PackedTag::kNull; }
  bool is_bottom() const { return tag_ == PackedTag::kBottom; }
  bool is_bool() const { return tag_ == PackedTag::kBool; }
  bool is_int() const { return tag_ == PackedTag::kInt; }
  bool is_double() const { return tag_ == PackedTag::kDouble; }
  bool is_string() const { return tag_ == PackedTag::kString; }
  bool is_numeric() const { return is_int() || is_double(); }

  bool as_bool() const { return payload_ != 0; }
  int64_t as_int() const { return static_cast<int64_t>(payload_); }
  double as_double() const {
    double d;
    std::memcpy(&d, &payload_, sizeof(d));
    return d;
  }
  uint32_t string_id() const { return static_cast<uint32_t>(payload_); }
  const std::string& as_string() const {
    return ValuePool::Global().Get(string_id());
  }

  /// Numeric view: int promoted to double. Pre: is_numeric().
  double NumericValue() const {
    return is_int() ? static_cast<double>(as_int()) : as_double();
  }

  /// Structural equality, consistent with Value::operator==.
  bool operator==(const PackedValue& other) const {
    if (tag_ == other.tag_) {
      if (payload_ == other.payload_) {
        // Same tag + same bits: equal, except distinct NaN payloads, which
        // are handled below, and the -0.0/+0.0 pair, which differs in bits.
        if (tag_ != PackedTag::kDouble) return true;
      }
      if (tag_ != PackedTag::kDouble) return false;
    } else if (!(is_numeric() && other.is_numeric())) {
      return false;
    }
    // Mixed numerics or doubles with differing bits.
    if (is_int() && other.is_int()) return as_int() == other.as_int();
    double a = NumericValue(), b = other.NumericValue();
    if (std::isnan(a) || std::isnan(b)) return std::isnan(a) && std::isnan(b);
    return a == b;
  }
  bool operator!=(const PackedValue& other) const { return !(*this == other); }

  /// Hash consistent with operator== (numerics hash by canonicalized
  /// double image, strings by pool id).
  size_t Hash() const {
    size_t seed = KindRank();
    switch (tag_) {
      case PackedTag::kNull:
      case PackedTag::kBottom:
        break;
      case PackedTag::kBool:
        HashCombine(&seed, payload_ != 0 ? 1u : 2u);
        break;
      case PackedTag::kInt:
      case PackedTag::kDouble: {
        double d = NumericValue();
        uint64_t bits;
        std::memcpy(&bits, &d, sizeof(d));
        if (d == 0.0) bits = 0;                      // +0/-0 collapse
        if (std::isnan(d)) bits = kCanonicalNanBits;  // NaN payload collapse
        HashCombine(&seed, static_cast<size_t>(bits));
        break;
      }
      case PackedTag::kString:
        HashCombine(&seed, static_cast<size_t>(string_id()));
        break;
    }
    return seed;
  }

  /// -1/0/+1 in the Value total order (strings are compared by content,
  /// not id — ordering is a cold-path operation).
  int Compare(const PackedValue& other) const;

  static constexpr uint64_t kCanonicalNanBits = 0x7ff8000000000000ULL;

 private:
  constexpr PackedValue(PackedTag tag, uint64_t payload)
      : payload_(payload), tag_(tag) {}

  /// Rank in the total order: BOTTOM < NULL < bool < numeric < string;
  /// matches Value's KindRank so hashes agree across representations for
  /// non-string values.
  uint32_t KindRank() const {
    switch (tag_) {
      case PackedTag::kBottom:
        return 0;
      case PackedTag::kNull:
        return 1;
      case PackedTag::kBool:
        return 2;
      case PackedTag::kInt:
      case PackedTag::kDouble:
        return 3;
      case PackedTag::kString:
        return 4;
    }
    return 5;
  }

  uint64_t payload_;
  PackedTag tag_;
};

static_assert(std::is_trivially_copyable_v<PackedValue>,
              "PackedValue must be memcpy-able for columnar storage");
static_assert(sizeof(PackedValue) == 16,
              "tag + 8-byte payload, padded to alignment");

struct PackedValueHash {
  size_t operator()(const PackedValue& v) const { return v.Hash(); }
};

}  // namespace maybms

#endif  // MAYBMS_STORAGE_PACKED_VALUE_H_
