#include "storage/value_pool.h"

#include "common/logging.h"

namespace maybms {

ValuePool& ValuePool::Global() {
  static ValuePool* pool = new ValuePool();  // leaked: lives forever
  return *pool;
}

uint32_t ValuePool::Intern(std::string_view s) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  MAYBMS_CHECK(strings_.size() < UINT32_MAX) << "value pool exhausted";
  strings_.emplace_back(s);
  uint32_t id = static_cast<uint32_t>(strings_.size() - 1);
  // The key views the deque-owned string, which never moves.
  index_.emplace(std::string_view(strings_.back()), id);
  return id;
}

const std::string& ValuePool::Get(uint32_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  MAYBMS_DCHECK(id < strings_.size());
  return strings_[id];
}

size_t ValuePool::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return strings_.size();
}

}  // namespace maybms
