// Relation: a materialized bag of tuples over a Schema. This is the
// "certain" (single-world) relation used by the conventional engine and
// as the payload of each possible world.
#ifndef MAYBMS_STORAGE_RELATION_H_
#define MAYBMS_STORAGE_RELATION_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace maybms {

/// A row: values aligned with a Schema.
using Tuple = std::vector<Value>;

/// Table statistics: row count plus one distinct-value count per column
/// (NULL counts as one distinct value; equality is Value equality, so
/// mixed int/double numerics and ±0 collapse as everywhere else). The
/// certain-relation half of the statistics layer, exposed through
/// Catalog::GetStats; the plan optimizer's cost model estimates WSD
/// scans from template tuples plus the Component-level counterpart
/// (ComponentStats), which shares these semantics.
struct RelationStats {
  uint64_t rows = 0;
  std::vector<uint64_t> distinct;  ///< aligned with the schema
};

/// Hash of a whole tuple, consistent with Value equality.
size_t TupleHash(const Tuple& t);

/// Lexicographic three-way comparison in the Value total order.
int TupleCompare(const Tuple& a, const Tuple& b);

/// A named, materialized bag of tuples.
class Relation {
 public:
  Relation() = default;
  Relation(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  // Copies read the stats cache atomically: a concurrent reader may be
  // CAS-installing stats on the source (GetStats is const and
  // thread-safe). Moves require exclusive access, like mutation.
  Relation(const Relation& o)
      : name_(o.name_),
        schema_(o.schema_),
        rows_(o.rows_),
        stats_(std::atomic_load(&o.stats_)) {}
  Relation& operator=(const Relation& o) {
    if (this == &o) return *this;
    name_ = o.name_;
    schema_ = o.schema_;
    rows_ = o.rows_;
    stats_ = std::atomic_load(&o.stats_);
    return *this;
  }
  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  const Schema& schema() const { return schema_; }
  size_t NumRows() const { return rows_.size(); }
  size_t NumCols() const { return schema_.size(); }
  bool empty() const { return rows_.empty(); }

  const Tuple& row(size_t i) const { return rows_[i]; }
  Tuple& mutable_row(size_t i) {
    InvalidateStats();
    return rows_[i];
  }
  const std::vector<Tuple>& rows() const { return rows_; }

  /// Appends after checking arity and types (NULL fits any type).
  Status Append(Tuple t);

  /// Appends without validation; used by operators that construct
  /// well-typed tuples internally.
  void AppendUnchecked(Tuple t) {
    InvalidateStats();
    rows_.push_back(std::move(t));
  }

  void Reserve(size_t n) { rows_.reserve(n); }
  void Clear() {
    InvalidateStats();
    rows_.clear();
  }

  /// Row/distinct-count statistics, computed on first access and cached
  /// until the next mutation (Append/AppendUnchecked/mutable_row/Clear).
  /// Safe to call from concurrent readers: the cache is published by
  /// compare-and-swap, so racing callers agree on one result object.
  /// Mutation still requires exclusive access, like every non-const
  /// method.
  const RelationStats& GetStats() const;

  /// True when GetStats() would return a cached result without
  /// recomputing (exposed so tests can assert invalidation).
  bool HasCachedStats() const { return std::atomic_load(&stats_) != nullptr; }

  /// Sorts rows lexicographically; canonical form for comparisons in tests.
  void SortRows();

  /// Bag equality: same schema types and same multiset of rows.
  bool BagEquals(const Relation& other) const;

  /// Bytes in the flat serialized model (sum of value sizes + per-row
  /// 4-byte header). The storage experiment measures this for the
  /// original relation and for WSD component tables with the same model.
  uint64_t SerializedSize() const;

  /// Bytes this relation would occupy columnar + interned: one 16-byte
  /// packed cell per value, each distinct string stored once. The
  /// counterpart of WsdDb::InternedSize for the certain baseline of the
  /// storage experiment.
  uint64_t InternedSize() const;

  /// Pretty-printed table (up to `max_rows` rows) for examples/REPL.
  std::string ToString(size_t max_rows = 50) const;

 private:
  void InvalidateStats() {
    std::atomic_store(&stats_, std::shared_ptr<const RelationStats>());
  }

  std::string name_;
  Schema schema_;
  std::vector<Tuple> rows_;
  /// Lazily-computed statistics; reset by every mutating accessor and
  /// published by CAS so concurrent const readers never race.
  mutable std::shared_ptr<const RelationStats> stats_;
};

/// Checks a value against an attribute type; NULL always fits, BOTTOM never
/// fits a certain relation.
bool ValueFitsType(const Value& v, ValueType t);

}  // namespace maybms

#endif  // MAYBMS_STORAGE_RELATION_H_
