// Read-only memory-mapped file: the byte-level substrate of mapped
// snapshot loading. Opens a file, maps it PROT_READ/MAP_PRIVATE, and
// exposes the bytes as a string_view whose lifetime is tied to the
// object. Move-only RAII; all failures surface as Status (no
// exceptions, no crashes on missing/empty files).
#ifndef MAYBMS_STORAGE_MMAP_FILE_H_
#define MAYBMS_STORAGE_MMAP_FILE_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace maybms {

/// A read-only mmap of an entire file.
///
/// The mapping stays valid for the lifetime of the object (moves
/// included); views handed out by `bytes()` dangle once the object is
/// destroyed. Empty files map to an empty view without calling mmap.
class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile();

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;

  /// Maps `path` read-only. Fails with NotFound when the file does not
  /// exist and InvalidArgument for other OS-level errors.
  static Result<MmapFile> Open(const std::string& path);

  /// The mapped bytes; empty when nothing is mapped.
  std::string_view bytes() const {
    return std::string_view(static_cast<const char*>(data_), size_);
  }
  size_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  void Reset();

  void* data_ = nullptr;  // nullptr for empty or unopened files
  size_t size_ = 0;
  std::string path_;
};

}  // namespace maybms

#endif  // MAYBMS_STORAGE_MMAP_FILE_H_
