#include "storage/schema.h"

#include "common/string_util.h"

namespace maybms {

std::optional<size_t> Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (EqualsIgnoreCase(attrs_[i].name, name)) return i;
  }
  return std::nullopt;
}

Result<size_t> Schema::Resolve(std::string_view name) const {
  auto idx = IndexOf(name);
  if (!idx) {
    return Status::NotFound(StrFormat("attribute '%.*s' not in schema %s",
                                      static_cast<int>(name.size()),
                                      name.data(), ToString().c_str()));
  }
  return *idx;
}

Status Schema::Add(Attribute attr) {
  if (IndexOf(attr.name)) {
    return Status::AlreadyExists("duplicate attribute " + attr.name);
  }
  attrs_.push_back(std::move(attr));
  return Status::OK();
}

Schema Schema::Concat(const Schema& left, const Schema& right,
                      const std::string& right_prefix) {
  Schema out = left;
  for (const auto& a : right.attrs()) {
    Attribute copy = a;
    if (out.IndexOf(copy.name)) {
      copy.name = right_prefix + "." + copy.name;
      // If even the prefixed name collides, append an index suffix.
      int k = 2;
      while (out.IndexOf(copy.name)) {
        copy.name = right_prefix + "." + a.name + "_" + std::to_string(k++);
      }
    }
    Status st = out.Add(std::move(copy));
    (void)st;  // cannot fail: collision handled above
  }
  return out;
}

Schema Schema::Project(const std::vector<size_t>& idxs) const {
  std::vector<Attribute> attrs;
  attrs.reserve(idxs.size());
  for (size_t i : idxs) attrs.push_back(attrs_[i]);
  // Projection may duplicate names (e.g. SELECT a, a): disambiguate.
  Schema out;
  for (auto& a : attrs) {
    Attribute copy = a;
    int k = 2;
    while (out.IndexOf(copy.name)) {
      copy.name = a.name + "_" + std::to_string(k++);
    }
    Status st = out.Add(std::move(copy));
    (void)st;
  }
  return out;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (i) out += ", ";
    out += attrs_[i].name;
    out += " ";
    out += ValueTypeToString(attrs_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace maybms
