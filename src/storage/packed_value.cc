#include "storage/packed_value.h"

namespace maybms {

PackedValue PackedValue::FromValue(const Value& v) {
  if (v.is_null()) return Null();
  if (v.is_bottom()) return Bottom();
  if (v.is_bool()) return Bool(v.as_bool());
  if (v.is_int()) return Int(v.as_int());
  if (v.is_double()) return Double(v.as_double());
  return String(v.as_string());
}

Value PackedValue::ToValue() const {
  switch (tag_) {
    case PackedTag::kNull:
      return Value::Null();
    case PackedTag::kBottom:
      return Value::Bottom();
    case PackedTag::kBool:
      return Value::Bool(as_bool());
    case PackedTag::kInt:
      return Value::Int(as_int());
    case PackedTag::kDouble:
      return Value::Double(as_double());
    case PackedTag::kString:
      return Value::String(as_string());
  }
  return Value::Null();
}

int PackedValue::Compare(const PackedValue& other) const {
  uint32_t ra = KindRank(), rb = other.KindRank();
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ra) {
    case 0:
    case 1:
      return 0;
    case 2:
      return static_cast<int>(as_bool()) - static_cast<int>(other.as_bool());
    case 3: {
      if (is_int() && other.is_int()) {
        int64_t a = as_int(), b = other.as_int();
        return a < b ? -1 : (a > b ? 1 : 0);
      }
      double a = NumericValue(), b = other.NumericValue();
      bool na = std::isnan(a), nb = std::isnan(b);
      if (na || nb) return na == nb ? 0 : (na ? 1 : -1);  // NaN sorts last
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    default: {
      if (string_id() == other.string_id()) return 0;
      int c = as_string().compare(other.as_string());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
}

}  // namespace maybms
