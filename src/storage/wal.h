// Write-ahead log of logical mutations, the durability half of the
// snapshot + WAL pair (docs/SNAPSHOT_FORMAT.md has the normative spec).
//
// A WAL is bound to one snapshot file via a content fingerprint stored
// in its header: recovery replays the log only when the fingerprint
// matches the snapshot actually on disk, so a log left behind by an
// older snapshot generation is discarded instead of double-applied.
// Records are sequence-numbered (consecutive LSNs from the header's
// base) and individually checksummed; the reader accepts the longest
// valid prefix and reports the torn tail, which the appender truncates
// before continuing — the standard torn-write repair.
#ifndef MAYBMS_STORAGE_WAL_H_
#define MAYBMS_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "storage/io_env.h"

namespace maybms {
namespace wal {

/// First bytes of every WAL file.
constexpr char kWalMagic[] = "MAYBMS-WAL 1\n";

/// Canonical log location for a snapshot: `<snapshot>.wal`, in the same
/// directory so the atomic-rename + dir-sync ordering arguments hold.
inline std::string WalPathFor(const std::string& snapshot_path) {
  return snapshot_path + ".wal";
}

enum class RecordType : uint8_t {
  kStatement = 1,  ///< payload = the SQL text of one mutating statement
  kDelta = 2,      ///< payload = a serialized DeltaBatch (core/delta.h)
};

struct WalRecord {
  uint64_t lsn = 0;
  RecordType type = RecordType::kStatement;
  std::string payload;
};

/// Result of scanning a WAL file.
struct WalContents {
  /// False when the file is missing a valid header (wrong magic, bad
  /// header checksum, truncated) — treat as "no log".
  bool usable = false;
  uint64_t snapshot_fingerprint = 0;
  uint64_t base_lsn = 1;
  std::vector<WalRecord> records;  ///< the longest valid prefix
  uint64_t valid_bytes = 0;        ///< byte length of that prefix
  bool torn_tail = false;          ///< bytes past the prefix were present
};

/// Content fingerprint binding a WAL to a snapshot file. Hashes the size
/// plus the full bytes of small files; large files are sampled in fixed
/// stripes so a mapped open does not have to page in the whole snapshot.
/// (Sampling is sound here: the engine always resets the WAL when it
/// writes a snapshot, so the fingerprint only arbitrates "is this log
/// from this exact save?", not general integrity — the per-section
/// checksums do that.)
uint64_t SnapshotFingerprint(std::string_view bytes);

/// Scans the WAL at `path`. I/O errors (including NotFound) surface as
/// statuses; a present-but-corrupt file comes back usable=false.
Result<WalContents> ReadWal(Env* env, const std::string& path);

/// Appender. Create() atomically replaces the log with a fresh header;
/// OpenForAppend() continues an existing log after tail repair. Every
/// Append is fsynced before it returns — a record handed back to the
/// caller is durable. After any append failure the writer is poisoned
/// (the on-disk tail is suspect) and refuses further appends until the
/// log is recreated by the next checkpoint.
class WalWriter {
 public:
  static Result<WalWriter> Create(Env* env, const std::string& path,
                                  uint64_t snapshot_fingerprint,
                                  uint64_t base_lsn);
  static Result<WalWriter> OpenForAppend(Env* env, const std::string& path,
                                         const WalContents& contents);

  WalWriter(WalWriter&&) = default;
  WalWriter& operator=(WalWriter&&) = default;

  /// Appends and fsyncs one record; returns its LSN.
  Result<uint64_t> Append(RecordType type, std::string_view payload);

  const std::string& path() const { return path_; }
  uint64_t next_lsn() const { return next_lsn_; }
  /// Records appended or recovered since the header's base LSN.
  uint64_t record_count() const { return next_lsn_ - base_lsn_; }
  bool poisoned() const { return poisoned_; }

 private:
  WalWriter(Env* env, std::string path, std::unique_ptr<WritableFile> file,
            uint64_t base_lsn, uint64_t next_lsn)
      : env_(env),
        path_(std::move(path)),
        file_(std::move(file)),
        base_lsn_(base_lsn),
        next_lsn_(next_lsn) {}

  Env* env_;
  std::string path_;
  std::unique_ptr<WritableFile> file_;
  uint64_t base_lsn_ = 1;
  uint64_t next_lsn_ = 1;
  bool poisoned_ = false;
};

}  // namespace wal
}  // namespace maybms

#endif  // MAYBMS_STORAGE_WAL_H_
