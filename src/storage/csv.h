// CSV import/export for certain relations; used by examples and by the
// workload generator to persist generated census extracts.
#ifndef MAYBMS_STORAGE_CSV_H_
#define MAYBMS_STORAGE_CSV_H_

#include <string>

#include "common/result.h"
#include "storage/relation.h"

namespace maybms {

/// Writes `rel` as a CSV file with a header row. Strings are quoted with
/// double quotes; embedded quotes are doubled.
Status WriteCsv(const Relation& rel, const std::string& path);

/// Reads a CSV file with a header row into a relation with the given
/// schema. Values are parsed per attribute type; empty fields become NULL.
Result<Relation> ReadCsv(const std::string& path, std::string name,
                         Schema schema);

/// Parses one CSV line into raw string fields (handles quoting).
std::vector<std::string> ParseCsvLine(const std::string& line);

/// Parses a raw field per the target type; empty string is NULL.
Result<Value> ParseValueAs(const std::string& raw, ValueType type);

}  // namespace maybms

#endif  // MAYBMS_STORAGE_CSV_H_
