#include "storage/mmap_file.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/string_util.h"

namespace maybms {

MmapFile::~MmapFile() { Reset(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(other.data_), size_(other.size_), path_(std::move(other.path_)) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    Reset();
    data_ = other.data_;
    size_ = other.size_;
    path_ = std::move(other.path_);
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void MmapFile::Reset() {
  if (data_ != nullptr) {
    munmap(data_, size_);
    data_ = nullptr;
  }
  size_ = 0;
}

Result<MmapFile> MmapFile::Open(const std::string& path) {
  int fd;
  do {
    fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    int err = errno;
    std::string msg = StrFormat("mmap open '%s': %s (errno %d)", path.c_str(),
                                std::strerror(err), err);
    if (err == ENOENT) return Status::NotFound(std::move(msg));
    return Status::InvalidArgument(std::move(msg));
  }
  struct stat st;
  int rc;
  do {
    rc = fstat(fd, &st);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    int err = errno;
    ::close(fd);
    return Status::InvalidArgument(
        StrFormat("mmap stat '%s': %s (errno %d)", path.c_str(),
                  std::strerror(err), err));
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::InvalidArgument(
        StrFormat("mmap '%s': not a regular file", path.c_str()));
  }
  MmapFile f;
  f.path_ = path;
  f.size_ = static_cast<size_t>(st.st_size);
  if (f.size_ > 0) {
    void* p = mmap(nullptr, f.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (p == MAP_FAILED) {
      int err = errno;
      ::close(fd);
      return Status::InvalidArgument(
          StrFormat("mmap map '%s': %s (errno %d)", path.c_str(),
                    std::strerror(err), err));
    }
    f.data_ = p;
  }
  // The mapping holds its own reference to the file; the descriptor is
  // no longer needed.
  ::close(fd);
  return f;
}

}  // namespace maybms
