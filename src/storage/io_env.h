// Injectable file-I/O environment: the seam between the durability
// subsystem (atomic snapshots, the write-ahead log, mapped loads) and
// the operating system.
//
// Production code talks to Env::Default(), a POSIX implementation with
// EINTR retry and errno context in every error message. Tests talk to a
// FaultInjectingEnv — an in-memory filesystem with explicit durability
// semantics: appended bytes are volatile until Sync(), namespace
// operations (create/rename/remove/truncate) are volatile until
// SyncDir(), and Crash()/Recover() discards exactly the volatile state
// (tearing the final un-synced write and applying a random subset of
// un-synced namespace operations, the way a real kernel may persist
// metadata out of order). It can also fail the Nth I/O call outright,
// inject transient (retryable) faults, and flip individual durable
// bytes to exercise checksum paths.
#ifndef MAYBMS_STORAGE_IO_ENV_H_
#define MAYBMS_STORAGE_IO_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"

namespace maybms {

/// An open file being written sequentially (the WAL, snapshot temps).
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(std::string_view data) = 0;
  /// Makes every appended byte durable (fdatasync). Does NOT make the
  /// file's directory entry durable — that is Env::SyncDir's job.
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// A whole file opened for random-access reads (mapped snapshots). The
/// view stays valid for the lifetime of the object.
class RandomAccessImage {
 public:
  virtual ~RandomAccessImage() = default;
  virtual std::string_view bytes() const = 0;
  virtual const std::string& path() const = 0;
};

/// The injectable filesystem interface. All paths are plain strings;
/// implementations are not required to canonicalize them, so callers
/// must use one spelling per file.
class Env {
 public:
  virtual ~Env() = default;

  /// The production POSIX environment (a process-wide singleton).
  static Env* Default();

  /// Opens `path` for writing: truncates (creating if needed) when
  /// `truncate`, else appends to the existing file.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) = 0;

  /// Reads the whole file into a string.
  virtual Result<std::string> ReadFileToString(const std::string& path) = 0;

  /// Opens the whole file for random-access reads (mmap in production).
  virtual Result<std::unique_ptr<RandomAccessImage>> MapFile(
      const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;
  virtual Result<uint64_t> FileSize(const std::string& path) = 0;
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;

  /// Makes the directory entries of `dir` durable (fsync of the
  /// directory). Pass the directory itself, not a file inside it.
  virtual Status SyncDir(const std::string& dir) = 0;

  /// Backoff hook for transient-fault retry: sleeps in production, is a
  /// no-op in tests (keeps fault-injection sweeps fast).
  virtual void BackoffBeforeRetry(int attempt);
};

/// Directory part of `path` ("." when it has none).
std::string ParentDir(const std::string& path);

/// True for errors worth retrying with backoff (kUnavailable).
inline bool IsRetryable(const Status& s) {
  return s.code() == StatusCode::kUnavailable;
}

/// Runs `fn` up to `max_attempts` times while it fails with a retryable
/// (transient) error, backing off between attempts; returns the first
/// non-retryable status or the last failure.
template <typename Fn>
Status WithRetry(Env* env, int max_attempts, Fn&& fn) {
  Status st;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) env->BackoffBeforeRetry(attempt);
    st = fn();
    if (!IsRetryable(st)) return st;
  }
  return st;
}

/// Atomically replaces `path` with `contents`: writes `path`.tmp, syncs
/// it, renames over `path`, and syncs the parent directory, so a crash
/// at any point leaves either the old file or the new one — never a
/// torn mix. Transient faults are retried with bounded backoff.
Status AtomicWriteFile(Env* env, const std::string& path,
                       std::string_view contents);

// --- fault injection --------------------------------------------------------

/// Which injected fault the FaultInjectingEnv raises when a scheduled
/// operation index comes up.
struct FaultPlan {
  /// Fail the I/O call with this 0-based operation index. -1 = never.
  int64_t fail_at_op = -1;
  /// Whether that failure is transient (kUnavailable — succeeds when the
  /// caller retries) or hard (kIOError — keeps failing).
  bool fail_transient = false;
  /// Enter the "crashed" state at this operation index: the call and
  /// every later one fail with kIOError until Recover(). -1 = never.
  int64_t crash_at_op = -1;
};

/// In-memory filesystem with explicit durability semantics; see the
/// file comment. Not thread-safe (one test driver at a time).
class FaultInjectingEnv : public Env {
 public:
  FaultInjectingEnv() = default;

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  Result<std::string> ReadFileToString(const std::string& path) override;
  Result<std::unique_ptr<RandomAccessImage>> MapFile(
      const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  Status SyncDir(const std::string& dir) override;
  void BackoffBeforeRetry(int attempt) override;

  /// Installs the fault plan; operation counting continues (the indices
  /// are absolute, compared against op_count()).
  void set_plan(const FaultPlan& plan) { plan_ = plan; }
  /// I/O calls observed so far (ticked whether or not they failed).
  int64_t op_count() const { return op_count_; }
  /// True once crash_at_op has triggered (and until Recover()).
  bool crashed() const { return crashed_; }
  /// Number of transparent retries callers performed after transient
  /// faults (for asserting the backoff path ran).
  int64_t transient_retries_observed() const { return transient_retries_; }

  /// Simulates the machine dying right now: every open handle becomes
  /// invalid and subsequent calls fail with kIOError until Recover().
  void Crash() { crashed_ = true; }

  /// Computes the post-crash filesystem and leaves the "crashed" state:
  /// synced bytes of surviving files are kept; un-synced appended bytes
  /// are torn to a random prefix; a random subset of the un-synced
  /// namespace operations is applied (metadata may persist out of
  /// order); everything else is lost.
  void Recover(Rng* rng);

  /// Flips one byte of the file's durable content (corruption injection
  /// for checksum paths). The offset must be in range.
  Status MutateFileByte(const std::string& path, uint64_t offset);

  /// Current visible content of `path` (synced + unsynced), for
  /// assertions. Fails with kNotFound when absent.
  Result<std::string> VisibleContent(const std::string& path);

 private:
  friend class FaultWritableFile;

  struct Inode {
    std::string synced;    ///< durable across Crash() (if a name survives)
    std::string unsynced;  ///< appended since the last Sync()
  };
  using InodePtr = std::shared_ptr<Inode>;

  /// One not-yet-dir-synced namespace mutation.
  struct PendingOp {
    enum class Kind { kLink, kUnlink };
    Kind kind = Kind::kLink;
    std::string path;
    InodePtr inode;  ///< kLink target
  };

  /// Ticks the op counter and raises any scheduled fault. `what` and
  /// `path` go into the error message.
  Status OnOp(const char* what, const std::string& path);
  /// Marks the namespace entry `path` -> `inode` (or removal) pending
  /// until the parent directory is synced.
  void AddPending(PendingOp::Kind kind, const std::string& path,
                  InodePtr inode);

  std::map<std::string, InodePtr> live_;     ///< what operations see now
  std::map<std::string, InodePtr> durable_;  ///< namespace after dir syncs
  std::vector<PendingOp> pending_;           ///< volatile namespace ops
  FaultPlan plan_;
  int64_t op_count_ = 0;
  int64_t transient_retries_ = 0;
  int64_t last_failed_op_ = -1;
  bool crashed_ = false;
  /// Bumped by Recover(); open handles from an older generation fail.
  uint64_t generation_ = 0;
};

}  // namespace maybms

#endif  // MAYBMS_STORAGE_IO_ENV_H_
