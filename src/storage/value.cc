#include "storage/value.h"

#include <cmath>

#include "common/string_util.h"

namespace maybms {

std::string_view ValueTypeToString(ValueType t) {
  switch (t) {
    case ValueType::kBool:
      return "BOOL";
    case ValueType::kInt:
      return "INT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "?";
}

namespace {
// Rank in the total order: BOTTOM < NULL < bool < numeric < string.
int KindRank(const Value& v) {
  if (v.is_bottom()) return 0;
  if (v.is_null()) return 1;
  if (v.is_bool()) return 2;
  if (v.is_numeric()) return 3;
  return 4;
}
}  // namespace

bool Value::operator==(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    if (is_int() && other.is_int()) return as_int() == other.as_int();
    double a = NumericValue(), b = other.NumericValue();
    // NaN is one equivalence class under structural equality (so hashing
    // and dedup treat all NaNs as the same value); +0.0 == -0.0 already
    // holds under IEEE compare.
    if (std::isnan(a) || std::isnan(b)) return std::isnan(a) && std::isnan(b);
    return a == b;
  }
  return rep_ == other.rep_;
}

int Value::Compare(const Value& other) const {
  int ra = KindRank(*this), rb = KindRank(other);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ra) {
    case 0:
    case 1:
      return 0;  // BOTTOM == BOTTOM, NULL == NULL structurally
    case 2:
      return static_cast<int>(as_bool()) - static_cast<int>(other.as_bool());
    case 3: {
      if (is_int() && other.is_int()) {
        int64_t a = as_int(), b = other.as_int();
        return a < b ? -1 : (a > b ? 1 : 0);
      }
      double a = NumericValue(), b = other.NumericValue();
      bool na = std::isnan(a), nb = std::isnan(b);
      // NaN sorts after every number and equals itself, keeping Compare
      // a total order consistent with operator==.
      if (na || nb) return na == nb ? 0 : (na ? 1 : -1);
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    default: {
      int c = as_string().compare(other.as_string());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
}

size_t Value::Hash() const {
  size_t seed = static_cast<size_t>(KindRank(*this));
  if (is_bool()) {
    HashCombine(&seed, as_bool() ? 1u : 2u);
  } else if (is_numeric()) {
    // ints that fit exactly in double hash identically to their double image
    double d = NumericValue();
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    __builtin_memcpy(&bits, &d, sizeof(d));
    if (d == 0.0) bits = 0;  // +0/-0 collapse
    // All NaN payloads hash alike, consistent with NaN == NaN above.
    if (std::isnan(d)) bits = 0x7ff8000000000000ULL;
    HashCombine(&seed, static_cast<size_t>(bits));
  } else if (is_string()) {
    HashCombine(&seed, static_cast<size_t>(HashString(as_string())));
  }
  return seed;
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_bottom()) return "\xE2\x8A\xA5";  // UTF-8 ⊥
  if (is_bool()) return as_bool() ? "true" : "false";
  if (is_int()) return std::to_string(as_int());
  if (is_double()) {
    std::string s = StrFormat("%.6g", as_double());
    return s;
  }
  std::string out = "'";
  for (char c : as_string()) {
    if (c == '\'') out += "''";
    else out += c;
  }
  out += "'";
  return out;
}

uint64_t Value::SerializedSize() const {
  if (is_null() || is_bottom()) return 1;
  if (is_bool()) return 2;
  if (is_int() || is_double()) return 9;
  return 1 + 4 + as_string().size();
}

}  // namespace maybms
