// ValuePool: the string-interning dictionary backing PackedValue.
//
// Every distinct string stored in a component is placed in the pool once
// and referenced by a 32-bit id afterwards. Ids are dense, stable for the
// lifetime of the process, and never recycled, so two PackedValues hold
// equal strings iff their ids are equal — string equality in the hot
// paths (dedup, product, marginalization) is an integer compare.
//
// The pool is process-global (`ValuePool::Global()`): WsdDb is a value
// type with deep-copy semantics, and a shared dictionary means component
// data can move freely between databases without id remapping. The pool
// only grows; for the workloads of the paper (census attribute domains)
// the dictionary is tiny compared to the component store.
#ifndef MAYBMS_STORAGE_VALUE_POOL_H_
#define MAYBMS_STORAGE_VALUE_POOL_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace maybms {

class ValuePool {
 public:
  /// The process-wide pool used by PackedValue.
  static ValuePool& Global();

  ValuePool() = default;
  ValuePool(const ValuePool&) = delete;
  ValuePool& operator=(const ValuePool&) = delete;

  /// Returns the id of `s`, inserting it on first sight. Thread-safe.
  uint32_t Intern(std::string_view s);

  /// The string behind an id. The reference is stable forever (deque
  /// storage, entries are never erased). Pre: id came from Intern().
  const std::string& Get(uint32_t id) const;

  /// Number of distinct strings interned so far.
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::deque<std::string> strings_;                       // id -> string
  std::unordered_map<std::string_view, uint32_t> index_;  // string -> id
};

}  // namespace maybms

#endif  // MAYBMS_STORAGE_VALUE_POOL_H_
