#include "storage/catalog.h"

#include "common/string_util.h"

namespace maybms {

std::string Catalog::Key(const std::string& name) { return ToLower(name); }

Status Catalog::Create(Relation rel) {
  std::string key = Key(rel.name());
  if (relations_.count(key)) {
    return Status::AlreadyExists("relation already exists: " + rel.name());
  }
  relations_.emplace(std::move(key), std::move(rel));
  return Status::OK();
}

void Catalog::Put(Relation rel) {
  std::string key = Key(rel.name());
  relations_.insert_or_assign(std::move(key), std::move(rel));
}

Status Catalog::Drop(const std::string& name) {
  if (relations_.erase(Key(name)) == 0) {
    return Status::NotFound("relation not found: " + name);
  }
  return Status::OK();
}

bool Catalog::Contains(const std::string& name) const {
  return relations_.count(Key(name)) > 0;
}

Result<const Relation*> Catalog::Get(const std::string& name) const {
  auto it = relations_.find(Key(name));
  if (it == relations_.end()) {
    return Status::NotFound("relation not found: " + name);
  }
  return &it->second;
}

Result<Relation*> Catalog::GetMutable(const std::string& name) {
  auto it = relations_.find(Key(name));
  if (it == relations_.end()) {
    return Status::NotFound("relation not found: " + name);
  }
  return &it->second;
}

Result<const RelationStats*> Catalog::GetStats(const std::string& name) const {
  MAYBMS_ASSIGN_OR_RETURN(const Relation* rel, Get(name));
  return &rel->GetStats();
}

std::vector<std::string> Catalog::Names() const {
  std::vector<std::string> out;
  out.reserve(relations_.size());
  for (const auto& [key, rel] : relations_) out.push_back(rel.name());
  return out;
}

uint64_t Catalog::SerializedSize() const {
  uint64_t total = 0;
  for (const auto& [key, rel] : relations_) total += rel.SerializedSize();
  return total;
}

bool Catalog::Equals(const Catalog& other) const {
  if (relations_.size() != other.relations_.size()) return false;
  for (const auto& [key, rel] : relations_) {
    auto it = other.relations_.find(key);
    if (it == other.relations_.end()) return false;
    if (!rel.BagEquals(it->second)) return false;
  }
  return true;
}

}  // namespace maybms
