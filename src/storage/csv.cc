#include "storage/csv.h"

#include <cstdlib>
#include <fstream>

#include "common/string_util.h"

namespace maybms {

namespace {
std::string EscapeField(const std::string& s) {
  bool needs_quote = s.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}
}  // namespace

Status WriteCsv(const Relation& rel, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot open for write: " + path);
  const Schema& s = rel.schema();
  for (size_t c = 0; c < s.size(); ++c) {
    if (c) out << ",";
    out << EscapeField(s.attr(c).name);
  }
  out << "\n";
  for (const auto& row : rel.rows()) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) out << ",";
      const Value& v = row[c];
      if (v.is_null()) {
        // empty field
      } else if (v.is_string()) {
        out << EscapeField(v.as_string());
      } else if (v.is_bool()) {
        out << (v.as_bool() ? "true" : "false");
      } else if (v.is_int()) {
        out << v.as_int();
      } else if (v.is_double()) {
        out << StrFormat("%.17g", v.as_double());
      }
    }
    out << "\n";
  }
  return out.good() ? Status::OK()
                    : Status::Internal("write failed: " + path);
}

std::vector<std::string> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

Result<Value> ParseValueAs(const std::string& raw, ValueType type) {
  if (raw.empty()) return Value::Null();
  switch (type) {
    case ValueType::kBool: {
      if (EqualsIgnoreCase(raw, "true") || raw == "1") return Value::Bool(true);
      if (EqualsIgnoreCase(raw, "false") || raw == "0")
        return Value::Bool(false);
      return Status::ParseError("not a bool: " + raw);
    }
    case ValueType::kInt: {
      char* end = nullptr;
      long long v = strtoll(raw.c_str(), &end, 10);
      if (end == raw.c_str() || *end != '\0') {
        return Status::ParseError("not an int: " + raw);
      }
      return Value::Int(v);
    }
    case ValueType::kDouble: {
      char* end = nullptr;
      double v = strtod(raw.c_str(), &end);
      if (end == raw.c_str() || *end != '\0') {
        return Status::ParseError("not a double: " + raw);
      }
      return Value::Double(v);
    }
    case ValueType::kString:
      return Value::String(raw);
  }
  return Status::Internal("unknown type");
}

Result<Relation> ReadCsv(const std::string& path, std::string name,
                         Schema schema) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::ParseError("empty csv: " + path);
  }
  auto header = ParseCsvLine(line);
  if (header.size() != schema.size()) {
    return Status::ParseError(
        StrFormat("csv has %zu columns, schema expects %zu", header.size(),
                  schema.size()));
  }
  Relation rel(std::move(name), std::move(schema));
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto fields = ParseCsvLine(line);
    if (fields.size() != rel.schema().size()) {
      return Status::ParseError(
          StrFormat("line %zu: %zu fields, expected %zu", line_no,
                    fields.size(), rel.schema().size()));
    }
    Tuple t;
    t.reserve(fields.size());
    for (size_t c = 0; c < fields.size(); ++c) {
      auto v = ParseValueAs(fields[c], rel.schema().attr(c).type);
      if (!v.ok()) {
        return Status::ParseError(
            StrFormat("line %zu col %zu: %s", line_no, c,
                      v.status().message().c_str()));
      }
      t.push_back(std::move(v).value());
    }
    rel.AppendUnchecked(std::move(t));
  }
  return rel;
}

}  // namespace maybms
