// Low-level binary I/O for the "MAYBMS-WSD 2" snapshot format: section
// framing with per-section lengths and FNV-1a checksums, bounds-checked
// buffer parsing of POD scalars and arrays, and the string-table
// dump/restore that persists the slice of the global ValuePool a
// database references.
//
// The framing is deliberately dumb: a snapshot is a fixed header line
// followed by sections `tag(4) | payload_len(8) | fnv1a64(8) | payload`.
// Readers never trust a length before the bytes actually arrive (payload
// is read in bounded chunks, so a corrupted length cannot trigger a
// giant allocation), and never trust a count inside a payload before
// checking it against the bytes remaining in that payload.
//
// Everything here is host-byte-order; the META section of the snapshot
// carries an endianness mark so a snapshot moved across byte orders is
// rejected instead of misread (see docs/SNAPSHOT_FORMAT.md).
#ifndef MAYBMS_STORAGE_SNAPSHOT_IO_H_
#define MAYBMS_STORAGE_SNAPSHOT_IO_H_

#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace maybms {

/// Four-byte section tag ("META", "STRS", ...).
constexpr uint32_t SnapshotFourCC(char a, char b, char c, char d) {
  return static_cast<uint32_t>(static_cast<unsigned char>(a)) |
         (static_cast<uint32_t>(static_cast<unsigned char>(b)) << 8) |
         (static_cast<uint32_t>(static_cast<unsigned char>(c)) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(d)) << 24);
}

/// Renders a tag for error messages ("STRS").
std::string SnapshotTagName(uint32_t tag);

// --- payload building (writer side) ---------------------------------------

/// Appends the raw bytes of a trivially-copyable scalar.
template <typename T>
void PutPod(std::string* out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

/// Appends the raw bytes of a whole POD array (the columnar bulk path).
template <typename T>
void PutArray(std::string* out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (v.empty()) return;  // data() may be null on an empty vector
  out->append(reinterpret_cast<const char*>(v.data()), v.size() * sizeof(T));
}

/// Appends a uint32 length prefix + bytes.
void PutLenString(std::string* out, std::string_view s);

/// Writes one framed section: tag, payload length, FNV-1a64 checksum,
/// payload bytes.
Status WriteSnapshotSection(std::ostream& out, uint32_t tag,
                            std::string_view payload);

// --- section reading (reader side) -----------------------------------------

/// One checksum-verified section.
struct SnapshotSection {
  uint32_t tag = 0;
  std::string payload;
};

/// Reads the next section. Fails with ParseError on truncation or
/// checksum mismatch. The payload is read in bounded chunks, so a
/// corrupted length field cannot cause an allocation larger than the
/// bytes actually present.
Result<SnapshotSection> ReadSnapshotSection(std::istream& in);

/// Bounds-checked cursor over one section payload. All reads fail with
/// ParseError instead of walking past the end, and array reads validate
/// `count * sizeof(T)` against the remaining bytes *before* allocating.
class SnapshotCursor {
 public:
  explicit SnapshotCursor(std::string_view payload) : p_(payload) {}

  size_t remaining() const { return p_.size() - pos_; }
  bool AtEnd() const { return pos_ == p_.size(); }

  template <typename T>
  Result<T> Read() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (remaining() < sizeof(T)) {
      return Status::ParseError("snapshot payload truncated");
    }
    T v;
    std::memcpy(&v, p_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  template <typename T>
  Status ReadArray(size_t count, std::vector<T>* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (count > remaining() / sizeof(T)) {
      return Status::ParseError("snapshot array length exceeds payload");
    }
    out->resize(count);
    if (count != 0) {  // data() may be null on an empty vector
      std::memcpy(out->data(), p_.data() + pos_, count * sizeof(T));
      pos_ += count * sizeof(T);
    }
    return Status::OK();
  }

  /// A view of `len` raw payload bytes (valid while the payload lives).
  Result<std::string_view> ReadBytes(size_t len);

  /// uint32 length prefix + bytes, as written by PutLenString.
  Result<std::string> ReadLenString();

 private:
  std::string_view p_;
  size_t pos_ = 0;
};

// --- string table (ValuePool dump/restore) ---------------------------------

/// Writer-side dictionary: assigns dense snapshot-local ids to the
/// distinct strings a database references, in first-use order. The
/// global ValuePool's ids are process-specific and never hit the wire.
class SnapshotStringTable {
 public:
  /// Local id for a string given by content. `s` must stay alive until
  /// Serialize() (it is not copied) — pool entries and template-cell
  /// Values are both stable during a save.
  uint32_t IdForContent(std::string_view s);

  /// Local id for a global ValuePool id (cached, O(1) on repeats — the
  /// per-cell path of the columnar writer).
  uint32_t IdForGlobal(uint32_t global_id);

  size_t size() const { return entries_.size(); }

  /// Payload of the STRS section: count, blob length, offset table
  /// (count + 1 entries, so entry i spans [off[i], off[i+1])), blob.
  std::string Serialize() const;

  /// Reads a STRS payload, interns every entry into the global
  /// ValuePool, and returns the local→global id map.
  static Result<std::vector<uint32_t>> Restore(std::string_view payload);

 private:
  std::vector<std::string_view> entries_;
  std::unordered_map<std::string_view, uint32_t> by_content_;
  std::vector<uint32_t> by_global_;  ///< global id -> local id (or kUnset)
};

}  // namespace maybms

#endif  // MAYBMS_STORAGE_SNAPSHOT_IO_H_
