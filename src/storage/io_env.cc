#include "storage/io_env.h"

#include <cerrno>
#include <cstring>
#include <unordered_map>
#include <utility>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/string_util.h"
#include "storage/mmap_file.h"

namespace maybms {

namespace {

/// errno -> Status with full context: operation, path, strerror text.
Status ErrnoStatus(const char* op, const std::string& path, int err) {
  std::string msg =
      StrFormat("%s '%s': %s (errno %d)", op, path.c_str(),
                std::strerror(err), err);
  if (err == ENOENT) return Status::NotFound(std::move(msg));
  if (err == EAGAIN || err == EWOULDBLOCK || err == EBUSY) {
    return Status::Unavailable(std::move(msg));
  }
  return Status::IOError(std::move(msg));
}

int OpenRetryingEintr(const char* path, int flags, mode_t mode = 0644) {
  int fd;
  do {
    fd = ::open(path, flags, mode);
  } while (fd < 0 && errno == EINTR);
  return fd;
}

// --- POSIX implementation ---------------------------------------------------

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write", path_, errno);
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    int rc;
    do {
      rc = ::fdatasync(fd_);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) return ErrnoStatus("fdatasync", path_, errno);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return ErrnoStatus("close", path_, errno);
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixImage : public RandomAccessImage {
 public:
  explicit PosixImage(MmapFile file) : file_(std::move(file)) {}
  std::string_view bytes() const override { return file_.bytes(); }
  const std::string& path() const override { return file_.path(); }

 private:
  MmapFile file_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    int flags = O_WRONLY | O_CREAT | (truncate ? O_TRUNC : O_APPEND);
    int fd = OpenRetryingEintr(path.c_str(), flags);
    if (fd < 0) return ErrnoStatus("open for write", path, errno);
    return std::unique_ptr<WritableFile>(new PosixWritableFile(fd, path));
  }

  Result<std::string> ReadFileToString(const std::string& path) override {
    int fd = OpenRetryingEintr(path.c_str(), O_RDONLY);
    if (fd < 0) return ErrnoStatus("open for read", path, errno);
    std::string out;
    char buf[1 << 16];
    for (;;) {
      ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        int err = errno;
        ::close(fd);
        return ErrnoStatus("read", path, err);
      }
      if (n == 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return out;
  }

  Result<std::unique_ptr<RandomAccessImage>> MapFile(
      const std::string& path) override {
    MAYBMS_ASSIGN_OR_RETURN(MmapFile file, MmapFile::Open(path));
    return std::unique_ptr<RandomAccessImage>(new PosixImage(std::move(file)));
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Result<uint64_t> FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      return ErrnoStatus("stat", path, errno);
    }
    return static_cast<uint64_t>(st.st_size);
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename", from + "' -> '" + to, errno);
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return ErrnoStatus("unlink", path, errno);
    return Status::OK();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    int rc;
    do {
      rc = ::truncate(path.c_str(), static_cast<off_t>(size));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) return ErrnoStatus("truncate", path, errno);
    return Status::OK();
  }

  Status SyncDir(const std::string& dir) override {
    int fd = OpenRetryingEintr(dir.c_str(), O_RDONLY);
    if (fd < 0) return ErrnoStatus("open dir", dir, errno);
    int rc;
    do {
      rc = ::fsync(fd);
    } while (rc != 0 && errno == EINTR);
    int err = errno;
    ::close(fd);
    // Some filesystems reject fsync on directories; the rename itself is
    // then as durable as that filesystem can make it.
    if (rc != 0 && err != EINVAL && err != ENOTSUP && err != EROFS) {
      return ErrnoStatus("fsync dir", dir, err);
    }
    return Status::OK();
  }
};

}  // namespace

void Env::BackoffBeforeRetry(int attempt) {
  // 1ms, 2ms, 4ms, ... capped at 32ms: enough to ride out EAGAIN-class
  // hiccups without stalling a failing save for seconds.
  int shift = attempt < 6 ? attempt : 6;
  ::usleep(static_cast<useconds_t>(1000u << shift));
}

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

std::string ParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status AtomicWriteFile(Env* env, const std::string& path,
                       std::string_view contents) {
  const std::string tmp = path + ".tmp";
  return WithRetry(env, 4, [&]() -> Status {
    MAYBMS_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> f,
                            env->NewWritableFile(tmp, /*truncate=*/true));
    Status st = f->Append(contents);
    if (st.ok()) st = f->Sync();
    Status close_st = f->Close();
    if (st.ok()) st = close_st;
    if (!st.ok()) return st;
    MAYBMS_RETURN_IF_ERROR(env->RenameFile(tmp, path));
    return env->SyncDir(ParentDir(path));
  });
}

// --- fault injection --------------------------------------------------------

/// Write handle over an in-memory inode; invalidated by Recover().
/// Namespace-scope (not anonymous) so the friend declaration in
/// FaultInjectingEnv applies.
class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(FaultInjectingEnv* env, uint64_t generation,
                    std::shared_ptr<FaultInjectingEnv::Inode> inode,
                    std::string path)
      : env_(env),
        generation_(generation),
        inode_(std::move(inode)),
        path_(std::move(path)) {}

  Status Append(std::string_view data) override {
    MAYBMS_RETURN_IF_ERROR(Check("write"));
    inode_->unsynced.append(data.data(), data.size());
    return Status::OK();
  }

  Status Sync() override {
    MAYBMS_RETURN_IF_ERROR(Check("fdatasync"));
    inode_->synced += inode_->unsynced;
    inode_->unsynced.clear();
    return Status::OK();
  }

  Status Close() override { return Status::OK(); }

 private:
  Status Check(const char* what) {
    if (generation_ != env_->generation_) {
      return Status::IOError(StrFormat(
          "%s '%s': stale file handle (crashed before this write)", what,
          path_.c_str()));
    }
    return env_->OnOp(what, path_);
  }

  FaultInjectingEnv* env_;
  uint64_t generation_;
  std::shared_ptr<FaultInjectingEnv::Inode> inode_;
  std::string path_;
};

namespace {

class StringImage : public RandomAccessImage {
 public:
  StringImage(std::string bytes, std::string path)
      : bytes_(std::move(bytes)), path_(std::move(path)) {}
  std::string_view bytes() const override { return bytes_; }
  const std::string& path() const override { return path_; }

 private:
  std::string bytes_;
  std::string path_;
};

}  // namespace

Status FaultInjectingEnv::OnOp(const char* what, const std::string& path) {
  if (crashed_) {
    return Status::IOError(
        StrFormat("%s '%s': injected crash (machine down)", what,
                  path.c_str()));
  }
  const int64_t idx = op_count_++;
  if (last_failed_op_ >= 0 && idx == last_failed_op_ + 1) {
    ++transient_retries_;
    last_failed_op_ = -1;
  }
  if (plan_.crash_at_op == idx) {
    crashed_ = true;
    return Status::IOError(
        StrFormat("%s '%s': injected crash at op %lld", what, path.c_str(),
                  static_cast<long long>(idx)));
  }
  if (plan_.fail_at_op == idx) {
    std::string msg = StrFormat("%s '%s': injected %s fault at op %lld", what,
                                path.c_str(),
                                plan_.fail_transient ? "transient" : "hard",
                                static_cast<long long>(idx));
    if (plan_.fail_transient) {
      last_failed_op_ = idx;
      return Status::Unavailable(std::move(msg));
    }
    return Status::IOError(std::move(msg));
  }
  return Status::OK();
}

void FaultInjectingEnv::AddPending(PendingOp::Kind kind,
                                   const std::string& path, InodePtr inode) {
  pending_.push_back({kind, path, std::move(inode)});
}

Result<std::unique_ptr<WritableFile>> FaultInjectingEnv::NewWritableFile(
    const std::string& path, bool truncate) {
  MAYBMS_RETURN_IF_ERROR(OnOp("open for write", path));
  InodePtr inode;
  auto it = live_.find(path);
  if (truncate || it == live_.end()) {
    inode = std::make_shared<Inode>();
    live_[path] = inode;
    AddPending(PendingOp::Kind::kLink, path, inode);
  } else {
    inode = it->second;
  }
  return std::unique_ptr<WritableFile>(
      new FaultWritableFile(this, generation_, inode, path));
}

Result<std::string> FaultInjectingEnv::ReadFileToString(
    const std::string& path) {
  MAYBMS_RETURN_IF_ERROR(OnOp("open for read", path));
  auto it = live_.find(path);
  if (it == live_.end()) {
    return Status::NotFound(
        StrFormat("open for read '%s': no such file", path.c_str()));
  }
  return it->second->synced + it->second->unsynced;
}

Result<std::unique_ptr<RandomAccessImage>> FaultInjectingEnv::MapFile(
    const std::string& path) {
  MAYBMS_RETURN_IF_ERROR(OnOp("map", path));
  auto it = live_.find(path);
  if (it == live_.end()) {
    return Status::NotFound(StrFormat("map '%s': no such file", path.c_str()));
  }
  return std::unique_ptr<RandomAccessImage>(
      new StringImage(it->second->synced + it->second->unsynced, path));
}

bool FaultInjectingEnv::FileExists(const std::string& path) {
  return !crashed_ && live_.count(path) > 0;
}

Result<uint64_t> FaultInjectingEnv::FileSize(const std::string& path) {
  MAYBMS_RETURN_IF_ERROR(OnOp("stat", path));
  auto it = live_.find(path);
  if (it == live_.end()) {
    return Status::NotFound(StrFormat("stat '%s': no such file", path.c_str()));
  }
  return static_cast<uint64_t>(it->second->synced.size() +
                               it->second->unsynced.size());
}

Status FaultInjectingEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  MAYBMS_RETURN_IF_ERROR(OnOp("rename", from));
  auto it = live_.find(from);
  if (it == live_.end()) {
    return Status::NotFound(
        StrFormat("rename '%s': no such file", from.c_str()));
  }
  InodePtr inode = it->second;
  live_.erase(it);
  live_[to] = inode;
  // A rename is atomic: either both effects persist or neither, so it is
  // one pending op (kLink carries the unlink of `from` implicitly via
  // the recorded path pair encoded as "to\nfrom" — see Recover).
  pending_.push_back({PendingOp::Kind::kLink, to + '\n' + from, inode});
  return Status::OK();
}

Status FaultInjectingEnv::RemoveFile(const std::string& path) {
  MAYBMS_RETURN_IF_ERROR(OnOp("unlink", path));
  if (live_.erase(path) == 0) {
    return Status::NotFound(
        StrFormat("unlink '%s': no such file", path.c_str()));
  }
  AddPending(PendingOp::Kind::kUnlink, path, nullptr);
  return Status::OK();
}

Status FaultInjectingEnv::TruncateFile(const std::string& path,
                                       uint64_t size) {
  MAYBMS_RETURN_IF_ERROR(OnOp("truncate", path));
  auto it = live_.find(path);
  if (it == live_.end()) {
    return Status::NotFound(
        StrFormat("truncate '%s': no such file", path.c_str()));
  }
  // Modeled as a durable content operation (slightly lenient: a real
  // ftruncate needs an fsync to be crash-durable). The engine only
  // truncates during WAL tail repair, where the surviving prefix is
  // already durable, so the simplification does not hide crash states.
  std::string combined = it->second->synced + it->second->unsynced;
  combined.resize(static_cast<size_t>(size), '\0');
  it->second->synced = std::move(combined);
  it->second->unsynced.clear();
  return Status::OK();
}

Status FaultInjectingEnv::SyncDir(const std::string& dir) {
  MAYBMS_RETURN_IF_ERROR(OnOp("fsync dir", dir));
  std::vector<PendingOp> keep;
  for (PendingOp& op : pending_) {
    // For renames the recorded path is "to\nfrom"; both live in a
    // directory iff their respective parents match (same-dir renames in
    // practice — the engine never renames across directories).
    std::string primary = op.path.substr(0, op.path.find('\n'));
    if (ParentDir(primary) != dir) {
      keep.push_back(std::move(op));
      continue;
    }
    size_t nl = op.path.find('\n');
    if (op.kind == PendingOp::Kind::kUnlink) {
      durable_.erase(op.path);
    } else if (nl == std::string::npos) {
      durable_[op.path] = op.inode;
    } else {
      durable_[op.path.substr(0, nl)] = op.inode;
      durable_.erase(op.path.substr(nl + 1));
    }
  }
  pending_ = std::move(keep);
  return Status::OK();
}

void FaultInjectingEnv::BackoffBeforeRetry(int) {
  // No real sleeping in tests; retries are observable via
  // transient_retries_observed().
}

void FaultInjectingEnv::Recover(Rng* rng) {
  // Post-crash namespace: the dir-synced state plus a random subset of
  // the volatile namespace ops, applied in order (the kernel may persist
  // metadata for some operations and not others).
  std::map<std::string, InodePtr> post = durable_;
  for (const PendingOp& op : pending_) {
    if (!rng->NextBernoulli(0.5)) continue;
    size_t nl = op.path.find('\n');
    if (op.kind == PendingOp::Kind::kUnlink) {
      post.erase(op.path);
    } else if (nl == std::string::npos) {
      post[op.path] = op.inode;
    } else {
      post[op.path.substr(0, nl)] = op.inode;
      post.erase(op.path.substr(nl + 1));
    }
  }
  // Post-crash content: synced bytes survive; un-synced appended bytes
  // are torn to a random prefix — consistently per inode, in case two
  // surviving names alias one file.
  std::unordered_map<Inode*, InodePtr> reborn;
  std::map<std::string, InodePtr> out;
  for (auto& [path, inode] : post) {
    InodePtr& slot = reborn[inode.get()];
    if (!slot) {
      slot = std::make_shared<Inode>();
      size_t keep = inode->unsynced.empty()
                        ? 0
                        : rng->NextBelow(inode->unsynced.size() + 1);
      slot->synced = inode->synced + inode->unsynced.substr(0, keep);
    }
    out[path] = slot;
  }
  live_ = out;
  durable_ = std::move(out);
  pending_.clear();
  crashed_ = false;
  ++generation_;
}

Status FaultInjectingEnv::MutateFileByte(const std::string& path,
                                         uint64_t offset) {
  auto it = live_.find(path);
  if (it == live_.end()) {
    return Status::NotFound(
        StrFormat("mutate '%s': no such file", path.c_str()));
  }
  std::string combined = it->second->synced + it->second->unsynced;
  if (offset >= combined.size()) {
    return Status::OutOfRange(
        StrFormat("mutate '%s': offset %llu past end", path.c_str(),
                  static_cast<unsigned long long>(offset)));
  }
  combined[static_cast<size_t>(offset)] ^= 0x5a;
  it->second->synced = std::move(combined);
  it->second->unsynced.clear();
  return Status::OK();
}

Result<std::string> FaultInjectingEnv::VisibleContent(const std::string& path) {
  auto it = live_.find(path);
  if (it == live_.end()) {
    return Status::NotFound(StrFormat("'%s': no such file", path.c_str()));
  }
  return it->second->synced + it->second->unsynced;
}

}  // namespace maybms
