// Catalog: named relations of one (certain) database / possible world.
#ifndef MAYBMS_STORAGE_CATALOG_H_
#define MAYBMS_STORAGE_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/relation.h"

namespace maybms {

/// A set of named certain relations — one conventional database instance,
/// which is also the content of a single possible world.
class Catalog {
 public:
  /// Registers a relation under its name; fails on collision.
  Status Create(Relation rel);

  /// Replaces or creates.
  void Put(Relation rel);

  Status Drop(const std::string& name);

  bool Contains(const std::string& name) const;

  Result<const Relation*> Get(const std::string& name) const;
  Result<Relation*> GetMutable(const std::string& name);

  /// Row/distinct statistics of one relation (computed lazily and cached
  /// on the relation itself; see RelationStats).
  Result<const RelationStats*> GetStats(const std::string& name) const;

  std::vector<std::string> Names() const;
  size_t size() const { return relations_.size(); }

  /// Total flat serialized size across all relations.
  uint64_t SerializedSize() const;

  /// Deep bag-equality of all relations; used by the world-enumeration
  /// oracle to compare worlds.
  bool Equals(const Catalog& other) const;

 private:
  // Case-insensitive name map would complicate iteration; we canonicalize
  // names to lower case on insertion and lookup instead.
  static std::string Key(const std::string& name);
  std::map<std::string, Relation> relations_;
};

}  // namespace maybms

#endif  // MAYBMS_STORAGE_CATALOG_H_
