#include "storage/wal.h"

#include <cstring>

#include "common/hash.h"
#include "common/string_util.h"
#include "storage/snapshot_io.h"

namespace maybms {
namespace wal {

namespace {

constexpr size_t kMagicLen = sizeof(kWalMagic) - 1;  // no NUL on disk
constexpr uint32_t kWalEndianMark = 0x4c415757;      // "WWAL" little-endian

// Header after the magic line: endian(4) reserved(4) fingerprint(8)
// base_lsn(8) crc(8), crc over the preceding 24 bytes.
constexpr size_t kHeaderBody = 4 + 4 + 8 + 8;
constexpr size_t kHeaderLen = kMagicLen + kHeaderBody + 8;

// Record frame: crc(8) lsn(8) type(1) len(4), then len payload bytes;
// crc over everything after itself.
constexpr size_t kRecordFrame = 8 + 8 + 1 + 4;

uint64_t Fnv1aContinue(uint64_t h, const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t RecordChecksum(uint64_t lsn, uint8_t type, uint32_t len,
                        std::string_view payload) {
  uint64_t h = 0xcbf29ce484222325ULL;
  h = Fnv1aContinue(h, &lsn, sizeof(lsn));
  h = Fnv1aContinue(h, &type, sizeof(type));
  h = Fnv1aContinue(h, &len, sizeof(len));
  h = Fnv1aContinue(h, payload.data(), payload.size());
  return h;
}

std::string BuildHeader(uint64_t fingerprint, uint64_t base_lsn) {
  std::string out(kWalMagic, kMagicLen);
  std::string body;
  PutPod(&body, kWalEndianMark);
  PutPod(&body, static_cast<uint32_t>(0));
  PutPod(&body, fingerprint);
  PutPod(&body, base_lsn);
  out += body;
  PutPod(&out, HashBytes(body.data(), body.size()));
  return out;
}

}  // namespace

uint64_t SnapshotFingerprint(std::string_view bytes) {
  constexpr size_t kFullLimit = 1u << 20;   // hash everything up to 1 MiB
  constexpr size_t kStripe = 64u << 10;     // else sample 64 KiB stripes
  constexpr size_t kStripes = 16;
  uint64_t h = 0xcbf29ce484222325ULL;
  const uint64_t size = bytes.size();
  h = Fnv1aContinue(h, &size, sizeof(size));
  if (bytes.size() <= kFullLimit) {
    return Fnv1aContinue(h, bytes.data(), bytes.size());
  }
  // kStripes evenly spaced windows; the first starts at 0 and the last
  // ends exactly at the end of the file, so header and tail (the bytes
  // most likely to differ between saves) are always covered.
  const size_t span = bytes.size() - kStripe;
  for (size_t i = 0; i < kStripes; ++i) {
    size_t offset = span * i / (kStripes - 1);
    h = Fnv1aContinue(h, bytes.data() + offset, kStripe);
  }
  return h;
}

Result<WalContents> ReadWal(Env* env, const std::string& path) {
  MAYBMS_ASSIGN_OR_RETURN(std::string bytes, env->ReadFileToString(path));
  WalContents out;
  if (bytes.size() < kHeaderLen ||
      std::memcmp(bytes.data(), kWalMagic, kMagicLen) != 0) {
    return out;  // usable=false: not a WAL (or header torn)
  }
  const char* body = bytes.data() + kMagicLen;
  uint64_t stored_crc;
  std::memcpy(&stored_crc, body + kHeaderBody, sizeof(stored_crc));
  if (HashBytes(body, kHeaderBody) != stored_crc) {
    return out;  // header corrupt
  }
  uint32_t endian;
  std::memcpy(&endian, body, sizeof(endian));
  if (endian != kWalEndianMark) return out;
  std::memcpy(&out.snapshot_fingerprint, body + 8, sizeof(uint64_t));
  std::memcpy(&out.base_lsn, body + 16, sizeof(uint64_t));
  out.usable = true;
  out.valid_bytes = kHeaderLen;

  size_t pos = kHeaderLen;
  uint64_t expect_lsn = out.base_lsn;
  while (bytes.size() - pos >= kRecordFrame) {
    uint64_t crc, lsn;
    uint8_t type;
    uint32_t len;
    std::memcpy(&crc, bytes.data() + pos, 8);
    std::memcpy(&lsn, bytes.data() + pos + 8, 8);
    std::memcpy(&type, bytes.data() + pos + 16, 1);
    std::memcpy(&len, bytes.data() + pos + 17, 4);
    if (len > bytes.size() - pos - kRecordFrame) break;  // torn length
    std::string_view payload(bytes.data() + pos + kRecordFrame, len);
    if (RecordChecksum(lsn, type, len, payload) != crc) break;
    if (lsn != expect_lsn) break;  // out-of-sequence: stale bytes
    if (type != static_cast<uint8_t>(RecordType::kStatement) &&
        type != static_cast<uint8_t>(RecordType::kDelta)) {
      break;  // unknown type: stale or future bytes, stop the prefix
    }
    out.records.push_back(
        {lsn, static_cast<RecordType>(type), std::string(payload)});
    pos += kRecordFrame + len;
    out.valid_bytes = pos;
    ++expect_lsn;
  }
  out.torn_tail = out.valid_bytes < bytes.size();
  return out;
}

Result<WalWriter> WalWriter::Create(Env* env, const std::string& path,
                                    uint64_t snapshot_fingerprint,
                                    uint64_t base_lsn) {
  // Atomic header install (tmp + fsync + rename + dir sync): a crash
  // mid-reset leaves either the old log — discarded later by the
  // fingerprint check — or a complete empty log, never a torn header
  // shadowing durable records.
  MAYBMS_RETURN_IF_ERROR(
      AtomicWriteFile(env, path, BuildHeader(snapshot_fingerprint, base_lsn)));
  MAYBMS_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                          env->NewWritableFile(path, /*truncate=*/false));
  return WalWriter(env, path, std::move(file), base_lsn, base_lsn);
}

Result<WalWriter> WalWriter::OpenForAppend(Env* env, const std::string& path,
                                           const WalContents& contents) {
  if (!contents.usable) {
    return Status::InvalidArgument("cannot append to an unusable WAL: " +
                                   path);
  }
  if (contents.torn_tail) {
    MAYBMS_RETURN_IF_ERROR(env->TruncateFile(path, contents.valid_bytes));
  }
  MAYBMS_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                          env->NewWritableFile(path, /*truncate=*/false));
  return WalWriter(env, path, std::move(file), contents.base_lsn,
                   contents.base_lsn + contents.records.size());
}

Result<uint64_t> WalWriter::Append(RecordType type, std::string_view payload) {
  if (poisoned_) {
    return Status::IOError(
        StrFormat("WAL '%s' had an append failure; checkpoint to recreate it",
                  path_.c_str()));
  }
  const uint64_t lsn = next_lsn_;
  const auto type_byte = static_cast<uint8_t>(type);
  const auto len = static_cast<uint32_t>(payload.size());
  std::string frame;
  frame.reserve(kRecordFrame + payload.size());
  PutPod(&frame, RecordChecksum(lsn, type_byte, len, payload));
  PutPod(&frame, lsn);
  PutPod(&frame, type_byte);
  PutPod(&frame, len);
  frame.append(payload.data(), payload.size());
  Status st = file_->Append(frame);
  if (!st.ok()) {
    // The on-disk tail is now unknown — a later append could land after
    // garbage and become unreachable for recovery. Refuse to continue.
    poisoned_ = true;
    return st;
  }
  // Sync is idempotent, so transient failures are safe to retry here
  // (unlike the append itself).
  st = WithRetry(env_, 4, [&] { return file_->Sync(); });
  if (!st.ok()) {
    poisoned_ = true;
    return st;
  }
  ++next_lsn_;
  return lsn;
}

}  // namespace wal
}  // namespace maybms
