// Explicit world enumeration: materializes every possible world of a WSD.
//
// This is (a) the naive baseline the paper's representation is measured
// against — world-sets are exponentially larger than their decompositions
// — and (b) the ground-truth oracle of the differential test suite: lifted
// query answers must match per-world conventional evaluation.
#ifndef MAYBMS_WORLDS_ENUMERATE_H_
#define MAYBMS_WORLDS_ENUMERATE_H_

#include <functional>
#include <vector>

#include "common/result.h"
#include "core/wsd.h"
#include "storage/catalog.h"

namespace maybms {

/// One possible world: a certain database with its probability.
struct World {
  Catalog catalog;
  double prob = 1.0;
};

/// Streams every world (one per choice combination with probability > 0)
/// through `fn` without materializing the set. Stops early when `fn`
/// returns a non-OK status (which is propagated). Fails with
/// ResourceExhausted when more than `max_worlds` combinations exist.
Status ForEachWorld(const WsdDb& db, size_t max_worlds,
                    const std::function<Status(const Catalog&, double)>& fn);

/// Materializes one world per choice combination (probabilities multiply;
/// distinct combinations may yield equal databases — see MergeEqualWorlds).
/// Fails with ResourceExhausted when more than `max_worlds` combinations
/// exist. Combinations of probability 0 are skipped.
Result<std::vector<World>> EnumerateWorlds(const WsdDb& db,
                                           size_t max_worlds = 1u << 16);

/// Merges worlds with equal database content, summing probabilities.
std::vector<World> MergeEqualWorlds(std::vector<World> worlds);

/// The content of `db` under a fixed choice of component rows (`choice`
/// aligned with `comps`). Exposed for incremental/streaming uses.
Catalog ResolveWorld(const WsdDb& db, const std::vector<ComponentId>& comps,
                     const std::vector<size_t>& choice);

}  // namespace maybms

#endif  // MAYBMS_WORLDS_ENUMERATE_H_
