#include "worlds/sample.h"

#include <algorithm>
#include <unordered_map>

#include "common/string_util.h"
#include "core/approx_conf.h"
#include "worlds/enumerate.h"

namespace maybms {

namespace {

// Samples a row index of `c` proportionally to row probabilities.
size_t SampleRow(const Component& c, Rng* rng) {
  double u = rng->NextDouble() * c.TotalMass();
  double acc = 0.0;
  const std::vector<double>& probs = c.probs();
  for (size_t r = 0; r < probs.size(); ++r) {
    acc += probs[r];
    if (u < acc) return r;
  }
  return c.NumRows() - 1;
}

}  // namespace

Catalog SampleWorld(const WsdDb& db, Rng* rng) {
  std::vector<ComponentId> comps = db.LiveComponents();
  std::vector<size_t> choice(comps.size());
  for (size_t k = 0; k < comps.size(); ++k) {
    choice[k] = SampleRow(db.component(comps[k]), rng);
  }
  return ResolveWorld(db, comps, choice);
}

Status SampleWorlds(const WsdDb& db, size_t n, Rng* rng,
                    const std::function<Status(const Catalog&)>& fn) {
  for (size_t i = 0; i < n; ++i) {
    MAYBMS_RETURN_IF_ERROR(fn(SampleWorld(db, rng)));
  }
  return Status::OK();
}

Result<Relation> EstimateConfidenceBySampling(const WsdDb& db,
                                              const std::string& rel_name,
                                              const SampleConfOptions& options) {
  if (options.samples == 0) {
    return Status::InvalidArgument("need at least one sample");
  }
  ApproxOptions ao;
  ao.seed = options.seed;
  ao.num_threads = options.num_threads;
  ao.exact_state_limit = options.exact_state_limit;
  ao.sampling_only = true;
  ao.fixed_samples = options.samples;
  MAYBMS_ASSIGN_OR_RETURN(Relation full, ApproxConfTable(db, rel_name, ao));
  // Match the historical schema: drop the interval columns, keep the
  // point estimate (clamped — the raw estimator may overshoot [0, 1]).
  const Schema& s = full.schema();
  std::vector<size_t> keep;
  for (size_t i = 0; i + 2 < s.size(); ++i) keep.push_back(i);
  Relation out(rel_name + "_conf_approx", s.Project(keep));
  const size_t conf_col = s.size() - 3;
  std::vector<Tuple> rows;
  rows.reserve(full.rows().size());
  for (const auto& row : full.rows()) {
    Tuple t(row.begin(), row.begin() + conf_col);
    t.push_back(Value::Double(std::clamp(row[conf_col].as_double(), 0.0, 1.0)));
    rows.push_back(std::move(t));
  }
  // Re-sort: clamping can merge estimates that differed before.
  std::sort(rows.begin(), rows.end(), [&](const Tuple& a, const Tuple& b) {
    if (a[conf_col].as_double() != b[conf_col].as_double()) {
      return a[conf_col].as_double() > b[conf_col].as_double();
    }
    return TupleCompare(a, b) < 0;
  });
  for (Tuple& t : rows) out.AppendUnchecked(std::move(t));
  return out;
}

Result<Relation> ApproximateConfTable(const WsdDb& db,
                                      const std::string& rel_name,
                                      size_t samples, uint64_t seed) {
  SampleConfOptions options;
  options.samples = samples;
  options.seed = seed;
  return EstimateConfidenceBySampling(db, rel_name, options);
}

Result<Relation> ApproximateConfTableByWorlds(const WsdDb& db,
                                              const std::string& rel_name,
                                              size_t samples, uint64_t seed) {
  MAYBMS_ASSIGN_OR_RETURN(const WsdRelation* rel, db.GetRelation(rel_name));
  if (samples == 0) {
    return Status::InvalidArgument("need at least one sample");
  }
  struct VectorHash {
    size_t operator()(const Tuple& t) const { return TupleHash(t); }
  };
  struct VectorEq {
    bool operator()(const Tuple& a, const Tuple& b) const {
      return TupleCompare(a, b) == 0;
    }
  };
  std::unordered_map<Tuple, size_t, VectorHash, VectorEq> counts;
  Rng rng(seed);
  MAYBMS_RETURN_IF_ERROR(SampleWorlds(
      db, samples, &rng, [&](const Catalog& world) -> Status {
        MAYBMS_ASSIGN_OR_RETURN(const Relation* r, world.Get(rel_name));
        // Count each distinct vector once per world.
        std::unordered_map<Tuple, bool, VectorHash, VectorEq> present;
        for (const auto& row : r->rows()) present.emplace(row, true);
        for (const auto& [v, unused] : present) counts[v]++;
        return Status::OK();
      }));
  Schema out_schema = rel->schema();
  std::string conf_name = "conf";
  int suffix = 2;
  while (out_schema.IndexOf(conf_name)) {
    conf_name = "conf_" + std::to_string(suffix++);
  }
  MAYBMS_RETURN_IF_ERROR(out_schema.Add({conf_name, ValueType::kDouble}));
  std::vector<std::pair<Tuple, double>> rows;
  rows.reserve(counts.size());
  for (const auto& [v, n] : counts) {
    rows.emplace_back(v, static_cast<double>(n) /
                             static_cast<double>(samples));
  }
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return TupleCompare(a.first, b.first) < 0;
  });
  Relation out(rel_name + "_conf_approx", out_schema);
  for (auto& [v, p] : rows) {
    Tuple t = v;
    t.push_back(Value::Double(p));
    out.AppendUnchecked(std::move(t));
  }
  return out;
}

Result<MapWorld> MostProbableWorld(const WsdDb& db) {
  std::vector<ComponentId> comps = db.LiveComponents();
  std::vector<size_t> choice(comps.size());
  double prob = 1.0;
  for (size_t k = 0; k < comps.size(); ++k) {
    const Component& c = db.component(comps[k]);
    if (c.NumRows() == 0) {
      return Status::Inconsistent("empty component — empty world-set");
    }
    size_t best = 0;
    for (size_t r = 1; r < c.NumRows(); ++r) {
      if (c.prob(r) > c.prob(best)) best = r;
    }
    choice[k] = best;
    prob *= c.prob(best);
  }
  return MapWorld{ResolveWorld(db, comps, choice), prob};
}

}  // namespace maybms
