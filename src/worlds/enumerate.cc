#include "worlds/enumerate.h"

#include <algorithm>
#include <unordered_map>

#include "common/string_util.h"

namespace maybms {

Catalog ResolveWorld(const WsdDb& db, const std::vector<ComponentId>& comps,
                     const std::vector<size_t>& choice) {
  // component id -> chosen row index
  std::unordered_map<ComponentId, size_t> chosen;
  for (size_t k = 0; k < comps.size(); ++k) chosen[comps[k]] = choice[k];
  Catalog catalog;
  for (const auto& [key, wrel] : db.relations()) {
    Relation rel(wrel.name(), wrel.schema());
    for (const auto& t : wrel.tuples()) {
      // Existence: every slot owned by a dep must be non-⊥.
      bool alive = true;
      for (size_t k = 0; alive && k < comps.size(); ++k) {
        const Component& c = db.component(comps[k]);
        for (uint32_t s = 0; s < c.NumSlots(); ++s) {
          if (c.IsBottomAt(choice[k], s) &&
              std::binary_search(t.deps.begin(), t.deps.end(),
                                 c.slot(s).owner)) {
            alive = false;
            break;
          }
        }
      }
      if (!alive) continue;
      Tuple row;
      row.reserve(t.cells.size());
      bool bottom_value = false;
      for (const auto& cell : t.cells) {
        if (cell.is_certain()) {
          row.push_back(cell.value());
        } else {
          const Component& c = db.component(cell.ref().cid);
          const PackedValue& v =
              c.packed(chosen.at(cell.ref().cid), cell.ref().slot);
          if (v.is_bottom()) {
            bottom_value = true;
            break;
          }
          row.push_back(v.ToValue());
        }
      }
      if (bottom_value) continue;  // defensive: gated by deps already
      rel.AppendUnchecked(std::move(row));
    }
    catalog.Put(std::move(rel));
  }
  return catalog;
}

Status ForEachWorld(const WsdDb& db, size_t max_worlds,
                    const std::function<Status(const Catalog&, double)>& fn) {
  std::vector<ComponentId> comps = db.LiveComponents();
  size_t total = 1;
  for (ComponentId id : comps) {
    size_t rows = db.component(id).NumRows();
    if (rows == 0) {
      return Status::Inconsistent(
          StrFormat("component %u has no rows — empty world-set", id));
    }
    if (total > max_worlds / rows) {
      return Status::ResourceExhausted(
          StrFormat("world-set has more than %zu worlds", max_worlds));
    }
    total *= rows;
  }
  std::vector<size_t> choice(comps.size(), 0);
  for (;;) {
    double p = 1.0;
    for (size_t k = 0; k < comps.size(); ++k) {
      p *= db.component(comps[k]).prob(choice[k]);
    }
    if (p > 0.0) {
      MAYBMS_RETURN_IF_ERROR(fn(ResolveWorld(db, comps, choice), p));
    }
    size_t k = 0;
    for (; k < comps.size(); ++k) {
      if (++choice[k] < db.component(comps[k]).NumRows()) break;
      choice[k] = 0;
    }
    if (k == comps.size()) break;
  }
  return Status::OK();
}

Result<std::vector<World>> EnumerateWorlds(const WsdDb& db,
                                           size_t max_worlds) {
  std::vector<World> out;
  MAYBMS_RETURN_IF_ERROR(
      ForEachWorld(db, max_worlds, [&](const Catalog& catalog, double p) {
        out.push_back({catalog, p});
        return Status::OK();
      }));
  return out;
}

std::vector<World> MergeEqualWorlds(std::vector<World> worlds) {
  std::vector<World> merged;
  for (auto& w : worlds) {
    bool found = false;
    for (auto& m : merged) {
      if (m.catalog.Equals(w.catalog)) {
        m.prob += w.prob;
        found = true;
        break;
      }
    }
    if (!found) merged.push_back(std::move(w));
  }
  return merged;
}

}  // namespace maybms
