// Monte-Carlo world sampling: draws worlds from the distribution defined
// by a probabilistic WSD. Complements exact confidence computation when
// independence clusters exceed the enumeration budget — an approximate
// prob() with standard-error guarantees (a MayBMS-line extension).
#ifndef MAYBMS_WORLDS_SAMPLE_H_
#define MAYBMS_WORLDS_SAMPLE_H_

#include <functional>

#include "common/result.h"
#include "common/rng.h"
#include "core/wsd.h"
#include "storage/catalog.h"
#include "storage/relation.h"

namespace maybms {

/// Draws one world: independently samples a row per component according
/// to the row probabilities and resolves the templates.
Catalog SampleWorld(const WsdDb& db, Rng* rng);

/// Streams `n` sampled worlds through `fn` (each a fair draw from the
/// world distribution).
Status SampleWorlds(const WsdDb& db, size_t n, Rng* rng,
                    const std::function<Status(const Catalog&)>& fn);

/// Monte-Carlo estimate of the confidence table of `rel` (same schema as
/// ConfTable: the relation's columns plus a trailing "conf" DOUBLE).
/// Standard error of each estimate is ≤ 0.5/sqrt(samples).
Result<Relation> ApproximateConfTable(const WsdDb& db, const std::string& rel,
                                      size_t samples, uint64_t seed = 42);

/// The most probable world: picks the highest-probability row of every
/// component (exact for WSDs, since components are independent). Returns
/// the resolved database and its probability.
struct MapWorld {
  Catalog catalog;
  double prob = 1.0;
};
Result<MapWorld> MostProbableWorld(const WsdDb& db);

}  // namespace maybms

#endif  // MAYBMS_WORLDS_SAMPLE_H_
