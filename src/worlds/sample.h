// Monte-Carlo world sampling: draws worlds from the distribution defined
// by a probabilistic WSD. Complements exact confidence computation when
// independence clusters exceed the enumeration budget — an approximate
// prob() with standard-error guarantees (a MayBMS-line extension).
#ifndef MAYBMS_WORLDS_SAMPLE_H_
#define MAYBMS_WORLDS_SAMPLE_H_

#include <functional>

#include "common/result.h"
#include "common/rng.h"
#include "core/wsd.h"
#include "storage/catalog.h"
#include "storage/relation.h"

namespace maybms {

/// Draws one world: independently samples a row per component according
/// to the row probabilities and resolves the templates.
Catalog SampleWorld(const WsdDb& db, Rng* rng);

/// Streams `n` sampled worlds through `fn` (each a fair draw from the
/// world distribution).
Status SampleWorlds(const WsdDb& db, size_t n, Rng* rng,
                    const std::function<Status(const Catalog&)>& fn);

struct SampleConfOptions {
  /// Monte-Carlo draws per independence cluster.
  size_t samples = 10000;
  /// Seed of the deterministic sampling streams.
  uint64_t seed = 42;
  /// Worker threads (0 = hardware default). Never affects results.
  size_t num_threads = 0;
  /// Clusters at most this many joint states are computed exactly.
  size_t exact_state_limit = 4096;
};

/// Monte-Carlo estimate of the confidence table of `rel` (same schema as
/// ConfTable: the relation's columns plus a trailing "conf" DOUBLE).
/// Streams per-cluster samples through the core/approx_conf engine —
/// worlds are never materialized, cluster estimates combine by the
/// independence product, and results are bit-identical for a fixed seed
/// regardless of thread count. Standard error of each estimate is
/// ≤ 0.5/sqrt(samples).
Result<Relation> EstimateConfidenceBySampling(
    const WsdDb& db, const std::string& rel,
    const SampleConfOptions& options = {});

/// Back-compat wrapper around EstimateConfidenceBySampling.
Result<Relation> ApproximateConfTable(const WsdDb& db, const std::string& rel,
                                      size_t samples, uint64_t seed = 42);

/// The original estimator: materializes `samples` full worlds as
/// `Catalog`s and counts per-world vector frequencies. Quadratically
/// more expensive than the streaming path (every sample resolves every
/// component of the database); kept as the differential test oracle for
/// EstimateConfidenceBySampling.
Result<Relation> ApproximateConfTableByWorlds(const WsdDb& db,
                                              const std::string& rel,
                                              size_t samples,
                                              uint64_t seed = 42);

/// The most probable world: picks the highest-probability row of every
/// component (exact for WSDs, since components are independent). Returns
/// the resolved database and its probability.
struct MapWorld {
  Catalog catalog;
  double prob = 1.0;
};
Result<MapWorld> MostProbableWorld(const WsdDb& db);

}  // namespace maybms

#endif  // MAYBMS_WORLDS_SAMPLE_H_
