#include "common/parallel.h"

#include <algorithm>

namespace maybms {

namespace {
// True while the current thread executes loop bodies; nested ParallelFor
// calls run inline instead of deadlocking on the single-loop pool.
thread_local bool t_in_parallel_region = false;
}  // namespace

size_t DefaultNumThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

ThreadPool::ThreadPool(size_t workers) {
  threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool(DefaultNumThreads() - 1);
  return *pool;
}

void ThreadPool::WorkerLoop() {
  uint64_t last_gen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] {
      return stop_ || (fn_ != nullptr && generation_ != last_gen &&
                       allowed_ > 0);
    });
    if (stop_) return;
    last_gen = generation_;
    --allowed_;
    ++active_;
    const std::function<void(size_t)>* fn = fn_;
    size_t n = n_;
    lock.unlock();
    t_in_parallel_region = true;
    for (;;) {
      size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      (*fn)(i);
      done_count_.fetch_add(1, std::memory_order_acq_rel);
    }
    t_in_parallel_region = false;
    lock.lock();
    // The caller must not tear down the loop (and destroy fn) while any
    // joined worker is still between the join handshake and this point,
    // so completion is "all indices done AND no worker inside the loop".
    --active_;
    if (active_ == 0 &&
        done_count_.load(std::memory_order_acquire) >= n) {
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, size_t max_threads,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (max_threads == 0) max_threads = threads_.size() + 1;
  size_t helpers = std::min({threads_.size(), max_threads - 1, n - 1});
  if (helpers == 0 || t_in_parallel_region) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  // One loop at a time; queued callers wait for the active one to clear.
  done_cv_.wait(lock, [&] { return fn_ == nullptr; });
  fn_ = &fn;
  n_ = n;
  allowed_ = helpers;
  active_ = 0;
  next_.store(0, std::memory_order_relaxed);
  done_count_.store(0, std::memory_order_relaxed);
  ++generation_;
  lock.unlock();
  work_cv_.notify_all();
  // The caller is a participant too.
  t_in_parallel_region = true;
  for (;;) {
    size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) break;
    fn(i);
    done_count_.fetch_add(1, std::memory_order_acq_rel);
  }
  t_in_parallel_region = false;
  lock.lock();
  done_cv_.wait(lock, [&] {
    return active_ == 0 &&
           done_count_.load(std::memory_order_acquire) >= n_;
  });
  fn_ = nullptr;
  allowed_ = 0;
  lock.unlock();
  // Wake any queued ParallelFor caller waiting on fn_ == nullptr.
  done_cv_.notify_all();
}

void ParallelFor(size_t num_threads, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (num_threads == 0) num_threads = DefaultNumThreads();
  if (num_threads <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool::Shared().ParallelFor(n, num_threads, fn);
}

TaskPool::TaskPool(size_t workers) {
  if (workers == 0) workers = DefaultNumThreads();
  threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

TaskPool::~TaskPool() {
  Drain();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

bool TaskPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return false;
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
  return true;
}

void TaskPool::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

size_t TaskPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void TaskPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stop_ and drained
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++running_;
    lock.unlock();
    task();
    lock.lock();
    --running_;
    if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace maybms
