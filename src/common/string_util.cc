#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace maybms {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (auto& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (auto& c : out) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' || s[b] == '\r'))
    ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' ||
                   s[e - 1] == '\r'))
    --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    char x = a[i], y = b[i];
    if (x >= 'A' && x <= 'Z') x = static_cast<char>(x - 'A' + 'a');
    if (y >= 'A' && y <= 'Z') y = static_cast<char>(y - 'A' + 'a');
    if (x != y) return false;
  }
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    vsnprintf(out.data(), static_cast<size_t>(n) + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  if (u == 0) return StrFormat("%llu B", static_cast<unsigned long long>(bytes));
  return StrFormat("%.1f %s", v, kUnits[u]);
}

std::string PadRight(std::string s, size_t width) {
  if (s.size() < width) s.append(width - s.size(), ' ');
  return s;
}

std::string PadLeft(std::string s, size_t width) {
  if (s.size() < width) s.insert(0, width - s.size(), ' ');
  return s;
}

}  // namespace maybms
