// Minimal leveled logging + check macros.
#ifndef MAYBMS_COMMON_LOGGING_H_
#define MAYBMS_COMMON_LOGGING_H_

#include <cassert>
#include <sstream>
#include <string>

namespace maybms {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Aborts the process after streaming the message (fatal check failure).
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* cond);
  [[noreturn]] ~FatalMessage();
  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace maybms

#define MAYBMS_LOG(level)                                              \
  ::maybms::internal::LogMessage(::maybms::LogLevel::k##level, __FILE__, \
                                 __LINE__)                              \
      .stream()

/// Invariant check, active in all build types. Use for internal invariants
/// whose violation means a bug in the engine, not bad user input.
#define MAYBMS_CHECK(cond)                                                 \
  if (cond) {                                                              \
  } else /* NOLINT */                                                      \
    ::maybms::internal::FatalMessage(__FILE__, __LINE__, #cond).stream()

#define MAYBMS_DCHECK(cond) assert(cond)

#endif  // MAYBMS_COMMON_LOGGING_H_
