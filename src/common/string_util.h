// Small string helpers shared by the SQL front-end, CSV I/O and printers.
#ifndef MAYBMS_COMMON_STRING_UTIL_H_
#define MAYBMS_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace maybms {

/// Splits on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lower-casing (SQL keywords, attribute lookup).
std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

/// Removes leading/trailing whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Human-readable byte count ("3.1 MiB").
std::string FormatBytes(uint64_t bytes);

/// Fixed-width left/right padding for plain-text benchmark tables.
std::string PadRight(std::string s, size_t width);
std::string PadLeft(std::string s, size_t width);

}  // namespace maybms

#endif  // MAYBMS_COMMON_STRING_UTIL_H_
