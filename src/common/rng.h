// Deterministic pseudo-random number generation for data generation,
// noise injection, and property tests. All randomness in the repository
// flows through this class so that every run is reproducible from a seed.
#ifndef MAYBMS_COMMON_RNG_H_
#define MAYBMS_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace maybms {

/// xoshiro256** PRNG. Small, fast, seedable; not cryptographic.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams.
  explicit Rng(uint64_t seed = 42);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t NextBelow(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Random probability vector of length n (each entry > 0, sums to 1).
  std::vector<double> NextProbabilities(int n);

  /// Zipf-distributed rank in [0, n) with exponent s (s=0 is uniform).
  /// Used to give generated census attributes realistic skew.
  uint64_t NextZipf(uint64_t n, double s);

  // --- deterministic substreams (parallel sampling) ----------------------
  /// A derived generator for substream `stream`: its state is a hash of
  /// this generator's current state and the stream id, so distinct
  /// stream ids yield statistically independent sequences and equal
  /// (state, stream) pairs yield equal sequences. Split() does not
  /// advance this generator — parallel workers can each take
  /// `base.Split(i)` for their work-item index i and produce results
  /// that are bit-identical for a fixed seed regardless of how items
  /// are scheduled onto threads.
  Rng Split(uint64_t stream) const;

  /// Advances this generator by 2^128 steps of Next() (the xoshiro256**
  /// jump polynomial): partitions one seed's stream into 2^128
  /// non-overlapping blocks for long-lived parallel consumers.
  void Jump();

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = NextBelow(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace maybms

#endif  // MAYBMS_COMMON_RNG_H_
