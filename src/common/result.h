// Result<T>: a value or a Status, in the style of arrow::Result.
#ifndef MAYBMS_COMMON_RESULT_H_
#define MAYBMS_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace maybms {

/// Holds either a value of type T or an error Status.
///
/// Usage:
///   Result<Relation> r = LoadCsv(path);
///   if (!r.ok()) return r.status();
///   Relation rel = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, so functions can `return value;`).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from an error status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// The error status; OK if a value is held.
  const Status& status() const { return status_; }

  /// Value accessors; undefined behaviour when !ok() (asserts in debug).
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace maybms

#endif  // MAYBMS_COMMON_RESULT_H_
