// Dense union-find over [0, n) with path halving — shared by slot
// grouping (core/factorize.cc) and factor clustering (core/cluster.cc).
#ifndef MAYBMS_COMMON_UNION_FIND_H_
#define MAYBMS_COMMON_UNION_FIND_H_

#include <cstdint>
#include <numeric>
#include <vector>

namespace maybms {

struct DenseUnionFind {
  std::vector<uint32_t> parent;
  explicit DenseUnionFind(size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  uint32_t Find(uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void Union(uint32_t a, uint32_t b) { parent[Find(a)] = Find(b); }
};

}  // namespace maybms

#endif  // MAYBMS_COMMON_UNION_FIND_H_
