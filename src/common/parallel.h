// A small fixed thread pool with a ParallelFor over independent work
// items. The probabilistic aggregates (confidence.cc) evaluate
// independence clusters concurrently through this: clusters share no
// components, so per-cluster work is embarrassingly parallel and only
// reads the (const, thread-safe) WsdDb.
//
// Design: one process-wide pool of hardware_concurrency()-1 persistent
// workers; the calling thread always participates, so `num_threads`
// bounds the total parallelism including the caller. Indices are claimed
// dynamically from a shared atomic counter (work items of very uneven
// cost — cluster state spaces vary by orders of magnitude — would starve
// a static partition).
#ifndef MAYBMS_COMMON_PARALLEL_H_
#define MAYBMS_COMMON_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace maybms {

/// Threads used when a caller passes num_threads == 0:
/// std::thread::hardware_concurrency(), at least 1.
size_t DefaultNumThreads();

/// A fixed pool of persistent worker threads executing index-sharded
/// loops. One loop runs at a time; concurrent ParallelFor calls queue.
class ThreadPool {
 public:
  /// Spawns `workers` persistent threads. Callers of ParallelFor
  /// participate too, so a pool of DefaultNumThreads()-1 saturates the
  /// machine.
  explicit ThreadPool(size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool, sized once to the hardware.
  static ThreadPool& Shared();

  /// Runs fn(i) for every i in [0, n), on at most `max_threads` threads
  /// (calling thread included; 0 means "all"); blocks until every index
  /// completed. fn must not throw — report failures through captured
  /// per-index state (e.g. a Status vector indexed by i). A call made
  /// from inside a running fn executes inline on the calling thread.
  void ParallelFor(size_t n, size_t max_threads,
                   const std::function<void(size_t)>& fn);

  size_t NumWorkers() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< wakes idle workers
  std::condition_variable done_cv_;  ///< wakes the ParallelFor caller(s)
  uint64_t generation_ = 0;          ///< bumped per submitted loop
  const std::function<void(size_t)>* fn_ = nullptr;  ///< current loop
  size_t n_ = 0;
  size_t allowed_ = 0;  ///< workers that may still join the current loop
  size_t active_ = 0;   ///< workers currently inside the current loop
  std::atomic<size_t> next_{0};
  std::atomic<size_t> done_count_{0};
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

/// Convenience wrapper over ThreadPool::Shared(): runs fn(i) for i in
/// [0, n) on up to `num_threads` threads (0 → DefaultNumThreads();
/// 1 → plain inline loop, no synchronization at all).
void ParallelFor(size_t num_threads, size_t n,
                 const std::function<void(size_t)>& fn);

/// A task-queue pool for independent, long-lived jobs — the server's
/// worker threads. Unlike ThreadPool (one index-sharded loop at a time,
/// caller participates), TaskPool runs arbitrary submitted closures on
/// its own threads and the submitter never blocks; that makes it safe
/// for tasks that themselves call ThreadPool::ParallelFor.
class TaskPool {
 public:
  /// Spawns `workers` threads (0 → DefaultNumThreads()).
  explicit TaskPool(size_t workers);
  /// Drains: waits for queued + running tasks, then joins the threads.
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Enqueues `task` for execution on some worker. Tasks must not
  /// throw. Returns false when the pool is shutting down (the task is
  /// dropped — the server checks this on its accept path).
  bool Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running.
  void Drain();

  size_t NumWorkers() const { return threads_.size(); }
  /// Tasks queued but not yet picked up (snapshot; for admission tests).
  size_t QueueDepth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< wakes idle workers
  std::condition_variable idle_cv_;  ///< wakes Drain callers
  std::deque<std::function<void()>> queue_;
  size_t running_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace maybms

#endif  // MAYBMS_COMMON_PARALLEL_H_
