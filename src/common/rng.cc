#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace maybms {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used only to expand the seed into the xoshiro state.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& w : s_) w = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

std::vector<double> Rng::NextProbabilities(int n) {
  assert(n > 0);
  std::vector<double> out(n);
  double total = 0.0;
  for (auto& x : out) {
    // Shift away from zero so every alternative keeps nonzero mass.
    x = 0.05 + NextDouble();
    total += x;
  }
  for (auto& x : out) x /= total;
  return out;
}

Rng Rng::Split(uint64_t stream) const {
  // Digest the four state words and the stream id into one 64-bit seed
  // via splitmix chaining; Rng(seed) then re-expands it. Chaining (as
  // opposed to XOR-folding) keeps permuted states from colliding.
  uint64_t chain = 0x9e3779b97f4a7c15ULL;
  for (uint64_t w : s_) {
    uint64_t t = chain ^ w;
    chain = SplitMix64(&t);
  }
  uint64_t t = chain ^ stream;
  return Rng(SplitMix64(&t));
}

void Rng::Jump() {
  // Official xoshiro256** jump polynomial (advances by 2^128 steps).
  static constexpr uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      Next();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

uint64_t Rng::NextZipf(uint64_t n, double s) {
  assert(n > 0);
  if (s <= 0.0) return NextBelow(n);
  // Inverse-CDF sampling over precomputation-free harmonic approximation:
  // acceptable for generator use; exactness is not required.
  double u = NextDouble();
  double h = 0.0;
  // For small n compute exactly; for large n sample via the approximate
  // continuous inverse to stay O(1).
  if (n <= 1024) {
    double norm = 0.0;
    for (uint64_t k = 1; k <= n; ++k) norm += std::pow(k, -s);
    double target = u * norm;
    for (uint64_t k = 1; k <= n; ++k) {
      h += std::pow(k, -s);
      if (h >= target) return k - 1;
    }
    return n - 1;
  }
  // Continuous approximation: P(X <= x) ~ (x^{1-s}-1)/(n^{1-s}-1), s != 1.
  if (s == 1.0) s = 1.0000001;
  double x = std::pow(u * (std::pow(static_cast<double>(n), 1.0 - s) - 1.0) + 1.0,
                      1.0 / (1.0 - s));
  uint64_t k = static_cast<uint64_t>(x);
  if (k >= n) k = n - 1;
  return k;
}

}  // namespace maybms
