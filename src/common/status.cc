#include "common/status.h"

namespace maybms {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kTypeMismatch:
      return "TypeMismatch";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kInconsistent:
      return "Inconsistent";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

}  // namespace maybms
