// Status: error propagation without exceptions across API boundaries.
// Follows the RocksDB/Arrow idiom: cheap OK path, code + message otherwise.
#ifndef MAYBMS_COMMON_STATUS_H_
#define MAYBMS_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace maybms {

/// Error categories used across the engine.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< caller passed something malformed
  kNotFound,          ///< named relation/attribute/component missing
  kAlreadyExists,     ///< catalog name collision
  kOutOfRange,        ///< index past the end, probability outside [0,1]
  kTypeMismatch,      ///< value/attribute type conflict
  kParseError,        ///< SQL front-end rejection
  kUnsupported,       ///< feature intentionally out of scope
  kResourceExhausted, ///< enumeration/merge budget exceeded
  kInternal,          ///< invariant violation (a bug)
  kInconsistent,      ///< world-set became empty (e.g. cleaning removed all)
  kIOError,           ///< operating-system I/O failure (errno in message)
  kUnavailable,       ///< transient I/O failure; safe to retry with backoff
};

/// Human-readable name of a StatusCode ("InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Result of an operation: either OK or a code with a message.
///
/// The OK status carries no allocation; error states allocate one small
/// struct. Statuses are value types and cheap to move.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given error code and message.
  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_shared<Rep>(Rep{code, std::move(msg)});
    }
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status TypeMismatch(std::string msg) {
    return Status(StatusCode::kTypeMismatch, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Inconsistent(std::string msg) {
    return Status(StatusCode::kInconsistent, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->msg : kEmpty;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string msg;
  };
  // shared_ptr keeps Status copyable (needed by Result<T>); error path only.
  std::shared_ptr<const Rep> rep_;
};

}  // namespace maybms

/// Propagates a non-OK Status to the caller.
#define MAYBMS_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::maybms::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (0)

/// Evaluates an expression yielding Result<T>; on error returns the Status,
/// otherwise assigns the value to `lhs`.
#define MAYBMS_ASSIGN_OR_RETURN(lhs, expr)      \
  auto MAYBMS_CONCAT_(_res_, __LINE__) = (expr);                   \
  if (!MAYBMS_CONCAT_(_res_, __LINE__).ok())                       \
    return MAYBMS_CONCAT_(_res_, __LINE__).status();               \
  lhs = std::move(MAYBMS_CONCAT_(_res_, __LINE__)).value()

#define MAYBMS_CONCAT_IMPL_(a, b) a##b
#define MAYBMS_CONCAT_(a, b) MAYBMS_CONCAT_IMPL_(a, b)

#endif  // MAYBMS_COMMON_STATUS_H_
