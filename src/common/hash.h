// Hash combinators used by relations, components and plan caches.
#ifndef MAYBMS_COMMON_HASH_H_
#define MAYBMS_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>

namespace maybms {

/// Mixes `v` into the running hash `seed` (boost::hash_combine style,
/// strengthened with a 64-bit finalizer).
inline void HashCombine(size_t* seed, size_t v) {
  uint64_t x = static_cast<uint64_t>(*seed) ^
               (static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ULL +
                (static_cast<uint64_t>(*seed) << 6) +
                (static_cast<uint64_t>(*seed) >> 2));
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  *seed = static_cast<size_t>(x);
}

/// FNV-1a over raw bytes; stable across platforms for test fixtures.
inline uint64_t HashBytes(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t HashString(std::string_view s) {
  return HashBytes(s.data(), s.size());
}

}  // namespace maybms

#endif  // MAYBMS_COMMON_HASH_H_
