// Confidence computation: the probability constructs of the query
// language (prob(), possible, certain answers, expected aggregates).
//
// conf(v) for a value-vector v over relation R is the probability that
// some tuple of R carries exactly the values v — the paper's prob()
// semantics ("computed by summing up the probabilities of this event over
// all such worlds").
//
// Exact algorithm (shared cluster subsystem, core/cluster.h): template
// tuples are partitioned into independence clusters (tuples connected
// through shared components, after locally factorizing components into
// independent factors); within a cluster the joint distribution is
// enumerated (budgeted), across clusters the absence probabilities
// multiply. Independent clusters are evaluated concurrently on a fixed
// thread pool (common/parallel.h). Confidence computation is #P-hard in
// general; the decomposition keeps typical or-set workloads polynomial
// because factorized clusters stay small.
#ifndef MAYBMS_CORE_CONFIDENCE_H_
#define MAYBMS_CORE_CONFIDENCE_H_

#include <string>

#include "common/result.h"
#include "core/wsd.h"

namespace maybms {

class MaterializedConf;  // core/materialized_conf.h

struct ConfidenceOptions {
  /// Budget on the number of joint states enumerated per cluster.
  size_t max_cluster_states = 1u << 20;
  /// Tolerance when classifying certainty (conf >= 1 - eps).
  double eps = 1e-9;
  /// Threads evaluating independent clusters / per-tuple terms
  /// concurrently: 0 = hardware concurrency, 1 = fully serial.
  size_t num_threads = 0;
  /// Locally factorize components into independent factors before
  /// enumeration (core/cluster.h): turns Π-sized cluster state spaces
  /// into sums of per-factor products. Off reproduces naive
  /// whole-component enumeration (differential tests, benchmarks).
  bool factorize_clusters = true;
  /// Optional content-keyed cache of per-cluster results
  /// (core/materialized_conf.h). When set, CONF re-scans only clusters
  /// whose components changed since they were last evaluated and
  /// replays the cheap 1-Lipschitz combine over cached mass maps for
  /// the rest; ECOUNT/ESUM memoize their per-tuple terms the same way.
  /// Results are bit-identical with and without the cache. Not owned.
  MaterializedConf* cache = nullptr;
};

/// Distinct possible value-vectors of `rel` with a trailing "conf" column
/// (DOUBLE): the probability that the vector appears in the relation.
/// Rows are sorted descending by confidence, ties broken by value order.
Result<Relation> ConfTable(const WsdDb& db, const std::string& rel,
                           const ConfidenceOptions& options = {});

/// Vectors with conf > 0 — the possible answers. Zero-confidence vectors
/// (possible only through rounding or zero-probability component rows)
/// are dropped; the conf column is kept.
Result<Relation> PossibleTuples(const WsdDb& db, const std::string& rel,
                                const ConfidenceOptions& options = {});

/// Vectors with conf >= 1 - eps — the certain answers (without the conf
/// column).
Result<Relation> CertainTuples(const WsdDb& db, const std::string& rel,
                               const ConfidenceOptions& options = {});

/// Expected number of tuples of `rel` (sum of existence probabilities) —
/// a probabilistic-aggregate extension. Terms are computed concurrently
/// (options.num_threads) and summed in tuple order, so the result is
/// deterministic across thread counts.
Result<double> ExpectedCount(const WsdDb& db, const std::string& rel,
                             const ConfidenceOptions& options = {});

/// Expected value of SUM(column) over the worlds: by linearity,
/// Σ_t E[v_t · alive_t], each term computed exactly over the tuple's own
/// factorized component cluster (budgeted by options.max_cluster_states).
/// NULL values contribute 0 (as SQL SUM ignores them); ⊥ values mean the
/// tuple is absent in that state and also contribute 0.
Result<double> ExpectedSum(const WsdDb& db, const std::string& rel,
                           const std::string& column,
                           const ConfidenceOptions& options = {});

}  // namespace maybms

#endif  // MAYBMS_CORE_CONFIDENCE_H_
