#include "core/snapshot_v3.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "common/hash.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "core/serialize.h"
#include "storage/value_pool.h"

namespace maybms {
namespace snapshotv3 {

std::pair<uint8_t, uint64_t> PackedToWire(const PackedValue& v,
                                          SnapshotStringTable* strings) {
  switch (v.tag()) {
    case PackedTag::kNull:
    case PackedTag::kBottom:
      return {static_cast<uint8_t>(v.tag()), 0};
    case PackedTag::kBool:
      return {static_cast<uint8_t>(v.tag()), v.as_bool() ? 1u : 0u};
    case PackedTag::kInt:
      return {static_cast<uint8_t>(v.tag()),
              static_cast<uint64_t>(v.as_int())};
    case PackedTag::kDouble:
      return {static_cast<uint8_t>(v.tag()), DoubleBits(v.as_double())};
    case PackedTag::kString:
      return {static_cast<uint8_t>(v.tag()),
              strings->IdForGlobal(v.string_id())};
  }
  return {0, 0};
}

Status PlaceComponentAt(WsdDb* db, size_t id, size_t placed, Component c) {
  if (id > placed + kMaxComponentIdGaps) {
    return Status::ParseError(
        StrFormat("component id %zu implies more than %zu dead-id gaps",
                  id, kMaxComponentIdGaps));
  }
  for (;;) {
    ComponentId got = db->AddComponent(Component());
    if (got == id) {
      db->mutable_component(got) = std::move(c);
      return Status::OK();
    }
    if (got > id) return Status::ParseError("component ids out of order");
    db->RemoveComponent(got);  // filler for a gap in the id space
  }
}

void AppendComponentRecord(const WsdDb& db, ComponentId id,
                           SnapshotStringTable* strings, std::string* out) {
  const Component& c = db.component(id);
  const size_t n_rows = c.NumRows();
  PutPod(out, static_cast<uint32_t>(id));
  PutPod(out, static_cast<uint32_t>(c.NumSlots()));
  PutPod(out, static_cast<uint64_t>(n_rows));
  for (const Slot& s : c.slots()) {
    PutPod(out, static_cast<uint64_t>(s.owner));
    PutLenString(out, s.label);
  }
  PutArray(out, c.probs());
  std::vector<uint8_t> tags;
  std::vector<uint64_t> payloads;
  for (size_t s = 0; s < c.NumSlots(); ++s) {
    const std::vector<PackedValue>& col = c.column(s);
    tags.resize(n_rows);
    payloads.resize(n_rows);
    for (size_t r = 0; r < n_rows; ++r) {
      std::tie(tags[r], payloads[r]) = PackedToWire(col[r], strings);
    }
    PutArray(out, tags);
    PutArray(out, payloads);
  }
}

Result<std::pair<uint32_t, Component>> DecodeComponentRecord(
    SnapshotCursor* cur, const std::vector<uint32_t>& local_to_global) {
  MAYBMS_ASSIGN_OR_RETURN(uint32_t id, cur->Read<uint32_t>());
  MAYBMS_ASSIGN_OR_RETURN(uint32_t n_slots, cur->Read<uint32_t>());
  MAYBMS_ASSIGN_OR_RETURN(uint64_t n_rows64, cur->Read<uint64_t>());
  const size_t n_rows = static_cast<size_t>(n_rows64);
  // Every slot record occupies at least 12 payload bytes (owner + label
  // length), so a slot count beyond that bound is corrupt; checking
  // before the reserve keeps a crafted count from forcing a huge
  // allocation.
  if (n_slots > cur->remaining() / 12) {
    return Status::ParseError("snapshot slot count exceeds payload");
  }
  std::vector<Slot> slots;
  slots.reserve(n_slots);
  for (uint32_t s = 0; s < n_slots; ++s) {
    MAYBMS_ASSIGN_OR_RETURN(uint64_t owner, cur->Read<uint64_t>());
    MAYBMS_ASSIGN_OR_RETURN(std::string label, cur->ReadLenString());
    slots.push_back({static_cast<OwnerId>(owner), std::move(label)});
  }
  std::vector<double> probs;
  MAYBMS_RETURN_IF_ERROR(cur->ReadArray(n_rows, &probs));
  std::vector<uint8_t> tags;
  std::vector<uint64_t> payloads;
  std::vector<std::vector<PackedValue>> cols(n_slots);
  for (uint32_t s = 0; s < n_slots; ++s) {
    MAYBMS_RETURN_IF_ERROR(cur->ReadArray(n_rows, &tags));
    MAYBMS_RETURN_IF_ERROR(cur->ReadArray(n_rows, &payloads));
    std::vector<PackedValue>& col = cols[s];
    col.resize(n_rows);
    // The hot loop of a load: one direct switch per packed cell, no
    // temporaries — a column deserializes at near-memcpy speed.
    for (size_t r = 0; r < n_rows; ++r) {
      const uint64_t payload = payloads[r];
      switch (tags[r]) {
        case static_cast<uint8_t>(PackedTag::kNull):
          col[r] = PackedValue::Null();
          break;
        case static_cast<uint8_t>(PackedTag::kBottom):
          col[r] = PackedValue::Bottom();
          break;
        case static_cast<uint8_t>(PackedTag::kBool):
          col[r] = PackedValue::Bool(payload != 0);
          break;
        case static_cast<uint8_t>(PackedTag::kInt):
          col[r] = PackedValue::Int(static_cast<int64_t>(payload));
          break;
        case static_cast<uint8_t>(PackedTag::kDouble):
          col[r] = PackedValue::Double(BitsToDouble(payload));
          break;
        case static_cast<uint8_t>(PackedTag::kString):
          if (payload >= local_to_global.size()) {
            return Status::ParseError("snapshot string id out of range");
          }
          col[r] = PackedValue::StringId(
              local_to_global[static_cast<size_t>(payload)]);
          break;
        default:
          return Status::ParseError(
              "component cell tag out of range in snapshot");
      }
    }
  }
  MAYBMS_ASSIGN_OR_RETURN(
      Component c, Component::FromColumns(std::move(slots), std::move(cols),
                                          std::move(probs)));
  return std::make_pair(id, std::move(c));
}

Status BuildTupleRange(std::vector<WsdTuple>* tuples, size_t begin,
                       size_t end, uint32_t n_cols,
                       const std::vector<uint32_t>& dep_counts,
                       const std::vector<uint64_t>& dep_offsets,
                       const std::vector<uint64_t>& deps_flat,
                       const std::vector<uint8_t>& tags,
                       const std::vector<uint64_t>& payloads,
                       const std::vector<const std::string*>& local_strings) {
  for (size_t t_i = begin; t_i < end; ++t_i) {
    WsdTuple& t = (*tuples)[t_i];
    size_t dep_pos = static_cast<size_t>(dep_offsets[t_i]);
    t.deps.reserve(dep_counts[t_i]);
    for (uint32_t d = 0; d < dep_counts[t_i]; ++d) {
      // Written sorted and unique; CheckInvariants re-verifies after the
      // load, so a corrupted snapshot cannot smuggle unsorted deps in.
      t.deps.push_back(static_cast<OwnerId>(deps_flat[dep_pos + d]));
    }
    t.cells.reserve(n_cols);
    size_t i = static_cast<size_t>(t_i) * n_cols;
    for (uint32_t c = 0; c < n_cols; ++c, ++i) {
      const uint64_t payload = payloads[i];
      switch (tags[i]) {
        case kCellRef:
          t.cells.push_back(
              Cell::Ref({static_cast<ComponentId>(payload & 0xffffffffu),
                         static_cast<uint32_t>(payload >> 32)}));
          break;
        case static_cast<uint8_t>(PackedTag::kNull):
          t.cells.push_back(Cell::Certain(Value::Null()));
          break;
        case static_cast<uint8_t>(PackedTag::kBottom):
          // Invalid as an inline cell; constructed anyway so the final
          // CheckInvariants reports it as the structured error it is.
          t.cells.push_back(Cell::Certain(Value::Bottom()));
          break;
        case static_cast<uint8_t>(PackedTag::kBool):
          t.cells.push_back(Cell::Certain(Value::Bool(payload != 0)));
          break;
        case static_cast<uint8_t>(PackedTag::kInt):
          t.cells.push_back(
              Cell::Certain(Value::Int(static_cast<int64_t>(payload))));
          break;
        case static_cast<uint8_t>(PackedTag::kDouble):
          t.cells.push_back(Cell::Certain(Value::Double(
              BitsToDouble(payload))));
          break;
        case static_cast<uint8_t>(PackedTag::kString): {
          if (payload >= local_strings.size()) {
            return Status::ParseError("snapshot string id out of range");
          }
          t.cells.push_back(Cell::Certain(
              Value::String(*local_strings[static_cast<size_t>(payload)])));
          break;
        }
        default:
          return Status::ParseError(
              StrFormat("unknown snapshot cell tag %u", tags[i]));
      }
    }
  }
  return Status::OK();
}

void AppendShardRecord(const WsdRelation& rel, size_t row_begin,
                       size_t row_end, SnapshotStringTable* strings,
                       std::string* out) {
  const size_t n_cols = rel.schema().size();
  const size_t n = row_end - row_begin;
  std::vector<uint32_t> dep_counts;
  std::vector<uint64_t> deps_flat;
  dep_counts.reserve(n);
  for (size_t i = row_begin; i < row_end; ++i) {
    const WsdTuple& t = rel.tuple(i);
    dep_counts.push_back(static_cast<uint32_t>(t.deps.size()));
    for (OwnerId o : t.deps) deps_flat.push_back(static_cast<uint64_t>(o));
  }
  PutArray(out, dep_counts);
  PutPod(out, static_cast<uint64_t>(deps_flat.size()));
  PutArray(out, deps_flat);
  std::vector<uint8_t> tags(n * n_cols);
  std::vector<uint64_t> payloads(n * n_cols);
  size_t i = 0;
  for (size_t r = row_begin; r < row_end; ++r) {
    for (const Cell& cell : rel.tuple(r).cells) {
      if (cell.is_ref()) {
        tags[i] = kCellRef;
        payloads[i] = static_cast<uint64_t>(cell.ref().cid) |
                      (static_cast<uint64_t>(cell.ref().slot) << 32);
      } else {
        const Value& v = cell.value();
        if (v.is_string()) {
          // Certain cells hold inline Values; key the table by content
          // so they share entries with pooled component strings.
          tags[i] = static_cast<uint8_t>(PackedTag::kString);
          payloads[i] = strings->IdForContent(v.as_string());
        } else {
          std::tie(tags[i], payloads[i]) =
              PackedToWire(PackedValue::FromValue(v), strings);
        }
      }
      ++i;
    }
  }
  PutArray(out, tags);
  PutArray(out, payloads);
}

Status DecodeShardRecord(std::string_view block, uint32_t n_cols,
                         size_t row_begin, size_t row_end,
                         const std::vector<const std::string*>& local_strings,
                         std::vector<WsdTuple>* tuples) {
  const size_t n = row_end - row_begin;
  SnapshotCursor cur(block);
  std::vector<uint32_t> dep_counts;
  MAYBMS_RETURN_IF_ERROR(cur.ReadArray(n, &dep_counts));
  MAYBMS_ASSIGN_OR_RETURN(uint64_t n_deps, cur.Read<uint64_t>());
  std::vector<uint64_t> deps_flat;
  MAYBMS_RETURN_IF_ERROR(
      cur.ReadArray(static_cast<size_t>(n_deps), &deps_flat));
  std::vector<uint64_t> dep_offsets(n);
  uint64_t dep_pos = 0;
  for (size_t i = 0; i < n; ++i) {
    dep_offsets[i] = dep_pos;
    dep_pos += dep_counts[i];
  }
  if (dep_pos != deps_flat.size()) {
    return Status::ParseError("snapshot shard dependency list inconsistent");
  }
  if (n_cols != 0 && n > cur.remaining() / n_cols) {
    return Status::ParseError("snapshot shard cell array exceeds payload");
  }
  std::vector<uint8_t> tags;
  std::vector<uint64_t> payloads;
  MAYBMS_RETURN_IF_ERROR(cur.ReadArray(n * n_cols, &tags));
  MAYBMS_RETURN_IF_ERROR(cur.ReadArray(n * n_cols, &payloads));
  // Blocks are self-contained; trailing bytes other than the writer's
  // 8-alignment padding would mean a framing bug.
  if (cur.remaining() >= 8) {
    return Status::ParseError("trailing bytes in snapshot shard block");
  }
  std::vector<WsdTuple> local(n);
  MAYBMS_RETURN_IF_ERROR(BuildTupleRange(&local, 0, n, n_cols, dep_counts,
                                         dep_offsets, deps_flat, tags,
                                         payloads, local_strings));
  for (size_t i = 0; i < n; ++i) {
    (*tuples)[row_begin + i] = std::move(local[i]);
  }
  return Status::OK();
}

// --- shard directory -------------------------------------------------------

std::string SerializeDirectory(const SnapshotDirectory& dir) {
  std::string out;
  PutPod(&out, static_cast<uint32_t>(dir.components.size()));
  for (const DirComponent& c : dir.components) {
    PutPod(&out, c.id);
    PutPod(&out, c.n_slots);
    PutPod(&out, c.n_rows);
    PutPod(&out, c.offset);
    PutPod(&out, c.length);
    PutPod(&out, c.checksum);
  }
  PutPod(&out, static_cast<uint32_t>(dir.relations.size()));
  for (const DirRelation& r : dir.relations) {
    PutLenString(&out, r.name);
    PutLenString(&out, r.display);
    PutPod(&out, static_cast<uint32_t>(r.schema.size()));
    for (size_t c = 0; c < r.schema.size(); ++c) {
      PutLenString(&out, r.schema.attr(c).name);
      PutPod(&out, static_cast<uint8_t>(r.schema.attr(c).type));
    }
    PutPod(&out, r.n_tuples);
    PutPod(&out, static_cast<uint32_t>(r.shards.size()));
    for (const DirShard& s : r.shards) {
      PutPod(&out, s.row_begin);
      PutPod(&out, s.row_end);
      PutPod(&out, s.offset);
      PutPod(&out, s.length);
      PutPod(&out, s.checksum);
      PutPod(&out, static_cast<uint32_t>(s.ref_components.size()));
      PutArray(&out, s.ref_components);
      for (const ShardColumnRange& range : s.ranges) {
        PutPod(&out, static_cast<uint8_t>(range.valid ? 1 : 0));
        PutPod(&out, DoubleBits(range.lo));
        PutPod(&out, DoubleBits(range.hi));
      }
    }
  }
  return out;
}

Result<SnapshotDirectory> ParseDirectory(std::string_view payload) {
  SnapshotDirectory dir;
  SnapshotCursor cur(payload);
  MAYBMS_ASSIGN_OR_RETURN(uint32_t n_comps, cur.Read<uint32_t>());
  if (n_comps > cur.remaining() / 40) {  // 40 = fixed entry size
    return Status::ParseError("snapshot directory component count exceeds payload");
  }
  dir.components.reserve(n_comps);
  for (uint32_t k = 0; k < n_comps; ++k) {
    DirComponent c;
    MAYBMS_ASSIGN_OR_RETURN(c.id, cur.Read<uint32_t>());
    MAYBMS_ASSIGN_OR_RETURN(c.n_slots, cur.Read<uint32_t>());
    MAYBMS_ASSIGN_OR_RETURN(c.n_rows, cur.Read<uint64_t>());
    MAYBMS_ASSIGN_OR_RETURN(c.offset, cur.Read<uint64_t>());
    MAYBMS_ASSIGN_OR_RETURN(c.length, cur.Read<uint64_t>());
    MAYBMS_ASSIGN_OR_RETURN(c.checksum, cur.Read<uint64_t>());
    if (k > 0 && c.id <= dir.components.back().id) {
      return Status::ParseError("snapshot directory component ids not ascending");
    }
    if (c.id > k + kMaxComponentIdGaps) {
      return Status::ParseError(
          StrFormat("component id %u implies more than %zu dead-id gaps",
                    c.id, kMaxComponentIdGaps));
    }
    dir.components.push_back(c);
  }
  MAYBMS_ASSIGN_OR_RETURN(uint32_t n_rels, cur.Read<uint32_t>());
  dir.relations.reserve(std::min<size_t>(n_rels, cur.remaining()));
  for (uint32_t k = 0; k < n_rels; ++k) {
    DirRelation r;
    MAYBMS_ASSIGN_OR_RETURN(r.name, cur.ReadLenString());
    MAYBMS_ASSIGN_OR_RETURN(r.display, cur.ReadLenString());
    MAYBMS_ASSIGN_OR_RETURN(uint32_t n_cols, cur.Read<uint32_t>());
    for (uint32_t c = 0; c < n_cols; ++c) {
      MAYBMS_ASSIGN_OR_RETURN(std::string col, cur.ReadLenString());
      MAYBMS_ASSIGN_OR_RETURN(uint8_t type, cur.Read<uint8_t>());
      if (type > static_cast<uint8_t>(ValueType::kString)) {
        return Status::ParseError("attribute type out of range in snapshot");
      }
      MAYBMS_RETURN_IF_ERROR(
          r.schema.Add({std::move(col), static_cast<ValueType>(type)}));
    }
    MAYBMS_ASSIGN_OR_RETURN(r.n_tuples, cur.Read<uint64_t>());
    MAYBMS_ASSIGN_OR_RETURN(uint32_t n_shards, cur.Read<uint32_t>());
    if (n_shards > cur.remaining() / 40) {
      return Status::ParseError("snapshot directory shard count exceeds payload");
    }
    r.shards.reserve(n_shards);
    uint64_t expect_row = 0;
    for (uint32_t s = 0; s < n_shards; ++s) {
      DirShard sh;
      MAYBMS_ASSIGN_OR_RETURN(sh.row_begin, cur.Read<uint64_t>());
      MAYBMS_ASSIGN_OR_RETURN(sh.row_end, cur.Read<uint64_t>());
      MAYBMS_ASSIGN_OR_RETURN(sh.offset, cur.Read<uint64_t>());
      MAYBMS_ASSIGN_OR_RETURN(sh.length, cur.Read<uint64_t>());
      MAYBMS_ASSIGN_OR_RETURN(sh.checksum, cur.Read<uint64_t>());
      if (sh.row_begin != expect_row || sh.row_end <= sh.row_begin ||
          sh.row_end > r.n_tuples) {
        return Status::ParseError("snapshot shard row ranges not contiguous");
      }
      expect_row = sh.row_end;
      MAYBMS_ASSIGN_OR_RETURN(uint32_t n_refs, cur.Read<uint32_t>());
      MAYBMS_RETURN_IF_ERROR(cur.ReadArray(n_refs, &sh.ref_components));
      sh.ranges.resize(n_cols);
      for (uint32_t c = 0; c < n_cols; ++c) {
        MAYBMS_ASSIGN_OR_RETURN(uint8_t valid, cur.Read<uint8_t>());
        MAYBMS_ASSIGN_OR_RETURN(uint64_t lo, cur.Read<uint64_t>());
        MAYBMS_ASSIGN_OR_RETURN(uint64_t hi, cur.Read<uint64_t>());
        sh.ranges[c].valid = valid != 0;
        sh.ranges[c].lo = BitsToDouble(lo);
        sh.ranges[c].hi = BitsToDouble(hi);
      }
      r.shards.push_back(std::move(sh));
    }
    if (expect_row != r.n_tuples) {
      return Status::ParseError("snapshot shards do not cover the relation");
    }
    dir.relations.push_back(std::move(r));
  }
  if (!cur.AtEnd()) {
    return Status::ParseError("trailing bytes in snapshot SDIR section");
  }
  return dir;
}

std::string BuildMetaPayloadV3(const WsdDb& db) {
  std::string meta;
  PutPod(&meta, kEndianMark);
  PutPod(&meta, static_cast<uint64_t>(db.options().max_component_rows));
  PutPod(&meta, static_cast<uint64_t>(db.owner_counter()));
  PutPod(&meta, static_cast<uint64_t>(db.options().rows_per_shard));
  PutPod(&meta, static_cast<uint64_t>(db.component_slot_count()));
  return meta;
}

Result<MetaV3> ParseMetaV3(std::string_view payload) {
  SnapshotCursor cur(payload);
  MAYBMS_ASSIGN_OR_RETURN(uint32_t endian, cur.Read<uint32_t>());
  if (endian != kEndianMark) {
    return Status::Unsupported(
        "snapshot was written on a machine with a different byte order");
  }
  MetaV3 meta;
  MAYBMS_ASSIGN_OR_RETURN(meta.max_component_rows, cur.Read<uint64_t>());
  MAYBMS_ASSIGN_OR_RETURN(meta.owner_counter, cur.Read<uint64_t>());
  MAYBMS_ASSIGN_OR_RETURN(meta.rows_per_shard, cur.Read<uint64_t>());
  if (!cur.AtEnd()) {
    // Optional trailing field (snapshots written since the WAL landed).
    MAYBMS_ASSIGN_OR_RETURN(meta.component_counter, cur.Read<uint64_t>());
  }
  if (!cur.AtEnd()) {
    return Status::ParseError("trailing bytes in snapshot META section");
  }
  return meta;
}

Result<std::string_view> SliceBlock(std::string_view payload,
                                    uint64_t offset, uint64_t length,
                                    uint64_t checksum, const char* what) {
  if (offset % 8 != 0) {
    return Status::ParseError(
        StrFormat("snapshot %s block offset not 8-aligned", what));
  }
  if (offset > payload.size() || length > payload.size() - offset) {
    return Status::ParseError(
        StrFormat("snapshot %s block out of bounds", what));
  }
  std::string_view block = payload.substr(static_cast<size_t>(offset),
                                          static_cast<size_t>(length));
  if (HashBytes(block.data(), block.size()) != checksum) {
    return Status::ParseError(
        StrFormat("snapshot %s block failed checksum verification", what));
  }
  return block;
}

Result<std::vector<SectionView>> WalkSnapshotSections(std::string_view body) {
  std::vector<SectionView> out;
  size_t pos = 0;
  while (pos < body.size()) {
    if (body.size() - pos < 20) {
      return Status::ParseError("truncated snapshot section header");
    }
    SectionView s;
    uint64_t len = 0;
    std::memcpy(&s.tag, body.data() + pos, 4);
    std::memcpy(&len, body.data() + pos + 4, 8);
    std::memcpy(&s.checksum, body.data() + pos + 12, 8);
    pos += 20;
    if (len > body.size() - pos) {
      return Status::ParseError(StrFormat(
          "truncated snapshot section %s: expected %llu payload bytes",
          SnapshotTagName(s.tag).c_str(),
          static_cast<unsigned long long>(len)));
    }
    s.payload = body.substr(pos, static_cast<size_t>(len));
    pos += static_cast<size_t>(len);
    out.push_back(s);
    if (s.tag == kSecEnd) break;
  }
  return out;
}

namespace {

void PadTo8(std::string* s) {
  while (s->size() % 8 != 0) s->push_back('\0');
}

Result<SnapshotSection> ReadSectionExpecting(std::istream& in, uint32_t tag) {
  MAYBMS_ASSIGN_OR_RETURN(SnapshotSection s, ReadSnapshotSection(in));
  if (s.tag != tag) {
    return Status::ParseError(
        StrFormat("expected snapshot section %s, got %s",
                  SnapshotTagName(tag).c_str(),
                  SnapshotTagName(s.tag).c_str()));
  }
  return s;
}

/// Reconstructs the relation's cached ShardPartition from directory
/// entries so a freshly loaded database answers EXPLAIN shard-pruning
/// questions without a recompute.
std::shared_ptr<const ShardPartition> PartitionFromDir(
    const DirRelation& dr, uint64_t rows_per_shard) {
  auto part = std::make_shared<ShardPartition>();
  part->rows_per_shard =
      rows_per_shard == 0
          ? std::max<size_t>(static_cast<size_t>(dr.n_tuples), 1)
          : static_cast<size_t>(rows_per_shard);
  part->shards.reserve(dr.shards.size());
  for (const DirShard& ds : dr.shards) {
    ShardInfo info;
    info.row_begin = static_cast<size_t>(ds.row_begin);
    info.row_end = static_cast<size_t>(ds.row_end);
    info.ranges = ds.ranges;
    info.ref_components = ds.ref_components;
    part->shards.push_back(std::move(info));
  }
  return part;
}

}  // namespace

Result<WsdDb> ReadWsdDbV3Body(std::istream& in) {
  if (in.get() != '\n') {
    return Status::ParseError("expected newline after binary snapshot header");
  }
  MAYBMS_ASSIGN_OR_RETURN(SnapshotSection meta_sec,
                          ReadSectionExpecting(in, kSecMeta));
  MAYBMS_ASSIGN_OR_RETURN(MetaV3 meta, ParseMetaV3(meta_sec.payload));

  MAYBMS_ASSIGN_OR_RETURN(SnapshotSection strs,
                          ReadSectionExpecting(in, kSecStrings));
  MAYBMS_ASSIGN_OR_RETURN(std::vector<uint32_t> local_to_global,
                          SnapshotStringTable::Restore(strs.payload));

  MAYBMS_ASSIGN_OR_RETURN(SnapshotSection sdir,
                          ReadSectionExpecting(in, kSecShardDir));
  MAYBMS_ASSIGN_OR_RETURN(SnapshotDirectory dir,
                          ParseDirectory(sdir.payload));

  MAYBMS_ASSIGN_OR_RETURN(SnapshotSection comp,
                          ReadSectionExpecting(in, kSecComponents));
  MAYBMS_ASSIGN_OR_RETURN(SnapshotSection rels,
                          ReadSectionExpecting(in, kSecRelations));
  MAYBMS_ASSIGN_OR_RETURN(SnapshotSection end,
                          ReadSectionExpecting(in, kSecEnd));
  if (!end.payload.empty()) {
    return Status::ParseError("snapshot END section carries payload");
  }

  WsdDb db;
  db.mutable_options().max_component_rows =
      static_cast<size_t>(meta.max_component_rows);
  db.mutable_options().rows_per_shard =
      static_cast<size_t>(meta.rows_per_shard);

  for (size_t k = 0; k < dir.components.size(); ++k) {
    const DirComponent& dc = dir.components[k];
    MAYBMS_ASSIGN_OR_RETURN(
        std::string_view block,
        SliceBlock(comp.payload, dc.offset, dc.length, dc.checksum,
                   "component"));
    SnapshotCursor cur(block);
    MAYBMS_ASSIGN_OR_RETURN(auto decoded,
                            DecodeComponentRecord(&cur, local_to_global));
    if (!cur.AtEnd()) {
      return Status::ParseError("trailing bytes in snapshot component block");
    }
    if (decoded.first != dc.id ||
        decoded.second.NumSlots() != dc.n_slots ||
        decoded.second.NumRows() != dc.n_rows) {
      return Status::ParseError(
          "snapshot component block disagrees with its directory entry");
    }
    MAYBMS_RETURN_IF_ERROR(
        PlaceComponentAt(&db, dc.id, k, std::move(decoded.second)));
  }

  // Materialize pool references once per distinct string: tuple builders
  // then read them without touching the pool's mutex per cell.
  std::vector<const std::string*> local_strings;
  local_strings.reserve(local_to_global.size());
  {
    ValuePool& pool = ValuePool::Global();
    for (uint32_t gid : local_to_global) {
      local_strings.push_back(&pool.Get(gid));
    }
  }
  for (const DirRelation& dr : dir.relations) {
    MAYBMS_RETURN_IF_ERROR(db.CreateRelation(dr.name, dr.schema));
    WsdRelation* rel = db.GetMutableRelation(dr.name).value();
    rel->set_display_name(dr.display);
    std::vector<WsdTuple>& tuples = rel->mutable_tuples();
    tuples.resize(static_cast<size_t>(dr.n_tuples));
    const uint32_t n_cols = static_cast<uint32_t>(dr.schema.size());
    // Shards are random-access and self-contained — decode them over the
    // pool, one task per shard.
    const size_t n_shards = dr.shards.size();
    std::vector<Status> shard_status(n_shards);
    ParallelFor(n_shards <= 1 ? 1 : 0, n_shards, [&](size_t s) {
      const DirShard& ds = dr.shards[s];
      Result<std::string_view> block = SliceBlock(
          rels.payload, ds.offset, ds.length, ds.checksum, "shard");
      if (!block.ok()) {
        shard_status[s] = block.status();
        return;
      }
      shard_status[s] = DecodeShardRecord(
          *block, n_cols, static_cast<size_t>(ds.row_begin),
          static_cast<size_t>(ds.row_end), local_strings, &tuples);
    });
    for (const Status& st : shard_status) MAYBMS_RETURN_IF_ERROR(st);
    rel->set_cached_shards(PartitionFromDir(dr, meta.rows_per_shard));
  }
  if (meta.owner_counter > 0) {
    db.BumpOwner(static_cast<OwnerId>(meta.owner_counter - 1));
  }
  // Restore the component-id allocation point (trailing dead slots carry
  // no payload, only the counter). Older snapshots have 0 here and keep
  // the "highest id present + 1" behavior.
  if (meta.component_counter > 0) {
    if (meta.component_counter <
            db.component_slot_count() ||
        meta.component_counter >
            db.component_slot_count() + kMaxComponentIdGaps) {
      return Status::ParseError(
          StrFormat("snapshot component counter %llu out of range",
                    static_cast<unsigned long long>(meta.component_counter)));
    }
    db.PadComponentSlots(static_cast<size_t>(meta.component_counter));
  }
  MAYBMS_RETURN_IF_ERROR(db.CheckInvariants());
  return db;
}

}  // namespace snapshotv3

Status WriteWsdDbBinaryV3(const WsdDb& db, std::ostream& out) {
  namespace sv3 = snapshotv3;
  out << "MAYBMS-WSD 3\n";
  SnapshotStringTable strings;
  sv3::SnapshotDirectory dir;

  std::string comp;
  for (ComponentId id : db.LiveComponents()) {
    sv3::PadTo8(&comp);
    sv3::DirComponent dc;
    const Component& c = db.component(id);
    dc.id = id;
    dc.n_slots = static_cast<uint32_t>(c.NumSlots());
    dc.n_rows = c.NumRows();
    dc.offset = comp.size();
    sv3::AppendComponentRecord(db, id, &strings, &comp);
    dc.length = comp.size() - dc.offset;
    dc.checksum = HashBytes(comp.data() + dc.offset,
                            static_cast<size_t>(dc.length));
    dir.components.push_back(dc);
  }

  std::string rels;
  for (const auto& [key, rel] : db.relations()) {
    ShardPartition part =
        ComputeShardPartition(db, rel, db.options().rows_per_shard);
    sv3::DirRelation dr;
    dr.name = rel.name();
    dr.display = rel.display_name();
    dr.schema = rel.schema();
    dr.n_tuples = rel.NumTuples();
    for (const ShardInfo& s : part.shards) {
      sv3::PadTo8(&rels);
      sv3::DirShard ds;
      ds.row_begin = s.row_begin;
      ds.row_end = s.row_end;
      ds.offset = rels.size();
      sv3::AppendShardRecord(rel, s.row_begin, s.row_end, &strings, &rels);
      ds.length = rels.size() - ds.offset;
      ds.checksum = HashBytes(rels.data() + ds.offset,
                              static_cast<size_t>(ds.length));
      ds.ref_components = s.ref_components;
      ds.ranges = s.ranges;
      dr.shards.push_back(std::move(ds));
    }
    dir.relations.push_back(std::move(dr));
  }

  MAYBMS_RETURN_IF_ERROR(
      WriteSnapshotSection(out, sv3::kSecMeta, sv3::BuildMetaPayloadV3(db)));
  MAYBMS_RETURN_IF_ERROR(
      WriteSnapshotSection(out, sv3::kSecStrings, strings.Serialize()));
  MAYBMS_RETURN_IF_ERROR(WriteSnapshotSection(out, sv3::kSecShardDir,
                                              sv3::SerializeDirectory(dir)));
  MAYBMS_RETURN_IF_ERROR(WriteSnapshotSection(out, sv3::kSecComponents, comp));
  MAYBMS_RETURN_IF_ERROR(WriteSnapshotSection(out, sv3::kSecRelations, rels));
  MAYBMS_RETURN_IF_ERROR(WriteSnapshotSection(out, sv3::kSecEnd, ""));
  if (!out.good()) return Status::Internal("stream write failure");
  return Status::OK();
}

}  // namespace maybms
