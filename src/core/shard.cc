#include "core/shard.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <utility>

namespace maybms {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Largest magnitude at which every int64 is exactly representable as a
// double; beyond it conversions round and ranges must be widened.
constexpr int64_t kExactInt = int64_t{1} << 53;

void ExtendDouble(ShardColumnRange* r, double d) {
  if (std::isnan(d)) {
    // NaN compares false with everything; a range cannot capture it.
    r->valid = false;
    return;
  }
  r->lo = std::min(r->lo, d);
  r->hi = std::max(r->hi, d);
}

void ExtendInt(ShardColumnRange* r, int64_t v) {
  double d = static_cast<double>(v);
  if (v > kExactInt || v < -kExactInt) {
    // The conversion may have rounded either way; widen one ulp outward
    // so the range still covers the true value.
    r->lo = std::min(r->lo, std::nextafter(d, -kInf));
    r->hi = std::max(r->hi, std::nextafter(d, kInf));
  } else {
    ExtendDouble(r, d);
  }
}

void ExtendValue(ShardColumnRange* r, const Value& v) {
  if (!r->valid) return;
  if (v.is_int()) {
    ExtendInt(r, v.as_int());
  } else if (v.is_double()) {
    ExtendDouble(r, v.as_double());
  } else {
    r->valid = false;
  }
}

void ExtendPacked(ShardColumnRange* r, const PackedValue& v) {
  if (!r->valid) return;
  switch (v.tag()) {
    case PackedTag::kInt:
      ExtendInt(r, v.as_int());
      break;
    case PackedTag::kDouble:
      ExtendDouble(r, v.as_double());
      break;
    default:
      r->valid = false;
      break;
  }
}

// Merges `from` into `into` (union of possible values).
void MergeRange(ShardColumnRange* into, const ShardColumnRange& from) {
  if (!from.valid) {
    into->valid = false;
    return;
  }
  if (!into->valid) return;
  into->lo = std::min(into->lo, from.lo);
  into->hi = std::max(into->hi, from.hi);
}

void CollectConjuncts(const Expr& e, std::vector<const Expr*>* out) {
  if (e.kind() == ExprKind::kAnd) {
    CollectConjuncts(*e.left(), out);
    CollectConjuncts(*e.right(), out);
    return;
  }
  out->push_back(&e);
}

// Conservative outward-widened double image of a numeric literal used as
// a bound endpoint: `as_lo` endpoints may only move down, `hi` only up.
double BoundEndpoint(const Value& v, bool as_lo) {
  if (v.is_double()) return v.as_double();
  int64_t i = v.as_int();
  double d = static_cast<double>(i);
  if (i > kExactInt || i < -kExactInt) {
    return std::nextafter(d, as_lo ? -kInf : kInf);
  }
  return d;
}

void ApplyBound(ColumnBound* b, CompareOp op, const Value& c) {
  if (c.is_double() && std::isnan(c.as_double())) return;
  switch (op) {
    case CompareOp::kEq:
      b->lo = std::max(b->lo, BoundEndpoint(c, /*as_lo=*/true));
      b->hi = std::min(b->hi, BoundEndpoint(c, /*as_lo=*/false));
      b->active = true;
      break;
    case CompareOp::kLt:
    case CompareOp::kLe:
      b->hi = std::min(b->hi, BoundEndpoint(c, /*as_lo=*/false));
      b->active = true;
      break;
    case CompareOp::kGt:
    case CompareOp::kGe:
      b->lo = std::max(b->lo, BoundEndpoint(c, /*as_lo=*/true));
      b->active = true;
      break;
    case CompareOp::kNe:
      break;  // excludes one point; useless for interval pruning
  }
}

CompareOp FlipOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt: return CompareOp::kGt;
    case CompareOp::kLe: return CompareOp::kGe;
    case CompareOp::kGt: return CompareOp::kLt;
    case CompareOp::kGe: return CompareOp::kLe;
    default: return op;  // kEq/kNe are symmetric
  }
}

}  // namespace

ShardPartition ComputeShardPartition(const WsdDb& db, const WsdRelation& rel,
                                     size_t rows_per_shard) {
  ShardPartition part;
  const size_t n = rel.NumTuples();
  const size_t per = rows_per_shard == 0 ? std::max<size_t>(n, 1)
                                         : rows_per_shard;
  part.rows_per_shard = per;
  if (n == 0) return part;

  // Owner -> components holding a slot of that owner (dep gating).
  std::map<OwnerId, std::vector<ComponentId>> owner_components;
  for (ComponentId id : db.LiveComponents()) {
    const Component& c = db.component(id);
    for (size_t s = 0; s < c.NumSlots(); ++s) {
      std::vector<ComponentId>& v = owner_components[c.slot(s).owner];
      if (v.empty() || v.back() != id) v.push_back(id);
    }
  }

  // Possible-value range of a component slot, memoized: many tuples in a
  // shard (and many shards) typically reference the same or-set column.
  std::map<std::pair<ComponentId, uint32_t>, ShardColumnRange> slot_ranges;
  auto slot_range = [&](const FieldRef& ref) -> const ShardColumnRange& {
    auto it = slot_ranges.find({ref.cid, ref.slot});
    if (it != slot_ranges.end()) return it->second;
    ShardColumnRange r;
    r.valid = true;
    const Component& c = db.component(ref.cid);
    for (size_t row = 0; row < c.NumRows(); ++row) {
      const PackedValue& pv = c.packed(row, ref.slot);
      if (pv.is_bottom()) continue;  // absent, not a possible value
      ExtendPacked(&r, pv);
      if (!r.valid) break;
    }
    return slot_ranges.emplace(std::make_pair(ref.cid, ref.slot), r)
        .first->second;
  };

  const size_t n_cols = rel.schema().size();
  const size_t n_shards = (n + per - 1) / per;
  part.shards.reserve(n_shards);
  for (size_t s = 0; s < n_shards; ++s) {
    ShardInfo shard;
    shard.row_begin = s * per;
    shard.row_end = std::min(n, shard.row_begin + per);
    shard.ranges.assign(n_cols, ShardColumnRange{});
    for (ShardColumnRange& r : shard.ranges) r.valid = true;

    for (size_t i = shard.row_begin; i < shard.row_end; ++i) {
      const WsdTuple& t = rel.tuple(i);
      for (size_t c = 0; c < t.cells.size() && c < n_cols; ++c) {
        ShardColumnRange& r = shard.ranges[c];
        if (!r.valid) continue;
        const Cell& cell = t.cells[c];
        if (cell.is_certain()) {
          ExtendValue(&r, cell.value());
        } else {
          if (db.IsLive(cell.ref().cid)) {
            MergeRange(&r, slot_range(cell.ref()));
          } else {
            r.valid = false;  // dangling ref: never prune on it
          }
          shard.ref_components.push_back(cell.ref().cid);
        }
      }
      for (OwnerId dep : t.deps) {
        auto it = owner_components.find(dep);
        if (it == owner_components.end()) continue;
        shard.ref_components.insert(shard.ref_components.end(),
                                    it->second.begin(), it->second.end());
      }
    }
    std::sort(shard.ref_components.begin(), shard.ref_components.end());
    shard.ref_components.erase(
        std::unique(shard.ref_components.begin(), shard.ref_components.end()),
        shard.ref_components.end());
    part.shards.push_back(std::move(shard));
  }
  return part;
}

const ShardPartition& GetShardPartition(const WsdDb& db,
                                        const WsdRelation& rel) {
  const size_t want = db.options().rows_per_shard;
  // Compute stores a normalized rows_per_shard (0 → whole relation);
  // compare against the same normalization so the cache hits.
  const size_t norm = want == 0 ? std::max<size_t>(rel.NumTuples(), 1) : want;
  std::shared_ptr<const ShardPartition> cached = rel.cached_shards();
  if (cached != nullptr && cached->rows_per_shard == norm) return *cached;
  auto fresh = std::make_shared<const ShardPartition>(
      ComputeShardPartition(db, rel, want));
  // Install-if-absent: concurrent readers share one database version, so
  // they compute against the same options and the same rows; whichever
  // CAS lands first wins and everyone adopts that object. A cached entry
  // with a *different* rows_per_shard can only exist across exclusive
  // phases (the options changed), so replacing it is safe too.
  while (!rel.cas_cached_shards(&cached, fresh)) {
    if (cached != nullptr && cached->rows_per_shard == norm) return *cached;
  }
  return *fresh;
}

std::vector<ColumnBound> ExtractColumnBounds(const Expr& pred,
                                             size_t num_cols) {
  std::vector<ColumnBound> bounds(num_cols);
  std::vector<const Expr*> conjuncts;
  CollectConjuncts(pred, &conjuncts);
  for (const Expr* e : conjuncts) {
    if (e->kind() == ExprKind::kCompare) {
      const Expr* col = e->left().get();
      const Expr* lit = e->right().get();
      CompareOp op = e->compare_op();
      if (col->kind() == ExprKind::kConst &&
          lit->kind() == ExprKind::kColumn) {
        std::swap(col, lit);
        op = FlipOp(op);
      }
      if (col->kind() != ExprKind::kColumn || !col->is_bound()) continue;
      if (lit->kind() != ExprKind::kConst ||
          !lit->const_value().is_numeric()) {
        continue;
      }
      if (col->column_index() >= num_cols) continue;
      ApplyBound(&bounds[col->column_index()], op, lit->const_value());
    } else if (e->kind() == ExprKind::kIn) {
      const Expr* col = e->left().get();
      if (col->kind() != ExprKind::kColumn || !col->is_bound()) continue;
      if (col->column_index() >= num_cols) continue;
      if (e->in_set().empty()) continue;
      bool all_numeric = true;
      ColumnBound set_bound;
      set_bound.lo = kInf;
      set_bound.hi = -kInf;
      for (const Value& v : e->in_set()) {
        if (!v.is_numeric() ||
            (v.is_double() && std::isnan(v.as_double()))) {
          all_numeric = false;
          break;
        }
        set_bound.lo = std::min(set_bound.lo, BoundEndpoint(v, true));
        set_bound.hi = std::max(set_bound.hi, BoundEndpoint(v, false));
      }
      if (!all_numeric) continue;
      ColumnBound& b = bounds[col->column_index()];
      b.lo = std::max(b.lo, set_bound.lo);
      b.hi = std::min(b.hi, set_bound.hi);
      b.active = true;
    }
  }
  return bounds;
}

bool ShardMayMatch(const ShardInfo& shard,
                   const std::vector<ColumnBound>& bounds) {
  const size_t n = std::min(shard.ranges.size(), bounds.size());
  for (size_t c = 0; c < n; ++c) {
    const ColumnBound& b = bounds[c];
    if (!b.active) continue;
    const ShardColumnRange& r = shard.ranges[c];
    if (!r.valid) continue;
    if (r.lo > b.hi || r.hi < b.lo) return false;
  }
  return true;
}

std::vector<char> PruneShards(const ShardPartition& partition,
                              const std::vector<ColumnBound>& bounds) {
  std::vector<char> keep(partition.shards.size(), 1);
  for (size_t i = 0; i < partition.shards.size(); ++i) {
    keep[i] = ShardMayMatch(partition.shards[i], bounds) ? 1 : 0;
  }
  return keep;
}

}  // namespace maybms
