#include "core/wsd.h"

#include <algorithm>
#include <cmath>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/string_util.h"

namespace maybms {

void WsdTuple::AddDep(OwnerId owner) {
  auto it = std::lower_bound(deps.begin(), deps.end(), owner);
  if (it == deps.end() || *it != owner) deps.insert(it, owner);
}

Status WsdDb::CreateRelation(std::string name, Schema schema) {
  std::string key = ToLower(name);
  if (relations_.count(key)) {
    return Status::AlreadyExists("relation already exists: " + name);
  }
  relations_.emplace(std::move(key),
                     WsdRelation(std::move(name), std::move(schema)));
  return Status::OK();
}

bool WsdDb::HasRelation(const std::string& name) const {
  return relations_.count(ToLower(name)) > 0;
}

Result<const WsdRelation*> WsdDb::GetRelation(const std::string& name) const {
  auto it = relations_.find(ToLower(name));
  if (it == relations_.end()) {
    return Status::NotFound("relation not found: " + name);
  }
  return &it->second;
}

Result<WsdRelation*> WsdDb::GetMutableRelation(const std::string& name) {
  auto it = relations_.find(ToLower(name));
  if (it == relations_.end()) {
    return Status::NotFound("relation not found: " + name);
  }
  return &it->second;
}

Status WsdDb::DropRelation(const std::string& name) {
  if (relations_.erase(ToLower(name)) == 0) {
    return Status::NotFound("relation not found: " + name);
  }
  return Status::OK();
}

std::vector<std::string> WsdDb::RelationNames() const {
  std::vector<std::string> out;
  out.reserve(relations_.size());
  for (const auto& [key, rel] : relations_) out.push_back(rel.name());
  return out;
}

ComponentId WsdDb::AddComponent(Component c) {
  // A fresh component is referenced by no template tuple yet, so the
  // cached shard partitions (ranges over *referenced* components) stay
  // valid — no invalidation here.
  components_.push_back(std::make_shared<Component>(std::move(c)));
  const auto id = static_cast<ComponentId>(components_.size() - 1);
  if (delta_scope_ != nullptr) {
    // Created counts as dirty: the delta's caller has never seen it.
    delta_scope_->dirty.push_back(id);
    for (const Slot& s : components_.back()->slots()) {
      delta_scope_->touched_owners.push_back(s.owner);
    }
  }
  return id;
}

const Component& WsdDb::component(ComponentId id) const {
  MAYBMS_CHECK(IsLive(id)) << "dead component " << id;
  return *components_[id];
}

Component& WsdDb::mutable_component(ComponentId id) {
  MAYBMS_CHECK(IsLive(id)) << "dead component " << id;
  if (delta_scope_ != nullptr) {
    // Inside ApplyDelta: record the dirty id; the delta epilogue
    // invalidates only the shard caches of relations that reference it.
    delta_scope_->dirty.push_back(id);
    for (const Slot& s : components_[id]->slots()) {
      delta_scope_->touched_owners.push_back(s.owner);
    }
  } else {
    InvalidateShardCaches();
  }
  std::shared_ptr<Component>& p = components_[id];
  // use_count() == 1 proves uniqueness: another thread can only bump the
  // count through a database copy that already shares this component,
  // which would make the count >= 2 to begin with.
  if (p.use_count() > 1) p = std::make_shared<Component>(*p);
  return *p;
}

void WsdDb::RemoveComponent(ComponentId id) {
  MAYBMS_CHECK(id < components_.size());
  if (delta_scope_ != nullptr) {
    delta_scope_->removed.push_back(id);
    if (components_[id] != nullptr) {
      for (const Slot& s : components_[id]->slots()) {
        delta_scope_->touched_owners.push_back(s.owner);
      }
    }
  } else {
    InvalidateShardCaches();
  }
  components_[id].reset();
}

void WsdDb::InvalidateShardCaches() {
  for (auto& [key, rel] : relations_) rel.set_cached_shards(nullptr);
}

std::vector<ComponentId> WsdDb::LiveComponents() const {
  std::vector<ComponentId> out;
  for (ComponentId i = 0; i < components_.size(); ++i) {
    if (components_[i] != nullptr) out.push_back(i);
  }
  return out;
}

size_t WsdDb::NumLiveComponents() const {
  size_t n = 0;
  for (const auto& c : components_) {
    if (c != nullptr) ++n;
  }
  return n;
}

Result<ComponentId> WsdDb::MergeComponents(std::vector<ComponentId> ids,
                                           size_t max_rows) {
  MAYBMS_ASSIGN_OR_RETURN(std::vector<ComponentId> merged,
                          MergeComponentGroups({std::move(ids)}, max_rows));
  return merged[0];
}

Result<std::vector<ComponentId>> WsdDb::MergeComponentGroups(
    const std::vector<std::vector<ComponentId>>& groups, size_t max_rows) {
  std::vector<ComponentId> result(groups.size(), kInvalidComponent);
  // (old cid) -> (new cid, slot base); filled across all groups, applied
  // to the templates in one pass.
  std::unordered_map<ComponentId, std::pair<ComponentId, uint32_t>> remap;
  std::vector<ComponentId> to_remove;
  std::unordered_set<ComponentId> seen;  // overlap detection across groups
  for (size_t g = 0; g < groups.size(); ++g) {
    std::vector<ComponentId> ids = groups[g];
    if (ids.empty()) {
      return Status::InvalidArgument("merge of zero components");
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    for (ComponentId id : ids) {
      if (!IsLive(id)) {
        return Status::Internal(StrFormat("merging dead component %u", id));
      }
      if (!seen.insert(id).second) {
        return Status::InvalidArgument(
            "component groups passed to MergeComponentGroups overlap");
      }
    }
    if (ids.size() == 1) {
      result[g] = ids[0];
      continue;
    }
    // Fold left-to-right; remember where each old component's slots land.
    Component merged = component(ids[0]);
    std::vector<std::pair<ComponentId, uint32_t>> bases;
    bases.emplace_back(ids[0], 0);
    for (size_t k = 1; k < ids.size(); ++k) {
      bases.emplace_back(ids[k], static_cast<uint32_t>(merged.NumSlots()));
      MAYBMS_ASSIGN_OR_RETURN(
          merged, Component::Product(merged, component(ids[k]), max_rows));
    }
    ComponentId new_id = AddComponent(std::move(merged));
    for (const auto& [old_id, base] : bases) {
      remap.emplace(old_id, std::make_pair(new_id, base));
      to_remove.push_back(old_id);
    }
    result[g] = new_id;
  }
  if (!remap.empty()) {
    for (auto& [key, rel] : relations_) {
      for (auto& t : rel.mutable_tuples()) {
        for (auto& cell : t.cells) {
          if (!cell.is_ref()) continue;
          auto it = remap.find(cell.ref().cid);
          if (it != remap.end()) {
            cell.mutable_ref().slot += it->second.second;
            cell.mutable_ref().cid = it->second.first;
          }
        }
      }
    }
    for (ComponentId id : to_remove) RemoveComponent(id);
  }
  return result;
}

double WsdDb::Log2WorldCount() const {
  double log2 = 0.0;
  for (const auto& c : components_) {
    if (c != nullptr && c->NumRows() > 0) {
      log2 += std::log2(static_cast<double>(c->NumRows()));
    }
  }
  return log2;
}

std::optional<uint64_t> WsdDb::WorldCountIfSmall(uint64_t limit) const {
  uint64_t count = 1;
  for (const auto& c : components_) {
    if (c == nullptr) continue;
    uint64_t rows = c->NumRows();
    if (rows == 0) return 0;
    if (count > limit / rows) return std::nullopt;
    count *= rows;
  }
  return count;
}

uint64_t WsdDb::SerializedSize() const {
  uint64_t total = 0;
  for (const auto& [key, rel] : relations_) {
    for (const auto& t : rel.tuples()) {
      total += 4;  // row header
      for (const auto& cell : t.cells) {
        total += cell.is_certain() ? cell.value().SerializedSize() : 8;
      }
    }
  }
  for (const auto& c : components_) {
    if (c != nullptr) total += c->SerializedSize();
  }
  return total;
}

uint64_t WsdDb::InternedSize() const {
  uint64_t total = 0;
  std::unordered_set<std::string_view> strings;
  for (const auto& c : components_) {
    if (c == nullptr) continue;
    total += c->InternedSize();
    c->CollectStrings(&strings);
  }
  for (const auto& [key, rel] : relations_) {
    for (const auto& t : rel.tuples()) {
      total += 4;                                      // row header
      total += t.cells.size() * sizeof(PackedValue);   // packed cell model
      total += t.deps.size() * sizeof(OwnerId);
      for (const auto& cell : t.cells) {
        if (cell.is_certain() && cell.value().is_string()) {
          strings.insert(cell.value().as_string());
        }
      }
    }
  }
  // Each distinct string is stored once: payload + dictionary entry.
  constexpr uint64_t kPoolEntryOverhead = 24;
  for (std::string_view s : strings) total += s.size() + kPoolEntryOverhead;
  return total;
}

double WsdDb::GatedAliveMass(const Component& c,
                             const std::vector<OwnerId>& deps, bool* gates) {
  // Slots of this component owned by one of the (sorted) deps.
  uint32_t first_gate = 0;
  size_t n_gates = 0;
  const uint32_t nslots = static_cast<uint32_t>(c.NumSlots());
  for (uint32_t s = 0; s < nslots; ++s) {
    if (std::binary_search(deps.begin(), deps.end(), c.slot(s).owner)) {
      if (n_gates == 0) first_gate = s;
      ++n_gates;
    }
  }
  if (n_gates == 0) {
    *gates = false;
    return 1.0;
  }
  *gates = true;
  double alive = 0.0;
  if (n_gates == 1) {
    // Common case: one tight loop over a single packed column.
    const std::vector<PackedValue>& col = c.column(first_gate);
    const std::vector<double>& probs = c.probs();
    for (size_t r = 0; r < col.size(); ++r) {
      if (!col[r].is_bottom()) alive += probs[r];
    }
  } else {
    for (size_t r = 0; r < c.NumRows(); ++r) {
      bool ok = true;
      for (uint32_t s = 0; s < nslots; ++s) {
        if (!std::binary_search(deps.begin(), deps.end(), c.slot(s).owner)) {
          continue;
        }
        if (c.IsBottomAt(r, s)) {
          ok = false;
          break;
        }
      }
      if (ok) alive += c.prob(r);
    }
  }
  return alive;
}

double WsdDb::ExistenceProbability(const WsdTuple& t) const {
  if (t.deps.empty()) return 1.0;
  double p = 1.0;
  for (ComponentId id = 0; id < components_.size(); ++id) {
    if (components_[id] == nullptr) continue;
    bool gates = false;
    const double alive = GatedAliveMass(*components_[id], t.deps, &gates);
    if (!gates) continue;
    p *= alive;
    if (p == 0.0) return 0.0;
  }
  return p;
}

Status WsdDb::CheckInvariants() const {
  constexpr double kEps = 1e-6;
  for (ComponentId id = 0; id < components_.size(); ++id) {
    if (components_[id] == nullptr) continue;
    const Component& c = *components_[id];
    if (c.NumRows() == 0) {
      return Status::Internal(StrFormat("component %u has no rows", id));
    }
    double mass = c.TotalMass();
    if (std::abs(mass - 1.0) > kEps) {
      return Status::Internal(
          StrFormat("component %u mass %.9f != 1", id, mass));
    }
    for (uint32_t s = 0; s < c.NumSlots(); ++s) {
      if (c.column(s).size() != c.NumRows()) {
        return Status::Internal(
            StrFormat("component %u column %u length %zu != %zu rows", id, s,
                      c.column(s).size(), c.NumRows()));
      }
    }
    for (size_t r = 0; r < c.NumRows(); ++r) {
      if (c.prob(r) < -kEps || c.prob(r) > 1.0 + kEps) {
        return Status::Internal(
            StrFormat("component %u row prob %g", id, c.prob(r)));
      }
    }
  }
  for (const auto& [key, rel] : relations_) {
    for (const auto& t : rel.tuples()) {
      if (t.cells.size() != rel.schema().size()) {
        return Status::Internal("tuple arity mismatch in " + rel.name());
      }
      if (!std::is_sorted(t.deps.begin(), t.deps.end())) {
        return Status::Internal("tuple deps not sorted in " + rel.name());
      }
      for (const auto& cell : t.cells) {
        if (cell.is_certain()) {
          if (cell.value().is_bottom()) {
            return Status::Internal("inline ⊥ cell in " + rel.name());
          }
        } else {
          const FieldRef& ref = cell.ref();
          if (!IsLive(ref.cid)) {
            return Status::Internal(
                StrFormat("cell references dead component %u", ref.cid));
          }
          if (ref.slot >= component(ref.cid).NumSlots()) {
            return Status::Internal(
                StrFormat("cell references slot %u of component %u (%zu "
                          "slots)",
                          ref.slot, ref.cid, component(ref.cid).NumSlots()));
          }
        }
      }
    }
  }
  return Status::OK();
}

std::string WsdDb::ToString() const {
  std::string out;
  for (const auto& [key, rel] : relations_) {
    out += rel.name() + " " + rel.schema().ToString() + "\n";
    for (size_t i = 0; i < rel.NumTuples(); ++i) {
      const WsdTuple& t = rel.tuple(i);
      out += StrFormat("  t%zu: (", i);
      for (size_t c = 0; c < t.cells.size(); ++c) {
        if (c) out += ", ";
        const Cell& cell = t.cells[c];
        if (cell.is_certain()) {
          out += cell.value().ToString();
        } else {
          out += StrFormat("@c%u.%u", cell.ref().cid, cell.ref().slot);
        }
      }
      out += ")";
      if (!t.deps.empty()) {
        out += " deps{";
        for (size_t d = 0; d < t.deps.size(); ++d) {
          if (d) out += ",";
          out += std::to_string(t.deps[d]);
        }
        out += "}";
      }
      out += "\n";
    }
  }
  bool first = true;
  for (ComponentId id = 0; id < components_.size(); ++id) {
    if (components_[id] == nullptr) continue;
    out += first ? "components:\n" : "  ×\n";
    first = false;
    std::string body = components_[id]->ToString();
    // indent
    out += StrFormat("  [c%u]\n", id);
    size_t pos = 0;
    while (pos < body.size()) {
      size_t nl = body.find('\n', pos);
      if (nl == std::string::npos) nl = body.size();
      out += "  " + body.substr(pos, nl - pos) + "\n";
      pos = nl + 1;
    }
  }
  return out;
}

}  // namespace maybms
