// Wire-level codecs shared by the binary snapshot versions, plus the
// "MAYBMS-WSD 3" sharded format.
//
// v3 extends v2 with out-of-core affordances (see
// docs/SNAPSHOT_FORMAT.md):
//   - a shard directory section (SDIR) between STRS and COMP that
//     records, for every component and every horizontal relation shard,
//     its byte offset/length inside the COMP/RELS payloads, a per-block
//     FNV-1a64 checksum, per-column possible-value ranges and the
//     component ids the shard references;
//   - COMP and RELS become concatenations of self-contained 8-aligned
//     blocks (one per component / per shard) instead of monolithic
//     streams, so a memory-mapped reader can verify and materialize one
//     block without touching the rest of the file.
//
// The eager reader here fully verifies section and block checksums; the
// mapped reader (core/mapped_db) verifies META/STRS/SDIR eagerly and
// each COMP/RELS block on first materialization.
#ifndef MAYBMS_CORE_SNAPSHOT_V3_H_
#define MAYBMS_CORE_SNAPSHOT_V3_H_

#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/shard.h"
#include "core/wsd.h"
#include "storage/snapshot_io.h"

namespace maybms {
namespace snapshotv3 {

// --- constants shared by the v2 and v3 codecs ------------------------------

constexpr uint32_t kSecMeta = SnapshotFourCC('M', 'E', 'T', 'A');
constexpr uint32_t kSecStrings = SnapshotFourCC('S', 'T', 'R', 'S');
constexpr uint32_t kSecShardDir = SnapshotFourCC('S', 'D', 'I', 'R');
constexpr uint32_t kSecComponents = SnapshotFourCC('C', 'O', 'M', 'P');
constexpr uint32_t kSecRelations = SnapshotFourCC('R', 'E', 'L', 'S');
constexpr uint32_t kSecEnd = SnapshotFourCC('E', 'N', 'D', '.');

/// Written to META and verified on load, so a snapshot moved to a
/// machine with a different byte order fails loudly instead of
/// misreading every array.
constexpr uint32_t kEndianMark = 0x32445357;  // "WSD2" on little-endian

/// Wire tag of a template cell that references a component slot; tags
/// 0..5 are PackedTag values for inline (certain) cells.
constexpr uint8_t kCellRef = 6;

// Dead-id gaps a single snapshot may ask the loader to materialize.
// Component ids are preserved across save/load (template cells reference
// them), so files legitimately contain gaps from removed components —
// but each gap costs a dead slot in the component store, and a crafted
// file must not be able to demand billions of them.
constexpr size_t kMaxComponentIdGaps = 1u << 20;

inline uint64_t DoubleBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(d));
  return bits;
}

inline double BitsToDouble(uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

// --- shared block codecs ---------------------------------------------------

/// (tag, payload) wire image of a packed cell; strings go through the
/// snapshot-local table.
std::pair<uint8_t, uint64_t> PackedToWire(const PackedValue& v,
                                          SnapshotStringTable* strings);

/// Places component `c` at exactly the stored `id` (cells reference it);
/// ids arrive ascending, gaps become dead slots. `placed` is the number
/// of components placed before this one, bounding the gap budget.
Status PlaceComponentAt(WsdDb* db, size_t id, size_t placed, Component c);

/// Appends one component record (identical layout in v2 COMP streams and
/// v3 COMP blocks): u32 id, u32 n_slots, u64 n_rows, slots (u64 owner +
/// len-prefixed label), probs double[n_rows], then per slot a u8 tag
/// array and a u64 payload array.
void AppendComponentRecord(const WsdDb& db, ComponentId id,
                           SnapshotStringTable* strings, std::string* out);

/// Decodes one component record from `cur`; returns (stored id,
/// component). Bounds-checked; string payloads are remapped through
/// `local_to_global`.
Result<std::pair<uint32_t, Component>> DecodeComponentRecord(
    SnapshotCursor* cur, const std::vector<uint32_t>& local_to_global);

/// Builds the tuples [begin, end) of one relation from the bulk arrays.
/// Each tuple's dependency range starts at dep_offsets[t]; cells for
/// tuple t occupy tags/payloads[t*n_cols ... t*n_cols+n_cols). Runs on
/// worker threads — inputs are shared read-only, each index writes only
/// its own tuple slot.
Status BuildTupleRange(std::vector<WsdTuple>* tuples, size_t begin,
                       size_t end, uint32_t n_cols,
                       const std::vector<uint32_t>& dep_counts,
                       const std::vector<uint64_t>& dep_offsets,
                       const std::vector<uint64_t>& deps_flat,
                       const std::vector<uint8_t>& tags,
                       const std::vector<uint64_t>& payloads,
                       const std::vector<const std::string*>& local_strings);

/// Appends one relation shard record covering template rows
/// [row_begin, row_end): dep_counts u32[n], u64 n_deps, deps u64[],
/// then the cell tag u8[n * n_cols] and payload u64[n * n_cols] arrays.
void AppendShardRecord(const WsdRelation& rel, size_t row_begin,
                       size_t row_end, SnapshotStringTable* strings,
                       std::string* out);

/// Decodes one shard record into tuples[row_begin..row_end) (the vector
/// must already be sized). The record must span exactly `block`.
Status DecodeShardRecord(std::string_view block, uint32_t n_cols,
                         size_t row_begin, size_t row_end,
                         const std::vector<const std::string*>& local_strings,
                         std::vector<WsdTuple>* tuples);

// --- v3 shard directory ----------------------------------------------------

/// Directory entry for one component block inside the COMP payload.
struct DirComponent {
  uint32_t id = 0;
  uint32_t n_slots = 0;
  uint64_t n_rows = 0;
  uint64_t offset = 0;  ///< byte offset inside the COMP payload (8-aligned)
  uint64_t length = 0;
  uint64_t checksum = 0;  ///< FNV-1a64 of the block bytes
};

/// Directory entry for one relation shard block inside the RELS payload.
struct DirShard {
  uint64_t row_begin = 0;
  uint64_t row_end = 0;
  uint64_t offset = 0;  ///< byte offset inside the RELS payload (8-aligned)
  uint64_t length = 0;
  uint64_t checksum = 0;  ///< FNV-1a64 of the block bytes
  /// Components referenced by cells or gating deps of any tuple in the
  /// shard — the set a mapped loader materializes alongside it.
  std::vector<ComponentId> ref_components;
  /// Per-column possible-value ranges (pruning stats), schema-aligned.
  std::vector<ShardColumnRange> ranges;
};

struct DirRelation {
  std::string name;
  std::string display;
  Schema schema;
  uint64_t n_tuples = 0;
  std::vector<DirShard> shards;  ///< contiguous, covering [0, n_tuples)
};

/// Parsed SDIR section: everything a reader needs to locate, verify and
/// selectively materialize COMP/RELS blocks.
struct SnapshotDirectory {
  std::vector<DirComponent> components;  ///< ascending by id
  std::vector<DirRelation> relations;    ///< writer map order
};

std::string SerializeDirectory(const SnapshotDirectory& dir);

/// Parses and structurally validates an SDIR payload: component ids
/// strictly ascending within the dead-gap budget, shard row ranges
/// contiguous from 0 to n_tuples, counts bounded by the payload size.
/// Offsets/lengths are validated against the actual COMP/RELS payload
/// sizes by the caller.
Result<SnapshotDirectory> ParseDirectory(std::string_view payload);

/// META payload of a v3 snapshot. `component_counter` (the slot count
/// AddComponent allocates from) is an optional trailing field: snapshots
/// written before it existed parse with 0, and the reader falls back to
/// "highest component id present + 1".
struct MetaV3 {
  uint64_t max_component_rows = 0;
  uint64_t owner_counter = 0;
  uint64_t rows_per_shard = 0;
  uint64_t component_counter = 0;
};

std::string BuildMetaPayloadV3(const WsdDb& db);
Result<MetaV3> ParseMetaV3(std::string_view payload);

/// Checks one directory block against its payload: in-bounds, 8-aligned,
/// checksum match. Returns the block bytes.
Result<std::string_view> SliceBlock(std::string_view payload,
                                    uint64_t offset, uint64_t length,
                                    uint64_t checksum, const char* what);

// --- whole-snapshot views --------------------------------------------------

/// One section located inside a mapped snapshot image. The payload view
/// aliases the image; no checksum has been verified.
struct SectionView {
  uint32_t tag = 0;
  uint64_t checksum = 0;
  std::string_view payload;
};

/// Splits the bytes after the "MAYBMS-WSD 3\n" header line into section
/// views (framing only — callers verify the checksums they rely on).
Result<std::vector<SectionView>> WalkSnapshotSections(std::string_view body);

/// Reads the v3 binary body (everything after "MAYBMS-WSD 3") from a
/// stream, fully verifying every section and block checksum.
Result<WsdDb> ReadWsdDbV3Body(std::istream& in);

}  // namespace snapshotv3
}  // namespace maybms

#endif  // MAYBMS_CORE_SNAPSHOT_V3_H_
