// Out-of-core world-set databases: a v3 snapshot opened as a memory map
// whose component and shard blocks are materialized lazily.
//
// MappedWsdDb::Open verifies the snapshot's eager head (META, STRS and
// the SDIR shard directory — a few KB) and maps the COMP/RELS payloads
// without reading them. Queries then call MaterializeForPlan, which
// prunes relation shards against the plan's Select predicates using the
// per-shard column ranges persisted in SDIR, and decodes only the
// surviving shards plus the components they reference — each block
// checksum-verified on first touch. A selective query over a large
// database reads a handful of pages instead of the whole file.
//
// Decoded blocks are cached under an LRU byte budget
// (MappedDbOptions::max_resident_bytes, or the MAYBMS_MAX_RESIDENT_BYTES
// environment variable), so repeated queries over a database much larger
// than memory keep a bounded resident set. The WsdDb a materialization
// returns is an owned scratch copy — it lives for one query and is not
// counted against the budget.
//
// Thread-safe for concurrent materialization: the decoded-block cache,
// its LRU residency accounting and the materialization statistics are
// guarded by an internal mutex, and blocks are handed out as shared_ptr
// so an eviction never invalidates a reader mid-decode. Block decoding
// itself (the expensive part, including the deferred per-block checksum
// verification) runs outside the lock; when two readers race on the
// same cold block, one decode wins the install and the other adopts it.
#ifndef MAYBMS_CORE_MAPPED_DB_H_
#define MAYBMS_CORE_MAPPED_DB_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/shard.h"
#include "core/snapshot_v3.h"
#include "core/wsd.h"
#include "ra/plan.h"
#include "storage/io_env.h"

namespace maybms {

/// How a snapshot becomes a queryable database.
enum class LoadMode {
  kEager,   ///< decode the whole file up front (LoadWsdDb)
  kMapped,  ///< mmap + lazy per-shard materialization (MappedWsdDb)
};

struct MappedDbOptions {
  /// Cap on bytes of decoded blocks kept cached across queries. 0 reads
  /// the MAYBMS_MAX_RESIDENT_BYTES environment variable; unset or 0
  /// there means unlimited.
  size_t max_resident_bytes = 0;
};

/// What the last MaterializeForPlan call actually touched.
struct MaterializeStats {
  size_t shards_total = 0;   ///< shards in the snapshot (all relations)
  size_t shards_kept = 0;    ///< shards decoded for the plan
  size_t components_loaded = 0;
  size_t bytes_decoded = 0;  ///< on-disk bytes of blocks decoded this call
};

class MappedWsdDb {
 public:
  /// Maps `path` and verifies the eager head. The file must be a
  /// "MAYBMS-WSD 3" snapshot; v1/v2 files are rejected (load those
  /// eagerly via LoadWsdDb). `env` (null = Env::Default()) supplies the
  /// mapping — the seam the fault-injection tests use.
  static Result<MappedWsdDb> Open(const std::string& path,
                                  MappedDbOptions options = {},
                                  Env* env = nullptr);

  MappedWsdDb(MappedWsdDb&&) = default;
  MappedWsdDb& operator=(MappedWsdDb&&) = default;

  const std::string& path() const { return file_->path(); }

  /// Schemas, display names and options — no tuples, no components.
  /// Enough for planning, binding and catalog statements.
  const WsdDb& skeleton() const { return skeleton_; }

  /// Materializes the subset of the database the plan can touch: for
  /// every Select(...(Select(Scan rel))) chain the conjunctive column
  /// bounds prune shards via the persisted SDIR ranges; bare scans keep
  /// every shard; relations the plan never scans stay empty. Returns an
  /// owned scratch database that answers the plan exactly as the eagerly
  /// loaded database would (shard pruning only drops tuples that fail
  /// the predicate in every world).
  Result<WsdDb> MaterializeForPlan(const Plan& plan);

  /// Decodes everything (bypassing the cache budget) — the escape hatch
  /// for statements that need the whole database resident.
  Result<WsdDb> MaterializeAll();

  /// Per-relation shard partitions reconstructed from SDIR (ranges and
  /// referenced components per shard), in directory order.
  const std::vector<ShardPartition>& partitions() const { return partitions_; }
  /// Components stored in the snapshot.
  size_t num_components() const { return dir_.components.size(); }

  /// Bytes of decoded blocks currently cached.
  size_t resident_bytes() const {
    std::lock_guard<std::mutex> lock(*mu_);
    return resident_bytes_;
  }
  /// High-water mark of resident_bytes() since Open.
  size_t peak_resident_bytes() const {
    std::lock_guard<std::mutex> lock(*mu_);
    return peak_resident_bytes_;
  }
  size_t max_resident_bytes() const { return max_resident_bytes_; }
  /// Size of the snapshot file on disk.
  size_t snapshot_bytes() const { return file_->bytes().size(); }
  /// The raw mapped snapshot bytes (the durable session fingerprints
  /// them to match a WAL against the snapshot without an extra read).
  std::string_view snapshot_view() const { return file_->bytes(); }

  /// Statistics of the most recent Materialize* call (by any thread).
  MaterializeStats last_stats() const {
    std::lock_guard<std::mutex> lock(*mu_);
    return last_stats_;
  }

 private:
  MappedWsdDb() : mu_(std::make_unique<std::mutex>()) {}

  struct CachedComponent {
    std::shared_ptr<const Component> comp;
    size_t bytes = 0;
    uint64_t last_use = 0;
  };
  struct CachedShard {
    std::shared_ptr<const std::vector<WsdTuple>> tuples;
    size_t bytes = 0;
    uint64_t last_use = 0;
  };

  /// Decoded component for dir index `k`, via the cache. The returned
  /// shared_ptr keeps the block alive across evictions.
  Result<std::shared_ptr<const Component>> DecodeComponent(
      size_t k, bool use_cache, MaterializeStats* stats);
  /// Decoded tuples of shard `s` of dir relation `r`, via the cache.
  Result<std::shared_ptr<const std::vector<WsdTuple>>> DecodeShard(
      size_t r, size_t s, bool use_cache, MaterializeStats* stats);
  /// Builds a scratch database holding, per dir relation, the tuples of
  /// the shards with keep[r][s] != 0 plus every component they
  /// reference.
  Result<WsdDb> Materialize(const std::vector<std::vector<char>>& keep,
                            bool use_cache);
  void EvictToCap();
  void Account(size_t bytes);

  std::unique_ptr<RandomAccessImage> file_;
  snapshotv3::MetaV3 meta_;
  snapshotv3::SnapshotDirectory dir_;
  /// Per dir relation, the persisted partition (ranges + referenced
  /// components per shard) reconstructed from SDIR.
  std::vector<ShardPartition> partitions_;
  /// Component id -> index into dir_.components.
  std::unordered_map<ComponentId, size_t> comp_index_of_id_;
  std::vector<uint32_t> local_to_global_;
  /// Pool-stable pointers for the snapshot's string table, materialized
  /// once at Open (the table is part of the eager head).
  std::vector<const std::string*> local_strings_;
  std::string_view comp_payload_;
  std::string_view rels_payload_;
  WsdDb skeleton_;

  size_t max_resident_bytes_ = 0;  ///< resolved; SIZE_MAX = unlimited

  /// Guards the cache maps, residency accounting and last_stats_.
  /// Heap-allocated so the object stays movable (moves still require
  /// exclusive access, like every non-const single-object operation).
  std::unique_ptr<std::mutex> mu_;
  size_t resident_bytes_ = 0;
  size_t peak_resident_bytes_ = 0;
  uint64_t use_clock_ = 0;
  std::unordered_map<uint64_t, CachedComponent> comp_cache_;
  /// Key: rel_index << 32 | shard_index.
  std::unordered_map<uint64_t, CachedShard> shard_cache_;
  MaterializeStats last_stats_;
};

}  // namespace maybms

#endif  // MAYBMS_CORE_MAPPED_DB_H_
