// Component: one independent factor of a world-set decomposition.
//
// A component covers a set of *slots* (fields of template tuples, or
// synthetic existence slots); each row simultaneously assigns a value to
// every slot and carries a probability. Choosing one row per component,
// independently across components, yields one possible world; the world's
// probability is the product of the chosen rows' probabilities. Row
// probabilities of every component sum to 1.
//
// Storage is slot-major (SoA): one contiguous vector of trivially-
// copyable PackedValues per slot plus one probability vector. The hot
// operations (Product, DedupRows, DropSlots, TotalMass, Renormalize)
// run directly on the columns with no per-row heap allocation; strings
// live once in the global ValuePool and are referenced by id.
#ifndef MAYBMS_CORE_COMPONENT_H_
#define MAYBMS_CORE_COMPONENT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "core/types.h"
#include "storage/packed_value.h"
#include "storage/value.h"

namespace maybms {

/// Metadata of one slot (column) of a component.
struct Slot {
  OwnerId owner = 0;   ///< tuple/derivation that this slot gates
  std::string label;   ///< for rendering, e.g. "r1.Diagnosis" or "r1.∃"
};

/// Row-major exchange type used by builders and cold paths; the columnar
/// store materializes/consumes it at the boundary (Component::GetRow /
/// AddRow).
struct ComponentRow {
  std::vector<Value> values;
  double prob = 1.0;
};

/// The token stored in existence slots for "the owner is alive here".
/// Only ⊥ vs non-⊥ matters for existence; the concrete token is arbitrary.
Value ExistsToken();

/// ExistsToken() in packed form, for columnar writers.
inline PackedValue PackedExistsToken() { return PackedValue::Bool(true); }

/// Component statistics: row count plus one distinct-value count per
/// slot (distinct packed cells; interning makes this exact for strings).
/// The optimizer's cardinality estimator reads these to bound how many
/// distinct values an uncertain column can take across worlds.
struct ComponentStats {
  uint64_t rows = 0;
  std::vector<uint64_t> distinct;  ///< aligned with slots
};

/// One independent factor of the decomposition.
class Component {
 public:
  Component() = default;

  // Copies read the stats cache atomically: a concurrent reader may be
  // CAS-installing stats on the source (GetStats is const and
  // thread-safe). Moves require exclusive access, like mutation.
  Component(const Component& o)
      : slots_(o.slots_),
        cols_(o.cols_),
        probs_(o.probs_),
        stats_(std::atomic_load(&o.stats_)),
        content_hash_(o.content_hash_.load(std::memory_order_relaxed)) {}
  Component& operator=(const Component& o) {
    if (this == &o) return *this;
    slots_ = o.slots_;
    cols_ = o.cols_;
    probs_ = o.probs_;
    stats_ = std::atomic_load(&o.stats_);
    content_hash_.store(o.content_hash_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    return *this;
  }
  Component(Component&& o) noexcept
      : slots_(std::move(o.slots_)),
        cols_(std::move(o.cols_)),
        probs_(std::move(o.probs_)),
        stats_(std::move(o.stats_)),
        content_hash_(o.content_hash_.load(std::memory_order_relaxed)) {}
  Component& operator=(Component&& o) noexcept {
    if (this == &o) return *this;
    slots_ = std::move(o.slots_);
    cols_ = std::move(o.cols_);
    probs_ = std::move(o.probs_);
    stats_ = std::move(o.stats_);
    content_hash_.store(o.content_hash_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    return *this;
  }

  size_t NumSlots() const { return slots_.size(); }
  size_t NumRows() const { return probs_.size(); }
  bool empty() const { return slots_.empty(); }

  const Slot& slot(size_t i) const { return slots_[i]; }
  Slot& mutable_slot(size_t i) { return slots_[i]; }
  const std::vector<Slot>& slots() const { return slots_; }

  // --- columnar accessors ------------------------------------------------
  double prob(size_t r) const { return probs_[r]; }
  void set_prob(size_t r, double p) {
    // Probability-only updates keep the stats cache (row/distinct counts
    // don't change) but do change the content hash.
    InvalidateContentHash();
    probs_[r] = p;
  }
  const std::vector<double>& probs() const { return probs_; }

  /// The packed cell at (row r, slot s).
  const PackedValue& packed(size_t r, size_t s) const { return cols_[s][r]; }
  bool IsBottomAt(size_t r, size_t s) const { return cols_[s][r].is_bottom(); }
  /// Materializes the cell as a Value (copies string content).
  Value ValueAt(size_t r, size_t s) const { return cols_[s][r].ToValue(); }
  void SetPacked(size_t r, size_t s, PackedValue v) {
    InvalidateStats();
    cols_[s][r] = v;
  }
  void SetValue(size_t r, size_t s, const Value& v) {
    InvalidateStats();
    cols_[s][r] = PackedValue::FromValue(v);
  }
  /// The whole column of slot s (length NumRows()).
  const std::vector<PackedValue>& column(size_t s) const { return cols_[s]; }

  // --- row-major adapters ------------------------------------------------
  /// Materializes row r (values + probability) for cold paths.
  ComponentRow GetRow(size_t r) const;

  /// Appends a row; arity must equal NumSlots.
  Status AddRow(ComponentRow row);

  /// Appends an already-packed row; arity must equal NumSlots.
  Status AddPackedRow(const std::vector<PackedValue>& values, double prob);

  /// Appends a slot to every row using `fill` as its value; returns the
  /// new slot index.
  uint32_t AddSlot(Slot slot, const Value& fill);

  /// Appends a slot whose per-row values are supplied (must match NumRows).
  uint32_t AddSlotWithValues(Slot slot, std::vector<Value> values);

  /// Appends a slot from an already-packed column (must match NumRows).
  uint32_t AddSlotWithPacked(Slot slot, std::vector<PackedValue> column);

  /// Builds a component directly from columnar storage: slot metadata,
  /// one packed column per slot, and the probability vector — the bulk
  /// restore path of the binary snapshot loader. Validates column
  /// lengths and that every probability is finite and in [0,1].
  static Result<Component> FromColumns(
      std::vector<Slot> slots, std::vector<std::vector<PackedValue>> cols,
      std::vector<double> probs);

  // --- operations --------------------------------------------------------
  /// Sum of row probabilities (should be ~1 outside of conditioning).
  double TotalMass() const;

  /// Divides all row probabilities by TotalMass(). Fails when mass is 0
  /// (the world-set is inconsistent).
  Status Renormalize();

  /// Merges duplicate rows (equal values in all slots), summing their
  /// probabilities. Preserves first-occurrence order.
  void DedupRows();

  /// Removes the given slots (sorted ascending) and marginalizes:
  /// projects rows onto the remaining slots and dedups.
  void DropSlots(const std::vector<uint32_t>& sorted_slots);

  /// Keeps exactly the rows whose indexes appear in `keep` (strictly
  /// ascending), discarding the rest. The conditioning primitive.
  void KeepRows(const std::vector<uint32_t>& keep);

  /// Removes rows with probability below `eps` (mass is renormalized by
  /// the caller when appropriate). Rows of probability exactly 0 carry no
  /// worlds.
  void DropZeroRows(double eps = 0.0);

  /// The relational product of two components: slots concatenated, rows
  /// paired, probabilities multiplied. Fails when the result would exceed
  /// `max_rows`.
  static Result<Component> Product(const Component& a, const Component& b,
                                   size_t max_rows);

  // --- statistics --------------------------------------------------------
  /// Row/per-slot-distinct statistics, computed on first access and
  /// cached until the next mutation of rows or cells (probability-only
  /// updates keep the cache). Safe to call from concurrent readers: the
  /// cache is published with an atomic compare-and-swap, so racing
  /// callers agree on one result object. Mutators (which invalidate)
  /// still require exclusive access, like every non-const method.
  const ComponentStats& GetStats() const;

  /// True when GetStats() would return a cached result (for tests).
  bool HasCachedStats() const { return std::atomic_load(&stats_) != nullptr; }

  /// A 64-bit hash of the component's full content: slot owners, packed
  /// cells and probability bits (labels are excluded — they are pure
  /// rendering metadata). Equal content always hashes equal, so the
  /// materialized-confidence cache (core/materialized_conf.h) can key
  /// cluster results by content and have a component edit re-key —
  /// rather than explicitly invalidate — every cluster it touches.
  /// Never returns 0. Computed lazily, cached until the next mutation
  /// (including probability-only updates), safe under concurrent
  /// readers: racing callers compute the same value and publish it with
  /// relaxed atomic stores.
  uint64_t ContentHash() const;

  /// True when ContentHash() would return a cached result (for tests).
  bool HasCachedContentHash() const {
    return content_hash_.load(std::memory_order_relaxed) != 0;
  }

  // --- sizes / rendering -------------------------------------------------
  /// Bytes in the flat serialized model (values + 8-byte probability per
  /// row + 4-byte row header), mirroring Relation::SerializedSize. This
  /// is the *logical* size used by the paper's storage experiment.
  uint64_t SerializedSize() const;

  /// Bytes the columnar store actually occupies (packed columns +
  /// probabilities + slot metadata), excluding the shared ValuePool —
  /// attribute pool bytes via CollectStrings at the database level.
  uint64_t InternedSize() const;

  /// Inserts the distinct string contents referenced by this component
  /// (views into the global pool; stable forever).
  void CollectStrings(std::unordered_set<std::string_view>* out) const;

  /// Paper-style rendering: a small table with one column per slot and a
  /// probability column.
  std::string ToString() const;

 private:
  /// Drops the cached statistics (atomically, so a reader that raced a
  /// handed-out mutable reference sees either the old stats or none).
  /// Any mutation that changes stats also changes content.
  void InvalidateStats() {
    std::atomic_store(&stats_, std::shared_ptr<const ComponentStats>());
    InvalidateContentHash();
  }

  void InvalidateContentHash() {
    content_hash_.store(0, std::memory_order_relaxed);
  }

  std::vector<Slot> slots_;
  std::vector<std::vector<PackedValue>> cols_;  ///< cols_[slot][row]
  std::vector<double> probs_;                   ///< probs_[row]
  /// Lazily-computed statistics; reset by every cell/row mutation and
  /// published by CAS so concurrent const readers never race.
  mutable std::shared_ptr<const ComponentStats> stats_;
  /// Lazily-computed content hash; 0 = unset. Reset by every mutation.
  mutable std::atomic<uint64_t> content_hash_{0};
};

}  // namespace maybms

#endif  // MAYBMS_CORE_COMPONENT_H_
