// Component: one independent factor of a world-set decomposition.
//
// A component covers a set of *slots* (fields of template tuples, or
// synthetic existence slots); each row simultaneously assigns a value to
// every slot and carries a probability. Choosing one row per component,
// independently across components, yields one possible world; the world's
// probability is the product of the chosen rows' probabilities. Row
// probabilities of every component sum to 1.
#ifndef MAYBMS_CORE_COMPONENT_H_
#define MAYBMS_CORE_COMPONENT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/types.h"
#include "storage/value.h"

namespace maybms {

/// Metadata of one slot (column) of a component.
struct Slot {
  OwnerId owner = 0;   ///< tuple/derivation that this slot gates
  std::string label;   ///< for rendering, e.g. "r1.Diagnosis" or "r1.∃"
};

/// One alternative of a component: a value per slot plus its probability.
struct ComponentRow {
  std::vector<Value> values;
  double prob = 1.0;
};

/// The token stored in existence slots for "the owner is alive here".
/// Only ⊥ vs non-⊥ matters for existence; the concrete token is arbitrary.
Value ExistsToken();

/// One independent factor of the decomposition.
class Component {
 public:
  Component() = default;

  size_t NumSlots() const { return slots_.size(); }
  size_t NumRows() const { return rows_.size(); }
  bool empty() const { return slots_.empty(); }

  const Slot& slot(size_t i) const { return slots_[i]; }
  Slot& mutable_slot(size_t i) { return slots_[i]; }
  const std::vector<Slot>& slots() const { return slots_; }

  const ComponentRow& row(size_t i) const { return rows_[i]; }
  ComponentRow& mutable_row(size_t i) { return rows_[i]; }
  const std::vector<ComponentRow>& rows() const { return rows_; }

  /// Appends a slot to every row using `fill` as its value; returns the
  /// new slot index.
  uint32_t AddSlot(Slot slot, const Value& fill);

  /// Appends a slot whose per-row values are supplied (must match NumRows).
  uint32_t AddSlotWithValues(Slot slot, std::vector<Value> values);

  /// Appends a row; arity must equal NumSlots.
  Status AddRow(ComponentRow row);

  /// Sum of row probabilities (should be ~1 outside of conditioning).
  double TotalMass() const;

  /// Divides all row probabilities by TotalMass(). Fails when mass is 0
  /// (the world-set is inconsistent).
  Status Renormalize();

  /// Merges duplicate rows (equal values in all slots), summing their
  /// probabilities. Preserves first-occurrence order.
  void DedupRows();

  /// Removes the given slots (sorted ascending) and marginalizes:
  /// projects rows onto the remaining slots and dedups.
  void DropSlots(const std::vector<uint32_t>& sorted_slots);

  /// Removes rows with probability below `eps` (mass is renormalized by
  /// the caller when appropriate). Rows of probability exactly 0 carry no
  /// worlds.
  void DropZeroRows(double eps = 0.0);

  /// The relational product of two components: slots concatenated, rows
  /// paired, probabilities multiplied. Fails when the result would exceed
  /// `max_rows`.
  static Result<Component> Product(const Component& a, const Component& b,
                                   size_t max_rows);

  /// Bytes in the flat serialized model (values + 8-byte probability per
  /// row + 4-byte row header), mirroring Relation::SerializedSize.
  uint64_t SerializedSize() const;

  /// Paper-style rendering: a small table with one column per slot and a
  /// probability column.
  std::string ToString() const;

 private:
  std::vector<Slot> slots_;
  std::vector<ComponentRow> rows_;
};

}  // namespace maybms

#endif  // MAYBMS_CORE_COMPONENT_H_
