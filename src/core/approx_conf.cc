#include "core/approx_conf.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/cluster.h"
#include "core/component.h"
#include "core/materialized_conf.h"

namespace maybms {

namespace {

/// State spaces up to this size get a per-state memo of present-vector
/// lists, collapsing repeat samples to one table read.
constexpr size_t kStateMemoStates = size_t{1} << 20;
/// Samples per parallel batch. Fixed so that batch boundaries — and with
/// them the Rng::Split substreams — do not depend on the thread count.
constexpr size_t kSampleBatch = 256;

/// Append-only Tuple → dense id map shared by every cluster evaluation.
/// Ids are assigned in first-intern order (scheduling-dependent), but
/// only used as internal keys: all output is re-keyed by Tuple.
class VectorInterner {
 public:
  int32_t Intern(const Tuple& t) {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, fresh] = ids_.emplace(t, static_cast<int32_t>(tuples_.size()));
    if (fresh) tuples_.push_back(t);
    return it->second;
  }

  // Safe only after all interning threads joined.
  size_t size() const { return tuples_.size(); }
  const Tuple& tuple(int32_t id) const { return tuples_[id]; }

 private:
  std::mutex mu_;
  std::unordered_map<Tuple, int32_t, TupleValueHash, TupleValueEq> ids_;
  std::deque<Tuple> tuples_;  ///< stable references under growth
};

/// Per-vector probability interval within one cluster.
struct Interval {
  double lo = 0.0;
  double est = 0.0;
  double hi = 0.0;
};

/// Result of evaluating one cluster (or the certain-tuple pile).
struct ClusterOutcome {
  ClusterPath path = ClusterPath::kExact;
  std::unordered_map<int32_t, Interval> iv;
  /// Upper bound for vectors this cluster never produced in any visited
  /// or sampled state (their interval is [0, unseen_hi]).
  double unseen_hi = 0.0;
};

/// Joint state count of a cluster's factors, saturated at SIZE_MAX.
/// Returns 0 when some factor is empty (the exact path turns that into
/// a proper Inconsistent error).
size_t StateCount(const ClusterIndex& index, const Cluster& cluster) {
  size_t states = 1;
  for (FactorId f : cluster.factors) {
    size_t rows = index.factor(f).comp->NumRows();
    if (rows == 0) return 0;
    if (states > std::numeric_limits<size_t>::max() / rows) {
      return std::numeric_limits<size_t>::max();
    }
    states *= rows;
  }
  return states;
}

/// Draws joint cluster states directly from the product of the factor
/// row distributions and counts, per distinct value vector, the states
/// in which it is present. Thread-compatible: SampleBatch is const and
/// callable concurrently (the memo uses idempotent atomic publication —
/// racing threads compute identical lists, one wins the CAS).
class ClusterSampler {
 public:
  ClusterSampler(const ClusterIndex& index, const Cluster& cluster,
                 VectorInterner* intern)
      : proto_(index, cluster.factors),
        members_(ResolveClusterMembers(index, cluster, proto_)),
        arity_(index.rel().schema().size()),
        intern_(intern) {
    const size_t nf = proto_.NumFactors();
    cum_.resize(nf);
    mass_.resize(nf);
    size_t states = 1;
    bool huge = false;
    for (size_t k = 0; k < nf; ++k) {
      const Component* c = proto_.component(static_cast<uint32_t>(k));
      double run = 0.0;
      cum_[k].reserve(c->NumRows());
      for (double p : c->probs()) {
        run += p;
        cum_[k].push_back(run);
      }
      mass_[k] = run;
      const size_t rows = c->NumRows();
      if (rows == 0 || states > kStateMemoStates / rows) {
        huge = true;
      } else {
        states *= rows;
      }
    }
    if (!huge && states <= kStateMemoStates) {
      stride_.resize(nf);
      size_t s = 1;
      for (size_t k = 0; k < nf; ++k) {
        stride_[k] = s;
        s *= proto_.component(static_cast<uint32_t>(k))->NumRows();
      }
      memo_ = std::make_unique<std::atomic<const std::vector<int32_t>*>[]>(
          states);
      for (size_t i = 0; i < states; ++i) {
        memo_[i].store(nullptr, std::memory_order_relaxed);
      }
    }

    // Union bound on the number of distinct vectors the cluster can
    // produce: per member, the product of the distinct-value counts of
    // its referenced slots (certain cells contribute a factor of 1).
    double bound = 0.0;
    for (const ClusterMember& m : members_) {
      double prod = 1.0;
      for (const auto& [pos, slot] : m.cell_pos) {
        if (pos == ClusterMember::kCertainCell) continue;
        const ComponentStats& st = proto_.component(pos)->GetStats();
        prod = std::min(1e15, prod * static_cast<double>(st.distinct[slot]));
      }
      bound = std::min(1e15, bound + prod);
    }
    vector_bound_ = std::max(1.0, bound);
  }

  /// Union bound on the cluster's distinct producible vectors (≥ 1).
  double vector_bound() const { return vector_bound_; }

  /// Draws `count` states with `rng`; for each state, every distinct
  /// present vector gets one hit. Appends (id, hits) pairs to `out`.
  void SampleBatch(Rng rng, size_t count,
                   std::vector<std::pair<int32_t, uint64_t>>* out) const {
    ClusterEnumerator en = proto_;
    std::unordered_map<int32_t, uint64_t> hits;
    std::vector<int32_t> present;
    Tuple v(arity_);
    const size_t nf = cum_.size();
    for (size_t i = 0; i < count; ++i) {
      size_t key = 0;
      for (size_t k = 0; k < nf; ++k) {
        const std::vector<double>& c = cum_[k];
        const double u = rng.NextDouble() * mass_[k];
        size_t r = static_cast<size_t>(
            std::upper_bound(c.begin(), c.end(), u) - c.begin());
        if (r >= c.size()) r = c.size() - 1;
        en.SetChoice(static_cast<uint32_t>(k), r);
        if (memo_) key += r * stride_[k];
      }
      if (memo_) {
        const std::vector<int32_t>* list =
            memo_[key].load(std::memory_order_acquire);
        if (list == nullptr) list = FillMemo(en, key);
        for (int32_t id : *list) ++hits[id];
      } else {
        present.clear();
        for (const ClusterMember& m : members_) {
          if (MemberVectorAt(en, m, &v)) present.push_back(intern_->Intern(v));
        }
        std::sort(present.begin(), present.end());
        present.erase(std::unique(present.begin(), present.end()),
                      present.end());
        for (int32_t id : present) ++hits[id];
      }
    }
    out->reserve(out->size() + hits.size());
    for (const auto& [id, n] : hits) out->emplace_back(id, n);
  }

 private:
  const std::vector<int32_t>* FillMemo(const ClusterEnumerator& en,
                                       size_t key) const {
    auto list = std::make_unique<std::vector<int32_t>>();
    Tuple v(arity_);
    for (const ClusterMember& m : members_) {
      if (MemberVectorAt(en, m, &v)) list->push_back(intern_->Intern(v));
    }
    std::sort(list->begin(), list->end());
    list->erase(std::unique(list->begin(), list->end()), list->end());
    const std::vector<int32_t>* mine = list.get();
    const std::vector<int32_t>* expected = nullptr;
    if (memo_[key].compare_exchange_strong(expected, mine,
                                           std::memory_order_release,
                                           std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(pool_mu_);
      pool_.push_back(std::move(list));
      return mine;
    }
    return expected;  // another thread published the identical list
  }

  ClusterEnumerator proto_;  ///< copied per batch for SetChoice state
  std::vector<ClusterMember> members_;
  size_t arity_;
  VectorInterner* intern_;
  std::vector<std::vector<double>> cum_;  ///< per factor: cumulative probs
  std::vector<double> mass_;              ///< per factor: total mass
  double vector_bound_ = 1.0;
  /// State-level memo (small state spaces): packed state → deduped
  /// present-vector ids, published by CAS.
  std::vector<size_t> stride_;
  std::unique_ptr<std::atomic<const std::vector<int32_t>*>[]> memo_;
  mutable std::mutex pool_mu_;
  mutable std::vector<std::unique_ptr<std::vector<int32_t>>> pool_;
};

/// Exact per-vector mass of a small cluster (the phase-1 path).
Result<TupleProbMap> EvalExact(const ClusterIndex& index,
                               const Cluster& cluster, size_t state_limit) {
  ClusterMassScan scan(index, cluster);
  MAYBMS_RETURN_IF_ERROR(
      scan.enumerator().CheckBudget(state_limit, "approx conf cluster")
          .status());
  scan.Run(state_limit);
  return std::move(scan).TakeMass();
}

/// Signature of a member's referenced slots in one factor row, under
/// Value equality (PackedValue's ==/Hash collapse int/double and ±0).
using Sig = std::vector<PackedValue>;
struct SigHash {
  size_t operator()(const Sig& s) const {
    uint64_t h = 1469598103934665603ull;
    for (const PackedValue& v : s) {
      h ^= static_cast<uint64_t>(v.Hash());
      h *= 1099511628211ull;
      h ^= h >> 29;
    }
    return static_cast<size_t>(h);
  }
};
struct SigEq {
  bool operator()(const Sig& a, const Sig& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!(a[i] == b[i])) return false;
    }
    return true;
  }
};

/// Exact per-member marginal fast path. A member's presence and value
/// vector depend only on the rows chosen for the factors it touches;
/// factors draw independently, so its exact vector distribution is the
/// cross product, over touched factors, of one-pass marginals of its
/// referenced slots (rows with a ⊥ gating or ⊥ referenced slot drop
/// out), scaled by the total mass of the untouched factors. When no
/// vector is producible by two DIFFERENT members, the per-vector
/// cluster probability is exactly that member marginal. Returns nullopt
/// when the structure does not cooperate — colliding members, blown-up
/// signature domains, degenerate factor masses — and the caller falls
/// back to the anytime loop.
std::optional<ClusterOutcome> TryMemberMarginals(const ClusterIndex& index,
                                                 const Cluster& cluster,
                                                 VectorInterner* intern) {
  constexpr size_t kMaxQueryCombos = 4096;    // per (factor, slot set)
  constexpr size_t kMaxClusterCombos = size_t{1} << 16;
  constexpr size_t kMaxRowReads = size_t{1} << 24;

  ClusterEnumerator en(index, cluster.factors);
  const size_t nf = en.NumFactors();
  const size_t arity = index.rel().schema().size();
  std::vector<ClusterMember> members =
      ResolveClusterMembers(index, cluster, en);

  std::vector<double> factor_mass(nf);
  for (size_t k = 0; k < nf; ++k) {
    factor_mass[k] = en.component(static_cast<uint32_t>(k))->TotalMass();
    if (!(factor_mass[k] > 0.0)) return std::nullopt;
  }

  // One pass over a factor's rows for a (ref slots, gating slots) pair:
  // mass per distinct referenced-slot signature. Shared across members
  // with the same access pattern.
  struct Query {
    std::vector<std::pair<Sig, double>> combos;
  };
  std::map<std::tuple<uint32_t, std::vector<uint32_t>, std::vector<uint32_t>>,
           std::optional<Query>>
      cache;
  size_t row_budget = kMaxRowReads;
  auto run_query = [&](uint32_t k, const std::vector<uint32_t>& refs,
                       const std::vector<uint32_t>& gates) -> const Query* {
    auto key = std::make_tuple(k, refs, gates);
    auto it = cache.find(key);
    if (it != cache.end()) {
      return it->second ? &*it->second : nullptr;
    }
    std::optional<Query>& slot = cache[key];
    const Component* c = en.component(k);
    const ComponentStats& st = c->GetStats();
    double domain = 1.0;
    for (uint32_t s : refs) {
      domain *= static_cast<double>(st.distinct[s]);
    }
    const size_t rows = c->NumRows();
    if (domain > static_cast<double>(kMaxQueryCombos) || rows > row_budget) {
      return nullptr;  // slot stays nullopt: cached failure
    }
    row_budget -= rows;
    Query q;
    std::unordered_map<Sig, size_t, SigHash, SigEq> pos;
    const std::vector<double>& probs = c->probs();
    Sig sig;
    sig.reserve(refs.size());
    size_t last = SIZE_MAX;
    for (size_t r = 0; r < rows; ++r) {
      const double p = probs[r];
      if (p <= 0.0) continue;
      bool dead = false;
      for (uint32_t g : gates) {
        if (c->packed(r, g).is_bottom()) {
          dead = true;
          break;
        }
      }
      if (dead) continue;
      sig.clear();
      for (uint32_t s : refs) {
        const PackedValue& pv = c->packed(r, s);
        if (pv.is_bottom()) {
          dead = true;
          break;
        }
        sig.push_back(pv);
      }
      if (dead) continue;
      // Columns are often runs of equal values; try the previous row's
      // combo before paying for a hash lookup.
      if (last != SIZE_MAX && SigEq()(q.combos[last].first, sig)) {
        q.combos[last].second += p;
        continue;
      }
      auto pit = pos.find(sig);
      if (pit == pos.end()) {
        last = q.combos.size();
        pos.emplace(sig, last);
        q.combos.emplace_back(sig, p);
      } else {
        last = pit->second;
        q.combos[last].second += p;
      }
    }
    slot = std::move(q);
    return &*slot;
  };

  TupleProbMap dist;
  std::unordered_map<Tuple, size_t, TupleValueHash, TupleValueEq> owner;
  size_t total_combos = 0;
  for (size_t mi = 0; mi < members.size(); ++mi) {
    const ClusterMember& m = members[mi];
    // Access pattern per factor: referenced (cell, slot) pairs in cell
    // order, plus the gating slots.
    std::vector<std::vector<std::pair<size_t, uint32_t>>> refs_by_factor(nf);
    for (size_t c = 0; c < m.cell_pos.size(); ++c) {
      const auto& [pos, slot] = m.cell_pos[c];
      if (pos != ClusterMember::kCertainCell) {
        refs_by_factor[pos].emplace_back(c, slot);
      }
    }
    std::vector<const Query*> qs;
    std::vector<std::vector<size_t>> cell_map;  // per query: cell indexes
    double scale = 1.0;
    for (size_t k = 0; k < nf; ++k) {
      const bool touched =
          !refs_by_factor[k].empty() ||
          (k < m.gating.size() && !m.gating[k].empty());
      if (!touched) {
        scale *= factor_mass[k];
        continue;
      }
      std::vector<uint32_t> ref_slots;
      std::vector<size_t> cells;
      for (const auto& [cell, slot] : refs_by_factor[k]) {
        cells.push_back(cell);
        ref_slots.push_back(slot);
      }
      const Query* q = run_query(
          static_cast<uint32_t>(k), ref_slots,
          k < m.gating.size() ? m.gating[k] : std::vector<uint32_t>{});
      if (q == nullptr) return std::nullopt;
      qs.push_back(q);
      cell_map.push_back(std::move(cells));
    }

    size_t combos = 1;
    bool absent = false;
    for (const Query* q : qs) {
      if (q->combos.empty()) {
        absent = true;
        break;
      }
      if (combos > kMaxClusterCombos / q->combos.size()) return std::nullopt;
      combos *= q->combos.size();
    }
    if (absent) continue;  // the member exists in no state
    total_combos += combos;
    if (total_combos > kMaxClusterCombos) return std::nullopt;

    Tuple v(arity);
    for (size_t c = 0; c < m.cell_pos.size(); ++c) {
      if (m.cell_pos[c].first == ClusterMember::kCertainCell) {
        v[c] = m.t->cells[c].value();
      }
    }
    std::vector<size_t> pick(qs.size(), 0);
    for (;;) {
      double p = scale;
      for (size_t i = 0; i < qs.size(); ++i) {
        const auto& [sig, mass] = qs[i]->combos[pick[i]];
        p *= mass;
        for (size_t j = 0; j < cell_map[i].size(); ++j) {
          v[cell_map[i][j]] = sig[j].ToValue();
        }
      }
      auto [oit, fresh] = owner.emplace(v, mi);
      if (!fresh && oit->second != mi) {
        return std::nullopt;  // two members can produce this vector
      }
      dist[v] += p;
      size_t i = 0;
      for (; i < pick.size(); ++i) {
        if (++pick[i] < qs[i]->combos.size()) break;
        pick[i] = 0;
      }
      if (i == pick.size()) break;
    }
  }

  ClusterOutcome out;
  out.path = ClusterPath::kExact;
  out.iv.reserve(dist.size());
  for (const auto& [t, p] : dist) {
    const double pc = std::clamp(p, 0.0, 1.0);
    out.iv[intern->Intern(t)] = Interval{pc, pc, pc};
  }
  return out;
}

/// Anytime evaluation of one non-tiny cluster: interleaves odometer
/// enumeration (deterministic brackets) with batched Monte-Carlo
/// sampling until either half-width is ≤ eps_c or budgets run out.
ClusterOutcome EvalAnytime(const ClusterIndex& index, const Cluster& cluster,
                           const ApproxOptions& opt, double eps_c,
                           double delta_c, uint64_t ordinal,
                           VectorInterner* intern, ApproxConfStats* stats) {
  if (opt.member_marginals && !opt.sampling_only && opt.fixed_samples == 0) {
    if (auto fast = TryMemberMarginals(index, cluster, intern)) {
      return *std::move(fast);
    }
  }
  ClusterMassScan scan(index, cluster);
  ClusterSampler sampler(index, cluster, intern);
  const double total = scan.total_mass();
  const double log_term =
      std::log(std::max(2.0, 2.0 * sampler.vector_bound() / delta_c));

  // Samples needed for the Hoeffding half-width to reach eps_c.
  size_t n_target = opt.max_samples;
  if (opt.fixed_samples > 0) {
    n_target = opt.fixed_samples;
  } else if (eps_c > 0.0) {
    const double need =
        std::ceil(total * total * log_term / (2.0 * eps_c * eps_c));
    if (need < static_cast<double>(opt.max_samples)) {
      n_target = static_cast<size_t>(need);
    }
  }

  const Rng base = Rng(opt.seed).Split(ordinal);
  std::unordered_map<int32_t, uint64_t> hits;
  size_t n = 0;
  uint64_t next_batch = 0;
  double hw = std::numeric_limits<double>::infinity();
  for (;;) {
    const bool enum_on = !opt.sampling_only && !scan.done() &&
                         scan.states_visited() < opt.max_enum_states;
    const size_t enum_now =
        enum_on ? std::min(opt.enum_chunk,
                           opt.max_enum_states - scan.states_visited())
                : 0;
    const size_t sample_now =
        n < n_target ? std::min(opt.sample_chunk, n_target - n) : 0;
    if (enum_now == 0 && sample_now == 0) break;

    const size_t batches = (sample_now + kSampleBatch - 1) / kSampleBatch;
    std::vector<std::vector<std::pair<int32_t, uint64_t>>> batch_hits(batches);
    const size_t tasks = batches + (enum_now ? 1 : 0);
    ParallelFor(opt.num_threads, tasks, [&](size_t t) {
      if (enum_now && t == 0) {
        scan.Run(enum_now);
        return;
      }
      const size_t b = enum_now ? t - 1 : t;
      const size_t cnt =
          std::min(kSampleBatch, sample_now - b * kSampleBatch);
      sampler.SampleBatch(base.Split(next_batch + b), cnt, &batch_hits[b]);
    });
    next_batch += batches;
    n += sample_now;
    for (const auto& bh : batch_hits) {
      for (const auto& [id, c] : bh) hits[id] += c;
    }

    // Stopping rules, on fully merged round state only (determinism).
    if (scan.done()) break;
    if (n > 0) {
      hw = total * std::sqrt(log_term / (2.0 * static_cast<double>(n)));
    }
    if (opt.fixed_samples > 0) {
      if (n >= n_target) break;
      continue;
    }
    const double u2 = scan.unvisited_mass() * 0.5;
    if (u2 <= eps_c || hw <= eps_c) break;
  }

  const double unvisited = scan.done() ? 0.0 : scan.unvisited_mass();
  if (n == 0) hw = std::numeric_limits<double>::infinity();

  ClusterOutcome out;
  if (opt.sampling_only) {
    out.path = ClusterPath::kSampled;
  } else if (scan.done()) {
    out.path = ClusterPath::kExact;
  } else {
    out.path =
        unvisited * 0.5 <= hw ? ClusterPath::kBracket : ClusterPath::kSampled;
  }
  stats->total_samples += n;
  stats->total_states += scan.states_visited();
  stats->max_half_width =
      std::max(stats->max_half_width, std::min(unvisited * 0.5, hw));

  std::unordered_map<int32_t, double> enum_mass;
  if (!opt.sampling_only) {
    enum_mass.reserve(scan.mass().size());
    for (const auto& [t, p] : scan.mass()) enum_mass[intern->Intern(t)] = p;
  }

  auto build = [&](int32_t id) {
    auto mit = enum_mass.find(id);
    const double m = mit == enum_mass.end() ? 0.0 : mit->second;
    auto hit = hits.find(id);
    const uint64_t h = hit == hits.end() ? 0 : hit->second;
    Interval iv;
    if (opt.sampling_only) {
      // Raw frequency estimator: exactly unbiased through the product
      // combine, so it is deliberately left unclamped.
      iv.est = total * static_cast<double>(h) / static_cast<double>(n);
      iv.lo = std::max(0.0, iv.est - hw);
      iv.hi = std::min(1.0, iv.est + hw);
      return iv;
    }
    const double lo_b = m;
    const double hi_b = std::min(1.0, m + unvisited);
    if (n > 0) {
      const double est_s =
          total * static_cast<double>(h) / static_cast<double>(n);
      iv.lo = std::max(lo_b, est_s - hw);
      iv.hi = std::min(hi_b, est_s + hw);
      if (iv.lo > iv.hi) {
        // The (probabilistic) CI contradicts the sound bracket: keep
        // the bracket.
        iv.lo = lo_b;
        iv.hi = hi_b;
      }
      iv.est = std::clamp(scan.done() ? m : est_s, iv.lo, iv.hi);
    } else {
      iv.lo = lo_b;
      iv.hi = hi_b;
      iv.est = std::clamp(m + unvisited * 0.5, iv.lo, iv.hi);
    }
    return iv;
  };

  out.iv.reserve(enum_mass.size() + hits.size());
  for (const auto& [id, m] : enum_mass) out.iv.emplace(id, build(id));
  for (const auto& [id, h] : hits) {
    if (out.iv.find(id) == out.iv.end()) out.iv.emplace(id, build(id));
  }
  out.unseen_hi = std::min(1.0, std::min(unvisited, hw));
  if (opt.sampling_only) out.unseen_hi = std::min(1.0, hw);
  return out;
}

}  // namespace

Result<Relation> ApproxConfTable(const WsdDb& db, const std::string& rel_name,
                                 const ApproxOptions& options,
                                 ApproxConfStats* stats) {
  if (!(options.epsilon > 0.0) || options.epsilon >= 1.0) {
    return Status::InvalidArgument("APPROX CONF epsilon must be in (0, 1)");
  }
  if (!(options.delta > 0.0) || options.delta >= 1.0) {
    return Status::InvalidArgument("APPROX CONF delta must be in (0, 1)");
  }
  MAYBMS_ASSIGN_OR_RETURN(const WsdRelation* rel, db.GetRelation(rel_name));

  ClusterIndexOptions ci;
  ci.factorize = options.factorize_clusters;
  ClusterIndex index(db, *rel, ci);
  const std::vector<Cluster>& clusters = index.clusters();

  ApproxConfStats local_stats;
  local_stats.clusters = clusters.size();

  VectorInterner intern;
  // Outcome slot 0 is the certain-tuple pile; cluster i fills slot i+1.
  std::vector<ClusterOutcome> outcomes(clusters.size() + 1);
  if (!index.certain_tuples().empty()) {
    ClusterOutcome& pile = outcomes[0];
    for (size_t i : index.certain_tuples()) {
      Tuple v;
      v.reserve(rel->schema().size());
      for (const auto& cell : rel->tuple(i).cells) v.push_back(cell.value());
      pile.iv[intern.Intern(v)] = Interval{1.0, 1.0, 1.0};
    }
  }

  // Phase split: tiny clusters are enumerated exactly (zero error); the
  // ε/δ budget is divided evenly over the K remaining ones.
  std::vector<size_t> exact_idx, anytime_idx;
  for (size_t i = 0; i < clusters.size(); ++i) {
    (StateCount(index, clusters[i]) <= options.exact_state_limit ? exact_idx
                                                                 : anytime_idx)
        .push_back(i);
  }
  const size_t k_any = std::max<size_t>(1, anytime_idx.size());
  const double eps_c = options.epsilon / static_cast<double>(k_any);
  const double delta_c = options.delta / static_cast<double>(k_any);

  // Phase 1: exact clusters, batched across the pool (same shape as
  // ConfTable's cluster loop).
  const size_t n_exact = exact_idx.size();
  const size_t threads =
      options.num_threads ? options.num_threads : DefaultNumThreads();
  const size_t n_batches = std::min(n_exact, std::max<size_t>(1, threads * 8));
  const size_t per_batch =
      n_batches ? (n_exact + n_batches - 1) / n_batches : 0;
  std::vector<Status> statuses(n_exact, Status::OK());
  std::atomic<bool> failed{false};
  // Exact-phase cache salt: the exact result depends on which clusters
  // qualify as tiny (state limit) and on the factor decomposition.
  uint64_t approx_salt = 0;
  if (options.cache != nullptr) {
    size_t seed = static_cast<size_t>(conf_cache_salt::kApprox);
    HashCombine(&seed, options.exact_state_limit);
    HashCombine(&seed, options.factorize_clusters ? 1 : 2);
    approx_salt = static_cast<uint64_t>(seed);
  }
  ParallelFor(options.num_threads, n_batches, [&](size_t b) {
    const size_t begin = b * per_batch;
    const size_t end = std::min(n_exact, begin + per_batch);
    for (size_t e = begin; e < end; ++e) {
      if (failed.load(std::memory_order_relaxed)) return;
      const size_t cidx = exact_idx[e];
      std::shared_ptr<const TupleProbMap> mass;
      uint64_t key = 0;
      if (options.cache != nullptr) {
        key = index.ClusterKey(clusters[cidx], approx_salt);
        mass = options.cache->FindMass(key);
      }
      if (mass == nullptr) {
        Result<TupleProbMap> r =
            EvalExact(index, clusters[cidx], options.exact_state_limit);
        if (!r.ok()) {
          statuses[e] = r.status();
          failed.store(true, std::memory_order_relaxed);
          return;
        }
        mass = std::make_shared<const TupleProbMap>(*std::move(r));
        if (options.cache != nullptr) options.cache->InsertMass(key, mass);
      }
      ClusterOutcome& out = outcomes[cidx + 1];
      out.path = ClusterPath::kExact;
      out.iv.reserve(mass->size());
      for (const auto& [t, p] : *mass) {
        const double pc = std::min(1.0, p);
        out.iv[intern.Intern(t)] = Interval{pc, pc, pc};
      }
    }
  });
  for (const Status& st : statuses) MAYBMS_RETURN_IF_ERROR(st);
  local_stats.exact_clusters = n_exact;

  // Phase 2: anytime clusters, serial across clusters (each round
  // parallelizes internally over sample batches + the enum cursor).
  for (size_t a = 0; a < anytime_idx.size(); ++a) {
    const size_t cidx = anytime_idx[a];
    ClusterOutcome out =
        EvalAnytime(index, clusters[cidx], options, eps_c, delta_c,
                    /*ordinal=*/static_cast<uint64_t>(cidx), &intern,
                    &local_stats);
    switch (out.path) {
      case ClusterPath::kExact:
        ++local_stats.exact_clusters;
        break;
      case ClusterPath::kBracket:
        ++local_stats.bracket_clusters;
        break;
      case ClusterPath::kSampled:
        ++local_stats.sampled_clusters;
        break;
    }
    outcomes[cidx + 1] = std::move(out);
  }

  // Combine: per vector, conf = 1 − Π_c (1 − p_c), applied to lo / est /
  // hi separately (the map is monotone in each coordinate, so interval
  // endpoints map to interval endpoints).
  const size_t n_ids = intern.size();
  Schema out_schema = rel->schema();
  std::string conf_name = "conf";
  int suffix = 2;
  auto collides = [&](const std::string& base) {
    return out_schema.IndexOf(base) || out_schema.IndexOf(base + "_lo") ||
           out_schema.IndexOf(base + "_hi");
  };
  while (collides(conf_name)) conf_name = "conf_" + std::to_string(suffix++);
  MAYBMS_RETURN_IF_ERROR(out_schema.Add({conf_name, ValueType::kDouble}));
  MAYBMS_RETURN_IF_ERROR(
      out_schema.Add({conf_name + "_lo", ValueType::kDouble}));
  MAYBMS_RETURN_IF_ERROR(
      out_schema.Add({conf_name + "_hi", ValueType::kDouble}));

  struct Row {
    const Tuple* v;
    double conf, lo, hi;
  };
  std::vector<Row> rows;
  rows.reserve(n_ids);
  for (size_t id = 0; id < n_ids; ++id) {
    double alo = 1.0, aest = 1.0, ahi = 1.0;
    for (const ClusterOutcome& o : outcomes) {
      auto it = o.iv.find(static_cast<int32_t>(id));
      if (it != o.iv.end()) {
        alo *= 1.0 - it->second.lo;
        aest *= 1.0 - it->second.est;
        ahi *= 1.0 - it->second.hi;
      } else {
        ahi *= 1.0 - o.unseen_hi;
      }
    }
    Row r;
    r.v = &intern.tuple(static_cast<int32_t>(id));
    r.lo = 1.0 - alo;
    r.hi = 1.0 - ahi;
    r.conf = 1.0 - aest;
    if (!options.sampling_only) r.conf = std::clamp(r.conf, r.lo, r.hi);
    rows.push_back(r);
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.conf != b.conf) return a.conf > b.conf;
    return TupleCompare(*a.v, *b.v) < 0;
  });

  Relation out(rel_name + "_conf", out_schema);
  for (const Row& r : rows) {
    Tuple t = *r.v;
    t.push_back(Value::Double(r.conf));
    t.push_back(Value::Double(r.lo));
    t.push_back(Value::Double(r.hi));
    out.AppendUnchecked(std::move(t));
  }
  if (stats) *stats = local_stats;
  return out;
}

}  // namespace maybms
