#include "core/lifted_internal.h"

#include <algorithm>
#include <functional>
#include <unordered_set>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/string_util.h"

namespace maybms {
namespace lifted_internal {

std::unordered_map<OwnerId, size_t> CountOwnerUsage(const WsdDb& db) {
  std::unordered_map<OwnerId, size_t> usage;
  for (const auto& [key, rel] : db.relations()) {
    for (const auto& t : rel.tuples()) {
      for (OwnerId o : t.deps) usage[o]++;
    }
  }
  return usage;
}

std::vector<ComponentId> ComponentsGatingOwners(
    const WsdDb& db, const std::vector<OwnerId>& owners) {
  std::vector<ComponentId> out;
  for (ComponentId id : db.LiveComponents()) {
    const Component& c = db.component(id);
    for (uint32_t s = 0; s < c.NumSlots(); ++s) {
      if (std::binary_search(owners.begin(), owners.end(), c.slot(s).owner)) {
        out.push_back(id);
        break;
      }
    }
  }
  return out;
}

std::vector<ComponentId> BottomGatingComponents(
    const WsdDb& db, const std::vector<OwnerId>& owners) {
  std::vector<ComponentId> out;
  for (ComponentId id : db.LiveComponents()) {
    const Component& c = db.component(id);
    bool relevant = false;
    for (uint32_t s = 0; !relevant && s < c.NumSlots(); ++s) {
      if (!std::binary_search(owners.begin(), owners.end(),
                              c.slot(s).owner)) {
        continue;
      }
      for (const PackedValue& v : c.column(s)) {
        if (v.is_bottom()) {
          relevant = true;
          break;
        }
      }
    }
    if (relevant) out.push_back(id);
  }
  return out;
}

bool AlwaysAlive(const WsdDb& db, const std::vector<OwnerId>& deps) {
  return deps.empty() || BottomGatingComponents(db, deps).empty();
}

BottomGatingIndex BuildBottomGatingIndex(const WsdDb& db) {
  BottomGatingIndex index;
  for (ComponentId id : db.LiveComponents()) {
    const Component& c = db.component(id);
    std::unordered_set<OwnerId> done;
    for (uint32_t s = 0; s < c.NumSlots(); ++s) {
      OwnerId owner = c.slot(s).owner;
      if (done.count(owner)) continue;
      for (const PackedValue& v : c.column(s)) {
        if (v.is_bottom()) {
          index[owner].push_back(id);
          done.insert(owner);
          break;
        }
      }
    }
  }
  return index;
}

std::vector<ComponentId> LookupBottomGating(
    const BottomGatingIndex& index, const std::vector<OwnerId>& deps) {
  std::vector<ComponentId> out;
  for (OwnerId o : deps) {
    auto it = index.find(o);
    if (it != index.end()) {
      out.insert(out.end(), it->second.begin(), it->second.end());
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

PackedCellView MakeCellView(const Cell& cell, ComponentId expect_cid) {
  if (cell.is_certain()) {
    return {true, PackedValue::FromValue(cell.value()), 0};
  }
  MAYBMS_CHECK(expect_cid == kInvalidComponent ||
               cell.ref().cid == expect_cid);
  return {false, PackedValue(), cell.ref().slot};
}

bool FullyCertain(const WsdTuple& t) {
  for (const auto& cell : t.cells) {
    if (!cell.is_certain()) return false;
  }
  return true;
}

bool CertainlyEqual(const WsdTuple& a, const WsdTuple& b) {
  if (a.cells.size() != b.cells.size()) return false;
  for (size_t c = 0; c < a.cells.size(); ++c) {
    if (!a.cells[c].is_certain() || !b.cells[c].is_certain() ||
        !(a.cells[c].value() == b.cells[c].value())) {
      return false;
    }
  }
  return true;
}

ComponentId MergePlanner::Find(ComponentId c) {
  auto it = parent_.find(c);
  if (it == parent_.end()) {
    parent_[c] = c;
    return c;
  }
  // Path compression over the map.
  ComponentId root = c;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[c] != root) {
    ComponentId next = parent_[c];
    parent_[c] = root;
    c = next;
  }
  return root;
}

void MergePlanner::Require(const std::vector<ComponentId>& cids) {
  MAYBMS_CHECK(!executed_) << "MergePlanner reused after Execute";
  if (cids.size() < 2) {
    if (cids.size() == 1) Find(cids[0]);
    return;
  }
  ComponentId first = Find(cids[0]);
  for (size_t i = 1; i < cids.size(); ++i) {
    parent_[Find(cids[i])] = first = Find(first);
  }
}

Status MergePlanner::Execute(WsdDb* db) {
  MAYBMS_CHECK(!executed_);
  executed_ = true;
  // Collect groups. Find mutates parent_, so gather keys first.
  std::unordered_map<ComponentId, std::vector<ComponentId>> groups;
  std::vector<ComponentId> keys;
  keys.reserve(parent_.size());
  for (const auto& [cid, p] : parent_) keys.push_back(cid);
  for (ComponentId cid : keys) groups[Find(cid)].push_back(cid);
  // Batch all real merges into one MergeComponentGroups call so the
  // template remap is a single pass.
  std::vector<ComponentId> roots;
  std::vector<std::vector<ComponentId>> batch;
  for (auto& [root, members] : groups) {
    if (members.size() < 2) {
      merged_[root] = members[0];
      continue;
    }
    roots.push_back(root);
    batch.push_back(std::move(members));
  }
  if (!batch.empty()) {
    MAYBMS_ASSIGN_OR_RETURN(
        std::vector<ComponentId> merged,
        db->MergeComponentGroups(batch, db->options().max_component_rows));
    for (size_t i = 0; i < roots.size(); ++i) merged_[roots[i]] = merged[i];
  }
  return Status::OK();
}

ComponentId MergePlanner::Resolve(ComponentId cid) const {
  MAYBMS_CHECK(executed_);
  // Non-const Find not available here; walk without compression.
  auto it = parent_.find(cid);
  if (it == parent_.end()) return cid;
  ComponentId root = cid;
  while (true) {
    auto pit = parent_.find(root);
    if (pit == parent_.end() || pit->second == root) break;
    root = pit->second;
  }
  auto mit = merged_.find(root);
  return mit == merged_.end() ? cid : mit->second;
}

void BindComponentInputs(
    const Component& m, const CompiledExpr& prog,
    const std::vector<std::pair<size_t, uint32_t>>& ref_cols,
    const Tuple& eval_buf, std::vector<ExprInput>* inputs,
    std::vector<PackedValue>* broadcast) {
  inputs->assign(prog.columns().size(), ExprInput{});
  broadcast->clear();
  broadcast->reserve(prog.columns().size());
  for (size_t s = 0; s < prog.columns().size(); ++s) {
    const size_t c = prog.columns()[s];
    const std::pair<size_t, uint32_t>* ref = nullptr;
    for (const auto& rc : ref_cols) {
      if (rc.first == c) {
        ref = &rc;
        break;
      }
    }
    if (ref) {
      (*inputs)[s] = {m.column(ref->second).data(), false};
    } else {
      broadcast->push_back(PackedValue::FromValue(eval_buf[c]));
      (*inputs)[s] = {&broadcast->back(), true};
    }
  }
}

CompiledEvalPtr TryCompile(const Expr& e, const ExecOptions& opts) {
  if (!opts.compile_expressions) return nullptr;
  auto prog = CompiledExpr::Compile(e);
  if (!prog) return nullptr;
  return std::make_unique<CompiledEval>(std::move(*prog));
}

void EvalOverComponent(
    const Component& m,
    const std::vector<std::pair<size_t, uint32_t>>& ref_cols,
    const Tuple& eval_buf, const ExecOptions& opts, CompiledEval* ce) {
  const size_t n = m.NumRows();
  BindComponentInputs(m, ce->prog, ref_cols, eval_buf, &ce->inputs,
                      &ce->broadcast);
  ce->results.resize(n);
  ce->fallback.clear();
  const size_t threads =
      opts.num_threads ? opts.num_threads : DefaultNumThreads();
  if (n >= opts.parallel_row_threshold && threads > 1) {
    EvalBatchAuto(ce->prog, ce->inputs.data(), n, ce->results.data(),
                  &ce->fallback, opts);
  } else {
    ce->eval.Eval(ce->inputs.data(), 0, n, ce->results.data(),
                  &ce->fallback);
  }
}

namespace {

// Per-component-row outcome of a tuple's predicate: the tuple is absent
// in the row's worlds (a referenced slot holds ⊥), satisfies the
// predicate, or fails it.
enum class RowVerdict : uint8_t { kDead = 0, kPass = 1, kFail = 2 };

// Interpreted reference kernel: evaluates the predicate row by row via
// Expr::Eval, gathering referenced slots into `eval_buf` (whose certain
// predicate inputs are already loaded). Kept as the single source of
// truth; the compiled kernel below must agree with it.
Status RowVerdictsInterpreted(
    const Component& m, const ExprPtr& pred,
    const std::vector<std::pair<size_t, uint32_t>>& ref_cols,
    Tuple* eval_buf, std::vector<RowVerdict>* verdicts) {
  for (size_t r = 0; r < m.NumRows(); ++r) {
    bool dead = false;
    for (const auto& [c, slot] : ref_cols) {
      const PackedValue& v = m.packed(r, slot);
      if (v.is_bottom()) {
        dead = true;
        break;
      }
      (*eval_buf)[c] = v.ToValue();
    }
    if (dead) {
      (*verdicts)[r] = RowVerdict::kDead;
      continue;
    }
    MAYBMS_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*pred, *eval_buf));
    (*verdicts)[r] = pass ? RowVerdict::kPass : RowVerdict::kFail;
  }
  return Status::OK();
}

// Compiled kernel: one vectorized pass directly over the component's
// packed columns (certain predicate inputs broadcast), optionally sharded
// over the thread pool. Rows the program flags are re-evaluated through
// the interpreter, which also reproduces its error behavior: the first
// erroring live row is the same in both modes because every row on which
// Expr::Eval errors is flagged by the program, and flagged rows are
// re-run in ascending order.
Status RowVerdictsCompiled(
    const Component& m, const ExprPtr& pred, CompiledEval* ce,
    const std::vector<std::pair<size_t, uint32_t>>& ref_cols,
    Tuple* eval_buf, const ExecOptions& opts,
    std::vector<RowVerdict>* verdicts) {
  const size_t n = m.NumRows();
  if (n == 0) return Status::OK();

  EvalOverComponent(m, ref_cols, *eval_buf, opts, ce);
  std::vector<PackedValue>& results = ce->results;
  std::vector<size_t>& fallback = ce->fallback;

  // Non-bool results (e.g. a bare integer predicate) are errors in
  // EvalPredicate too, so they join the program-flagged rows.
  for (size_t r = 0; r < n; ++r) {
    bool dead = false;
    for (const auto& [c, slot] : ref_cols) {
      if (m.packed(r, slot).is_bottom()) {
        dead = true;
        break;
      }
    }
    if (dead) {
      (*verdicts)[r] = RowVerdict::kDead;
      continue;
    }
    bool needs_fallback = false;
    const bool pass = PackedPredicate(results[r], &needs_fallback);
    if (needs_fallback) fallback.push_back(r);
    (*verdicts)[r] = pass ? RowVerdict::kPass : RowVerdict::kFail;
  }
  std::sort(fallback.begin(), fallback.end());
  fallback.erase(std::unique(fallback.begin(), fallback.end()),
                 fallback.end());
  for (size_t r : fallback) {
    bool dead = false;
    for (const auto& [c, slot] : ref_cols) {
      const PackedValue& v = m.packed(r, slot);
      if (v.is_bottom()) {
        dead = true;
        break;
      }
      (*eval_buf)[c] = v.ToValue();
    }
    if (dead) continue;  // the interpreter never evaluates dead rows
    MAYBMS_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*pred, *eval_buf));
    (*verdicts)[r] = pass ? RowVerdict::kPass : RowVerdict::kFail;
  }
  return Status::OK();
}

Status ComputeRowVerdicts(
    const Component& m, const ExprPtr& pred, CompiledEval* ce,
    const std::vector<std::pair<size_t, uint32_t>>& ref_cols,
    Tuple* eval_buf, const ExecOptions& opts,
    std::vector<RowVerdict>* verdicts) {
  verdicts->assign(m.NumRows(), RowVerdict::kDead);
  if (ce != nullptr) {
    return RowVerdictsCompiled(m, pred, ce, ref_cols, eval_buf, opts,
                               verdicts);
  }
  return RowVerdictsInterpreted(m, pred, ref_cols, eval_buf, verdicts);
}

}  // namespace

Status FilterRelationInPlace(WsdDb* db, const std::string& rel_name,
                             const ExprPtr& bound_pred,
                             const ExecOptions& opts) {
  MAYBMS_ASSIGN_OR_RETURN(WsdRelation * rel, db->GetMutableRelation(rel_name));
  std::vector<size_t> cols;
  bound_pred->CollectColumns(&cols);
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  for (size_t c : cols) {
    if (c >= rel->schema().size()) {
      return Status::OutOfRange("predicate column out of range");
    }
  }

  // Pass 1: plan merges for tuples whose predicate spans components.
  MergePlanner planner;
  for (const auto& t : rel->tuples()) {
    std::vector<ComponentId> cids;
    for (size_t c : cols) {
      if (t.cells[c].is_ref()) cids.push_back(t.cells[c].ref().cid);
    }
    std::sort(cids.begin(), cids.end());
    cids.erase(std::unique(cids.begin(), cids.end()), cids.end());
    if (cids.size() > 1) planner.Require(cids);
  }
  MAYBMS_RETURN_IF_ERROR(planner.Execute(db));

  auto usage = CountOwnerUsage(*db);

  // Lower the predicate once; every tuple's per-world loop reuses the
  // program and its scratch (component columns are rebound per tuple).
  CompiledEvalPtr ce = TryCompile(*bound_pred, opts);

  // Pass 2: evaluate per tuple.
  std::vector<bool> drop(rel->NumTuples(), false);
  Tuple eval_buf(rel->schema().size(), Value::Null());
  std::vector<RowVerdict> verdicts;
  for (size_t i = 0; i < rel->NumTuples(); ++i) {
    WsdTuple& t = rel->mutable_tuple(i);
    // Gather involved cells.
    ComponentId cid = kInvalidComponent;
    std::vector<std::pair<size_t, uint32_t>> ref_cols;  // (col, slot)
    for (size_t c : cols) {
      const Cell& cell = t.cells[c];
      if (cell.is_certain()) {
        eval_buf[c] = cell.value();
      } else {
        if (cid == kInvalidComponent) {
          cid = cell.ref().cid;
        } else if (cid != cell.ref().cid) {
          return Status::Internal(
              "predicate spans components after merge — planner bug");
        }
        ref_cols.emplace_back(c, cell.ref().slot);
      }
    }
    if (ref_cols.empty()) {
      MAYBMS_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*bound_pred, eval_buf));
      if (!pass) drop[i] = true;
      continue;
    }
    Component& m = db->mutable_component(cid);
    MAYBMS_RETURN_IF_ERROR(ComputeRowVerdicts(
        m, bound_pred, ce.get(), ref_cols, &eval_buf, opts, &verdicts));
    // Fast path: an owner gating only this tuple lets us mark ⊥ in place
    // (the paper's algorithm). Any referenced slot's owner is in t.deps.
    OwnerId fast_owner = 0;
    bool have_fast = false;
    for (const auto& [c, slot] : ref_cols) {
      OwnerId o = m.slot(slot).owner;
      auto it = usage.find(o);
      if (it != usage.end() && it->second == 1) {
        fast_owner = o;
        have_fast = true;
        break;
      }
    }
    if (have_fast) {
      std::vector<uint32_t> owner_slots;
      for (uint32_t s = 0; s < m.NumSlots(); ++s) {
        if (m.slot(s).owner == fast_owner) owner_slots.push_back(s);
      }
      for (size_t r = 0; r < m.NumRows(); ++r) {
        // Dead rows are already absent in these worlds; kept as-is.
        if (verdicts[r] != RowVerdict::kFail) continue;
        for (uint32_t s : owner_slots) {
          m.SetPacked(r, s, PackedValue::Bottom());
        }
      }
    } else {
      // Existence-slot path: a fresh owner encodes survival. ⊥ on dead
      // rows is redundant but compact and does not trigger slot creation
      // by itself.
      std::vector<PackedValue> exist_values;
      exist_values.reserve(m.NumRows());
      bool any_alive = false, any_kill = false;
      for (size_t r = 0; r < m.NumRows(); ++r) {
        switch (verdicts[r]) {
          case RowVerdict::kDead:
            exist_values.push_back(PackedValue::Bottom());
            break;
          case RowVerdict::kPass:
            exist_values.push_back(PackedExistsToken());
            any_alive = true;
            break;
          case RowVerdict::kFail:
            exist_values.push_back(PackedValue::Bottom());
            any_kill = true;
            break;
        }
      }
      if (!any_alive) {
        drop[i] = true;
      } else if (any_kill) {
        OwnerId fresh = db->NextOwner();
        m.AddSlotWithPacked(
            {fresh, "\xCF\x83\xE2\x88\x83" + std::to_string(fresh)},
            std::move(exist_values));
        t.AddDep(fresh);
      }
    }
    // Reset buffer columns we touched (cheap hygiene for certain cells of
    // the next tuple).
    for (size_t c : cols) eval_buf[c] = Value::Null();
  }

  // Remove dropped tuples.
  auto& tuples = rel->mutable_tuples();
  size_t kept = 0;
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (!drop[i]) {
      if (kept != i) tuples[kept] = std::move(tuples[i]);
      ++kept;
    }
  }
  tuples.resize(kept);
  return Status::OK();
}

std::vector<Value> PossibleCellValues(const WsdDb& db, const Cell& cell) {
  if (cell.is_certain()) return {cell.value()};
  const Component& c = db.component(cell.ref().cid);
  std::vector<Value> out;
  std::unordered_set<PackedValue, PackedValueHash> seen;
  seen.reserve(c.NumRows());
  for (const PackedValue& v : c.column(cell.ref().slot)) {
    if (v.is_bottom()) continue;
    if (seen.insert(v).second) out.push_back(v.ToValue());
  }
  return out;
}

bool CellsPossiblyEqual(const WsdDb& db, const Cell& a, const Cell& b) {
  if (a.is_certain() && b.is_certain()) return a.value() == b.value();
  std::vector<Value> va = PossibleCellValues(db, a);
  std::vector<Value> vb = PossibleCellValues(db, b);
  for (const auto& x : va) {
    for (const auto& y : vb) {
      if (x == y) return true;
    }
  }
  return false;
}

namespace {

// One existence slot to be computed: kills `target` in the worlds of the
// merged component where some member source is alive with equal values,
// or where the target's values equal one of `killer_values` (value
// vectors of always-alive certain duplicates, which need no components of
// their own).
struct KillUnit {
  std::string target_rel;
  size_t target_idx = 0;
  std::vector<size_t> spec_source_idxs;  // indexes into spec.sources
  std::vector<std::vector<Value>> killer_values;
  const MatchKillSpec* spec = nullptr;
  std::vector<ComponentId> cids;  // pre-merge components of this unit
};

}  // namespace

Status ApplyMatchKills(WsdDb* db, const std::vector<MatchKillSpec>& specs) {
  if (specs.empty()) return Status::OK();

  MergePlanner planner;
  std::vector<KillUnit> units;
  std::unordered_map<std::string, std::vector<size_t>> removals;
  BottomGatingIndex gating_index = BuildBottomGatingIndex(*db);
  auto always_alive = [&gating_index](const std::vector<OwnerId>& deps) {
    for (OwnerId o : deps) {
      if (gating_index.count(o)) return false;
    }
    return true;
  };

  // Phase 1: static kills + unit construction. Sources whose kill events
  // touch disjoint components get independent existence slots (target
  // existence is the conjunction over its deps), so no cross-source merge
  // is needed unless they genuinely share components.
  for (const auto& spec : specs) {
    MAYBMS_ASSIGN_OR_RETURN(const WsdRelation* trel,
                            db->GetRelation(spec.target_rel));
    const WsdTuple& target = trel->tuple(spec.target_idx);
    bool target_certain = FullyCertain(target);

    // Static kill: a fully-certain, always-alive, equal source kills a
    // fully-certain target in every world — no components involved.
    if (target_certain) {
      bool killed = false;
      for (const auto& src : spec.sources) {
        MAYBMS_ASSIGN_OR_RETURN(const WsdRelation* srel,
                                db->GetRelation(src.rel));
        const WsdTuple& s = srel->tuple(src.idx);
        if (CertainlyEqual(target, s) && always_alive(src.deps)) {
          killed = true;
          break;
        }
      }
      if (killed) {
        removals[spec.target_rel].push_back(spec.target_idx);
        continue;
      }
    }

    std::vector<ComponentId> target_cids;
    for (const auto& cell : target.cells) {
      if (cell.is_ref()) target_cids.push_back(cell.ref().cid);
    }
    std::sort(target_cids.begin(), target_cids.end());
    target_cids.erase(std::unique(target_cids.begin(), target_cids.end()),
                      target_cids.end());

    // Value-only killers: fully-certain, always-alive sources kill the
    // (uncertain) target in exactly the worlds where the target takes
    // their values — no source components are needed. They also dominate
    // any gated certain source with the same values, which can be dropped
    // from the merge entirely.
    std::vector<std::vector<Value>> killer_values;
    std::vector<bool> dominated(spec.sources.size(), false);
    if (!target_cids.empty()) {
      for (size_t s = 0; s < spec.sources.size(); ++s) {
        const auto& src = spec.sources[s];
        MAYBMS_ASSIGN_OR_RETURN(const WsdRelation* srel,
                                db->GetRelation(src.rel));
        const WsdTuple& st = srel->tuple(src.idx);
        if (!FullyCertain(st)) continue;
        std::vector<Value> values;
        values.reserve(st.cells.size());
        for (const auto& cell : st.cells) values.push_back(cell.value());
        if (always_alive(src.deps)) {
          dominated[s] = true;
          bool seen = false;
          for (const auto& kv : killer_values) {
            if (kv.size() == values.size()) {
              bool eq = true;
              for (size_t c = 0; c < kv.size(); ++c) {
                if (!(kv[c] == values[c])) {
                  eq = false;
                  break;
                }
              }
              if (eq) {
                seen = true;
                break;
              }
            }
          }
          if (!seen) killer_values.push_back(std::move(values));
        }
      }
      // Second pass: gated certain sources dominated by a killer.
      for (size_t s = 0; s < spec.sources.size(); ++s) {
        if (dominated[s]) continue;
        const auto& src = spec.sources[s];
        const WsdRelation* srel = db->GetRelation(src.rel).value();
        const WsdTuple& st = srel->tuple(src.idx);
        if (!FullyCertain(st)) continue;
        for (const auto& kv : killer_values) {
          bool eq = kv.size() == st.cells.size();
          for (size_t c = 0; eq && c < kv.size(); ++c) {
            eq = (kv[c] == st.cells[c].value());
          }
          if (eq) {
            dominated[s] = true;
            break;
          }
        }
      }
    }

    // Per-source component sets (values + ⊥-gating only).
    std::vector<std::vector<ComponentId>> scids(spec.sources.size());
    for (size_t s = 0; s < spec.sources.size(); ++s) {
      if (dominated[s]) continue;
      const auto& src = spec.sources[s];
      MAYBMS_ASSIGN_OR_RETURN(const WsdRelation* srel,
                              db->GetRelation(src.rel));
      const WsdTuple& st = srel->tuple(src.idx);
      for (const auto& cell : st.cells) {
        if (cell.is_ref()) scids[s].push_back(cell.ref().cid);
      }
      for (ComponentId g : LookupBottomGating(gating_index, src.deps)) {
        scids[s].push_back(g);
      }
      std::sort(scids[s].begin(), scids[s].end());
      scids[s].erase(std::unique(scids[s].begin(), scids[s].end()),
                     scids[s].end());
    }

    // Group sources that share components (always including the target's
    // value components in every group when the target is uncertain).
    // Union-find over source indexes keyed by component id.
    std::unordered_map<ComponentId, size_t> comp_owner;  // comp -> source idx
    std::vector<size_t> parent(spec.sources.size());
    for (size_t s = 0; s < parent.size(); ++s) parent[s] = s;
    std::function<size_t(size_t)> find = [&](size_t x) {
      while (parent[x] != x) {
        parent[x] = parent[parent[x]];
        x = parent[x];
      }
      return x;
    };
    if (!target_cids.empty()) {
      // Uncertain target: every source correlates through the target's
      // cells — one group.
      for (size_t s = 1; s < parent.size(); ++s) parent[find(s)] = find(0);
    } else {
      for (size_t s = 0; s < spec.sources.size(); ++s) {
        for (ComponentId cid : scids[s]) {
          auto [it, inserted] = comp_owner.try_emplace(cid, s);
          if (!inserted) parent[find(s)] = find(it->second);
        }
      }
    }
    std::unordered_map<size_t, KillUnit> group_units;
    for (size_t s = 0; s < spec.sources.size(); ++s) {
      if (dominated[s]) continue;
      // A source with no components at all: fully certain and always
      // alive would have been a static kill for certain targets and a
      // value-only killer for uncertain ones; skip defensively.
      if (scids[s].empty() && target_cids.empty()) continue;
      KillUnit& unit = group_units[find(s)];
      unit.spec_source_idxs.push_back(s);
      for (ComponentId cid : scids[s]) unit.cids.push_back(cid);
    }
    // Value-only killers get their own unit over the target's components.
    if (!killer_values.empty()) {
      KillUnit unit;
      unit.killer_values = std::move(killer_values);
      // Merge into the sources' group when one exists (the planner would
      // fuse the merged components anyway via the shared target cids).
      if (!group_units.empty()) {
        auto& first = group_units.begin()->second;
        first.killer_values = std::move(unit.killer_values);
      } else {
        group_units.emplace(SIZE_MAX, std::move(unit));
      }
    }
    for (auto& [root, unit] : group_units) {
      unit.target_rel = spec.target_rel;
      unit.target_idx = spec.target_idx;
      unit.spec = &spec;
      for (ComponentId cid : target_cids) unit.cids.push_back(cid);
      std::sort(unit.cids.begin(), unit.cids.end());
      unit.cids.erase(std::unique(unit.cids.begin(), unit.cids.end()),
                      unit.cids.end());
      if (unit.cids.empty()) continue;
      planner.Require(unit.cids);
      units.push_back(std::move(unit));
    }
  }
  MAYBMS_RETURN_IF_ERROR(planner.Execute(db));

  // Phase 2: compute one existence slot per unit.
  std::unordered_map<std::string, std::unordered_set<size_t>> removed_set;
  for (auto& [rel_name, idxs] : removals) {
    removed_set[rel_name].insert(idxs.begin(), idxs.end());
  }
  for (const KillUnit& unit : units) {
    if (removed_set.count(unit.target_rel) &&
        removed_set[unit.target_rel].count(unit.target_idx)) {
      continue;  // already statically dead
    }
    MAYBMS_ASSIGN_OR_RETURN(WsdRelation * trel,
                            db->GetMutableRelation(unit.target_rel));
    WsdTuple& target = trel->mutable_tuple(unit.target_idx);
    ComponentId mid = planner.Resolve(unit.cids[0]);
    Component& m = db->mutable_component(mid);

    auto view_of = [&](const WsdTuple& t) {
      std::vector<PackedCellView> views;
      views.reserve(t.cells.size());
      for (const Cell& cell : t.cells) views.push_back(MakeCellView(cell, mid));
      return views;
    };
    std::vector<PackedCellView> target_view = view_of(target);

    struct SourceInfo {
      std::vector<uint32_t> gating_slots;
      std::vector<PackedCellView> cells;
      size_t arity = 0;
    };
    std::vector<SourceInfo> sources(unit.spec_source_idxs.size());
    for (size_t k = 0; k < unit.spec_source_idxs.size(); ++k) {
      const auto& src = unit.spec->sources[unit.spec_source_idxs[k]];
      MAYBMS_ASSIGN_OR_RETURN(const WsdRelation* srel,
                              db->GetRelation(src.rel));
      const WsdTuple& st = srel->tuple(src.idx);
      sources[k].cells = view_of(st);
      sources[k].arity = st.cells.size();
      for (uint32_t slot = 0; slot < m.NumSlots(); ++slot) {
        if (std::binary_search(src.deps.begin(), src.deps.end(),
                               m.slot(slot).owner)) {
          sources[k].gating_slots.push_back(slot);
        }
      }
    }
    std::vector<std::vector<PackedValue>> killers;
    killers.reserve(unit.killer_values.size());
    for (const auto& kv : unit.killer_values) {
      std::vector<PackedValue> packed;
      packed.reserve(kv.size());
      for (const Value& v : kv) packed.push_back(PackedValue::FromValue(v));
      killers.push_back(std::move(packed));
    }

    std::vector<PackedValue> exist_values;
    exist_values.reserve(m.NumRows());
    bool any_alive = false, any_kill = false;
    std::vector<PackedValue> tvals(target.cells.size());
    for (size_t r = 0; r < m.NumRows(); ++r) {
      bool target_dead = false;
      for (size_t c = 0; c < target_view.size(); ++c) {
        const PackedCellView& view = target_view[c];
        tvals[c] = view.certain ? view.value : m.packed(r, view.slot);
        if (!view.certain && tvals[c].is_bottom()) target_dead = true;
      }
      if (target_dead) {
        exist_values.push_back(PackedValue::Bottom());
        continue;
      }
      bool killed = false;
      // Value-only killers: always-alive certain duplicates.
      for (const auto& kv : killers) {
        bool eq = kv.size() == tvals.size();
        for (size_t c = 0; eq && c < kv.size(); ++c) {
          eq = (kv[c] == tvals[c]);
        }
        if (eq) {
          killed = true;
          break;
        }
      }
      for (size_t s = 0; !killed && s < sources.size(); ++s) {
        bool alive = true;
        for (uint32_t slot : sources[s].gating_slots) {
          if (m.IsBottomAt(r, slot)) {
            alive = false;
            break;
          }
        }
        if (!alive) continue;
        bool equal = sources[s].arity == tvals.size();
        for (size_t c = 0; equal && c < sources[s].cells.size(); ++c) {
          const PackedCellView& view = sources[s].cells[c];
          const PackedValue& sv =
              view.certain ? view.value : m.packed(r, view.slot);
          if (sv.is_bottom() || !(sv == tvals[c])) equal = false;
        }
        if (equal) killed = true;
      }
      exist_values.push_back(killed ? PackedValue::Bottom()
                                    : PackedExistsToken());
      (killed ? any_kill : any_alive) = true;
    }
    if (!any_alive) {
      removals[unit.target_rel].push_back(unit.target_idx);
      removed_set[unit.target_rel].insert(unit.target_idx);
    } else if (any_kill) {
      OwnerId fresh = db->NextOwner();
      m.AddSlotWithPacked(
          {fresh, "\xCE\xB4\xE2\x88\x83" + std::to_string(fresh)},
          std::move(exist_values));
      target.AddDep(fresh);
    }
  }

  // Execute removals (descending indexes per relation).
  for (auto& [rel_name, idxs] : removals) {
    MAYBMS_ASSIGN_OR_RETURN(WsdRelation * rel,
                            db->GetMutableRelation(rel_name));
    std::sort(idxs.begin(), idxs.end(), std::greater<size_t>());
    idxs.erase(std::unique(idxs.begin(), idxs.end()), idxs.end());
    auto& tuples = rel->mutable_tuples();
    for (size_t idx : idxs) tuples.erase(tuples.begin() + idx);
  }
  return Status::OK();
}

}  // namespace lifted_internal
}  // namespace maybms
