#include "core/materialized_conf.h"

#include <utility>

namespace maybms {

template <typename V>
V* MaterializedConf::FindLocked(Store<V>* store, uint64_t key) {
  auto it = store->map.find(key);
  if (it == store->map.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  store->lru.splice(store->lru.begin(), store->lru, it->second.lru_it);
  return &it->second.value;
}

template <typename V>
void MaterializedConf::InsertLocked(Store<V>* store, uint64_t key, V value) {
  auto it = store->map.find(key);
  if (it != store->map.end()) {
    // Content keys collide only for identical results; keep the entry
    // fresh either way.
    it->second.value = std::move(value);
    store->lru.splice(store->lru.begin(), store->lru, it->second.lru_it);
    return;
  }
  store->lru.push_front(key);
  typename Store<V>::Entry entry{std::move(value), store->lru.begin()};
  store->map.emplace(key, std::move(entry));
  // Each store evicts its own least-recent entry once the *combined*
  // count passes capacity, so the total stays bounded while an idle
  // store's entries survive a busy one's churn.
  while (TotalEntriesLocked() > capacity_ && !store->lru.empty()) {
    ++evictions_;
    store->map.erase(store->lru.back());
    store->lru.pop_back();
  }
}

std::shared_ptr<const TupleProbMap> MaterializedConf::FindMass(uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto* found = FindLocked(&mass_, key);
  return found == nullptr ? nullptr : *found;
}

void MaterializedConf::InsertMass(uint64_t key,
                                  std::shared_ptr<const TupleProbMap> map) {
  std::lock_guard<std::mutex> lock(mu_);
  InsertLocked(&mass_, key, std::move(map));
}

std::optional<double> MaterializedConf::FindTerm(uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto* found = FindLocked(&term_, key);
  return found == nullptr ? std::nullopt : std::make_optional(*found);
}

void MaterializedConf::InsertTerm(uint64_t key, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  InsertLocked(&term_, key, value);
}

MaterializedConf::Stats MaterializedConf::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = TotalEntriesLocked();
  return s;
}

void MaterializedConf::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  mass_.map.clear();
  mass_.lru.clear();
  term_.map.clear();
  term_.lru.clear();
}

}  // namespace maybms
