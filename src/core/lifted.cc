#include "core/lifted.h"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/lifted_internal.h"
#include "core/normalize.h"

namespace maybms {

using lifted_internal::ApplyMatchKills;
using lifted_internal::CellsPossiblyEqual;
using lifted_internal::FilterRelationInPlace;
using lifted_internal::MatchKillSpec;
using lifted_internal::MergePlanner;

Status RenameRelation(WsdDb* db, const std::string& from,
                      const std::string& to) {
  if (EqualsIgnoreCase(from, to)) return Status::OK();
  if (db->HasRelation(to)) {
    return Status::AlreadyExists("relation already exists: " + to);
  }
  MAYBMS_ASSIGN_OR_RETURN(WsdRelation * rel, db->GetMutableRelation(from));
  WsdRelation moved = std::move(*rel);
  moved.set_name(to);
  MAYBMS_RETURN_IF_ERROR(db->DropRelation(from));
  MAYBMS_RETURN_IF_ERROR(db->CreateRelation(to, moved.schema()));
  WsdRelation* target = db->GetMutableRelation(to).value();
  *target = std::move(moved);
  target->set_name(to);
  return Status::OK();
}

Status LiftedSelect(WsdDb* db, const std::string& input, const ExprPtr& pred,
                    const std::string& output, const ExecOptions& opts) {
  MAYBMS_ASSIGN_OR_RETURN(const WsdRelation* rel, db->GetRelation(input));
  MAYBMS_ASSIGN_OR_RETURN(ExprPtr bound, pred->BindAgainst(rel->schema()));
  MAYBMS_RETURN_IF_ERROR(RenameRelation(db, input, output));
  MAYBMS_RETURN_IF_ERROR(FilterRelationInPlace(db, output, bound, opts));
  MAYBMS_ASSIGN_OR_RETURN(NormalizeStats stats, Normalize(db));
  (void)stats;
  return Status::OK();
}

Status LiftedProject(WsdDb* db, const std::string& input,
                     const std::vector<ProjectItem>& items,
                     const std::string& output, const ExecOptions& opts) {
  MAYBMS_ASSIGN_OR_RETURN(WsdRelation * rel, db->GetMutableRelation(input));
  const Schema& in_schema = rel->schema();

  // Bind all expressions; classify pure column refs and lower the
  // computed ones once (reused across tuples and component rows).
  struct Item {
    ExprPtr expr;
    bool is_column = false;
    size_t col = 0;
    lifted_internal::CompiledEvalPtr ce;
  };
  std::vector<Item> bound(items.size());
  Schema out_schema;
  // Case-insensitive duplicate-name probing via a set, not repeated
  // Schema::IndexOf scans (which were quadratic in the item count).
  std::unordered_set<std::string> used_names;
  for (size_t k = 0; k < items.size(); ++k) {
    MAYBMS_ASSIGN_OR_RETURN(ExprPtr b, items[k].expr->BindAgainst(in_schema));
    bound[k].expr = b;
    if (b->kind() == ExprKind::kColumn) {
      bound[k].is_column = true;
      bound[k].col = b->column_index();
    } else {
      bound[k].ce = lifted_internal::TryCompile(*b, opts);
    }
    std::string name = items[k].name;
    int suffix = 2;
    while (used_names.count(ToLower(name))) {
      name = items[k].name + "_" + std::to_string(suffix++);
    }
    used_names.insert(ToLower(name));
    MAYBMS_RETURN_IF_ERROR(
        out_schema.Add({name, InferExprType(*b, in_schema)}));
  }

  // Merge planning for computed expressions spanning components.
  MergePlanner planner;
  bool any_computed = false;
  for (const auto& it : bound) {
    if (!it.is_column) any_computed = true;
  }
  if (any_computed) {
    for (const auto& t : rel->tuples()) {
      for (const auto& it : bound) {
        if (it.is_column) continue;
        std::vector<size_t> cols;
        it.expr->CollectColumns(&cols);
        std::vector<ComponentId> cids;
        for (size_t c : cols) {
          if (t.cells[c].is_ref()) cids.push_back(t.cells[c].ref().cid);
        }
        std::sort(cids.begin(), cids.end());
        cids.erase(std::unique(cids.begin(), cids.end()), cids.end());
        if (cids.size() > 1) planner.Require(cids);
      }
    }
    MAYBMS_RETURN_IF_ERROR(planner.Execute(db));
  }

  // Build the projected tuples.
  Tuple eval_buf(in_schema.size(), Value::Null());
  for (auto& t : rel->mutable_tuples()) {
    std::vector<Cell> new_cells(bound.size());
    for (size_t k = 0; k < bound.size(); ++k) {
      const Item& it = bound[k];
      if (it.is_column) {
        new_cells[k] = t.cells[it.col];
        continue;
      }
      std::vector<size_t> cols;
      it.expr->CollectColumns(&cols);
      ComponentId cid = kInvalidComponent;
      std::vector<std::pair<size_t, uint32_t>> ref_cols;
      for (size_t c : cols) {
        const Cell& cell = t.cells[c];
        if (cell.is_certain()) {
          eval_buf[c] = cell.value();
        } else {
          MAYBMS_CHECK(cid == kInvalidComponent || cid == cell.ref().cid)
              << "computed projection spans components after merge";
          cid = cell.ref().cid;
          ref_cols.emplace_back(c, cell.ref().slot);
        }
      }
      if (ref_cols.empty()) {
        MAYBMS_ASSIGN_OR_RETURN(Value v, it.expr->Eval(eval_buf));
        if (v.is_bottom()) {
          return Status::Internal("⊥ from certain projection input");
        }
        new_cells[k] = Cell::Certain(std::move(v));
      } else {
        Component& m = db->mutable_component(cid);
        OwnerId owner = m.slot(ref_cols[0].second).owner;
        const size_t n = m.NumRows();
        std::vector<PackedValue> out_col(n);
        if (it.ce) {
          // Batched packed evaluation over the component columns; dead
          // rows (a referenced slot holds ⊥) become ⊥, flagged rows are
          // re-evaluated through the interpreter.
          lifted_internal::EvalOverComponent(m, ref_cols, eval_buf, opts,
                                             it.ce.get());
          out_col.assign(it.ce->results.begin(), it.ce->results.end());
          for (size_t r = 0; r < n; ++r) {
            for (const auto& [c, slot] : ref_cols) {
              (void)c;
              if (m.packed(r, slot).is_bottom()) {
                out_col[r] = PackedValue::Bottom();
                break;
              }
            }
          }
          for (size_t r : it.ce->fallback) {
            bool dead = false;
            for (const auto& [c, slot] : ref_cols) {
              const PackedValue& v = m.packed(r, slot);
              if (v.is_bottom()) {
                dead = true;
                break;
              }
              eval_buf[c] = v.ToValue();
            }
            if (dead) continue;  // already ⊥; the interpreter never
                                 // evaluates dead rows
            MAYBMS_ASSIGN_OR_RETURN(Value v, it.expr->Eval(eval_buf));
            out_col[r] = PackedValue::FromValue(v);
          }
        } else {
          for (size_t r = 0; r < n; ++r) {
            bool dead = false;
            for (const auto& [c, slot] : ref_cols) {
              const PackedValue& v = m.packed(r, slot);
              if (v.is_bottom()) {
                dead = true;
                break;
              }
              eval_buf[c] = v.ToValue();
            }
            if (dead) {
              out_col[r] = PackedValue::Bottom();
              continue;
            }
            MAYBMS_ASSIGN_OR_RETURN(Value v, it.expr->Eval(eval_buf));
            out_col[r] = PackedValue::FromValue(v);
          }
        }
        uint32_t slot = m.AddSlotWithPacked(
            {owner, "\xCF\x80(" + items[k].name + ")"}, std::move(out_col));
        new_cells[k] = Cell::Ref({cid, slot});
      }
      for (size_t c : cols) eval_buf[c] = Value::Null();
    }
    t.cells = std::move(new_cells);
  }
  rel->set_schema(out_schema);
  MAYBMS_RETURN_IF_ERROR(RenameRelation(db, input, output));
  MAYBMS_ASSIGN_OR_RETURN(NormalizeStats stats, Normalize(db));
  (void)stats;
  return Status::OK();
}

namespace {

Status CheckUnionCompatible(const Schema& a, const Schema& b,
                            const char* what) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument(
        StrFormat("%s arity mismatch: %zu vs %zu", what, a.size(), b.size()));
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.attr(i).type != b.attr(i).type) {
      return Status::TypeMismatch(
          StrFormat("%s type mismatch at column %zu", what, i));
    }
  }
  return Status::OK();
}

}  // namespace

Status LiftedProduct(WsdDb* db, const std::string& left,
                     const std::string& right, const std::string& output) {
  if (EqualsIgnoreCase(left, right)) {
    return Status::InvalidArgument(
        "lifted operators consume their inputs; pass two scan copies "
        "instead of the same relation twice");
  }
  MAYBMS_ASSIGN_OR_RETURN(const WsdRelation* l, db->GetRelation(left));
  MAYBMS_ASSIGN_OR_RETURN(const WsdRelation* r, db->GetRelation(right));
  Schema out_schema =
      Schema::Concat(l->schema(), r->schema(), r->display_name());
  MAYBMS_RETURN_IF_ERROR(db->CreateRelation(output, out_schema));
  WsdRelation* out = db->GetMutableRelation(output).value();
  out->Reserve(l->NumTuples() * r->NumTuples());
  for (const auto& lt : l->tuples()) {
    for (const auto& rt : r->tuples()) {
      WsdTuple t;
      t.cells.reserve(lt.cells.size() + rt.cells.size());
      t.cells.insert(t.cells.end(), lt.cells.begin(), lt.cells.end());
      t.cells.insert(t.cells.end(), rt.cells.begin(), rt.cells.end());
      t.deps = lt.deps;
      for (OwnerId o : rt.deps) t.AddDep(o);
      out->Add(std::move(t));
    }
  }
  MAYBMS_RETURN_IF_ERROR(db->DropRelation(left));
  MAYBMS_RETURN_IF_ERROR(db->DropRelation(right));
  MAYBMS_ASSIGN_OR_RETURN(NormalizeStats stats, Normalize(db));
  (void)stats;
  return Status::OK();
}

namespace {

// Splits a bound join predicate into equi-join column pairs and residual.
struct JoinKeys {
  std::vector<size_t> left_cols;
  std::vector<size_t> right_cols;  // indexes in right schema
  bool all_equi = false;
};

void SplitConjunctsLocal(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e->kind() == ExprKind::kAnd) {
    SplitConjunctsLocal(e->left(), out);
    SplitConjunctsLocal(e->right(), out);
  } else {
    out->push_back(e);
  }
}

JoinKeys AnalyzeJoin(const ExprPtr& bound, size_t left_arity) {
  JoinKeys keys;
  if (!bound) return keys;
  std::vector<ExprPtr> conjuncts;
  SplitConjunctsLocal(bound, &conjuncts);
  size_t equi = 0;
  for (const auto& c : conjuncts) {
    if (c->kind() == ExprKind::kCompare && c->compare_op() == CompareOp::kEq &&
        c->left()->kind() == ExprKind::kColumn &&
        c->right()->kind() == ExprKind::kColumn) {
      size_t a = c->left()->column_index();
      size_t b = c->right()->column_index();
      if (a < left_arity && b >= left_arity) {
        keys.left_cols.push_back(a);
        keys.right_cols.push_back(b - left_arity);
        ++equi;
        continue;
      }
      if (b < left_arity && a >= left_arity) {
        keys.left_cols.push_back(b);
        keys.right_cols.push_back(a - left_arity);
        ++equi;
        continue;
      }
    }
  }
  keys.all_equi = (equi == conjuncts.size());
  return keys;
}

bool AllCertain(const WsdTuple& t, const std::vector<size_t>& cols) {
  for (size_t c : cols) {
    if (!t.cells[c].is_certain()) return false;
  }
  return true;
}

size_t HashKeyCells(const WsdTuple& t, const std::vector<size_t>& cols) {
  size_t h = cols.size();
  for (size_t c : cols) HashCombine(&h, t.cells[c].value().Hash());
  return h;
}

bool KeyCellsEqual(const WsdTuple& a, const std::vector<size_t>& ca,
                   const WsdTuple& b, const std::vector<size_t>& cb) {
  for (size_t k = 0; k < ca.size(); ++k) {
    const Value& va = a.cells[ca[k]].value();
    const Value& vb = b.cells[cb[k]].value();
    if (va.is_null() || vb.is_null() || !(va == vb)) return false;
  }
  return true;
}

}  // namespace

Status LiftedJoin(WsdDb* db, const std::string& left, const std::string& right,
                  const ExprPtr& pred, const std::string& output,
                  const ExecOptions& opts) {
  if (EqualsIgnoreCase(left, right)) {
    return Status::InvalidArgument(
        "lifted operators consume their inputs; pass two scan copies "
        "instead of the same relation twice");
  }
  MAYBMS_ASSIGN_OR_RETURN(const WsdRelation* l, db->GetRelation(left));
  MAYBMS_ASSIGN_OR_RETURN(const WsdRelation* r, db->GetRelation(right));
  Schema out_schema =
      Schema::Concat(l->schema(), r->schema(), r->display_name());
  ExprPtr bound;
  if (pred) {
    MAYBMS_ASSIGN_OR_RETURN(bound, pred->BindAgainst(out_schema));
  }
  JoinKeys keys = AnalyzeJoin(bound, l->schema().size());

  std::string tmp = "__join_tmp_" + output;
  MAYBMS_RETURN_IF_ERROR(db->CreateRelation(tmp, out_schema));
  WsdRelation* out = db->GetMutableRelation(tmp).value();

  bool emitted_uncertain_keys = false;
  auto emit = [&](const WsdTuple& lt, const WsdTuple& rt) {
    WsdTuple t;
    t.cells.reserve(lt.cells.size() + rt.cells.size());
    t.cells.insert(t.cells.end(), lt.cells.begin(), lt.cells.end());
    t.cells.insert(t.cells.end(), rt.cells.begin(), rt.cells.end());
    t.deps = lt.deps;
    for (OwnerId o : rt.deps) t.AddDep(o);
    out->Add(std::move(t));
  };

  if (!keys.left_cols.empty()) {
    // Hash path for certain keys; uncertain-key tuples pair with all.
    std::unordered_map<size_t, std::vector<size_t>> table;
    std::vector<size_t> uncertain_right;
    for (size_t j = 0; j < r->NumTuples(); ++j) {
      const WsdTuple& rt = r->tuple(j);
      if (AllCertain(rt, keys.right_cols)) {
        table[HashKeyCells(rt, keys.right_cols)].push_back(j);
      } else {
        uncertain_right.push_back(j);
      }
    }
    for (size_t i = 0; i < l->NumTuples(); ++i) {
      const WsdTuple& lt = l->tuple(i);
      if (AllCertain(lt, keys.left_cols)) {
        auto it = table.find(HashKeyCells(lt, keys.left_cols));
        if (it != table.end()) {
          for (size_t j : it->second) {
            if (KeyCellsEqual(lt, keys.left_cols, r->tuple(j),
                              keys.right_cols)) {
              emit(lt, r->tuple(j));
            }
          }
        }
        for (size_t j : uncertain_right) {
          // Pair only if keys can match in some world.
          bool possible = true;
          for (size_t k = 0; k < keys.left_cols.size() && possible; ++k) {
            possible = CellsPossiblyEqual(
                *db, lt.cells[keys.left_cols[k]],
                r->tuple(j).cells[keys.right_cols[k]]);
          }
          if (possible) {
            emit(lt, r->tuple(j));
            emitted_uncertain_keys = true;
          }
        }
      } else {
        for (size_t j = 0; j < r->NumTuples(); ++j) {
          bool possible = true;
          for (size_t k = 0; k < keys.left_cols.size() && possible; ++k) {
            possible = CellsPossiblyEqual(
                *db, lt.cells[keys.left_cols[k]],
                r->tuple(j).cells[keys.right_cols[k]]);
          }
          if (possible) {
            emit(lt, r->tuple(j));
            emitted_uncertain_keys = true;
          }
        }
      }
    }
  } else {
    for (const auto& lt : l->tuples()) {
      for (const auto& rt : r->tuples()) emit(lt, rt);
    }
  }
  MAYBMS_RETURN_IF_ERROR(db->DropRelation(left));
  MAYBMS_RETURN_IF_ERROR(db->DropRelation(right));
  l = nullptr;
  r = nullptr;
  // Apply the full predicate: pairs produced by the certain-key hash path
  // already satisfy the equi conjuncts; re-filtering is needed whenever
  // uncertain keys or residual conjuncts exist. Skipping the filter when
  // everything was certain equi keeps the common case linear.
  bool needs_filter =
      bound != nullptr && (!keys.all_equi || keys.left_cols.empty() ||
                           emitted_uncertain_keys);
  if (needs_filter) {
    MAYBMS_RETURN_IF_ERROR(FilterRelationInPlace(db, tmp, bound, opts));
  }
  MAYBMS_RETURN_IF_ERROR(RenameRelation(db, tmp, output));
  MAYBMS_ASSIGN_OR_RETURN(NormalizeStats stats, Normalize(db));
  (void)stats;
  return Status::OK();
}

Status LiftedUnion(WsdDb* db, const std::string& left,
                   const std::string& right, const std::string& output) {
  if (EqualsIgnoreCase(left, right)) {
    return Status::InvalidArgument(
        "lifted operators consume their inputs; pass two scan copies "
        "instead of the same relation twice");
  }
  MAYBMS_ASSIGN_OR_RETURN(WsdRelation * l, db->GetMutableRelation(left));
  MAYBMS_ASSIGN_OR_RETURN(WsdRelation * r, db->GetMutableRelation(right));
  MAYBMS_RETURN_IF_ERROR(
      CheckUnionCompatible(l->schema(), r->schema(), "UNION"));
  for (auto& t : r->mutable_tuples()) {
    l->Add(std::move(t));
  }
  MAYBMS_RETURN_IF_ERROR(db->DropRelation(right));
  MAYBMS_RETURN_IF_ERROR(RenameRelation(db, left, output));
  MAYBMS_ASSIGN_OR_RETURN(NormalizeStats stats, Normalize(db));
  (void)stats;
  return Status::OK();
}

namespace {

size_t CertainTupleHash(const WsdTuple& t) {
  size_t h = t.cells.size();
  for (const auto& cell : t.cells) HashCombine(&h, cell.value().Hash());
  return h;
}

bool TuplesPossiblyEqual(const WsdDb& db, const WsdTuple& a,
                         const WsdTuple& b) {
  if (a.cells.size() != b.cells.size()) return false;
  for (size_t c = 0; c < a.cells.size(); ++c) {
    if (!lifted_internal::CellsPossiblyEqual(db, a.cells[c], b.cells[c])) {
      return false;
    }
  }
  return true;
}

}  // namespace

Status LiftedDifference(WsdDb* db, const std::string& left,
                        const std::string& right, const std::string& output) {
  if (EqualsIgnoreCase(left, right)) {
    return Status::InvalidArgument(
        "lifted operators consume their inputs; pass two scan copies "
        "instead of the same relation twice");
  }
  MAYBMS_ASSIGN_OR_RETURN(const WsdRelation* l, db->GetRelation(left));
  MAYBMS_ASSIGN_OR_RETURN(const WsdRelation* r, db->GetRelation(right));
  MAYBMS_RETURN_IF_ERROR(
      CheckUnionCompatible(l->schema(), r->schema(), "EXCEPT"));

  // Index the right side: fully-certain tuples by value hash; others in a
  // small list probed with the conservative possibly-equal test.
  std::unordered_map<size_t, std::vector<size_t>> certain_right;
  std::vector<size_t> uncertain_right;
  for (size_t j = 0; j < r->NumTuples(); ++j) {
    if (lifted_internal::FullyCertain(r->tuple(j))) {
      certain_right[CertainTupleHash(r->tuple(j))].push_back(j);
    } else {
      uncertain_right.push_back(j);
    }
  }

  std::vector<MatchKillSpec> specs;
  for (size_t i = 0; i < l->NumTuples(); ++i) {
    const WsdTuple& lt = l->tuple(i);
    MatchKillSpec spec;
    spec.target_rel = left;
    spec.target_idx = i;
    if (lifted_internal::FullyCertain(lt)) {
      auto it = certain_right.find(CertainTupleHash(lt));
      if (it != certain_right.end()) {
        for (size_t j : it->second) {
          if (lifted_internal::CertainlyEqual(lt, r->tuple(j))) {
            spec.sources.push_back({right, j, r->tuple(j).deps});
          }
        }
      }
      for (size_t j : uncertain_right) {
        if (TuplesPossiblyEqual(*db, lt, r->tuple(j))) {
          spec.sources.push_back({right, j, r->tuple(j).deps});
        }
      }
    } else {
      for (size_t j = 0; j < r->NumTuples(); ++j) {
        if (TuplesPossiblyEqual(*db, lt, r->tuple(j))) {
          spec.sources.push_back({right, j, r->tuple(j).deps});
        }
      }
    }
    if (!spec.sources.empty()) specs.push_back(std::move(spec));
  }
  MAYBMS_RETURN_IF_ERROR(ApplyMatchKills(db, specs));
  MAYBMS_RETURN_IF_ERROR(db->DropRelation(right));
  MAYBMS_RETURN_IF_ERROR(RenameRelation(db, left, output));
  MAYBMS_ASSIGN_OR_RETURN(NormalizeStats stats, Normalize(db));
  (void)stats;
  return Status::OK();
}

Status LiftedDistinct(WsdDb* db, const std::string& input,
                      const std::string& output) {
  {
    // Reorder the template so that certain, always-alive tuples come
    // first, then gated certain ones, then uncertain ones. Which
    // duplicate survives per world is value-irrelevant, so this preserves
    // the answer — and it maximizes static kills and value-only killer
    // coverage, keeping component merges small.
    MAYBMS_ASSIGN_OR_RETURN(WsdRelation * mrel, db->GetMutableRelation(input));
    auto gating_index = lifted_internal::BuildBottomGatingIndex(*db);
    auto clazz = [&](const WsdTuple& t) {
      if (!lifted_internal::FullyCertain(t)) return 2;
      for (OwnerId o : t.deps) {
        if (gating_index.count(o)) return 1;
      }
      return 0;
    };
    std::stable_sort(mrel->mutable_tuples().begin(),
                     mrel->mutable_tuples().end(),
                     [&](const WsdTuple& a, const WsdTuple& b) {
                       return clazz(a) < clazz(b);
                     });
  }
  MAYBMS_ASSIGN_OR_RETURN(const WsdRelation* rel, db->GetRelation(input));
  // Snapshot deps before any kill slots are added: a later tuple is killed
  // in the worlds where an earlier *input* tuple with equal values exists.
  std::vector<std::vector<OwnerId>> snapshot;
  snapshot.reserve(rel->NumTuples());
  for (const auto& t : rel->tuples()) snapshot.push_back(t.deps);

  // Earlier-tuple indexes, maintained incrementally.
  std::unordered_map<size_t, std::vector<size_t>> certain_earlier;
  std::vector<size_t> uncertain_earlier;

  std::vector<MatchKillSpec> specs;
  for (size_t j = 0; j < rel->NumTuples(); ++j) {
    const WsdTuple& tj = rel->tuple(j);
    bool j_certain = lifted_internal::FullyCertain(tj);
    MatchKillSpec spec;
    spec.target_rel = input;
    spec.target_idx = j;
    if (j_certain) {
      auto it = certain_earlier.find(CertainTupleHash(tj));
      if (it != certain_earlier.end()) {
        for (size_t i : it->second) {
          if (lifted_internal::CertainlyEqual(tj, rel->tuple(i))) {
            spec.sources.push_back({input, i, snapshot[i]});
          }
        }
      }
      for (size_t i : uncertain_earlier) {
        if (TuplesPossiblyEqual(*db, tj, rel->tuple(i))) {
          spec.sources.push_back({input, i, snapshot[i]});
        }
      }
    } else {
      for (size_t i = 0; i < j; ++i) {
        if (TuplesPossiblyEqual(*db, tj, rel->tuple(i))) {
          spec.sources.push_back({input, i, snapshot[i]});
        }
      }
    }
    if (!spec.sources.empty()) specs.push_back(std::move(spec));
    if (j_certain) {
      certain_earlier[CertainTupleHash(tj)].push_back(j);
    } else {
      uncertain_earlier.push_back(j);
    }
  }
  MAYBMS_RETURN_IF_ERROR(ApplyMatchKills(db, specs));
  MAYBMS_RETURN_IF_ERROR(RenameRelation(db, input, output));
  MAYBMS_ASSIGN_OR_RETURN(NormalizeStats stats, Normalize(db));
  (void)stats;
  return Status::OK();
}

}  // namespace maybms
