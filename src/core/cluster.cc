#include "core/cluster.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <unordered_set>

#include "common/hash.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/union_find.h"

namespace maybms {

namespace {

/// Folds one member tuple into a content key: cells (certain values by
/// packed content + tag, refs as position-in-sources + source slot) and
/// the deps owner list. `sources` must be sorted ascending and contain
/// every component the tuple's hashed ref cells point at.
void HashTupleForKey(const WsdTuple& t, std::optional<size_t> only_col,
                     const std::vector<ComponentId>& sources, size_t* seed) {
  auto hash_cell = [&](const Cell& cell) {
    if (cell.is_certain()) {
      const PackedValue pv = PackedValue::FromValue(cell.value());
      HashCombine(seed, 0x9e3779b97f4a7c15ull);
      // Tag included on top of the value hash: int 2 and double 2.0
      // hash equal (numeric canonicalization) but render differently
      // in query output, so they must not share a key.
      HashCombine(seed, static_cast<size_t>(pv.tag()));
      HashCombine(seed, pv.Hash());
    } else {
      auto it =
          std::lower_bound(sources.begin(), sources.end(), cell.ref().cid);
      MAYBMS_DCHECK(it != sources.end() && *it == cell.ref().cid);
      HashCombine(seed, 0x517cc1b727220a95ull);
      HashCombine(seed, static_cast<size_t>(it - sources.begin()));
      HashCombine(seed, cell.ref().slot);
    }
  };
  if (only_col.has_value()) {
    hash_cell(t.cells[*only_col]);
  } else {
    for (const Cell& cell : t.cells) hash_cell(cell);
  }
  HashCombine(seed, t.deps.size());
  for (OwnerId o : t.deps) HashCombine(seed, static_cast<size_t>(o));
}

/// Sorted unique source components behind a factor list.
std::vector<ComponentId> SourcesOf(const std::vector<Factor>& factors,
                                   const std::vector<FactorId>& ids) {
  std::vector<ComponentId> sources;
  sources.reserve(ids.size());
  for (FactorId f : ids) sources.push_back(factors[f].source);
  std::sort(sources.begin(), sources.end());
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());
  return sources;
}

}  // namespace

ClusterIndex::ClusterIndex(const WsdDb& db, const WsdRelation& rel,
                           const ClusterIndexOptions& options)
    : db_(&db), rel_(&rel) {
  // 1. owner -> components over the whole store (deps can gate through
  //    any component, not just those referenced by value cells).
  std::unordered_map<OwnerId, std::vector<ComponentId>> owner_comps;
  for (ComponentId id : db.LiveComponents()) {
    const Component& c = db.component(id);
    std::unordered_set<OwnerId> seen;
    for (uint32_t s = 0; s < c.NumSlots(); ++s) {
      if (seen.insert(c.slot(s).owner).second) {
        owner_comps[c.slot(s).owner].push_back(id);
      }
    }
  }

  // 2. Components touched by the relation (union over tuples of ref
  //    cells — only_col's when restricted — + dep-gating components),
  //    in deterministic order.
  MAYBMS_CHECK(!options.only_col.has_value() || !options.build_clusters)
      << "only_col requires build_clusters == false";
  std::vector<ComponentId> touched_comps;
  {
    std::unordered_set<ComponentId> seen;
    for (const WsdTuple& t : rel.tuples()) {
      for (size_t c = 0; c < t.cells.size(); ++c) {
        if (options.only_col.has_value() && c != *options.only_col) continue;
        const Cell& cell = t.cells[c];
        if (cell.is_ref() && seen.insert(cell.ref().cid).second) {
          touched_comps.push_back(cell.ref().cid);
        }
      }
      for (OwnerId o : t.deps) {
        auto it = owner_comps.find(o);
        if (it == owner_comps.end()) continue;
        for (ComponentId id : it->second) {
          if (seen.insert(id).second) touched_comps.push_back(id);
        }
      }
    }
  }
  std::sort(touched_comps.begin(), touched_comps.end());

  // 3. Factorize each touched component locally. A component that the
  //    exact test cannot split becomes a single whole-component factor
  //    aliasing the database's storage (no copy).
  for (ComponentId id : touched_comps) {
    const Component& c = db.component(id);
    SlotFactorization f;
    if (options.factorize) {
      f = FactorizeSlots(c, options.factorize_options);
    } else {
      f.groups.emplace_back(c.NumSlots());
      std::iota(f.groups[0].begin(), f.groups[0].end(), 0);
    }
    std::vector<std::pair<FactorId, uint32_t>>& smap = slot_map_[id];
    smap.resize(c.NumSlots());
    if (f.groups.size() <= 1) {
      Factor whole;
      whole.source = id;
      whole.slots.resize(c.NumSlots());
      std::iota(whole.slots.begin(), whole.slots.end(), 0);
      whole.comp = &c;
      FactorId fid = static_cast<FactorId>(factors_.size());
      factors_.push_back(std::move(whole));
      for (uint32_t s = 0; s < c.NumSlots(); ++s) smap[s] = {fid, s};
      continue;
    }
    for (size_t g = 0; g < f.groups.size(); ++g) {
      const std::vector<uint32_t>& group = f.groups[g];
      // Materialize the projection the verification already computed.
      Component proj;
      for (uint32_t s : group) proj.AddSlot(c.slot(s), Value::Null());
      for (ComponentRow& row : f.projections[g]) {
        Status st = proj.AddRow(std::move(row));
        MAYBMS_CHECK(st.ok()) << st.ToString();
      }
      owned_.push_back(std::move(proj));
      Factor factor;
      factor.source = id;
      factor.slots = group;
      factor.comp = &owned_.back();
      factor.projected = true;
      FactorId fid = static_cast<FactorId>(factors_.size());
      factors_.push_back(std::move(factor));
      for (uint32_t i = 0; i < group.size(); ++i) smap[group[i]] = {fid, i};
    }
  }

  // 4. owner -> factors (for dep-gating resolution at factor granularity).
  for (FactorId fid = 0; fid < factors_.size(); ++fid) {
    const Component& c = *factors_[fid].comp;
    std::unordered_set<OwnerId> seen;
    for (uint32_t s = 0; s < c.NumSlots(); ++s) {
      if (seen.insert(c.slot(s).owner).second) {
        owner_factors_[c.slot(s).owner].push_back(fid);
      }
    }
  }

  // 5. Per-tuple touched factors, union-find, clusters. Per-tuple-term
  //    aggregates resolve lazily via Touched() instead.
  if (!options.build_clusters) return;
  size_t n = rel.NumTuples();
  std::vector<std::vector<FactorId>> tuple_factors(n);
  DenseUnionFind uf(factors_.size());
  for (size_t i = 0; i < n; ++i) {
    tuple_factors[i] = Touched(rel.tuple(i));
    for (size_t k = 1; k < tuple_factors[i].size(); ++k) {
      uf.Union(tuple_factors[i][0], tuple_factors[i][k]);
    }
  }
  std::map<FactorId, size_t> root_to_cluster;  // ordered → deterministic
  for (size_t i = 0; i < n; ++i) {
    if (tuple_factors[i].empty()) {
      certain_tuples_.push_back(i);
      continue;
    }
    FactorId root = uf.Find(tuple_factors[i][0]);
    auto [it, fresh] = root_to_cluster.emplace(root, clusters_.size());
    if (fresh) clusters_.emplace_back();
    Cluster& cl = clusters_[it->second];
    cl.tuple_idxs.push_back(i);
    cl.factors.insert(cl.factors.end(), tuple_factors[i].begin(),
                      tuple_factors[i].end());
  }
  for (Cluster& cl : clusters_) {
    std::sort(cl.factors.begin(), cl.factors.end());
    cl.factors.erase(std::unique(cl.factors.begin(), cl.factors.end()),
                     cl.factors.end());
  }
}

std::pair<FactorId, uint32_t> ClusterIndex::Resolve(const FieldRef& ref) const {
  auto it = slot_map_.find(ref.cid);
  MAYBMS_CHECK(it != slot_map_.end())
      << "component " << ref.cid << " not touched by indexed relation";
  MAYBMS_CHECK(ref.slot < it->second.size());
  return it->second[ref.slot];
}

const std::vector<FactorId>* ClusterIndex::OwnerFactors(OwnerId o) const {
  auto it = owner_factors_.find(o);
  return it == owner_factors_.end() ? nullptr : &it->second;
}

std::vector<FactorId> ClusterIndex::Touched(
    const WsdTuple& t, std::optional<size_t> only_col) const {
  std::vector<FactorId> out;
  if (only_col.has_value()) {
    const Cell& cell = t.cells[*only_col];
    if (cell.is_ref()) out.push_back(Resolve(cell.ref()).first);
  } else {
    for (const Cell& cell : t.cells) {
      if (cell.is_ref()) out.push_back(Resolve(cell.ref()).first);
    }
  }
  for (OwnerId o : t.deps) {
    const std::vector<FactorId>* fs = OwnerFactors(o);
    if (fs) out.insert(out.end(), fs->begin(), fs->end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

uint64_t ClusterIndex::ClusterKey(const Cluster& cluster,
                                  uint64_t salt) const {
  const std::vector<ComponentId> sources = SourcesOf(factors_, cluster.factors);
  size_t seed = static_cast<size_t>(salt);
  HashCombine(&seed, rel_->schema().size());
  HashCombine(&seed, sources.size());
  // Ascending-cid order bakes the factor enumeration order into the key:
  // cluster factors are sorted FactorId = (source order, group index),
  // and groups are a deterministic function of source content.
  for (ComponentId cid : sources) {
    HashCombine(&seed, static_cast<size_t>(db_->component(cid).ContentHash()));
  }
  HashCombine(&seed, cluster.tuple_idxs.size());
  for (size_t i : cluster.tuple_idxs) {
    HashTupleForKey(rel_->tuple(i), std::nullopt, sources, &seed);
  }
  const uint64_t h = static_cast<uint64_t>(seed);
  return h == 0 ? 1 : h;
}

uint64_t ClusterIndex::TupleTermKey(const WsdTuple& t,
                                    std::optional<size_t> only_col,
                                    uint64_t salt) const {
  const std::vector<ComponentId> sources =
      SourcesOf(factors_, Touched(t, only_col));
  size_t seed = static_cast<size_t>(salt);
  HashCombine(&seed, sources.size());
  for (ComponentId cid : sources) {
    HashCombine(&seed, static_cast<size_t>(db_->component(cid).ContentHash()));
  }
  HashTupleForKey(t, only_col, sources, &seed);
  const uint64_t h = static_cast<uint64_t>(seed);
  return h == 0 ? 1 : h;
}

ClusterEnumerator::ClusterEnumerator(const ClusterIndex& index,
                                     std::vector<FactorId> factors)
    : index_(&index), factors_(std::move(factors)) {
  comps_.reserve(factors_.size());
  for (FactorId f : factors_) comps_.push_back(index.factor(f).comp);
  choice_.assign(factors_.size(), 0);
}

Result<size_t> ClusterEnumerator::CheckBudget(size_t budget,
                                              const char* what) const {
  size_t states = 1;
  for (const Component* c : comps_) {
    size_t rows = c->NumRows();
    if (rows == 0) return Status::Inconsistent("empty component");
    if (states > budget / rows) {
      return Status::ResourceExhausted(
          StrFormat("%s needs more than %zu states", what, budget));
    }
    states *= rows;
  }
  return states;
}

std::vector<std::vector<uint32_t>> ClusterEnumerator::GatingFor(
    const std::vector<OwnerId>& deps) const {
  std::vector<std::vector<uint32_t>> gating(comps_.size());
  for (size_t k = 0; k < comps_.size(); ++k) {
    const Component& c = *comps_[k];
    for (uint32_t s = 0; s < c.NumSlots(); ++s) {
      if (std::binary_search(deps.begin(), deps.end(), c.slot(s).owner)) {
        gating[k].push_back(s);
      }
    }
  }
  return gating;
}

uint32_t ClusterEnumerator::PosOf(FactorId f) const {
  auto it = std::lower_bound(factors_.begin(), factors_.end(), f);
  MAYBMS_CHECK(it != factors_.end() && *it == f)
      << "factor " << f << " not part of this enumerator";
  return static_cast<uint32_t>(it - factors_.begin());
}

std::pair<uint32_t, uint32_t> ClusterEnumerator::ResolveAt(
    const FieldRef& ref) const {
  auto [f, slot] = index_->Resolve(ref);
  return {PosOf(f), slot};
}

void ClusterEnumerator::Reset() {
  std::fill(choice_.begin(), choice_.end(), 0);
  done_ = false;
  for (const Component* c : comps_) {
    if (c->NumRows() == 0) done_ = true;
  }
}

void ClusterEnumerator::Advance() {
  size_t k = 0;
  for (; k < comps_.size(); ++k) {
    if (++choice_[k] < comps_[k]->NumRows()) break;
    choice_[k] = 0;
  }
  if (k == comps_.size()) done_ = true;
}

double ClusterEnumerator::StateProb() const {
  double p = 1.0;
  for (size_t k = 0; k < comps_.size(); ++k) p *= comps_[k]->prob(choice_[k]);
  return p;
}

bool ClusterEnumerator::Alive(
    const std::vector<std::vector<uint32_t>>& gating) const {
  for (size_t k = 0; k < comps_.size(); ++k) {
    for (uint32_t s : gating[k]) {
      if (comps_[k]->IsBottomAt(choice_[k], s)) return false;
    }
  }
  return true;
}

std::vector<ClusterMember> ResolveClusterMembers(const ClusterIndex& index,
                                                 const Cluster& cluster,
                                                 const ClusterEnumerator& en) {
  const WsdRelation& rel = index.rel();
  std::vector<ClusterMember> members;
  members.reserve(cluster.tuple_idxs.size());
  for (size_t i : cluster.tuple_idxs) {
    ClusterMember m;
    m.t = &rel.tuple(i);
    m.gating = en.GatingFor(m.t->deps);
    m.cell_pos.reserve(m.t->cells.size());
    for (const Cell& cell : m.t->cells) {
      m.cell_pos.push_back(cell.is_certain()
                               ? std::make_pair(ClusterMember::kCertainCell, 0u)
                               : en.ResolveAt(cell.ref()));
    }
    members.push_back(std::move(m));
  }
  return members;
}

bool MemberVectorAt(const ClusterEnumerator& en, const ClusterMember& m,
                    Tuple* v) {
  if (!en.Alive(m.gating)) return false;
  for (size_t c = 0; c < m.t->cells.size(); ++c) {
    if (m.cell_pos[c].first == ClusterMember::kCertainCell) {
      (*v)[c] = m.t->cells[c].value();
      continue;
    }
    const PackedValue& pv = en.PackedAt(m.cell_pos[c].first, m.cell_pos[c].second);
    if (pv.is_bottom()) return false;
    (*v)[c] = pv.ToValue();
  }
  return true;
}

ClusterMassScan::ClusterMassScan(const ClusterIndex& index,
                                 const Cluster& cluster)
    : en_(index, cluster.factors),
      arity_(index.rel().schema().size()) {
  members_ = ResolveClusterMembers(index, cluster, en_);
  for (uint32_t k = 0; k < en_.NumFactors(); ++k) {
    total_mass_ *= en_.component(k)->TotalMass();
  }
  en_.Reset();
  done_ = en_.Done();
}

bool ClusterMassScan::Run(size_t max_states) {
  Tuple v(arity_);
  std::unordered_set<Tuple, TupleValueHash, TupleValueEq> present;
  for (size_t n = 0; n < max_states && !en_.Done(); ++n, en_.Advance()) {
    ++states_visited_;
    double p = en_.StateProb();
    if (p <= 0.0) continue;
    visited_mass_ += p;
    present.clear();
    for (const ClusterMember& m : members_) {
      if (MemberVectorAt(en_, m, &v)) present.insert(v);
    }
    for (const Tuple& u : present) mass_[u] += p;
  }
  done_ = en_.Done();
  return done_;
}

}  // namespace maybms
