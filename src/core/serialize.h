// Persistence for world-set databases: a versioned, token-based text
// format that round-trips templates, components, probabilities, owners
// and options exactly. Strings are length-prefixed, so arbitrary content
// (including newlines and the ⊥ glyph) survives.
#ifndef MAYBMS_CORE_SERIALIZE_H_
#define MAYBMS_CORE_SERIALIZE_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "core/wsd.h"

namespace maybms {

/// Writes `db` to a stream / file. The format is stable across versions
/// of this library (header "MAYBMS-WSD 1").
Status WriteWsdDb(const WsdDb& db, std::ostream& out);
Status SaveWsdDb(const WsdDb& db, const std::string& path);

/// Reads a database written by WriteWsdDb; validates invariants.
Result<WsdDb> ReadWsdDb(std::istream& in);
Result<WsdDb> LoadWsdDb(const std::string& path);

}  // namespace maybms

#endif  // MAYBMS_CORE_SERIALIZE_H_
