// Persistence for world-set databases. Two formats share the
// "MAYBMS-WSD <version>" header line and are negotiated on read:
//
//   - Version 1: a token-based text format that round-trips templates,
//     components, probabilities, owners and options exactly. Strings are
//     length-prefixed, so arbitrary content (including newlines and the
//     ⊥ glyph) survives. Human-inspectable; v1 files remain readable
//     forever.
//   - Version 2: a binary columnar snapshot — the distinct strings the
//     database references are dumped once (deduplicated blob + offset
//     table), and each component/relation is written as raw slot-major
//     tag/payload/probability arrays with per-section lengths and
//     checksums. Loading is sequential bulk reads plus a per-string
//     re-intern; no per-cell parsing. See docs/SNAPSHOT_FORMAT.md.
//   - Version 3: the binary format with a shard directory — components
//     and horizontal relation shards become self-contained, individually
//     checksummed blocks whose offsets (plus per-shard pruning stats) are
//     recorded up front, so a memory-mapped reader (core/mapped_db) can
//     materialize only the blocks a query touches. Codecs live in
//     core/snapshot_v3.h.
#ifndef MAYBMS_CORE_SERIALIZE_H_
#define MAYBMS_CORE_SERIALIZE_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "core/wsd.h"
#include "storage/io_env.h"

namespace maybms {

/// On-disk snapshot encodings.
enum class SnapshotFormat {
  kText,      ///< "MAYBMS-WSD 1": tokenized text
  kBinary,    ///< "MAYBMS-WSD 3": sharded columnar binary sections
  kBinaryV2,  ///< "MAYBMS-WSD 2": monolithic columnar binary sections
};

/// Writes `db` to a stream in the text format (header "MAYBMS-WSD 1").
Status WriteWsdDb(const WsdDb& db, std::ostream& out);

/// Writes `db` to a stream in the legacy monolithic binary snapshot
/// format (header "MAYBMS-WSD 2").
Status WriteWsdDbBinary(const WsdDb& db, std::ostream& out);

/// Writes `db` to a stream in the sharded binary snapshot format
/// (header "MAYBMS-WSD 3"). Relations are split into horizontal shards
/// of options().rows_per_shard rows; each component and shard is a
/// self-contained checksummed block indexed by the SDIR section.
Status WriteWsdDbBinaryV3(const WsdDb& db, std::ostream& out);

/// Serializes `db` in the chosen format into a byte string (what
/// SaveWsdDb writes to disk). Exposed so callers that need the bytes —
/// the durable session fingerprints them to bind the WAL to the
/// snapshot — serialize exactly once.
Result<std::string> SerializeWsdDb(const WsdDb& db, SnapshotFormat format);

struct SaveFileOptions {
  /// File-I/O environment; null = Env::Default().
  Env* env = nullptr;
  /// fsync the temp file and the parent directory around the rename, so
  /// the save survives power loss. Disable only for scratch files where
  /// process-crash atomicity (the rename) is enough.
  bool sync = true;
};

/// Writes `db` to a file in the chosen format — atomically, in every
/// format: the bytes go to `path`.tmp which is renamed over `path`, so a
/// crash mid-save never leaves a torn snapshot over a good one. The
/// default format stays text so existing call sites keep producing
/// human-inspectable files; the SQL SAVE DATABASE statement defaults to
/// binary.
Status SaveWsdDb(const WsdDb& db, const std::string& path,
                 SnapshotFormat format = SnapshotFormat::kText,
                 const SaveFileOptions& opts = {});

/// Reads a database written by WriteWsdDb or WriteWsdDbBinary — the
/// format is negotiated from the header line — and validates invariants.
Result<WsdDb> ReadWsdDb(std::istream& in);
/// Loads from a file; `env` (null = Env::Default()) is the seam the
/// fault-injection tests use.
Result<WsdDb> LoadWsdDb(const std::string& path, Env* env = nullptr);

}  // namespace maybms

#endif  // MAYBMS_CORE_SERIALIZE_H_
