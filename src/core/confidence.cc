#include "core/confidence.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "core/cluster.h"
#include "core/materialized_conf.h"

namespace maybms {

namespace {

using VectorProb = TupleProbMap;

ClusterIndexOptions IndexOptions(const ConfidenceOptions& options,
                                 bool build_clusters = true) {
  ClusterIndexOptions ci;
  ci.factorize = options.factorize_clusters;
  ci.build_clusters = build_clusters;
  return ci;
}

/// Folds the options that change a cluster's evaluation outcome into the
/// cache-key salt: the state budget decides whether a scan errors, and
/// factorization decides the factor structure enumerated.
uint64_t SaltFor(uint64_t base, const ConfidenceOptions& options) {
  size_t seed = static_cast<size_t>(base);
  HashCombine(&seed, options.max_cluster_states);
  HashCombine(&seed, options.factorize_clusters ? 1u : 2u);
  return static_cast<uint64_t>(seed);
}

// P(vector present) for one cluster: enumerate the joint states of the
// cluster's factors to completion; each state credits its probability to
// the distinct value vectors of its alive member tuples.
Result<VectorProb> EvalCluster(const ClusterIndex& index,
                               const Cluster& cluster,
                               const ConfidenceOptions& options) {
  ClusterMassScan scan(index, cluster);
  MAYBMS_RETURN_IF_ERROR(
      scan.enumerator()
          .CheckBudget(options.max_cluster_states, "confidence cluster")
          .status());
  // Budget admitted the full state space, so one Run exhausts it.
  scan.Run(options.max_cluster_states);
  return std::move(scan).TakeMass();
}

// EvalCluster behind the materialized-confidence cache: a content-key
// hit returns the cached mass map (bit-identical to a fresh scan by
// ClusterKey's contract); a miss scans and publishes.
Result<std::shared_ptr<const VectorProb>> EvalClusterCached(
    const ClusterIndex& index, const Cluster& cluster,
    const ConfidenceOptions& options, uint64_t salt) {
  if (options.cache == nullptr) {
    MAYBMS_ASSIGN_OR_RETURN(VectorProb vp,
                            EvalCluster(index, cluster, options));
    return std::make_shared<const VectorProb>(std::move(vp));
  }
  const uint64_t key = index.ClusterKey(cluster, salt);
  if (std::shared_ptr<const VectorProb> hit = options.cache->FindMass(key)) {
    return hit;
  }
  MAYBMS_ASSIGN_OR_RETURN(VectorProb vp, EvalCluster(index, cluster, options));
  auto fresh = std::make_shared<const VectorProb>(std::move(vp));
  options.cache->InsertMass(key, fresh);
  return fresh;
}

}  // namespace

Result<Relation> ConfTable(const WsdDb& db, const std::string& rel_name,
                           const ConfidenceOptions& options) {
  MAYBMS_ASSIGN_OR_RETURN(const WsdRelation* rel, db.GetRelation(rel_name));

  ClusterIndex index(db, *rel, IndexOptions(options));
  const std::vector<Cluster>& clusters = index.clusters();

  // P(vector present) per cluster; slot 0 is the trivial pile of
  // always-present vectors (certain tuples).
  std::vector<std::shared_ptr<const VectorProb>> cluster_probs(
      clusters.size() + 1);
  {
    auto certain = std::make_shared<VectorProb>();
    for (size_t i : index.certain_tuples()) {
      Tuple v;
      v.reserve(rel->schema().size());
      for (const auto& cell : rel->tuple(i).cells) v.push_back(cell.value());
      (*certain)[v] = 1.0;
    }
    cluster_probs[0] = std::move(certain);
  }
  const uint64_t salt = SaltFor(conf_cache_salt::kConf, options);

  // Clusters share no factors, so they are evaluated concurrently; each
  // writes only its own output slot. Clusters are typically small and
  // numerous, so contiguous runs are batched into one task per batch
  // (a handful per thread for load balancing) rather than paying the
  // pool's per-task dispatch cost once per cluster. Once one cluster
  // fails, remaining clusters are skipped (fail-fast — their results
  // would be discarded); the first recorded error in cluster order is
  // surfaced.
  const size_t n_clusters = clusters.size();
  const size_t threads =
      options.num_threads ? options.num_threads : DefaultNumThreads();
  const size_t n_batches =
      std::min(n_clusters, std::max<size_t>(1, threads * 8));
  const size_t per_batch =
      n_batches ? (n_clusters + n_batches - 1) / n_batches : 0;
  std::vector<Status> statuses(n_clusters, Status::OK());
  std::atomic<bool> failed{false};
  ParallelFor(options.num_threads, n_batches, [&](size_t b) {
    const size_t begin = b * per_batch;
    const size_t end = std::min(n_clusters, begin + per_batch);
    for (size_t ci = begin; ci < end; ++ci) {
      if (failed.load(std::memory_order_relaxed)) return;
      Result<std::shared_ptr<const VectorProb>> r =
          EvalClusterCached(index, clusters[ci], options, salt);
      if (r.ok()) {
        cluster_probs[ci + 1] = std::move(*r);
      } else {
        statuses[ci] = r.status();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  });
  for (const Status& st : statuses) MAYBMS_RETURN_IF_ERROR(st);

  // Combine: conf(v) = 1 - Π (1 - P_cluster(v)). One pass over cluster
  // entries — O(Σ map sizes), not O(distinct vectors × clusters) — so
  // the combine stays cheap relative to the scans it summarizes (the
  // incremental path replays exactly this loop over cached maps). Each
  // vector's factors multiply in ascending cluster order, the identical
  // float sequence the per-vector probe produced.
  VectorProb conf;
  for (const auto& vp : cluster_probs) {
    for (const auto& [v, p] : *vp) {
      conf.emplace(v, 1.0).first->second *= (1.0 - std::min(1.0, p));
    }
  }
  for (auto& [v, absent] : conf) absent = 1.0 - absent;

  // Materialize sorted output.
  Schema out_schema = rel->schema();
  std::string conf_name = "conf";
  int suffix = 2;
  while (out_schema.IndexOf(conf_name)) {
    conf_name = "conf_" + std::to_string(suffix++);
  }
  MAYBMS_RETURN_IF_ERROR(out_schema.Add({conf_name, ValueType::kDouble}));
  std::vector<std::pair<Tuple, double>> rows(conf.begin(), conf.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return TupleCompare(a.first, b.first) < 0;
  });
  Relation out(rel_name + "_conf", out_schema);
  for (auto& [v, p] : rows) {
    Tuple t = v;
    t.push_back(Value::Double(p));
    out.AppendUnchecked(std::move(t));
  }
  return out;
}

Result<Relation> PossibleTuples(const WsdDb& db, const std::string& rel,
                                const ConfidenceOptions& options) {
  MAYBMS_ASSIGN_OR_RETURN(Relation with_conf, ConfTable(db, rel, options));
  // Drop zero-confidence vectors: they appear through zero-probability
  // component rows or rounding and are not possible answers.
  Relation out(with_conf.name(), with_conf.schema());
  size_t conf_col = with_conf.schema().size() - 1;
  for (const auto& row : with_conf.rows()) {
    if (row[conf_col].as_double() > 0.0) out.AppendUnchecked(row);
  }
  return out;
}

Result<Relation> CertainTuples(const WsdDb& db, const std::string& rel_name,
                               const ConfidenceOptions& options) {
  MAYBMS_ASSIGN_OR_RETURN(Relation with_conf,
                          ConfTable(db, rel_name, options));
  // Strip the conf column, keep rows with conf ~ 1.
  const Schema& s = with_conf.schema();
  std::vector<size_t> keep_cols;
  for (size_t i = 0; i + 1 < s.size(); ++i) keep_cols.push_back(i);
  Relation out(rel_name + "_certain", s.Project(keep_cols));
  size_t conf_col = s.size() - 1;
  for (const auto& row : with_conf.rows()) {
    if (row[conf_col].as_double() >= 1.0 - options.eps) {
      Tuple t(row.begin(), row.end() - 1);
      out.AppendUnchecked(std::move(t));
    }
  }
  return out;
}

namespace {

/// Memoized existence probability: resolves the tuple's gating
/// components through an owner index, keys on their content + the deps
/// list, and on a miss multiplies WsdDb::GatedAliveMass over exactly
/// the gating components in ascending-cid order — the identical float
/// sequence WsdDb::ExistenceProbability runs (it skips non-gating
/// components), so cached and scratch ECOUNT agree bit for bit.
double CachedExistenceTerm(
    const WsdDb& db,
    const std::unordered_map<OwnerId, std::vector<ComponentId>>& owner_comps,
    const WsdTuple& t, MaterializedConf* cache, uint64_t salt) {
  if (t.deps.empty()) return 1.0;
  std::vector<ComponentId> comps;
  for (OwnerId o : t.deps) {
    auto it = owner_comps.find(o);
    if (it == owner_comps.end()) continue;
    comps.insert(comps.end(), it->second.begin(), it->second.end());
  }
  if (comps.empty()) return 1.0;
  std::sort(comps.begin(), comps.end());
  comps.erase(std::unique(comps.begin(), comps.end()), comps.end());
  size_t seed = static_cast<size_t>(salt);
  HashCombine(&seed, t.deps.size());
  for (OwnerId o : t.deps) HashCombine(&seed, static_cast<size_t>(o));
  HashCombine(&seed, comps.size());
  for (ComponentId id : comps) {
    HashCombine(&seed, static_cast<size_t>(db.component(id).ContentHash()));
  }
  const uint64_t key = seed == 0 ? 1 : static_cast<uint64_t>(seed);
  if (std::optional<double> hit = cache->FindTerm(key)) return *hit;
  double p = 1.0;
  for (ComponentId id : comps) {
    bool gates = false;
    const double alive = WsdDb::GatedAliveMass(db.component(id), t.deps,
                                               &gates);
    if (!gates) continue;
    p *= alive;
    if (p == 0.0) break;
  }
  cache->InsertTerm(key, p);
  return p;
}

}  // namespace

Result<double> ExpectedCount(const WsdDb& db, const std::string& rel_name,
                             const ConfidenceOptions& options) {
  MAYBMS_ASSIGN_OR_RETURN(const WsdRelation* rel, db.GetRelation(rel_name));
  // The memoized path resolves each tuple's gating components through
  // this owner index instead of scanning the whole store per tuple.
  std::unordered_map<OwnerId, std::vector<ComponentId>> owner_comps;
  if (options.cache != nullptr) {
    for (ComponentId id : db.LiveComponents()) {
      const Component& c = db.component(id);
      OwnerId last = 0;
      bool have_last = false;
      for (uint32_t s = 0; s < c.NumSlots(); ++s) {
        const OwnerId o = c.slot(s).owner;
        if (have_last && o == last) continue;  // runs of one owner
        std::vector<ComponentId>& v = owner_comps[o];
        if (v.empty() || v.back() != id) v.push_back(id);
        last = o;
        have_last = true;
      }
    }
  }
  const uint64_t salt = SaltFor(conf_cache_salt::kEcount, options);
  // Tuple terms are tiny; batch contiguous runs per pool task (same
  // rationale as the cluster batching in ConfTable).
  const size_t n = rel->NumTuples();
  const size_t threads =
      options.num_threads ? options.num_threads : DefaultNumThreads();
  const size_t n_batches = std::min(n, std::max<size_t>(1, threads * 8));
  const size_t per_batch = n_batches ? (n + n_batches - 1) / n_batches : 0;
  std::vector<double> terms(n, 0.0);
  ParallelFor(options.num_threads, n_batches, [&](size_t b) {
    const size_t begin = b * per_batch;
    const size_t end = std::min(n, begin + per_batch);
    for (size_t i = begin; i < end; ++i) {
      terms[i] = options.cache != nullptr
                     ? CachedExistenceTerm(db, owner_comps, rel->tuple(i),
                                           options.cache, salt)
                     : db.ExistenceProbability(rel->tuple(i));
    }
  });
  double total = 0.0;
  for (double t : terms) total += t;  // in-order sum: deterministic
  return total;
}

Result<double> ExpectedSum(const WsdDb& db, const std::string& rel_name,
                           const std::string& column,
                           const ConfidenceOptions& options) {
  MAYBMS_ASSIGN_OR_RETURN(const WsdRelation* rel, db.GetRelation(rel_name));
  MAYBMS_ASSIGN_OR_RETURN(size_t col, rel->schema().Resolve(column));

  ClusterIndexOptions ci = IndexOptions(options, /*build_clusters=*/false);
  ci.only_col = col;  // other columns' components are never enumerated
  ClusterIndex index(db, *rel, ci);

  // By linearity each tuple's term E[v_t · alive_t] is computed over its
  // own touched factors, independently of the other tuples (even when
  // they share components), so terms parallelize tuple-wise.
  size_t n = rel->NumTuples();
  std::vector<double> terms(n, 0.0);
  std::vector<Status> statuses(n, Status::OK());
  std::atomic<bool> failed{false};
  auto fail = [&](size_t i, Status st) {
    statuses[i] = std::move(st);
    failed.store(true, std::memory_order_relaxed);
  };
  const uint64_t salt = SaltFor(conf_cache_salt::kEsum, options);
  auto eval_tuple = [&](size_t i) {
    const WsdTuple& t = rel->tuple(i);
    std::vector<FactorId> factors = index.Touched(t, col);
    if (factors.empty()) {
      const Value& v = t.cells[col].value();
      if (v.is_null()) return;
      if (!v.is_numeric()) {
        fail(i, Status::TypeMismatch("ESUM over non-numeric value " +
                                     v.ToString()));
        return;
      }
      terms[i] = v.NumericValue();
      return;
    }
    uint64_t key = 0;
    if (options.cache != nullptr) {
      key = index.TupleTermKey(t, col, salt);
      if (std::optional<double> hit = options.cache->FindTerm(key)) {
        terms[i] = *hit;
        return;
      }
    }
    ClusterEnumerator en(index, std::move(factors));
    Result<size_t> budget =
        en.CheckBudget(options.max_cluster_states, "ESUM tuple cluster");
    if (!budget.ok()) {
      fail(i, budget.status());
      return;
    }
    std::vector<std::vector<uint32_t>> gating = en.GatingFor(t.deps);
    const Cell& cell = t.cells[col];
    std::pair<uint32_t, uint32_t> pos{UINT32_MAX, 0};
    if (cell.is_ref()) pos = en.ResolveAt(cell.ref());
    double term = 0.0;
    for (en.Reset(); !en.Done(); en.Advance()) {
      double p = en.StateProb();
      if (p <= 0.0 || !en.Alive(gating)) continue;
      Value v = cell.is_certain()
                    ? cell.value()
                    : en.PackedAt(pos.first, pos.second).ToValue();
      if (v.is_null() || v.is_bottom()) continue;
      if (!v.is_numeric()) {
        fail(i, Status::TypeMismatch("ESUM over non-numeric value " +
                                     v.ToString()));
        return;
      }
      term += p * v.NumericValue();
    }
    terms[i] = term;
    if (options.cache != nullptr) options.cache->InsertTerm(key, term);
  };
  // Contiguous batches per pool task (most terms are trivial; the rare
  // enumerating ones still balance across ~8 batches per thread).
  const size_t threads =
      options.num_threads ? options.num_threads : DefaultNumThreads();
  const size_t n_batches = std::min(n, std::max<size_t>(1, threads * 8));
  const size_t per_batch = n_batches ? (n + n_batches - 1) / n_batches : 0;
  ParallelFor(options.num_threads, n_batches, [&](size_t b) {
    const size_t begin = b * per_batch;
    const size_t end = std::min(n, begin + per_batch);
    for (size_t i = begin; i < end; ++i) {
      if (failed.load(std::memory_order_relaxed)) return;
      eval_tuple(i);
    }
  });
  for (const Status& st : statuses) MAYBMS_RETURN_IF_ERROR(st);
  double total = 0.0;
  for (double t : terms) total += t;  // in-order sum: deterministic
  return total;
}

}  // namespace maybms
